package core

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// GranuleStat is one granule of a rule's support history.
type GranuleStat struct {
	Granule    timegran.Granule
	TxCount    int
	Count      int     // transactions containing ante ∪ cons
	Support    float64 // Count / TxCount
	Confidence float64 // Count / count(ante)
	Active     bool
	Holds      bool // support ≥ per-granule threshold and confidence ≥ MinConfidence
}

// History returns the per-granule support/confidence series of the
// rule, for result analysis in the IQMI loop ("why does this rule hold
// only in summer?"). ok is false when the rule's itemset is not
// granule-frequent anywhere — then no counts were retained.
func (h *HoldTable) History(rc RuleCandidate) ([]GranuleStat, bool) {
	fullCounts := h.countsOf(rc.Full)
	if fullCounts == nil {
		return nil, false
	}
	anteCounts := h.countsOf(rc.Ante)
	hold, _ := h.Holds(rc)
	out := make([]GranuleStat, h.NGranules())
	for gi := range out {
		s := GranuleStat{
			Granule: h.Span.Lo + int64(gi),
			TxCount: h.TxCounts[gi],
			Count:   int(fullCounts[gi]),
			Active:  h.Active[gi],
			Holds:   hold[gi],
		}
		if s.TxCount > 0 {
			s.Support = float64(s.Count) / float64(s.TxCount)
		}
		if anteCounts != nil && anteCounts[gi] > 0 {
			s.Confidence = float64(s.Count) / float64(anteCounts[gi])
		}
		out[gi] = s
	}
	return out, true
}

// RuleHistory is the one-call form: it builds a hold table (counting
// only as deep as the rule needs) and returns the rule's history.
func RuleHistory(tbl *tdb.TxTable, cfg Config, ante, cons itemset.Set) ([]GranuleStat, error) {
	return RuleHistoryContext(context.Background(), tbl, cfg, ante, cons)
}

// RuleHistoryContext is RuleHistory under a context: the hold-table
// build observes cancellation.
func RuleHistoryContext(ctx context.Context, tbl *tdb.TxTable, cfg Config, ante, cons itemset.Set) ([]GranuleStat, error) {
	if ante.Len() == 0 || cons.Len() == 0 {
		return nil, fmt.Errorf("core: rule history needs non-empty antecedent and consequent")
	}
	if ante.Intersect(cons).Len() != 0 {
		return nil, fmt.Errorf("core: antecedent and consequent overlap")
	}
	// Count exactly as deep as the rule needs: deeper wastes work,
	// shallower would never count the rule's own itemset.
	cfg.MaxK = ante.Union(cons).Len()
	h, err := BuildHoldTableContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	return RuleHistoryFromTableContext(ctx, h, ante, cons)
}

// RuleHistoryFromTable is RuleHistory over a prebuilt HoldTable, which
// must be at least len(ante ∪ cons) levels deep (MaxK 0 or ≥ it).
func RuleHistoryFromTable(h *HoldTable, ante, cons itemset.Set) ([]GranuleStat, error) {
	return RuleHistoryFromTableContext(context.Background(), h, ante, cons)
}

// RuleHistoryFromTableContext is RuleHistoryFromTable under a context.
// The lookup itself is cheap (one pass over the span), so the context
// is only checked up front.
func RuleHistoryFromTableContext(ctx context.Context, h *HoldTable, ante, cons itemset.Set) ([]GranuleStat, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask(obs.TaskSpan(obs.TaskHistory))
		defer tr.EndTask()
	}
	if ante.Len() == 0 || cons.Len() == 0 {
		return nil, fmt.Errorf("core: rule history needs non-empty antecedent and consequent")
	}
	if ante.Intersect(cons).Len() != 0 {
		return nil, fmt.Errorf("core: antecedent and consequent overlap")
	}
	full := ante.Union(cons)
	if h.Cfg.MaxK != 0 && h.Cfg.MaxK < full.Len() {
		return nil, fmt.Errorf("core: hold table counts only %d-itemsets; rule needs %d", h.Cfg.MaxK, full.Len())
	}
	stats, ok := h.History(RuleCandidate{Ante: ante, Cons: cons, Full: full})
	if !ok {
		return nil, fmt.Errorf("core: rule %v => %v is not frequent in any granule at support %g",
			ante, cons, h.Cfg.MinSupport)
	}
	return stats, nil
}
