package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// appendDays appends count transactions with the given items on day
// offset d and returns the touched granule.
func appendDay(tbl *tdb.TxTable, d, count int, items ...itemset.Item) timegran.Granule {
	at := fixtureStart.AddDate(0, 0, d)
	for i := 0; i < count; i++ {
		tbl.Append(at.Add(time.Duration(i+100)*time.Second), itemset.New(items...))
	}
	return timegran.GranuleOf(at, timegran.Day)
}

// TestMaintainInSpanDirty appends into granules strictly inside the old
// span — the case Extend cannot handle — and checks bit-identity with a
// cold rebuild.
func TestMaintainInSpanDirty(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Day 3: a burst of {choc, wine} makes the weekend pair frequent on
	// a weekday (newcomer path is not hit — the pair is tracked — but
	// its vector changes in the middle of the span). Day 10: extra
	// transactions without bbq raise the threshold so {bbq, charcoal}
	// may drop below it there.
	g3 := appendDay(tbl, 3, 12, choc, wine)
	g10 := appendDay(tbl, 10, 10, bread)
	m, err := h.Maintain(tbl, []timegran.Granule{g3, g10})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(m, rebuilt) {
		t.Fatal("Maintain differs from full rebuild")
	}
}

// TestMaintainNewcomerRecovery appends a brand-new pair frequent in one
// dirty granule; its clean-region history must be recovered exactly.
func TestMaintainNewcomerRecovery(t *testing.T) {
	tbl := buildFixture(t)
	// Sprinkle sub-threshold occurrences of {7,8} through the history so
	// recovery has something non-zero to find.
	for d := 0; d < 28; d += 4 {
		appendDay(tbl, d, 2, 7, 8)
	}
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts(itemset.New(7, 8)) != nil {
		t.Fatal("fixture: {7,8} already tracked")
	}
	g := appendDay(tbl, 14, 15, 7, 8)
	m, err := h.Maintain(tbl, []timegran.Granule{g})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(m, rebuilt) {
		t.Fatal("Maintain differs from full rebuild")
	}
	if m.Counts(itemset.New(7, 8)) == nil {
		t.Fatal("newcomer pair not tracked after Maintain")
	}
}

// TestMaintainSpanGrowth covers appends both before the old span start
// and after its end, all declared dirty.
func TestMaintainSpanGrowth(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	gPre := appendDay(tbl, -2, 10, bread, milk)
	gPost := appendDay(tbl, 30, 10, bread, milk)
	m, err := h.Maintain(tbl, []timegran.Granule{gPre, gPost})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(m, rebuilt) {
		t.Fatal("Maintain differs from full rebuild after span growth")
	}
}

// TestMaintainIncompleteDirtyList drops a changed granule from the
// dirty list; Maintain must refuse rather than splice stale counts.
func TestMaintainIncompleteDirtyList(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	g5 := appendDay(tbl, 5, 3, bread)
	appendDay(tbl, 9, 3, bread)
	if _, err := h.Maintain(tbl, []timegran.Granule{g5}); err == nil {
		t.Fatal("Maintain accepted an incomplete dirty list")
	}
	// The complete list is fine.
	g9 := timegran.GranuleOf(fixtureStart.AddDate(0, 0, 9), timegran.Day)
	if _, err := h.Maintain(tbl, []timegran.Granule{g5, g9}); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainWithDirtySince wires the table's change log to Maintain:
// the production path the cache uses.
func TestMaintainWithDirtySince(t *testing.T) {
	tbl := buildFixture(t)
	epoch := tbl.Epoch()
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	appendDay(tbl, 2, 6, choc, wine)
	appendDay(tbl, 20, 4, bbq, charcoal)
	appendDay(tbl, 29, 10, bread, milk)
	dirty, _, ok := tbl.DirtySince(timegran.Day, epoch)
	if !ok {
		t.Fatal("DirtySince not covered")
	}
	m, err := h.Maintain(tbl, dirty)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(m, rebuilt) {
		t.Fatal("Maintain(DirtySince) differs from full rebuild")
	}
}

// TestQuickMaintainEquivalent is the property-based version: random
// base data, a random batch of appends into random granules (inside and
// outside the old span), Maintain must equal a cold rebuild.
func TestQuickMaintainEquivalent(t *testing.T) {
	cfg := Config{Granularity: timegran.Day, MinSupport: 0.4, MinConfidence: 0.5, MinFreq: 1, MaxK: 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _ := tdb.NewTxTable("q")
		start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
		days := 6 + rng.Intn(6)
		for d := 0; d < days; d++ {
			for i, ntx := 0, 2+rng.Intn(5); i < ntx; i++ {
				var items []itemset.Item
				for x := itemset.Item(1); x <= 5; x++ {
					if rng.Intn(2) == 0 {
						items = append(items, x)
					}
				}
				if len(items) == 0 {
					items = append(items, 1)
				}
				tbl.Append(start.AddDate(0, 0, d).Add(time.Duration(i)*time.Minute), itemset.New(items...))
			}
		}
		epoch := tbl.Epoch()
		h, err := BuildHoldTable(tbl, cfg)
		if err != nil {
			return true // degenerate (e.g. no active granule): nothing to maintain
		}
		// Random appends: days -1..days+2, so prepends, in-span and
		// extension all occur.
		for a, na := 0, 1+rng.Intn(8); a < na; a++ {
			d := -1 + rng.Intn(days+3)
			var items []itemset.Item
			for x := itemset.Item(1); x <= 5; x++ {
				if rng.Intn(2) == 0 {
					items = append(items, x)
				}
			}
			if len(items) == 0 {
				items = append(items, 2)
			}
			tbl.Append(start.AddDate(0, 0, d).Add(time.Duration(a)*time.Second), itemset.New(items...))
		}
		dirty, _, ok := tbl.DirtySince(timegran.Day, epoch)
		if !ok {
			return false
		}
		m, err := h.Maintain(tbl, dirty)
		if err != nil {
			return false
		}
		rebuilt, err := BuildHoldTable(tbl, cfg)
		if err != nil {
			return false
		}
		return holdTablesEqual(m, rebuilt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
