package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/timegran"
)

// passCancelTracer cancels a context when the build finishes its n-th
// counting pass — a deterministic way to cancel mid-build without
// timing assumptions.
type passCancelTracer struct {
	cancel context.CancelFunc
	after  int
	seen   int
	onEnd  func() // optional extra hook, runs after the cancel
}

func (t *passCancelTracer) Enabled() bool         { return true }
func (t *passCancelTracer) StartTask(string)      {}
func (t *passCancelTracer) EndTask()              {}
func (t *passCancelTracer) StartPass(int)         {}
func (t *passCancelTracer) Counter(string, int64) {}
func (t *passCancelTracer) Gauge(string, float64) {}
func (t *passCancelTracer) EndPass(obs.PassStats) {
	t.seen++
	if t.seen == t.after {
		t.cancel()
		if t.onEnd != nil {
			t.onEnd()
		}
	}
}

func TestBuildHoldTableCancelMidBuild(t *testing.T) {
	tbl := buildFixture(t)
	backends := map[string]apriori.Backend{
		"auto":   apriori.BackendAuto,
		"bitmap": apriori.BackendBitmap,
		"naive":  apriori.BackendNaive,
	}
	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := fixtureConfig()
			cfg.MinSupport = 0.1 // deep enough for several passes
			cfg.Tracer = &passCancelTracer{cancel: cancel, after: 1}
			cfg.Backend = backend
			_, err := BuildHoldTableContext(ctx, tbl, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

func TestBuildHoldTableCancelParallel(t *testing.T) {
	tbl := buildFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fixtureConfig()
	cfg.Workers = 4
	cfg.Tracer = &passCancelTracer{cancel: cancel, after: 1}
	_, err := BuildHoldTableContext(ctx, tbl, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTaskDriversCancelled runs every FromTable task driver under an
// already-cancelled context: each must return context.Canceled without
// emitting results.
func TestTaskDriversCancelled(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	feature, err := timegran.ParsePattern("weekday in (sat, sun)")
	if err != nil {
		t.Fatal(err)
	}
	drivers := map[string]func() error{
		"during": func() error {
			_, err := MineDuringFromTableContext(ctx, h, feature)
			return err
		},
		"periods": func() error {
			_, err := MineValidPeriodsFromTableContext(ctx, h, PeriodConfig{})
			return err
		},
		"cycles": func() error {
			_, err := MineCyclesFromTableContext(ctx, h, CycleConfig{})
			return err
		},
		"calendars": func() error {
			_, err := MineCalendarPeriodicitiesFromTableContext(ctx, h, CycleConfig{})
			return err
		},
		"history": func() error {
			_, err := RuleHistoryFromTableContext(ctx, h, itemset.New(bread), itemset.New(milk))
			return err
		},
		"extend": func() error {
			_, err := h.ExtendContext(ctx, tbl)
			return err
		},
	}
	for name, run := range drivers {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestHoldCacheCancelNoPoison checks a cancelled build never leaves a
// cache entry behind: the next Get with a live context rebuilds
// cleanly and succeeds.
func TestHoldCacheCancelNoPoison(t *testing.T) {
	tbl := buildFixture(t)
	cache := NewHoldCache(64 << 20)
	cfg := fixtureConfig()

	ctx, cancel := context.WithCancel(context.Background())
	cfg.Tracer = &passCancelTracer{cancel: cancel, after: 1}
	if _, err := cache.GetContext(ctx, tbl, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: err = %v, want context.Canceled", err)
	}
	cancel()

	cfg.Tracer = nil
	h, err := cache.GetContext(context.Background(), tbl, cfg)
	if err != nil {
		t.Fatalf("rebuild after cancelled build: %v", err)
	}
	if h == nil || h.NGranules() == 0 {
		t.Fatal("rebuild returned an empty table")
	}
	st := cache.Stats()
	if st.Hits != 0 {
		t.Errorf("hits = %d; a cancelled build must not be served as a hit", st.Hits)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (cancelled build + clean rebuild)", st.Misses)
	}
}

// TestHoldCacheLoserRetriesAfterWinnerCancelled: a waiter that joined a
// flight whose *winner* was cancelled must not inherit the winner's
// context error; it retries and gets a real table.
func TestHoldCacheLoserRetriesAfterWinnerCancelled(t *testing.T) {
	tbl := buildFixture(t)
	cache := NewHoldCache(64 << 20)

	winnerCtx, winnerCancel := context.WithCancel(context.Background())
	defer winnerCancel()
	started := make(chan struct{})
	cfgWinner := fixtureConfig()
	cfgWinner.Tracer = &passCancelTracer{
		cancel: winnerCancel,
		after:  1,
		onEnd: func() {
			close(started)                    // let the loser join the flight
			time.Sleep(50 * time.Millisecond) // keep the flight open briefly
		},
	}

	winnerErr := make(chan error, 1)
	go func() {
		_, err := cache.GetContext(winnerCtx, tbl, cfgWinner)
		winnerErr <- err
	}()

	<-started
	h, err := cache.GetContext(context.Background(), tbl, fixtureConfig())
	if err != nil {
		t.Fatalf("loser: err = %v, want clean retry", err)
	}
	if h == nil || h.NGranules() != 28 {
		t.Fatalf("loser got a bad table: %+v", h)
	}
	if err := <-winnerErr; !errors.Is(err, context.Canceled) {
		t.Errorf("winner: err = %v, want context.Canceled", err)
	}
}

// TestHoldCacheWaiterCancelled: a waiter whose own context dies while
// the flight is in progress returns its ctx.Err() promptly, while the
// winner completes normally.
func TestHoldCacheWaiterCancelled(t *testing.T) {
	tbl := buildFixture(t)
	cache := NewHoldCache(64 << 20)

	started := make(chan struct{})
	release := make(chan struct{})
	var once bool
	cfgWinner := fixtureConfig()
	// Hold the build open after the first pass so the waiter reliably
	// joins the flight and can be cancelled while waiting.
	cfgWinner.Tracer = tracerFunc(func() {
		if !once {
			once = true
			close(started)
			<-release
		}
	})

	winnerErr := make(chan error, 1)
	go func() {
		_, err := cache.GetContext(context.Background(), tbl, cfgWinner)
		winnerErr <- err
	}()

	<-started
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := cache.GetContext(waiterCtx, tbl, fixtureConfig())
		waiterDone <- err
	}()
	// Give the waiter a moment to join the flight, then cancel it.
	time.Sleep(20 * time.Millisecond)
	waiterCancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter: err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-winnerErr; err != nil {
		t.Fatalf("winner: %v", err)
	}
}

// tracerFunc adapts a func to a Tracer whose EndPass calls it.
type tracerFuncT struct{ f func() }

func tracerFunc(f func()) obs.Tracer { return &tracerFuncT{f: f} }

func (t *tracerFuncT) Enabled() bool         { return true }
func (t *tracerFuncT) StartTask(string)      {}
func (t *tracerFuncT) EndTask()              {}
func (t *tracerFuncT) StartPass(int)         {}
func (t *tracerFuncT) EndPass(obs.PassStats) { t.f() }
func (t *tracerFuncT) Counter(string, int64) {}
func (t *tracerFuncT) Gauge(string, float64) {}
