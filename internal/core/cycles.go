package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// CycleConfig tunes Task II, the discovery of periodicities.
type CycleConfig struct {
	// MaxLen is the largest cycle length (in granules) considered;
	// 0 defaults to 31 (covers weekly and monthly cycles at Day
	// granularity).
	MaxLen int
	// MinReps is the minimum number of occurrences a cycle must have
	// within the mined span — a "cycle" seen once is noise; 0 defaults
	// to 2.
	MinReps int
}

func (c CycleConfig) normalise() (CycleConfig, error) {
	if c.MaxLen < 0 || c.MinReps < 0 {
		return c, fmt.Errorf("core: negative CycleConfig field")
	}
	if c.MaxLen == 0 {
		c.MaxLen = 31
	}
	if c.MinReps == 0 {
		c.MinReps = 2
	}
	return c, nil
}

// CyclicRule is a Task II result: a rule together with one cycle it
// obeys.
type CyclicRule struct {
	TemporalRule
	Cycle timegran.Cycle
}

// MineCycles runs Task II over tbl: for every rule, find the arithmetic
// cycles (length ≤ MaxLen) such that the rule holds in at least MinFreq
// of the cycle's active occurrence granules. With MinFreq = 1 these are
// exact cycles in the sense of Özden et al.; lower values tolerate
// noise. Redundant multiples of discovered cycles are suppressed.
func MineCycles(tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]CyclicRule, error) {
	return MineCyclesContext(context.Background(), tbl, cfg, ccfg)
}

// MineCyclesContext is MineCycles under a context.
func MineCyclesContext(ctx context.Context, tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]CyclicRule, error) {
	h, err := BuildHoldTableContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	return MineCyclesFromTableContext(ctx, h, ccfg)
}

// MineCyclesFromTable is MineCycles over a prebuilt HoldTable.
func MineCyclesFromTable(h *HoldTable, ccfg CycleConfig) ([]CyclicRule, error) {
	return MineCyclesFromTableContext(context.Background(), h, ccfg)
}

// MineCyclesFromTableContext is MineCyclesFromTable under a context;
// cancellation is sampled every few hundred candidates.
func MineCyclesFromTableContext(ctx context.Context, h *HoldTable, ccfg CycleConfig) ([]CyclicRule, error) {
	ccfg, err := ccfg.normalise()
	if err != nil {
		return nil, err
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask(obs.TaskSpan(obs.TaskCycles))
		defer tr.EndTask()
	}
	var out []CyclicRule
	err = ruleCandidateLoop(ctx, h, func(rc RuleCandidate) {
		hold, ok := h.Holds(rc)
		if !ok {
			return
		}
		cycles := detectCycles(hold, h.Active, h.Span.Lo, ccfg.MaxLen, ccfg.MinReps, h.Cfg.MinFreq)
		for _, cyc := range FilterRedundantCycles(cycles) {
			keep := func(gi int) bool { return cyc.Matches(h.Cfg.Granularity, h.Span.Lo+int64(gi)) }
			rule, ok := h.AggStats(rc, keep)
			if !ok {
				continue
			}
			occ, hit := cycleOccurrences(hold, h.Active, h.Span.Lo, cyc)
			out = append(out, CyclicRule{
				TemporalRule: TemporalRule{
					Rule:            rule,
					Feature:         cyc,
					Granularity:     h.Cfg.Granularity,
					Freq:            float64(hit) / float64(occ),
					HoldGranules:    hit,
					FeatureGranules: occ,
				},
				Cycle: cyc,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	sortCyclicRules(out)
	h.Cfg.tracer().Counter(obs.MetricRulesEmitted, int64(len(out)))
	return out, nil
}

func sortCyclicRules(rules []CyclicRule) {
	sort.Slice(rules, func(i, j int) bool {
		if c := rules[i].Rule.Compare(rules[j].Rule); c != 0 {
			return c < 0
		}
		if rules[i].Cycle.Length != rules[j].Cycle.Length {
			return rules[i].Cycle.Length < rules[j].Cycle.Length
		}
		return rules[i].Cycle.Offset < rules[j].Cycle.Offset
	})
}

// detectCycles scans a hold sequence for cycles (length ℓ ≤ maxLen)
// whose active occurrences number at least minReps and are held in at
// least minFreq fraction. Offsets in the returned cycles are absolute
// (relative to granule 0, not to the span start), so the cycles match
// granule indices directly.
func detectCycles(hold, active []bool, spanLo int64, maxLen, minReps int, minFreq float64) []timegran.Cycle {
	var out []timegran.Cycle
	n := len(hold)
	for l := 1; l <= maxLen; l++ {
		for o := 0; o < l; o++ {
			occ, hit := 0, 0
			for gi := o; gi < n; gi += l {
				if !active[gi] {
					continue
				}
				occ++
				if hold[gi] {
					hit++
				}
			}
			if occ < minReps {
				continue
			}
			if float64(hit) >= minFreq*float64(occ)-1e-12 {
				absOff := (spanLo + int64(o)) % int64(l)
				if absOff < 0 {
					absOff += int64(l)
				}
				out = append(out, timegran.Cycle{Length: int64(l), Offset: absOff})
			}
		}
	}
	return out
}

// cycleOccurrences counts the active occurrences of cyc within the
// span, and how many of them hold.
func cycleOccurrences(hold, active []bool, spanLo int64, cyc timegran.Cycle) (occ, hit int) {
	for gi := range hold {
		if !active[gi] || !cyc.Matches(0, spanLo+int64(gi)) {
			continue
		}
		occ++
		if hold[gi] {
			hit++
		}
	}
	return occ, hit
}

// sortCycles orders cycles canonically by (length, offset).
func sortCycles(cs []timegran.Cycle) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Length != cs[j].Length {
			return cs[i].Length < cs[j].Length
		}
		return cs[i].Offset < cs[j].Offset
	})
}

// FilterRedundantCycles removes cycles that are implied by a shorter
// discovered cycle: (ℓ, o) is redundant when some (ℓ', o') in the set
// has ℓ' dividing ℓ and o ≡ o' (mod ℓ'), since every occurrence of the
// longer cycle is an occurrence of the shorter one.
func FilterRedundantCycles(cycles []timegran.Cycle) []timegran.Cycle {
	sortCycles(cycles)
	var out []timegran.Cycle
	for _, c := range cycles {
		redundant := false
		for _, base := range cycles {
			if base.Length >= c.Length {
				continue
			}
			if c.Length%base.Length == 0 && c.Offset%base.Length == base.Offset {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Calendar periodicities: fold granules onto calendar classes.

// CalendarRule is a Task II calendar-periodicity result: a rule with a
// calendar-class feature such as "weekday in (6..7)".
type CalendarRule struct {
	TemporalRule
	Field timegran.CalField
}

// calendarFieldsFor returns the calendar fields it makes sense to fold
// a given granularity onto: folding days onto day-of-week and
// month-of-year, hours additionally onto hour-of-day, months onto
// month-of-year only.
func calendarFieldsFor(g timegran.Granularity) []timegran.CalField {
	switch g {
	case timegran.Second, timegran.Minute, timegran.Hour:
		return []timegran.CalField{timegran.FieldHour, timegran.FieldWeekday, timegran.FieldMonth}
	case timegran.Day:
		return []timegran.CalField{timegran.FieldWeekday, timegran.FieldMonthDay, timegran.FieldMonth}
	case timegran.Week:
		return []timegran.CalField{timegran.FieldMonth}
	case timegran.Month, timegran.Quarter:
		return []timegran.CalField{timegran.FieldMonth}
	default:
		return nil
	}
}

// MineCalendarPeriodicities runs the calendar side of Task II: for each
// rule and each applicable calendar field, find the field values whose
// active granules hold the rule with frequency ≥ MinFreq, and report
// them as a Calendar pattern. Classes are reported only when they are
// informative: at least one value qualifies and not every observed
// value does (a rule holding on all seven weekdays is simply always
// true and belongs to Task I/III output, not here). Classes need at
// least minReps occurrences, reusing CycleConfig.MinReps.
func MineCalendarPeriodicities(tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]CalendarRule, error) {
	return MineCalendarPeriodicitiesContext(context.Background(), tbl, cfg, ccfg)
}

// MineCalendarPeriodicitiesContext is MineCalendarPeriodicities under
// a context.
func MineCalendarPeriodicitiesContext(ctx context.Context, tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]CalendarRule, error) {
	h, err := BuildHoldTableContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	return MineCalendarPeriodicitiesFromTableContext(ctx, h, ccfg)
}

// MineCalendarPeriodicitiesFromTable is MineCalendarPeriodicities over
// a prebuilt HoldTable.
func MineCalendarPeriodicitiesFromTable(h *HoldTable, ccfg CycleConfig) ([]CalendarRule, error) {
	return MineCalendarPeriodicitiesFromTableContext(context.Background(), h, ccfg)
}

// MineCalendarPeriodicitiesFromTableContext is the context-aware form;
// cancellation is sampled every few hundred candidates.
func MineCalendarPeriodicitiesFromTableContext(ctx context.Context, h *HoldTable, ccfg CycleConfig) ([]CalendarRule, error) {
	ccfg, err := ccfg.normalise()
	if err != nil {
		return nil, err
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask(obs.TaskSpan(obs.TaskCalendars))
		defer tr.EndTask()
	}
	fields := calendarFieldsFor(h.Cfg.Granularity)
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: no calendar folding defined for granularity %v", h.Cfg.Granularity)
	}

	// Precompute each granule's class per field.
	classes := make([][]int, len(fields))
	for fi, f := range fields {
		classes[fi] = make([]int, h.NGranules())
		for gi := range classes[fi] {
			classes[fi][gi] = timegran.FieldValueAt(f, h.Cfg.Granularity, h.Span.Lo+int64(gi))
		}
	}

	var out []CalendarRule
	err = ruleCandidateLoop(ctx, h, func(rc RuleCandidate) {
		hold, ok := h.Holds(rc)
		if !ok {
			return
		}
		for fi, f := range fields {
			lo, hi := timegran.FieldDomain(f)
			occ := make([]int, hi-lo+1)
			hit := make([]int, hi-lo+1)
			for gi := range hold {
				if !h.Active[gi] {
					continue
				}
				v := classes[fi][gi] - lo
				occ[v]++
				if hold[gi] {
					hit[v]++
				}
			}
			var ranges []timegran.FieldRange
			observed, qualifying := 0, 0
			for v := range occ {
				if occ[v] == 0 {
					continue
				}
				observed++
				if occ[v] >= ccfg.MinReps && float64(hit[v]) >= h.Cfg.MinFreq*float64(occ[v])-1e-12 {
					qualifying++
					val := v + lo
					if n := len(ranges); n > 0 && ranges[n-1].Hi == val-1 {
						ranges[n-1].Hi = val
					} else {
						ranges = append(ranges, timegran.FieldRange{Lo: val, Hi: val})
					}
				}
			}
			if qualifying == 0 || qualifying == observed {
				continue // uninformative: never or always
			}
			cal, err := timegran.NewCalendar(f, ranges...)
			if err != nil {
				continue
			}
			keep := func(gi int) bool { return h.Active[gi] && cal.Matches(h.Cfg.Granularity, h.Span.Lo+int64(gi)) }
			rule, ok := h.AggStats(rc, keep)
			if !ok {
				continue
			}
			nOcc, nHit := 0, 0
			for gi := range hold {
				if keep(gi) {
					nOcc++
					if hold[gi] {
						nHit++
					}
				}
			}
			out = append(out, CalendarRule{
				TemporalRule: TemporalRule{
					Rule:            rule,
					Feature:         cal,
					Granularity:     h.Cfg.Granularity,
					Freq:            float64(nHit) / float64(nOcc),
					HoldGranules:    nHit,
					FeatureGranules: nOcc,
				},
				Field: f,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Rule.Compare(out[j].Rule); c != 0 {
			return c < 0
		}
		if out[i].Field != out[j].Field {
			return out[i].Field < out[j].Field
		}
		return out[i].Feature.String() < out[j].Feature.String()
	})
	h.Cfg.tracer().Counter(obs.MetricRulesEmitted, int64(len(out)))
	return out, nil
}
