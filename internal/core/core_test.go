package core

import (
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Items of the fixture.
const (
	bread    itemset.Item = 1
	milk     itemset.Item = 2
	bbq      itemset.Item = 3
	charcoal itemset.Item = 4
	choc     itemset.Item = 5
	wine     itemset.Item = 6
)

// fixtureStart is a Monday, so weekday arithmetic is easy to read:
// day offset d has ISO weekday (d mod 7) + 1.
var fixtureStart = time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC)

// buildFixture creates 28 days × 10 transactions with three planted
// temporal rules:
//
//   - {bread} ⇒ {milk}: holds every day (8/10 transactions, conf 0.8).
//   - {bbq} ⇒ {charcoal}: all 10 transactions on days 7..13 only — a
//     one-week valid period.
//   - {choc} ⇒ {wine}: 9/10 transactions on Saturdays and Sundays
//     (offsets 5,6 mod 7) — a weekend periodicity.
func buildFixture(t *testing.T) *tdb.TxTable {
	t.Helper()
	tbl, err := tdb.NewTxTable("fixture")
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 28; d++ {
		at := fixtureStart.AddDate(0, 0, d)
		weekend := d%7 == 5 || d%7 == 6
		seasonal := d >= 7 && d <= 13
		for i := 0; i < 10; i++ {
			items := []itemset.Item{bread}
			if i < 8 {
				items = append(items, milk)
			}
			if seasonal {
				items = append(items, bbq, charcoal)
			}
			if weekend && i < 9 {
				items = append(items, choc, wine)
			}
			tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(items...))
		}
	}
	return tbl
}

func fixtureConfig() Config {
	return Config{
		Granularity:   timegran.Day,
		MinSupport:    0.5,
		MinConfidence: 0.7,
		MinFreq:       1.0,
	}
}

func dayGranule(d int) int64 {
	return timegran.GranuleOf(fixtureStart.AddDate(0, 0, d), timegran.Day)
}

func TestConfigValidation(t *testing.T) {
	tbl := buildFixture(t)
	bad := []Config{
		{Granularity: timegran.Day, MinSupport: 0, MinFreq: 1},
		{Granularity: timegran.Day, MinSupport: 1.5, MinFreq: 1},
		{Granularity: timegran.Day, MinSupport: 0.5, MinConfidence: 2, MinFreq: 1},
		{Granularity: timegran.Day, MinSupport: 0.5, MinFreq: 0},
		{Granularity: timegran.Day, MinSupport: 0.5, MinFreq: 1.5},
		{Granularity: timegran.Granularity(99), MinSupport: 0.5, MinFreq: 1},
		{Granularity: timegran.Day, MinSupport: 0.5, MinFreq: 1, MinGranuleTx: -1},
	}
	for i, cfg := range bad {
		if _, err := BuildHoldTable(tbl, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	empty, _ := tdb.NewTxTable("empty")
	if _, err := BuildHoldTable(empty, fixtureConfig()); err == nil {
		t.Error("empty table accepted")
	}
}

func TestBuildHoldTableBasics(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.NGranules() != 28 || h.NActive != 28 {
		t.Fatalf("granules=%d active=%d", h.NGranules(), h.NActive)
	}
	for gi := 0; gi < 28; gi++ {
		if h.TxCounts[gi] != 10 || h.MinCounts[gi] != 5 {
			t.Fatalf("granule %d: tx=%d min=%d", gi, h.TxCounts[gi], h.MinCounts[gi])
		}
	}
	// bread is in every transaction.
	bc := h.Counts(itemset.New(bread))
	if bc == nil {
		t.Fatal("{bread} not granule-frequent")
	}
	for gi, c := range bc {
		if c != 10 {
			t.Errorf("count(bread, day %d) = %d", gi, c)
		}
	}
	// {bbq, charcoal} is frequent only on days 7..13.
	sc := h.Counts(itemset.New(bbq, charcoal))
	if sc == nil {
		t.Fatal("{bbq,charcoal} not granule-frequent")
	}
	for gi, c := range sc {
		want := int32(0)
		if gi >= 7 && gi <= 13 {
			want = 10
		}
		if c != want {
			t.Errorf("count(bbq+charcoal, day %d) = %d, want %d", gi, c, want)
		}
	}
	// Level sizes: frequent singles are bread, milk (everywhere), and
	// bbq/charcoal/choc/wine (somewhere).
	if got := len(h.ByK[1]); got != 6 {
		t.Errorf("frequent 1-itemsets = %d, want 6", got)
	}
}

func TestHoldsSequences(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(ante, cons itemset.Set, wantHold func(d int) bool) {
		t.Helper()
		rc := RuleCandidate{Ante: ante, Cons: cons, Full: ante.Union(cons)}
		hold, ok := h.Holds(rc)
		if !ok {
			t.Fatalf("rule %v=>%v has no hold sequence", ante, cons)
		}
		for d := 0; d < 28; d++ {
			if hold[d] != wantHold(d) {
				t.Errorf("rule %v=>%v day %d: hold=%v want %v", ante, cons, d, hold[d], wantHold(d))
			}
		}
	}
	check(itemset.New(bread), itemset.New(milk), func(d int) bool { return true })
	check(itemset.New(bbq), itemset.New(charcoal), func(d int) bool { return d >= 7 && d <= 13 })
	check(itemset.New(choc), itemset.New(wine), func(d int) bool { return d%7 == 5 || d%7 == 6 })

	// A rule whose full itemset is never frequent.
	if _, ok := h.Holds(RuleCandidate{
		Ante: itemset.New(bread), Cons: itemset.New(99),
		Full: itemset.New(bread, 99),
	}); ok {
		t.Error("phantom rule produced a hold sequence")
	}
}

func TestMaximalDenseIntervals(t *testing.T) {
	on := func(n int, idx ...int) []bool {
		v := make([]bool, n)
		for _, i := range idx {
			v[i] = true
		}
		return v
	}
	allActive := func(n int) []bool {
		v := make([]bool, n)
		for i := range v {
			v[i] = true
		}
		return v
	}
	cases := []struct {
		name    string
		hold    []bool
		active  []bool
		minFreq float64
		minLen  int
		want    []ivOff
	}{
		{
			name: "single run", hold: on(10, 3, 4, 5), active: allActive(10),
			minFreq: 1, minLen: 2, want: []ivOff{{3, 5}},
		},
		{
			name: "two runs", hold: on(10, 1, 2, 6, 7, 8), active: allActive(10),
			minFreq: 1, minLen: 2, want: []ivOff{{1, 2}, {6, 8}},
		},
		{
			name: "min length filters", hold: on(10, 1, 5, 6), active: allActive(10),
			minFreq: 1, minLen: 2, want: []ivOff{{5, 6}},
		},
		{
			name: "gap tolerated at lower freq", hold: on(10, 2, 3, 5, 6), active: allActive(10),
			minFreq: 0.8, minLen: 2, want: []ivOff{{2, 6}},
		},
		{
			name: "inactive granule is neutral", hold: on(10, 2, 3, 5, 6),
			active:  func() []bool { a := allActive(10); a[4] = false; return a }(),
			minFreq: 1, minLen: 2, want: []ivOff{{2, 6}},
		},
		{
			name: "nothing holds", hold: on(10), active: allActive(10),
			minFreq: 1, minLen: 1, want: nil,
		},
		{
			name: "whole span", hold: allActive(6), active: allActive(6),
			minFreq: 1, minLen: 2, want: []ivOff{{0, 5}},
		},
	}
	for _, c := range cases {
		got := maximalDenseIntervals(c.hold, c.active, c.minFreq, c.minLen)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestMineValidPeriodsFixture(t *testing.T) {
	tbl := buildFixture(t)
	rules, err := MineValidPeriods(tbl, fixtureConfig(), PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	find := func(ante, cons itemset.Set) []PeriodRule {
		var out []PeriodRule
		for _, r := range rules {
			if r.Rule.Antecedent.Equal(ante) && r.Rule.Consequent.Equal(cons) {
				out = append(out, r)
			}
		}
		return out
	}
	// {bread} ⇒ {milk}: the whole 28-day span.
	bm := find(itemset.New(bread), itemset.New(milk))
	if len(bm) != 1 {
		t.Fatalf("{bread}=>{milk} periods = %d, want 1", len(bm))
	}
	if bm[0].Interval.Lo != dayGranule(0) || bm[0].Interval.Hi != dayGranule(27) {
		t.Errorf("{bread}=>{milk} interval = %v", bm[0].Interval)
	}
	if bm[0].Freq != 1 || bm[0].FeatureGranules != 28 {
		t.Errorf("{bread}=>{milk} freq=%v granules=%d", bm[0].Freq, bm[0].FeatureGranules)
	}
	if bm[0].Rule.Confidence < 0.79 || bm[0].Rule.Confidence > 0.81 {
		t.Errorf("{bread}=>{milk} aggregate confidence = %v", bm[0].Rule.Confidence)
	}

	// {bbq} ⇒ {charcoal}: exactly days 7..13.
	sc := find(itemset.New(bbq), itemset.New(charcoal))
	if len(sc) != 1 {
		t.Fatalf("{bbq}=>{charcoal} periods = %d, want 1", len(sc))
	}
	if sc[0].Interval.Lo != dayGranule(7) || sc[0].Interval.Hi != dayGranule(13) {
		t.Errorf("{bbq}=>{charcoal} interval = [%d,%d], want [%d,%d]",
			sc[0].Interval.Lo, sc[0].Interval.Hi, dayGranule(7), dayGranule(13))
	}
	if sc[0].Rule.Confidence != 1 {
		t.Errorf("{bbq}=>{charcoal} confidence in period = %v", sc[0].Rule.Confidence)
	}

	// {choc} ⇒ {wine}: four two-day weekend periods.
	cw := find(itemset.New(choc), itemset.New(wine))
	if len(cw) != 4 {
		t.Fatalf("{choc}=>{wine} periods = %d, want 4", len(cw))
	}
	for i, r := range cw {
		wantLo := dayGranule(5 + 7*i)
		if r.Interval.Lo != wantLo || r.Interval.Hi != wantLo+1 {
			t.Errorf("weekend period %d = [%d,%d], want [%d,%d]", i, r.Interval.Lo, r.Interval.Hi, wantLo, wantLo+1)
		}
	}

	// The Window feature must match exactly the granules of the period.
	w := sc[0].Feature
	if !w.Matches(timegran.Day, dayGranule(7)) || !w.Matches(timegran.Day, dayGranule(13)) {
		t.Error("window feature misses its own period")
	}
	if w.Matches(timegran.Day, dayGranule(6)) || w.Matches(timegran.Day, dayGranule(14)) {
		t.Error("window feature covers granules outside the period")
	}
}

func TestMineValidPeriodsAcrossInactiveGap(t *testing.T) {
	tbl, _ := tdb.NewTxTable("gap")
	// Rule holds on days 0..2 and 4..6; day 3 has no transactions at
	// all (inactive) and must not break the period.
	for _, d := range []int{0, 1, 2, 4, 5, 6} {
		at := fixtureStart.AddDate(0, 0, d)
		for i := 0; i < 5; i++ {
			tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(bread, milk))
		}
	}
	rules, err := MineValidPeriods(tbl, fixtureConfig(), PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	var bm []PeriodRule
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(itemset.New(bread)) && r.Rule.Consequent.Equal(itemset.New(milk)) {
			bm = append(bm, r)
		}
	}
	if len(bm) != 1 || bm[0].Interval.Lo != dayGranule(0) || bm[0].Interval.Hi != dayGranule(6) {
		t.Errorf("gap periods = %+v, want one spanning days 0..6", bm)
	}
	if bm[0].FeatureGranules != 6 {
		t.Errorf("active granules in period = %d, want 6", bm[0].FeatureGranules)
	}
}

func TestMineTraditionalMissesTemporalRules(t *testing.T) {
	tbl := buildFixture(t)
	rules, err := MineTraditional(tbl, 0.5, 0.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	hasRule := func(ante, cons itemset.Set) bool {
		for _, r := range rules {
			if r.Antecedent.Equal(ante) && r.Consequent.Equal(cons) {
				return true
			}
		}
		return false
	}
	if !hasRule(itemset.New(bread), itemset.New(milk)) {
		t.Error("traditional mining misses the always-on rule")
	}
	// Overall support of the seasonal pair is 70/280 = 0.25 < 0.5 and
	// of the weekend pair 72/280 ≈ 0.257 < 0.5: both invisible without
	// the temporal dimension. That is the paper's E1 claim.
	if hasRule(itemset.New(bbq), itemset.New(charcoal)) {
		t.Error("traditional mining should not see the seasonal rule at 0.5 support")
	}
	if hasRule(itemset.New(choc), itemset.New(wine)) {
		t.Error("traditional mining should not see the weekend rule at 0.5 support")
	}
}
