package core

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Extend incrementally updates the hold table after new transactions
// were appended to tbl at or after the old span's end (the production
// pattern: one new day arrives, yesterday's table is refreshed without
// recounting the whole history). It returns a new HoldTable; the
// receiver is unchanged.
//
// Extend is the append-at-the-end special case of Maintain: the dirty
// region is the old final granule (appends may land inside it) plus
// every granule after it. It returns an error if the table's span no
// longer starts where it used to, or if nothing new arrived; appends
// that landed strictly inside the old span are caught by Maintain's
// dirty-list soundness check and also surface as an error telling the
// caller to rebuild.
func (h *HoldTable) Extend(tbl *tdb.TxTable) (*HoldTable, error) {
	return h.ExtendContext(context.Background(), tbl)
}

// ExtendContext is Extend under a context; cancellation is observed
// between levels and between granule scans, never per transaction.
func (h *HoldTable) ExtendContext(ctx context.Context, tbl *tdb.TxTable) (*HoldTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	span, ok := tbl.Span(h.Cfg.Granularity)
	if !ok {
		return nil, fmt.Errorf("core: Extend on an empty table")
	}
	if span.Lo != h.Span.Lo {
		return nil, fmt.Errorf("core: Extend: span start moved from %d to %d; rebuild instead", h.Span.Lo, span.Lo)
	}
	if span.Hi <= h.Span.Hi {
		return nil, fmt.Errorf("core: Extend: no granules after %d (table ends at %d)", h.Span.Hi, span.Hi)
	}
	dirty := make([]timegran.Granule, 0, int(span.Hi-h.Span.Hi)+1)
	for g := h.Span.Hi; g <= span.Hi; g++ {
		dirty = append(dirty, g)
	}
	return h.MaintainContext(ctx, tbl, dirty)
}
