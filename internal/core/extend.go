package core

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Extend incrementally updates the hold table after new transactions
// were appended to tbl (the production pattern: one new day arrives,
// yesterday's table is refreshed without recounting the whole
// history). It returns a new HoldTable; the receiver is unchanged.
//
// The update has two parts:
//
//  1. Itemsets already tracked are counted in the new granules only —
//     one scan of the new data per level.
//  2. Itemsets that become granule-frequent *in the new granules* but
//     were not tracked before need their historical counts too; they
//     are counted over the old span in a second, candidate-restricted
//     pass. (An itemset frequent only in an old granule cannot newly
//     appear: old granules did not change.)
//
// Extend requires the old span's data to be unchanged: transactions
// may only have been appended at or after the old span's end. It
// returns an error if the table's span no longer starts where it used
// to, or if nothing new arrived.
func (h *HoldTable) Extend(tbl *tdb.TxTable) (*HoldTable, error) {
	return h.ExtendContext(context.Background(), tbl)
}

// ExtendContext is Extend under a context; cancellation is observed
// between levels and between granule scans, never per transaction.
func (h *HoldTable) ExtendContext(ctx context.Context, tbl *tdb.TxTable) (*HoldTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	span, ok := tbl.Span(h.Cfg.Granularity)
	if !ok {
		return nil, fmt.Errorf("core: Extend on an empty table")
	}
	if span.Lo != h.Span.Lo {
		return nil, fmt.Errorf("core: Extend: span start moved from %d to %d; rebuild instead", h.Span.Lo, span.Lo)
	}
	if span.Hi <= h.Span.Hi {
		return nil, fmt.Errorf("core: Extend: no granules after %d (table ends at %d)", h.Span.Hi, span.Hi)
	}
	oldN := h.NGranules()
	newSpan := timegran.Interval{Lo: h.Span.Hi + 1, Hi: span.Hi}

	// Rebuild the per-granule scaffolding over the widened span.
	nh := &HoldTable{
		Cfg:       h.Cfg,
		Span:      span,
		TxCounts:  tbl.GranuleCounts(h.Cfg.Granularity, span),
		MinCounts: make([]int, span.Len()),
		Active:    make([]bool, span.Len()),
		ByK:       [][]itemset.Set{nil},
		counts:    make(map[string][]int32, len(h.counts)),
	}
	for i, txc := range nh.TxCounts {
		if txc >= nh.Cfg.MinGranuleTx {
			nh.Active[i] = true
			nh.NActive++
			nh.MinCounts[i] = ceilCount(nh.Cfg.MinSupport, txc)
		}
	}
	if nh.NActive == 0 {
		return nil, fmt.Errorf("core: no granule has at least %d transactions", nh.Cfg.MinGranuleTx)
	}

	// Level 1 over the new granules only, through the time index (the
	// old region is never touched).
	c1 := make(map[itemset.Item][]int32)
	for g := newSpan.Lo; g <= newSpan.Hi; g++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gi := int(g - span.Lo)
		if !nh.Active[gi] {
			continue
		}
		tbl.GranuleSource(nh.Cfg.Granularity, g).ForEach(func(tx itemset.Set) {
			for _, x := range tx {
				v := c1[x]
				if v == nil {
					v = make([]int32, int(span.Len()))
					c1[x] = v
				}
				v[gi]++
			}
		})
	}

	// Merge level 1: carry forward old vectors (widened), adopt new
	// counts, and admit items that became frequent in a new granule.
	var l1 []itemset.Set
	seen := map[string]bool{}
	for _, s := range h.ByK[1] {
		old := h.counts[s.Key()]
		v := make([]int32, int(span.Len()))
		copy(v[:oldN], old)
		if nv := c1[s[0]]; nv != nil {
			copy(v[oldN:], nv[oldN:])
		}
		if nh.frequentSomewhere(v) {
			l1 = append(l1, s)
			nh.counts[s.Key()] = v
			seen[s.Key()] = true
		}
	}
	// Newly frequent items: their old-granule counts must be filled in.
	var newcomers []itemset.Set
	for x, nv := range c1 {
		s := itemset.Set{x}
		if seen[s.Key()] {
			continue
		}
		if nh.frequentSomewhere(nv) {
			newcomers = append(newcomers, s)
		}
	}
	if len(newcomers) > 0 {
		// One scan of the old region for the newcomer items — the only
		// part of Extend whose cost is proportional to the history, and
		// it runs only when a brand-new item crosses the threshold.
		want := make(map[itemset.Item][]int32, len(newcomers))
		for _, s := range newcomers {
			want[s[0]] = c1[s[0]]
		}
		for g := h.Span.Lo; g <= h.Span.Hi; g++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			gi := int(g - span.Lo)
			if !nh.Active[gi] {
				continue
			}
			tbl.GranuleSource(nh.Cfg.Granularity, g).ForEach(func(tx itemset.Set) {
				for _, x := range tx {
					if v, ok := want[x]; ok {
						v[gi]++
					}
				}
			})
		}
		for _, s := range newcomers {
			nh.counts[s.Key()] = c1[s[0]]
			l1 = append(l1, s)
		}
	}
	itemset.SortSets(l1)
	nh.ByK = append(nh.ByK, l1)

	// Higher levels: regular level-wise generation, but counting is
	// split — vectors known from the old table are carried and only
	// topped up on the new granules; unknown candidates are counted
	// over the whole span.
	prev := l1
	for k := 2; len(prev) > 1 && (nh.Cfg.MaxK == 0 || k <= nh.Cfg.MaxK); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands, _, _ := generateFromSets(prev)
		if len(cands) == 0 {
			break
		}
		var carried []itemset.Set // tracked before: top up new granules
		var fresh []itemset.Set   // need full-span counting
		for _, c := range cands {
			if h.countsOf(c) != nil {
				carried = append(carried, c)
			} else {
				fresh = append(fresh, c)
			}
		}
		merged := make(map[string][]int32, len(cands))
		if len(carried) > 0 {
			newCounts, err := countRange(ctx, tbl, nh, carried, k, newSpan)
			if err != nil {
				return nil, err
			}
			for i, c := range carried {
				v := make([]int32, int(span.Len()))
				copy(v[:oldN], h.counts[c.Key()])
				copy(v[oldN:], newCounts[i][oldN:])
				merged[c.Key()] = v
			}
		}
		if len(fresh) > 0 {
			// A fresh candidate cannot be frequent in an old granule:
			// if it were, its subsets were frequent there too, so the
			// old build would have generated and retained it. Count
			// fresh candidates on the new granules only, and recount
			// history just for the few that cross the threshold there.
			newCounts, err := countRange(ctx, tbl, nh, fresh, k, newSpan)
			if err != nil {
				return nil, err
			}
			var risers []itemset.Set
			var riserIdx []int
			for i, c := range fresh {
				if nh.frequentSomewhere(newCounts[i]) {
					risers = append(risers, c)
					riserIdx = append(riserIdx, i)
				}
			}
			if len(risers) > 0 {
				histCounts, err := countRange(ctx, tbl, nh, risers, k, h.Span)
				if err != nil {
					return nil, err
				}
				for j, c := range risers {
					v := newCounts[riserIdx[j]]
					copy(v[:oldN], histCounts[j][:oldN])
					merged[c.Key()] = v
				}
			}
		}
		var level []itemset.Set
		for _, c := range cands {
			v := merged[c.Key()]
			if v != nil && nh.frequentSomewhere(v) {
				level = append(level, c)
				nh.counts[c.Key()] = v
			}
		}
		nh.ByK = append(nh.ByK, level)
		prev = level
	}
	return nh, nil
}

// countRange counts candidates per granule, restricted to granules in
// r. Output vectors span the whole (new) table. The context is checked
// once per granule scan.
func countRange(ctx context.Context, tbl *tdb.TxTable, nh *HoldTable, cands []itemset.Set, k int, r timegran.Interval) ([][]int32, error) {
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, nh.NGranules())
	}
	tree, err := apriori.NewHashTree(cands, k, 0, 0)
	if err != nil {
		return nil, err
	}
	for g := r.Lo; g <= r.Hi; g++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gi := int(g - nh.Span.Lo)
		if gi < 0 || gi >= nh.NGranules() || !nh.Active[gi] {
			continue
		}
		tbl.GranuleSource(nh.Cfg.Granularity, g).ForEach(tree.Add)
		for i, c := range tree.Counts() {
			if c != 0 {
				out[i][gi] = int32(c)
			}
		}
		tree.Reset()
	}
	return out, nil
}
