package core

// The kill-and-recover differential oracle: the durable storage engine
// must be invisible to mining. A WAL-backed table that is killed
// (process death: no checkpoint, no clean close) and recovered mid-
// stream must mine bit-identically — same hold-table levels, same
// count vectors, across every backend — to an in-memory twin that was
// never interrupted. Checkpoints are interleaved at random so recovery
// exercises both pure WAL replay and checkpoint-plus-tail replay.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// randBasket draws a non-empty random itemset, boosting items 1-2 so
// multi-item frequent sets exist.
func randBasket(rng *rand.Rand, items []itemset.Item) itemset.Set {
	var s []itemset.Item
	for _, it := range items {
		p := 0.3
		if it <= 2 {
			p = 0.7
		}
		if rng.Float64() < p {
			s = append(s, it)
		}
	}
	if len(s) == 0 {
		s = append(s, items[rng.Intn(len(items))])
	}
	return itemset.New(s...)
}

// TestKillRecoverOracle appends random batches to a durable table and
// its uninterrupted in-memory twin, kills the database between rounds
// (optionally checkpointing first, so the WAL tail varies from "whole
// history" to "empty"), reopens it, and requires the recovered table to
// mine bit-identically to the twin under every backend configuration.
func TestKillRecoverOracle(t *testing.T) {
	const cases = 4
	const rounds = 4
	for _, pol := range []tdb.FsyncPolicy{tdb.FsyncAlways, tdb.FsyncOff} {
		t.Run("fsync="+pol.String(), func(t *testing.T) {
			for c := 0; c < cases; c++ {
				rng := rand.New(rand.NewSource(int64(9000 + c)))
				dir := t.TempDir()
				cfg := tdb.Durability{Fsync: pol}

				db, err := tdb.OpenDurable(dir, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tbl, err := db.CreateTxTable("baskets")
				if err != nil {
					t.Fatal(err)
				}
				twin, err := tdb.NewTxTable("baskets")
				if err != nil {
					t.Fatal(err)
				}
				items := []itemset.Item{1, 2, 3, 4, 5}
				start := timegran.Start(19800+timegran.Granule(rng.Intn(200)), timegran.Day)

				for round := 0; round < rounds; round++ {
					// 1-3 batches per round, mirrored into the twin.
					// Single-transaction batches go through Append, the
					// rest through AppendBatchDurable, so both WAL write
					// paths feed the same recovery.
					for j := 1 + rng.Intn(3); j > 0; j-- {
						n := 1 + rng.Intn(5)
						batch := make([]tdb.Tx, 0, n)
						for x := 0; x < n; x++ {
							set := randBasket(rng, items)
							at := start.AddDate(0, 0, rng.Intn(14))
							batch = append(batch, tdb.Tx{At: at, Items: set})
							twin.Append(at, set)
						}
						if len(batch) == 1 {
							tbl.Append(batch[0].At, batch[0].Items)
						} else if _, _, err := tbl.AppendBatchDurable(batch); err != nil {
							t.Fatalf("case %d round %d: append: %v", c, round, err)
						}
					}
					// Sometimes checkpoint before dying, so recovery
					// replays a short tail over segments rather than the
					// whole history from an empty base.
					if rng.Intn(3) == 0 {
						if _, err := db.Checkpoint(); err != nil {
							t.Fatalf("case %d round %d: checkpoint: %v", c, round, err)
						}
					}

					db.Kill()
					db, err = tdb.OpenDurable(dir, cfg)
					if err != nil {
						t.Fatalf("case %d round %d: recover: %v", c, round, err)
					}
					var ok bool
					tbl, ok = db.TxTable("baskets")
					if !ok {
						t.Fatalf("case %d round %d: table lost in recovery", c, round)
					}
					if tbl.Len() != twin.Len() {
						t.Fatalf("case %d round %d: recovered %d tx, twin has %d",
							c, round, tbl.Len(), twin.Len())
					}

					for _, m := range backendMatrix {
						tag := fmt.Sprintf("case %d round %d %v/w%d", c, round, m.backend, m.workers)
						mcfg := Config{
							Granularity:   timegran.Day,
							MinSupport:    0.2,
							MinConfidence: 0.4,
							MinFreq:       0.5,
							Backend:       m.backend,
							Workers:       m.workers,
						}
						got, err := BuildHoldTable(tbl, mcfg)
						if err != nil {
							t.Fatalf("%s: recovered build: %v", tag, err)
						}
						want, err := BuildHoldTable(twin, mcfg)
						if err != nil {
							t.Fatalf("%s: twin build: %v", tag, err)
						}
						checkIdenticalTables(t, tag+" (recovered vs twin)", got, want)
					}
				}
				db.Kill()
			}
		})
	}
}
