package core

import (
	"testing"

	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
	"time"
)

// BenchmarkMaintainOneGranule: warm hold table, one dirty day of 20
// appended tx, against the full rebuild baseline.
func BenchmarkMaintainOneGranule(b *testing.B) {
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 1000, NPatterns: 200, AvgTxLen: 10, AvgPatLen: 4},
		Start:        time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  timegran.Day,
		NGranules:    364,
		TxPerGranule: 50,
	}
	tbl, err := gen.GenerateTemporal(cfg, 1998)
	if err != nil {
		b.Fatal(err)
	}
	hcfg := Config{Granularity: timegran.Day, MinSupport: 0.15, MinConfidence: 0.6, MinFreq: 0.9}
	h, err := BuildHoldTable(tbl, hcfg)
	if err != nil {
		b.Fatal(err)
	}
	epoch := tbl.Epoch()
	at := cfg.Start.AddDate(0, 0, 100).Add(6 * time.Hour)
	for i := 0; i < 20; i++ {
		tbl.Append(at.Add(time.Duration(i)*time.Second), itemset.New(1, 2, itemset.Item(3+i)))
	}
	dirty, _, ok := tbl.DirtySince(timegran.Day, epoch)
	if !ok {
		b.Fatal("no dirty info")
	}
	b.Run("maintain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Maintain(tbl, dirty); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildHoldTable(tbl, hcfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = tdb.Tx{}
}
