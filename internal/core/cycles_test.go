package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestDetectCycles(t *testing.T) {
	allActive := func(n int) []bool {
		v := make([]bool, n)
		for i := range v {
			v[i] = true
		}
		return v
	}
	// Holds at offsets 1, 4, 7, 10, 13 of a 15-granule span: cycle
	// (3, 1) relative to span start.
	hold := make([]bool, 15)
	for i := 1; i < 15; i += 3 {
		hold[i] = true
	}
	got := detectCycles(hold, allActive(15), 0, 6, 2, 1)
	want3_1 := false
	for _, c := range got {
		if c.Length == 3 && c.Offset == 1 {
			want3_1 = true
		}
		// Every returned cycle must actually be consistent with hold.
		for gi := range hold {
			if c.Matches(timegran.Day, int64(gi)) && !hold[gi] {
				t.Errorf("cycle %v claims granule %d but rule misses it", c, gi)
			}
		}
	}
	if !want3_1 {
		t.Errorf("cycle (3,1) not found in %v", got)
	}

	// Absolute offsets: same sequence but span starts at granule 100.
	// hold[1] is granule 101 → cycle (3, 101 mod 3 = 2).
	got = detectCycles(hold, allActive(15), 100, 6, 2, 1)
	found := false
	for _, c := range got {
		if c.Length == 3 && c.Offset == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("absolute-offset cycle (3,2) not found in %v", got)
	}

	// minReps: a "cycle" of length 8 in a 15-granule span has at most 2
	// occurrences; with minReps=3 none of length 8 may appear.
	got = detectCycles(hold, allActive(15), 0, 8, 3, 1)
	for _, c := range got {
		if c.Length == 8 {
			t.Errorf("cycle %v violates minReps", c)
		}
	}

	// Fuzzy matching: holds at 0,2,4,6,8 plus a miss at 4 → cycle (2,0)
	// at minFreq 0.8 but not at 1.
	hold2 := make([]bool, 10)
	for i := 0; i < 10; i += 2 {
		hold2[i] = true
	}
	hold2[4] = false
	has := func(cs []timegran.Cycle, l, o int64) bool {
		for _, c := range cs {
			if c.Length == l && c.Offset == o {
				return true
			}
		}
		return false
	}
	if has(detectCycles(hold2, allActive(10), 0, 4, 2, 1), 2, 0) {
		t.Error("exact detection accepted a miss")
	}
	if !has(detectCycles(hold2, allActive(10), 0, 4, 2, 0.75), 2, 0) {
		t.Error("fuzzy detection rejected 4/5 hits at minFreq 0.75")
	}

	// Inactive granules are neutral: a miss on an inactive granule does
	// not kill the cycle.
	active := allActive(10)
	active[4] = false
	if !has(detectCycles(hold2, active, 0, 4, 2, 1), 2, 0) {
		t.Error("inactive miss killed the cycle")
	}
}

func TestFilterRedundantCycles(t *testing.T) {
	mk := func(l, o int64) timegran.Cycle { return timegran.Cycle{Length: l, Offset: o} }
	in := []timegran.Cycle{mk(2, 0), mk(4, 0), mk(4, 2), mk(6, 0), mk(3, 1), mk(6, 1)}
	got := FilterRedundantCycles(in)
	// (4,0), (4,2), (6,0) are implied by (2,0); (6,1)? 6%3==0 and
	// 1%3==1 == offset of (3,1) → implied. Survivors: (2,0), (3,1).
	want := []timegran.Cycle{mk(2, 0), mk(3, 1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FilterRedundantCycles = %v, want %v", got, want)
	}
}

func TestMineCyclesFixture(t *testing.T) {
	tbl := buildFixture(t)
	rules, err := MineCycles(tbl, fixtureConfig(), CycleConfig{MaxLen: 10, MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		ante, cons string
		l, o       int64
	}
	got := make(map[key]CyclicRule)
	for _, r := range rules {
		got[key{r.Rule.Antecedent.String(), r.Rule.Consequent.String(), r.Cycle.Length, r.Cycle.Offset}] = r
	}

	// {bread} ⇒ {milk} holds daily: cycle (1,0); all longer cycles are
	// redundant multiples and must be filtered.
	foundDaily := false
	for k := range got {
		if k.ante == itemset.New(bread).String() && k.cons == itemset.New(milk).String() {
			if k.l == 1 {
				foundDaily = true
			} else {
				t.Errorf("unfiltered redundant cycle (%d,%d) for the daily rule", k.l, k.o)
			}
		}
	}
	if !foundDaily {
		t.Error("daily cycle (1,0) not found for {bread}=>{milk}")
	}

	// {choc} ⇒ {wine}: weekly cycles on Saturday and Sunday granules.
	satOff := ((dayGranule(5) % 7) + 7) % 7
	sunOff := ((dayGranule(6) % 7) + 7) % 7
	cw := 0
	for k := range got {
		if k.ante == itemset.New(choc).String() && k.cons == itemset.New(wine).String() {
			cw++
			if k.l != 7 || (k.o != satOff && k.o != sunOff) {
				t.Errorf("unexpected weekend cycle (%d,%d)", k.l, k.o)
			}
		}
	}
	if cw != 2 {
		t.Errorf("weekend rule has %d cycles, want 2 (sat, sun)", cw)
	}

	// The seasonal rule holds one contiguous week only: no cycle.
	for k := range got {
		if k.ante == itemset.New(bbq).String() && k.cons == itemset.New(charcoal).String() {
			t.Errorf("seasonal rule reported cycle (%d,%d)", k.l, k.o)
		}
	}
}

func TestMineCalendarPeriodicitiesFixture(t *testing.T) {
	tbl := buildFixture(t)
	rules, err := MineCalendarPeriodicities(tbl, fixtureConfig(), CycleConfig{MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var weekend *CalendarRule
	for i, r := range rules {
		if r.Rule.Antecedent.Equal(itemset.New(choc)) && r.Rule.Consequent.Equal(itemset.New(wine)) && r.Field == timegran.FieldWeekday {
			weekend = &rules[i]
		}
		// The daily rule holds on every weekday: uninformative, must
		// not be reported for the weekday field.
		if r.Rule.Antecedent.Equal(itemset.New(bread)) && r.Rule.Consequent.Equal(itemset.New(milk)) && r.Field == timegran.FieldWeekday {
			t.Errorf("always-on rule reported weekday periodicity %v", r.Feature)
		}
	}
	if weekend == nil {
		t.Fatal("weekend calendar periodicity not found")
	}
	cal, ok := weekend.Feature.(timegran.Calendar)
	if !ok {
		t.Fatalf("feature is %T", weekend.Feature)
	}
	if len(cal.Ranges) != 1 || cal.Ranges[0] != (timegran.FieldRange{Lo: 6, Hi: 7}) {
		t.Errorf("weekend ranges = %v, want [6..7]", cal.Ranges)
	}
	if weekend.Freq != 1 || weekend.FeatureGranules != 8 {
		t.Errorf("weekend freq=%v granules=%d", weekend.Freq, weekend.FeatureGranules)
	}
}

func TestMineDuringFixture(t *testing.T) {
	tbl := buildFixture(t)
	rules, err := MineDuringExpr(tbl, fixtureConfig(), "weekday in (sat, sun)")
	if err != nil {
		t.Fatal(err)
	}
	var foundWeekend, foundDaily bool
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(itemset.New(choc)) && r.Rule.Consequent.Equal(itemset.New(wine)) {
			foundWeekend = true
			if r.Freq != 1 || r.FeatureGranules != 8 {
				t.Errorf("weekend during-rule freq=%v granules=%d", r.Freq, r.FeatureGranules)
			}
			if r.Rule.Confidence != 1 {
				t.Errorf("weekend during-rule confidence=%v", r.Rule.Confidence)
			}
			// Aggregate support inside weekends: 72/80.
			if r.Rule.Support < 0.89 || r.Rule.Support > 0.91 {
				t.Errorf("weekend during-rule support=%v", r.Rule.Support)
			}
		}
		if r.Rule.Antecedent.Equal(itemset.New(bread)) && r.Rule.Consequent.Equal(itemset.New(milk)) {
			foundDaily = true
		}
		if r.Rule.Antecedent.Equal(itemset.New(bbq)) {
			t.Errorf("seasonal rule qualified during weekends: %v", r)
		}
	}
	if !foundWeekend || !foundDaily {
		t.Errorf("weekend=%v daily=%v rules missing", foundWeekend, foundDaily)
	}

	// A feature covering no data is an error.
	if _, err := MineDuringExpr(tbl, fixtureConfig(), "month in (7)"); err == nil {
		t.Error("feature covering no granules accepted")
	}
	if _, err := MineDuringExpr(tbl, fixtureConfig(), "weekday in (bogus)"); err == nil {
		t.Error("unparsable feature accepted")
	}
	if _, err := MineDuring(tbl, fixtureConfig(), nil); err == nil {
		t.Error("nil feature accepted")
	}
}

func TestMineDuringLowerFreq(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	cfg.MinFreq = 0.2
	// Over the whole span ("always"), the seasonal rule holds in 7 of
	// 28 granules = 0.25 ≥ 0.2 → it must appear now.
	rules, err := MineDuringExpr(tbl, cfg, "always")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(itemset.New(bbq)) && r.Rule.Consequent.Equal(itemset.New(charcoal)) {
			found = true
			if r.Freq < 0.24 || r.Freq > 0.26 {
				t.Errorf("seasonal freq = %v", r.Freq)
			}
		}
	}
	if !found {
		t.Error("seasonal rule missing at MinFreq 0.2 over always")
	}
}

// ---------------------------------------------------------------------
// Ablation pair equivalence.

func itemsetCyclesEqual(a, b []ItemsetCycles) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Set.Equal(b[i].Set) || !reflect.DeepEqual(a[i].Cycles, b[i].Cycles) {
			return false
		}
	}
	return true
}

func TestItemsetCycleMinersAgreeOnFixture(t *testing.T) {
	tbl := buildFixture(t)
	ccfg := CycleConfig{MaxLen: 10, MinReps: 2}
	seq, seqStats, err := MineItemsetCyclesSequential(tbl, fixtureConfig(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	inter, interStats, err := MineItemsetCyclesInterleaved(tbl, fixtureConfig(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if !itemsetCyclesEqual(seq, inter) {
		t.Errorf("miners disagree:\nseq   %v\ninter %v", seq, inter)
	}
	if len(seq) == 0 {
		t.Fatal("no itemset cycles found at all")
	}
	if interStats.CandidateGranulePairs > seqStats.CandidateGranulePairs {
		t.Errorf("interleaved did more counting work (%d) than sequential (%d)",
			interStats.CandidateGranulePairs, seqStats.CandidateGranulePairs)
	}
}

// randomTemporalTable plants random cyclic structure for the
// equivalence property test.
func randomTemporalTable(r *rand.Rand) *tdb.TxTable {
	tbl, _ := tdb.NewTxTable("rand")
	days := 14 + r.Intn(14)
	universe := 8
	base := time.Date(2023, 5, 1, 8, 0, 0, 0, time.UTC)
	// A couple of planted cyclic pairs.
	type planted struct {
		items []itemset.Item
		l, o  int
	}
	var plants []planted
	for p := 0; p < 2; p++ {
		a := itemset.Item(r.Intn(universe))
		b := itemset.Item(r.Intn(universe))
		if a == b {
			b = (b + 1) % itemset.Item(universe)
		}
		l := 2 + r.Intn(4)
		plants = append(plants, planted{items: []itemset.Item{a, b}, l: l, o: r.Intn(l)})
	}
	for d := 0; d < days; d++ {
		nTx := 4 + r.Intn(4)
		for i := 0; i < nTx; i++ {
			var items []itemset.Item
			for x := 0; x < universe; x++ {
				if r.Float64() < 0.2 {
					items = append(items, itemset.Item(x))
				}
			}
			for _, p := range plants {
				if d%p.l == p.o && r.Float64() < 0.9 {
					items = append(items, p.items...)
				}
			}
			if len(items) == 0 {
				items = []itemset.Item{itemset.Item(r.Intn(universe))}
			}
			tbl.Append(base.AddDate(0, 0, d).Add(time.Duration(i)*time.Minute), itemset.New(items...))
		}
	}
	return tbl
}

func TestQuickItemsetCycleMinersEquivalent(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randomTemporalTable(r)
		mcfg := Config{
			Granularity:   timegran.Day,
			MinSupport:    0.3,
			MinConfidence: 0.5,
			MinFreq:       1,
		}
		ccfg := CycleConfig{MaxLen: 8, MinReps: 2}
		seq, seqStats, err := MineItemsetCyclesSequential(tbl, mcfg, ccfg)
		if err != nil {
			return false
		}
		inter, interStats, err := MineItemsetCyclesInterleaved(tbl, mcfg, ccfg)
		if err != nil {
			return false
		}
		if !itemsetCyclesEqual(seq, inter) {
			t.Logf("seed %d: seq=%v inter=%v", seed, seq, inter)
			return false
		}
		return interStats.CandidateGranulePairs <= seqStats.CandidateGranulePairs
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestCycleConfigValidation(t *testing.T) {
	tbl := buildFixture(t)
	if _, err := MineCycles(tbl, fixtureConfig(), CycleConfig{MaxLen: -1}); err == nil {
		t.Error("negative MaxLen accepted")
	}
	if _, err := MineCycles(tbl, fixtureConfig(), CycleConfig{MinReps: -2}); err == nil {
		t.Error("negative MinReps accepted")
	}
	if _, err := MineValidPeriods(tbl, fixtureConfig(), PeriodConfig{MinLen: -1}); err == nil {
		t.Error("negative MinLen accepted")
	}
}
