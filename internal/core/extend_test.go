package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// TestExtendMatchesRebuildFixture appends a week to the fixture and
// checks that Extend produces exactly what a full rebuild would.
func TestExtendMatchesRebuildFixture(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Week 5 arrives: a new pair {7,8} becomes frequent there, which
	// exercises the newcomer path (it needs historical recounting).
	for d := 28; d < 35; d++ {
		at := fixtureStart.AddDate(0, 0, d)
		for i := 0; i < 10; i++ {
			items := []itemset.Item{bread, 7, 8}
			if i < 8 {
				items = append(items, milk)
			}
			tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(items...))
		}
	}

	extended, err := h.Extend(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(extended, rebuilt) {
		t.Fatal("Extend differs from full rebuild")
	}
	// The newcomer pair is tracked with correct zero history.
	v := extended.Counts(itemset.New(7, 8))
	if v == nil {
		t.Fatal("newcomer pair not tracked")
	}
	for gi := 0; gi < 28; gi++ {
		if v[gi] != 0 {
			t.Errorf("newcomer pair has history count %d at day %d", v[gi], gi)
		}
	}
	for gi := 28; gi < 35; gi++ {
		if v[gi] != 10 {
			t.Errorf("newcomer pair count %d at day %d, want 10", v[gi], gi)
		}
	}
}

func TestExtendErrors(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Nothing new.
	if _, err := h.Extend(tbl); err == nil {
		t.Error("Extend with no new granules accepted")
	}
	// Span start moved (data prepended): must demand a rebuild.
	tbl.Append(fixtureStart.AddDate(0, 0, -3), itemset.New(bread))
	tbl.Append(fixtureStart.AddDate(0, 0, 30), itemset.New(bread))
	if _, err := h.Extend(tbl); err == nil {
		t.Error("Extend after prepend accepted")
	}
	empty, _ := tdb.NewTxTable("empty")
	if _, err := h.Extend(empty); err == nil {
		t.Error("Extend on empty table accepted")
	}
}

// TestQuickExtendEquivalent grows random tables granule by granule and
// compares incremental maintenance against full rebuilds.
func TestQuickExtendEquivalent(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 12,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randomTemporalTable(r)
		mcfg := Config{
			Granularity:   timegran.Day,
			MinSupport:    0.3,
			MinConfidence: 0.5,
			MinFreq:       1,
		}
		h, err := BuildHoldTable(tbl, mcfg)
		if err != nil {
			return false
		}
		// Append 1-3 new days of random data.
		span, _ := tbl.Span(timegran.Day)
		base := timegran.Start(span.Hi+1, timegran.Day)
		days := 1 + r.Intn(3)
		for d := 0; d < days; d++ {
			nTx := 4 + r.Intn(4)
			for i := 0; i < nTx; i++ {
				var items []itemset.Item
				for x := 0; x < 8; x++ {
					if r.Float64() < 0.3 {
						items = append(items, itemset.Item(x))
					}
				}
				if len(items) == 0 {
					items = []itemset.Item{0}
				}
				tbl.Append(base.AddDate(0, 0, d).Add(time.Duration(i)*time.Minute), itemset.New(items...))
			}
		}
		extended, err := h.Extend(tbl)
		if err != nil {
			return false
		}
		rebuilt, err := BuildHoldTable(tbl, mcfg)
		if err != nil {
			return false
		}
		return holdTablesEqual(extended, rebuilt)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

// TestExtendThenMine exercises the end-to-end path: mine from an
// extended table and from a rebuilt one; identical output.
func TestExtendThenMine(t *testing.T) {
	tbl := buildFixture(t)
	h, err := BuildHoldTable(tbl, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	for d := 28; d < 42; d++ {
		at := fixtureStart.AddDate(0, 0, d)
		weekend := d%7 == 5 || d%7 == 6
		for i := 0; i < 10; i++ {
			items := []itemset.Item{bread}
			if i < 8 {
				items = append(items, milk)
			}
			if weekend && i < 9 {
				items = append(items, choc, wine)
			}
			tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(items...))
		}
	}
	extended, err := h.Extend(tbl)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MineCyclesFromTable(extended, CycleConfig{MaxLen: 10, MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _ := BuildHoldTable(tbl, fixtureConfig())
	b, err := MineCyclesFromTable(rebuilt, CycleConfig{MaxLen: 10, MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("extended mining found %d cyclic rules, rebuilt %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cycle != b[i].Cycle || !a[i].Rule.Antecedent.Equal(b[i].Rule.Antecedent) {
			t.Errorf("rule %d differs", i)
		}
	}
}
