// Package core implements temporal association rule mining: the three
// restricted discovery tasks of Chen & Petrounias (ICDE 2000).
//
// A temporal association rule is a pair (AR, TF): an association rule
// AR : X ⇒ Y together with a temporal feature TF describing *when* the
// rule holds. Because the joint search space (rules × temporal
// features) is intractable, the system offers three restricted tasks,
// each a function in this package:
//
//   - MineValidPeriods (Task I): find the maximal time intervals during
//     which each rule holds.
//   - MineCycles / MineCalendarPeriodicities (Task II): find the
//     periodicities — arithmetic cycles over the granule axis, or
//     calendar classes such as day-of-week — that each rule obeys.
//   - MineDuring (Task III): given a temporal feature expressed in the
//     calendar algebra, find the rules that hold during it.
//
// All three share one counting substrate, the HoldTable: a level-wise
// Apriori pass that counts every candidate itemset in every time
// granule of the dataset in a single scan per level.
package core

import (
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Config carries the thresholds shared by every temporal mining task.
type Config struct {
	// Granularity discretises the time axis (e.g. Day: the rule must
	// hold day by day).
	Granularity timegran.Granularity
	// MinSupport is the per-granule minimum support fraction: inside a
	// granule g a rule needs count ≥ ceil(MinSupport · |g|).
	MinSupport float64
	// MinConfidence is the per-granule minimum confidence.
	MinConfidence float64
	// MinFreq is the frequency threshold in (0,1]: the fraction of a
	// temporal feature's (active) granules in which the rule must hold.
	// 1 demands the rule hold in every granule of the feature.
	MinFreq float64
	// MaxK bounds itemset size (0 = unbounded).
	MaxK int
	// MinGranuleTx marks granules with fewer transactions as inactive:
	// they are skipped entirely and count neither for nor against a
	// rule. Zero defaults to 1 (empty granules are inactive).
	MinGranuleTx int
	// Workers parallelises the per-granule counting pass — across
	// contiguous granule blocks on the hash-tree backend, across
	// candidate chunks on the bitmap backend. Either way granule
	// counts are identical to a sequential pass. 0 or 1 counts
	// sequentially.
	Workers int
	// Backend selects the support-counting backend of the per-granule
	// pass (auto, naive, hashtree, bitmap); see the apriori package.
	// Auto picks from the data shape after the level-1 scan.
	Backend apriori.Backend
	// Tracer receives per-pass telemetry from the hold-table build and
	// per-task counters from the mining task drivers. Nil disables
	// tracing at no measurable cost; see internal/obs.
	Tracer obs.Tracer
}

// tracer resolves the configured tracer, mapping nil to the no-op.
func (c Config) tracer() obs.Tracer { return obs.OrNop(c.Tracer) }

// normalise validates and fills defaults.
func (c Config) normalise() (Config, error) {
	if !c.Granularity.Valid() {
		return c, fmt.Errorf("core: invalid granularity %d", int(c.Granularity))
	}
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return c, fmt.Errorf("core: MinSupport %v outside (0,1]", c.MinSupport)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return c, fmt.Errorf("core: MinConfidence %v outside [0,1]", c.MinConfidence)
	}
	if c.MinFreq <= 0 || c.MinFreq > 1 {
		return c, fmt.Errorf("core: MinFreq %v outside (0,1]", c.MinFreq)
	}
	if c.MinGranuleTx < 0 {
		return c, fmt.Errorf("core: MinGranuleTx %d negative", c.MinGranuleTx)
	}
	if c.MinGranuleTx == 0 {
		c.MinGranuleTx = 1
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("core: Workers %d negative", c.Workers)
	}
	if !c.Backend.Valid() {
		return c, fmt.Errorf("core: invalid counting backend %d", int(c.Backend))
	}
	return c, nil
}

// TemporalRule pairs an association rule with a discovered temporal
// feature. Support and Confidence inside Rule are aggregates over the
// granules the feature covers (within the mined span).
type TemporalRule struct {
	Rule    apriori.Rule
	Feature timegran.Pattern
	// Granularity the feature is expressed at.
	Granularity timegran.Granularity
	// Freq is the fraction of the feature's active granules in which
	// the rule held (≥ the configured MinFreq).
	Freq float64
	// HoldGranules is the number of active granules in which the rule
	// held; FeatureGranules the number of active granules the feature
	// covers within the mined span.
	HoldGranules, FeatureGranules int
}

// String renders "rule @ feature (freq 0.93)".
func (t TemporalRule) String() string {
	return fmt.Sprintf("%v @ %v (freq %.2f)", t.Rule, t.Feature, t.Freq)
}
