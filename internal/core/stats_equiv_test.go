package core

// Telemetry equivalence for the hold-table build: the MineStats a
// CollectTracer gathers must satisfy the pass invariants on every
// backend and worker count, and the per-level candidate/prune/frequent
// numbers must be identical across backends — the counting strategy
// never changes which candidates exist or survive.

import (
	"fmt"
	"testing"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestHoldTableStatsInvariantsAcrossBackends(t *testing.T) {
	tbl := backendTestTable(t, 42)
	type run struct {
		label string
		stats *obs.MineStats
	}
	var runs []run
	for _, backend := range []apriori.Backend{apriori.BackendHashTree, apriori.BackendBitmap, apriori.BackendRoaring} {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("%v/workers=%d", backend, workers)
			collect := obs.NewCollectTracer()
			h, err := BuildHoldTable(tbl, Config{
				Granularity:   timegran.Day,
				MinSupport:    0.05,
				MinConfidence: 0.5,
				MinFreq:       0.8,
				MaxK:          3,
				Backend:       backend,
				Workers:       workers,
				Tracer:        collect,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			// Drive one task so the task span and rule counter appear.
			rules, err := MineValidPeriodsFromTable(h, PeriodConfig{})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			st := collect.Stats()
			if len(st.Levels) == 0 {
				t.Fatalf("%s: no passes collected", label)
			}
			for _, l := range st.Levels {
				if l.Pruned+l.Counted != l.Generated {
					t.Errorf("%s: L%d pruned %d + counted %d != generated %d",
						label, l.Level, l.Pruned, l.Counted, l.Generated)
				}
				if l.Frequent > l.Counted {
					t.Errorf("%s: L%d frequent %d > counted %d", label, l.Level, l.Frequent, l.Counted)
				}
				if l.Level < len(h.ByK) && l.Frequent != len(h.ByK[l.Level]) {
					t.Errorf("%s: L%d stats say %d frequent, table has %d",
						label, l.Level, l.Frequent, len(h.ByK[l.Level]))
				}
			}
			if st.Backend != backend.String() {
				t.Errorf("%s: stats backend = %q", label, st.Backend)
			}
			if got := st.Counters[obs.MetricItemsetsFrequent]; got != int64(h.TotalItemsets()) {
				t.Errorf("%s: itemsets_frequent counter = %d, table has %d", label, got, h.TotalItemsets())
			}
			if got := st.Gauges[obs.MetricGranules]; got != float64(h.NGranules()) {
				t.Errorf("%s: granules gauge = %v, want %d", label, got, h.NGranules())
			}
			if got := st.Gauges[obs.MetricGranulesActive]; got != float64(h.NActive) {
				t.Errorf("%s: granules_active gauge = %v, want %d", label, got, h.NActive)
			}
			if got := st.Counters[obs.MetricRulesEmitted]; got != int64(len(rules)) {
				t.Errorf("%s: rules_emitted counter = %d, task emitted %d", label, got, len(rules))
			}
			if len(st.Tasks) < 2 {
				t.Errorf("%s: %d task spans, want build + periods", label, len(st.Tasks))
			}
			runs = append(runs, run{label: label, stats: st})
		}
	}
	// Candidate/prune/frequent counts are backend-independent.
	want := runs[0].stats
	for _, r := range runs[1:] {
		if len(r.stats.Levels) != len(want.Levels) {
			t.Fatalf("%s: %d passes, want %d", r.label, len(r.stats.Levels), len(want.Levels))
		}
		for i, l := range r.stats.Levels {
			w := want.Levels[i]
			if l.Level != w.Level || l.Generated != w.Generated ||
				l.Pruned != w.Pruned || l.Counted != w.Counted || l.Frequent != w.Frequent {
				t.Errorf("%s: L%d = {gen %d pruned %d counted %d freq %d}, want {gen %d pruned %d counted %d freq %d}",
					r.label, l.Level, l.Generated, l.Pruned, l.Counted, l.Frequent,
					w.Generated, w.Pruned, w.Counted, w.Frequent)
			}
		}
	}
}
