package core

import (
	"context"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestCloseTrackerAdvance(t *testing.T) {
	tr := NewCloseTracker(timegran.Day)
	if _, ok := tr.ClosedThrough(); ok {
		t.Fatal("ClosedThrough reported ok before the first Advance")
	}
	day := func(s string, hh int) time.Time {
		tm, err := time.Parse("2006-01-02", s)
		if err != nil {
			t.Fatal(err)
		}
		return tm.UTC().Add(time.Duration(hh) * time.Hour)
	}
	// Baseline: the first reading closes nothing, whatever it is.
	if iv, ok := tr.Advance(day("2024-01-05", 10)); ok {
		t.Fatalf("first Advance reported a close: %v", iv)
	}
	base := timegran.GranuleOf(day("2024-01-04", 0), timegran.Day)
	if ct, ok := tr.ClosedThrough(); !ok || ct != base {
		t.Fatalf("baseline ClosedThrough = %d,%v, want %d,true", ct, ok, base)
	}
	// Clock moves within the open granule: no close.
	if iv, ok := tr.Advance(day("2024-01-05", 23)); ok {
		t.Fatalf("same-granule Advance reported a close: %v", iv)
	}
	// Clock jumps three days: the skipped granules close as one interval.
	iv, ok := tr.Advance(day("2024-01-08", 1))
	if !ok || iv.Lo != base+1 || iv.Hi != base+3 {
		t.Fatalf("jump Advance = %v,%v, want [%d,%d],true", iv, ok, base+1, base+3)
	}
	// A backwards clock (out-of-order append) never un-closes.
	if iv, ok := tr.Advance(day("2024-01-02", 0)); ok {
		t.Fatalf("backwards Advance reported a close: %v", iv)
	}
	if ct, _ := tr.ClosedThrough(); ct != base+3 {
		t.Fatalf("backwards Advance moved ClosedThrough to %d", ct)
	}
	// Landing exactly on a granule boundary closes the granule before it.
	iv, ok = tr.Advance(day("2024-01-09", 0))
	if !ok || iv.Lo != base+4 || iv.Hi != base+4 {
		t.Fatalf("boundary Advance = %v,%v, want [%d,%d],true", iv, ok, base+4, base+4)
	}
}

// TestPremaintain: after appends make a cached entry stale, Premaintain
// must refresh it in the background — via the delta path, leaving a
// table bit-identical to a cold rebuild — so the next statement is a
// plain hit.
func TestPremaintain(t *testing.T) {
	tbl := cacheEquivTable(t, 7)
	c := NewHoldCache(DefaultCacheBytes)
	cfg := cacheTestCfg(0.05, 3)
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 4, 6, 12, 0, 0, 0, time.UTC)
	tbl.Append(at, itemset.New(500, 501))

	n, err := c.Premaintain(context.Background(), tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Premaintain refreshed %d entries, want 1", n)
	}
	if got := c.Probe(tbl, cfg); got != "hit" {
		t.Fatalf("Probe after Premaintain = %q, want hit", got)
	}
	st := c.Stats()
	if st.Deltas != 1 {
		t.Fatalf("Premaintain did not use the delta path: %+v", st)
	}
	h, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(h, rebuilt) {
		t.Fatal("premaintained table differs from cold rebuild")
	}
	// Fresh entries are left alone.
	n, err = c.Premaintain(context.Background(), tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Premaintain on a fresh cache refreshed %d entries, want 0", n)
	}
	// Nil cache is a no-op.
	var nilCache *HoldCache
	if n, err := nilCache.Premaintain(context.Background(), tbl, nil); n != 0 || err != nil {
		t.Fatalf("nil cache Premaintain = %d, %v", n, err)
	}
}
