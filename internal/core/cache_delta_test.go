package core

import (
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

// TestHoldCacheDeltaRethreshold: after an append, a statement at a
// higher support than the stale entry's build support is served by
// delta-maintaining the entry and re-thresholding the refreshed table;
// the result matches a cold build at the statement's thresholds.
func TestHoldCacheDeltaRethreshold(t *testing.T) {
	tbl := backendTestTable(t, 7)
	c := NewHoldCache(DefaultCacheBytes)
	if _, err := c.Get(tbl, cacheTestCfg(0.05, 3)); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 4, 10, 9, 0, 0, 0, time.UTC)
	tbl.Append(at, itemset.New(500, 501))
	tbl.Append(at.Add(time.Hour), itemset.New(500, 501, 502))

	got, err := c.Get(tbl, cacheTestCfg(0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Deltas != 1 || st.Rethresholds != 0 || st.Invalidations != 0 {
		t.Fatalf("stats after delta+rethreshold get: %+v", st)
	}
	want, err := BuildHoldTable(tbl, cacheTestCfg(0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(got, want) {
		t.Fatal("delta + rethreshold differs from cold build")
	}
	// The refreshed entry is stored at its original build support, so
	// the lower-support statement still rethresholds off it.
	if _, err := c.Get(tbl, cacheTestCfg(0.1, 3)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Rethresholds != 1 {
		t.Fatalf("refreshed entry did not serve a rethreshold: %+v", st)
	}
}

// TestHoldCacheDeltaBulkFallback: when appends touch a majority of the
// rows, delta maintenance is not worthwhile and the cache falls back to
// invalidate + rebuild.
func TestHoldCacheDeltaBulkFallback(t *testing.T) {
	tbl := backendTestTable(t, 11)
	c := NewHoldCache(DefaultCacheBytes)
	cfg := cacheTestCfg(0.05, 3)
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	// Append more rows than the table held: the dirty region is now the
	// majority of the data.
	n := tbl.Len() + 1
	at := time.Date(2001, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		tbl.Append(at.Add(time.Duration(i)*time.Second), itemset.New(1, 2))
	}
	if got := c.Probe(tbl, cfg); got != "build" {
		t.Fatalf("Probe after bulk append = %q, want build", got)
	}
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Deltas != 0 || st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("bulk append did not fall back to rebuild: %+v", st)
	}
}

// TestHoldCacheDeltaConcurrent: many goroutines hitting a stale entry
// coalesce onto one delta maintenance; every statement gets a table
// identical to a cold rebuild.
func TestHoldCacheDeltaConcurrent(t *testing.T) {
	tbl := backendTestTable(t, 23)
	c := NewHoldCache(DefaultCacheBytes)
	cfg := cacheTestCfg(0.05, 3)
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 4, 20, 9, 0, 0, 0, time.UTC)
	tbl.Append(at, itemset.New(500, 501))

	want, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	results := make([]*HoldTable, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get(tbl, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !holdTablesEqual(results[i], want) {
			t.Fatalf("worker %d got a table differing from cold rebuild", i)
		}
	}
	st := c.Stats()
	if st.Deltas != 1 {
		t.Fatalf("concurrent stale gets ran %d delta maintenances, want 1: %+v", st.Deltas, st)
	}
	if st.Invalidations != 0 || st.Misses != 1 {
		t.Fatalf("concurrent stale gets fell back to rebuild: %+v", st)
	}
}
