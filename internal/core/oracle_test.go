package core

// Differential-oracle tests: a tiny brute-force reference miner —
// direct subset counting over every itemset × granule, plus literal
// O(n²..n⁴) re-derivations of each task's definition — checked against
// the real HoldTable build (all three counting backends, sequential
// and parallel) and all five task drivers on small randomized
// datasets. The oracle shares only pure arithmetic (CeilCount) and the
// timegran calendar algebra with the system under test; every counting
// and search path is independent.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// oracleCases is how many randomized datasets the differential suite
// replays; the acceptance bar is ≥ 100.
const oracleCases = 120

// floatTol is the comparison tolerance for aggregate statistics that
// the system and the oracle compute in different summation orders.
const floatTol = 1e-12

// ---------------------------------------------------------------------
// Random dataset generation.

type oracleData struct {
	tbl   *tdb.TxTable
	cfg   Config
	items []itemset.Item
	// txs[gi] lists the transactions of granule spanLo+gi.
	txs    [][]itemset.Set
	spanLo timegran.Granule
}

// genDataset draws a small random dataset: 4-6 items, 8-20 day
// granules, 0-6 transactions per granule (so some granules are
// inactive), and random thresholds. Item 0 is boosted so most datasets
// have at least one multi-item frequent itemset to exercise the rule
// paths.
func genDataset(rng *rand.Rand) oracleData {
	nItems := 4 + rng.Intn(3)
	nGranules := 8 + rng.Intn(13)
	items := make([]itemset.Item, nItems)
	for i := range items {
		items[i] = itemset.Item(i + 1)
	}
	start := timegran.Start(19700+timegran.Granule(rng.Intn(400)), timegran.Day)

	tbl, err := tdb.NewTxTable("oracle")
	if err != nil {
		panic(err)
	}
	txs := make([][]itemset.Set, nGranules)
	for gi := 0; gi < nGranules; gi++ {
		nTx := rng.Intn(7) // 0 → inactive granule
		for t := 0; t < nTx; t++ {
			var s []itemset.Item
			for _, it := range items {
				p := 0.3
				if it <= 2 {
					p = 0.7 // frequent pair so rules exist
				}
				if rng.Float64() < p {
					s = append(s, it)
				}
			}
			if len(s) == 0 {
				s = append(s, items[rng.Intn(nItems)])
			}
			set := itemset.New(s...)
			at := start.AddDate(0, 0, gi)
			tbl.Append(at, set)
			txs[gi] = append(txs[gi], set)
		}
	}
	cfg := Config{
		Granularity:   timegran.Day,
		MinSupport:    0.2 + 0.4*rng.Float64(),
		MinConfidence: 0.4 + 0.4*rng.Float64(),
		MinFreq:       0.5 + 0.5*rng.Float64(),
	}
	if rng.Intn(4) == 0 {
		cfg.MaxK = 2 + rng.Intn(2)
	}
	// The table's span runs from the first to the last transaction, so
	// empty granules at the edges are outside it; trim the oracle's
	// granule axis to match (empty granules inside the span remain).
	lo, hi := -1, -1
	for gi, g := range txs {
		if len(g) > 0 {
			if lo < 0 {
				lo = gi
			}
			hi = gi
		}
	}
	if lo < 0 {
		lo, hi = 0, -1 // no data; caller skips via active()
	}
	return oracleData{
		tbl: tbl, cfg: cfg, items: items, txs: txs[lo : hi+1],
		spanLo: timegran.GranuleOf(start, timegran.Day) + int64(lo),
	}
}

// active reports whether the dataset has any non-empty granule; empty
// datasets are rejected by BuildHoldTable and skipped.
func (d oracleData) active() bool {
	for _, g := range d.txs {
		if len(g) > 0 {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// The brute-force reference.

// bruteTable is the reference counting substrate: every itemset (≤
// maxK) counted in every granule by direct subset tests.
type bruteTable struct {
	cfg       Config
	nGranules int
	spanLo    timegran.Granule
	txCounts  []int
	minCounts []int
	active    []bool
	// counts maps an itemset key to its per-granule count vector.
	counts map[string][]int32
	// byK[k] lists the granule-frequent k-itemsets in canonical order.
	byK [][]itemset.Set
}

// bruteBuild enumerates all non-empty subsets of the item universe and
// counts each in each granule directly.
func bruteBuild(d oracleData) *bruteTable {
	n := len(d.txs)
	b := &bruteTable{
		cfg: d.cfg, nGranules: n, spanLo: d.spanLo,
		txCounts:  make([]int, n),
		minCounts: make([]int, n),
		active:    make([]bool, n),
		counts:    make(map[string][]int32),
	}
	minGranuleTx := d.cfg.MinGranuleTx
	if minGranuleTx == 0 {
		minGranuleTx = 1
	}
	for gi, g := range d.txs {
		b.txCounts[gi] = len(g)
		if len(g) >= minGranuleTx {
			b.active[gi] = true
			b.minCounts[gi] = ceilCount(d.cfg.MinSupport, len(g))
		}
	}

	maxK := len(d.items)
	if d.cfg.MaxK != 0 && d.cfg.MaxK < maxK {
		maxK = d.cfg.MaxK
	}
	b.byK = make([][]itemset.Set, maxK+1)
	for mask := 1; mask < 1<<len(d.items); mask++ {
		var s []itemset.Item
		for i, it := range d.items {
			if mask&(1<<i) != 0 {
				s = append(s, it)
			}
		}
		if len(s) > maxK {
			continue
		}
		set := itemset.New(s...)
		v := make([]int32, n)
		for gi, g := range d.txs {
			for _, tx := range g {
				if tx.ContainsAll(set) {
					v[gi]++
				}
			}
		}
		frequent := false
		for gi := range v {
			if b.active[gi] && int(v[gi]) >= b.minCounts[gi] {
				frequent = true
				break
			}
		}
		if frequent {
			b.counts[set.Key()] = v
			b.byK[len(set)] = append(b.byK[len(set)], set)
		}
	}
	for k := range b.byK {
		itemset.SortSets(b.byK[k])
	}
	return b
}

// hold computes the rule's per-granule hold sequence from the brute
// counts, mirroring the definition (not the implementation): support
// threshold on the full itemset, confidence full/ante, both per
// granule, inactive granules never hold.
func (b *bruteTable) hold(ante, full itemset.Set) []bool {
	fullCounts := b.counts[full.Key()]
	anteCounts := b.counts[ante.Key()]
	hold := make([]bool, b.nGranules)
	if fullCounts == nil {
		return hold
	}
	for gi := range hold {
		if !b.active[gi] || int(fullCounts[gi]) < b.minCounts[gi] {
			continue
		}
		if anteCounts == nil || anteCounts[gi] == 0 {
			continue
		}
		if float64(fullCounts[gi])/float64(anteCounts[gi])+1e-12 >= b.cfg.MinConfidence {
			hold[gi] = true
		}
	}
	return hold
}

// aggRule aggregates a rule over the granules selected by keep,
// mirroring AggStats from the brute counts.
func (b *bruteTable) aggRule(ante, cons, full itemset.Set, keep func(gi int) bool) (apriori.Rule, bool) {
	fullCounts := b.counts[full.Key()]
	anteCounts := b.counts[ante.Key()]
	consCounts := b.counts[cons.Key()]
	if fullCounts == nil {
		return apriori.Rule{}, false
	}
	var nTx, nFull, nAnte, nCons int64
	for gi := 0; gi < b.nGranules; gi++ {
		if !b.active[gi] || !keep(gi) {
			continue
		}
		nTx += int64(b.txCounts[gi])
		nFull += int64(fullCounts[gi])
		if anteCounts != nil {
			nAnte += int64(anteCounts[gi])
		}
		if consCounts != nil {
			nCons += int64(consCounts[gi])
		}
	}
	if nTx == 0 || nAnte == 0 {
		return apriori.Rule{}, false
	}
	conf := float64(nFull) / float64(nAnte)
	lift := 0.0
	if nCons > 0 {
		lift = conf / (float64(nCons) / float64(nTx))
	}
	return apriori.Rule{
		Antecedent: ante, Consequent: cons,
		Count: int(nFull), Support: float64(nFull) / float64(nTx),
		Confidence: conf, Lift: lift,
	}, true
}

// eachRule enumerates the rule candidates exactly as the definition
// allows: every granule-frequent itemset of size ≥ 2, every
// single-item consequent.
func (b *bruteTable) eachRule(fn func(ante, cons, full itemset.Set)) {
	for k := 2; k < len(b.byK); k++ {
		for _, full := range b.byK[k] {
			for _, y := range full {
				fn(full.WithoutItem(y), itemset.Set{y}, full)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Backend agreement: every backend × worker setting must reproduce the
// brute counts exactly.

// backendMatrix is the counting configurations the oracle replays.
var backendMatrix = []struct {
	backend apriori.Backend
	workers int
}{
	{apriori.BackendNaive, 0},
	{apriori.BackendNaive, 3},
	{apriori.BackendHashTree, 0},
	{apriori.BackendHashTree, 3},
	{apriori.BackendBitmap, 0},
	{apriori.BackendBitmap, 3},
	{apriori.BackendRoaring, 0},
	{apriori.BackendRoaring, 3},
}

func checkHoldTable(t *testing.T, tag string, h *HoldTable, b *bruteTable) {
	t.Helper()
	if h.NGranules() != b.nGranules {
		t.Fatalf("%s: %d granules, oracle %d", tag, h.NGranules(), b.nGranules)
	}
	for gi := 0; gi < b.nGranules; gi++ {
		if h.TxCounts[gi] != b.txCounts[gi] || h.Active[gi] != b.active[gi] || h.MinCounts[gi] != b.minCounts[gi] {
			t.Fatalf("%s: granule %d: tx/active/min = %d/%v/%d, oracle %d/%v/%d", tag, gi,
				h.TxCounts[gi], h.Active[gi], h.MinCounts[gi],
				b.txCounts[gi], b.active[gi], b.minCounts[gi])
		}
	}
	// Level sets must match exactly; levels past the end are empty.
	maxLevels := len(h.ByK)
	if len(b.byK) > maxLevels {
		maxLevels = len(b.byK)
	}
	for k := 1; k < maxLevels; k++ {
		var got, want []itemset.Set
		if k < len(h.ByK) {
			got = h.ByK[k]
		}
		if k < len(b.byK) {
			want = b.byK[k]
		}
		if len(got) != len(want) {
			t.Fatalf("%s: level %d has %d frequent itemsets, oracle %d\n got %v\nwant %v",
				tag, k, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: level %d itemset %d = %v, oracle %v", tag, k, i, got[i], want[i])
			}
		}
		// And the count vectors themselves, granule by granule.
		for _, s := range want {
			hv := h.Counts(s)
			bv := b.counts[s.Key()]
			if hv == nil {
				t.Fatalf("%s: no counts retained for frequent %v", tag, s)
			}
			for gi := range bv {
				if hv[gi] != bv[gi] {
					t.Fatalf("%s: counts(%v)[%d] = %d, oracle %d", tag, s, gi, hv[gi], bv[gi])
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Rule-set comparison helpers.

func ruleKey(r apriori.Rule) string {
	return fmt.Sprintf("%v=>%v", r.Antecedent, r.Consequent)
}

func sameRule(t *testing.T, tag string, got, want apriori.Rule) {
	t.Helper()
	if got.Count != want.Count ||
		math.Abs(got.Support-want.Support) > floatTol ||
		math.Abs(got.Confidence-want.Confidence) > floatTol ||
		math.Abs(got.Lift-want.Lift) > floatTol {
		t.Fatalf("%s: rule stats %+v, oracle %+v", tag, got, want)
	}
}

func sameTemporal(t *testing.T, tag string, got, want TemporalRule) {
	t.Helper()
	sameRule(t, tag, got.Rule, want.Rule)
	if got.HoldGranules != want.HoldGranules || got.FeatureGranules != want.FeatureGranules ||
		math.Abs(got.Freq-want.Freq) > floatTol {
		t.Fatalf("%s: freq %v (%d/%d), oracle %v (%d/%d)", tag,
			got.Freq, got.HoldGranules, got.FeatureGranules,
			want.Freq, want.HoldGranules, want.FeatureGranules)
	}
}

// ---------------------------------------------------------------------
// Task oracles.

// oraclePeriods re-derives Task I literally: every qualifying interval
// (held endpoints, ≥ minLen active granules, hold fraction ≥ MinFreq
// over active granules), keeping those not strictly contained in
// another qualifying interval. O(n³) per rule, which is the point — it
// cannot share a bug with the implementation's single-scan recurrence.
func (b *bruteTable) oraclePeriods(minLen int) map[string]PeriodRule {
	out := map[string]PeriodRule{}
	b.eachRule(func(ante, cons, full itemset.Set) {
		hold := b.hold(ante, full)
		n := b.nGranules
		qualifies := func(a, z int) bool {
			if !hold[a] || !hold[z] {
				return false
			}
			nAct, nHold := 0, 0
			for gi := a; gi <= z; gi++ {
				if b.active[gi] {
					nAct++
					if hold[gi] {
						nHold++
					}
				}
			}
			return nAct >= minLen && float64(nHold) >= b.cfg.MinFreq*float64(nAct)-1e-12
		}
		for a := 0; a < n; a++ {
			for z := a; z < n; z++ {
				if !qualifies(a, z) {
					continue
				}
				maximal := true
				for a2 := 0; a2 <= a && maximal; a2++ {
					for z2 := z; z2 < n; z2++ {
						if (a2 != a || z2 != z) && qualifies(a2, z2) {
							maximal = false
							break
						}
					}
				}
				if !maximal {
					continue
				}
				rule, ok := b.aggRule(ante, cons, full, func(gi int) bool { return gi >= a && gi <= z })
				if !ok {
					continue
				}
				nAct, nHold := 0, 0
				for gi := a; gi <= z; gi++ {
					if b.active[gi] {
						nAct++
						if hold[gi] {
							nHold++
						}
					}
				}
				iv := timegran.Interval{Lo: b.spanLo + int64(a), Hi: b.spanLo + int64(z)}
				key := fmt.Sprintf("%s@[%d,%d]", ruleKey(rule), iv.Lo, iv.Hi)
				out[key] = PeriodRule{
					TemporalRule: TemporalRule{
						Rule: rule, Freq: float64(nHold) / float64(nAct),
						HoldGranules: nHold, FeatureGranules: nAct,
					},
					Interval: iv,
				}
			}
		}
	})
	return out
}

// oracleCycles re-derives Task II's arithmetic half: brute-force every
// (length, offset), then an independent 5-line redundancy filter.
func (b *bruteTable) oracleCycles(maxLen, minReps int) map[string]CyclicRule {
	out := map[string]CyclicRule{}
	b.eachRule(func(ante, cons, full itemset.Set) {
		hold := b.hold(ante, full)
		var cycles []timegran.Cycle
		for l := 1; l <= maxLen; l++ {
			for o := 0; o < l; o++ {
				occ, hit := 0, 0
				for gi := o; gi < b.nGranules; gi += l {
					if !b.active[gi] {
						continue
					}
					occ++
					if hold[gi] {
						hit++
					}
				}
				if occ >= minReps && float64(hit) >= b.cfg.MinFreq*float64(occ)-1e-12 {
					abs := (b.spanLo + int64(o)) % int64(l)
					if abs < 0 {
						abs += int64(l)
					}
					cycles = append(cycles, timegran.Cycle{Length: int64(l), Offset: abs})
				}
			}
		}
		for _, c := range cycles {
			redundant := false
			for _, base := range cycles {
				if base.Length < c.Length && c.Length%base.Length == 0 && c.Offset%base.Length == base.Offset {
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
			keep := func(gi int) bool { return c.Matches(b.cfg.Granularity, b.spanLo+int64(gi)) }
			rule, ok := b.aggRule(ante, cons, full, keep)
			if !ok {
				continue
			}
			occ, hit := 0, 0
			for gi := range hold {
				if b.active[gi] && keep(gi) {
					occ++
					if hold[gi] {
						hit++
					}
				}
			}
			key := fmt.Sprintf("%s@%d/%d", ruleKey(rule), c.Length, c.Offset)
			out[key] = CyclicRule{
				TemporalRule: TemporalRule{
					Rule: rule, Freq: float64(hit) / float64(occ),
					HoldGranules: hit, FeatureGranules: occ,
				},
				Cycle: c,
			}
		}
	})
	return out
}

// oracleDuring re-derives Task III for a given feature.
func (b *bruteTable) oracleDuring(feature timegran.Pattern) (map[string]TemporalRule, int) {
	inFeature := make([]bool, b.nGranules)
	nFeature := 0
	for gi := range inFeature {
		if b.active[gi] && feature.Matches(b.cfg.Granularity, b.spanLo+int64(gi)) {
			inFeature[gi] = true
			nFeature++
		}
	}
	out := map[string]TemporalRule{}
	if nFeature == 0 {
		return out, 0
	}
	minHold := ceilCount(b.cfg.MinFreq, nFeature)
	b.eachRule(func(ante, cons, full itemset.Set) {
		hold := b.hold(ante, full)
		nHold := 0
		for gi, in := range inFeature {
			if in && hold[gi] {
				nHold++
			}
		}
		if nHold < minHold {
			return
		}
		rule, ok := b.aggRule(ante, cons, full, func(gi int) bool { return inFeature[gi] })
		if !ok {
			return
		}
		out[ruleKey(rule)] = TemporalRule{
			Rule: rule, Freq: float64(nHold) / float64(nFeature),
			HoldGranules: nHold, FeatureGranules: nFeature,
		}
	})
	return out, nFeature
}

// oracleCalendars re-derives Task II's calendar half for Day
// granularity: fold active granules onto weekday/month-day/month,
// qualify values (MinReps occurrences, hold fraction ≥ MinFreq), merge
// contiguous values, and keep only informative classes.
func (b *bruteTable) oracleCalendars(minReps int) map[string]CalendarRule {
	fields := []timegran.CalField{timegran.FieldWeekday, timegran.FieldMonthDay, timegran.FieldMonth}
	out := map[string]CalendarRule{}
	b.eachRule(func(ante, cons, full itemset.Set) {
		hold := b.hold(ante, full)
		for _, f := range fields {
			lo, hi := timegran.FieldDomain(f)
			occ := make([]int, hi-lo+1)
			hit := make([]int, hi-lo+1)
			for gi := range hold {
				if !b.active[gi] {
					continue
				}
				v := timegran.FieldValueAt(f, b.cfg.Granularity, b.spanLo+int64(gi)) - lo
				occ[v]++
				if hold[gi] {
					hit[v]++
				}
			}
			var ranges []timegran.FieldRange
			observed, qualifying := 0, 0
			for v := range occ {
				if occ[v] == 0 {
					continue
				}
				observed++
				if occ[v] >= minReps && float64(hit[v]) >= b.cfg.MinFreq*float64(occ[v])-1e-12 {
					qualifying++
					val := v + lo
					if n := len(ranges); n > 0 && ranges[n-1].Hi == val-1 {
						ranges[n-1].Hi = val
					} else {
						ranges = append(ranges, timegran.FieldRange{Lo: val, Hi: val})
					}
				}
			}
			if qualifying == 0 || qualifying == observed {
				continue
			}
			cal, err := timegran.NewCalendar(f, ranges...)
			if err != nil {
				continue
			}
			keep := func(gi int) bool {
				return b.active[gi] && cal.Matches(b.cfg.Granularity, b.spanLo+int64(gi))
			}
			rule, ok := b.aggRule(ante, cons, full, keep)
			if !ok {
				continue
			}
			nOcc, nHit := 0, 0
			for gi := range hold {
				if keep(gi) {
					nOcc++
					if hold[gi] {
						nHit++
					}
				}
			}
			key := fmt.Sprintf("%s@%d:%s", ruleKey(rule), f, cal.String())
			out[key] = CalendarRule{
				TemporalRule: TemporalRule{
					Rule: rule, Freq: float64(nHit) / float64(nOcc),
					HoldGranules: nHit, FeatureGranules: nOcc,
				},
				Field: f,
			}
		}
	})
	return out
}

// ---------------------------------------------------------------------
// The differential suite.

// duringFeatures are the Task III features the oracle rotates through;
// features covering no active granule are expected to error.
var duringFeatures = []string{
	"weekday in (1..3)",
	"weekday in (6..7)",
	"day in (1..15)",
}

// TestDifferentialOracle replays oracleCases random datasets through
// every backend and every task driver, comparing each against the
// brute-force reference.
func TestDifferentialOracle(t *testing.T) {
	checked := 0
	for c := 0; c < oracleCases; c++ {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		d := genDataset(rng)
		if !d.active() {
			continue
		}
		b := bruteBuild(d)

		// 1. The counting substrate, across backends and parallelism.
		var h *HoldTable
		for _, m := range backendMatrix {
			cfg := d.cfg
			cfg.Backend = m.backend
			cfg.Workers = m.workers
			ht, err := BuildHoldTable(d.tbl, cfg)
			if err != nil {
				t.Fatalf("case %d %v/w%d: %v", c, m.backend, m.workers, err)
			}
			checkHoldTable(t, fmt.Sprintf("case %d %v/w%d", c, m.backend, m.workers), ht, b)
			h = ht
		}

		// 2. Task I: valid periods.
		pcfg := PeriodConfig{MinLen: 1 + rng.Intn(3)}
		periods, err := MineValidPeriodsFromTable(h, pcfg)
		if err != nil {
			t.Fatalf("case %d periods: %v", c, err)
		}
		wantP := b.oraclePeriods(pcfg.MinLen)
		if len(periods) != len(wantP) {
			t.Fatalf("case %d: %d period rules, oracle %d\n got %v\nwant %v",
				c, len(periods), len(wantP), periods, wantP)
		}
		for _, pr := range periods {
			key := fmt.Sprintf("%s@[%d,%d]", ruleKey(pr.Rule), pr.Interval.Lo, pr.Interval.Hi)
			want, ok := wantP[key]
			if !ok {
				t.Fatalf("case %d: unexpected period rule %s", c, key)
			}
			sameTemporal(t, fmt.Sprintf("case %d period %s", c, key), pr.TemporalRule, want.TemporalRule)
		}

		// 3. Task II: cycles.
		ccfg := CycleConfig{MaxLen: 4 + rng.Intn(8), MinReps: 2 + rng.Intn(2)}
		cycles, err := MineCyclesFromTable(h, ccfg)
		if err != nil {
			t.Fatalf("case %d cycles: %v", c, err)
		}
		wantC := b.oracleCycles(ccfg.MaxLen, ccfg.MinReps)
		if len(cycles) != len(wantC) {
			t.Fatalf("case %d: %d cyclic rules, oracle %d", c, len(cycles), len(wantC))
		}
		for _, cr := range cycles {
			key := fmt.Sprintf("%s@%d/%d", ruleKey(cr.Rule), cr.Cycle.Length, cr.Cycle.Offset)
			want, ok := wantC[key]
			if !ok {
				t.Fatalf("case %d: unexpected cyclic rule %s", c, key)
			}
			sameTemporal(t, fmt.Sprintf("case %d cycle %s", c, key), cr.TemporalRule, want.TemporalRule)
		}

		// 4. Task II: calendar periodicities.
		cals, err := MineCalendarPeriodicitiesFromTable(h, ccfg)
		if err != nil {
			t.Fatalf("case %d calendars: %v", c, err)
		}
		wantCal := b.oracleCalendars(ccfg.MinReps)
		if len(cals) != len(wantCal) {
			t.Fatalf("case %d: %d calendar rules, oracle %d\n got %v\nwant %v",
				c, len(cals), len(wantCal), cals, wantCal)
		}
		for _, cr := range cals {
			key := fmt.Sprintf("%s@%d:%s", ruleKey(cr.Rule), cr.Field, cr.Feature.String())
			want, ok := wantCal[key]
			if !ok {
				t.Fatalf("case %d: unexpected calendar rule %s", c, key)
			}
			sameTemporal(t, fmt.Sprintf("case %d calendar %s", c, key), cr.TemporalRule, want.TemporalRule)
		}

		// 5. Task III: during a feature.
		expr := duringFeatures[c%len(duringFeatures)]
		feature, err := timegran.ParsePattern(expr)
		if err != nil {
			t.Fatalf("bad feature %q: %v", expr, err)
		}
		wantD, nFeature := b.oracleDuring(feature)
		during, err := MineDuringFromTable(h, feature)
		if nFeature == 0 {
			if err == nil {
				t.Fatalf("case %d: feature %q covers no active granule but MineDuring returned %d rules",
					c, expr, len(during))
			}
		} else {
			if err != nil {
				t.Fatalf("case %d during: %v", c, err)
			}
			if len(during) != len(wantD) {
				t.Fatalf("case %d: %d during rules, oracle %d", c, len(during), len(wantD))
			}
			for _, dr := range during {
				want, ok := wantD[ruleKey(dr.Rule)]
				if !ok {
					t.Fatalf("case %d: unexpected during rule %s", c, ruleKey(dr.Rule))
				}
				sameTemporal(t, fmt.Sprintf("case %d during %s", c, ruleKey(dr.Rule)), dr, want)
			}
		}

		// 6. Task: rule history. Pick a frequent multi-item itemset when
		// one exists and compare the per-granule series.
		var full itemset.Set
		for k := len(b.byK) - 1; k >= 2 && full == nil; k-- {
			if len(b.byK[k]) > 0 {
				full = b.byK[k][rng.Intn(len(b.byK[k]))]
			}
		}
		if full != nil {
			cons := itemset.Set{full[len(full)-1]}
			ante := full.WithoutItem(full[len(full)-1])
			hist, err := RuleHistoryFromTable(h, ante, cons)
			if err != nil {
				t.Fatalf("case %d history: %v", c, err)
			}
			if len(hist) != b.nGranules {
				t.Fatalf("case %d: history has %d granules, oracle %d", c, len(hist), b.nGranules)
			}
			hold := b.hold(ante, full)
			fullCounts := b.counts[full.Key()]
			anteCounts := b.counts[ante.Key()]
			for gi, gs := range hist {
				if gs.Granule != b.spanLo+int64(gi) || gs.TxCount != b.txCounts[gi] ||
					gs.Count != int(fullCounts[gi]) || gs.Active != b.active[gi] || gs.Holds != hold[gi] {
					t.Fatalf("case %d history granule %d: %+v (oracle count %d active %v holds %v)",
						c, gi, gs, fullCounts[gi], b.active[gi], hold[gi])
				}
				wantSupp := 0.0
				if b.txCounts[gi] > 0 {
					wantSupp = float64(fullCounts[gi]) / float64(b.txCounts[gi])
				}
				wantConf := 0.0
				if anteCounts != nil && anteCounts[gi] > 0 {
					wantConf = float64(fullCounts[gi]) / float64(anteCounts[gi])
				}
				if math.Abs(gs.Support-wantSupp) > floatTol || math.Abs(gs.Confidence-wantConf) > floatTol {
					t.Fatalf("case %d history granule %d: supp/conf %v/%v, oracle %v/%v",
						c, gi, gs.Support, gs.Confidence, wantSupp, wantConf)
				}
			}
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d datasets exercised, need ≥ 100", checked)
	}
	t.Logf("differential oracle: %d randomized datasets agreed across %d backend configurations",
		checked, len(backendMatrix))
}

// ---------------------------------------------------------------------
// Append-interleaved grid: delta maintenance under random write
// traffic must stay bit-identical to a cold rebuild, across backends.

// bruteRebuild re-derives the brute reference for the current contents
// of a per-granule transcript (the append-interleaved grid's running
// mirror of the table).
func bruteRebuild(cfg Config, items []itemset.Item, byG map[timegran.Granule][]itemset.Set) *bruteTable {
	var lo, hi timegran.Granule
	first := true
	for g, txs := range byG {
		if len(txs) == 0 {
			continue
		}
		if first || g < lo {
			lo = g
		}
		if first || g > hi {
			hi = g
		}
		first = false
	}
	n := int(hi - lo + 1)
	txs := make([][]itemset.Set, n)
	for g, list := range byG {
		txs[g-lo] = list
	}
	return bruteBuild(oracleData{cfg: cfg, items: items, txs: txs, spanLo: lo})
}

// checkIdenticalTables asserts two hold tables are bit-identical:
// same span, same per-granule metadata, same levels in the same order,
// same count vectors.
func checkIdenticalTables(t *testing.T, tag string, got, want *HoldTable) {
	t.Helper()
	if got.Span != want.Span {
		t.Fatalf("%s: span %v, cold rebuild %v", tag, got.Span, want.Span)
	}
	for gi := range want.TxCounts {
		if got.TxCounts[gi] != want.TxCounts[gi] || got.Active[gi] != want.Active[gi] ||
			got.MinCounts[gi] != want.MinCounts[gi] {
			t.Fatalf("%s: granule %d: tx/active/min = %d/%v/%d, cold rebuild %d/%v/%d", tag, gi,
				got.TxCounts[gi], got.Active[gi], got.MinCounts[gi],
				want.TxCounts[gi], want.Active[gi], want.MinCounts[gi])
		}
	}
	if len(got.ByK) != len(want.ByK) {
		t.Fatalf("%s: %d levels, cold rebuild %d", tag, len(got.ByK), len(want.ByK))
	}
	for k := 1; k < len(want.ByK); k++ {
		if len(got.ByK[k]) != len(want.ByK[k]) {
			t.Fatalf("%s: level %d has %d itemsets, cold rebuild %d\n got %v\nwant %v",
				tag, k, len(got.ByK[k]), len(want.ByK[k]), got.ByK[k], want.ByK[k])
		}
		for i, s := range want.ByK[k] {
			if !got.ByK[k][i].Equal(s) {
				t.Fatalf("%s: level %d itemset %d = %v, cold rebuild %v", tag, k, i, got.ByK[k][i], s)
			}
			gv, wv := got.Counts(s), want.Counts(s)
			for gi := range wv {
				if gv[gi] != wv[gi] {
					t.Fatalf("%s: counts(%v)[%d] = %d, cold rebuild %d", tag, s, gi, gv[gi], wv[gi])
				}
			}
		}
	}
}

// TestAppendInterleavedOracle interleaves random append batches with
// maintenance rounds: each round appends 1-3 batches (inside the span,
// extending it on either side, reviving inactive granules), derives the
// dirty set through DirtySince, delta-maintains one hold-table chain
// per backend configuration, and requires every maintained table to be
// bit-identical to a cold rebuild of the same data AND to agree with
// the brute-force reference. Task I is re-mined from the maintained and
// rebuilt tables each round as the interleaved "statement".
func TestAppendInterleavedOracle(t *testing.T) {
	const cases = 25
	const rounds = 4
	checked := 0
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(7000 + c)))
		d := genDataset(rng)
		if !d.active() {
			continue
		}
		checked++

		// Running per-granule transcript mirroring the table, for the
		// brute reference.
		byG := map[timegran.Granule][]itemset.Set{}
		for gi, g := range d.txs {
			if len(g) > 0 {
				byG[d.spanLo+timegran.Granule(gi)] = append([]itemset.Set(nil), g...)
			}
		}

		// One maintained chain per backend configuration, all rooted at
		// the same epoch.
		maint := make([]*HoldTable, len(backendMatrix))
		cfgs := make([]Config, len(backendMatrix))
		for i, m := range backendMatrix {
			cfg := d.cfg
			cfg.Backend = m.backend
			cfg.Workers = m.workers
			cfgs[i] = cfg
			h, err := BuildHoldTable(d.tbl, cfg)
			if err != nil {
				t.Fatalf("case %d %v/w%d: %v", c, m.backend, m.workers, err)
			}
			maint[i] = h
		}
		since := d.tbl.Epoch()

		for round := 0; round < rounds; round++ {
			span, _ := d.tbl.Span(timegran.Day)
			for j := 1 + rng.Intn(3); j > 0; j-- {
				// Granules drawn from a window two days wider than the
				// span on each side, so rounds extend it in both
				// directions and land in inactive granules too.
				g := span.Lo - 2 + timegran.Granule(rng.Intn(int(span.Len())+4))
				for x := 1 + rng.Intn(4); x > 0; x-- {
					var s []itemset.Item
					for _, it := range d.items {
						if rng.Float64() < 0.5 {
							s = append(s, it)
						}
					}
					if len(s) == 0 {
						s = append(s, d.items[rng.Intn(len(d.items))])
					}
					set := itemset.New(s...)
					d.tbl.Append(timegran.Start(g, timegran.Day), set)
					byG[g] = append(byG[g], set)
				}
			}
			dirty, epoch, ok := d.tbl.DirtySince(timegran.Day, since)
			if !ok {
				t.Fatalf("case %d round %d: DirtySince lost the change log", c, round)
			}
			since = epoch
			b := bruteRebuild(d.cfg, d.items, byG)

			for i := range maint {
				tag := fmt.Sprintf("case %d round %d %v/w%d", c, round, cfgs[i].Backend, cfgs[i].Workers)
				nh, err := maint[i].Maintain(d.tbl, dirty)
				if err != nil {
					t.Fatalf("%s: Maintain: %v", tag, err)
				}
				cold, err := BuildHoldTable(d.tbl, cfgs[i])
				if err != nil {
					t.Fatalf("%s: rebuild: %v", tag, err)
				}
				checkHoldTable(t, tag+" (vs oracle)", nh, b)
				checkIdenticalTables(t, tag, nh, cold)
				maint[i] = nh

				// The interleaved statement: Task I must answer the same
				// off the maintained table as off the rebuilt one.
				mp, err1 := MineValidPeriodsFromTable(nh, PeriodConfig{MinLen: 1})
				cp, err2 := MineValidPeriodsFromTable(cold, PeriodConfig{MinLen: 1})
				if (err1 == nil) != (err2 == nil) || len(mp) != len(cp) {
					t.Fatalf("%s: %d period rules (err %v) off maintained, %d (err %v) off rebuild",
						tag, len(mp), err1, len(cp), err2)
				}
				for ri := range cp {
					if mp[ri].Interval != cp[ri].Interval {
						t.Fatalf("%s: period %d interval %v, rebuild %v", tag, ri, mp[ri].Interval, cp[ri].Interval)
					}
					sameTemporal(t, fmt.Sprintf("%s period %d", tag, ri), mp[ri].TemporalRule, cp[ri].TemporalRule)
				}
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d datasets exercised, need ≥ 20", checked)
	}
	t.Logf("append-interleaved oracle: %d datasets × %d rounds agreed across %d backend configurations",
		checked, rounds, len(backendMatrix))
}

// TestOracleSelfCheck pins the brute-force reference on a hand-built
// dataset, so a bug in the oracle itself cannot silently agree with a
// matching bug in the system.
func TestOracleSelfCheck(t *testing.T) {
	tbl, err := tdb.NewTxTable("self")
	if err != nil {
		t.Fatal(err)
	}
	start := timegran.Start(20000, timegran.Day)
	// 4 granules: {ab, ab, a}, {ab}, {}, {b}.
	txs := [][]itemset.Set{
		{itemset.New(1, 2), itemset.New(1, 2), itemset.New(1)},
		{itemset.New(1, 2)},
		nil,
		{itemset.New(2)},
	}
	for gi, g := range txs {
		for _, s := range g {
			tbl.Append(start.AddDate(0, 0, gi), s)
		}
	}
	d := oracleData{
		tbl: tbl,
		cfg: Config{Granularity: timegran.Day, MinSupport: 0.5, MinConfidence: 0.6, MinFreq: 1},
		items: []itemset.Item{1, 2},
		txs:   txs,
		spanLo: 20000,
	}
	b := bruteBuild(d)
	if !b.active[0] || !b.active[1] || b.active[2] || !b.active[3] {
		t.Fatalf("active = %v", b.active)
	}
	// {1,2} counts: 2,1,0,0; thresholds ceil(.5·3)=2, ceil(.5·1)=1.
	v := b.counts[itemset.New(1, 2).Key()]
	if v == nil || v[0] != 2 || v[1] != 1 || v[2] != 0 || v[3] != 0 {
		t.Fatalf("counts(12) = %v", v)
	}
	hold := b.hold(itemset.New(1), itemset.New(1, 2))
	// g0: supp 2≥2, conf 2/3=0.67 ≥ 0.6 → holds. g1: 1≥1, conf 1/1 →
	// holds. g3: count 0 → no.
	want := []bool{true, true, false, false}
	for gi := range want {
		if hold[gi] != want[gi] {
			t.Fatalf("hold = %v, want %v", hold, want)
		}
	}
	sorted := b.byK[1]
	if len(sorted) != 2 || !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 }) {
		t.Fatalf("level 1 = %v", sorted)
	}
}
