package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// cacheTestCfg is the build config the cache tests share.
func cacheTestCfg(minsup float64, maxK int) Config {
	return Config{
		Granularity:   timegran.Day,
		MinSupport:    minsup,
		MinConfidence: 0.5,
		MinFreq:       0.8,
		MaxK:          maxK,
	}
}

// cacheEquivTable is a smaller planted dataset than backendTestTable:
// the re-threshold grid below builds it cold many times over.
func cacheEquivTable(t *testing.T, seed int64) *tdb.TxTable {
	t.Helper()
	weekend, err := timegran.NewCalendar(timegran.FieldWeekday, timegran.FieldRange{Lo: 6, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := gen.GenerateTemporal(gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 60, NPatterns: 15, AvgTxLen: 6},
		Start:        time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  timegran.Day,
		NGranules:    35,
		TxPerGranule: 12,
		Rules: []gen.PlantedRule{
			{Name: "weekend", Items: itemset.New(500, 501), Pattern: weekend, PInside: 0.5, POutside: 0.01},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestRethresholdMatchesColdBuild is the monotone-reuse property at the
// heart of the HoldCache: a table built at a low support, re-thresholded
// to any higher support and equal-or-shallower MaxK, must agree bit for
// bit with a cold build at the query thresholds — from a base table
// built on every backend. Each query config is cold-built once; every
// backend's re-threshold must reproduce it, which doubles as a
// cross-backend equivalence check.
func TestRethresholdMatchesColdBuild(t *testing.T) {
	tbl := cacheEquivTable(t, 42)
	backends := []apriori.Backend{apriori.BackendNaive, apriori.BackendHashTree, apriori.BackendBitmap}
	type grid struct {
		buildK  int
		queryKs []int
	}
	grids := []grid{
		{buildK: 0, queryKs: []int{0, 2, 3}},
		{buildK: 3, queryKs: []int{2, 3}},
	}
	const buildSup = 0.05
	// Base tables, one per (backend, build depth).
	bases := map[apriori.Backend]map[int]*HoldTable{}
	for _, backend := range backends {
		bases[backend] = map[int]*HoldTable{}
		for _, g := range grids {
			bcfg := cacheTestCfg(buildSup, g.buildK)
			bcfg.Backend = backend
			base, err := BuildHoldTable(tbl, bcfg)
			if err != nil {
				t.Fatal(err)
			}
			bases[backend][g.buildK] = base
		}
	}
	for _, querySup := range []float64{buildSup, 0.08, 0.15, 0.4} {
		for _, g := range grids {
			for _, queryK := range g.queryKs {
				qcfg := cacheTestCfg(querySup, queryK)
				want, err := BuildHoldTable(tbl, qcfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, backend := range backends {
					got, err := bases[backend][g.buildK].Rethreshold(qcfg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("backend=%v build=(%g,k%d) query=(%g,k%d)",
						backend, buildSup, g.buildK, querySup, queryK)
					sameHoldTable(t, label, want, got)
				}
			}
		}
	}
}

// TestRethresholdRejectsUncovered: lower support, deeper MaxK or a
// different granule grid cannot be derived and must error.
func TestRethresholdRejectsUncovered(t *testing.T) {
	tbl := backendTestTable(t, 7)
	base, err := BuildHoldTable(tbl, cacheTestCfg(0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		cacheTestCfg(0.05, 3), // support below build
		cacheTestCfg(0.1, 4),  // deeper than built
		cacheTestCfg(0.1, 0),  // unbounded vs bounded build
	}
	weekly := cacheTestCfg(0.1, 3)
	weekly.Granularity = timegran.Week
	bad = append(bad, weekly)
	coarse := cacheTestCfg(0.1, 3)
	coarse.MinGranuleTx = 5
	bad = append(bad, coarse)
	for i, cfg := range bad {
		if _, err := base.Rethreshold(cfg); err == nil {
			t.Errorf("case %d: Rethreshold accepted uncovered config %+v", i, cfg)
		}
	}
}

// TestHoldCacheHitMissRethreshold walks one cache through the three
// lookup outcomes and checks both the counters and the results.
func TestHoldCacheHitMissRethreshold(t *testing.T) {
	tbl := backendTestTable(t, 42)
	c := NewHoldCache(DefaultCacheBytes)

	cfg := cacheTestCfg(0.05, 3)
	h1, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after cold Get: %+v", st)
	}

	// Same thresholds again: exact hit, shared data.
	h2, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after warm Get: %+v", st)
	}
	sameHoldTable(t, "exact hit", h1, h2)

	// Higher support: served by re-thresholding, equal to a cold build.
	qcfg := cacheTestCfg(0.1, 3)
	warm, err := c.Get(tbl, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Rethresholds != 1 || st.Misses != 1 {
		t.Fatalf("after rethreshold Get: %+v", st)
	}
	cold, err := BuildHoldTable(tbl, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	sameHoldTable(t, "rethreshold", cold, warm)

	// Lower support: not covered, rebuilds and replaces the entry.
	lcfg := cacheTestCfg(0.02, 3)
	if _, err := c.Get(tbl, lcfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("after lower-support Get: %+v", st)
	}
	// The broader entry now serves the original thresholds too.
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Rethresholds != 2 || st.Misses != 2 {
		t.Fatalf("after re-query at 0.05: %+v", st)
	}
}

// TestHoldCacheMaxKCoverage: an unbounded build serves bounded queries;
// a bounded build does not serve deeper or unbounded ones.
func TestHoldCacheMaxKCoverage(t *testing.T) {
	tbl := backendTestTable(t, 42)
	c := NewHoldCache(DefaultCacheBytes)
	if _, err := c.Get(tbl, cacheTestCfg(0.05, 2)); err != nil {
		t.Fatal(err)
	}
	// Deeper than built: miss (and the new unbounded entry replaces it).
	if _, err := c.Get(tbl, cacheTestCfg(0.05, 0)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Rethresholds != 0 {
		t.Fatalf("bounded entry served an unbounded query: %+v", st)
	}
	// Unbounded entry covers any bounded depth.
	if _, err := c.Get(tbl, cacheTestCfg(0.05, 2)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Rethresholds != 1 || st.Misses != 2 {
		t.Fatalf("unbounded entry did not serve a bounded query: %+v", st)
	}
}

// TestHoldCacheEpochDelta: an Append between statements must not serve
// the stale entry — it is delta-maintained in place, and the refreshed
// table sees the new data.
func TestHoldCacheEpochDelta(t *testing.T) {
	tbl := backendTestTable(t, 42)
	c := NewHoldCache(DefaultCacheBytes)
	cfg := cacheTestCfg(0.05, 3)
	h1, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 5, 30, 12, 0, 0, 0, time.UTC)
	tbl.Append(at, itemset.New(500, 501))
	if got := c.Probe(tbl, cfg); got != "delta" {
		t.Fatalf("Probe after append = %q, want delta", got)
	}
	h2, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Deltas != 1 || st.Misses != 1 || st.Invalidations != 0 || st.Hits != 0 {
		t.Fatalf("Append did not delta-maintain: %+v", st)
	}
	if h2.NGranules() <= h1.NGranules() {
		t.Fatalf("maintained table does not cover the appended granule: %d vs %d granules", h2.NGranules(), h1.NGranules())
	}
	// The refreshed entry serves hits again, and is bit-identical to a
	// cold rebuild.
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("no hit after delta maintenance: %+v", st)
	}
	rebuilt, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !holdTablesEqual(h2, rebuilt) {
		t.Fatal("delta-maintained table differs from cold rebuild")
	}
}

// TestHoldCacheEpochInvalidation: with delta maintenance disabled, an
// Append between statements must force a rebuild (the pre-delta
// policy), and the rebuilt table must see the new data.
func TestHoldCacheEpochInvalidation(t *testing.T) {
	tbl := backendTestTable(t, 42)
	c := NewHoldCache(DefaultCacheBytes)
	c.DisableDelta()
	cfg := cacheTestCfg(0.05, 3)
	h1, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2001, 5, 30, 12, 0, 0, 0, time.UTC)
	tbl.Append(at, itemset.New(500, 501))
	if got := c.Probe(tbl, cfg); got != "build" {
		t.Fatalf("Probe after append with delta off = %q, want build", got)
	}
	h2, err := c.Get(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Misses != 2 || st.Hits != 0 || st.Deltas != 0 {
		t.Fatalf("Append did not invalidate: %+v", st)
	}
	if h2.NGranules() <= h1.NGranules() {
		t.Fatalf("rebuilt table does not cover the appended granule: %d vs %d granules", h2.NGranules(), h1.NGranules())
	}
	// And the fresh entry serves hits again.
	if _, err := c.Get(tbl, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("no hit after rebuild: %+v", st)
	}
}

// TestHoldCacheEviction: a budget that fits one table evicts the least
// recently used entry when a second is inserted.
func TestHoldCacheEviction(t *testing.T) {
	tbl := backendTestTable(t, 42)
	cfg1 := cacheTestCfg(0.05, 3)
	h, err := BuildHoldTable(tbl, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewHoldCache(h.MemBytes() + h.MemBytes()/2)
	if _, err := c.Get(tbl, cfg1); err != nil {
		t.Fatal(err)
	}
	// A different MinGranuleTx is a different granule grid — a second
	// cache key over the same table.
	cfg2 := cacheTestCfg(0.05, 3)
	cfg2.MinGranuleTx = 2
	if _, err := c.Get(tbl, cfg2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("expected one eviction leaving one entry: %+v", st)
	}
	if st.ResidentBytes > st.MaxBytes {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.MaxBytes)
	}
	// The first entry is gone: querying it again misses.
	if _, err := c.Get(tbl, cfg1); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("evicted entry still served: %+v", st)
	}
}

// gateTracer blocks the builder inside BuildHoldTable until the test
// says every concurrent statement has reached the cache, making the
// singleflight test deterministic.
type gateTracer struct {
	obs.NopTracer
	gate chan struct{}
}

func (g *gateTracer) Enabled() bool { return true }
func (g *gateTracer) StartTask(name string) {
	if name == "core.BuildHoldTable" {
		<-g.gate
	}
}

// TestHoldCacheSingleflight: concurrent identical statements on a cold
// cache trigger exactly one build; the rest wait and share it.
func TestHoldCacheSingleflight(t *testing.T) {
	tbl := backendTestTable(t, 42)
	c := NewHoldCache(DefaultCacheBytes)
	const n = 8
	gt := &gateTracer{gate: make(chan struct{})}
	cfg := cacheTestCfg(0.05, 3)
	cfg.Tracer = gt

	results := make([]*HoldTable, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Get(tbl, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = h
		}(i)
	}
	// One goroutine is the builder, parked at the gate inside
	// BuildHoldTable; wait until the other n-1 have registered as
	// waiters, then release it.
	for {
		if st := c.Stats(); st.Dedups == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gt.gate)
	wg.Wait()

	st := c.Stats()
	if st.Misses != 1 || st.Dedups != n-1 {
		t.Fatalf("singleflight did not coalesce: %+v", st)
	}
	for i := 1; i < n; i++ {
		sameHoldTable(t, fmt.Sprintf("waiter %d", i), results[0], results[i])
	}
}

// TestHoldCacheNilSafe: a nil cache builds directly and keeps no state.
func TestHoldCacheNilSafe(t *testing.T) {
	tbl := backendTestTable(t, 7)
	var c *HoldCache
	h, err := c.Get(tbl, cacheTestCfg(0.1, 3))
	if err != nil || h == nil {
		t.Fatalf("nil cache Get: %v, %v", h, err)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache has stats: %+v", st)
	}
	if NewHoldCache(0) != nil {
		t.Fatal("NewHoldCache(0) should disable caching by returning nil")
	}
}
