package core

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Maintain delta-maintains the hold table after appends to tbl touched
// only the given granules: it returns a new HoldTable that is
// bit-identical to a cold BuildHoldTable of the current data, but whose
// cost is proportional to the dirty region, not the span. The receiver
// is unchanged. dirty is the set of granules (at the table's build
// granularity) that received appends since the receiver was built —
// tdb.TxTable.DirtySince produces exactly this list.
//
// The splice invariant that makes this sound: appends perturb only the
// granules they land in. A clean granule keeps its transaction count,
// therefore its support threshold, therefore every itemset's frequency
// status in it. So
//
//  1. Tracked itemsets are recounted over the dirty granules only and
//     their fresh per-granule counts spliced into the carried vector;
//     clean columns are reused verbatim.
//  2. An itemset not tracked before cannot have become frequent in a
//     clean granule (if it were frequent there now, it was frequent
//     there before and would have been tracked — Apriori monotonicity
//     extends this across levels, see below). Untracked candidates are
//     therefore counted over the dirty region only, and the few that
//     cross a threshold there get one candidate-restricted recovery
//     scan of the clean region to fill in their historical counts.
//  3. Dirty-granule thresholds can only rise (transaction counts only
//     grow), so every carried vector is re-filtered through the new
//     thresholds; itemsets frequent only in a dirty granule can drop
//     out, exactly as a cold rebuild would drop them.
//
// The cross-level argument for (2): suppose candidate c at level k is
// frequent in a clean granule but was not tracked. Monotonicity makes
// every (k-1)-subset of c frequent in that clean granule — in the old
// data too, since the granule is clean — so every subset was tracked,
// so the old build generated and counted c, and, c being frequent in
// the clean granule then as now, retained it. Contradiction.
//
// Maintain returns an error (and the caller should fall back to a cold
// rebuild) when the dirty list provably misses a changed granule, when
// the table shrank, or when no granule is active.
func (h *HoldTable) Maintain(tbl *tdb.TxTable, dirty []timegran.Granule) (*HoldTable, error) {
	return h.MaintainContext(context.Background(), tbl, dirty)
}

// MaintainContext is Maintain under a context; cancellation is observed
// between levels and between granule scans, never per transaction.
func (h *HoldTable) MaintainContext(ctx context.Context, tbl *tdb.TxTable, dirty []timegran.Granule) (*HoldTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(h.ByK) < 2 {
		return nil, fmt.Errorf("core: Maintain on an unbuilt hold table")
	}
	span, ok := tbl.Span(h.Cfg.Granularity)
	if !ok {
		return nil, fmt.Errorf("core: Maintain on an empty table")
	}
	if span.Lo > h.Span.Lo || span.Hi < h.Span.Hi {
		return nil, fmt.Errorf("core: Maintain: span shrank from %v to %v; rebuild instead", h.Span, span)
	}
	n := int(span.Len())
	off := int(h.Span.Lo - span.Lo) // re-basing offset of old vectors
	oldN := h.NGranules()

	tr := h.Cfg.tracer()
	if tr.Enabled() {
		tr.StartTask("core.MaintainHoldTable")
		defer tr.EndTask()
		tr.Gauge(obs.MetricGranules, float64(n))
		tr.Gauge(obs.MetricGranulesDirty, float64(len(dirty)))
	}

	nh := &HoldTable{
		Cfg:       h.Cfg,
		Span:      span,
		TxCounts:  tbl.GranuleCounts(h.Cfg.Granularity, span),
		MinCounts: make([]int, n),
		Active:    make([]bool, n),
		ByK:       [][]itemset.Set{nil},
		counts:    make(map[string][]int32, len(h.counts)),
	}
	for i, txc := range nh.TxCounts {
		if txc >= nh.Cfg.MinGranuleTx {
			nh.Active[i] = true
			nh.NActive++
			nh.MinCounts[i] = ceilCount(nh.Cfg.MinSupport, txc)
		}
	}
	if nh.NActive == 0 {
		return nil, fmt.Errorf("core: no granule has at least %d transactions", nh.Cfg.MinGranuleTx)
	}

	// Dirty membership by new-span offset, with the soundness check: a
	// granule whose transaction count changed (old count 0 outside the
	// old span) must be in the dirty list, or the list is incomplete and
	// splicing would silently serve stale counts.
	dirtySet := make([]bool, n)
	for _, g := range dirty {
		gi := int(g - span.Lo)
		if gi < 0 || gi >= n {
			return nil, fmt.Errorf("core: Maintain: dirty granule %d outside table span %v", g, span)
		}
		dirtySet[gi] = true
	}
	for gi, txc := range nh.TxCounts {
		old := 0
		if gi >= off && gi-off < oldN {
			old = h.TxCounts[gi-off]
		}
		if txc != old && !dirtySet[gi] {
			return nil, fmt.Errorf("core: Maintain: granule %d changed (%d → %d tx) but is not in the dirty list; rebuild instead",
				span.Lo+timegran.Granule(gi), old, txc)
		}
	}
	// Active dirty granules drive all recounting; inactive ones hold no
	// counts in a cold build either.
	var dirtyActive []timegran.Granule
	for _, g := range dirty {
		if nh.Active[int(g-span.Lo)] {
			dirtyActive = append(dirtyActive, g)
		}
	}
	// Clean active granules, for newcomer recovery scans.
	var cleanActive []timegran.Granule
	for gi := 0; gi < n; gi++ {
		if nh.Active[gi] && !dirtySet[gi] {
			cleanActive = append(cleanActive, span.Lo+timegran.Granule(gi))
		}
	}

	// rebase widens an old count vector to the new span, leaving dirty
	// columns zeroed for the splice.
	rebase := func(old []int32) []int32 {
		v := make([]int32, n)
		copy(v[off:off+oldN], old)
		for gi := range dirtySet {
			if dirtySet[gi] {
				v[gi] = 0
			}
		}
		return v
	}

	// Level 1: per-item counts over the active dirty granules only.
	c1 := make(map[itemset.Item][]int32)
	for _, g := range dirtyActive {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gi := int(g - span.Lo)
		tbl.GranuleSource(nh.Cfg.Granularity, g).ForEach(func(tx itemset.Set) {
			for _, x := range tx {
				v := c1[x]
				if v == nil {
					v = make([]int32, n)
					c1[x] = v
				}
				v[gi]++
			}
		})
	}
	var l1 []itemset.Set
	tracked := make(map[string]bool, len(h.ByK[1]))
	for _, s := range h.ByK[1] {
		tracked[s.Key()] = true
		v := rebase(h.counts[s.Key()])
		if nv := c1[s[0]]; nv != nil {
			for gi, dirt := range dirtySet {
				if dirt {
					v[gi] = nv[gi]
				}
			}
		}
		if nh.frequentSomewhere(v) {
			l1 = append(l1, s)
			nh.counts[s.Key()] = v
		}
	}
	// Items seen in the dirty region at all. A higher-level candidate
	// whose items are not all present there cannot have a nonzero dirty
	// count, so the per-level recounts below skip it outright.
	dirtyItems := make(map[itemset.Item]bool, len(c1))
	for x := range c1 {
		dirtyItems[x] = true
	}
	var newcomers []itemset.Set
	for x, nv := range c1 {
		s := itemset.Set{x}
		if tracked[s.Key()] {
			continue
		}
		if nh.frequentInGranules(nv, dirtyActive) {
			newcomers = append(newcomers, s)
		}
	}
	if len(newcomers) > 0 {
		// The only history-proportional part: recover the clean-region
		// counts of items that just became granule-frequent.
		want := make(map[itemset.Item][]int32, len(newcomers))
		for _, s := range newcomers {
			want[s[0]] = c1[s[0]]
		}
		for _, g := range cleanActive {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			gi := int(g - span.Lo)
			tbl.GranuleSource(nh.Cfg.Granularity, g).ForEach(func(tx itemset.Set) {
				for _, x := range tx {
					if v, ok := want[x]; ok {
						v[gi]++
					}
				}
			})
		}
		for _, s := range newcomers {
			nh.counts[s.Key()] = c1[s[0]]
			l1 = append(l1, s)
		}
	}
	itemset.SortSets(l1)
	nh.ByK = append(nh.ByK, l1)

	// Higher levels replay the cold build's level-wise loop — same
	// generation, same stopping rule — but each candidate batch is
	// counted over the dirty region only, spliced into carried vectors,
	// and untracked candidates that cross a threshold there get one
	// clean-region recovery pass.
	prev := l1
	for k := 2; len(prev) > 1 && (nh.Cfg.MaxK == 0 || k <= nh.Cfg.MaxK); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands, _, _ := generateFromSets(prev)
		if len(cands) == 0 {
			break
		}
		// Count only the candidates that can occur in the dirty region;
		// the rest keep a nil (all-zero) dirty vector.
		var countable []itemset.Set
		var countIdx []int
		for i, c := range cands {
			all := true
			for _, x := range c {
				if !dirtyItems[x] {
					all = false
					break
				}
			}
			if all {
				countable = append(countable, c)
				countIdx = append(countIdx, i)
			}
		}
		dirtyCounts := make([][]int32, len(cands))
		if len(countable) > 0 {
			counted, err := countGranules(ctx, tbl, nh, countable, k, dirtyActive)
			if err != nil {
				return nil, err
			}
			for j, i := range countIdx {
				dirtyCounts[i] = counted[j]
			}
		}
		var risers []itemset.Set
		var riserIdx []int
		for i, c := range cands {
			// Dirty-frequency first: it is a few column compares (false
			// for the nil vectors most candidates keep), cheaper than the
			// countsOf key lookup.
			if nh.frequentInGranules(dirtyCounts[i], dirtyActive) && h.countsOf(c) == nil {
				risers = append(risers, c)
				riserIdx = append(riserIdx, i)
			}
		}
		if len(risers) > 0 {
			histCounts, err := countGranules(ctx, tbl, nh, risers, k, cleanActive)
			if err != nil {
				return nil, err
			}
			for j := range risers {
				hist := histCounts[j]
				if hist == nil {
					continue // no clean-region occurrences: zeros are right
				}
				v := dirtyCounts[riserIdx[j]]
				for gi := 0; gi < n; gi++ {
					if !dirtySet[gi] {
						v[gi] = hist[gi]
					}
				}
			}
		}
		var level []itemset.Set
		for i, c := range cands {
			if old := h.countsOf(c); old != nil {
				v := rebase(old)
				if dc := dirtyCounts[i]; dc != nil {
					for gi, dirt := range dirtySet {
						if dirt {
							v[gi] = dc[gi]
						}
					}
				}
				if nh.frequentSomewhere(v) {
					level = append(level, c)
					nh.counts[c.Key()] = v
				}
				continue
			}
			// Untracked: by the splice invariant it cannot be frequent in
			// a clean granule, so dirty-region frequency decides — and a
			// riser's recovered clean history never changes the verdict.
			if nh.frequentInGranules(dirtyCounts[i], dirtyActive) {
				level = append(level, c)
				nh.counts[c.Key()] = dirtyCounts[i]
			}
		}
		nh.ByK = append(nh.ByK, level)
		prev = level
	}
	if tr.Enabled() {
		tr.Counter(obs.MetricItemsetsFrequent, int64(nh.TotalItemsets()))
	}
	return nh, nil
}

// smallSourceRows is the row budget under which countGranules counts
// by subset enumeration (MapCounter) instead of building a hash tree:
// for a typical append batch the tree construction over thousands of
// candidates costs far more than scanning the handful of dirty rows.
const smallSourceRows = 4096

// countGranules counts cands per granule over the listed granules (all
// assumed active), one counter built per level and reused per granule.
// Output vectors span the whole new table with unlisted granules zero;
// a candidate with no occurrence at all gets a nil vector rather than
// an allocated all-zero one, so a large candidate level counted over a
// tiny dirty region stays cheap.
func countGranules(ctx context.Context, tbl *tdb.TxTable, nh *HoldTable, cands []itemset.Set, k int, granules []timegran.Granule) ([][]int32, error) {
	out := make([][]int32, len(cands))
	if len(granules) == 0 {
		return out, nil
	}
	rows := 0
	for _, g := range granules {
		rows += tbl.CountRange(nh.Cfg.Granularity, timegran.Interval{Lo: g, Hi: g})
	}
	var lc interface{ Count(apriori.Source) []int }
	if rows <= smallSourceRows && k <= 4 {
		lc = apriori.NewMapCounter(cands, k)
	} else {
		tree, err := apriori.NewLevelCounter(cands, k)
		if err != nil {
			return nil, err
		}
		lc = tree
	}
	for _, g := range granules {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gi := int(g - nh.Span.Lo)
		counts := lc.Count(tbl.GranuleSource(nh.Cfg.Granularity, g))
		for i, c := range counts {
			if c != 0 {
				if out[i] == nil {
					out[i] = make([]int32, nh.NGranules())
				}
				out[i][gi] = int32(c)
			}
		}
	}
	return out, nil
}
