package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// backendTestTable draws a small temporal dataset with planted rules so
// all hold-table levels are populated.
func backendTestTable(t *testing.T, seed int64) *tdb.TxTable {
	t.Helper()
	weekend, err := timegran.NewCalendar(timegran.FieldWeekday, timegran.FieldRange{Lo: 6, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := gen.GenerateTemporal(gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 120, NPatterns: 30, AvgTxLen: 8},
		Start:        time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC),
		Granularity:  timegran.Day,
		NGranules:    56,
		TxPerGranule: 25,
		Rules: []gen.PlantedRule{
			{Name: "weekend", Items: itemset.New(500, 501), Pattern: weekend, PInside: 0.5, POutside: 0.01},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// sameHoldTable asserts two builds agree exactly: same thresholds, same
// granule-frequent itemsets level by level, same per-granule counts.
func sameHoldTable(t *testing.T, label string, want, got *HoldTable) {
	t.Helper()
	if got.NGranules() != want.NGranules() || got.NActive != want.NActive {
		t.Fatalf("%s: granules %d/%d, want %d/%d", label, got.NGranules(), got.NActive, want.NGranules(), want.NActive)
	}
	for gi := range want.MinCounts {
		if got.MinCounts[gi] != want.MinCounts[gi] || got.Active[gi] != want.Active[gi] {
			t.Fatalf("%s: granule %d threshold %d/%v, want %d/%v",
				label, gi, got.MinCounts[gi], got.Active[gi], want.MinCounts[gi], want.Active[gi])
		}
	}
	if len(got.ByK) != len(want.ByK) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.ByK)-1, len(want.ByK)-1)
	}
	for k := 1; k < len(want.ByK); k++ {
		if len(got.ByK[k]) != len(want.ByK[k]) {
			t.Fatalf("%s: level %d has %d itemsets, want %d", label, k, len(got.ByK[k]), len(want.ByK[k]))
		}
		for i, w := range want.ByK[k] {
			g := got.ByK[k][i]
			if !g.Equal(w) {
				t.Fatalf("%s: level %d item %d = %v, want %v", label, k, i, g, w)
			}
			wc, gc := want.Counts(w), got.Counts(g)
			for gi := range wc {
				if wc[gi] != gc[gi] {
					t.Fatalf("%s: %v counts differ at granule %d: %d, want %d", label, w, gi, gc[gi], wc[gi])
				}
			}
		}
	}
}

// TestHoldTableBackendEquivalence is the per-granule half of the
// cross-backend property test: naive, hash-tree and bitmap builds of
// the HoldTable must agree bit for bit across a support grid, with the
// parallel worker pool of each backend exercised as well.
func TestHoldTableBackendEquivalence(t *testing.T) {
	tbl := backendTestTable(t, 42)
	for _, minsup := range []float64{0.1, 0.05} {
		base := Config{
			Granularity:   timegran.Day,
			MinSupport:    minsup,
			MinConfidence: 0.5,
			MinFreq:       0.8,
			MaxK:          3,
		}
		ref := base
		ref.Backend = apriori.BackendNaive
		want, err := BuildHoldTable(tbl, ref)
		if err != nil {
			t.Fatal(err)
		}
		type variant struct {
			backend apriori.Backend
			workers int
		}
		variants := []variant{
			{apriori.BackendAuto, 0},
			{apriori.BackendNaive, 4},
			{apriori.BackendHashTree, 1},
			{apriori.BackendHashTree, 4},
			{apriori.BackendBitmap, 1},
			{apriori.BackendBitmap, 4},
			{apriori.BackendRoaring, 1},
			{apriori.BackendRoaring, 4},
		}
		for _, v := range variants {
			cfg := base
			cfg.Backend = v.backend
			cfg.Workers = v.workers
			got, err := BuildHoldTable(tbl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("minsup=%g backend=%v workers=%d", minsup, v.backend, v.workers)
			sameHoldTable(t, label, want, got)
		}
	}
}
