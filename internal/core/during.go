package core

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// cancelStride is how many rule candidates the task drivers enumerate
// between context checks: coarse enough to stay off the hot path,
// fine enough to stop a large enumeration promptly.
const cancelStride = 256

// ruleCandidateLoop runs fn for every rule candidate of h, sampling
// ctx every cancelStride candidates, and returns ctx.Err() when the
// enumeration stopped on cancellation. It is the shared cancellation
// scaffold of the task drivers.
func ruleCandidateLoop(ctx context.Context, h *HoldTable, fn func(rc RuleCandidate)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	seen := 0
	cancelled := false
	h.EachRuleCandidate(func(rc RuleCandidate) bool {
		if seen++; done != nil && seen%cancelStride == 0 {
			select {
			case <-done:
				cancelled = true
				return false
			default:
			}
		}
		fn(rc)
		return true
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// MineDuring runs Task III: given a temporal feature expressed as a
// calendar-algebra pattern, find the association rules that hold during
// it — i.e. hold (per-granule support and confidence) in at least
// MinFreq of the feature's active granules. The returned rules carry
// aggregate support/confidence over the feature's sub-database.
//
// This restricted task only needs to count inside the feature's
// granules, so it builds its HoldTable from the feature's sub-span
// rather than the whole table.
func MineDuring(tbl *tdb.TxTable, cfg Config, feature timegran.Pattern) ([]TemporalRule, error) {
	return MineDuringContext(context.Background(), tbl, cfg, feature)
}

// MineDuringContext is MineDuring under a context: both the hold-table
// build and the rule enumeration observe cancellation.
func MineDuringContext(ctx context.Context, tbl *tdb.TxTable, cfg Config, feature timegran.Pattern) ([]TemporalRule, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	if feature == nil {
		return nil, fmt.Errorf("core: MineDuring needs a temporal feature")
	}
	h, err := BuildHoldTableContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	return MineDuringFromTableContext(ctx, h, feature)
}

// MineDuringFromTable is MineDuring over a prebuilt HoldTable.
func MineDuringFromTable(h *HoldTable, feature timegran.Pattern) ([]TemporalRule, error) {
	return MineDuringFromTableContext(context.Background(), h, feature)
}

// MineDuringFromTableContext is MineDuringFromTable under a context;
// cancellation is sampled every few hundred rule candidates.
func MineDuringFromTableContext(ctx context.Context, h *HoldTable, feature timegran.Pattern) ([]TemporalRule, error) {
	if feature == nil {
		return nil, fmt.Errorf("core: MineDuring needs a temporal feature")
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask(obs.TaskSpan(obs.TaskDuring))
		defer tr.EndTask()
	}
	// Materialise the feature over the span once.
	inFeature := make([]bool, h.NGranules())
	nFeature := 0
	for gi := range inFeature {
		if h.Active[gi] && feature.Matches(h.Cfg.Granularity, h.Span.Lo+int64(gi)) {
			inFeature[gi] = true
			nFeature++
		}
	}
	if nFeature == 0 {
		return nil, fmt.Errorf("core: temporal feature %v covers no active granule of the data", feature)
	}
	minHold := ceilCount(h.Cfg.MinFreq, nFeature)

	var out []TemporalRule
	err := ruleCandidateLoop(ctx, h, func(rc RuleCandidate) {
		hold, ok := h.Holds(rc)
		if !ok {
			return
		}
		nHold := 0
		for gi, in := range inFeature {
			if in && hold[gi] {
				nHold++
			}
		}
		if nHold < minHold {
			return
		}
		rule, ok := h.AggStats(rc, func(gi int) bool { return inFeature[gi] })
		if !ok {
			return
		}
		out = append(out, TemporalRule{
			Rule:            rule,
			Feature:         feature,
			Granularity:     h.Cfg.Granularity,
			Freq:            float64(nHold) / float64(nFeature),
			HoldGranules:    nHold,
			FeatureGranules: nFeature,
		})
	})
	if err != nil {
		return nil, err
	}
	SortTemporalRules(out)
	h.Cfg.tracer().Counter(obs.MetricRulesEmitted, int64(len(out)))
	return out, nil
}

// MineDuringExpr is MineDuring with the feature given in the textual
// calendar-algebra syntax, e.g. "month in (jun..aug)".
func MineDuringExpr(tbl *tdb.TxTable, cfg Config, expr string) ([]TemporalRule, error) {
	p, err := timegran.ParsePattern(expr)
	if err != nil {
		return nil, err
	}
	return MineDuring(tbl, cfg, p)
}

// MineTraditional is the time-agnostic baseline: plain Apriori over the
// whole table, ignoring timestamps. Experiment E1 compares its output
// against the temporal miners to count the rules a traditional approach
// misses.
func MineTraditional(tbl *tdb.TxTable, minSupport, minConfidence float64, maxK int) ([]apriori.Rule, error) {
	return MineTraditionalWith(tbl, minSupport, minConfidence, maxK, apriori.BackendAuto, 0, nil)
}

// MineTraditionalWith is MineTraditional with an explicit counting
// backend, worker count and tracer; the CLI front ends thread their
// -backend and -workers flags (and any telemetry sink) through here.
func MineTraditionalWith(tbl *tdb.TxTable, minSupport, minConfidence float64, maxK int, backend apriori.Backend, workers int, tracer obs.Tracer) ([]apriori.Rule, error) {
	return MineTraditionalContext(context.Background(), tbl, minSupport, minConfidence, maxK, backend, workers, tracer)
}

// MineTraditionalContext is MineTraditionalWith under a context: the
// level-wise passes observe cancellation between passes.
func MineTraditionalContext(ctx context.Context, tbl *tdb.TxTable, minSupport, minConfidence float64, maxK int, backend apriori.Backend, workers int, tracer obs.Tracer) ([]apriori.Rule, error) {
	_, rules, err := apriori.MineRulesContext(
		ctx,
		tbl.All(),
		apriori.Config{MinSupport: minSupport, MaxK: maxK, Backend: backend, Workers: workers, Tracer: tracer},
		apriori.RuleConfig{MinConfidence: minConfidence},
	)
	if err == nil {
		obs.OrNop(tracer).Counter(obs.MetricRulesEmitted, int64(len(rules)))
	}
	return rules, err
}
