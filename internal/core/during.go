package core

import (
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// MineDuring runs Task III: given a temporal feature expressed as a
// calendar-algebra pattern, find the association rules that hold during
// it — i.e. hold (per-granule support and confidence) in at least
// MinFreq of the feature's active granules. The returned rules carry
// aggregate support/confidence over the feature's sub-database.
//
// This restricted task only needs to count inside the feature's
// granules, so it builds its HoldTable from the feature's sub-span
// rather than the whole table.
func MineDuring(tbl *tdb.TxTable, cfg Config, feature timegran.Pattern) ([]TemporalRule, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	if feature == nil {
		return nil, fmt.Errorf("core: MineDuring needs a temporal feature")
	}
	h, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		return nil, err
	}
	return MineDuringFromTable(h, feature)
}

// MineDuringFromTable is MineDuring over a prebuilt HoldTable.
func MineDuringFromTable(h *HoldTable, feature timegran.Pattern) ([]TemporalRule, error) {
	if feature == nil {
		return nil, fmt.Errorf("core: MineDuring needs a temporal feature")
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask("task:during")
		defer tr.EndTask()
	}
	// Materialise the feature over the span once.
	inFeature := make([]bool, h.NGranules())
	nFeature := 0
	for gi := range inFeature {
		if h.Active[gi] && feature.Matches(h.Cfg.Granularity, h.Span.Lo+int64(gi)) {
			inFeature[gi] = true
			nFeature++
		}
	}
	if nFeature == 0 {
		return nil, fmt.Errorf("core: temporal feature %v covers no active granule of the data", feature)
	}
	minHold := ceilCount(h.Cfg.MinFreq, nFeature)

	var out []TemporalRule
	h.EachRuleCandidate(func(rc RuleCandidate) bool {
		hold, ok := h.Holds(rc)
		if !ok {
			return true
		}
		nHold := 0
		for gi, in := range inFeature {
			if in && hold[gi] {
				nHold++
			}
		}
		if nHold < minHold {
			return true
		}
		rule, ok := h.AggStats(rc, func(gi int) bool { return inFeature[gi] })
		if !ok {
			return true
		}
		out = append(out, TemporalRule{
			Rule:            rule,
			Feature:         feature,
			Granularity:     h.Cfg.Granularity,
			Freq:            float64(nHold) / float64(nFeature),
			HoldGranules:    nHold,
			FeatureGranules: nFeature,
		})
		return true
	})
	SortTemporalRules(out)
	h.Cfg.tracer().Counter(obs.MetricRulesEmitted, int64(len(out)))
	return out, nil
}

// MineDuringExpr is MineDuring with the feature given in the textual
// calendar-algebra syntax, e.g. "month in (jun..aug)".
func MineDuringExpr(tbl *tdb.TxTable, cfg Config, expr string) ([]TemporalRule, error) {
	p, err := timegran.ParsePattern(expr)
	if err != nil {
		return nil, err
	}
	return MineDuring(tbl, cfg, p)
}

// MineTraditional is the time-agnostic baseline: plain Apriori over the
// whole table, ignoring timestamps. Experiment E1 compares its output
// against the temporal miners to count the rules a traditional approach
// misses.
func MineTraditional(tbl *tdb.TxTable, minSupport, minConfidence float64, maxK int) ([]apriori.Rule, error) {
	return MineTraditionalWith(tbl, minSupport, minConfidence, maxK, apriori.BackendAuto, 0, nil)
}

// MineTraditionalWith is MineTraditional with an explicit counting
// backend, worker count and tracer; the CLI front ends thread their
// -backend and -workers flags (and any telemetry sink) through here.
func MineTraditionalWith(tbl *tdb.TxTable, minSupport, minConfidence float64, maxK int, backend apriori.Backend, workers int, tracer obs.Tracer) ([]apriori.Rule, error) {
	_, rules, err := apriori.MineRules(
		tbl.All(),
		apriori.Config{MinSupport: minSupport, MaxK: maxK, Backend: backend, Workers: workers, Tracer: tracer},
		apriori.RuleConfig{MinConfidence: minConfidence},
	)
	if err == nil {
		obs.OrNop(tracer).Counter(obs.MetricRulesEmitted, int64(len(rules)))
	}
	return rules, err
}
