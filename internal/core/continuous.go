package core

import (
	"context"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Continuous-mining wiring: granule-close tracking over the append
// stream's clock, and background pre-maintenance of cached hold tables
// so a standing statement's re-run lands on a warm cache.
//
// The arithmetic lives in timegran (ClosedThrough: a granule is closed
// once the stream clock passes its end instant); this file holds the
// stateful side — remembering what was already closed so each close
// fires exactly once — and the cache side: refreshing stale entries
// from the change log's dirty-granule sets via the same delta path that
// serves statements, just ahead of any statement.

// CloseTracker turns a monotonically advancing stream clock into
// discrete granule-close events. The zero value is not ready; use
// NewCloseTracker. Safe for concurrent use.
type CloseTracker struct {
	g timegran.Granularity

	mu      sync.Mutex
	closed  timegran.Granule // last granule reported closed
	started bool
}

// NewCloseTracker tracks closes at granularity g.
func NewCloseTracker(g timegran.Granularity) *CloseTracker {
	return &CloseTracker{g: g}
}

// Granularity returns the tracked granularity.
func (t *CloseTracker) Granularity() timegran.Granularity { return t.g }

// Advance feeds the tracker a new stream-clock reading (the newest
// transaction timestamp) and returns the interval of granules that
// closed since the previous call, with ok=false when none did. The
// first call establishes the baseline — everything already closed at
// that point is history, not an event — and returns ok=false. A clock
// that moves backwards (out-of-order appends) never un-closes a
// granule.
func (t *CloseTracker) Advance(clock time.Time) (newly timegran.Interval, ok bool) {
	ct := timegran.ClosedThrough(clock, t.g)
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.started = true
		t.closed = ct
		return timegran.Interval{}, false
	}
	if ct <= t.closed {
		return timegran.Interval{}, false
	}
	newly = timegran.Interval{Lo: t.closed + 1, Hi: ct}
	t.closed = ct
	return newly, true
}

// ClosedThrough returns the last granule the tracker has seen close,
// with ok=false before the first Advance.
func (t *CloseTracker) ClosedThrough() (timegran.Granule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed, t.started
}

// Premaintain refreshes every resident cache entry of tbl that has gone
// stale, using the normal serving path (delta maintenance from the
// change log's dirty granules when the log covers the window, cold
// rebuild otherwise), and returns how many entries were refreshed. It
// is the background half of continuous mining: run after a granule
// closes, it moves the recount off the critical path so the standing
// statement's re-run — and any interactive statement that follows —
// finds a warm entry. tr (nil ok) receives the usual cache counters.
// Safe on a nil cache (no entries, nothing to do).
func (c *HoldCache) Premaintain(ctx context.Context, tbl *tdb.TxTable, tr obs.Tracer) (refreshed int, err error) {
	if c == nil {
		return 0, nil
	}
	epoch := tbl.Epoch()
	c.mu.Lock()
	var cfgs []Config
	for e := c.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		if ent.key.table != tbl.Name() || ent.epoch == epoch {
			continue
		}
		// Rebuild the entry's own coverage: the stored config carries the
		// build's granularity/MinGranuleTx/backend, but the thresholds and
		// tracer belong to whichever statement last touched it.
		cfg := ent.h.Cfg
		cfg.MinSupport = ent.buildSupport
		cfg.MaxK = ent.maxK
		cfg.Tracer = tr
		cfgs = append(cfgs, cfg)
	}
	c.mu.Unlock()
	for _, cfg := range cfgs {
		if _, err := c.GetContext(ctx, tbl, cfg); err != nil {
			return refreshed, err
		}
		refreshed++
	}
	return refreshed, nil
}
