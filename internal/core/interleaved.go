package core

import (
	"fmt"
	"sort"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// This file implements the "special search techniques" for periodicity
// discovery as an ablation pair over *itemset* cycles (an itemset's
// hold sequence is its per-granule frequency):
//
//   - MineItemsetCyclesSequential counts every candidate in every
//     granule (the straightforward approach) and then detects cycles.
//   - MineItemsetCyclesInterleaved interleaves cycle detection with
//     counting, applying cycle-pruning (a candidate inherits the
//     intersection of its subsets' cycles), cycle-skipping (a candidate
//     is not counted in a granule that none of its live cycles occupy)
//     and cycle-elimination (a miss kills every cycle through that
//     granule).
//
// Both return identical results for exact cycles; the interleaved
// miner does strictly less counting work, which Experiment E7
// quantifies through the Stats it reports.

// ItemsetCycles pairs an itemset with the exact cycles of its
// per-granule frequency sequence (redundant multiples removed).
type ItemsetCycles struct {
	Set    itemset.Set
	Cycles []timegran.Cycle
}

// CycleMinerStats quantifies the counting work a cycle miner did at
// levels k ≥ 2. Level 1 is excluded: both miners make the same single
// pass that tallies every item per granule, so including it would only
// blur the comparison the ablation is about.
type CycleMinerStats struct {
	// CandidateGranulePairs is the number of (candidate, granule)
	// support counts computed — the unit of work cycle-skipping saves.
	CandidateGranulePairs int64
	// GranulesScanned is the number of granule scans performed (a
	// granule all of whose candidates are skipped is never scanned).
	GranulesScanned int64
	// Candidates is the total number of candidates generated across
	// levels — cycle-pruning reduces it.
	Candidates int64
}

// cycKey packs a cycle for set membership.
type cycKey struct{ l, o int64 }

// MineItemsetCyclesSequential is the baseline: a full HoldTable build
// followed by cycle detection on every granule-frequent itemset.
func MineItemsetCyclesSequential(tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]ItemsetCycles, CycleMinerStats, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, CycleMinerStats{}, err
	}
	ccfg, err = ccfg.normalise()
	if err != nil {
		return nil, CycleMinerStats{}, err
	}
	h, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		return nil, CycleMinerStats{}, err
	}
	stats := CycleMinerStats{}
	// The sequential miner counts every level's candidates in every
	// active granule; reconstruct that work measure for levels k ≥ 2.
	for k := 2; k < len(h.ByK); k++ {
		cands, _, _ := generateFromSets(h.ByK[k-1])
		nCands := int64(len(cands))
		stats.Candidates += nCands
		stats.CandidateGranulePairs += nCands * int64(h.NActive)
		stats.GranulesScanned += int64(h.NActive)
	}

	var out []ItemsetCycles
	for k := 1; k < len(h.ByK); k++ {
		for _, s := range h.ByK[k] {
			counts := h.Counts(s)
			hold := make([]bool, h.NGranules())
			for gi := range hold {
				hold[gi] = h.Active[gi] && int(counts[gi]) >= h.MinCounts[gi]
			}
			cycles := FilterRedundantCycles(detectCycles(hold, h.Active, h.Span.Lo, ccfg.MaxLen, ccfg.MinReps, 1))
			if len(cycles) > 0 {
				out = append(out, ItemsetCycles{Set: s, Cycles: cycles})
			}
		}
	}
	sortItemsetCycles(out)
	return out, stats, nil
}

// liveCand tracks one candidate during the interleaved pass.
type liveCand struct {
	set    itemset.Set
	cycles map[cycKey]struct{}
	// raw keeps every cycle that survived, for output filtering and
	// for the next level's pruning intersection.
}

// MineItemsetCyclesInterleaved is the optimized miner. Level 1 counts
// items directly (nothing to skip: every cycle is still alive); each
// subsequent level seeds candidate cycle sets by intersecting the
// parents' surviving cycles, skips granules no live cycle occupies, and
// eliminates cycles on every miss.
func MineItemsetCyclesInterleaved(tbl *tdb.TxTable, cfg Config, ccfg CycleConfig) ([]ItemsetCycles, CycleMinerStats, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, CycleMinerStats{}, err
	}
	ccfg, err = ccfg.normalise()
	if err != nil {
		return nil, CycleMinerStats{}, err
	}
	span, ok := tbl.Span(cfg.Granularity)
	if !ok {
		return nil, CycleMinerStats{}, fmt.Errorf("core: transaction table %q is empty", tbl.Name())
	}
	n := int(span.Len())
	txCounts := tbl.GranuleCounts(cfg.Granularity, span)
	active := make([]bool, n)
	minCounts := make([]int, n)
	nActive := 0
	for i, c := range txCounts {
		if c >= cfg.MinGranuleTx {
			active[i] = true
			nActive++
			minCounts[i] = ceilCount(cfg.MinSupport, c)
		}
	}
	if nActive == 0 {
		return nil, CycleMinerStats{}, fmt.Errorf("core: no granule has at least %d transactions", cfg.MinGranuleTx)
	}
	stats := CycleMinerStats{}

	// Level 1: count every item per granule in one scan.
	c1 := make(map[itemset.Item][]int32)
	tbl.Each(func(tx tdb.Tx) bool {
		gi := int(timegran.GranuleOf(tx.At, cfg.Granularity) - span.Lo)
		if gi < 0 || gi >= n || !active[gi] {
			return true
		}
		for _, x := range tx.Items {
			v := c1[x]
			if v == nil {
				v = make([]int32, n)
				c1[x] = v
			}
			v[gi]++
		}
		return true
	})
	hold := make([]bool, n)
	var prev []*liveCand
	for x, v := range c1 {
		for gi := range hold {
			hold[gi] = active[gi] && int(v[gi]) >= minCounts[gi]
		}
		cycles := detectCycles(hold, active, span.Lo, ccfg.MaxLen, ccfg.MinReps, 1)
		if len(cycles) == 0 {
			continue
		}
		lc := &liveCand{set: itemset.Set{x}, cycles: make(map[cycKey]struct{}, len(cycles))}
		for _, c := range cycles {
			lc.cycles[cycKey{c.Length, c.Offset}] = struct{}{}
		}
		prev = append(prev, lc)
	}
	sort.Slice(prev, func(i, j int) bool { return prev[i].set.Compare(prev[j].set) < 0 })

	var out []ItemsetCycles
	emit := func(cands []*liveCand) {
		for _, lc := range cands {
			if len(lc.cycles) == 0 {
				continue
			}
			cs := make([]timegran.Cycle, 0, len(lc.cycles))
			for k := range lc.cycles {
				cs = append(cs, timegran.Cycle{Length: k.l, Offset: k.o})
			}
			cs = FilterRedundantCycles(cs)
			out = append(out, ItemsetCycles{Set: lc.set, Cycles: cs})
		}
	}
	emit(prev)

	for k := 2; len(prev) > 1 && (cfg.MaxK == 0 || k <= cfg.MaxK); k++ {
		cands := interleavedCandidates(prev)
		if len(cands) == 0 {
			break
		}
		stats.Candidates += int64(len(cands))

		// Index live candidates by the granules their cycles occupy.
		// byGranule[gi] lists candidates that must be counted at gi.
		byGranule := make([][]int32, n)
		for ci, lc := range cands {
			for gi := 0; gi < n; gi++ {
				if !active[gi] {
					continue
				}
				if candOccupies(lc, span.Lo+int64(gi)) {
					byGranule[gi] = append(byGranule[gi], int32(ci))
				}
			}
		}

		for gi := 0; gi < n; gi++ {
			ids := byGranule[gi]
			if len(ids) == 0 {
				continue // cycle-skipping: nothing to learn here
			}
			// Re-check liveness: earlier granules may have eliminated
			// all cycles through gi for some candidates.
			var sets []itemset.Set
			var liveIDs []int32
			for _, ci := range ids {
				if candOccupies(cands[ci], span.Lo+int64(gi)) {
					sets = append(sets, cands[ci].set)
					liveIDs = append(liveIDs, ci)
				}
			}
			if len(sets) == 0 {
				continue
			}
			stats.GranulesScanned++
			stats.CandidateGranulePairs += int64(len(sets))
			counts, err := apriori.CountSets(tbl.GranuleSource(cfg.Granularity, span.Lo+int64(gi)), sets, k)
			if err != nil {
				return nil, CycleMinerStats{}, err
			}
			for i, ci := range liveIDs {
				if counts[i] < minCounts[gi] {
					eliminateAt(cands[ci], span.Lo+int64(gi)) // cycle-elimination
				}
			}
		}

		var next []*liveCand
		for _, lc := range cands {
			if len(lc.cycles) > 0 {
				next = append(next, lc)
			}
		}
		emit(next)
		prev = next
	}
	sortItemsetCycles(out)
	return out, stats, nil
}

// interleavedCandidates joins the surviving level and seeds each
// candidate's cycles with the intersection of every (k-1)-subset's
// surviving cycles (cycle-pruning). Candidates with an empty
// intersection, or with a subset that has no cycles at all, are
// dropped before any counting.
func interleavedCandidates(prev []*liveCand) []*liveCand {
	bySet := make(map[string]*liveCand, len(prev))
	for _, lc := range prev {
		bySet[lc.set.Key()] = lc
	}
	var out []*liveCand
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			candSet, ok := prev[i].set.JoinPrefix(prev[j].set)
			if !ok {
				break // sorted level: prefix diverged
			}
			// Intersect cycle sets over all (k-1)-subsets.
			inter := intersectCycles(prev[i].cycles, prev[j].cycles)
			if len(inter) == 0 {
				continue
			}
			viable := true
			candSet.EachSubsetK1(func(sub itemset.Set) bool {
				parent, ok := bySet[sub.Key()]
				if !ok {
					viable = false
					return false
				}
				inter = intersectCycles(inter, parent.cycles)
				if len(inter) == 0 {
					viable = false
					return false
				}
				return true
			})
			if !viable {
				continue
			}
			out = append(out, &liveCand{set: candSet, cycles: inter})
		}
	}
	return out
}

func intersectCycles(a, b map[cycKey]struct{}) map[cycKey]struct{} {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(map[cycKey]struct{}, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// candOccupies reports whether any live cycle of lc has an occurrence
// at absolute granule g.
func candOccupies(lc *liveCand, g int64) bool {
	for k := range lc.cycles {
		m := g % k.l
		if m < 0 {
			m += k.l
		}
		if m == k.o {
			return true
		}
	}
	return false
}

// eliminateAt removes every cycle of lc with an occurrence at g.
func eliminateAt(lc *liveCand, g int64) {
	for k := range lc.cycles {
		m := g % k.l
		if m < 0 {
			m += k.l
		}
		if m == k.o {
			delete(lc.cycles, k)
		}
	}
}

func sortItemsetCycles(out []ItemsetCycles) {
	sort.Slice(out, func(i, j int) bool { return out[i].Set.Compare(out[j].Set) < 0 })
}
