package core

import (
	"testing"

	"github.com/tarm-project/tarm/internal/itemset"
)

func TestRuleHistoryFixture(t *testing.T) {
	tbl := buildFixture(t)
	stats, err := RuleHistory(tbl, fixtureConfig(), itemset.New(bbq), itemset.New(charcoal))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 28 {
		t.Fatalf("history length = %d", len(stats))
	}
	for d, s := range stats {
		inSeason := d >= 7 && d <= 13
		if s.Holds != inSeason {
			t.Errorf("day %d holds = %v, want %v", d, s.Holds, inSeason)
		}
		if s.TxCount != 10 || !s.Active {
			t.Errorf("day %d txcount=%d active=%v", d, s.TxCount, s.Active)
		}
		if inSeason {
			if s.Count != 10 || s.Support != 1 || s.Confidence != 1 {
				t.Errorf("day %d stats = %+v", d, s)
			}
		} else if s.Count != 0 {
			t.Errorf("day %d off-season count = %d", d, s.Count)
		}
		if s.Granule != dayGranule(d) {
			t.Errorf("day %d granule = %d, want %d", d, s.Granule, dayGranule(d))
		}
	}
}

func TestRuleHistoryConfidenceBelowThreshold(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	cfg.MinConfidence = 0.9 // the daily rule has confidence 0.8: never holds
	stats, err := RuleHistory(tbl, cfg, itemset.New(bread), itemset.New(milk))
	if err != nil {
		t.Fatal(err)
	}
	for d, s := range stats {
		if s.Holds {
			t.Errorf("day %d holds despite confidence below threshold", d)
		}
		if s.Confidence < 0.79 || s.Confidence > 0.81 {
			t.Errorf("day %d confidence = %v", d, s.Confidence)
		}
	}
}

func TestRuleHistoryErrors(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	if _, err := RuleHistory(tbl, cfg, nil, itemset.New(milk)); err == nil {
		t.Error("empty antecedent accepted")
	}
	if _, err := RuleHistory(tbl, cfg, itemset.New(bread), nil); err == nil {
		t.Error("empty consequent accepted")
	}
	if _, err := RuleHistory(tbl, cfg, itemset.New(bread), itemset.New(bread)); err == nil {
		t.Error("overlapping rule accepted")
	}
	if _, err := RuleHistory(tbl, cfg, itemset.New(97), itemset.New(98)); err == nil {
		t.Error("never-frequent rule accepted")
	}
	// MaxK smaller than the rule is widened transparently.
	cfg.MaxK = 1
	if _, err := RuleHistory(tbl, cfg, itemset.New(bread), itemset.New(milk)); err != nil {
		t.Errorf("MaxK widening failed: %v", err)
	}
}
