package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"reflect"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// TestWeekGranularityMining mines the same fixture at Week granularity:
// the seasonal week (days 7..13 = exactly the second Monday-aligned
// week) becomes a single-granule feature.
func TestWeekGranularityMining(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	cfg.Granularity = timegran.Week
	h, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NGranules() != 4 {
		t.Fatalf("weeks = %d, want 4", h.NGranules())
	}
	for gi, n := range h.TxCounts {
		if n != 70 {
			t.Errorf("week %d has %d transactions, want 70", gi, n)
		}
	}
	hold, ok := h.Holds(RuleCandidate{
		Ante: itemset.New(bbq), Cons: itemset.New(charcoal),
		Full: itemset.New(bbq, charcoal),
	})
	if !ok {
		t.Fatal("seasonal rule not counted at week granularity")
	}
	// Week 1 (days 7..13) is fully seasonal: 70/70 transactions.
	want := []bool{false, true, false, false}
	if !reflect.DeepEqual(hold, want) {
		t.Errorf("weekly hold = %v, want %v", hold, want)
	}

	// The weekend rule holds 18/70 ≈ 26% per week: below 50% support,
	// invisible at week granularity — granularity choice matters.
	if _, ok := h.Holds(RuleCandidate{
		Ante: itemset.New(choc), Cons: itemset.New(wine),
		Full: itemset.New(choc, wine),
	}); ok {
		hold, _ := h.Holds(RuleCandidate{
			Ante: itemset.New(choc), Cons: itemset.New(wine),
			Full: itemset.New(choc, wine),
		})
		for gi, hd := range hold {
			if hd {
				t.Errorf("weekend rule holds in week %d at week granularity", gi)
			}
		}
	}
}

// TestHourGranularityMining plants an evening pattern and mines hours.
func TestHourGranularityMining(t *testing.T) {
	tbl, _ := tdb.NewTxTable("hours")
	start := time.Date(2024, 3, 4, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 7; day++ {
		for hour := 0; hour < 24; hour++ {
			at := start.AddDate(0, 0, day).Add(time.Duration(hour) * time.Hour)
			evening := hour >= 18 && hour <= 20
			for i := 0; i < 6; i++ {
				items := []itemset.Item{1}
				if evening && i < 5 {
					items = append(items, 2, 3)
				}
				tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(items...))
			}
		}
	}
	cfg := Config{Granularity: timegran.Hour, MinSupport: 0.5, MinConfidence: 0.7, MinFreq: 1}
	cals, err := MineCalendarPeriodicitiesFromTable(mustBuild(t, tbl, cfg), CycleConfig{MinReps: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cals {
		if r.Field == timegran.FieldHour &&
			r.Rule.Antecedent.Equal(itemset.New(2)) && r.Rule.Consequent.Equal(itemset.New(3)) {
			found = true
			cal := r.Feature.(timegran.Calendar)
			if len(cal.Ranges) != 1 || cal.Ranges[0] != (timegran.FieldRange{Lo: 18, Hi: 20}) {
				t.Errorf("evening ranges = %v", cal.Ranges)
			}
		}
	}
	if !found {
		t.Error("evening hour class not discovered at hour granularity")
	}
}

func mustBuild(t *testing.T, tbl *tdb.TxTable, cfg Config) *HoldTable {
	t.Helper()
	h, err := BuildHoldTable(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSharedHoldTableAcrossTasks runs all tasks from one counting pass
// and cross-checks them against the one-call APIs.
func TestSharedHoldTableAcrossTasks(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	h := mustBuild(t, tbl, cfg)

	p1, err := MineValidPeriodsFromTable(h, PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := MineValidPeriods(tbl, cfg, PeriodConfig{MinLen: 2})
	if len(p1) != len(p2) {
		t.Errorf("shared vs one-call periods: %d vs %d", len(p1), len(p2))
	}

	c1, err := MineCyclesFromTable(h, CycleConfig{MaxLen: 10, MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := MineCycles(tbl, cfg, CycleConfig{MaxLen: 10, MinReps: 2})
	if len(c1) != len(c2) {
		t.Errorf("shared vs one-call cycles: %d vs %d", len(c1), len(c2))
	}

	weekend, _ := timegran.ParsePattern("weekday in (sat, sun)")
	d1, err := MineDuringFromTable(h, weekend)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := MineDuring(tbl, cfg, weekend)
	if len(d1) != len(d2) {
		t.Errorf("shared vs one-call during: %d vs %d", len(d1), len(d2))
	}

	cal1, err := MineCalendarPeriodicitiesFromTable(h, CycleConfig{MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	cal2, _ := MineCalendarPeriodicities(tbl, cfg, CycleConfig{MinReps: 2})
	if len(cal1) != len(cal2) {
		t.Errorf("shared vs one-call calendars: %d vs %d", len(cal1), len(cal2))
	}
}

// TestQuickAggStatsMatchesBruteForce verifies the aggregate
// support/confidence computation against direct counting over the
// selected granules.
func TestQuickAggStatsMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 20,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randomTemporalTable(r)
		mcfg := Config{Granularity: timegran.Day, MinSupport: 0.3, MinConfidence: 0.5, MinFreq: 1}
		h, err := BuildHoldTable(tbl, mcfg)
		if err != nil {
			return false
		}
		// Pick an arbitrary keep mask: even granule offsets.
		keep := func(gi int) bool { return gi%2 == 0 }
		okAll := true
		h.EachRuleCandidate(func(rc RuleCandidate) bool {
			rule, ok := h.AggStats(rc, keep)
			if !ok {
				return true
			}
			// Brute force over the raw transactions.
			var nTx, nFull, nAnte int
			tbl.Each(func(tx tdb.Tx) bool {
				g := timegran.GranuleOf(tx.At, timegran.Day)
				gi := int(g - h.Span.Lo)
				if gi < 0 || gi >= h.NGranules() || !h.Active[gi] || !keep(gi) {
					return true
				}
				nTx++
				if tx.Items.ContainsAll(rc.Full) {
					nFull++
				}
				if tx.Items.ContainsAll(rc.Ante) {
					nAnte++
				}
				return true
			})
			if nTx == 0 || nAnte == 0 {
				return true
			}
			if rule.Count != nFull {
				okAll = false
				return false
			}
			if diff := rule.Support - float64(nFull)/float64(nTx); diff > 1e-9 || diff < -1e-9 {
				okAll = false
				return false
			}
			if diff := rule.Confidence - float64(nFull)/float64(nAnte); diff > 1e-9 || diff < -1e-9 {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

// TestMinGranuleTx verifies sparse granules are neutral everywhere.
func TestMinGranuleTx(t *testing.T) {
	tbl, _ := tdb.NewTxTable("sparse")
	at := time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC)
	for d := 0; d < 10; d++ {
		n := 6
		if d == 4 {
			n = 2 // sparse day
		}
		for i := 0; i < n; i++ {
			tbl.Append(at.AddDate(0, 0, d), itemset.New(1, 2))
		}
	}
	cfg := Config{Granularity: timegran.Day, MinSupport: 0.5, MinConfidence: 0.5, MinFreq: 1, MinGranuleTx: 5}
	h := mustBuild(t, tbl, cfg)
	if h.NActive != 9 {
		t.Fatalf("active = %d, want 9", h.NActive)
	}
	if h.Active[4] {
		t.Error("sparse day marked active")
	}
	// The rule still gets one unbroken 10-day period (day 4 neutral).
	rules, err := MineValidPeriodsFromTable(h, PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, r := range rules {
		if r.Rule.Antecedent.Equal(itemset.New(1)) {
			count++
			if r.Interval.Len() != 10 {
				t.Errorf("period spans %d days, want 10 (sparse day bridged)", r.Interval.Len())
			}
		}
	}
	if count != 1 {
		t.Errorf("periods for {1}=>{2}: %d", count)
	}
}
