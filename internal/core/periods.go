package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// PeriodConfig tunes Task I, the discovery of valid time periods.
type PeriodConfig struct {
	// MinLen is the minimum number of *active* granules a valid period
	// must span to be reported; 0 defaults to 2 (a single good day is
	// not a period).
	MinLen int
}

func (p PeriodConfig) normalise() (PeriodConfig, error) {
	if p.MinLen < 0 {
		return p, fmt.Errorf("core: MinLen %d negative", p.MinLen)
	}
	if p.MinLen == 0 {
		p.MinLen = 2
	}
	return p, nil
}

// PeriodRule is a Task I result: a rule together with one maximal valid
// period.
type PeriodRule struct {
	TemporalRule
	// Interval is the valid period as a granule interval.
	Interval timegran.Interval
}

// MineValidPeriods runs Task I over tbl: for every rule above the
// per-granule thresholds somewhere, report the maximal intervals during
// which it holds in at least MinFreq of the active granules, with both
// endpoints holding.
func MineValidPeriods(tbl *tdb.TxTable, cfg Config, pcfg PeriodConfig) ([]PeriodRule, error) {
	return MineValidPeriodsContext(context.Background(), tbl, cfg, pcfg)
}

// MineValidPeriodsContext is MineValidPeriods under a context.
func MineValidPeriodsContext(ctx context.Context, tbl *tdb.TxTable, cfg Config, pcfg PeriodConfig) ([]PeriodRule, error) {
	h, err := BuildHoldTableContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	return MineValidPeriodsFromTableContext(ctx, h, pcfg)
}

// MineValidPeriodsFromTable is MineValidPeriods over a prebuilt
// HoldTable, letting callers share the counting pass across tasks.
func MineValidPeriodsFromTable(h *HoldTable, pcfg PeriodConfig) ([]PeriodRule, error) {
	return MineValidPeriodsFromTableContext(context.Background(), h, pcfg)
}

// MineValidPeriodsFromTableContext is MineValidPeriodsFromTable under
// a context; cancellation is sampled every few hundred candidates.
func MineValidPeriodsFromTableContext(ctx context.Context, h *HoldTable, pcfg PeriodConfig) ([]PeriodRule, error) {
	pcfg, err := pcfg.normalise()
	if err != nil {
		return nil, err
	}
	if tr := h.Cfg.tracer(); tr.Enabled() {
		tr.StartTask(obs.TaskSpan(obs.TaskPeriods))
		defer tr.EndTask()
	}
	var out []PeriodRule
	err = ruleCandidateLoop(ctx, h, func(rc RuleCandidate) {
		hold, ok := h.Holds(rc)
		if !ok {
			return
		}
		for _, iv := range maximalDenseIntervals(hold, h.Active, h.Cfg.MinFreq, pcfg.MinLen) {
			abs := timegran.Interval{Lo: h.Span.Lo + int64(iv.Lo), Hi: h.Span.Lo + int64(iv.Hi)}
			keep := func(gi int) bool { return gi >= int(iv.Lo) && gi <= int(iv.Hi) }
			rule, ok := h.AggStats(rc, keep)
			if !ok {
				continue
			}
			nAct, nHold := 0, 0
			for gi := int(iv.Lo); gi <= int(iv.Hi); gi++ {
				if h.Active[gi] {
					nAct++
					if hold[gi] {
						nHold++
					}
				}
			}
			window, werr := timegran.NewWindow(
				timegran.Start(abs.Lo, h.Cfg.Granularity),
				timegran.Start(abs.Hi+1, h.Cfg.Granularity),
			)
			if werr != nil {
				continue // cannot happen: Lo ≤ Hi
			}
			out = append(out, PeriodRule{
				TemporalRule: TemporalRule{
					Rule:            rule,
					Feature:         window,
					Granularity:     h.Cfg.Granularity,
					Freq:            float64(nHold) / float64(nAct),
					HoldGranules:    nHold,
					FeatureGranules: nAct,
				},
				Interval: abs,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	sortPeriodRules(out)
	h.Cfg.tracer().Counter(obs.MetricRulesEmitted, int64(len(out)))
	return out, nil
}

func sortPeriodRules(rules []PeriodRule) {
	sort.Slice(rules, func(i, j int) bool { return periodLess(rules[i], rules[j]) })
}

func periodLess(a, b PeriodRule) bool {
	if c := a.Rule.Compare(b.Rule); c != 0 {
		return c < 0
	}
	if a.Interval.Lo != b.Interval.Lo {
		return a.Interval.Lo < b.Interval.Lo
	}
	return a.Interval.Hi < b.Interval.Hi
}

// ivOff is an interval of granule *offsets* within the span.
type ivOff struct{ Lo, Hi int }

// maximalDenseIntervals returns the intervals [a,b] (offsets) such that
//   - hold[a] and hold[b] (so endpoints are active),
//   - among the active granules of [a,b], the fraction holding is at
//     least minFreq,
//   - [a,b] contains at least minLen active granules, and
//   - no other qualifying interval strictly contains [a,b].
//
// Inactive granules are neutral: they neither extend nor break a
// period. The search is O(n²) per rule over the granule span, which is
// small (hundreds to low thousands of granules).
func maximalDenseIntervals(hold, active []bool, minFreq float64, minLen int) []ivOff {
	n := len(hold)
	var cands []ivOff
	for a := 0; a < n; a++ {
		if !hold[a] {
			continue
		}
		nAct, nHold := 0, 0
		best := -1
		for b := a; b < n; b++ {
			if active[b] {
				nAct++
				if hold[b] {
					nHold++
				}
			}
			if hold[b] && nAct >= minLen && float64(nHold) >= minFreq*float64(nAct)-1e-12 {
				best = b
			}
		}
		if best >= 0 {
			cands = append(cands, ivOff{Lo: a, Hi: best})
		}
	}
	// Drop intervals contained in another candidate. Candidates are in
	// ascending Lo order with one candidate per start, so containment
	// means an earlier candidate reaches at least as far.
	var out []ivOff
	maxHi := -1
	for _, c := range cands {
		if c.Hi > maxHi {
			out = append(out, c)
			maxHi = c.Hi
		}
	}
	return out
}
