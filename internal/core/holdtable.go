package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// HoldTable is the shared counting substrate of the temporal miners:
// for every *granule-frequent* itemset (frequent in at least one active
// granule) it stores the support count in every granule of the span.
// From those vectors every task derives its per-granule "the rule
// holds here" sequences without rescanning the data.
type HoldTable struct {
	Cfg  Config
	Span timegran.Interval

	// Per-granule statistics, indexed by granule - Span.Lo.
	TxCounts  []int  // transactions in the granule
	MinCounts []int  // support threshold ceil(MinSupport · TxCounts)
	Active    []bool // TxCounts ≥ MinGranuleTx
	NActive   int

	// ByK[k] lists the granule-frequent k-itemsets in canonical order.
	ByK [][]itemset.Set

	counts map[string][]int32
}

// NGranules returns the number of granules in the span.
func (h *HoldTable) NGranules() int { return int(h.Span.Len()) }

// Counts returns the per-granule count vector of s, or nil when s is
// not granule-frequent. The slice is shared: callers must not modify.
func (h *HoldTable) Counts(s itemset.Set) []int32 { return h.countsOf(s) }

// countsOf looks up s's count vector without allocating the key
// string: the encoded key lives in a stack buffer and the map access
// compiles to an allocation-free probe. The rule-enumeration loops
// perform several lookups per candidate rule, which made Key() the
// top allocator of the post-counting phase.
func (h *HoldTable) countsOf(s itemset.Set) []int32 {
	var a [64]byte
	return h.counts[string(s.AppendKey(a[:0]))]
}

// FrequentAt reports whether s is frequent in the (active) granule at
// offset gi.
func (h *HoldTable) FrequentAt(s itemset.Set, gi int) bool {
	v := h.countsOf(s)
	return v != nil && h.Active[gi] && int(v[gi]) >= h.MinCounts[gi]
}

// TotalItemsets returns the number of granule-frequent itemsets.
func (h *HoldTable) TotalItemsets() int {
	n := 0
	for _, level := range h.ByK {
		n += len(level)
	}
	return n
}

// ceilCount is ceil(frac · n), at least 1, with the boundary-robust
// rounding shared with the flat miner (see apriori.CeilCount): a
// support expressible as an integral fraction of n must not round up.
func ceilCount(frac float64, n int) int {
	return apriori.CeilCount(frac, n)
}

// BuildHoldTable runs the shared level-wise pass over tbl. Each level
// makes one scan of the span, counting all candidates per granule with
// a single hash tree that is flushed at granule boundaries (the data is
// time-ordered, so each granule is a contiguous run).
func BuildHoldTable(tbl *tdb.TxTable, cfg Config) (*HoldTable, error) {
	return BuildHoldTableContext(context.Background(), tbl, cfg)
}

// BuildHoldTableContext is BuildHoldTable under a context: the build
// observes cancellation at granule-block and pass boundaries — never
// per transaction, so the check stays off the counting hot path — and
// returns ctx.Err() promptly once the context is done. Every counting
// backend (sequential and parallel hash tree, naive, bitmap) is
// covered.
func BuildHoldTableContext(ctx context.Context, tbl *tdb.TxTable, cfg Config) (*HoldTable, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	span, ok := tbl.Span(cfg.Granularity)
	if !ok {
		return nil, fmt.Errorf("core: transaction table %q is empty", tbl.Name())
	}
	n := int(span.Len())
	h := &HoldTable{
		Cfg:       cfg,
		Span:      span,
		TxCounts:  tbl.GranuleCounts(cfg.Granularity, span),
		MinCounts: make([]int, n),
		Active:    make([]bool, n),
		ByK:       [][]itemset.Set{nil},
		counts:    make(map[string][]int32),
	}
	for i, txc := range h.TxCounts {
		if txc >= cfg.MinGranuleTx {
			h.Active[i] = true
			h.NActive++
			h.MinCounts[i] = ceilCount(cfg.MinSupport, txc)
		}
	}
	if h.NActive == 0 {
		return nil, fmt.Errorf("core: no granule has at least %d transactions", cfg.MinGranuleTx)
	}
	nActiveTx := 0
	for gi, txc := range h.TxCounts {
		if h.Active[gi] {
			nActiveTx += txc
		}
	}
	tr := cfg.tracer()
	trace := tr.Enabled()
	if trace {
		tr.StartTask("core.BuildHoldTable")
		defer tr.EndTask()
		tr.Gauge(obs.MetricGranules, float64(n))
		tr.Gauge(obs.MetricGranulesActive, float64(h.NActive))
	}

	// Level 1: plain per-item counters, sharded over granule blocks
	// when workers are configured.
	var t0 time.Time
	if trace {
		tr.StartPass(1)
		t0 = time.Now()
	}
	c1 := h.countLevel1(ctx, tbl, cfg.Workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// stats feeds the counting cost model: one AddItem per frequent
	// item with its total occurrences across active granules.
	stats := apriori.CountStats{N: nActiveTx, Granules: n}
	var l1 []itemset.Set
	for x, v := range c1 {
		if h.frequentSomewhere(v) {
			s := itemset.Set{x}
			l1 = append(l1, s)
			h.counts[s.Key()] = v
			total := 0
			for _, c := range v {
				total += int(c)
			}
			stats.AddItem(total)
		}
	}
	itemset.SortSets(l1)
	h.ByK = append(h.ByK, l1)
	if trace {
		tr.EndPass(obs.PassStats{
			Level: 1, Generated: len(c1), Counted: len(c1), Frequent: len(l1),
			Rows: int64(nActiveTx), Backend: "scan", Duration: time.Since(t0),
		})
	}

	// Resolve the counting backend through the cost model, fed the
	// exact level-1 density histogram; a forced backend keeps the
	// prediction for its own cost so EXPLAIN can compare it to the
	// observed time.
	pred := apriori.Predict(stats)
	backend := cfg.Backend
	if backend == apriori.BackendAuto {
		backend = pred.Choice
	}
	if trace {
		tr.Gauge(obs.MetricCountingPredictedCost, pred.Cost(backend))
	}
	var countingNS int64
	var bm *granuleBitmap
	var rm *granuleRoaring

	prev := l1
	for k := 2; len(prev) > 1 && (cfg.MaxK == 0 || k <= cfg.MaxK); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if trace {
			tr.StartPass(k)
			t0 = time.Now()
		}
		cands, nGen, nPruned := generateFromSets(prev)
		if len(cands) == 0 {
			if trace {
				tr.EndPass(obs.PassStats{
					Level: k, Generated: nGen, Pruned: nPruned,
					Backend: backend.String(), Duration: time.Since(t0),
				})
			}
			break
		}
		var perGranule [][]int32
		tc0 := time.Now()
		switch {
		case backend == apriori.BackendBitmap:
			if bm == nil {
				bm = h.buildGranuleBitmap(ctx, tbl, l1)
			}
			perGranule = bm.count(ctx, h, cands, cfg.Workers)
		case backend == apriori.BackendRoaring:
			if rm == nil {
				rm = h.buildGranuleRoaring(ctx, tbl, l1)
			}
			perGranule = rm.count(ctx, h, cands, cfg.Workers)
		case backend == apriori.BackendNaive:
			perGranule = h.countPerGranuleNaive(ctx, tbl, cands, cfg.Workers)
		case cfg.Workers > 1:
			perGranule, err = h.countPerGranuleParallel(ctx, tbl, cands, k, cfg.Workers)
		default:
			perGranule, err = h.countPerGranule(ctx, tbl, cands, k)
		}
		countingNS += time.Since(tc0).Nanoseconds()
		if err != nil {
			return nil, err
		}
		// A cancelled scan leaves partial counts; discard them rather
		// than admitting an undercounted level.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var level []itemset.Set
		for i, c := range cands {
			if h.frequentSomewhere(perGranule[i]) {
				level = append(level, c)
				h.counts[c.Key()] = perGranule[i]
			}
		}
		h.ByK = append(h.ByK, level)
		prev = level
		if trace {
			tr.EndPass(obs.PassStats{
				Level: k, Generated: nGen, Pruned: nPruned, Counted: len(cands),
				Frequent: len(level), Rows: int64(nActiveTx),
				Backend: backend.String(), Duration: time.Since(t0),
			})
		}
	}
	if trace {
		tr.Counter(obs.MetricItemsetsFrequent, int64(h.TotalItemsets()))
		tr.Gauge(obs.MetricHoldCells, float64(h.TotalItemsets())*float64(h.NGranules()))
		tr.Gauge(obs.MetricCountingObservedNS, float64(countingNS))
	}
	return h, nil
}

// frequentSomewhere reports whether the count vector clears the
// threshold in at least one active granule.
func (h *HoldTable) frequentSomewhere(v []int32) bool {
	for gi, c := range v {
		if h.Active[gi] && int(c) >= h.MinCounts[gi] {
			return true
		}
	}
	return false
}

// frequentInGranules is frequentSomewhere restricted to the listed
// granules (assumed active). Maintain uses it on count vectors that are
// zero outside the dirty region, where scanning the full span per
// candidate would dominate the whole delta pass. Nil vectors are never
// frequent.
func (h *HoldTable) frequentInGranules(v []int32, granules []timegran.Granule) bool {
	if v == nil {
		return false
	}
	for _, g := range granules {
		gi := int(g - h.Span.Lo)
		if int(v[gi]) >= h.MinCounts[gi] {
			return true
		}
	}
	return false
}

// eachActiveTx scans the span once, handing each transaction of each
// active granule to fn with the granule offset. The scan is bounded to
// the span's row range, so a table holding data outside the span (a
// sub-span build) is not walked end to end.
func (h *HoldTable) eachActiveTx(ctx context.Context, tbl *tdb.TxTable, fn func(gi int, tx itemset.Set)) {
	h.eachActiveTxRange(ctx, tbl, 0, len(h.Active), fn)
}

// eachActiveTxRange is eachActiveTx restricted to granule offsets
// [lo, hi): the shard primitive of the parallel build. Each shard's
// rows are located by binary search, so shards cost proportionally to
// their own data.
//
// Cancellation is sampled at granule boundaries only — a granule is
// the natural block unit of every counting loop, and a per-transaction
// check would cost on the hot path. A cancelled scan simply stops; the
// caller is responsible for checking ctx.Err() before using the
// (partial) counts.
func (h *HoldTable) eachActiveTxRange(ctx context.Context, tbl *tdb.TxTable, lo, hi int, fn func(gi int, tx itemset.Set)) {
	if lo >= hi {
		return
	}
	done := ctx.Done()
	last := -1
	iv := timegran.Interval{Lo: h.Span.Lo + int64(lo), Hi: h.Span.Lo + int64(hi) - 1}
	tbl.EachInRange(h.Cfg.Granularity, iv, func(tx tdb.Tx) bool {
		g := timegran.GranuleOf(tx.At, h.Cfg.Granularity)
		gi := int(g - h.Span.Lo)
		if gi != last {
			last = gi
			if done != nil {
				select {
				case <-done:
					return false
				default:
				}
			}
		}
		if gi >= lo && gi < hi && h.Active[gi] {
			fn(gi, tx.Items)
		}
		return true
	})
}

// granuleBlocks splits the granule offsets [0, n) into at most workers
// contiguous, non-empty blocks [lo, hi).
func granuleBlocks(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return [][2]int{{0, n}}
	}
	blocks := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		blocks = append(blocks, [2]int{lo, hi})
	}
	return blocks
}

// countLevel1 runs the level-1 item scan, producing each item's
// per-granule count vector. With workers > 1 the span is sharded into
// contiguous granule blocks counted concurrently; blocks own disjoint
// granule columns, so the merged vectors are identical to a sequential
// scan.
func (h *HoldTable) countLevel1(ctx context.Context, tbl *tdb.TxTable, workers int) map[itemset.Item][]int32 {
	n := h.NGranules()
	blocks := granuleBlocks(n, workers)
	if len(blocks) == 1 {
		c1 := make(map[itemset.Item][]int32)
		h.eachActiveTx(ctx, tbl, func(gi int, tx itemset.Set) {
			for _, x := range tx {
				v := c1[x]
				if v == nil {
					v = make([]int32, n)
					c1[x] = v
				}
				v[gi]++
			}
		})
		return c1
	}
	parts := make([]map[itemset.Item][]int32, len(blocks))
	var wg sync.WaitGroup
	for w, blk := range blocks {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make(map[itemset.Item][]int32)
			h.eachActiveTxRange(ctx, tbl, lo, hi, func(gi int, tx itemset.Set) {
				for _, x := range tx {
					v := local[x]
					if v == nil {
						v = make([]int32, hi-lo)
						local[x] = v
					}
					v[gi-lo]++
				}
			})
			parts[w] = local
		}(w, blk[0], blk[1])
	}
	wg.Wait()
	c1 := make(map[itemset.Item][]int32)
	for w, blk := range blocks {
		lo := blk[0]
		for x, lv := range parts[w] {
			v := c1[x]
			if v == nil {
				v = make([]int32, n)
				c1[x] = v
			}
			copy(v[lo:lo+len(lv)], lv)
		}
	}
	return c1
}

// countPerGranule counts every candidate in every active granule in a
// single scan. The transactions arrive time-ordered, so the hash tree
// is flushed into the per-granule columns whenever the granule changes.
func (h *HoldTable) countPerGranule(ctx context.Context, tbl *tdb.TxTable, cands []itemset.Set, k int) ([][]int32, error) {
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, h.NGranules())
	}
	tree, err := apriori.NewHashTree(cands, k, 0, 0)
	if err != nil {
		return nil, err
	}
	current := -1
	flush := func() {
		if current < 0 {
			return
		}
		for i, c := range tree.Counts() {
			if c != 0 {
				out[i][current] = int32(c)
			}
		}
		tree.Reset()
	}
	h.eachActiveTx(ctx, tbl, func(gi int, tx itemset.Set) {
		if gi != current {
			flush()
			current = gi
		}
		tree.Add(tx)
	})
	flush()
	return out, nil
}

// granuleBitmap is the vertical counting state of a hold-table build:
// one TID-bitmap index over the active-granule transactions (rows
// numbered in time order) plus each granule's row range. A candidate's
// per-granule counts then come from a single bitmap intersection
// followed by one range popcount per granule — the per-granule pass no
// longer rebuilds any per-level structure per granule.
type granuleBitmap struct {
	ix    *apriori.BitmapIndex
	rowLo []int // first row of granule gi (inactive granules are empty)
	rowHi []int // one past the last row of granule gi
}

// buildGranuleBitmap ingests the span once. Transactions arrive in
// time order, so each active granule occupies the contiguous row range
// given by the prefix sums of its transaction counts; only items of
// the granule-frequent 1-itemsets are indexed, since no other item can
// appear in a candidate.
func (h *HoldTable) buildGranuleBitmap(ctx context.Context, tbl *tdb.TxTable, l1 []itemset.Set) *granuleBitmap {
	n := h.NGranules()
	g := &granuleBitmap{rowLo: make([]int, n), rowHi: make([]int, n)}
	rows := 0
	for gi := 0; gi < n; gi++ {
		g.rowLo[gi] = rows
		if h.Active[gi] {
			rows += h.TxCounts[gi]
		}
		g.rowHi[gi] = rows
	}
	keep := make(map[itemset.Item]bool, len(l1))
	for _, s := range l1 {
		keep[s[0]] = true
	}
	src := apriori.FuncSource{
		N: rows,
		Scan: func(fn func(tx itemset.Set)) {
			h.eachActiveTx(ctx, tbl, func(gi int, tx itemset.Set) { fn(tx) })
		},
	}
	g.ix = apriori.NewBitmapIndex(src, keep)
	return g
}

// count produces the per-granule count matrix of one candidate level.
// workers > 1 splits the sorted candidate list into contiguous chunks
// (keeping the prefix-intersection reuse inside each chunk); workers
// write disjoint rows of the output, so any worker count produces the
// same matrix.
func (g *granuleBitmap) count(ctx context.Context, h *HoldTable, cands []itemset.Set, workers int) [][]int32 {
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, h.NGranules())
	}
	// Cancellation is sampled per candidate block, not per candidate:
	// the block is large enough to keep the check off the intersection
	// hot path yet small enough to stop a big level promptly. Blocking
	// also preserves the prefix-intersection reuse within each block.
	const cancelBlock = 512
	countChunk := func(lo, hi int) {
		for b := lo; b < hi; b += cancelBlock {
			if ctx.Err() != nil {
				return
			}
			e := b + cancelBlock
			if e > hi {
				e = hi
			}
			g.ix.EachIntersection(cands[b:e], func(i int, words []uint64) {
				v := out[b+i]
				for gi := range v {
					if c := apriori.PopcountRange(words, g.rowLo[gi], g.rowHi[gi]); c != 0 {
						v[gi] = int32(c)
					}
				}
			})
		}
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		countChunk(0, len(cands))
		return out
	}
	chunks := apriori.PrefixRunChunks(cands, workers)
	if len(chunks) <= 1 {
		countChunk(0, len(cands))
		return out
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			countChunk(lo, hi)
		}(ch[0], ch[1])
	}
	wg.Wait()
	return out
}

// granuleRoaring is granuleBitmap over the compressed container index:
// the same row numbering and per-granule row ranges, but candidates
// intersect through per-container kernels that skip empty containers,
// and per-granule counts come from container range-counts.
type granuleRoaring struct {
	ix    *apriori.RoaringIndex
	rowLo []int
	rowHi []int
}

// buildGranuleRoaring mirrors buildGranuleBitmap over the compressed
// index; see that function for the row-range construction.
func (h *HoldTable) buildGranuleRoaring(ctx context.Context, tbl *tdb.TxTable, l1 []itemset.Set) *granuleRoaring {
	n := h.NGranules()
	g := &granuleRoaring{rowLo: make([]int, n), rowHi: make([]int, n)}
	rows := 0
	for gi := 0; gi < n; gi++ {
		g.rowLo[gi] = rows
		if h.Active[gi] {
			rows += h.TxCounts[gi]
		}
		g.rowHi[gi] = rows
	}
	keep := make(map[itemset.Item]bool, len(l1))
	for _, s := range l1 {
		keep[s[0]] = true
	}
	src := apriori.FuncSource{
		N: rows,
		Scan: func(fn func(tx itemset.Set)) {
			h.eachActiveTx(ctx, tbl, func(gi int, tx itemset.Set) { fn(tx) })
		},
	}
	g.ix = apriori.NewRoaringIndex(src, keep)
	return g
}

// count is granuleBitmap.count over the compressed index: chunks align
// to prefix-run boundaries, cancellation is sampled per candidate
// block, and each intersection is sliced into granule counts by
// RangeCount over its containers.
func (g *granuleRoaring) count(ctx context.Context, h *HoldTable, cands []itemset.Set, workers int) [][]int32 {
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, h.NGranules())
	}
	const cancelBlock = 512
	countChunk := func(lo, hi int) {
		for b := lo; b < hi; b += cancelBlock {
			if ctx.Err() != nil {
				return
			}
			e := b + cancelBlock
			if e > hi {
				e = hi
			}
			g.ix.EachIntersection(cands[b:e], func(i int, acc *apriori.RoaringAcc) {
				v := out[b+i]
				for gi := range v {
					if c := acc.RangeCount(g.rowLo[gi], g.rowHi[gi]); c != 0 {
						v[gi] = int32(c)
					}
				}
			})
		}
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		countChunk(0, len(cands))
		return out
	}
	chunks := apriori.PrefixRunChunks(cands, workers)
	if len(chunks) <= 1 {
		countChunk(0, len(cands))
		return out
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			countChunk(lo, hi)
		}(ch[0], ch[1])
	}
	wg.Wait()
	return out
}

// countPerGranuleNaive is the reference per-granule counter: a direct
// subset test of every candidate against every transaction. It exists
// so the cross-backend property tests have a trivially-correct anchor.
// workers > 1 shards the span into contiguous granule blocks; blocks
// write disjoint columns of the output, so any worker count produces
// the same matrix.
func (h *HoldTable) countPerGranuleNaive(ctx context.Context, tbl *tdb.TxTable, cands []itemset.Set, workers int) [][]int32 {
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, h.NGranules())
	}
	countBlock := func(lo, hi int) {
		h.eachActiveTxRange(ctx, tbl, lo, hi, func(gi int, tx itemset.Set) {
			for i, c := range cands {
				if tx.ContainsAll(c) {
					out[i][gi]++
				}
			}
		})
	}
	blocks := granuleBlocks(h.NGranules(), workers)
	if len(blocks) == 1 {
		countBlock(0, h.NGranules())
		return out
	}
	var wg sync.WaitGroup
	for _, blk := range blocks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			countBlock(lo, hi)
		}(blk[0], blk[1])
	}
	wg.Wait()
	return out
}

// countPerGranuleParallel splits the span into contiguous granule
// blocks and counts each block with its own hash tree in its own
// goroutine. Granules are independent partitions of the data, so the
// result is bit-identical to the sequential pass; workers write
// disjoint columns of the output.
func (h *HoldTable) countPerGranuleParallel(ctx context.Context, tbl *tdb.TxTable, cands []itemset.Set, k, workers int) ([][]int32, error) {
	n := h.NGranules()
	if workers > n {
		workers = n
	}
	out := make([][]int32, len(cands))
	for i := range out {
		out[i] = make([]int32, n)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tree, err := apriori.NewHashTree(cands, k, 0, 0)
			if err != nil {
				errs[w] = err
				return
			}
			for gi := lo; gi < hi; gi++ {
				if ctx.Err() != nil {
					return
				}
				if !h.Active[gi] {
					continue
				}
				src := tbl.GranuleSource(h.Cfg.Granularity, h.Span.Lo+int64(gi))
				src.ForEach(tree.Add)
				for i, c := range tree.Counts() {
					if c != 0 {
						out[i][gi] = int32(c)
					}
				}
				tree.Reset()
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// generateFromSets is the Apriori join+prune over a sorted level of
// plain sets, reporting the join/prune counts for pass telemetry.
func generateFromSets(level []itemset.Set) (cands []itemset.Set, generated, pruned int) {
	ics := make([]apriori.ItemsetCount, len(level))
	for i, s := range level {
		ics[i] = apriori.ItemsetCount{Set: s}
	}
	return apriori.GenerateCandidatesCounted(ics)
}

// RuleCandidate is one potential temporal rule considered by the
// miners: antecedent ⇒ consequent with the full itemset cached.
type RuleCandidate struct {
	Ante, Cons, Full itemset.Set
}

// Holds returns the per-granule hold sequence of the rule: hold[gi] is
// true when, inside granule gi, supp(full) ≥ threshold and
// supp(full)/supp(ante) ≥ MinConfidence. Inactive granules are false;
// use the Active mask to tell "fails" from "no data". ok is false when
// the full itemset is not granule-frequent (the rule can hold nowhere).
func (h *HoldTable) Holds(rc RuleCandidate) (hold []bool, ok bool) {
	fullCounts := h.countsOf(rc.Full)
	if fullCounts == nil {
		return nil, false
	}
	anteCounts := h.countsOf(rc.Ante)
	hold = make([]bool, h.NGranules())
	for gi := range hold {
		if !h.Active[gi] || int(fullCounts[gi]) < h.MinCounts[gi] {
			continue
		}
		if anteCounts == nil || anteCounts[gi] == 0 {
			continue // defensive; ante ⊆ full is frequent wherever full is
		}
		conf := float64(fullCounts[gi]) / float64(anteCounts[gi])
		if conf+1e-12 >= h.Cfg.MinConfidence {
			hold[gi] = true
		}
	}
	return hold, true
}

// EachRuleCandidate enumerates every rule X ⇒ {y} derivable from the
// granule-frequent itemsets (single-item consequents, following the
// companion papers' presentation convention), in canonical order.
func (h *HoldTable) EachRuleCandidate(fn func(rc RuleCandidate) bool) {
	for k := 2; k < len(h.ByK); k++ {
		for _, full := range h.ByK[k] {
			for _, y := range full {
				rc := RuleCandidate{
					Ante: full.WithoutItem(y),
					Cons: itemset.Set{y},
					Full: full,
				}
				if !fn(rc) {
					return
				}
			}
		}
	}
}

// AggStats aggregates a rule's counts over the granules selected by
// keep (indexed by granule offset): total transactions, support and
// confidence over that sub-database.
func (h *HoldTable) AggStats(rc RuleCandidate, keep func(gi int) bool) (rule apriori.Rule, ok bool) {
	fullCounts := h.countsOf(rc.Full)
	anteCounts := h.countsOf(rc.Ante)
	consCounts := h.countsOf(rc.Cons)
	if fullCounts == nil {
		return apriori.Rule{}, false
	}
	var nTx, nFull, nAnte, nCons int64
	for gi := 0; gi < h.NGranules(); gi++ {
		if !h.Active[gi] || !keep(gi) {
			continue
		}
		nTx += int64(h.TxCounts[gi])
		nFull += int64(fullCounts[gi])
		if anteCounts != nil {
			nAnte += int64(anteCounts[gi])
		}
		if consCounts != nil {
			nCons += int64(consCounts[gi])
		}
	}
	if nTx == 0 || nAnte == 0 {
		return apriori.Rule{}, false
	}
	conf := float64(nFull) / float64(nAnte)
	supp := float64(nFull) / float64(nTx)
	lift := 0.0
	if nCons > 0 {
		lift = conf / (float64(nCons) / float64(nTx))
	}
	return apriori.Rule{
		Antecedent: rc.Ante,
		Consequent: rc.Cons,
		Count:      int(nFull),
		Support:    supp,
		Confidence: conf,
		Lift:       lift,
	}, true
}

// SortTemporalRules orders results canonically: by rule, then by the
// feature's textual form.
func SortTemporalRules(rules []TemporalRule) {
	sort.Slice(rules, func(i, j int) bool {
		if c := rules[i].Rule.Compare(rules[j].Rule); c != 0 {
			return c < 0
		}
		return rules[i].Feature.String() < rules[j].Feature.String()
	})
}
