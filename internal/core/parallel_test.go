package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/tarm-project/tarm/internal/timegran"
)

// holdTablesEqual compares every retained count vector.
func holdTablesEqual(a, b *HoldTable) bool {
	if a.NGranules() != b.NGranules() || a.NActive != b.NActive {
		return false
	}
	if len(a.ByK) != len(b.ByK) {
		return false
	}
	for k := 1; k < len(a.ByK); k++ {
		if len(a.ByK[k]) != len(b.ByK[k]) {
			return false
		}
		for i, s := range a.ByK[k] {
			if !s.Equal(b.ByK[k][i]) {
				return false
			}
			if !reflect.DeepEqual(a.Counts(s), b.Counts(s)) {
				return false
			}
		}
	}
	return true
}

func TestParallelBuildMatchesSequentialFixture(t *testing.T) {
	tbl := buildFixture(t)
	seqCfg := fixtureConfig()
	seq, err := BuildHoldTable(tbl, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 100} {
		parCfg := fixtureConfig()
		parCfg.Workers = workers
		par, err := BuildHoldTable(tbl, parCfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !holdTablesEqual(seq, par) {
			t.Errorf("workers=%d: parallel build differs from sequential", workers)
		}
	}
}

func TestQuickParallelBuildEquivalent(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 15,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := randomTemporalTable(r)
		mcfg := Config{
			Granularity:   timegran.Day,
			MinSupport:    0.25,
			MinConfidence: 0.5,
			MinFreq:       1,
		}
		seq, err := BuildHoldTable(tbl, mcfg)
		if err != nil {
			return false
		}
		mcfg.Workers = 1 + r.Intn(7)
		par, err := BuildHoldTable(tbl, mcfg)
		if err != nil {
			return false
		}
		return holdTablesEqual(seq, par)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestWorkersValidation(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	cfg.Workers = -1
	if _, err := BuildHoldTable(tbl, cfg); err == nil {
		t.Error("negative Workers accepted")
	}
}

func TestParallelMiningEndToEnd(t *testing.T) {
	tbl := buildFixture(t)
	cfg := fixtureConfig()
	cfg.Workers = 4
	rules, err := MineValidPeriods(tbl, cfg, PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfgSeq := fixtureConfig()
	seqRules, err := MineValidPeriods(tbl, cfgSeq, PeriodConfig{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != len(seqRules) {
		t.Fatalf("parallel found %d periods, sequential %d", len(rules), len(seqRules))
	}
	for i := range rules {
		if rules[i].Interval != seqRules[i].Interval || !rules[i].Rule.Antecedent.Equal(seqRules[i].Rule.Antecedent) {
			t.Errorf("period %d differs: %+v vs %+v", i, rules[i], seqRules[i])
		}
	}
}
