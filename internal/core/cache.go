package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// HoldCache is a memory-bounded LRU cache of HoldTables, the substrate
// of interactive IQMS sessions: an analyst iterating MINE statements
// over one table pays the level-wise counting scan once, and every
// later statement against the same data is served from memory.
//
// A cached build at support s₀ serves any statement at support s ≥ s₀
// (and MaxK within the cached depth) *exactly*: itemsets granule-
// frequent at s are a subset of those retained at s₀ (per-granule
// counts are monotone, so an itemset clearing ceil(s·|g|) clears
// ceil(s₀·|g|) too), and re-thresholding the stored per-granule count
// vectors reproduces the cold build bit for bit — see
// (*HoldTable).Rethreshold. Statements below the cached support, or
// deeper than the cached MaxK, miss and rebuild.
//
// Entries are keyed by (table name, table epoch, granularity,
// MinGranuleTx); the epoch comes from tdb.(*TxTable).Epoch and is
// bumped by every Append. A write to the table no longer simply
// invalidates its cached tables: when the table's change log still
// covers the window since the entry was built and the dirty region is
// a minority of the data, the entry is delta-maintained in place —
// only the dirty granules are recounted and their count vectors
// spliced into the carried entry (see HoldTable.Maintain) — and the
// statement is served from the refreshed entry. Only when the log has
// been trimmed past the entry, or most of the table changed, does the
// entry fall back to invalidation and a cold rebuild. Concurrent
// identical statements are deduplicated: one build (or one delta
// maintenance) runs, the rest wait for it (singleflight).
//
// The zero of *HoldCache is usable: a nil cache builds directly and
// caches nothing, so callers thread an optional cache without
// branching.
type HoldCache struct {
	maxBytes int64

	mu       sync.Mutex
	lru      *list.List // of *cacheEntry, front = most recently used
	byKey    map[cacheKey]*cacheEntry
	flights  map[flightKey]*flight
	stats    CacheStats
	deltaOff bool
}

// DefaultCacheBytes is the memory budget front ends use when the user
// does not size the cache explicitly.
const DefaultCacheBytes int64 = 256 << 20

// cacheKey identifies the data a hold table was counted over, minus
// the epoch: granularity and MinGranuleTx change the granule grid and
// the active mask, so tables built under different values share
// nothing. The epoch lives in the entry so a stale entry can be
// recognised (and dropped) at lookup time.
type cacheKey struct {
	table        string
	granularity  timegran.Granularity
	minGranuleTx int
}

// cacheEntry is one resident hold table plus the coverage it can
// serve: statements at support ≥ buildSupport and MaxK within maxK.
type cacheEntry struct {
	key          cacheKey
	epoch        int64
	buildSupport float64
	maxK         int // 0 = unbounded
	bytes        int64
	cells        int64
	h            *HoldTable
	elem         *list.Element
}

// flightKey identifies one in-flight build: the cache key plus the
// thresholds that shape the build. Statements differing only in
// confidence, frequency, backend or tracer coalesce onto one build.
type flightKey struct {
	cacheKey
	epoch   int64
	support float64
	maxK    int
}

// flight is one in-flight build; waiters block on done.
type flight struct {
	done chan struct{}
	h    *HoldTable
	err  error
}

// CacheStats is a point-in-time snapshot of a cache's behaviour,
// JSON-shaped for the iqms session report.
type CacheStats struct {
	Hits          int64 `json:"hits"`           // exact-threshold hits
	Rethresholds  int64 `json:"rethresholds"`   // monotone re-threshold hits
	Misses        int64 `json:"misses"`         // builds triggered
	Dedups        int64 `json:"dedups"`         // waits on an in-flight build
	Deltas        int64 `json:"deltas"`         // stale entries refreshed by delta maintenance
	Evictions     int64 `json:"evictions"`      // entries evicted for space
	Invalidations int64 `json:"invalidations"`  // entries dropped after table writes
	Entries       int   `json:"entries"`        // resident entries
	ResidentBytes int64 `json:"resident_bytes"` // estimated resident size
	ResidentCells int64 `json:"resident_cells"` // resident itemsets × granules
	MaxBytes      int64 `json:"max_bytes"`      // configured budget
}

// NewHoldCache returns a cache bounded to roughly maxBytes of resident
// hold-table data (maxBytes ≤ 0 returns nil: caching disabled).
func NewHoldCache(maxBytes int64) *HoldCache {
	if maxBytes <= 0 {
		return nil
	}
	return &HoldCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[cacheKey]*cacheEntry),
		flights:  make(map[flightKey]*flight),
	}
}

// Stats returns a snapshot of the cache counters. Safe on nil.
func (c *HoldCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	st.MaxBytes = c.maxBytes
	return st
}

// EntryInfo is the introspection view of one resident cache entry,
// JSON-shaped for tarmd's GET /v1/cache.
type EntryInfo struct {
	Table        string  `json:"table"`
	Granularity  string  `json:"granularity"`
	MinGranuleTx int     `json:"min_granule_tx,omitempty"`
	Epoch        int64   `json:"epoch"`
	BuildSupport float64 `json:"build_support"`
	MaxK         int     `json:"max_k"` // 0 = unbounded
	Bytes        int64   `json:"bytes"`
	Cells        int64   `json:"cells"`
	Itemsets     int     `json:"itemsets"`
	Granules     int     `json:"granules"`
}

// Entries snapshots the resident entries, most recently used first.
// Safe on nil.
func (c *HoldCache) Entries() []EntryInfo {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryInfo, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		out = append(out, EntryInfo{
			Table:        ent.key.table,
			Granularity:  ent.key.granularity.String(),
			MinGranuleTx: ent.key.minGranuleTx,
			Epoch:        ent.epoch,
			BuildSupport: ent.buildSupport,
			MaxK:         ent.maxK,
			Bytes:        ent.bytes,
			Cells:        ent.cells,
			Itemsets:     ent.h.TotalItemsets(),
			Granules:     ent.h.NGranules(),
		})
	}
	return out
}

// maxKCovers reports whether a build bounded to have (0 = unbounded)
// contains every level a query bounded to want needs.
func maxKCovers(have, want int) bool {
	return have == 0 || (want != 0 && want <= have)
}

// Get returns a hold table for (tbl, cfg), from cache when a resident
// build covers the statement, building (and caching) otherwise. The
// returned table carries cfg verbatim — confidence, frequency and
// tracer are the caller's — and must be treated as read-only, like
// every shared HoldTable. A nil cache builds directly.
func (c *HoldCache) Get(tbl *tdb.TxTable, cfg Config) (*HoldTable, error) {
	return c.GetContext(context.Background(), tbl, cfg)
}

// GetContext is Get under a context. Cancellation reaches every path:
// a cold build runs BuildHoldTableContext, and a singleflight waiter
// selects on ctx alongside the flight — a cancelled waiter returns
// ctx.Err() immediately while the build keeps running for the others.
// When the *winning* builder is the one cancelled, its flight fails
// with a context error that is not the waiter's own; such waiters
// retry with a fresh build rather than inheriting a dead statement's
// failure. Failed builds are never inserted, so a cancelled build
// leaves no poisoned entry behind.
func (c *HoldCache) GetContext(ctx context.Context, tbl *tdb.TxTable, cfg Config) (*HoldTable, error) {
	if c == nil {
		return BuildHoldTableContext(ctx, tbl, cfg)
	}
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	key := cacheKey{table: tbl.Name(), granularity: cfg.Granularity, minGranuleTx: cfg.MinGranuleTx}
	tr := cfg.tracer()

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Re-read the epoch each attempt: a retry may straddle a write.
		epoch := tbl.Epoch()
		c.mu.Lock()
		if ent := c.byKey[key]; ent != nil {
			if ent.epoch != epoch {
				// The table was written since this entry was built. Prefer
				// refreshing the entry by delta maintenance over dropping
				// it; only when that is impossible (log trimmed, majority
				// of the data dirty, entry does not cover the statement)
				// invalidate and fall through to a cold build.
				if h, err, served := c.deltaLocked(ctx, tbl, cfg, key, ent, epoch, tr); served {
					if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
						// A delta flight we joined died with its winner's
						// context error, not ours: retry.
						continue
					}
					return h, err
				}
				c.removeLocked(ent)
				c.stats.Invalidations++
				tr.Counter(obs.MetricCacheInvalidations, 1)
				c.gaugeLocked(tr)
			} else if ent.buildSupport <= cfg.MinSupport && maxKCovers(ent.maxK, cfg.MaxK) {
				c.lru.MoveToFront(ent.elem)
				h := ent.h
				if cfg.MinSupport == ent.buildSupport && cfg.MaxK == ent.maxK {
					c.stats.Hits++
					c.mu.Unlock()
					tr.Counter(obs.MetricCacheHits, 1)
					return h.withCfg(cfg), nil
				}
				c.stats.Rethresholds++
				c.mu.Unlock()
				tr.Counter(obs.MetricCacheRethresholds, 1)
				return h.Rethreshold(cfg)
			}
		}
		// Miss. Join an identical in-flight build, or start one.
		fk := flightKey{cacheKey: key, epoch: epoch, support: cfg.MinSupport, maxK: cfg.MaxK}
		if f := c.flights[fk]; f != nil {
			c.stats.Dedups++
			c.mu.Unlock()
			tr.Counter(obs.MetricCacheDedups, 1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-f.done:
			}
			if f.err == nil {
				return f.h.withCfg(cfg), nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The winning builder's statement was cancelled, not
				// ours (our ctx passed the select or is checked at the
				// loop top). Its flight is gone from the map, so retry
				// with a clean build instead of failing a live
				// statement with a dead one's error.
				continue
			}
			return nil, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[fk] = f
		c.stats.Misses++
		c.mu.Unlock()
		tr.Counter(obs.MetricCacheMisses, 1)

		h, err := BuildHoldTableContext(ctx, tbl, cfg)
		f.h, f.err = h, err
		close(f.done)

		c.mu.Lock()
		delete(c.flights, fk)
		if err == nil && tbl.Epoch() == epoch {
			// Only cache builds not raced by a write: a scan overlapping an
			// Append may contain the new rows, and caching it under the old
			// epoch would serve them to readers of the old state.
			c.insertLocked(key, epoch, cfg, h, tr)
		}
		c.gaugeLocked(tr)
		c.mu.Unlock()
		return h, err
	}
}

// deltaLocked tries to serve a statement from a stale entry by
// delta-maintaining it in place instead of invalidating it. Called
// with c.mu held. When served is true the lock has been released and
// (h, err) is the statement's outcome — except that a joined flight
// failing with its *winner's* context error is returned for the caller
// to retry, mirroring the cold dedup path. When served is false the
// lock is still held and the caller falls through to invalidation.
func (c *HoldCache) deltaLocked(ctx context.Context, tbl *tdb.TxTable, cfg Config, key cacheKey, ent *cacheEntry, epoch int64, tr obs.Tracer) (h *HoldTable, err error, served bool) {
	if c.deltaOff || ent.buildSupport > cfg.MinSupport || !maxKCovers(ent.maxK, cfg.MaxK) {
		return nil, nil, false
	}
	dirty, cur, ok := tbl.DirtySince(key.granularity, ent.epoch)
	if !ok || cur != epoch || !deltaWorthwhile(tbl, key.granularity, dirty) {
		return nil, nil, false
	}
	// The refreshed table is at the entry's build thresholds; the
	// statement's own (equal or higher) thresholds are derived from it
	// exactly, as on the resident hit path.
	serve := func(nh *HoldTable) (*HoldTable, error) {
		if cfg.MinSupport == ent.buildSupport && cfg.MaxK == ent.maxK {
			return nh.withCfg(cfg), nil
		}
		return nh.Rethreshold(cfg)
	}
	fk := flightKey{cacheKey: key, epoch: epoch, support: ent.buildSupport, maxK: ent.maxK}
	if f := c.flights[fk]; f != nil {
		c.stats.Dedups++
		c.mu.Unlock()
		tr.Counter(obs.MetricCacheDedups, 1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err(), true
		case <-f.done:
		}
		if f.err != nil {
			return nil, f.err, true
		}
		h, err = serve(f.h)
		return h, err, true
	}
	f := &flight{done: make(chan struct{})}
	c.flights[fk] = f
	c.stats.Deltas++
	c.mu.Unlock()
	tr.Counter(obs.MetricCacheDeltas, 1)

	// Maintain under the caller's config (thresholds pinned to the
	// build's): the entry's stored config belongs to a finished
	// statement and must not receive this one's tracer events.
	buildCfg := cfg
	buildCfg.MinSupport = ent.buildSupport
	buildCfg.MaxK = ent.maxK
	nh, err := ent.h.withCfg(buildCfg).MaintainContext(ctx, tbl, dirty)
	if err != nil && ctx.Err() == nil {
		// The dirty list raced a concurrent append, or the entry turned
		// out unmaintainable: fall back to a cold build at the same
		// coverage so waiters still receive a covering table.
		nh, err = BuildHoldTableContext(ctx, tbl, buildCfg)
	}
	f.h, f.err = nh, err
	close(f.done)

	c.mu.Lock()
	delete(c.flights, fk)
	if err == nil && tbl.Epoch() == epoch {
		// insertLocked replaces the stale entry (same key, older epoch)
		// and re-evicts under the budget.
		c.insertLocked(key, epoch, buildCfg, nh, tr)
	}
	c.gaugeLocked(tr)
	c.mu.Unlock()
	if err != nil {
		return nil, err, true
	}
	h, err = serve(nh)
	return h, err, true
}

// deltaWorthwhile caps delta maintenance at half the table's rows:
// recounting a majority of the data costs about as much as a cold
// build, without the cold build's backend selection and parallelism.
func deltaWorthwhile(tbl *tdb.TxTable, g timegran.Granularity, dirty []timegran.Granule) bool {
	total := tbl.Len()
	if total == 0 {
		return false
	}
	rows := 0
	for _, gr := range dirty {
		rows += tbl.CountRange(g, timegran.Interval{Lo: gr, Hi: gr})
		if rows*2 > total {
			return false
		}
	}
	return true
}

// DisableDelta turns off delta maintenance for this cache: stale
// entries are invalidated on lookup and rebuilt from scratch, the
// pre-delta behaviour. Used by experiments comparing the two policies
// and available as an operational escape hatch.
func (c *HoldCache) DisableDelta() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deltaOff = true
}

// Probe reports how GetContext would serve (tbl, cfg) right now, for
// plan-time EXPLAIN annotation: "hit" (a resident entry matches the
// thresholds exactly), "rethreshold" (a resident entry covers them at
// lower support / deeper MaxK), "delta" (a covering entry is stale but
// would be refreshed by delta maintenance rather than rebuilt) or
// "build" (no covering entry; a Get would build or join an in-flight
// build). Read-only: no counter, LRU or invalidation side effects. A
// nil cache always reports "build".
func (c *HoldCache) Probe(tbl *tdb.TxTable, cfg Config) string {
	if c == nil {
		return "build"
	}
	cfg, err := cfg.normalise()
	if err != nil {
		return "build"
	}
	key := cacheKey{table: tbl.Name(), granularity: cfg.Granularity, minGranuleTx: cfg.MinGranuleTx}
	epoch := tbl.Epoch()
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.byKey[key]
	if ent == nil || ent.buildSupport > cfg.MinSupport || !maxKCovers(ent.maxK, cfg.MaxK) {
		return "build"
	}
	if ent.epoch != epoch {
		if c.deltaOff {
			return "build"
		}
		dirty, cur, ok := tbl.DirtySince(key.granularity, ent.epoch)
		if !ok || cur != epoch || !deltaWorthwhile(tbl, key.granularity, dirty) {
			return "build"
		}
		return "delta"
	}
	if cfg.MinSupport == ent.buildSupport && cfg.MaxK == ent.maxK {
		return "hit"
	}
	return "rethreshold"
}

// insertLocked adds a freshly built table, replacing the key's
// previous entry unless that entry already covers at least as much,
// then evicts from the cold end until the budget holds. Oversized
// tables are not cached. Caller holds c.mu.
func (c *HoldCache) insertLocked(key cacheKey, epoch int64, cfg Config, h *HoldTable, tr obs.Tracer) {
	bytes := h.MemBytes()
	if bytes > c.maxBytes {
		return
	}
	if old := c.byKey[key]; old != nil {
		if old.epoch == epoch && old.buildSupport <= cfg.MinSupport && maxKCovers(old.maxK, cfg.MaxK) {
			// A concurrent build with broader coverage landed first.
			c.lru.MoveToFront(old.elem)
			return
		}
		c.removeLocked(old)
	}
	ent := &cacheEntry{
		key:          key,
		epoch:        epoch,
		buildSupport: cfg.MinSupport,
		maxK:         cfg.MaxK,
		bytes:        bytes,
		cells:        int64(h.TotalItemsets()) * int64(h.NGranules()),
		h:            h,
	}
	ent.elem = c.lru.PushFront(ent)
	c.byKey[key] = ent
	c.stats.ResidentBytes += ent.bytes
	c.stats.ResidentCells += ent.cells
	for c.stats.ResidentBytes > c.maxBytes && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*cacheEntry)
		c.removeLocked(victim)
		c.stats.Evictions++
		tr.Counter(obs.MetricCacheEvictions, 1)
	}
}

// removeLocked unlinks an entry and releases its accounting. Caller
// holds c.mu.
func (c *HoldCache) removeLocked(ent *cacheEntry) {
	c.lru.Remove(ent.elem)
	if c.byKey[ent.key] == ent {
		delete(c.byKey, ent.key)
	}
	c.stats.ResidentBytes -= ent.bytes
	c.stats.ResidentCells -= ent.cells
}

// gaugeLocked publishes the resident-cells gauge. Caller holds c.mu.
func (c *HoldCache) gaugeLocked(tr obs.Tracer) {
	tr.Gauge(obs.MetricCacheResidentCells, float64(c.stats.ResidentCells))
}

// withCfg returns a shallow view of h carrying the caller's config:
// the count vectors, levels and thresholds are shared with h (the
// caller's support and MaxK equal the build's), while confidence,
// frequency and tracer — which the stored data does not depend on —
// are the caller's own.
func (h *HoldTable) withCfg(cfg Config) *HoldTable {
	nh := *h
	nh.Cfg = cfg
	return &nh
}

// MemBytes estimates the resident heap size of the hold table: the
// per-granule count vectors dominate (4 bytes × itemsets × granules),
// plus per-itemset key/slice/map overhead and the per-granule
// scaffolding. It is the sizing unit of the HoldCache budget.
func (h *HoldTable) MemBytes() int64 {
	// Map entry, key string header+bytes, count-slice header, ByK slot.
	const perItemset = 96
	n := int64(h.NGranules())
	var itemBytes int64
	for k, level := range h.ByK {
		itemBytes += int64(len(level)) * (4*n + int64(8*k) + perItemset)
	}
	return itemBytes + n*24
}

// Rethreshold derives from h the exact hold table a cold build at
// cfg's (higher or equal) support and (equal or shallower) MaxK would
// produce, without rescanning any data: per-granule thresholds are
// recomputed, every stored level is filtered through them, and the
// level-wise stopping rule is replayed so the ByK structure matches a
// cold build level for level. Count vectors are shared with h, never
// copied.
//
// The monotonicity argument: per-granule counts do not depend on the
// thresholds, and an itemset frequent in granule g at the higher
// support was necessarily frequent in g at the build support (its
// count cleared a larger bound), so every itemset the cold build would
// retain is stored in h with identical counts — filtering cannot miss
// one. Conversely the filter applies exactly the cold build's
// per-granule bounds, so it cannot keep an extra one.
//
// It errors when cfg is not covered: different granularity or
// MinGranuleTx (different granule grid), support below the build
// support, or MaxK deeper than built.
func (h *HoldTable) Rethreshold(cfg Config) (*HoldTable, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	if cfg.Granularity != h.Cfg.Granularity {
		return nil, fmt.Errorf("core: Rethreshold granularity %v differs from build %v", cfg.Granularity, h.Cfg.Granularity)
	}
	if cfg.MinGranuleTx != h.Cfg.MinGranuleTx {
		return nil, fmt.Errorf("core: Rethreshold MinGranuleTx %d differs from build %d", cfg.MinGranuleTx, h.Cfg.MinGranuleTx)
	}
	if cfg.MinSupport < h.Cfg.MinSupport {
		return nil, fmt.Errorf("core: Rethreshold support %g below build support %g; rebuild instead", cfg.MinSupport, h.Cfg.MinSupport)
	}
	if !maxKCovers(h.Cfg.MaxK, cfg.MaxK) {
		return nil, fmt.Errorf("core: Rethreshold MaxK %d deeper than built %d; rebuild instead", cfg.MaxK, h.Cfg.MaxK)
	}
	n := h.NGranules()
	nh := &HoldTable{
		Cfg:       cfg,
		Span:      h.Span,
		TxCounts:  h.TxCounts,
		MinCounts: make([]int, n),
		Active:    h.Active,
		NActive:   h.NActive,
		ByK:       [][]itemset.Set{nil},
		counts:    make(map[string][]int32),
	}
	for gi, txc := range nh.TxCounts {
		if nh.Active[gi] {
			nh.MinCounts[gi] = ceilCount(cfg.MinSupport, txc)
		}
	}
	// Level 1: filter the stored items through the new thresholds. The
	// filtered slice of a sorted level stays sorted.
	var l1 []itemset.Set
	for _, s := range h.ByK[1] {
		if v := h.countsOf(s); nh.frequentSomewhere(v) {
			l1 = append(l1, s)
			nh.counts[s.Key()] = v
		}
	}
	nh.ByK = append(nh.ByK, l1)
	// Higher levels replay the cold build's loop: stop where it would
	// stop (thin level, empty join, MaxK), append an empty level where
	// it would count candidates and find none. A stored k-level can
	// never lack an itemset the cold build retains: that itemset is
	// granule-frequent at the lower build support too.
	prev := l1
	for k := 2; len(prev) > 1 && (cfg.MaxK == 0 || k <= cfg.MaxK) && k < len(h.ByK); k++ {
		cands, _, _ := generateFromSets(prev)
		if len(cands) == 0 {
			break
		}
		var level []itemset.Set
		for _, s := range h.ByK[k] {
			if v := h.countsOf(s); nh.frequentSomewhere(v) {
				level = append(level, s)
				nh.counts[s.Key()] = v
			}
		}
		nh.ByK = append(nh.ByK, level)
		prev = level
	}
	if tr := cfg.tracer(); tr.Enabled() {
		tr.Counter(obs.MetricItemsetsFrequent, int64(nh.TotalItemsets()))
		tr.Gauge(obs.MetricHoldCells, float64(nh.TotalItemsets())*float64(n))
	}
	return nh, nil
}
