package tdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
)

// Write-ahead log. The durable write path of a database directory is
//
//	append to memory → encode a WAL record → write → fsync (policy) → ack
//
// so every acknowledged append survives a crash: recovery loads the
// newest checkpoint (the segment directories + .rel files + dictionary)
// and replays the WAL tail on top of it. Under FsyncAlways and FsyncOff
// the record write is a direct syscall before the ack; FsyncInterval
// trades a bounded loss window (one flush cadence) for a buffered
// write path that keeps pace with non-durable ingest.
//
// File layout (<dir>/tdb.wal):
//
//	header:  magic "TDBW" | version u32 | checkpoint epoch u64
//	records: length u32 | crc32 u32 (over payload) | payload
//
// A record's payload starts with a one-byte type. Records are
// self-delimiting and individually checksummed, so a torn or corrupted
// tail is detected record-precisely and recovery keeps the longest
// valid prefix. The header's checkpoint epoch pairs the WAL with the
// checkpoint manifest: a WAL whose epoch is older than the manifest's
// predates the newest checkpoint (the crash hit between manifest write
// and WAL reset) and is discarded; replay of a current-epoch WAL is
// idempotent regardless, because append records carry the IDs the
// transactions were assigned in memory and replay skips IDs the loaded
// checkpoint already contains.
const (
	magicWAL   = "TDBW"
	walFile    = "tdb.wal"
	walHdrSize = 4 + 4 + 8
)

// WAL record types.
const (
	walRecAppend uint8 = 1 // table, firstID, transactions
	walRecDict   uint8 = 2 // dictionary growth: startID + names, in intern order
	walRecCreate uint8 = 3 // transaction table created
	walRecDrop   uint8 = 4 // transaction table dropped
)

// FsyncPolicy is when the WAL reaches the platter relative to the ack.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before every acknowledgment (group-committed:
	// concurrent appends piggyback on one fsync covering all of them).
	// Survives OS/power failure.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval batches records in a user-space buffer that a
	// background flusher writes and fsyncs on a fixed cadence (plus an
	// inline flush if the buffer outgrows walBufFlushSize). Keeping the
	// write syscall off the append path is what lets this policy track
	// the non-durable ingest rate; the price is that up to one interval
	// of acknowledged appends is exposed to a process kill or OS crash.
	FsyncInterval
	// FsyncOff writes each record immediately and never fsyncs; the OS
	// flushes at its leisure. Survives a process kill, not an OS crash.
	FsyncOff
)

// walBufFlushSize caps the interval policy's user-space buffer: a
// writeFrames that grows it past this flushes inline, bounding both
// memory and the kill-window to min(SyncInterval, this many bytes).
const walBufFlushSize = 1 << 20

// ParseFsyncPolicy resolves the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off", "none":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("tdb: unknown fsync policy %q (want always, interval or off)", s)
	}
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// WAL metric names, published when the database was opened with a
// Registry.
const (
	MetricWALAppends   = "tarm_wal_appends_total"      // append records written (counter)
	MetricWALRecords   = "tarm_wal_records_total"      // records of any type written (counter)
	MetricWALBytes     = "tarm_wal_bytes_total"        // record bytes written (counter)
	MetricWALFsyncs    = "tarm_wal_fsyncs_total"       // fsync calls (counter)
	MetricWALSyncSecs  = "tarm_wal_sync_seconds"       // fsync latency (histogram)
	MetricWALSize      = "tarm_wal_size_bytes"         // current WAL file size (gauge)
	MetricWALReplayRec = "tarm_wal_replayed_records"   // records replayed at open (counter)
	MetricWALReplayTx  = "tarm_wal_replayed_tx"        // transactions replayed at open (counter)
	MetricWALTornBytes = "tarm_wal_torn_bytes_total"   // invalid tail bytes discarded at open (counter)
	MetricCheckpoints  = "tarm_checkpoint_total"       // checkpoints taken (counter)
	MetricCheckpointS  = "tarm_checkpoint_seconds"     // checkpoint latency (histogram)
	MetricCheckpointW  = "tarm_checkpoint_segments_written" // segment files rewritten (counter)
	MetricCheckpointK  = "tarm_checkpoint_segments_skipped" // segment files skipped as unchanged (counter)
	MetricRecoverSecs  = "tarm_recovery_seconds"       // open-time recovery wall (gauge)
)

// wal is the append-side handle of the log. One wal serves a whole
// database: records from different tables interleave, each carrying its
// table name.
type wal struct {
	path   string
	policy FsyncPolicy
	reg    *obs.Registry // nil = no metrics

	// mu serialises record writes; per-table append order is preserved
	// because appenders log while holding the table lock.
	mu   sync.Mutex
	f    *os.File
	size int64
	lsn  int64 // records written (monotonic, reset by checkpoint)
	err  error // sticky write/sync error; surfaces on every later commit
	buf  []byte // FsyncInterval only: framed records not yet written

	// Group commit: syncMu serialises fsyncs, synced is the highest LSN
	// known durable. A committer whose LSN is already covered returns
	// without syncing; the ones that queued on syncMu during an fsync
	// find their LSN covered when they acquire it.
	syncMu sync.Mutex
	synced atomic.Int64
}

// createWAL truncates (or creates) path with a fresh header at epoch.
func createWAL(path string, epoch uint64, policy FsyncPolicy, reg *obs.Registry) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tdb: create wal %s: %w", path, err)
	}
	var hdr [walHdrSize]byte
	copy(hdr[:4], magicWAL)
	binary.LittleEndian.PutUint32(hdr[4:8], fmtVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("tdb: write wal header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("tdb: sync wal header %s: %w", path, err)
	}
	w := &wal{path: path, policy: policy, reg: reg, f: f, size: walHdrSize}
	w.gaugeSize()
	return w, nil
}

// openWALForAppend opens an existing WAL whose records have been
// recovered up to validSize, truncating any invalid tail so new records
// extend the valid prefix.
func openWALForAppend(path string, validSize int64, policy FsyncPolicy, reg *obs.Registry) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tdb: open wal %s: %w", path, err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("tdb: truncate wal %s: %w", path, err)
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tdb: seek wal %s: %w", path, err)
	}
	w := &wal{path: path, policy: policy, reg: reg, f: f, size: validSize}
	w.gaugeSize()
	return w, nil
}

func (w *wal) gaugeSize() {
	if w.reg != nil {
		w.reg.Gauge(MetricWALSize).Set(float64(w.size))
	}
}

// frameRecord wraps payload with the length+CRC frame.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// writeRecords appends framed payloads as one write each and returns
// the LSN of the last.
func (w *wal) writeRecords(payloads ...[]byte) (int64, error) {
	frames := make([][]byte, len(payloads))
	for i, p := range payloads {
		frames[i] = frameRecord(p)
	}
	return w.writeFrames(frames...)
}

// writeFrames appends pre-framed records and returns the LSN of the
// last. always/off write through — no user-space buffer, so an
// acknowledged record survives a process kill and only fsync timing
// differs. interval appends to the buffer the background flusher
// drains, keeping the write syscall off the append path.
func (w *wal) writeFrames(frames ...[]byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.lsn, w.err
	}
	for _, frame := range frames {
		// The reader treats any length beyond maxWALRecord as corruption
		// and ends the valid prefix there, so writing such a record would
		// ack data that recovery silently discards — along with every
		// record after it. logAppend splits batches below the cap; this
		// guard turns any remaining oversized record into a sticky error
		// the commit surfaces before the ack.
		if len(frame)-8 > maxWALRecord {
			w.err = fmt.Errorf("tdb: wal record payload %d bytes exceeds the %d-byte cap", len(frame)-8, maxWALRecord)
			return w.lsn, w.err
		}
		if w.policy == FsyncInterval {
			w.buf = append(w.buf, frame...)
		} else {
			if _, err := w.f.Write(frame); err != nil {
				w.err = fmt.Errorf("tdb: wal write: %w", err)
				return w.lsn, w.err
			}
			w.size += int64(len(frame))
		}
		w.lsn++
		if w.reg != nil {
			w.reg.Counter(MetricWALRecords).Add(1)
			w.reg.Counter(MetricWALBytes).Add(int64(len(frame)))
		}
	}
	if len(w.buf) >= walBufFlushSize {
		if err := w.flushLocked(); err != nil {
			return w.lsn, err
		}
	}
	w.gaugeSize()
	return w.lsn, nil
}

// flushLocked drains the interval policy's buffer to the file. Caller
// holds w.mu.
func (w *wal) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("tdb: wal write: %w", err)
		return w.err
	}
	w.size += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// commit makes everything up to lsn durable according to the policy.
// FsyncAlways group-commits: one fsync covers every record written
// before it, and committers whose LSN is already covered return
// immediately.
func (w *wal) commit(lsn int64) error {
	switch w.policy {
	case FsyncOff, FsyncInterval:
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.synced.Load() >= lsn {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= lsn {
		return nil // a concurrent committer's fsync covered us
	}
	w.mu.Lock()
	target := w.lsn
	f, err := w.f, w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.err = fmt.Errorf("tdb: wal fsync: %w", err)
		err = w.err
		w.mu.Unlock()
		return err
	}
	if w.reg != nil {
		w.reg.Counter(MetricWALFsyncs).Add(1)
		w.reg.Histogram(MetricWALSyncSecs).Observe(time.Since(t0).Seconds())
	}
	w.synced.Store(target)
	return nil
}

// sync flushes any buffered records and fsyncs unconditionally (the
// interval flusher and checkpoint use it regardless of policy).
func (w *wal) sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	err := w.flushLocked()
	target := w.lsn
	f := w.f
	w.mu.Unlock()
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.err = fmt.Errorf("tdb: wal fsync: %w", err)
		err = w.err
		w.mu.Unlock()
		return err
	}
	if w.reg != nil {
		w.reg.Counter(MetricWALFsyncs).Add(1)
		w.reg.Histogram(MetricWALSyncSecs).Observe(time.Since(t0).Seconds())
	}
	if s := w.synced.Load(); target > s {
		w.synced.Store(target)
	}
	return nil
}

// reset atomically replaces the log with an empty one at epoch: the
// checkpoint's last step. A new file is prepared under a temp name and
// renamed over the old, so a crash leaves either the full old WAL or
// the empty new one, never a half-header. syncMu is taken first so an
// in-flight fsync (interval flusher, group commit) finishes against the
// old handle before it is closed.
func (w *wal) reset(epoch uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp := w.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tdb: reset wal: %w", err)
	}
	var hdr [walHdrSize]byte
	copy(hdr[:4], magicWAL)
	binary.LittleEndian.PutUint32(hdr[4:8], fmtVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], epoch)
	if _, err := nf.Write(hdr[:]); err == nil {
		err = nf.Sync()
	}
	if err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("tdb: reset wal: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("tdb: reset wal: %w", err)
	}
	// Make the rename durable: a power cut must not resurrect the old
	// (now checkpoint-subsumed, soon divergent) log under this name.
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		nf.Close()
		return fmt.Errorf("tdb: reset wal: %w", err)
	}
	old := w.f
	w.f = nf
	w.size = walHdrSize
	w.lsn = 0
	w.buf = w.buf[:0] // buffered records predate the checkpoint that subsumes them
	w.synced.Store(0)
	w.err = nil
	old.Close()
	w.gaugeSize()
	return nil
}

// close releases the file handle; with a sync first on a graceful path.
func (w *wal) close(syncFirst bool) error {
	if syncFirst {
		if err := w.sync(); err != nil {
			return err
		}
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.f.Close()
	if w.err == nil && err != nil {
		w.err = err
	}
	return err
}

// sizeBytes returns the logical log size: the file plus any records
// still in the interval policy's buffer.
func (w *wal) sizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size + int64(len(w.buf))
}

// stickyErr returns the recorded write/sync error, if any.
func (w *wal) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ---------------------------------------------------------------------
// Record encoding. Payloads reuse the encoder of store.go.

func encodeAppendRecord(table string, firstID int64, txs []Tx) []byte {
	e := &encoder{}
	// Exact pre-size: batch encoding is on the append hot path, and
	// growing the buffer in steps re-zeroes and copies it several times
	// for a day-sized batch.
	size := 1 + 4 + len(table) + 8 + 4
	for _, tx := range txs {
		size += 8 + 4 + 4*len(tx.Items)
	}
	e.buf.Grow(size)
	e.u8(walRecAppend)
	e.str(table)
	e.i64(firstID)
	e.u32(uint32(len(txs)))
	for _, tx := range txs {
		e.i64(tx.At.UnixNano())
		e.u32(uint32(len(tx.Items)))
		for _, it := range tx.Items {
			e.u32(uint32(it))
		}
	}
	return e.buf.Bytes()
}

// encodeAppendFrame is encodeAppendRecord plus frameRecord in a single
// exactly-sized allocation: the payload is built behind an 8-byte hole
// that then receives the length+CRC frame header. One alloc and no
// copy instead of two of each — this is the append hot path.
func encodeAppendFrame(table string, firstID int64, txs []Tx) []byte {
	size := 1 + 4 + len(table) + 8 + 4
	for _, tx := range txs {
		size += 8 + 4 + 4*len(tx.Items)
	}
	out := make([]byte, 8+size)
	p := out[8:8]
	p = append(p, walRecAppend)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(table)))
	p = append(p, table...)
	p = binary.LittleEndian.AppendUint64(p, uint64(firstID))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(txs)))
	for _, tx := range txs {
		p = binary.LittleEndian.AppendUint64(p, uint64(tx.At.UnixNano()))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(tx.Items)))
		for _, it := range tx.Items {
			p = binary.LittleEndian.AppendUint32(p, uint32(it))
		}
	}
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(p))
	return out[:8+len(p)]
}

func encodeDictRecord(startID int, names []string) []byte {
	e := &encoder{}
	e.u8(walRecDict)
	e.u32(uint32(startID))
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return e.buf.Bytes()
}

func encodeCreateRecord(table string) []byte {
	e := &encoder{}
	e.u8(walRecCreate)
	e.str(table)
	return e.buf.Bytes()
}

func encodeDropRecord(table string) []byte {
	e := &encoder{}
	e.u8(walRecDrop)
	e.str(table)
	return e.buf.Bytes()
}
