package tdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/timegran"
)

// The durable storage engine. A database opened with OpenDurable keeps
// its state recoverable at all times through two cooperating artifacts:
//
//   - a checkpoint: the dictionary, the relational .rel files, one
//     segment directory per transaction table (<key>.segd, written by
//     the incremental segment writer) and a "checkpoint" manifest
//     carrying the checkpoint epoch;
//   - the WAL (tdb.wal): every append/create/drop since that checkpoint,
//     logged before the operation is acknowledged.
//
// Recovery is "load newest checkpoint, replay WAL tail". The invariant
// that makes every crash window safe: the manifest's epoch is written
// only after all table files, and the WAL is reset (to the new epoch)
// only after the manifest — so a WAL whose header epoch is older than
// the manifest's is fully contained in the checkpoint and discarded,
// while any same-or-newer WAL replays idempotently because records
// carry explicit transaction IDs and replay skips IDs the checkpoint
// already holds.
const (
	magicCheckpoint = "TDBC"
	checkpointFile  = "checkpoint"
	segDirSuffix    = ".segd"
)

// Durability configures the WAL-backed engine for OpenDurable.
type Durability struct {
	// Fsync is the group-commit policy (see FsyncPolicy).
	Fsync FsyncPolicy
	// SyncInterval is the background fsync cadence under FsyncInterval.
	// Zero means 50ms.
	SyncInterval time.Duration
	// CheckpointInterval, when positive, checkpoints on a background
	// cadence; zero leaves checkpoints to Flush/Close and explicit
	// Checkpoint calls.
	CheckpointInterval time.Duration
	// Segment is the on-disk segment grid for checkpointed transaction
	// tables. The zero value means 32-day segments.
	Segment SegmentConfig
	// Registry receives wal_*/checkpoint_* metrics when non-nil.
	Registry *obs.Registry
}

func (c Durability) withDefaults() Durability {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 50 * time.Millisecond
	}
	if c.Segment == (SegmentConfig{}) {
		c.Segment = SegmentConfig{Granularity: timegran.Day, Width: 32}
	}
	return c
}

// durability is the engine's runtime state, shared by the DB and its
// transaction tables.
//
// Lock order: gate (appenders RLock, Checkpoint Lock) → table mu →
// logMu → wal.mu. The gate freezes the WAL and the tables as one
// consistent unit during a checkpoint; logMu serialises record
// construction so a dictionary-growth record always precedes the
// append records that use its new ids.
type durability struct {
	cfg  Durability
	dict *itemset.Dict

	gate sync.RWMutex
	wal  *wal

	// loggedDict is how many dictionary ids the WAL (or the checkpoint)
	// already covers; guarded by logMu.
	logMu      sync.Mutex
	loggedDict int

	// epoch is the current checkpoint epoch; touched only at open and
	// under gate.Lock in Checkpoint.
	epoch uint64

	recovery RecoveryStats

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// logAppend writes the pending dictionary delta (if the dictionary
// grew) plus the batch's append records, returning the LSN to commit.
// Callers hold the table lock, so per-table WAL order matches ID order
// — the replay skip-watermark depends on that. Write errors are sticky
// on the wal and surface from the commit.
//
// Batches and dictionary deltas whose encoding would exceed the
// reader's maxWALRecord cap are split across records (replay composes
// them back from each record's firstID / dictStart); a record the
// reader would reject as corrupt must never be written, because it
// would end the valid prefix at recovery and silently drop everything
// acked after it.
func (d *durability) logAppend(table string, firstID int64, txs []Tx) int64 {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	var frames [][]byte
	if n := d.dict.Len(); n > d.loggedDict {
		names := d.dict.SortedNames(false)
		frames = appendDictFrames(frames, d.loggedDict, names[d.loggedDict:n])
		d.loggedDict = n
	}
	nframes := len(frames)
	base := 1 + 4 + len(table) + 8 + 4
	start, size := 0, base
	for i, tx := range txs {
		txSize := 8 + 4 + 4*len(tx.Items)
		if i > start && size+txSize > maxWALRecord {
			frames = append(frames, encodeAppendFrame(table, firstID+int64(start), txs[start:i]))
			start, size = i, base
		}
		size += txSize
	}
	frames = append(frames, encodeAppendFrame(table, firstID+int64(start), txs[start:]))
	lsn, _ := d.wal.writeFrames(frames...)
	if d.cfg.Registry != nil {
		d.cfg.Registry.Counter(MetricWALAppends).Add(int64(len(frames) - nframes))
	}
	return lsn
}

// appendDictFrames frames one or more dictionary-growth records for
// names starting at startID, splitting at the maxWALRecord cap.
func appendDictFrames(frames [][]byte, startID int, names []string) [][]byte {
	base := 1 + 4 + 4
	start, size := 0, base
	for i, n := range names {
		ns := 4 + len(n)
		if i > start && size+ns > maxWALRecord {
			frames = append(frames, frameRecord(encodeDictRecord(startID+start, names[start:i])))
			start, size = i, base
		}
		size += ns
	}
	return append(frames, frameRecord(encodeDictRecord(startID+start, names[start:])))
}

// logTableOp logs a create/drop record and commits it under the
// configured policy.
func (d *durability) logTableOp(payload []byte) error {
	d.logMu.Lock()
	lsn, err := d.wal.writeRecords(payload)
	d.logMu.Unlock()
	if err != nil {
		return err
	}
	return d.wal.commit(lsn)
}

// logTableOpSynced logs a record and forces it to the platter
// regardless of fsync policy. Drop uses it as a write barrier: under
// interval/off a mere commit leaves the record in a buffer a kill
// would take with it, while the file removals that follow persist
// immediately — exactly the inconsistency WAL-first exists to prevent.
func (d *durability) logTableOpSynced(payload []byte) error {
	d.logMu.Lock()
	_, err := d.wal.writeRecords(payload)
	d.logMu.Unlock()
	if err != nil {
		return err
	}
	return d.wal.sync()
}

func (d *durability) startBackground(db *DB) {
	if d.cfg.Fsync == FsyncInterval {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			tick := time.NewTicker(d.cfg.SyncInterval)
			defer tick.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-tick.C:
					d.wal.sync() // errors are sticky; surfaced on commits
				}
			}
		}()
	}
	if d.cfg.CheckpointInterval > 0 {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			tick := time.NewTicker(d.cfg.CheckpointInterval)
			defer tick.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-tick.C:
					db.Checkpoint() // best effort; Close repeats it
				}
			}
		}()
	}
}

func (d *durability) stopBackground() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// OpenDurable loads (or initialises) a database directory under the
// WAL-backed engine: newest checkpoint first, then the WAL tail
// replayed on top, with any torn tail truncated to the longest valid
// record prefix. Directories written by the non-durable Open/Flush
// path load transparently (their .txn files are the checkpoint) and
// are migrated to segment directories by the first checkpoint.
func OpenDurable(dir string, cfg Durability) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("tdb: OpenDurable needs a directory")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Segment.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tdb: open %s: %w", dir, err)
	}
	t0 := time.Now()
	db := NewMemDB()
	db.dir = dir

	// Checkpoint state: dictionary, manifest epoch, tables.
	dictPath := filepath.Join(dir, dictFile)
	if _, err := os.Stat(dictPath); err == nil {
		dict, err := LoadDict(dictPath)
		if err != nil {
			return nil, err
		}
		db.dict = dict
	}
	var epoch uint64
	ckPath := filepath.Join(dir, checkpointFile)
	if _, err := os.Stat(ckPath); err == nil {
		epoch, err = readCheckpointFile(ckPath)
		if err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tdb: open %s: %w", dir, err)
	}
	segmented := map[string]bool{}
	for _, ent := range entries {
		if ent.IsDir() && strings.HasSuffix(ent.Name(), segDirSuffix) {
			t, _, err := LoadTxTableSegmented(filepath.Join(dir, ent.Name()))
			if err != nil {
				return nil, err
			}
			key := strings.ToLower(t.Name())
			db.txtables[key] = t
			segmented[key] = true
		}
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		switch {
		case strings.HasSuffix(ent.Name(), extTable):
			t, err := LoadTable(path)
			if err != nil {
				return nil, err
			}
			db.tables[strings.ToLower(t.Name())] = t
		case strings.HasSuffix(ent.Name(), extTx):
			// Legacy whole-file form; a segment directory supersedes it
			// (the file lingers only if a crash interrupted the
			// checkpoint that migrated it).
			if segmented[strings.TrimSuffix(strings.ToLower(ent.Name()), extTx)] {
				continue
			}
			t, err := LoadTxTable(path)
			if err != nil {
				return nil, err
			}
			db.txtables[strings.ToLower(t.Name())] = t
		}
	}

	d := &durability{cfg: cfg, dict: db.dict, epoch: epoch, stop: make(chan struct{})}
	db.dur = d
	for _, t := range db.txtables {
		t.dur = d
	}

	// The WAL: replay a surviving log, discard a stale one, create a
	// fresh one if absent.
	walPath := filepath.Join(dir, walFile)
	if _, statErr := os.Stat(walPath); statErr == nil {
		wEpoch, recs, validSize, torn, err := readWALFile(walPath)
		if err != nil {
			return nil, err
		}
		if wEpoch < epoch {
			// The crash hit between manifest write and WAL reset; the
			// checkpoint already contains everything this log holds.
			w, err := createWAL(walPath, epoch, cfg.Fsync, cfg.Registry)
			if err != nil {
				return nil, err
			}
			d.wal = w
		} else {
			stats, err := db.replayWAL(recs)
			if err != nil {
				return nil, err
			}
			stats.TornBytes = torn
			d.recovery = stats
			if validSize < walHdrSize {
				// Even the header was torn: nothing replayed, start a
				// fresh log at the manifest epoch.
				w, err := createWAL(walPath, epoch, cfg.Fsync, cfg.Registry)
				if err != nil {
					return nil, err
				}
				d.wal = w
			} else {
				w, err := openWALForAppend(walPath, validSize, cfg.Fsync, cfg.Registry)
				if err != nil {
					return nil, err
				}
				d.wal = w
				d.epoch = wEpoch // heals a manifest lost after the WAL reset
			}
		}
	} else {
		w, err := createWAL(walPath, epoch, cfg.Fsync, cfg.Registry)
		if err != nil {
			return nil, err
		}
		d.wal = w
	}
	d.loggedDict = db.dict.Len()
	d.recovery.Wall = time.Since(t0)
	if reg := cfg.Registry; reg != nil {
		reg.Counter(MetricWALReplayRec).Add(int64(d.recovery.Records))
		reg.Counter(MetricWALReplayTx).Add(int64(d.recovery.AppendedTx))
		reg.Counter(MetricWALTornBytes).Add(int64(d.recovery.TornBytes))
		reg.Gauge(MetricRecoverSecs).Set(d.recovery.Wall.Seconds())
	}
	d.startBackground(db)
	return db, nil
}

// Durable reports whether the database runs the WAL-backed engine.
func (db *DB) Durable() bool { return db.dur != nil }

// Recovery returns what opening this database replayed (zero value for
// non-durable databases or a clean start).
func (db *DB) Recovery() RecoveryStats {
	if db.dur == nil {
		return RecoveryStats{}
	}
	return db.dur.recovery
}

// DurabilityErr reports the WAL's sticky write/sync error, if any. Once
// set, the engine acknowledges nothing new; the operator restarts (and
// thereby recovers) the database.
func (db *DB) DurabilityErr() error {
	if db.dur == nil {
		return nil
	}
	return db.dur.wal.stickyErr()
}

// WALSize returns the current log length in bytes (0 for non-durable
// databases): the volume a crash at this instant would replay.
func (db *DB) WALSize() int64 {
	if db.dur == nil {
		return 0
	}
	return db.dur.wal.sizeBytes()
}

// SyncWAL forces the log to disk — flushing the interval policy's
// user-space buffer and fsyncing — without the cost of a checkpoint.
// After it returns, every append acknowledged so far survives both a
// process kill and an OS crash. A no-op for non-durable databases.
func (db *DB) SyncWAL() error {
	if db.dur == nil {
		return nil
	}
	return db.dur.wal.sync()
}

// FsyncPolicy returns the engine's policy (FsyncOff for non-durable
// databases).
func (db *DB) FsyncPolicy() FsyncPolicy {
	if db.dur == nil {
		return FsyncOff
	}
	return db.dur.cfg.Fsync
}

// CheckpointStats reports what a checkpoint wrote.
type CheckpointStats struct {
	// Tables is the number of tables (both kinds) persisted.
	Tables int
	// SegmentsWritten / SegmentsSkipped aggregate the segment writer's
	// incremental behaviour across transaction tables.
	SegmentsWritten, SegmentsSkipped int
	// WALTruncated is the size of the log the checkpoint made redundant.
	WALTruncated int64
	// Wall is the end-to-end checkpoint time.
	Wall time.Duration
}

// Checkpoint persists the full state and truncates the WAL. Appends are
// stalled for the duration (the gate write lock freezes tables and log
// as one consistent unit); reads proceed. On a non-durable persistent
// database it degrades to a plain Flush.
func (db *DB) Checkpoint() (CheckpointStats, error) {
	var st CheckpointStats
	d := db.dur
	if d == nil {
		return st, db.Flush()
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	t0 := time.Now()
	// Make acked-but-unsynced records durable first: if this checkpoint
	// crashes partway, recovery still has a complete log to replay over
	// whatever subset of files made it out.
	if err := d.wal.sync(); err != nil {
		return st, err
	}
	dictLen := db.dict.Len()
	if err := SaveDict(db.dict, filepath.Join(db.dir, dictFile)); err != nil {
		return st, err
	}
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for k, t := range db.tables {
		tables[k] = t
	}
	txtables := make(map[string]*TxTable, len(db.txtables))
	for k, t := range db.txtables {
		txtables[k] = t
	}
	db.mu.RUnlock()
	for key, t := range tables {
		if err := SaveTable(t, filepath.Join(db.dir, key+extTable)); err != nil {
			return st, err
		}
	}
	for key, t := range txtables {
		segStats, err := SaveTxTableSegmented(t, filepath.Join(db.dir, key+segDirSuffix), d.cfg.Segment)
		if err != nil {
			return st, err
		}
		st.SegmentsWritten += segStats.Written
		st.SegmentsSkipped += segStats.Skipped
		// The segment directory supersedes the legacy whole-file form.
		if err := removeIfExists(filepath.Join(db.dir, key+extTx)); err != nil {
			return st, err
		}
	}
	st.Tables = len(tables) + len(txtables)
	newEpoch := d.epoch + 1
	if err := writeCheckpointFile(filepath.Join(db.dir, checkpointFile), newEpoch); err != nil {
		return st, err
	}
	st.WALTruncated = d.wal.sizeBytes() - walHdrSize
	if err := d.wal.reset(newEpoch); err != nil {
		return st, err
	}
	d.epoch = newEpoch
	d.logMu.Lock()
	// The saved dictionary covers dictLen ids; claiming fewer than the
	// dictionary holds now is safe (replay re-verifies known ids),
	// claiming more would leave a gap.
	if dictLen > d.loggedDict {
		d.loggedDict = dictLen
	}
	d.logMu.Unlock()
	st.Wall = time.Since(t0)
	if reg := d.cfg.Registry; reg != nil {
		reg.Counter(MetricCheckpoints).Add(1)
		reg.Histogram(MetricCheckpointS).Observe(st.Wall.Seconds())
		reg.Counter(MetricCheckpointW).Add(int64(st.SegmentsWritten))
		reg.Counter(MetricCheckpointK).Add(int64(st.SegmentsSkipped))
	}
	return st, nil
}

// Close checkpoints a durable database and releases the WAL. Every
// acknowledged append is on disk in checkpoint form afterwards; the
// next open replays nothing. No-op on non-durable databases.
func (db *DB) Close() error {
	if db.dur == nil {
		return nil
	}
	db.dur.stopBackground()
	_, err := db.Checkpoint()
	if cerr := db.dur.wal.close(false); err == nil {
		err = cerr
	}
	return err
}

// Kill abandons the database without checkpoint or sync — the in-
// process equivalent of kill -9, for crash-recovery tests and fault
// injection. The database must not be used afterwards; durability of
// acknowledged appends is whatever the WAL file already holds (under
// FsyncInterval, records still in the user-space buffer are lost,
// exactly as a real kill would lose them).
func (db *DB) Kill() {
	if db.dur == nil {
		return
	}
	db.dur.stopBackground()
	db.dur.wal.close(false)
}

func writeCheckpointFile(path string, epoch uint64) error {
	e := &encoder{}
	e.buf.WriteString(magicCheckpoint)
	e.u32(fmtVersion)
	e.u64(epoch)
	return writeAtomic(path, e.buf.Bytes())
}

func readCheckpointFile(path string) (uint64, error) {
	d, err := readChecked(path, magicCheckpoint)
	if err != nil {
		return 0, err
	}
	epoch := d.u64()
	if d.err != nil {
		return 0, d.err
	}
	return epoch, nil
}
