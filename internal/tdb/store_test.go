package tdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tbl, _ := NewTable("sales", salesSchema(t))
	at := time.Date(2024, 3, 4, 5, 6, 7, 0, time.UTC)
	rows := []Row{
		{Int(1), Float(9.5), Str("bread"), Time(at)},
		{Int(2), Null(), Str("milk ' quoted"), Time(at)},
		{Null(), Float(-2.25), Str(""), Null()},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "sales.rel")
	if err := SaveTable(tbl, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "sales" || got.Len() != 3 {
		t.Fatalf("loaded %q with %d rows", got.Name(), got.Len())
	}
	for i := range rows {
		gr, _ := got.Row(i)
		for c := range rows[i] {
			want := rows[i][c]
			// int into float column widens on insert.
			if want.K == KindInt && got.Schema().Cols[c].Kind == KindFloat {
				want = Float(float64(want.AsInt()))
			}
			if want.IsNull() != gr[c].IsNull() || (!want.IsNull() && !gr[c].Equal(want)) {
				t.Errorf("row %d col %d = %v, want %v", i, c, gr[c], want)
			}
		}
	}
}

func TestTxTableSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tbl := buildTxTable(t)
	path := filepath.Join(dir, "baskets.txn")
	if err := SaveTxTable(tbl, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTxTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("loaded %d transactions, want %d", got.Len(), tbl.Len())
	}
	var orig, loaded []Tx
	tbl.Each(func(tx Tx) bool { orig = append(orig, tx); return true })
	got.Each(func(tx Tx) bool { loaded = append(loaded, tx); return true })
	for i := range orig {
		if !orig[i].At.Equal(loaded[i].At) || !orig[i].Items.Equal(loaded[i].Items) || orig[i].ID != loaded[i].ID {
			t.Errorf("tx %d: %+v vs %+v", i, orig[i], loaded[i])
		}
	}
	// IDs continue after reload.
	id := got.Append(time.Now(), itemset.New(9))
	if id != int64(tbl.Len()) {
		t.Errorf("next id after reload = %d, want %d", id, tbl.Len())
	}
}

func TestDictSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dict := itemset.NewDict()
	names := []string{"bread", "milk", "butter"}
	for _, n := range names {
		dict.Intern(n)
	}
	path := filepath.Join(dir, "items.dict")
	if err := SaveDict(dict, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDict(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if got.MustName(itemset.Item(i)) != n {
			t.Errorf("id %d = %q, want %q", i, got.MustName(itemset.Item(i)), n)
		}
	}
}

// corrupt flips one byte in the middle of the file.
func corrupt(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncate cuts the file roughly in half.
func truncate(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	tbl, _ := NewTable("sales", salesSchema(t))
	for i := 0; i < 50; i++ {
		tbl.Insert(Row{Int(int64(i)), Float(1), Str("x"), Time(time.Now())})
	}
	path := filepath.Join(dir, "sales.rel")
	if err := SaveTable(tbl, path); err != nil {
		t.Fatal(err)
	}

	corrupt(t, path)
	if _, err := LoadTable(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt table load: %v", err)
	}

	if err := SaveTable(tbl, path); err != nil {
		t.Fatal(err)
	}
	truncate(t, path)
	if _, err := LoadTable(path); err == nil {
		t.Error("truncated table loaded")
	}

	// Wrong magic: a txn file loaded as a table.
	txt := buildTxTable(t)
	txPath := filepath.Join(dir, "b.txn")
	if err := SaveTxTable(txt, txPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(txPath); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("wrong-magic load: %v", err)
	}
	if _, err := LoadTxTable(txPath); err != nil {
		t.Errorf("valid txn failed to load: %v", err)
	}

	corrupt(t, txPath)
	if _, err := LoadTxTable(txPath); err == nil {
		t.Error("corrupt txn loaded")
	}

	if _, err := LoadTable(filepath.Join(dir, "missing.rel")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestDBOpenFlushReload(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := salesSchema(t)
	tbl, err := db.CreateTable("sales", schema)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(Row{Int(1), Float(2), Str("bread"), Time(time.Now())})

	txt, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	db.Dict().Intern("bread")
	db.Dict().Intern("milk")
	txt.Append(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), itemset.New(0, 1))

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Names(); len(got) != 2 {
		t.Fatalf("reloaded names = %v", got)
	}
	if _, ok := db2.Table("SALES"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := db2.TxTable("baskets"); !ok {
		t.Error("tx table missing after reload")
	}
	if !db2.IsTxTable("baskets") || db2.IsTxTable("sales") {
		t.Error("IsTxTable misclassifies")
	}
	if db2.Dict().Len() != 2 {
		t.Errorf("dict len = %d", db2.Dict().Len())
	}
}

func TestDBCreateConflictsAndDrop(t *testing.T) {
	db := NewMemDB()
	schema := salesSchema(t)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", schema); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTxTable("t"); err == nil {
		t.Error("tx table with clashing name accepted")
	}
	if _, err := db.CreateTable("bad name", schema); err == nil {
		t.Error("table name with space accepted")
	}
	if _, err := db.CreateTxTable(""); err == nil {
		t.Error("empty tx table name accepted")
	}
	dropped, err := db.Drop("t")
	if err != nil || !dropped {
		t.Errorf("Drop = %v,%v", dropped, err)
	}
	dropped, _ = db.Drop("t")
	if dropped {
		t.Error("double drop reported success")
	}
	if err := db.Flush(); err == nil {
		t.Error("Flush on memory DB succeeded")
	}
}

func TestDBOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	tbl, _ := db.CreateTable("sales", salesSchema(t))
	for i := 0; i < 20; i++ {
		tbl.Insert(Row{Int(int64(i)), Float(1), Str("x"), Time(time.Now())})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	corrupt(t, filepath.Join(dir, "sales.rel"))
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a corrupt table file")
	}
}
