package tdb

import (
	"fmt"
	"strings"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with unique, case-insensitive
// names.
type Schema struct {
	Cols []Column
}

// NewSchema validates column names and kinds.
func NewSchema(cols ...Column) (Schema, error) {
	if len(cols) == 0 {
		return Schema{}, fmt.Errorf("tdb: schema needs at least one column")
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		name := strings.ToLower(c.Name)
		if name == "" {
			return Schema{}, fmt.Errorf("tdb: empty column name")
		}
		if seen[name] {
			return Schema{}, fmt.Errorf("tdb: duplicate column %q", c.Name)
		}
		if c.Kind < KindInt || c.Kind > KindTime {
			return Schema{}, fmt.Errorf("tdb: column %q has invalid type %v", c.Name, c.Kind)
		}
		seen[name] = true
	}
	out := make([]Column, len(cols))
	copy(out, cols)
	return Schema{Cols: out}, nil
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// String renders "(name type, ...)".
func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is one tuple; len(Row) always equals the schema width.
type Row []Value

// Table is an in-memory relational table with an append/scan API. It
// is safe for concurrent readers with a single writer guarded
// internally.
type Table struct {
	name   string
	schema Schema

	mu   sync.RWMutex
	rows []Row
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("tdb: empty table name")
	}
	if len(schema.Cols) == 0 {
		return nil, fmt.Errorf("tdb: table %q needs a schema", name)
	}
	return &Table{name: name, schema: schema}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the current row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// checkRow validates arity and type compatibility (NULL fits any
// column; ints are accepted into float columns and widened).
func (t *Table) checkRow(row Row) (Row, error) {
	if len(row) != len(t.schema.Cols) {
		return nil, fmt.Errorf("tdb: table %s: row has %d values, schema %d", t.name, len(row), len(t.schema.Cols))
	}
	out := make(Row, len(row))
	for i, v := range row {
		col := t.schema.Cols[i]
		switch {
		case v.IsNull():
			out[i] = v
		case v.K == col.Kind:
			out[i] = v
		case v.K == KindInt && col.Kind == KindFloat:
			out[i] = Float(float64(v.AsInt()))
		default:
			return nil, fmt.Errorf("tdb: table %s: column %q wants %v, got %v", t.name, col.Name, col.Kind, v.K)
		}
	}
	return out, nil
}

// Insert appends a row after validation.
func (t *Table) Insert(row Row) error {
	checked, err := t.checkRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.rows = append(t.rows, checked)
	t.mu.Unlock()
	return nil
}

// Scan calls fn for each row in insertion order until fn returns
// false. The row is shared; fn must not modify or retain it.
func (t *Table) Scan(fn func(row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Delete removes the rows for which match returns true and reports how
// many were removed. match must not retain or modify the row. On any
// error the table is left unchanged (predicates are evaluated for every
// row before anything moves).
func (t *Table) Delete(match func(row Row) (bool, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	drop := make([]bool, len(t.rows))
	removed := 0
	for i, r := range t.rows {
		m, err := match(r)
		if err != nil {
			return 0, err
		}
		if m {
			drop[i] = true
			removed++
		}
	}
	if removed == 0 {
		return 0, nil
	}
	w := 0
	for i, r := range t.rows {
		if !drop[i] {
			t.rows[w] = r
			w++
		}
	}
	t.rows = t.rows[:w]
	return removed, nil
}

// Update applies fn to the rows for which match returns true. fn
// returns the replacement row, which is validated against the schema.
// On any error the table is left unchanged.
func (t *Table) Update(match func(row Row) (bool, error), fn func(row Row) (Row, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Two-phase: compute all replacements first so a mid-way error
	// cannot leave a half-updated table.
	type change struct {
		idx int
		row Row
	}
	var changes []change
	for i, r := range t.rows {
		m, err := match(r)
		if err != nil {
			return 0, err
		}
		if !m {
			continue
		}
		replacement, err := fn(r)
		if err != nil {
			return 0, err
		}
		checked, err := t.checkRow(replacement)
		if err != nil {
			return 0, err
		}
		changes = append(changes, change{idx: i, row: checked})
	}
	for _, c := range changes {
		t.rows[c.idx] = c.row
	}
	return len(changes), nil
}

// Row returns a copy of row i.
func (t *Table) Row(i int) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("tdb: table %s: row %d out of range [0,%d)", t.name, i, len(t.rows))
	}
	out := make(Row, len(t.rows[i]))
	copy(out, t.rows[i])
	return out, nil
}
