package tdb

import (
	"fmt"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

// BenchmarkAppendBatchDurable measures the per-batch cost of the WAL
// write path against the non-durable baseline: 100-transaction batches,
// the E16 ingest shape.
func BenchmarkAppendBatchDurable(b *testing.B) {
	const txPer = 100
	mkBatch := func() []Tx {
		batch := make([]Tx, txPer)
		at := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := range batch {
			batch[i] = Tx{
				At:    at.Add(time.Duration(i) * time.Minute),
				Items: itemset.New(1, 2, itemset.Item(3+i%7), itemset.Item(100+i%11)),
			}
		}
		return batch
	}

	b.Run("none", func(b *testing.B) {
		tbl, err := NewTxTable("bench")
		if err != nil {
			b.Fatal(err)
		}
		batch := mkBatch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tbl.AppendBatchDurable(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, cfg := range []Durability{
		{Fsync: FsyncOff},
		{Fsync: FsyncInterval, SyncInterval: 25 * time.Millisecond},
		{Fsync: FsyncAlways},
	} {
		b.Run(fmt.Sprintf("fsync=%v", cfg.Fsync), func(b *testing.B) {
			db, err := OpenDurable(b.TempDir(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Kill()
			tbl, err := db.CreateTxTable("bench")
			if err != nil {
				b.Fatal(err)
			}
			batch := mkBatch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tbl.AppendBatchDurable(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
