package tdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

// CSV basket format: one transaction per record,
//
//	timestamp,item1;item2;item3
//
// with timestamps in "2006-01-02 15:04:05", "2006-01-02 15:04" or
// "2006-01-02" (UTC). A header record whose first field is "timestamp"
// (case-insensitive) is skipped. Item names are interned through the
// dictionary, so imports compose with mining and name resolution.

// csvTimeLayouts accepted on import, tried in order.
var csvTimeLayouts = []string{"2006-01-02 15:04:05", "2006-01-02 15:04", "2006-01-02", time.RFC3339}

func parseCSVTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	for _, layout := range csvTimeLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("tdb: cannot parse timestamp %q", s)
}

// ImportBaskets reads basket CSV into tbl, interning item names through
// dict. It returns the number of transactions imported; on error,
// rows already imported remain (the caller sees how many via n).
func ImportBaskets(r io.Reader, tbl *TxTable, dict *itemset.Dict) (n int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("tdb: basket csv: %w", err)
		}
		line++
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[0]), "timestamp") {
			continue // header
		}
		at, err := parseCSVTime(rec[0])
		if err != nil {
			return n, fmt.Errorf("tdb: basket csv record %d: %w", line, err)
		}
		var items []itemset.Item
		for _, name := range strings.Split(rec[1], ";") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			items = append(items, dict.Intern(name))
		}
		if len(items) == 0 {
			return n, fmt.Errorf("tdb: basket csv record %d: empty basket", line)
		}
		tbl.Append(at, itemset.New(items...))
		n++
	}
}

// ExportBaskets writes tbl in the basket CSV format, resolving item
// names through dict (unknown identifiers render as "#<id>").
func ExportBaskets(w io.Writer, tbl *TxTable, dict *itemset.Dict) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "items"}); err != nil {
		return err
	}
	var exportErr error
	tbl.Each(func(tx Tx) bool {
		names := make([]string, len(tx.Items))
		for i, it := range tx.Items {
			name := fmt.Sprintf("#%d", it)
			if dict != nil {
				if resolved, err := dict.Name(it); err == nil {
					name = resolved
				}
			}
			names[i] = name
		}
		if err := cw.Write([]string{tx.At.UTC().Format("2006-01-02 15:04:05"), strings.Join(names, ";")}); err != nil {
			exportErr = err
			return false
		}
		return true
	})
	if exportErr != nil {
		return exportErr
	}
	cw.Flush()
	return cw.Error()
}

// ImportTable reads plain CSV into a relational table. The first record
// must be a header matching the schema's column names (case-insensitive,
// any order); values are parsed according to the column types, with
// empty fields as NULL.
func ImportTable(r io.Reader, tbl *Table) (n int, err error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("tdb: table csv: missing header: %w", err)
	}
	schema := tbl.Schema()
	colFor := make([]int, len(header))
	for i, h := range header {
		idx := schema.ColIndex(strings.TrimSpace(h))
		if idx < 0 {
			return 0, fmt.Errorf("tdb: table csv: unknown column %q", h)
		}
		colFor[i] = idx
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("tdb: table csv: %w", err)
		}
		line++
		row := make(Row, len(schema.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, field := range rec {
			if i >= len(colFor) {
				return n, fmt.Errorf("tdb: table csv record %d: too many fields", line)
			}
			col := schema.Cols[colFor[i]]
			v, err := parseCSVValue(field, col.Kind)
			if err != nil {
				return n, fmt.Errorf("tdb: table csv record %d, column %q: %w", line, col.Name, err)
			}
			row[colFor[i]] = v
		}
		if err := tbl.Insert(row); err != nil {
			return n, fmt.Errorf("tdb: table csv record %d: %w", line, err)
		}
		n++
	}
}

func parseCSVValue(field string, kind Kind) (Value, error) {
	field = strings.TrimSpace(field)
	if field == "" {
		return Null(), nil
	}
	switch kind {
	case KindInt:
		var v int64
		if _, err := fmt.Sscanf(field, "%d", &v); err != nil {
			return Value{}, fmt.Errorf("bad int %q", field)
		}
		return Int(v), nil
	case KindFloat:
		var v float64
		if _, err := fmt.Sscanf(field, "%g", &v); err != nil {
			return Value{}, fmt.Errorf("bad float %q", field)
		}
		return Float(v), nil
	case KindString:
		return Str(field), nil
	case KindBool:
		switch strings.ToLower(field) {
		case "true", "t", "1", "yes":
			return Bool(true), nil
		case "false", "f", "0", "no":
			return Bool(false), nil
		default:
			return Value{}, fmt.Errorf("bad bool %q", field)
		}
	case KindTime:
		t, err := parseCSVTime(field)
		if err != nil {
			return Value{}, err
		}
		return Time(t), nil
	default:
		return Value{}, fmt.Errorf("unsupported column type %v", kind)
	}
}
