package tdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

// On-disk format. Every file is
//
//	magic(4) version(u32) body... crc32(u32 over magic..body)
//
// written atomically via a temp file and rename, so readers never see a
// half-written table. Corruption (truncation, bit flips) is detected by
// the trailing CRC before any content is trusted.
const (
	magicTable = "TDBT"
	magicTx    = "TDBX"
	magicDict  = "TDBD"
	fmtVersion = 1
)

type encoder struct {
	buf bytes.Buffer
}

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string)  { e.u32(uint32(len(s))); e.buf.WriteString(s) }

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("tdb: truncated file reading %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// writeAtomic writes body+CRC to path via a temp file and rename.
func writeAtomic(path string, body []byte) error {
	sum := crc32.ChecksumIEEE(body)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tdb: create %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(body); err == nil {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], sum)
		_, err = w.Write(crc[:])
		if err == nil {
			err = w.Flush()
		}
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tdb: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tdb: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tdb: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tdb: rename %s: %w", tmp, err)
	}
	// The rename itself lives in the directory, not the file: without
	// a directory fsync a power cut can roll the entry back to the old
	// file even though the new content was synced. The checkpoint path
	// depends on this — it truncates the WAL on the strength of these
	// renames being durable.
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("tdb: sync dir for %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and unlinks inside it survive
// power loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readChecked loads a file, validates the trailing CRC and the magic,
// and returns the body after the magic+version header.
func readChecked(path, magic string) (*decoder, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tdb: read %s: %w", path, err)
	}
	if len(raw) < len(magic)+8 {
		return nil, fmt.Errorf("tdb: %s: file too short (%d bytes)", path, len(raw))
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("tdb: %s: checksum mismatch (file corrupt)", path)
	}
	d := &decoder{b: body}
	if got := string(body[:4]); got != magic {
		return nil, fmt.Errorf("tdb: %s: bad magic %q, want %q", path, got, magic)
	}
	d.off = 4
	if v := d.u32(); v != fmtVersion {
		return nil, fmt.Errorf("tdb: %s: unsupported format version %d", path, v)
	}
	return d, nil
}

// ---------------------------------------------------------------------
// Relational tables.

func encodeValue(e *encoder, v Value) {
	e.u8(uint8(v.K))
	switch v.K {
	case KindNull:
	case KindInt, KindBool, KindTime:
		e.i64(v.i)
	case KindFloat:
		e.f64(v.f)
	case KindString:
		e.str(v.s)
	}
}

func decodeValue(d *decoder) Value {
	k := Kind(d.u8())
	switch k {
	case KindNull:
		return Null()
	case KindInt:
		return Int(d.i64())
	case KindBool:
		return Value{K: KindBool, i: d.i64()}
	case KindTime:
		return Value{K: KindTime, i: d.i64()}
	case KindFloat:
		return Float(d.f64())
	case KindString:
		return Str(d.str())
	default:
		if d.err == nil {
			d.err = fmt.Errorf("tdb: unknown value kind %d at offset %d", k, d.off)
		}
		return Null()
	}
}

// SaveTable writes t to path.
func SaveTable(t *Table, path string) error {
	e := &encoder{}
	e.buf.WriteString(magicTable)
	e.u32(fmtVersion)
	e.str(t.name)
	e.u32(uint32(len(t.schema.Cols)))
	for _, c := range t.schema.Cols {
		e.str(c.Name)
		e.u8(uint8(c.Kind))
	}
	t.mu.RLock()
	e.u64(uint64(len(t.rows)))
	for _, row := range t.rows {
		for _, v := range row {
			encodeValue(e, v)
		}
	}
	t.mu.RUnlock()
	return writeAtomic(path, e.buf.Bytes())
}

// LoadTable reads a table written by SaveTable.
func LoadTable(path string) (*Table, error) {
	d, err := readChecked(path, magicTable)
	if err != nil {
		return nil, err
	}
	name := d.str()
	ncols := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if ncols <= 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("tdb: %s: implausible column count %d", path, ncols)
	}
	cols := make([]Column, ncols)
	for i := range cols {
		cols[i] = Column{Name: d.str(), Kind: Kind(d.u8())}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("tdb: %s: %w", path, err)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, fmt.Errorf("tdb: %s: %w", path, err)
	}
	nrows := d.u64()
	for i := uint64(0); i < nrows && d.err == nil; i++ {
		row := make(Row, ncols)
		for c := range row {
			row[c] = decodeValue(d)
		}
		if d.err == nil {
			if err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("tdb: %s: %w", path, err)
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("tdb: %s: %d trailing bytes", path, len(d.b)-d.off)
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Transaction tables.

// SaveTxTable writes t to path.
func SaveTxTable(t *TxTable, path string) error {
	t.ensureSorted()
	e := &encoder{}
	e.buf.WriteString(magicTx)
	e.u32(fmtVersion)
	e.str(t.name)
	t.mu.RLock()
	e.i64(t.nextID)
	e.u64(uint64(len(t.txs)))
	for _, tx := range t.txs {
		e.i64(tx.ID)
		e.i64(tx.At.UnixNano())
		e.u32(uint32(len(tx.Items)))
		for _, it := range tx.Items {
			e.u32(uint32(it))
		}
	}
	t.mu.RUnlock()
	return writeAtomic(path, e.buf.Bytes())
}

// LoadTxTable reads a transaction table written by SaveTxTable.
func LoadTxTable(path string) (*TxTable, error) {
	d, err := readChecked(path, magicTx)
	if err != nil {
		return nil, err
	}
	name := d.str()
	nextID := d.i64()
	n := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	t, err := NewTxTable(name)
	if err != nil {
		return nil, fmt.Errorf("tdb: %s: %w", path, err)
	}
	txs := make([]Tx, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		id := d.i64()
		at := d.i64()
		ni := int(d.u32())
		if d.err != nil {
			break
		}
		if ni < 0 || d.off+4*ni > len(d.b) {
			return nil, fmt.Errorf("tdb: %s: implausible item count %d", path, ni)
		}
		items := make([]itemset.Item, ni)
		for j := range items {
			items[j] = itemset.Item(d.u32())
		}
		set := itemset.Set(items)
		if !set.Valid() {
			return nil, fmt.Errorf("tdb: %s: transaction %d has non-canonical itemset", path, id)
		}
		txs = append(txs, Tx{ID: id, At: time.Unix(0, at).UTC(), Items: set})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("tdb: %s: %d trailing bytes", path, len(d.b)-d.off)
	}
	t.txs = txs
	t.nextID = nextID
	t.sorted = false // validate ordering lazily on first use
	t.epoch = int64(len(txs))
	return t, nil
}

// ---------------------------------------------------------------------
// Item dictionaries.

// SaveDict writes a dictionary to path.
func SaveDict(dict *itemset.Dict, path string) error {
	e := &encoder{}
	e.buf.WriteString(magicDict)
	e.u32(fmtVersion)
	names := dict.SortedNames(false) // identifier order
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return writeAtomic(path, e.buf.Bytes())
}

// LoadDict reads a dictionary written by SaveDict. Identifiers are
// reassigned in the saved order, so ids are stable across reloads.
func LoadDict(path string) (*itemset.Dict, error) {
	d, err := readChecked(path, magicDict)
	if err != nil {
		return nil, err
	}
	n := int(d.u32())
	dict := itemset.NewDict()
	for i := 0; i < n && d.err == nil; i++ {
		dict.Intern(d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("tdb: %s: %d trailing bytes", path, len(d.b)-d.off)
	}
	if dict.Len() != n {
		return nil, fmt.Errorf("tdb: %s: dictionary contains duplicate names", path)
	}
	return dict, nil
}

// CopyFile is a small helper used by tests and tools to snapshot
// database files.
func CopyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
