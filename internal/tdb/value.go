// Package tdb implements the temporal database the mining system runs
// against: typed relational tables (the substitute for the Oracle
// tables the paper's IQMS prototype queried) and a time-partitioned
// transaction table that the temporal miners scan granule by granule.
// Tables persist to a simple checksummed binary format.
package tdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the column types the database supports.
type Kind int

// The supported kinds. KindNull is the type of the SQL NULL literal and
// of missing values.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
)

var kindNames = [...]string{"null", "int", "float", "string", "bool", "time"}

// String returns the lowercase type name used in CREATE TABLE.
func (k Kind) String() string {
	if k < KindNull || k > KindTime {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind parses a type name from CREATE TABLE.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "int", "integer", "bigint":
		return KindInt, nil
	case "float", "double", "real", "number":
		return KindFloat, nil
	case "string", "text", "varchar", "varchar2":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "time", "timestamp", "date", "datetime":
		return KindTime, nil
	default:
		return 0, fmt.Errorf("tdb: unknown type %q", s)
	}
}

// Value is a dynamically typed cell. The zero value is NULL.
type Value struct {
	K Kind
	i int64
	f float64
	s string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{K: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{K: KindFloat, f: v} }

// Str wraps a string.
func Str(v string) Value { return Value{K: KindString, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{K: KindBool, i: i}
}

// Time wraps an instant (stored as Unix nanoseconds, UTC).
func Time(v time.Time) Value { return Value{K: KindTime, i: v.UTC().UnixNano()} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsInt returns the integer payload; valid for KindInt and KindBool.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload of an int or float as float64.
func (v Value) AsFloat() float64 {
	if v.K == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.i != 0 }

// AsTime returns the instant payload.
func (v Value) AsTime() time.Time { return time.Unix(0, v.i).UTC() }

// Numeric reports whether v is an int or float.
func (v Value) Numeric() bool { return v.K == KindInt || v.K == KindFloat }

// Compare orders two values. NULL sorts before everything; numeric
// kinds compare by value across int/float; otherwise kinds must match
// or an error is returned.
func (v Value) Compare(o Value) (int, error) {
	switch {
	case v.IsNull() && o.IsNull():
		return 0, nil
	case v.IsNull():
		return -1, nil
	case o.IsNull():
		return 1, nil
	}
	if v.Numeric() && o.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.K != o.K {
		return 0, fmt.Errorf("tdb: cannot compare %v with %v", v.K, o.K)
	}
	switch v.K {
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindBool, KindTime:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("tdb: cannot compare values of kind %v", v.K)
	}
}

// Equal reports whether the values compare equal; incomparable values
// are unequal.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// String renders the value as SQL-ish text.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return "'" + v.AsTime().Format("2006-01-02 15:04:05") + "'"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.K))
	}
}

// Display renders the value for result tables: like String but without
// quoting strings.
func (v Value) Display() string {
	switch v.K {
	case KindString:
		return v.s
	case KindTime:
		return v.AsTime().Format("2006-01-02 15:04:05")
	default:
		return v.String()
	}
}
