package tdb

import (
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

// TestTxTableConcurrentReadWrite hammers a transaction table with one
// writer and several readers; run with -race.
func TestTxTableConcurrentReadWrite(t *testing.T) {
	tbl, _ := NewTxTable("hot")
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tbl.Append(start.AddDate(0, 0, i%30), itemset.New(itemset.Item(i%10), itemset.Item(10+i%5)))
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if span, ok := tbl.Span(timegran.Day); ok {
					tbl.GranuleCounts(timegran.Day, span)
					src := tbl.RangeSource(timegran.Day, span)
					n := 0
					src.ForEach(func(itemset.Set) { n++ })
					tbl.EachInRange(timegran.Day, span, func(Tx) bool { return true })
				}
				tbl.Len()
				tbl.Epoch()
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 2000 {
		t.Errorf("appended %d", tbl.Len())
	}
}

// TestTableConcurrentReadWrite does the same for relational tables.
func TestTableConcurrentReadWrite(t *testing.T) {
	tbl, _ := NewTable("hot", mustSchema(t))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tbl.Insert(Row{Int(int64(i)), Str("x")})
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				tbl.Scan(func(Row) bool { n++; return true })
				tbl.Len()
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 2000 {
		t.Errorf("inserted %d", tbl.Len())
	}
}

func mustSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
