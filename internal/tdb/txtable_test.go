package tdb

import (
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

func dayTx(t *testing.T, tbl *TxTable, y int, m time.Month, d int, items ...itemset.Item) {
	t.Helper()
	tbl.Append(time.Date(y, m, d, 10, 0, 0, 0, time.UTC), itemset.New(items...))
}

func buildTxTable(t *testing.T) *TxTable {
	t.Helper()
	tbl, err := NewTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately out of time order.
	dayTx(t, tbl, 2024, time.January, 3, 1, 2)
	dayTx(t, tbl, 2024, time.January, 1, 1, 2, 3)
	dayTx(t, tbl, 2024, time.January, 2, 2, 3)
	dayTx(t, tbl, 2024, time.January, 1, 1, 3)
	dayTx(t, tbl, 2024, time.February, 10, 4)
	return tbl
}

func TestTxTableSortingAndSpan(t *testing.T) {
	tbl := buildTxTable(t)
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	var last time.Time
	tbl.Each(func(tx Tx) bool {
		if tx.At.Before(last) {
			t.Fatalf("transactions not sorted: %v after %v", tx.At, last)
		}
		last = tx.At
		return true
	})
	span, ok := tbl.Span(timegran.Day)
	if !ok {
		t.Fatal("Span on non-empty table not ok")
	}
	wantLo := timegran.GranuleOf(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), timegran.Day)
	wantHi := timegran.GranuleOf(time.Date(2024, 2, 10, 0, 0, 0, 0, time.UTC), timegran.Day)
	if span.Lo != wantLo || span.Hi != wantHi {
		t.Errorf("Span = %v, want [%d,%d]", span, wantLo, wantHi)
	}
	empty, _ := NewTxTable("e")
	if _, ok := empty.Span(timegran.Day); ok {
		t.Error("Span on empty table ok")
	}
}

func TestTxTableGranuleSources(t *testing.T) {
	tbl := buildTxTable(t)
	jan1 := timegran.GranuleOf(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), timegran.Day)

	src := tbl.GranuleSource(timegran.Day, jan1)
	if src.Len() != 2 {
		t.Fatalf("Jan 1 source has %d transactions", src.Len())
	}
	f, err := apriori.Mine(src, apriori.Config{MinCount: 2, MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if f.Support(itemset.New(1, 3)) != 2 {
		t.Errorf("support({1,3}) on Jan 1 = %d, want 2", f.Support(itemset.New(1, 3)))
	}

	r := tbl.RangeSource(timegran.Day, timegran.Interval{Lo: jan1, Hi: jan1 + 2})
	if r.Len() != 4 {
		t.Errorf("Jan 1-3 range has %d transactions, want 4", r.Len())
	}

	counts := tbl.GranuleCounts(timegran.Day, timegran.Interval{Lo: jan1, Hi: jan1 + 3})
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 || counts[3] != 0 {
		t.Errorf("GranuleCounts = %v", counts)
	}

	if n := tbl.CountRange(timegran.Day, timegran.Interval{Lo: jan1, Hi: jan1}); n != 2 {
		t.Errorf("CountRange = %d", n)
	}

	set := timegran.NewIntervalSet(
		timegran.Interval{Lo: jan1, Hi: jan1},
		timegran.Interval{Lo: jan1 + 2, Hi: jan1 + 2},
	)
	ss := tbl.SetSource(timegran.Day, set)
	if ss.Len() != 3 {
		t.Errorf("SetSource has %d transactions, want 3", ss.Len())
	}
	var seen int
	ss.ForEach(func(itemset.Set) { seen++ })
	if seen != 3 {
		t.Errorf("SetSource scan visited %d", seen)
	}

	all := tbl.All()
	if all.Len() != 5 {
		t.Errorf("All has %d", all.Len())
	}
}

func TestTxTableMonthGranularity(t *testing.T) {
	tbl := buildTxTable(t)
	jan := timegran.GranuleOf(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), timegran.Month)
	feb := jan + 1
	if n := tbl.GranuleSource(timegran.Month, jan).Len(); n != 4 {
		t.Errorf("January month source has %d", n)
	}
	if n := tbl.GranuleSource(timegran.Month, feb).Len(); n != 1 {
		t.Errorf("February month source has %d", n)
	}
}

func TestTxTableAppendCanonicalises(t *testing.T) {
	tbl, _ := NewTxTable("x")
	tbl.Append(time.Now(), itemset.Set{3, 1, 1}) // invalid raw set
	tbl.Each(func(tx Tx) bool {
		if !tx.Items.Valid() {
			t.Errorf("stored non-canonical itemset %v", tx.Items)
		}
		return true
	})
}

func TestTxTableAsTable(t *testing.T) {
	tbl := buildTxTable(t)
	dict := itemset.NewDict()
	for _, n := range []string{"bread", "milk", "butter", "eggs", "jam"} {
		dict.Intern(n)
	}
	rel, err := tbl.AsTable(dict)
	if err != nil {
		t.Fatal(err)
	}
	// 3+2+2+2+1 = 10 item rows.
	if rel.Len() != 10 {
		t.Errorf("AsTable rows = %d, want 10", rel.Len())
	}
	foundJam := false
	rel.Scan(func(row Row) bool {
		if row[2].AsString() == "jam" {
			foundJam = true
		}
		return true
	})
	// item 4 = "jam" (ids 0-based: bread=0 … jam=4)
	if !foundJam {
		t.Error("item name not resolved through dict")
	}
	relNoDict, err := tbl.AsTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	sawHash := false
	relNoDict.Scan(func(row Row) bool {
		if row[2].AsString() == "#4" {
			sawHash = true
		}
		return true
	})
	if !sawHash {
		t.Error("nil dict should render #id names")
	}
}

func TestTxTableEpoch(t *testing.T) {
	tbl, err := NewTxTable("e")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d", tbl.Epoch())
	}
	dayTx(t, tbl, 2024, time.January, 1, 1, 2)
	dayTx(t, tbl, 2024, time.January, 2, 2, 3)
	if tbl.Epoch() != 2 {
		t.Errorf("epoch after two appends = %d, want 2", tbl.Epoch())
	}
	// Reads must not advance the epoch.
	tbl.Each(func(Tx) bool { return true })
	tbl.Span(timegran.Day)
	if tbl.Epoch() != 2 {
		t.Errorf("epoch moved on read: %d", tbl.Epoch())
	}
}

func TestTxTableEachInRange(t *testing.T) {
	tbl := buildTxTable(t)
	lo := timegran.GranuleOf(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC), timegran.Day)
	iv := timegran.Interval{Lo: lo, Hi: lo + 1} // Jan 1–2
	var got int
	tbl.EachInRange(timegran.Day, iv, func(tx Tx) bool {
		if g := timegran.GranuleOf(tx.At, timegran.Day); g < iv.Lo || g > iv.Hi {
			t.Errorf("transaction at granule %d outside %v", g, iv)
		}
		got++
		return true
	})
	if got != 3 {
		t.Errorf("EachInRange visited %d transactions, want 3", got)
	}
	// Early exit stops the scan.
	visits := 0
	tbl.EachInRange(timegran.Day, iv, func(Tx) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("early exit visited %d", visits)
	}
}
