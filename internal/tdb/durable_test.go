package tdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

func durOpen(t *testing.T, dir string, pol FsyncPolicy) *DB {
	t.Helper()
	db, err := OpenDurable(dir, Durability{Fsync: pol})
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return db
}

func durAt(day, hour int) time.Time {
	return time.Date(2024, 3, 1, hour, 0, 0, 0, time.UTC).AddDate(0, 0, day)
}

func collectTxs(t *TxTable) []Tx {
	var out []Tx
	t.Each(func(tx Tx) bool {
		out = append(out, tx)
		return true
	})
	return out
}

func sameTxs(t *testing.T, tag string, got, want []Tx) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d transactions, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || !got[i].At.Equal(want[i].At) || got[i].Items.Key() != want[i].Items.Key() {
			t.Fatalf("%s: tx %d = {%d %v %v}, want {%d %v %v}",
				tag, i, got[i].ID, got[i].At, got[i].Items, want[i].ID, want[i].At, want[i].Items)
		}
	}
}

// Acked appends must survive a kill (no checkpoint) under every fsync
// policy. always/off write through, so the kill can strike anywhere;
// interval buffers in user space, so the test pins the kill to a legal
// crash point just after a flush (SyncWAL) — inside the flush window
// the policy is allowed to lose the buffered tail.
func TestDurableKillRecover(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := durOpen(t, dir, pol)
			tbl, err := db.CreateTxTable("baskets")
			if err != nil {
				t.Fatal(err)
			}
			tbl.Append(durAt(0, 9), itemset.New(1, 2))
			tbl.AppendBatch([]Tx{
				{At: durAt(0, 10), Items: itemset.New(2, 3)},
				{At: durAt(1, 11), Items: itemset.New(1, 3, 5)},
			})
			if _, _, err := tbl.AppendBatchDurable([]Tx{{At: durAt(2, 8), Items: itemset.New(7)}}); err != nil {
				t.Fatalf("AppendBatchDurable: %v", err)
			}
			want := collectTxs(tbl)
			if pol == FsyncInterval {
				if err := db.SyncWAL(); err != nil {
					t.Fatalf("SyncWAL: %v", err)
				}
			}
			db.Kill()

			db2 := durOpen(t, dir, pol)
			tbl2, ok := db2.TxTable("baskets")
			if !ok {
				t.Fatal("table lost across kill: create record not replayed")
			}
			sameTxs(t, "recovered", collectTxs(tbl2), want)
			rec := db2.Recovery()
			if rec.AppendedTx != 4 {
				t.Fatalf("Recovery().AppendedTx = %d, want 4", rec.AppendedTx)
			}
			if rec.TornBytes != 0 {
				t.Fatalf("clean kill left %d torn bytes", rec.TornBytes)
			}
			db2.Kill()
		})
	}
}

// A checkpoint truncates the WAL; the reopened database replays nothing
// and the legacy whole-file form is superseded by the segment dir.
func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	for i := 0; i < 50; i++ {
		tbl.Append(durAt(i/10, 9), itemset.New(itemset.Item(i%7), 99))
	}
	st, err := db.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st.SegmentsWritten == 0 || st.Tables != 1 {
		t.Fatalf("CheckpointStats = %+v, want segments written for 1 table", st)
	}
	if st.WALTruncated == 0 {
		t.Fatalf("checkpoint truncated no WAL bytes; log was not emptied")
	}
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err != nil || fi.Size() != walHdrSize {
		t.Fatalf("post-checkpoint WAL size = %v (err %v), want bare header", fi.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(dir, "baskets"+segDirSuffix)); err != nil {
		t.Fatalf("checkpoint wrote no segment dir: %v", err)
	}
	want := collectTxs(tbl)
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	if rec := db2.Recovery(); rec.Records != 0 || rec.AppendedTx != 0 {
		t.Fatalf("post-checkpoint reopen replayed %+v, want nothing", rec)
	}
	tbl2, _ := db2.TxTable("baskets")
	sameTxs(t, "checkpointed", collectTxs(tbl2), want)
	db2.Kill()
}

// Close = checkpoint + release: a clean shutdown leaves nothing to
// replay, and appends after reopen continue the ID sequence.
func TestDurableCloseThenReopen(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncInterval)
	tbl, _ := db.CreateTxTable("baskets")
	tbl.Append(durAt(0, 9), itemset.New(1))
	tbl.Append(durAt(0, 10), itemset.New(2))
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2 := durOpen(t, dir, FsyncInterval)
	if rec := db2.Recovery(); rec.Records != 0 {
		t.Fatalf("clean close still replayed %+v", rec)
	}
	tbl2, _ := db2.TxTable("baskets")
	if id := tbl2.Append(durAt(1, 9), itemset.New(3)); id != 2 {
		t.Fatalf("post-reopen append got ID %d, want 2", id)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Directories written by the non-durable path load under the durable
// engine (the .txn file is the checkpoint), and after one checkpoint
// the plain loader refuses the directory instead of showing a subset.
func TestDurableLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	plain, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := plain.CreateTxTable("baskets")
	tbl.Append(durAt(0, 9), itemset.New(1, 2))
	tbl.Append(durAt(1, 9), itemset.New(2, 3))
	if err := plain.Flush(); err != nil {
		t.Fatal(err)
	}

	db := durOpen(t, dir, FsyncOff)
	dtbl, ok := db.TxTable("baskets")
	if !ok {
		t.Fatal("legacy .txn table not loaded by durable open")
	}
	if dtbl.Len() != 2 {
		t.Fatalf("legacy table has %d txs, want 2", dtbl.Len())
	}
	dtbl.Append(durAt(2, 9), itemset.New(5))
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "baskets"+extTx)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint left the legacy .txn behind (err %v)", err)
	}
	db.Kill()

	if _, err := Open(dir); err == nil {
		t.Fatal("plain Open accepted a WAL-backed directory")
	}

	db2 := durOpen(t, dir, FsyncOff)
	tbl2, _ := db2.TxTable("baskets")
	if tbl2.Len() != 3 {
		t.Fatalf("migrated table has %d txs, want 3", tbl2.Len())
	}
	db2.Kill()
}

// Fault injection: a write torn mid-record recovers to the longest
// valid prefix and the table keeps working afterwards.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	for i := 0; i < 5; i++ {
		tbl.Append(durAt(i, 9), itemset.New(itemset.Item(i), 50))
	}
	want := collectTxs(tbl)
	db.Kill()

	path := filepath.Join(dir, walFile)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2 := durOpen(t, dir, FsyncOff)
	tbl2, _ := db2.TxTable("baskets")
	got := collectTxs(tbl2)
	sameTxs(t, "torn", got, want[:4])
	if rec := db2.Recovery(); rec.TornBytes == 0 {
		t.Fatalf("Recovery() reports no torn bytes after truncation: %+v", rec)
	}
	// The invalid tail was truncated away: new appends extend the valid
	// prefix and survive the next recovery.
	tbl2.Append(durAt(9, 9), itemset.New(42))
	db2.Kill()
	db3 := durOpen(t, dir, FsyncOff)
	tbl3, _ := db3.TxTable("baskets")
	if n := tbl3.Len(); n != 5 {
		t.Fatalf("after torn recovery + append + kill: %d txs, want 5", n)
	}
	db3.Kill()
}

// Fault injection: a bit flip in the record region fails that record's
// CRC and ends the valid prefix there.
func TestDurableBitFlip(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	for i := 0; i < 5; i++ {
		tbl.Append(durAt(i, 9), itemset.New(itemset.Item(i), 50))
	}
	want := collectTxs(tbl)
	db.Kill()

	path := filepath.Join(dir, walFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40 // inside the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := durOpen(t, dir, FsyncOff)
	tbl2, _ := db2.TxTable("baskets")
	sameTxs(t, "bitflip", collectTxs(tbl2), want[:4])
	db2.Kill()
}

// Fault injection: a duplicated tail (the same records appended twice,
// as a misdirected retry or block-level duplication would leave) is
// absorbed by ID-watermark idempotence, not double-applied.
func TestDurableDuplicateTail(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	tbl.Append(durAt(0, 9), itemset.New(3, 4))
	tbl.Append(durAt(1, 9), itemset.New(4, 5))
	want := collectTxs(tbl)
	db.Kill()

	path := filepath.Join(dir, walFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dup := append(raw, raw[walHdrSize:]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := durOpen(t, dir, FsyncOff)
	tbl2, _ := db2.TxTable("baskets")
	sameTxs(t, "dup", collectTxs(tbl2), want)
	if rec := db2.Recovery(); rec.SkippedTx != 2 {
		t.Fatalf("Recovery().SkippedTx = %d, want 2 (the duplicated appends)", rec.SkippedTx)
	}
	db2.Kill()
}

// Fault injection: an empty WAL (bare header) and a torn header (too
// short to hold one) both open cleanly.
func TestDurableEmptyAndTornHeader(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		dir := t.TempDir()
		durOpen(t, dir, FsyncOff).Kill() // leaves a bare-header WAL
		db := durOpen(t, dir, FsyncOff)
		if rec := db.Recovery(); rec.Records != 0 || rec.TornBytes != 0 {
			t.Fatalf("empty WAL replayed %+v", rec)
		}
		db.Kill()
	})
	t.Run("torn-header", func(t *testing.T) {
		dir := t.TempDir()
		durOpen(t, dir, FsyncOff).Kill()
		if err := os.Truncate(filepath.Join(dir, walFile), walHdrSize-7); err != nil {
			t.Fatal(err)
		}
		db := durOpen(t, dir, FsyncOff)
		if rec := db.Recovery(); rec.Records != 0 || rec.TornBytes != walHdrSize-7 {
			t.Fatalf("torn header: recovery = %+v, want %d torn bytes", rec, walHdrSize-7)
		}
		// The engine recreated a usable log.
		tbl, _ := db.CreateTxTable("baskets")
		tbl.Append(durAt(0, 9), itemset.New(1))
		db.Kill()
		db2 := durOpen(t, dir, FsyncOff)
		if tbl2, ok := db2.TxTable("baskets"); !ok || tbl2.Len() != 1 {
			t.Fatal("append after torn-header recovery lost")
		}
		db2.Kill()
	})
}

// Fault injection: a WAL whose epoch predates the checkpoint manifest
// (crash between manifest write and WAL reset) is discarded — its
// contents are already inside the checkpoint.
func TestDurableStaleEpochWAL(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	tbl.Append(durAt(0, 9), itemset.New(1, 2))
	tbl.Append(durAt(1, 9), itemset.New(2, 3))
	want := collectTxs(tbl)

	// Stash the epoch-0 WAL, checkpoint (manifest moves to epoch 1, WAL
	// resets), then put the stale WAL back: exactly the state a crash
	// after the manifest rename but before the WAL reset leaves.
	path := filepath.Join(dir, walFile)
	stale, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Kill()
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := durOpen(t, dir, FsyncOff)
	if rec := db2.Recovery(); rec.Records != 0 {
		t.Fatalf("stale-epoch WAL was replayed: %+v", rec)
	}
	tbl2, _ := db2.TxTable("baskets")
	sameTxs(t, "stale", collectTxs(tbl2), want)
	db2.Kill()
}

// Create and drop are WAL-logged: a table created, filled and dropped
// between checkpoints stays dropped after recovery, and a same-named
// successor keeps only its own data.
func TestDurableCreateDropReplay(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("scratch")
	tbl.Append(durAt(0, 9), itemset.New(1))
	if dropped, err := db.Drop("scratch"); !dropped || err != nil {
		t.Fatalf("Drop = %v, %v", dropped, err)
	}
	tbl2, err := db.CreateTxTable("scratch")
	if err != nil {
		t.Fatal(err)
	}
	tbl2.Append(durAt(5, 9), itemset.New(9))
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	got, ok := db2.TxTable("scratch")
	if !ok {
		t.Fatal("recreated table lost")
	}
	txs := collectTxs(got)
	if len(txs) != 1 || txs[0].Items.Key() != itemset.New(9).Key() {
		t.Fatalf("recreated table holds %v, want only the post-recreate append", txs)
	}
	db2.Kill()
}

// Dictionary growth is WAL-logged in intern order, so recovery
// reproduces the exact name↔id mapping without a dict file flush.
func TestDurableDictReplay(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")
	a := db.Dict().Intern("ale")
	b := db.Dict().Intern("bread")
	tbl.Append(durAt(0, 9), itemset.New(a, b))
	c := db.Dict().Intern("cheese")
	tbl.Append(durAt(1, 9), itemset.New(b, c))
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	for _, want := range []struct {
		name string
		id   itemset.Item
	}{{"ale", a}, {"bread", b}, {"cheese", c}} {
		got, ok := db2.Dict().Lookup(want.name)
		if !ok || got != want.id {
			t.Fatalf("dict after recovery: %q = %d (ok %v), want %d", want.name, got, ok, want.id)
		}
	}
	db2.Kill()
}

// Concurrent appenders with checkpoints firing mid-traffic: every
// acked append must be present after a kill + recovery, exactly once.
func TestDurableConcurrentAppendCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, _ := db.CreateTxTable("baskets")

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%3 == 0 {
					tbl.Append(durAt(i%28, w%24), itemset.New(itemset.Item(w), itemset.Item(100+i%11)))
				} else {
					tbl.AppendBatch([]Tx{
						{At: durAt(i%28, w%24), Items: itemset.New(itemset.Item(w), 200)},
						{At: durAt((i+1)%28, w%24), Items: itemset.New(itemset.Item(w), 201)},
					})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint under traffic: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	wantLen := tbl.Len()
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	tbl2, _ := db2.TxTable("baskets")
	if got := tbl2.Len(); got != wantLen {
		t.Fatalf("recovered %d txs, want %d", got, wantLen)
	}
	// IDs are unique and dense: no append applied twice or lost.
	seen := make(map[int64]bool, wantLen)
	tbl2.Each(func(tx Tx) bool {
		if seen[tx.ID] {
			t.Errorf("duplicate tx ID %d after recovery", tx.ID)
			return false
		}
		seen[tx.ID] = true
		return true
	})
	for id := int64(0); id < int64(wantLen); id++ {
		if !seen[id] {
			t.Fatalf("tx ID %d missing after recovery", id)
		}
	}
	db2.Kill()
}

// Checkpoints pick the segment writer's incremental path: an append-only
// table rewrites the touched tail segment, not the whole history.
func TestDurableCheckpointIncremental(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Durability{
		Fsync:   FsyncOff,
		Segment: SegmentConfig{Granularity: timegran.Day, Width: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTxTable("baskets")
	for day := 0; day < 28; day++ {
		tbl.Append(durAt(day, 9), itemset.New(itemset.Item(day%5)))
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tbl.Append(durAt(27, 15), itemset.New(7)) // touches only the last segment
	st, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsWritten != 1 || st.SegmentsSkipped < 3 {
		t.Fatalf("incremental checkpoint wrote %d / skipped %d segments, want 1 written, ≥3 skipped", st.SegmentsWritten, st.SegmentsSkipped)
	}
	db.Kill()
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "ALWAYS": FsyncAlways,
		"interval": FsyncInterval, " off ": FsyncOff, "none": FsyncOff,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

// TestEncodeAppendFrameEquivalence pins the single-alloc hot-path
// framing to the reference encode-then-frame pair byte for byte, so
// the two cannot drift apart.
func TestEncodeAppendFrameEquivalence(t *testing.T) {
	for _, txs := range [][]Tx{
		nil,
		{{At: durAt(0, 9), Items: itemset.New(1, 2, 3)}},
		{
			{At: durAt(1, 1), Items: itemset.New(7)},
			{At: durAt(2, 23), Items: itemset.New(1, 2, 3, 4, 5, 6)},
			{At: durAt(3, 0), Items: itemset.Set{}},
		},
	} {
		want := frameRecord(encodeAppendRecord("baskets", 41, txs))
		got := encodeAppendFrame("baskets", 41, txs)
		if !bytes.Equal(got, want) {
			t.Fatalf("encodeAppendFrame diverges for %d txs:\n got %x\nwant %x", len(txs), got, want)
		}
	}
}

// FuzzWALDecode: arbitrary bytes must never panic the record scanner,
// the valid prefix must stay in bounds, and re-decoding exactly that
// prefix must be a fixed point.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	seed := func(payloads ...[]byte) []byte {
		var out []byte
		for _, p := range payloads {
			out = append(out, frameRecord(p)...)
		}
		return out
	}
	f.Add(seed(encodeAppendRecord("baskets", 0, []Tx{{At: durAt(0, 9), Items: itemset.New(1, 2)}})))
	f.Add(seed(
		encodeDictRecord(0, []string{"ale", "bread"}),
		encodeCreateRecord("scratch"),
		encodeDropRecord("scratch"),
	))
	corrupt := seed(encodeAppendRecord("x", 3, []Tx{{At: durAt(1, 1), Items: itemset.New(4)}}))
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := decodeWALRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of range [0, %d]", valid, len(data))
		}
		recs2, valid2 := decodeWALRecords(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("re-decoding the valid prefix gave %d records / offset %d, want %d / %d",
				len(recs2), valid2, len(recs), valid)
		}
	})
}

// A batch whose encoding exceeds the reader's maxWALRecord cap must be
// split across append records at write time: one oversized record would
// be acked as durable and then treated as corruption at recovery,
// silently discarding the batch and everything logged after it.
func TestDurableOversizedBatchSplitRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("writes and replays a >64MiB WAL")
	}
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	tbl, err := db.CreateTxTable("big")
	if err != nil {
		t.Fatal(err)
	}
	// 3000 transactions sharing one 6000-item set: ~72MiB encoded, past
	// the 64MiB cap. The set is shared in memory but encoded per tx.
	items := make([]itemset.Item, 6000)
	for i := range items {
		items[i] = itemset.Item(i)
	}
	set := itemset.Set(items)
	const nTx = 3000
	txs := make([]Tx, nTx)
	for i := range txs {
		txs[i] = Tx{At: durAt(i/24, i%24), Items: set}
	}
	if _, _, err := tbl.AppendBatchDurable(txs); err != nil {
		t.Fatalf("AppendBatchDurable: %v", err)
	}
	// A marker append after the big batch: the old bug also discarded
	// every record following the oversized one.
	markerID := tbl.Append(durAt(200, 1), itemset.New(1, 2, 3))
	db.Kill()

	_, recs, _, torn, err := readWALFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("WAL has %d torn bytes; the writer emitted a record the reader rejects", torn)
	}
	appends := 0
	for _, rec := range recs {
		if rec.typ == walRecAppend {
			appends++
		}
	}
	if appends < 3 {
		t.Fatalf("batch was written as %d append records, want >= 3 (split at the %d-byte cap)", appends, maxWALRecord)
	}

	db2 := durOpen(t, dir, FsyncOff)
	got, ok := db2.TxTable("big")
	if !ok {
		t.Fatal("table lost")
	}
	if got.Len() != nTx+1 {
		t.Fatalf("recovered %d transactions, want %d", got.Len(), nTx+1)
	}
	rec := collectTxs(got)
	for i := 0; i < nTx; i++ {
		if rec[i].ID != int64(i) || rec[i].Items.Len() != len(items) {
			t.Fatalf("tx %d recovered as {ID %d, %d items}, want {ID %d, %d items}",
				i, rec[i].ID, rec[i].Items.Len(), i, len(items))
		}
	}
	if last := rec[nTx]; last.ID != markerID || last.Items.Key() != itemset.New(1, 2, 3).Key() {
		t.Fatalf("marker append after the big batch recovered as %v", last)
	}
	db2.Kill()
}

// Dropping a table that the newest checkpoint holds, with appends in
// the WAL, then crashing before the next checkpoint: the drop record
// must hit the platter before the table's files are removed (even under
// the interval policy, whose commits buffer in user space), and replay
// must tolerate the appends that precede the drop — their table's
// checkpoint files are legitimately gone.
func TestDurableDropAfterCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	// An hour-long sync interval: nothing reaches the file unless a sync
	// is forced, so the test proves Drop itself carries the barrier.
	db, err := OpenDurable(dir, Durability{Fsync: FsyncInterval, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := db.CreateTxTable("doomed")
	if err != nil {
		t.Fatal(err)
	}
	doomed.Append(durAt(0, 9), itemset.New(1, 2))
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic, all buffered: appends into the doomed
	// table, plus a surviving table replay must still reconstruct.
	doomed.Append(durAt(1, 9), itemset.New(3))
	doomed.Append(durAt(2, 9), itemset.New(4))
	keep, err := db.CreateTxTable("keep")
	if err != nil {
		t.Fatal(err)
	}
	keep.Append(durAt(3, 9), itemset.New(5, 6))
	if dropped, err := db.Drop("doomed"); !dropped || err != nil {
		t.Fatalf("Drop = %v, %v", dropped, err)
	}
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	if _, ok := db2.TxTable("doomed"); ok {
		t.Fatal("dropped table resurrected by recovery")
	}
	got, ok := db2.TxTable("keep")
	if !ok {
		t.Fatal("surviving table lost: replay did not get past the dropped table's appends")
	}
	txs := collectTxs(got)
	if len(txs) != 1 || txs[0].Items.Key() != itemset.New(5, 6).Key() {
		t.Fatalf("surviving table recovered as %v", txs)
	}
	if sk := db2.Recovery().SkippedTx; sk != 2 {
		t.Fatalf("recovery skipped %d transactions, want the 2 destined for the dropped table", sk)
	}
	db2.Kill()
}

// Concurrent create+append per goroutine: the create record must reach
// the WAL before the table is visible to appenders, or replay meets an
// append that precedes its table's create. Run under -race this also
// guards the publish ordering itself.
func TestDurableConcurrentCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	db := durOpen(t, dir, FsyncOff)
	const nTables = 8
	var wg sync.WaitGroup
	errs := make([]error, nTables)
	for i := 0; i < nTables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			tbl, err := db.CreateTxTable(name)
			if err != nil {
				errs[i] = err
				return
			}
			for j := 0; j < 10; j++ {
				tbl.Append(durAt(j, i%24), itemset.New(itemset.Item(i), itemset.Item(nTables+j)))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("create t%d: %v", i, err)
		}
	}
	db.Kill()

	db2 := durOpen(t, dir, FsyncOff)
	for i := 0; i < nTables; i++ {
		tbl, ok := db2.TxTable(fmt.Sprintf("t%d", i))
		if !ok {
			t.Fatalf("table t%d lost", i)
		}
		if tbl.Len() != 10 {
			t.Fatalf("table t%d recovered %d transactions, want 10", i, tbl.Len())
		}
	}
	db2.Kill()
}
