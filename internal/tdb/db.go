package tdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
)

// File extensions used inside a database directory.
const (
	extTable = ".rel"
	extTx    = ".txn"
	dictFile = "items.dict"
)

// DB is a named collection of relational tables and transaction
// tables, sharing one item dictionary. With a directory it persists;
// with an empty dir it is memory-only. It is the substitute for the
// Oracle instance behind the paper's IQMS prototype.
type DB struct {
	dir string

	// dur is the WAL-backed storage engine (nil when the database was
	// opened with Open or NewMemDB). See durable.go.
	dur *durability

	mu       sync.RWMutex
	tables   map[string]*Table
	txtables map[string]*TxTable
	dict     *itemset.Dict
}

// NewMemDB returns an in-memory database.
func NewMemDB() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		txtables: make(map[string]*TxTable),
		dict:     itemset.NewDict(),
	}
}

// Open loads (or initialises) a database directory. Files that fail
// their checksum abort the open with a descriptive error rather than
// silently dropping data.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tdb: open %s: %w", dir, err)
	}
	// A directory run under the WAL engine holds state (segment dirs,
	// WAL tail) this loader would silently ignore — refuse rather than
	// present a stale subset and let a later Flush clobber the rest.
	for _, marker := range []string{checkpointFile, walFile} {
		if _, err := os.Stat(filepath.Join(dir, marker)); err == nil {
			return nil, fmt.Errorf("tdb: %s holds a WAL-backed database (found %s); open it durably (-wal)", dir, marker)
		}
	}
	db := NewMemDB()
	db.dir = dir

	dictPath := filepath.Join(dir, dictFile)
	if _, err := os.Stat(dictPath); err == nil {
		dict, err := LoadDict(dictPath)
		if err != nil {
			return nil, err
		}
		db.dict = dict
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tdb: open %s: %w", dir, err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		switch {
		case strings.HasSuffix(ent.Name(), extTable):
			t, err := LoadTable(path)
			if err != nil {
				return nil, err
			}
			db.tables[strings.ToLower(t.Name())] = t
		case strings.HasSuffix(ent.Name(), extTx):
			t, err := LoadTxTable(path)
			if err != nil {
				return nil, err
			}
			db.txtables[strings.ToLower(t.Name())] = t
		}
	}
	return db, nil
}

// Dict returns the shared item dictionary.
func (db *DB) Dict() *itemset.Dict { return db.dict }

// Dir returns the backing directory ("" for memory-only).
func (db *DB) Dir() string { return db.dir }

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("tdb: empty table name")
	}
	for _, r := range name {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return fmt.Errorf("tdb: table name %q contains %q; use letters, digits and underscores", name, r)
		}
	}
	return nil
}

// tableFreeLocked reports an error if key names an existing table of
// either kind, phrased for the kind being created. Caller holds db.mu.
func (db *DB) tableFreeLocked(name, key string, forTx bool) error {
	if _, ok := db.txtables[key]; ok {
		if forTx {
			return fmt.Errorf("tdb: transaction table %q already exists", name)
		}
		return fmt.Errorf("tdb: a transaction table named %q already exists", name)
	}
	if _, ok := db.tables[key]; ok {
		if forTx {
			return fmt.Errorf("tdb: a relational table named %q already exists", name)
		}
		return fmt.Errorf("tdb: table %q already exists", name)
	}
	return nil
}

// CreateTable adds an empty relational table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tableFreeLocked(name, key, false); err != nil {
		return nil, err
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.tables[key] = t
	return t, nil
}

// CreateTxTable adds an empty transaction table. On a durable database
// the create record is committed to the WAL before the table becomes
// visible: publishing first would let a concurrent goroutine find the
// table and win the log with an append record that precedes its create,
// a WAL replay refuses to apply. db.mu is held across the log write, so
// the visibility flip and the record are one atomic step.
func (db *DB) CreateTxTable(name string) (*TxTable, error) {
	d := db.dur
	if d != nil {
		d.gate.RLock()
		defer d.gate.RUnlock()
	}
	if err := validName(name); err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tableFreeLocked(name, key, true); err != nil {
		return nil, err
	}
	t, err := NewTxTable(name)
	if err != nil {
		return nil, err
	}
	if d != nil {
		if err := d.logTableOp(encodeCreateRecord(name)); err != nil {
			return nil, err
		}
	}
	t.dur = d
	db.txtables[key] = t
	return t, nil
}

// createTxTableNoLog is CreateTxTable minus gate and WAL record; WAL
// replay uses it directly.
func (db *DB) createTxTableNoLog(name string) (*TxTable, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tableFreeLocked(name, key, true); err != nil {
		return nil, err
	}
	t, err := NewTxTable(name)
	if err != nil {
		return nil, err
	}
	t.dur = db.dur
	db.txtables[key] = t
	return t, nil
}

// Table looks a relational table up by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TxTable looks a transaction table up by name (case-insensitive).
func (db *DB) TxTable(name string) (*TxTable, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.txtables[strings.ToLower(name)]
	return t, ok
}

// RegisterTable adds an existing relational table (used by loaders and
// by AsTable materialisation).
func (db *DB) RegisterTable(t *Table) error {
	key := strings.ToLower(t.Name())
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("tdb: table %q already exists", t.Name())
	}
	db.tables[key] = t
	return nil
}

// Drop removes a table of either kind; it reports whether anything was
// removed. Persisted files are deleted as well. On a durable database a
// transaction-table drop is WAL-first: the drop record reaches the
// platter — synced regardless of fsync policy — before any file is
// removed. Removing first would open a crash window in which the
// checkpoint has lost the table's files while the WAL still holds its
// append records, and recovery refuses such a log; after a logged drop,
// replay simply re-drops whatever files survive.
func (db *DB) Drop(name string) (bool, error) {
	d := db.dur
	if d != nil {
		d.gate.RLock()
		defer d.gate.RUnlock()
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, isTx := db.txtables[key]; isTx && d != nil {
		if err := d.logTableOpSynced(encodeDropRecord(key)); err != nil {
			return false, err
		}
	}
	return db.dropLocked(key)
}

// dropNoLog is Drop minus gate and WAL record; WAL replay uses it
// directly.
func (db *DB) dropNoLog(name string) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dropLocked(strings.ToLower(name))
}

func (db *DB) dropLocked(key string) (bool, error) {
	if _, ok := db.tables[key]; ok {
		delete(db.tables, key)
		if db.dir != "" {
			if err := removeIfExists(filepath.Join(db.dir, key+extTable)); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	if _, ok := db.txtables[key]; ok {
		delete(db.txtables, key)
		if db.dir != "" {
			if err := removeIfExists(filepath.Join(db.dir, key+extTx)); err != nil {
				return true, err
			}
			if err := os.RemoveAll(filepath.Join(db.dir, key+segDirSuffix)); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	return false, nil
}

func removeIfExists(path string) error {
	err := os.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Names lists all table names (both kinds), sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables)+len(db.txtables))
	for _, t := range db.tables {
		out = append(out, t.Name())
	}
	for _, t := range db.txtables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// IsTxTable reports whether name refers to a transaction table.
func (db *DB) IsTxTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.txtables[strings.ToLower(name)]
	return ok
}

// Flush persists every table and the dictionary. On a durable database
// it is a checkpoint (segment files + WAL truncation); memory-only
// databases return an error.
func (db *DB) Flush() error {
	if db.dir == "" {
		return fmt.Errorf("tdb: Flush on a memory-only database")
	}
	if db.dur != nil {
		_, err := db.Checkpoint()
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := SaveDict(db.dict, filepath.Join(db.dir, dictFile)); err != nil {
		return err
	}
	for key, t := range db.tables {
		if err := SaveTable(t, filepath.Join(db.dir, key+extTable)); err != nil {
			return err
		}
	}
	for key, t := range db.txtables {
		if err := SaveTxTable(t, filepath.Join(db.dir, key+extTx)); err != nil {
			return err
		}
	}
	return nil
}
