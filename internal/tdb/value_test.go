package tdb

import (
	"testing"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null not null")
	}
	if Int(7).AsInt() != 7 || Int(7).K != KindInt {
		t.Error("Int broken")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float broken")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("int AsFloat broken")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str broken")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool broken")
	}
	at := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	if !Time(at).AsTime().Equal(at) {
		t.Error("Time round trip broken")
	}
	if !Int(1).Numeric() || !Float(1).Numeric() || Str("").Numeric() {
		t.Error("Numeric classification broken")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Float(2.5), 1},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Str("a").Compare(Int(1)); err == nil {
		t.Error("string vs int compared")
	}
	if Str("a").Equal(Int(1)) {
		t.Error("incomparable values equal")
	}
}

func TestValueStrings(t *testing.T) {
	if Int(5).String() != "5" {
		t.Error("int String")
	}
	if Str("o'brien").String() != "'o''brien'" {
		t.Errorf("string quoting: %q", Str("o'brien").String())
	}
	if Bool(true).String() != "TRUE" || Bool(false).String() != "FALSE" {
		t.Error("bool String")
	}
	if Null().String() != "NULL" {
		t.Error("null String")
	}
	if Str("x").Display() != "x" {
		t.Error("string Display keeps quotes")
	}
	at := time.Date(2024, 6, 1, 12, 30, 0, 0, time.UTC)
	if Time(at).Display() != "2024-06-01 12:30:00" {
		t.Errorf("time Display = %q", Time(at).Display())
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"float": KindFloat, "NUMBER": KindFloat,
		"varchar2": KindString, "text": KindString,
		"bool": KindBool, "timestamp": KindTime, "date": KindTime,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v,%v want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("blob accepted")
	}
	if KindInt.String() != "int" || Kind(42).String() == "" {
		t.Error("Kind.String broken")
	}
}
