package tdb

import (
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

func TestImportBaskets(t *testing.T) {
	input := `timestamp,items
2024-01-01 09:30,bread;milk
2024-01-01,bread
2024-01-02 10:00:00,milk; butter ;bread
`
	tbl, _ := NewTxTable("b")
	dict := itemset.NewDict()
	n, err := ImportBaskets(strings.NewReader(input), tbl, dict)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tbl.Len() != 3 {
		t.Fatalf("imported %d, table has %d", n, tbl.Len())
	}
	if dict.Len() != 3 {
		t.Errorf("dict has %d names", dict.Len())
	}
	var last Tx
	tbl.Each(func(tx Tx) bool { last = tx; return true })
	if last.Items.Len() != 3 {
		t.Errorf("last basket = %v", dict.Names(last.Items))
	}
	if !last.At.Equal(time.Date(2024, 1, 2, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("last timestamp = %v", last.At)
	}
}

func TestImportBasketsErrors(t *testing.T) {
	cases := []string{
		"notadate,bread\n",
		"2024-01-01,\n",
		"2024-01-01,;;\n",
		"2024-01-01\n", // wrong arity
	}
	for _, in := range cases {
		tbl, _ := NewTxTable("b")
		if _, err := ImportBaskets(strings.NewReader(in), tbl, itemset.NewDict()); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	// Empty input imports zero rows without error.
	tbl, _ := NewTxTable("b")
	n, err := ImportBaskets(strings.NewReader(""), tbl, itemset.NewDict())
	if err != nil || n != 0 {
		t.Errorf("empty input: %d, %v", n, err)
	}
}

func TestBasketsRoundTrip(t *testing.T) {
	tbl := buildTxTable(t)
	dict := itemset.NewDict()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		dict.Intern(n)
	}
	var sb strings.Builder
	if err := ExportBaskets(&sb, tbl, dict); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := NewTxTable("copy")
	dict2 := itemset.NewDict()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		dict2.Intern(n) // same ids
	}
	n, err := ImportBaskets(strings.NewReader(sb.String()), tbl2, dict2)
	if err != nil {
		t.Fatal(err)
	}
	if n != tbl.Len() {
		t.Fatalf("round trip imported %d of %d", n, tbl.Len())
	}
	var orig, copied []Tx
	tbl.Each(func(tx Tx) bool { orig = append(orig, tx); return true })
	tbl2.Each(func(tx Tx) bool { copied = append(copied, tx); return true })
	for i := range orig {
		if !orig[i].Items.Equal(copied[i].Items) {
			t.Errorf("tx %d items %v vs %v", i, orig[i].Items, copied[i].Items)
		}
		// Seconds precision survives; the fixture uses whole minutes.
		if !orig[i].At.Truncate(time.Second).Equal(copied[i].At) {
			t.Errorf("tx %d time %v vs %v", i, orig[i].At, copied[i].At)
		}
	}
}

func TestExportBasketsUnknownID(t *testing.T) {
	tbl, _ := NewTxTable("b")
	tbl.Append(time.Unix(0, 0), itemset.New(42))
	var sb strings.Builder
	if err := ExportBaskets(&sb, tbl, itemset.NewDict()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#42") {
		t.Errorf("unknown id not rendered: %q", sb.String())
	}
}

func TestImportTable(t *testing.T) {
	tbl, _ := NewTable("sales", salesSchema(t))
	input := `product,id,amount,at
bread,1,2.5,2024-01-01
milk,2,,2024-01-02 09:30
,3,1.0,
`
	n, err := ImportTable(strings.NewReader(input), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tbl.Len() != 3 {
		t.Fatalf("imported %d", n)
	}
	row, _ := tbl.Row(0)
	if row[0].AsInt() != 1 || row[2].AsString() != "bread" || row[1].AsFloat() != 2.5 {
		t.Errorf("row 0 = %v", row)
	}
	row, _ = tbl.Row(1)
	if !row[1].IsNull() {
		t.Errorf("empty field not NULL: %v", row[1])
	}
	row, _ = tbl.Row(2)
	if !row[3].IsNull() || !row[2].IsNull() {
		t.Errorf("row 2 nulls wrong: %v", row)
	}
}

func TestImportTableErrors(t *testing.T) {
	schema := salesSchema(t)
	cases := []string{
		"",                           // missing header
		"nope,id\n1,2\n",             // unknown column
		"id\nxyz\n",                  // bad int
		"amount\nxyz\n",              // bad float
		"at\nnot-a-date\n",           // bad time
		"id,amount\n1,2.0,3.0,4.0\n", // too many fields is a csv arity error
	}
	for _, in := range cases {
		tbl, _ := NewTable("sales", schema)
		if _, err := ImportTable(strings.NewReader(in), tbl); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestImportTableBool(t *testing.T) {
	schema, _ := NewSchema(Column{Name: "flag", Kind: KindBool})
	tbl, _ := NewTable("flags", schema)
	n, err := ImportTable(strings.NewReader("flag\ntrue\nno\n1\n"), tbl)
	if err != nil || n != 3 {
		t.Fatalf("%d, %v", n, err)
	}
	r0, _ := tbl.Row(0)
	r1, _ := tbl.Row(1)
	r2, _ := tbl.Row(2)
	if !r0[0].AsBool() || r1[0].AsBool() || !r2[0].AsBool() {
		t.Errorf("bool parsing wrong: %v %v %v", r0[0], r1[0], r2[0])
	}
	tbl2, _ := NewTable("flags2", schema)
	if _, err := ImportTable(strings.NewReader("flag\nmaybe\n"), tbl2); err == nil {
		t.Error("bad bool accepted")
	}
}
