package tdb

import (
	"os"
	"strings"
	"testing"
	"time"
)

func salesSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "amount", Kind: KindFloat},
		Column{Name: "product", Kind: KindString},
		Column{Name: "at", Kind: KindTime},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindNull}); err == nil {
		t.Error("null-typed column accepted")
	}
}

func TestSchemaColIndexAndString(t *testing.T) {
	s := salesSchema(t)
	if s.ColIndex("Product") != 2 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex broken")
	}
	if !strings.Contains(s.String(), "amount float") {
		t.Errorf("Schema String = %q", s.String())
	}
}

func TestTableInsertScan(t *testing.T) {
	tbl, err := NewTable("sales", salesSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC)
	rows := []Row{
		{Int(1), Float(9.5), Str("bread"), Time(at)},
		{Int(2), Int(3), Str("milk"), Time(at.Add(time.Hour))}, // int→float widening
		{Int(3), Null(), Str("eggs"), Time(at)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got, err := tbl.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].K != KindFloat || got[1].AsFloat() != 3.0 {
		t.Errorf("int not widened to float: %v", got[1])
	}
	var seen int
	tbl.Scan(func(Row) bool { seen++; return true })
	if seen != 3 {
		t.Errorf("Scan visited %d", seen)
	}
	seen = 0
	tbl.Scan(func(Row) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("early-stop Scan visited %d", seen)
	}
	if _, err := tbl.Row(99); err == nil {
		t.Error("out of range row accepted")
	}
}

func TestTableInsertErrors(t *testing.T) {
	tbl, _ := NewTable("sales", salesSchema(t))
	if err := tbl.Insert(Row{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.Insert(Row{Str("x"), Float(1), Str("y"), Time(time.Now())}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := NewTable("", salesSchema(t)); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := NewTable("x", Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestTableDelete(t *testing.T) {
	tbl, _ := NewTable("sales", salesSchema(t))
	for i := 0; i < 6; i++ {
		tbl.Insert(Row{Int(int64(i)), Float(float64(i)), Str("x"), Null()})
	}
	n, err := tbl.Delete(func(r Row) (bool, error) { return r[0].AsInt()%2 == 0, nil })
	if err != nil || n != 3 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	tbl.Scan(func(r Row) bool {
		if r[0].AsInt()%2 == 0 {
			t.Errorf("even row %v survived", r[0])
		}
		return true
	})
	// Error aborts without mutation.
	boom := func(Row) (bool, error) { return false, os.ErrInvalid }
	if _, err := tbl.Delete(boom); err == nil {
		t.Error("error not propagated")
	}
	if tbl.Len() != 3 {
		t.Errorf("failed delete mutated table: %d", tbl.Len())
	}
	// No matches is a no-op.
	n, err = tbl.Delete(func(Row) (bool, error) { return false, nil })
	if err != nil || n != 0 {
		t.Errorf("no-op delete = %d, %v", n, err)
	}
}

func TestTableUpdate(t *testing.T) {
	tbl, _ := NewTable("sales", salesSchema(t))
	for i := 0; i < 4; i++ {
		tbl.Insert(Row{Int(int64(i)), Float(1), Str("x"), Null()})
	}
	n, err := tbl.Update(
		func(r Row) (bool, error) { return r[0].AsInt() >= 2, nil },
		func(r Row) (Row, error) {
			out := make(Row, len(r))
			copy(out, r)
			out[1] = Float(9)
			return out, nil
		},
	)
	if err != nil || n != 2 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	r2, _ := tbl.Row(2)
	r0, _ := tbl.Row(0)
	if r2[1].AsFloat() != 9 || r0[1].AsFloat() != 1 {
		t.Errorf("update applied wrongly: %v %v", r0[1], r2[1])
	}
	// Schema violation aborts everything.
	_, err = tbl.Update(
		func(Row) (bool, error) { return true, nil },
		func(r Row) (Row, error) {
			out := make(Row, len(r))
			copy(out, r)
			out[0] = Str("bad")
			return out, nil
		},
	)
	if err == nil {
		t.Fatal("schema violation accepted")
	}
	r0, _ = tbl.Row(0)
	if r0[0].K != KindInt {
		t.Error("failed update mutated table")
	}
}
