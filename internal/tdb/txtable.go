package tdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Tx is one timestamped transaction: a basket of items observed at an
// instant. The temporal miners never look below this abstraction.
type Tx struct {
	ID    int64
	At    time.Time
	Items itemset.Set
}

// TxTable stores timestamped transactions ordered by time, with the
// granule-restricted scan API the temporal miners run on. Appends may
// arrive out of order; the table keeps itself sorted (stably, so equal
// timestamps preserve arrival order).
type TxTable struct {
	name string

	// dur is the owning database's storage engine; nil for tables
	// outside a durable database. Appenders take dur.gate.RLock before
	// mu (lock order, see durable.go) and log a WAL record inside the
	// critical section so per-table log order matches ID order.
	dur *durability

	mu     sync.RWMutex
	txs    []Tx
	sorted bool
	nextID int64
	epoch  int64

	// Append change log: one record per append, oldest first, epochs
	// strictly increasing. Bounded at changeLogCap; once trimmed, the
	// oldest retained record marks how far back DirtySince can answer.
	log []changeRec

	// Item sets appended since the stats cache last drained, guarded by
	// mu (NOT statsMu: appendLocked already holds mu, and CountStats
	// locks statsMu before mu, so touching statsMu here would invert
	// the lock order). Slice headers only — backing arrays are shared
	// with txs. Bounded at statsPendingCap; once the bound is hit the
	// list stops tracking and the next CountStats falls back to a full
	// scan (it detects the gap via the epoch arithmetic).
	statsPending []itemset.Set

	// Cost-model statistics, cached per write epoch (see CountStats).
	// statsCounts is the raw per-item occurrence map the aggregate is
	// derived from; keeping it lets CountStats absorb appends by
	// draining statsPending instead of rescanning the table.
	statsMu     sync.Mutex
	statsEpoch  int64
	statsOK     bool
	statsVal    apriori.CountStats
	statsCounts map[itemset.Item]int
}

// statsPendingCap bounds the stats pending list (memory, not
// correctness: a trimmed list fails the drain invariant and forces a
// full rescan).
const statsPendingCap = 1 << 16

// changeRec is one entry of the append change log: the epoch the append
// produced and the transaction timestamp, from which the touched
// granule at any granularity can be derived on demand.
type changeRec struct {
	epoch int64
	at    time.Time
}

// changeLogCap bounds the append change log. When the log fills, the
// oldest half is dropped; DirtySince then reports windows reaching past
// the retained prefix as uncovered, and callers fall back to a full
// rebuild. 64k records (~1.5 MB) covers far more appends than any
// cached hold table is worth delta-maintaining across.
const changeLogCap = 1 << 16

// NewTxTable creates an empty transaction table.
func NewTxTable(name string) (*TxTable, error) {
	if name == "" {
		return nil, fmt.Errorf("tdb: empty transaction table name")
	}
	return &TxTable{name: name, sorted: true}, nil
}

// Name returns the table name.
func (t *TxTable) Name() string { return t.name }

// Len returns the number of transactions.
func (t *TxTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.txs)
}

// Append stores a transaction and returns its assigned ID. The items
// are canonicalised defensively. Every append bumps the table's epoch
// and records the touched timestamp in the change log, so derived
// structures keyed on the epoch can either invalidate or delta-maintain
// themselves (see DirtySince).
func (t *TxTable) Append(at time.Time, items itemset.Set) int64 {
	if !items.Valid() {
		items = itemset.New(items...)
	}
	d := t.dur
	if d != nil {
		d.gate.RLock()
		defer d.gate.RUnlock()
	}
	t.mu.Lock()
	id := t.appendLocked(at, items)
	var lsn int64
	if d != nil {
		lsn = d.logAppend(t.name, id, []Tx{{ID: id, At: at.UTC(), Items: items}})
	}
	t.mu.Unlock()
	if d != nil {
		// Commit errors are sticky on the WAL; callers needing a per-
		// call verdict use AppendBatchDurable or DB.DurabilityErr.
		d.wal.commit(lsn)
	}
	return id
}

// AppendBatch appends a batch of transactions under a single lock
// acquisition and epoch-log update per row, in slice order. It returns
// the ID of the first appended transaction and the table epoch after
// the batch; with the write lock held throughout, the batch is atomic
// with respect to concurrent scans and epoch reads.
func (t *TxTable) AppendBatch(txs []Tx) (firstID, epoch int64) {
	firstID, epoch, _ = t.appendBatch(txs)
	return firstID, epoch
}

// AppendBatchDurable is AppendBatch with the durability verdict: on a
// durable table it returns only after the batch's WAL record is
// committed under the configured fsync policy, and the error reflects
// any WAL write/sync failure — callers acknowledging writes (tarmd)
// must not ack when it is non-nil. On a non-durable table the error is
// always nil.
func (t *TxTable) AppendBatchDurable(txs []Tx) (firstID, epoch int64, err error) {
	return t.appendBatch(txs)
}

func (t *TxTable) appendBatch(txs []Tx) (firstID, epoch int64, err error) {
	d := t.dur
	if d != nil {
		d.gate.RLock()
		defer d.gate.RUnlock()
	}
	t.mu.Lock()
	firstID = t.nextID
	start := len(t.txs)
	for _, tx := range txs {
		items := tx.Items
		if !items.Valid() {
			items = itemset.New(items...)
		}
		t.appendLocked(tx.At, items)
	}
	epoch = t.epoch
	var lsn int64
	if d != nil && len(t.txs) > start {
		// Log straight from the table's own entries (stable under t.mu,
		// and exactly the {ID, UTC time, canonical items} replay needs)
		// rather than building a parallel batch copy.
		lsn = d.logAppend(t.name, firstID, t.txs[start:])
	}
	t.mu.Unlock()
	if d != nil {
		err = d.wal.commit(lsn)
	}
	return firstID, epoch, err
}

// appendLocked does the actual insert; callers hold the write lock and
// have canonicalised items.
func (t *TxTable) appendLocked(at time.Time, items itemset.Set) int64 {
	id := t.nextID
	t.nextID++
	if n := len(t.txs); n > 0 && t.txs[n-1].At.After(at) {
		t.sorted = false
	}
	at = at.UTC()
	t.txs = append(t.txs, Tx{ID: id, At: at, Items: items})
	t.epoch++
	if len(t.statsPending) < statsPendingCap {
		t.statsPending = append(t.statsPending, items)
	}
	if len(t.log) >= changeLogCap {
		// Drop the oldest half; the retained suffix stays contiguous in
		// epoch, which is all DirtySince needs.
		keep := len(t.log) / 2
		copy(t.log, t.log[len(t.log)-keep:])
		t.log = t.log[:keep]
	}
	t.log = append(t.log, changeRec{epoch: t.epoch, at: at})
	return id
}

// DirtySince reports which granules at granularity g were touched by
// appends after write epoch since: the sorted, deduplicated granules of
// every append with epoch > since, plus the table's current epoch. ok
// is false when the change log has been trimmed past since (or since is
// from another table's history), in which case the caller cannot know
// the dirty set and must rebuild from scratch. since equal to the
// current epoch returns an empty dirty set with ok true.
func (t *TxTable) DirtySince(g timegran.Granularity, since int64) (dirty []timegran.Granule, epoch int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	epoch = t.epoch
	if since == epoch {
		return nil, epoch, true
	}
	if since > epoch || len(t.log) == 0 || t.log[0].epoch > since+1 {
		return nil, epoch, false
	}
	// Epochs in the log are strictly increasing: binary-search the first
	// record past since.
	i := sort.Search(len(t.log), func(i int) bool { return t.log[i].epoch > since })
	seen := make(map[timegran.Granule]struct{})
	for ; i < len(t.log); i++ {
		n := timegran.GranuleOf(t.log[i].at, g)
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			dirty = append(dirty, n)
		}
	}
	sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })
	return dirty, epoch, true
}

// Epoch returns the table's write epoch: a counter bumped by every
// Append. Derived structures (the hold-table cache) key on it so that a
// write to the table invalidates them; two Epoch calls returning the
// same value bracket a window with no completed writes.
func (t *TxTable) Epoch() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// ensureSorted sorts by timestamp if out-of-order appends happened.
// Callers must hold no lock; it takes the write lock itself.
func (t *TxTable) ensureSorted() {
	t.mu.RLock()
	ok := t.sorted
	t.mu.RUnlock()
	if ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.sorted {
		sort.SliceStable(t.txs, func(i, j int) bool { return t.txs[i].At.Before(t.txs[j].At) })
		t.sorted = true
	}
}

// Span returns the granule interval covered by the data at granularity
// g; ok is false when the table is empty.
func (t *TxTable) Span(g timegran.Granularity) (timegran.Interval, bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.txs) == 0 {
		return timegran.Interval{}, false
	}
	lo := timegran.GranuleOf(t.txs[0].At, g)
	hi := timegran.GranuleOf(t.txs[len(t.txs)-1].At, g)
	return timegran.Interval{Lo: lo, Hi: hi}, true
}

// MaxAt returns the newest transaction timestamp — the *stream clock*
// of continuous mining: a granule is closed once MaxAt passes its end
// instant (timegran.ClosedThrough). ok is false when the table is
// empty.
func (t *TxTable) MaxAt() (time.Time, bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.txs) == 0 {
		return time.Time{}, false
	}
	return t.txs[len(t.txs)-1].At, true
}

// rowRange returns the half-open index range [i, j) of transactions
// whose granule at g lies in iv. Requires the table sorted.
func (t *TxTable) rowRange(g timegran.Granularity, iv timegran.Interval) (int, int) {
	startT := timegran.Start(iv.Lo, g)
	endT := timegran.Start(iv.Hi+1, g)
	i := sort.Search(len(t.txs), func(i int) bool { return !t.txs[i].At.Before(startT) })
	j := sort.Search(len(t.txs), func(i int) bool { return !t.txs[i].At.Before(endT) })
	return i, j
}

// CountRange returns the number of transactions whose granule lies in
// iv at granularity g.
func (t *TxTable) CountRange(g timegran.Granularity, iv timegran.Interval) int {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, j := t.rowRange(g, iv)
	return j - i
}

// GranuleCounts returns the transaction count of every granule in
// span, indexed by g - span.Lo. The temporal miners use it to size
// per-granule thresholds.
func (t *TxTable) GranuleCounts(g timegran.Granularity, span timegran.Interval) []int {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	counts := make([]int, span.Len())
	i, j := t.rowRange(g, span)
	for ; i < j; i++ {
		n := timegran.GranuleOf(t.txs[i].At, g)
		counts[n-span.Lo]++
	}
	return counts
}

// RangeSource exposes the transactions of the granule interval iv as a
// mining source. The view is cheap (no copying) and repeatable.
func (t *TxTable) RangeSource(g timegran.Granularity, iv timegran.Interval) apriori.Source {
	t.ensureSorted()
	t.mu.RLock()
	i, j := t.rowRange(g, iv)
	t.mu.RUnlock()
	return apriori.FuncSource{
		N: j - i,
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for k := i; k < j; k++ {
				fn(t.txs[k].Items)
			}
		},
	}
}

// GranuleSource exposes a single granule's transactions.
func (t *TxTable) GranuleSource(g timegran.Granularity, n timegran.Granule) apriori.Source {
	return t.RangeSource(g, timegran.Interval{Lo: n, Hi: n})
}

// SetSource exposes the union of an IntervalSet's granules.
func (t *TxTable) SetSource(g timegran.Granularity, set timegran.IntervalSet) apriori.Source {
	t.ensureSorted()
	type span struct{ i, j int }
	var spans []span
	n := 0
	t.mu.RLock()
	for _, iv := range set.Intervals() {
		i, j := t.rowRange(g, iv)
		if j > i {
			spans = append(spans, span{i, j})
			n += j - i
		}
	}
	t.mu.RUnlock()
	return apriori.FuncSource{
		N: n,
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for _, sp := range spans {
				for k := sp.i; k < sp.j; k++ {
					fn(t.txs[k].Items)
				}
			}
		},
	}
}

// All exposes the entire table as a mining source (the traditional,
// time-agnostic view).
func (t *TxTable) All() apriori.Source {
	t.ensureSorted()
	return apriori.FuncSource{
		N: t.Len(),
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for _, tx := range t.txs {
				fn(tx.Items)
			}
		},
	}
}

// CountStats summarises the table's shape for the counting cost model
// (internal/apriori): transaction count, distinct items, occurrences
// and the per-item density histogram. Granules is left 0 for the
// caller to set from its own span. The scan is cached per write epoch
// and maintained incrementally under appends: a stale cache drains the
// pending-append list into the retained per-item count map and
// re-aggregates in O(distinct items), so plan builds under write
// traffic do not rescan the table. A full scan happens only on the
// first call or after the pending list overflowed its bound.
func (t *TxTable) CountStats() apriori.CountStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.mu.RLock()
	epoch := t.epoch
	t.mu.RUnlock()
	if t.statsOK && t.statsEpoch == epoch {
		return t.statsVal
	}
	// The cache is stale. Capture the pending appends, the epoch and
	// (for the fallback) the rows in one write-locked critical section,
	// so the counts attributed to statsEpoch match exactly the rows
	// that existed at that epoch — a scan outside the section could
	// see appends that a later drain would then double count.
	t.mu.Lock()
	epoch = t.epoch
	n := len(t.txs)
	pending := t.statsPending
	t.statsPending = nil
	if t.statsOK && t.statsCounts != nil && int64(len(pending)) == epoch-t.statsEpoch {
		// Every missed append is in the pending list: drain it.
		t.mu.Unlock()
		for _, set := range pending {
			for _, x := range set {
				t.statsCounts[x]++
			}
		}
	} else {
		counts := make(map[itemset.Item]int, len(t.statsCounts))
		for _, tx := range t.txs {
			for _, x := range tx.Items {
				counts[x]++
			}
		}
		t.mu.Unlock()
		t.statsCounts = counts
	}
	s := apriori.CountStats{N: n}
	for _, c := range t.statsCounts {
		s.AddItem(c)
	}
	t.statsVal, t.statsEpoch, t.statsOK = s, epoch, true
	return s
}

// EachInRange iterates, in time order, only the transactions whose
// granule at g lies in iv; fn returning false stops. It narrows the
// scan to the interval's row range by binary search, so iterating a
// sub-span costs proportionally to the sub-span, not the table.
func (t *TxTable) EachInRange(g timegran.Granularity, iv timegran.Interval, fn func(tx Tx) bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, j := t.rowRange(g, iv)
	for ; i < j; i++ {
		if !fn(t.txs[i]) {
			return
		}
	}
}

// Each iterates transactions in time order; fn returning false stops.
func (t *TxTable) Each(fn func(tx Tx) bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, tx := range t.txs {
		if !fn(tx) {
			return
		}
	}
}

// AsTable materialises a relational view (tid, at, item) with one row
// per (transaction, item) pair, so the SQL side of IQMS can query the
// raw basket data like the paper's Oracle prototype did.
func (t *TxTable) AsTable(dict *itemset.Dict) (*Table, error) {
	schema, err := NewSchema(
		Column{Name: "tid", Kind: KindInt},
		Column{Name: "at", Kind: KindTime},
		Column{Name: "item", Kind: KindString},
	)
	if err != nil {
		return nil, err
	}
	tbl, err := NewTable(t.name+"_items", schema)
	if err != nil {
		return nil, err
	}
	var insertErr error
	t.Each(func(tx Tx) bool {
		for _, it := range tx.Items {
			name := fmt.Sprintf("#%d", it)
			if dict != nil {
				if n, err := dict.Name(it); err == nil {
					name = n
				}
			}
			if err := tbl.Insert(Row{Int(tx.ID), Time(tx.At), Str(name)}); err != nil {
				insertErr = err
				return false
			}
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return tbl, nil
}
