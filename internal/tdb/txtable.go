package tdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Tx is one timestamped transaction: a basket of items observed at an
// instant. The temporal miners never look below this abstraction.
type Tx struct {
	ID    int64
	At    time.Time
	Items itemset.Set
}

// TxTable stores timestamped transactions ordered by time, with the
// granule-restricted scan API the temporal miners run on. Appends may
// arrive out of order; the table keeps itself sorted (stably, so equal
// timestamps preserve arrival order).
type TxTable struct {
	name string

	mu     sync.RWMutex
	txs    []Tx
	sorted bool
	nextID int64
	epoch  int64

	// Cost-model statistics, cached per write epoch (see CountStats).
	statsMu    sync.Mutex
	statsEpoch int64
	statsOK    bool
	statsVal   apriori.CountStats
}

// NewTxTable creates an empty transaction table.
func NewTxTable(name string) (*TxTable, error) {
	if name == "" {
		return nil, fmt.Errorf("tdb: empty transaction table name")
	}
	return &TxTable{name: name, sorted: true}, nil
}

// Name returns the table name.
func (t *TxTable) Name() string { return t.name }

// Len returns the number of transactions.
func (t *TxTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.txs)
}

// Append stores a transaction and returns its assigned ID. The items
// are canonicalised defensively. Every append bumps the table's epoch,
// invalidating any derived structure keyed on it.
func (t *TxTable) Append(at time.Time, items itemset.Set) int64 {
	if !items.Valid() {
		items = itemset.New(items...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	if n := len(t.txs); n > 0 && t.txs[n-1].At.After(at) {
		t.sorted = false
	}
	t.txs = append(t.txs, Tx{ID: id, At: at.UTC(), Items: items})
	t.epoch++
	return id
}

// Epoch returns the table's write epoch: a counter bumped by every
// Append. Derived structures (the hold-table cache) key on it so that a
// write to the table invalidates them; two Epoch calls returning the
// same value bracket a window with no completed writes.
func (t *TxTable) Epoch() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// ensureSorted sorts by timestamp if out-of-order appends happened.
// Callers must hold no lock; it takes the write lock itself.
func (t *TxTable) ensureSorted() {
	t.mu.RLock()
	ok := t.sorted
	t.mu.RUnlock()
	if ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.sorted {
		sort.SliceStable(t.txs, func(i, j int) bool { return t.txs[i].At.Before(t.txs[j].At) })
		t.sorted = true
	}
}

// Span returns the granule interval covered by the data at granularity
// g; ok is false when the table is empty.
func (t *TxTable) Span(g timegran.Granularity) (timegran.Interval, bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.txs) == 0 {
		return timegran.Interval{}, false
	}
	lo := timegran.GranuleOf(t.txs[0].At, g)
	hi := timegran.GranuleOf(t.txs[len(t.txs)-1].At, g)
	return timegran.Interval{Lo: lo, Hi: hi}, true
}

// rowRange returns the half-open index range [i, j) of transactions
// whose granule at g lies in iv. Requires the table sorted.
func (t *TxTable) rowRange(g timegran.Granularity, iv timegran.Interval) (int, int) {
	startT := timegran.Start(iv.Lo, g)
	endT := timegran.Start(iv.Hi+1, g)
	i := sort.Search(len(t.txs), func(i int) bool { return !t.txs[i].At.Before(startT) })
	j := sort.Search(len(t.txs), func(i int) bool { return !t.txs[i].At.Before(endT) })
	return i, j
}

// CountRange returns the number of transactions whose granule lies in
// iv at granularity g.
func (t *TxTable) CountRange(g timegran.Granularity, iv timegran.Interval) int {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, j := t.rowRange(g, iv)
	return j - i
}

// GranuleCounts returns the transaction count of every granule in
// span, indexed by g - span.Lo. The temporal miners use it to size
// per-granule thresholds.
func (t *TxTable) GranuleCounts(g timegran.Granularity, span timegran.Interval) []int {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	counts := make([]int, span.Len())
	i, j := t.rowRange(g, span)
	for ; i < j; i++ {
		n := timegran.GranuleOf(t.txs[i].At, g)
		counts[n-span.Lo]++
	}
	return counts
}

// RangeSource exposes the transactions of the granule interval iv as a
// mining source. The view is cheap (no copying) and repeatable.
func (t *TxTable) RangeSource(g timegran.Granularity, iv timegran.Interval) apriori.Source {
	t.ensureSorted()
	t.mu.RLock()
	i, j := t.rowRange(g, iv)
	t.mu.RUnlock()
	return apriori.FuncSource{
		N: j - i,
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for k := i; k < j; k++ {
				fn(t.txs[k].Items)
			}
		},
	}
}

// GranuleSource exposes a single granule's transactions.
func (t *TxTable) GranuleSource(g timegran.Granularity, n timegran.Granule) apriori.Source {
	return t.RangeSource(g, timegran.Interval{Lo: n, Hi: n})
}

// SetSource exposes the union of an IntervalSet's granules.
func (t *TxTable) SetSource(g timegran.Granularity, set timegran.IntervalSet) apriori.Source {
	t.ensureSorted()
	type span struct{ i, j int }
	var spans []span
	n := 0
	t.mu.RLock()
	for _, iv := range set.Intervals() {
		i, j := t.rowRange(g, iv)
		if j > i {
			spans = append(spans, span{i, j})
			n += j - i
		}
	}
	t.mu.RUnlock()
	return apriori.FuncSource{
		N: n,
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for _, sp := range spans {
				for k := sp.i; k < sp.j; k++ {
					fn(t.txs[k].Items)
				}
			}
		},
	}
}

// All exposes the entire table as a mining source (the traditional,
// time-agnostic view).
func (t *TxTable) All() apriori.Source {
	t.ensureSorted()
	return apriori.FuncSource{
		N: t.Len(),
		Scan: func(fn func(tx itemset.Set)) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for _, tx := range t.txs {
				fn(tx.Items)
			}
		},
	}
}

// CountStats summarises the table's shape for the counting cost model
// (internal/apriori): transaction count, distinct items, occurrences
// and the per-item density histogram. Granules is left 0 for the
// caller to set from its own span. The scan is cached per write epoch,
// so repeated plan builds (EXPLAIN, then execute) cost one scan per
// table version.
func (t *TxTable) CountStats() apriori.CountStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.mu.RLock()
	epoch := t.epoch
	t.mu.RUnlock()
	if t.statsOK && t.statsEpoch == epoch {
		return t.statsVal
	}
	counts := make(map[itemset.Item]int)
	t.mu.RLock()
	n := len(t.txs)
	for _, tx := range t.txs {
		for _, x := range tx.Items {
			counts[x]++
		}
	}
	t.mu.RUnlock()
	s := apriori.CountStats{N: n}
	for _, c := range counts {
		s.AddItem(c)
	}
	t.statsVal, t.statsEpoch, t.statsOK = s, epoch, true
	return s
}

// EachInRange iterates, in time order, only the transactions whose
// granule at g lies in iv; fn returning false stops. It narrows the
// scan to the interval's row range by binary search, so iterating a
// sub-span costs proportionally to the sub-span, not the table.
func (t *TxTable) EachInRange(g timegran.Granularity, iv timegran.Interval, fn func(tx Tx) bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, j := t.rowRange(g, iv)
	for ; i < j; i++ {
		if !fn(t.txs[i]) {
			return
		}
	}
}

// Each iterates transactions in time order; fn returning false stops.
func (t *TxTable) Each(fn func(tx Tx) bool) {
	t.ensureSorted()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, tx := range t.txs {
		if !fn(tx) {
			return
		}
	}
}

// AsTable materialises a relational view (tid, at, item) with one row
// per (transaction, item) pair, so the SQL side of IQMS can query the
// raw basket data like the paper's Oracle prototype did.
func (t *TxTable) AsTable(dict *itemset.Dict) (*Table, error) {
	schema, err := NewSchema(
		Column{Name: "tid", Kind: KindInt},
		Column{Name: "at", Kind: KindTime},
		Column{Name: "item", Kind: KindString},
	)
	if err != nil {
		return nil, err
	}
	tbl, err := NewTable(t.name+"_items", schema)
	if err != nil {
		return nil, err
	}
	var insertErr error
	t.Each(func(tx Tx) bool {
		for _, it := range tx.Items {
			name := fmt.Sprintf("#%d", it)
			if dict != nil {
				if n, err := dict.Name(it); err == nil {
					name = n
				}
			}
			if err := tbl.Insert(Row{Int(tx.ID), Time(tx.At), Str(name)}); err != nil {
				insertErr = err
				return false
			}
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return tbl, nil
}
