package tdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
)

// Crash recovery: decode the WAL's longest valid record prefix and
// replay it over the loaded checkpoint. Decoding is forgiving — a torn
// write, a truncated tail or a bit flip ends the prefix without error,
// because that is exactly what a crash leaves behind — while replay is
// strict: a record that decodes but contradicts the checkpoint (a
// dictionary name mismatch, an append into a table that never existed)
// aborts the open rather than silently rebuilding a different database.

// walRecord is one decoded WAL record.
type walRecord struct {
	typ   uint8
	table string // append/create/drop

	firstID int64 // append
	txs     []Tx  // append (IDs filled from firstID)

	dictStart int      // dict
	names     []string // dict
}

// maxWALRecord bounds a single record's framed payload; larger lengths
// are treated as corruption (a flipped bit in the length field must not
// cause a gigabyte allocation).
const maxWALRecord = 64 << 20

// decodeWALPayload decodes one framed payload. It returns an error for
// any malformed payload; the caller treats that as the end of the valid
// prefix.
func decodeWALPayload(p []byte) (walRecord, error) {
	d := &decoder{b: p}
	var rec walRecord
	rec.typ = d.u8()
	switch rec.typ {
	case walRecAppend:
		rec.table = d.str()
		rec.firstID = d.i64()
		n := int(d.u32())
		if d.err != nil {
			return rec, d.err
		}
		if n < 0 || n > len(p) {
			return rec, fmt.Errorf("tdb: wal append record: implausible tx count %d", n)
		}
		rec.txs = make([]Tx, 0, n)
		for i := 0; i < n; i++ {
			at := d.i64()
			ni := int(d.u32())
			if d.err != nil {
				return rec, d.err
			}
			if ni < 0 || d.off+4*ni > len(d.b) {
				return rec, fmt.Errorf("tdb: wal append record: implausible item count %d", ni)
			}
			items := make([]itemset.Item, ni)
			for j := range items {
				items[j] = itemset.Item(d.u32())
			}
			set := itemset.Set(items)
			if !set.Valid() {
				return rec, fmt.Errorf("tdb: wal append record: non-canonical itemset")
			}
			rec.txs = append(rec.txs, Tx{
				ID:    rec.firstID + int64(i),
				At:    time.Unix(0, at).UTC(),
				Items: set,
			})
		}
	case walRecDict:
		rec.dictStart = int(d.u32())
		n := int(d.u32())
		if d.err != nil {
			return rec, d.err
		}
		if n < 0 || n > len(p) {
			return rec, fmt.Errorf("tdb: wal dict record: implausible name count %d", n)
		}
		rec.names = make([]string, 0, n)
		for i := 0; i < n; i++ {
			rec.names = append(rec.names, d.str())
		}
	case walRecCreate, walRecDrop:
		rec.table = d.str()
	default:
		return rec, fmt.Errorf("tdb: unknown wal record type %d", rec.typ)
	}
	if d.err != nil {
		return rec, d.err
	}
	if d.off != len(d.b) {
		return rec, fmt.Errorf("tdb: wal record: %d trailing bytes", len(d.b)-d.off)
	}
	return rec, nil
}

// decodeWALRecords scans the record region (everything after the
// header) and returns the records of the longest valid prefix plus the
// byte offset, relative to data, at which that prefix ends. Anything
// beyond — a torn frame, a CRC mismatch, a payload that does not decode
// — is a crash artifact, not an error.
func decodeWALRecords(data []byte) (recs []walRecord, valid int) {
	off := 0
	for {
		if off+8 > len(data) {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n < 0 || n > maxWALRecord || off+8+n > len(data) {
			return recs, off
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return recs, off
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + n
	}
}

// readWALFile reads path and returns the header epoch, the valid-prefix
// records, the file size of that valid prefix and how many tail bytes
// were discarded. A file too short to hold a header recovers as empty
// at epoch 0 with everything counted as torn.
func readWALFile(path string) (epoch uint64, recs []walRecord, validSize int64, torn int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("tdb: read wal %s: %w", path, err)
	}
	if len(raw) < walHdrSize || string(raw[:4]) != magicWAL ||
		binary.LittleEndian.Uint32(raw[4:8]) != fmtVersion {
		// A torn header: nothing recoverable, treat as an empty log.
		return 0, nil, 0, len(raw), nil
	}
	epoch = binary.LittleEndian.Uint64(raw[8:16])
	recs, valid := decodeWALRecords(raw[walHdrSize:])
	validSize = int64(walHdrSize + valid)
	return epoch, recs, validSize, len(raw) - int(validSize), nil
}

// RecoveryStats reports what opening a durable database replayed.
type RecoveryStats struct {
	// Records is the number of valid WAL records replayed.
	Records int
	// AppendedTx is the number of transactions the replay added on top
	// of the checkpoint.
	AppendedTx int
	// SkippedTx is the number of logged transactions the checkpoint
	// already contained (idempotent replay).
	SkippedTx int
	// TornBytes is the size of the discarded invalid WAL tail.
	TornBytes int
	// Wall is the end-to-end recovery time (checkpoint load excluded).
	Wall time.Duration
}

// replayWAL applies the decoded records to the freshly loaded
// checkpoint state. Tables are resolved lazily so create records are
// honoured in order; appends restore the IDs the transactions carried
// when first acknowledged, skipping IDs the checkpoint already holds.
//
// One tolerance on top of strict replay: an append into a table the
// checkpoint does not hold is legal when a later record drops that
// table. Drop removes the table's checkpoint files as soon as its
// WAL record is durable, so a crash after a drop leaves exactly this
// shape — appends from before the drop, no files behind them. The
// transactions are counted as skipped (the drop destroys them anyway);
// an append with no subsequent drop still aborts the open.
func (db *DB) replayWAL(recs []walRecord) (stats RecoveryStats, err error) {
	lastDrop := map[string]int{}
	for i, rec := range recs {
		if rec.typ == walRecDrop {
			lastDrop[strings.ToLower(rec.table)] = i
		}
	}
	for i, rec := range recs {
		switch rec.typ {
		case walRecDict:
			for i, name := range rec.names {
				want := itemset.Item(rec.dictStart + i)
				if int(want) < db.dict.Len() {
					// The checkpoint already interned this id; the names
					// must agree or the log belongs to another database.
					got, nameErr := db.dict.Name(want)
					if nameErr != nil || got != name {
						return stats, fmt.Errorf("tdb: wal replay: dictionary id %d is %q in checkpoint, %q in log", want, got, name)
					}
					continue
				}
				if got := db.dict.Intern(name); got != want {
					return stats, fmt.Errorf("tdb: wal replay: dictionary gap: %q interned as %d, log says %d", name, got, want)
				}
			}
		case walRecCreate:
			if _, ok := db.TxTable(rec.table); !ok {
				if _, err := db.createTxTableNoLog(rec.table); err != nil {
					return stats, fmt.Errorf("tdb: wal replay: %w", err)
				}
			}
		case walRecDrop:
			if _, err := db.dropNoLog(rec.table); err != nil {
				return stats, fmt.Errorf("tdb: wal replay: %w", err)
			}
		case walRecAppend:
			t, ok := db.TxTable(rec.table)
			if !ok {
				if drop, dropped := lastDrop[strings.ToLower(rec.table)]; dropped && drop > i {
					stats.SkippedTx += len(rec.txs)
					stats.Records++
					continue
				}
				return stats, fmt.Errorf("tdb: wal replay: append into unknown table %q", rec.table)
			}
			added, skipped := t.restoreBatch(rec.txs)
			stats.AppendedTx += added
			stats.SkippedTx += skipped
		}
		stats.Records++
	}
	return stats, nil
}

// restoreBatch re-applies logged transactions, preserving their
// original IDs. Transactions whose ID precedes the table's next-ID
// watermark are already present (checkpointed, or an earlier copy of a
// duplicated record) and are skipped, which is what makes replay
// idempotent.
func (t *TxTable) restoreBatch(txs []Tx) (added, skipped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tx := range txs {
		if tx.ID < t.nextID {
			skipped++
			continue
		}
		t.nextID = tx.ID
		t.appendLocked(tx.At, tx.Items)
		added++
	}
	return added, skipped
}
