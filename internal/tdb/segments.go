package tdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Segmented persistence: a transaction table is split into fixed-width
// time segments, one checksummed file per segment plus a manifest.
// Appending new data and saving again rewrites only the segments whose
// contents changed — on an append-mostly table that is the final
// segment — pairing with core.(*HoldTable).Extend for an end-to-end
// incremental pipeline.
//
// Layout of a segment directory:
//
//	<dir>/manifest           (TDBM: granularity, width, table name, per-segment counts)
//	<dir>/00000000042.seg    (TDBS: the transactions of segment 42)
//
// A segment covers granules [index·width, (index+1)·width) at the
// manifest's granularity. Segment indices may be negative (pre-epoch
// data); file names use a +1e9 offset to stay sortable and positive.

const (
	magicManifest = "TDBM"
	magicSegment  = "TDBS"
	segNameOffset = int64(1_000_000_000)
)

// SegmentConfig fixes how a table is partitioned on disk.
type SegmentConfig struct {
	// Granularity of the segment grid (often coarser than the mining
	// granularity, e.g. Month segments for Day mining).
	Granularity timegran.Granularity
	// Width is the number of granules per segment (e.g. 1 Month).
	Width int
}

func (c SegmentConfig) validate() error {
	if !c.Granularity.Valid() {
		return fmt.Errorf("tdb: segment granularity %d invalid", int(c.Granularity))
	}
	if c.Width < 1 {
		return fmt.Errorf("tdb: segment width %d must be ≥ 1", c.Width)
	}
	return nil
}

// segIndex maps an instant to its segment.
func (c SegmentConfig) segIndex(at time.Time) int64 {
	g := timegran.GranuleOf(at, c.Granularity)
	if g >= 0 {
		return g / int64(c.Width)
	}
	return (g - int64(c.Width) + 1) / int64(c.Width)
}

func segFileName(idx int64) string {
	return fmt.Sprintf("%011d.seg", idx+segNameOffset)
}

// SegmentSaveStats reports what a segmented save did.
type SegmentSaveStats struct {
	Written, Skipped int
}

// SaveTxTableSegmented writes t into dir under cfg. Segments whose
// transaction count matches the manifest are skipped (old segments of
// an append-only table never change, so count equality identifies
// them); changed or new segments are rewritten atomically, and the
// manifest is updated last.
func SaveTxTableSegmented(t *TxTable, dir string, cfg SegmentConfig) (SegmentSaveStats, error) {
	var stats SegmentSaveStats
	if err := cfg.validate(); err != nil {
		return stats, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("tdb: segment dir %s: %w", dir, err)
	}

	// Previous manifest (absent on first save).
	oldCounts := map[int64]int64{}
	manifestPath := filepath.Join(dir, "manifest")
	if _, err := os.Stat(manifestPath); err == nil {
		m, err := loadManifest(manifestPath)
		if err != nil {
			return stats, err
		}
		if m.cfg != cfg {
			return stats, fmt.Errorf("tdb: segment dir %s uses %v×%d, save requested %v×%d",
				dir, m.cfg.Granularity, m.cfg.Width, cfg.Granularity, cfg.Width)
		}
		oldCounts = m.counts
	}

	// Partition transactions by segment (table order is time order).
	type segment struct {
		idx int64
		txs []Tx
	}
	var segs []segment
	t.Each(func(tx Tx) bool {
		idx := cfg.segIndex(tx.At)
		if n := len(segs); n == 0 || segs[n-1].idx != idx {
			segs = append(segs, segment{idx: idx})
		}
		segs[len(segs)-1].txs = append(segs[len(segs)-1].txs, tx)
		return true
	})

	newCounts := make(map[int64]int64, len(segs))
	for _, seg := range segs {
		newCounts[seg.idx] = int64(len(seg.txs))
		if oldCounts[seg.idx] == int64(len(seg.txs)) {
			stats.Skipped++
			continue
		}
		if err := writeSegment(filepath.Join(dir, segFileName(seg.idx)), seg.idx, seg.txs); err != nil {
			return stats, err
		}
		stats.Written++
	}
	// Segments that vanished (data deleted) are removed.
	for idx := range oldCounts {
		if _, ok := newCounts[idx]; !ok {
			if err := removeIfExists(filepath.Join(dir, segFileName(idx))); err != nil {
				return stats, err
			}
		}
	}
	if err := writeManifest(manifestPath, t.Name(), t.nextIDSnapshot(), cfg, newCounts); err != nil {
		return stats, err
	}
	return stats, nil
}

// nextIDSnapshot reads the id counter under the lock.
func (t *TxTable) nextIDSnapshot() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextID
}

// LoadTxTableSegmented reads a segment directory back into a table.
// Every referenced segment must be present and pass its checksum.
func LoadTxTableSegmented(dir string) (*TxTable, SegmentConfig, error) {
	m, err := loadManifest(filepath.Join(dir, "manifest"))
	if err != nil {
		return nil, SegmentConfig{}, err
	}
	tbl, err := NewTxTable(m.table)
	if err != nil {
		return nil, SegmentConfig{}, err
	}
	idxs := make([]int64, 0, len(m.counts))
	for idx := range m.counts {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var txs []Tx
	for _, idx := range idxs {
		segTxs, err := readSegment(filepath.Join(dir, segFileName(idx)), idx)
		if err != nil {
			return nil, SegmentConfig{}, err
		}
		if int64(len(segTxs)) != m.counts[idx] {
			return nil, SegmentConfig{}, fmt.Errorf("tdb: segment %d has %d transactions, manifest says %d",
				idx, len(segTxs), m.counts[idx])
		}
		txs = append(txs, segTxs...)
	}
	tbl.txs = txs
	tbl.nextID = m.nextID
	tbl.sorted = false
	tbl.epoch = int64(len(txs))
	return tbl, m.cfg, nil
}

type manifest struct {
	table  string
	nextID int64
	cfg    SegmentConfig
	counts map[int64]int64
}

func writeManifest(path, table string, nextID int64, cfg SegmentConfig, counts map[int64]int64) error {
	e := &encoder{}
	e.buf.WriteString(magicManifest)
	e.u32(fmtVersion)
	e.str(table)
	e.i64(nextID)
	e.u8(uint8(cfg.Granularity))
	e.u32(uint32(cfg.Width))
	idxs := make([]int64, 0, len(counts))
	for idx := range counts {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	e.u32(uint32(len(idxs)))
	for _, idx := range idxs {
		e.i64(idx)
		e.i64(counts[idx])
	}
	return writeAtomic(path, e.buf.Bytes())
}

func loadManifest(path string) (*manifest, error) {
	d, err := readChecked(path, magicManifest)
	if err != nil {
		return nil, err
	}
	m := &manifest{counts: map[int64]int64{}}
	m.table = d.str()
	m.nextID = d.i64()
	m.cfg.Granularity = timegran.Granularity(d.u8())
	m.cfg.Width = int(d.u32())
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		idx := d.i64()
		m.counts[idx] = d.i64()
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := m.cfg.validate(); err != nil {
		return nil, fmt.Errorf("tdb: %s: %w", path, err)
	}
	return m, nil
}

func writeSegment(path string, idx int64, txs []Tx) error {
	e := &encoder{}
	e.buf.WriteString(magicSegment)
	e.u32(fmtVersion)
	e.i64(idx)
	e.u64(uint64(len(txs)))
	for _, tx := range txs {
		e.i64(tx.ID)
		e.i64(tx.At.UnixNano())
		e.u32(uint32(len(tx.Items)))
		for _, it := range tx.Items {
			e.u32(uint32(it))
		}
	}
	return writeAtomic(path, e.buf.Bytes())
}

func readSegment(path string, wantIdx int64) ([]Tx, error) {
	d, err := readChecked(path, magicSegment)
	if err != nil {
		return nil, err
	}
	if idx := d.i64(); idx != wantIdx {
		return nil, fmt.Errorf("tdb: %s: segment index %d, want %d", path, idx, wantIdx)
	}
	n := d.u64()
	txs := make([]Tx, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		id := d.i64()
		at := d.i64()
		ni := int(d.u32())
		if d.err != nil {
			break
		}
		if ni < 0 || d.off+4*ni > len(d.b) {
			return nil, fmt.Errorf("tdb: %s: implausible item count %d", path, ni)
		}
		items := make([]itemset.Item, ni)
		for j := range items {
			items[j] = itemset.Item(d.u32())
		}
		set := itemset.Set(items)
		if !set.Valid() {
			return nil, fmt.Errorf("tdb: %s: non-canonical itemset in transaction %d", path, id)
		}
		txs = append(txs, Tx{ID: id, At: time.Unix(0, at).UTC(), Items: set})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("tdb: %s: %d trailing bytes", path, len(d.b)-d.off)
	}
	return txs, nil
}
