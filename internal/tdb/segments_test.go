package tdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

func monthCfg() SegmentConfig {
	return SegmentConfig{Granularity: timegran.Month, Width: 1}
}

// buildSeasonTable spans three months of daily transactions.
func buildSeasonTable(t *testing.T, days int) *TxTable {
	t.Helper()
	tbl, err := NewTxTable("season")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 1, 1, 8, 0, 0, 0, time.UTC)
	for d := 0; d < days; d++ {
		at := start.AddDate(0, 0, d)
		for i := 0; i < 3; i++ {
			tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(itemset.Item(d%5), itemset.Item(5+i)))
		}
	}
	return tbl
}

func sameTxTables(t *testing.T, a, b *TxTable) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	var at, bt []Tx
	a.Each(func(tx Tx) bool { at = append(at, tx); return true })
	b.Each(func(tx Tx) bool { bt = append(bt, tx); return true })
	for i := range at {
		if at[i].ID != bt[i].ID || !at[i].At.Equal(bt[i].At) || !at[i].Items.Equal(bt[i].Items) {
			t.Fatalf("tx %d: %+v vs %+v", i, at[i], bt[i])
		}
	}
}

func TestSegmentedRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	tbl := buildSeasonTable(t, 90) // Jan, Feb, Mar (and a bit of Mar 31)
	stats, err := SaveTxTableSegmented(tbl, dir, monthCfg())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written == 0 || stats.Skipped != 0 {
		t.Fatalf("first save stats = %+v", stats)
	}
	loaded, cfg, err := LoadTxTableSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != monthCfg() {
		t.Errorf("config round trip = %+v", cfg)
	}
	if loaded.Name() != "season" {
		t.Errorf("name = %q", loaded.Name())
	}
	sameTxTables(t, tbl, loaded)
	// IDs continue after reload.
	if id := loaded.Append(time.Now(), itemset.New(1)); id != int64(tbl.Len()) {
		t.Errorf("next id = %d, want %d", id, tbl.Len())
	}
}

func TestSegmentedIncrementalSave(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	tbl := buildSeasonTable(t, 60) // Jan + Feb
	if _, err := SaveTxTableSegmented(tbl, dir, monthCfg()); err != nil {
		t.Fatal(err)
	}
	// Append March: only the new month is written, Jan/Feb skipped.
	start := time.Date(2024, 3, 1, 8, 0, 0, 0, time.UTC)
	for d := 0; d < 20; d++ {
		tbl.Append(start.AddDate(0, 0, d), itemset.New(1, 2))
	}
	stats, err := SaveTxTableSegmented(tbl, dir, monthCfg())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 || stats.Skipped != 2 {
		t.Fatalf("incremental save stats = %+v, want 1 written, 2 skipped", stats)
	}
	loaded, _, err := LoadTxTableSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	sameTxTables(t, tbl, loaded)

	// Appending into an existing month rewrites that month.
	tbl.Append(time.Date(2024, 2, 15, 0, 0, 0, 0, time.UTC), itemset.New(3))
	stats, err = SaveTxTableSegmented(tbl, dir, monthCfg())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 || stats.Skipped != 2 {
		t.Fatalf("mid-history save stats = %+v", stats)
	}
	loaded, _, err = LoadTxTableSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	sameTxTables(t, tbl, loaded)
}

func TestSegmentedConfigMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	tbl := buildSeasonTable(t, 40)
	if _, err := SaveTxTableSegmented(tbl, dir, monthCfg()); err != nil {
		t.Fatal(err)
	}
	other := SegmentConfig{Granularity: timegran.Week, Width: 2}
	if _, err := SaveTxTableSegmented(tbl, dir, other); err == nil {
		t.Error("config mismatch accepted")
	}
	bad := SegmentConfig{Granularity: timegran.Month, Width: 0}
	if _, err := SaveTxTableSegmented(tbl, dir, bad); err == nil {
		t.Error("zero width accepted")
	}
}

func TestSegmentedDetectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	tbl := buildSeasonTable(t, 60)
	if _, err := SaveTxTableSegmented(tbl, dir, monthCfg()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".seg" {
			segPath = filepath.Join(dir, ent.Name())
			break
		}
	}
	corrupt(t, segPath)
	if _, _, err := LoadTxTableSegmented(dir); err == nil {
		t.Error("corrupt segment loaded")
	}
	// Missing segment referenced by the manifest.
	if err := os.Remove(segPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTxTableSegmented(dir); err == nil {
		t.Error("missing segment tolerated")
	}
	// Missing manifest.
	if _, _, err := LoadTxTableSegmented(t.TempDir()); err == nil {
		t.Error("missing manifest tolerated")
	}
}

func TestSegmentedPreEpochData(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	tbl, _ := NewTxTable("old")
	tbl.Append(time.Date(1969, 6, 1, 0, 0, 0, 0, time.UTC), itemset.New(1))
	tbl.Append(time.Date(1970, 2, 1, 0, 0, 0, 0, time.UTC), itemset.New(2))
	if _, err := SaveTxTableSegmented(tbl, dir, monthCfg()); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadTxTableSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	sameTxTables(t, tbl, loaded)
}
