package tdb

import (
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestDirtySinceBasic(t *testing.T) {
	tbl, err := NewTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	dayTx(t, tbl, 2024, time.January, 1, 1, 2)
	dayTx(t, tbl, 2024, time.January, 2, 2, 3)
	e0 := tbl.Epoch()

	// No appends since e0: empty dirty set, covered.
	dirty, epoch, ok := tbl.DirtySince(timegran.Day, e0)
	if !ok || len(dirty) != 0 || epoch != e0 {
		t.Fatalf("DirtySince(e0) = %v, %d, %v; want empty, %d, true", dirty, epoch, ok, e0)
	}

	// Three appends over two granules (one repeated, one new).
	dayTx(t, tbl, 2024, time.January, 2, 5)
	dayTx(t, tbl, 2024, time.January, 5, 6)
	dayTx(t, tbl, 2024, time.January, 5, 7)
	dirty, epoch, ok = tbl.DirtySince(timegran.Day, e0)
	if !ok {
		t.Fatal("DirtySince after appends not covered")
	}
	if epoch != e0+3 {
		t.Fatalf("epoch = %d, want %d", epoch, e0+3)
	}
	want := []timegran.Granule{
		timegran.GranuleOf(time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC), timegran.Day),
		timegran.GranuleOf(time.Date(2024, 1, 5, 0, 0, 0, 0, time.UTC), timegran.Day),
	}
	if len(dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}

	// The same history at month granularity collapses to one granule.
	dirty, _, ok = tbl.DirtySince(timegran.Month, e0)
	if !ok || len(dirty) != 1 {
		t.Fatalf("DirtySince(month) = %v, %v; want one granule", dirty, ok)
	}

	// since from the future is not covered.
	if _, _, ok := tbl.DirtySince(timegran.Day, epoch+1); ok {
		t.Fatal("DirtySince(future epoch) reported covered")
	}
}

func TestDirtySinceSortedDeduped(t *testing.T) {
	tbl, err := NewTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	dayTx(t, tbl, 2024, time.March, 1, 1)
	e0 := tbl.Epoch()
	// Out-of-order appends: dirty granules must come back sorted.
	for _, d := range []int{9, 3, 9, 1, 7, 3} {
		dayTx(t, tbl, 2024, time.March, d, 2)
	}
	dirty, _, ok := tbl.DirtySince(timegran.Day, e0)
	if !ok {
		t.Fatal("not covered")
	}
	if len(dirty) != 4 {
		t.Fatalf("dirty = %v, want 4 distinct granules", dirty)
	}
	for i := 1; i < len(dirty); i++ {
		if dirty[i] <= dirty[i-1] {
			t.Fatalf("dirty not sorted/deduped: %v", dirty)
		}
	}
}

func TestDirtySinceLogTrim(t *testing.T) {
	tbl, err := NewTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	// Overflow the change log so the oldest half is dropped; a window
	// anchored before the retained prefix must report not covered, while
	// a recent window stays answerable.
	for i := 0; i < changeLogCap+10; i++ {
		tbl.Append(at, itemset.New(1))
	}
	recent := tbl.Epoch() - 5
	if _, _, ok := tbl.DirtySince(timegran.Day, 0); ok {
		t.Fatal("trimmed log answered a pre-trim window")
	}
	dirty, _, ok := tbl.DirtySince(timegran.Day, recent)
	if !ok || len(dirty) != 1 {
		t.Fatalf("recent window after trim: dirty=%v ok=%v", dirty, ok)
	}
}

func TestAppendBatch(t *testing.T) {
	tbl, err := NewTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	dayTx(t, tbl, 2024, time.January, 1, 1)
	e0 := tbl.Epoch()
	batch := []Tx{
		{At: time.Date(2024, 1, 3, 9, 0, 0, 0, time.UTC), Items: itemset.New(2, 3)},
		{At: time.Date(2024, 1, 2, 9, 0, 0, 0, time.UTC), Items: itemset.Set{3, 2, 2}}, // non-canonical on purpose
	}
	firstID, epoch := tbl.AppendBatch(batch)
	if firstID != 1 {
		t.Fatalf("firstID = %d, want 1", firstID)
	}
	if epoch != e0+2 || tbl.Epoch() != epoch {
		t.Fatalf("epoch = %d, want %d", epoch, e0+2)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
	// Out-of-order batch rows must still yield a sorted table with
	// canonicalised items.
	var prev time.Time
	tbl.Each(func(tx Tx) bool {
		if tx.At.Before(prev) {
			t.Fatalf("table unsorted after AppendBatch")
		}
		prev = tx.At
		if !tx.Items.Valid() {
			t.Fatalf("non-canonical items stored: %v", tx.Items)
		}
		return true
	})
	dirty, _, ok := tbl.DirtySince(timegran.Day, e0)
	if !ok || len(dirty) != 2 {
		t.Fatalf("DirtySince after batch: dirty=%v ok=%v", dirty, ok)
	}
}
