// Package prune post-processes mined rule sets for presentation: the
// "result analysis" step of the IQMI loop. Miners at low thresholds
// return many true-but-uninteresting rules; these filters keep the
// ones a human should look at.
//
// Three classic measures are implemented:
//
//   - Lift: conf(X⇒Y) / supp(Y). Rules at or below 1 are negatively or
//     un-correlated and usually noise.
//   - Improvement: conf(X⇒Y) − max over proper sub-antecedents X'⊂X of
//     conf(X'⇒Y). A rule that barely beats a simpler rule with the
//     same consequent is redundant.
//   - Significance: the binomial tail probability of seeing the
//     observed co-occurrence count if X and Y were independent. Rules
//     with a large p-value co-occur plausibly by chance.
package prune

import (
	"fmt"
	"math"
	"sort"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
)

// Options selects which filters run; zero values disable a filter.
type Options struct {
	// MinLift keeps rules with Lift ≥ MinLift (e.g. 1.1).
	MinLift float64
	// MinImprovement keeps rules whose confidence exceeds every proper
	// sub-antecedent rule's confidence by at least this much (e.g.
	// 0.05). Rules whose sub-antecedent rules are not in the input set
	// are kept (nothing to compare against).
	MinImprovement float64
	// MaxPValue keeps rules whose independence p-value is at most this
	// (e.g. 0.01). Requires N > 0.
	MaxPValue float64
	// N is the number of transactions behind the rules' Support
	// fractions; required when MaxPValue > 0.
	N int
}

// Stats summarises a Filter run.
type Stats struct {
	In, Kept                       int
	DropLift, DropImprove, DropSig int
}

// Filter applies the enabled filters and returns the surviving rules in
// the input order, plus drop counts per filter. Filters apply in the
// order lift → significance → improvement (improvement is relative to
// the rules that survived the absolute filters).
func Filter(rules []apriori.Rule, opt Options) ([]apriori.Rule, Stats, error) {
	if opt.MaxPValue > 0 && opt.N <= 0 {
		return nil, Stats{}, fmt.Errorf("prune: MaxPValue needs N (transaction count)")
	}
	if opt.MinLift < 0 || opt.MaxPValue < 0 || opt.MinImprovement < 0 {
		return nil, Stats{}, fmt.Errorf("prune: negative option")
	}
	stats := Stats{In: len(rules)}

	var pass []apriori.Rule
	for _, r := range rules {
		if opt.MinLift > 0 && r.Lift < opt.MinLift {
			stats.DropLift++
			continue
		}
		if opt.MaxPValue > 0 {
			p := IndependencePValue(r, opt.N)
			if p > opt.MaxPValue {
				stats.DropSig++
				continue
			}
		}
		pass = append(pass, r)
	}

	if opt.MinImprovement > 0 {
		// Index confidence by (antecedent, consequent) among survivors.
		conf := make(map[string]float64, len(pass))
		for _, r := range pass {
			conf[r.Key()] = r.Confidence
		}
		var out []apriori.Rule
		for _, r := range pass {
			if improvement(r, conf) < opt.MinImprovement {
				stats.DropImprove++
				continue
			}
			out = append(out, r)
		}
		pass = out
	}
	stats.Kept = len(pass)
	return pass, stats, nil
}

// improvement returns conf(r) minus the best confidence among the
// immediate sub-antecedent rules (drop one antecedent item, same
// consequent) present in conf. Deeper sub-antecedents are covered
// transitively: if X” ⊂ X' ⊂ X and X'⇒y barely improves on X”⇒y,
// X'⇒y is itself dropped and X⇒y is then compared against what
// remains of its chain on the next filtering of the survivors — one
// pass against immediate parents is the standard approximation.
// Returns +Inf when no comparable simpler rule is in the set.
func improvement(r apriori.Rule, conf map[string]float64) float64 {
	if r.Antecedent.Len() <= 1 {
		return math.Inf(1) // no proper sub-antecedent rules exist
	}
	best := math.Inf(-1)
	r.Antecedent.EachSubsetK1(func(sub itemset.Set) bool {
		key := apriori.Rule{Antecedent: sub.Clone(), Consequent: r.Consequent}.Key()
		if c, ok := conf[key]; ok && c > best {
			best = c
		}
		return true
	})
	if math.IsInf(best, -1) {
		return math.Inf(1)
	}
	return r.Confidence - best
}

// IndependencePValue returns P[count ≥ observed] under the hypothesis
// that antecedent and consequent occur independently: the binomial tail
// B(n, pₓ·p_y) at the rule's joint count. Support fractions reconstruct
// the marginals: pₓ = supp(X∪Y)/conf, p_y from lift = conf/p_y.
func IndependencePValue(r apriori.Rule, n int) float64 {
	if r.Confidence <= 0 || r.Lift <= 0 || n <= 0 {
		return 1
	}
	px := r.Support / r.Confidence // supp(X)
	py := r.Confidence / r.Lift    // supp(Y)
	p := px * py
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 1
	}
	k := int(math.Round(r.Support * float64(n)))
	return binomTail(n, k, p)
}

// binomTail is P[Bin(n,p) ≥ k], computed exactly in log space for
// small n and by normal approximation with continuity correction for
// large n.
func binomTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if n <= 10000 {
		// Exact sum of the upper tail.
		logP := math.Log(p)
		logQ := math.Log1p(-p)
		sum := 0.0
		for i := k; i <= n; i++ {
			lg, _ := math.Lgamma(float64(n + 1))
			lgi, _ := math.Lgamma(float64(i + 1))
			lgni, _ := math.Lgamma(float64(n - i + 1))
			sum += math.Exp(lg - lgi - lgni + float64(i)*logP + float64(n-i)*logQ)
		}
		if sum > 1 {
			sum = 1
		}
		return sum
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		if float64(k) <= mean {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mean) / sd
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// SortByLift orders rules by descending lift, then canonically; a
// convenient presentation order after filtering.
func SortByLift(rules []apriori.Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		return rules[i].Compare(rules[j]) < 0
	})
}
