package prune

import (
	"math"
	"testing"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/itemset"
)

func rule(ante, cons itemset.Set, supp, conf, lift float64) apriori.Rule {
	return apriori.Rule{
		Antecedent: ante, Consequent: cons,
		Support: supp, Confidence: conf, Lift: lift,
	}
}

func TestFilterLift(t *testing.T) {
	rules := []apriori.Rule{
		rule(itemset.New(1), itemset.New(2), 0.10, 0.8, 2.0),
		rule(itemset.New(3), itemset.New(4), 0.10, 0.8, 0.9), // uncorrelated
	}
	out, stats, err := Filter(rules, Options{MinLift: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Antecedent.Equal(itemset.New(1)) {
		t.Errorf("survivors = %v", out)
	}
	if stats.DropLift != 1 || stats.Kept != 1 || stats.In != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFilterImprovement(t *testing.T) {
	// {1,2}⇒{9} adds nothing over {1}⇒{9}; {3,4}⇒{9} beats {3}⇒{9}.
	rules := []apriori.Rule{
		rule(itemset.New(1), itemset.New(9), 0.2, 0.80, 1.5),
		rule(itemset.New(1, 2), itemset.New(9), 0.1, 0.81, 1.5),
		rule(itemset.New(3), itemset.New(9), 0.2, 0.50, 1.5),
		rule(itemset.New(3, 4), itemset.New(9), 0.1, 0.90, 1.5),
	}
	out, stats, err := Filter(rules, Options{MinImprovement: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DropImprove != 1 {
		t.Errorf("stats = %+v", stats)
	}
	for _, r := range out {
		if r.Antecedent.Equal(itemset.New(1, 2)) {
			t.Error("redundant rule survived")
		}
	}
	// The improving specialization survives.
	found := false
	for _, r := range out {
		if r.Antecedent.Equal(itemset.New(3, 4)) {
			found = true
		}
	}
	if !found {
		t.Error("genuinely better specialization dropped")
	}
}

func TestFilterSignificance(t *testing.T) {
	n := 10000
	// Strong rule: X and Y each 10%, joint 5% (expected 1% if indep).
	strong := rule(itemset.New(1), itemset.New(2), 0.05, 0.5, 5.0)
	// Chance rule: X 50%, Y 40%, joint 20% — exactly independent.
	chance := rule(itemset.New(3), itemset.New(4), 0.20, 0.4, 1.0)
	out, stats, err := Filter([]apriori.Rule{strong, chance}, Options{MaxPValue: 0.01, N: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Antecedent.Equal(itemset.New(1)) {
		t.Errorf("survivors = %v (stats %+v)", out, stats)
	}
	if stats.DropSig != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFilterValidation(t *testing.T) {
	if _, _, err := Filter(nil, Options{MaxPValue: 0.05}); err == nil {
		t.Error("MaxPValue without N accepted")
	}
	if _, _, err := Filter(nil, Options{MinLift: -1}); err == nil {
		t.Error("negative MinLift accepted")
	}
	out, stats, err := Filter(nil, Options{})
	if err != nil || len(out) != 0 || stats.In != 0 {
		t.Errorf("empty input: %v %+v %v", out, stats, err)
	}
}

func TestIndependencePValue(t *testing.T) {
	// Perfectly independent: p-value should be around 0.5, certainly
	// not small.
	indep := rule(itemset.New(1), itemset.New(2), 0.20, 0.4, 1.0)
	if p := IndependencePValue(indep, 10000); p < 0.1 {
		t.Errorf("independent rule p = %v", p)
	}
	// Strongly dependent: tiny p-value.
	dep := rule(itemset.New(1), itemset.New(2), 0.05, 0.5, 5.0)
	if p := IndependencePValue(dep, 10000); p > 1e-6 {
		t.Errorf("dependent rule p = %v", p)
	}
	// Degenerate inputs return 1 (uninformative, never significant).
	if p := IndependencePValue(apriori.Rule{}, 100); p != 1 {
		t.Errorf("zero rule p = %v", p)
	}
	if p := IndependencePValue(dep, 0); p != 1 {
		t.Errorf("n=0 p = %v", p)
	}
}

func TestBinomTail(t *testing.T) {
	// P[Bin(10, 0.5) >= 0] = 1; >= 11 = 0.
	if got := binomTail(10, 0, 0.5); got != 1 {
		t.Errorf("k=0: %v", got)
	}
	if got := binomTail(10, 11, 0.5); got != 0 {
		t.Errorf("k>n: %v", got)
	}
	// P[Bin(10, 0.5) >= 5] = 0.623046875 exactly.
	if got := binomTail(10, 5, 0.5); math.Abs(got-0.623046875) > 1e-12 {
		t.Errorf("exact tail = %v", got)
	}
	// Exact and approximate regimes agree reasonably at z ≈ 2:
	// n=10000 (exact path): sd 50, k = 5000 + 2·50 = 5100;
	// n=20001 (normal path): sd ≈ 70.71, k = 10000.5 + 2·70.71 ≈ 10142.
	exact := binomTail(10000, 5100, 0.5)
	approx := binomTail(20001, 10142, 0.5)
	if exact < 0.01 || exact > 0.05 || approx < 0.01 || approx > 0.05 {
		t.Errorf("tails around z≈2: exact=%v approx=%v", exact, approx)
	}
}

func TestSortByLift(t *testing.T) {
	rules := []apriori.Rule{
		rule(itemset.New(1), itemset.New(2), 0.1, 0.5, 1.2),
		rule(itemset.New(3), itemset.New(4), 0.1, 0.5, 3.0),
		rule(itemset.New(2), itemset.New(3), 0.1, 0.5, 3.0),
	}
	SortByLift(rules)
	if rules[0].Lift != 3.0 || rules[2].Lift != 1.2 {
		t.Errorf("order = %v", rules)
	}
	// Ties break canonically: {2}⇒{3} before {3}⇒{4}.
	if !rules[0].Antecedent.Equal(itemset.New(2)) {
		t.Errorf("tie break = %v", rules[0])
	}
}

func TestFilterEndToEnd(t *testing.T) {
	// Mine a small dataset and prune: the pipeline a user would run.
	txs := apriori.Transactions{}
	for i := 0; i < 50; i++ {
		items := []itemset.Item{1, 2}
		if i%2 == 0 {
			items = append(items, 3)
		}
		if i%10 == 0 {
			items = append(items, 4)
		}
		txs = append(txs, itemset.New(items...))
	}
	_, rules, err := apriori.MineRules(txs,
		apriori.Config{MinSupport: 0.05},
		apriori.RuleConfig{MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Filter(rules, Options{MinLift: 1.05, MinImprovement: 0.02, MaxPValue: 0.05, N: len(txs)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != len(out) || stats.In != len(rules) {
		t.Errorf("stats inconsistent: %+v, out=%d", stats, len(out))
	}
	if stats.Kept >= stats.In {
		t.Errorf("nothing pruned from %d rules (kept %d)", stats.In, stats.Kept)
	}
}
