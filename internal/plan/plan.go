// Package plan is the logical-plan / physical-operator layer between
// the TML executor and the mining kernel. A MINE statement compiles to
// a chain of operators (scan → hold acquisition → task mining → prune
// → render → limit); the same plan object drives both execution and
// EXPLAIN, so what EXPLAIN prints is — by construction — what runs.
//
// Each operator is a Node: an operator name from the shared vocabulary
// below, a detail list for EXPLAIN, the input node, and a Run closure
// holding the physical implementation. Execute walks the chain leaf
// first, threading a context.Context (checked before every operator;
// the operators themselves push it into the counting loops) and
// wrapping every operator in an "op:<name>" tracer span plus a
// caller-timed duration, so per-operator wall time reaches -stats and
// /metrics through the ordinary tracer plumbing.
package plan

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
)

// Operator names. Mining operators are "mine:" plus the obs task
// vocabulary key (mine:periods, mine:during, …) so tracer spans,
// EXPLAIN and metric labels agree.
const (
	OpScan       = "scan"
	OpBuildHold  = "build-hold"  // cold hold-table build
	OpCachedHold = "cached-hold" // hold table served from the HoldCache
	OpPrune      = "prune"
	OpRender     = "render"
	OpLimit      = "limit"
)

// MineOp derives the mining operator name from a task vocabulary key,
// e.g. MineOp(obs.TaskPeriods) == "mine:periods".
func MineOp(task string) string { return "mine:" + task }

// KV is one EXPLAIN detail of a node, rendered as key=value.
type KV struct{ Key, Val string }

// Node is one operator of a plan. Plans are single-input chains: Input
// points at the producer, nil for the leaf (the scan).
type Node struct {
	Op     string
	Detail []KV
	Input  *Node
	// Run executes the operator: in is the input operator's output (nil
	// for the leaf). Implementations should check ctx inside their own
	// long loops; Execute checks it between operators.
	Run func(ctx context.Context, in any) (any, error)
}

// With appends a detail and returns the node, for fluent construction.
func (n *Node) With(key, val string) *Node {
	n.Detail = append(n.Detail, KV{Key: key, Val: val})
	return n
}

// describe renders "op (k=v, k=v)".
func (n *Node) describe() string {
	if len(n.Detail) == 0 {
		return n.Op
	}
	var b strings.Builder
	b.WriteString(n.Op)
	b.WriteString(" (")
	for i, d := range n.Detail {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Key)
		b.WriteByte('=')
		b.WriteString(d.Val)
	}
	b.WriteByte(')')
	return b.String()
}

// OpStat is the measured wall time of one executed operator, in
// execution order.
type OpStat struct {
	Op       string
	Duration time.Duration
}

// Chain returns the operators of the plan rooted at root in execution
// order: leaf (scan) first, root (the result-shaping tail) last.
func Chain(root *Node) []*Node {
	var rev []*Node
	for n := root; n != nil; n = n.Input {
		rev = append(rev, n)
	}
	out := make([]*Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// Execute runs the plan rooted at root: each operator in execution
// order, its input the previous operator's output. The context is
// checked before every operator, so a cancelled statement stops at the
// next operator boundary even when an operator ignores ctx; operators
// that loop (builds, task mining) observe ctx themselves and return
// promptly. Every operator is wrapped in an "op:<name>" tracer span
// and its duration is reported through obs.ObserveSpan, so collectors
// list per-operator wall time and the metrics registry grows one
// duration histogram per operator.
//
// The returned OpStats cover the operators that ran (including a
// failed final one); on error the output is nil.
func Execute(ctx context.Context, root *Node, tr obs.Tracer) (any, []OpStat, error) {
	if root == nil {
		return nil, nil, fmt.Errorf("plan: empty plan")
	}
	tr = obs.OrNop(tr)
	trace := tr.Enabled()
	chain := Chain(root)
	stats := make([]OpStat, 0, len(chain))
	var in any
	for _, n := range chain {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if n.Run == nil {
			return nil, stats, fmt.Errorf("plan: operator %q has no implementation", n.Op)
		}
		span := obs.OpSpan(n.Op)
		if trace {
			tr.StartTask(span)
			// A request-scoped trace gets each operator's EXPLAIN
			// details as span attributes, so the span tree carries the
			// same predicted-backend/threshold annotations EXPLAIN
			// prints.
			if t := obs.TraceFromContext(ctx); t != nil {
				for _, kv := range n.Detail {
					t.SetAttr(kv.Key, kv.Val)
				}
			}
		}
		t0 := time.Now()
		out, err := n.Run(ctx, in)
		d := time.Since(t0)
		if trace {
			tr.EndTask()
			obs.ObserveSpan(tr, span, d)
		}
		stats = append(stats, OpStat{Op: n.Op, Duration: d})
		if err != nil {
			return nil, stats, err
		}
		in = out
	}
	return in, stats, nil
}

// Explain renders the plan as an indented tree, root first — the
// conventional EXPLAIN orientation: the top line is what the statement
// returns, each child below it is that operator's input.
//
//	limit (n=10)
//	└─ render (cols=antecedent, consequent, ...)
//	   └─ mine:periods (min_length=2)
//	      └─ cached-hold (cache=rethreshold, backend=bitmap)
//	         └─ scan (table=baskets, transactions=280)
func Explain(root *Node) []string {
	var lines []string
	depth := 0
	for n := root; n != nil; n = n.Input {
		prefix := ""
		if depth > 0 {
			prefix = strings.Repeat("   ", depth-1) + "└─ "
		}
		lines = append(lines, prefix+n.describe())
		depth++
	}
	return lines
}
