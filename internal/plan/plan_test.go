package plan

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/tarm-project/tarm/internal/obs"
)

// chain3 builds scan → mine:periods → render with Run closures that
// record execution order and thread values through.
func chain3(order *[]string) *Node {
	scan := &Node{
		Op: OpScan,
		Run: func(ctx context.Context, in any) (any, error) {
			*order = append(*order, OpScan)
			return 1, nil
		},
	}
	scan.With("table", "baskets")
	mine := &Node{
		Op:    MineOp(obs.TaskPeriods),
		Input: scan,
		Run: func(ctx context.Context, in any) (any, error) {
			*order = append(*order, "mine")
			return in.(int) + 1, nil
		},
	}
	render := &Node{
		Op:    OpRender,
		Input: mine,
		Run: func(ctx context.Context, in any) (any, error) {
			*order = append(*order, OpRender)
			return in.(int) + 1, nil
		},
	}
	return render
}

func TestChainOrder(t *testing.T) {
	var order []string
	root := chain3(&order)
	chain := Chain(root)
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want 3", len(chain))
	}
	if chain[0].Op != OpScan || chain[1].Op != "mine:periods" || chain[2].Op != OpRender {
		t.Fatalf("chain order = %s, %s, %s", chain[0].Op, chain[1].Op, chain[2].Op)
	}
}

func TestExecuteThreadsOutputs(t *testing.T) {
	var order []string
	root := chain3(&order)
	out, stats, err := Execute(context.Background(), root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != 3 {
		t.Fatalf("out = %v, want 3 (scan=1, +1 per operator)", out)
	}
	if got := strings.Join(order, ","); got != "scan,mine,render" {
		t.Fatalf("execution order = %s", got)
	}
	if len(stats) != 3 || stats[0].Op != OpScan || stats[2].Op != OpRender {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExecuteCancelled(t *testing.T) {
	var order []string
	root := chain3(&order)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Execute(ctx, root, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(order) != 0 {
		t.Fatalf("operators ran under a cancelled context: %v", order)
	}
}

func TestExecuteCancelBetweenOperators(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scan := &Node{Op: OpScan, Run: func(context.Context, any) (any, error) {
		cancel() // fires after the scan completes
		return nil, nil
	}}
	render := &Node{Op: OpRender, Input: scan, Run: func(context.Context, any) (any, error) {
		t.Fatal("render ran after cancellation")
		return nil, nil
	}}
	_, stats, err := Execute(ctx, render, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(stats) != 1 || stats[0].Op != OpScan {
		t.Fatalf("stats = %+v, want just the scan", stats)
	}
}

func TestExecuteEmptyAndUnimplemented(t *testing.T) {
	if _, _, err := Execute(context.Background(), nil, nil); err == nil {
		t.Fatal("nil root: want error")
	}
	n := &Node{Op: OpLimit}
	if _, _, err := Execute(context.Background(), n, nil); err == nil || !strings.Contains(err.Error(), "no implementation") {
		t.Fatalf("nil Run: err = %v", err)
	}
}

func TestExecuteOperatorError(t *testing.T) {
	boom := errors.New("boom")
	scan := &Node{Op: OpScan, Run: func(context.Context, any) (any, error) {
		return nil, boom
	}}
	out, stats, err := Execute(context.Background(), scan, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
	if len(stats) != 1 {
		t.Fatalf("stats = %+v, want the failed operator measured", stats)
	}
}

func TestExecuteEmitsOpSpans(t *testing.T) {
	var order []string
	root := chain3(&order)
	collect := obs.NewCollectTracer()
	if _, _, err := Execute(context.Background(), root, collect); err != nil {
		t.Fatal(err)
	}
	st := collect.Stats()
	want := map[string]bool{
		"op:scan": false, "op:mine:periods": false, "op:render": false,
	}
	for _, task := range st.Tasks {
		if _, ok := want[task.Name]; ok {
			want[task.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q missing from collected tasks %v", name, st.Tasks)
		}
	}
}

func TestExplainTree(t *testing.T) {
	var order []string
	root := chain3(&order)
	root.With("cols", "3")
	lines := Explain(root)
	want := []string{
		"render (cols=3)",
		"└─ mine:periods",
		"   └─ scan (table=baskets)",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestDescribeMultipleDetails(t *testing.T) {
	n := &Node{Op: OpBuildHold}
	n.With("cache", "cold").With("support", "0.1")
	if got := n.describe(); got != "build-hold (cache=cold, support=0.1)" {
		t.Fatalf("describe = %q", got)
	}
}
