package minisql

import (
	"fmt"
	"strings"
	"time"

	"github.com/tarm-project/tarm/internal/tdb"
)

// env is the row context an expression evaluates in.
type env struct {
	schema tdb.Schema
	row    tdb.Row
	// aggs maps aggregate nodes (by identity) to their computed value;
	// only set during the projection phase of grouped queries.
	aggs map[*Agg]tdb.Value
}

func (e *env) col(name string) (tdb.Value, error) {
	i := e.schema.ColIndex(name)
	if i < 0 {
		return tdb.Value{}, fmt.Errorf("minisql: unknown column %q", name)
	}
	return e.row[i], nil
}

// eval evaluates an expression against one row.
func eval(ev *env, e Expr) (tdb.Value, error) {
	switch v := e.(type) {
	case *Lit:
		return v.V, nil
	case *ColRef:
		return ev.col(v.Name)
	case *Unary:
		return evalUnary(ev, v)
	case *Binary:
		return evalBinary(ev, v)
	case *IsNull:
		inner, err := eval(ev, v.E)
		if err != nil {
			return tdb.Value{}, err
		}
		return tdb.Bool(inner.IsNull() != v.Negate), nil
	case *InList:
		return evalInList(ev, v)
	case *FuncCall:
		return evalFunc(ev, v)
	case *Agg:
		if ev.aggs != nil {
			if val, ok := ev.aggs[v]; ok {
				return val, nil
			}
		}
		return tdb.Value{}, fmt.Errorf("minisql: aggregate %s outside of SELECT projection", v)
	default:
		return tdb.Value{}, fmt.Errorf("minisql: cannot evaluate %T", e)
	}
}

func evalUnary(ev *env, u *Unary) (tdb.Value, error) {
	inner, err := eval(ev, u.E)
	if err != nil {
		return tdb.Value{}, err
	}
	switch u.Op {
	case "-":
		switch inner.K {
		case tdb.KindInt:
			return tdb.Int(-inner.AsInt()), nil
		case tdb.KindFloat:
			return tdb.Float(-inner.AsFloat()), nil
		case tdb.KindNull:
			return tdb.Null(), nil
		default:
			return tdb.Value{}, fmt.Errorf("minisql: cannot negate %v", inner.K)
		}
	case "not":
		if inner.IsNull() {
			return tdb.Null(), nil
		}
		if inner.K != tdb.KindBool {
			return tdb.Value{}, fmt.Errorf("minisql: NOT wants a boolean, got %v", inner.K)
		}
		return tdb.Bool(!inner.AsBool()), nil
	default:
		return tdb.Value{}, fmt.Errorf("minisql: unknown unary operator %q", u.Op)
	}
}

func evalBinary(ev *env, b *Binary) (tdb.Value, error) {
	// Logic operators short-circuit.
	if b.Op == "and" || b.Op == "or" {
		l, err := eval(ev, b.L)
		if err != nil {
			return tdb.Value{}, err
		}
		lb, lok := boolOf(l)
		if lok {
			if b.Op == "and" && !lb {
				return tdb.Bool(false), nil
			}
			if b.Op == "or" && lb {
				return tdb.Bool(true), nil
			}
		}
		r, err := eval(ev, b.R)
		if err != nil {
			return tdb.Value{}, err
		}
		rb, rok := boolOf(r)
		if !lok || !rok {
			return tdb.Null(), nil
		}
		if b.Op == "and" {
			return tdb.Bool(lb && rb), nil
		}
		return tdb.Bool(lb || rb), nil
	}

	l, err := eval(ev, b.L)
	if err != nil {
		return tdb.Value{}, err
	}
	r, err := eval(ev, b.R)
	if err != nil {
		return tdb.Value{}, err
	}
	switch b.Op {
	case "+", "-", "*", "/", "%":
		return arith(b.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compare(b.Op, l, r)
	case "like":
		if l.IsNull() || r.IsNull() {
			return tdb.Null(), nil
		}
		if l.K != tdb.KindString || r.K != tdb.KindString {
			return tdb.Value{}, fmt.Errorf("minisql: LIKE wants strings")
		}
		return tdb.Bool(likeMatch(r.AsString(), l.AsString())), nil
	default:
		return tdb.Value{}, fmt.Errorf("minisql: unknown operator %q", b.Op)
	}
}

func boolOf(v tdb.Value) (val, known bool) {
	if v.IsNull() {
		return false, false
	}
	return v.AsBool(), v.K == tdb.KindBool
}

func arith(op string, l, r tdb.Value) (tdb.Value, error) {
	if l.IsNull() || r.IsNull() {
		return tdb.Null(), nil
	}
	if !l.Numeric() || !r.Numeric() {
		// String concatenation with +.
		if op == "+" && l.K == tdb.KindString && r.K == tdb.KindString {
			return tdb.Str(l.AsString() + r.AsString()), nil
		}
		return tdb.Value{}, fmt.Errorf("minisql: %q wants numbers, got %v and %v", op, l.K, r.K)
	}
	if l.K == tdb.KindInt && r.K == tdb.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return tdb.Int(a + b), nil
		case "-":
			return tdb.Int(a - b), nil
		case "*":
			return tdb.Int(a * b), nil
		case "/":
			if b == 0 {
				return tdb.Value{}, fmt.Errorf("minisql: division by zero")
			}
			return tdb.Int(a / b), nil
		case "%":
			if b == 0 {
				return tdb.Value{}, fmt.Errorf("minisql: modulo by zero")
			}
			return tdb.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return tdb.Float(a + b), nil
	case "-":
		return tdb.Float(a - b), nil
	case "*":
		return tdb.Float(a * b), nil
	case "/":
		if b == 0 {
			return tdb.Value{}, fmt.Errorf("minisql: division by zero")
		}
		return tdb.Float(a / b), nil
	case "%":
		return tdb.Value{}, fmt.Errorf("minisql: %% wants integers")
	}
	return tdb.Value{}, fmt.Errorf("minisql: unknown arithmetic operator %q", op)
}

// dateLayouts tried when a string meets a time in a comparison, so
// "WHERE at >= '1998-01-01'" works the way users expect from SQL.
var dateLayouts = []string{"2006-01-02 15:04:05", "2006-01-02 15:04", "2006-01-02"}

func coerceTime(v tdb.Value) (tdb.Value, bool) {
	if v.K != tdb.KindString {
		return v, false
	}
	for _, layout := range dateLayouts {
		if t, err := time.ParseInLocation(layout, v.AsString(), time.UTC); err == nil {
			return tdb.Time(t), true
		}
	}
	return v, false
}

func compare(op string, l, r tdb.Value) (tdb.Value, error) {
	if l.IsNull() || r.IsNull() {
		return tdb.Null(), nil // SQL three-valued logic
	}
	if l.K == tdb.KindTime && r.K == tdb.KindString {
		if c, ok := coerceTime(r); ok {
			r = c
		}
	}
	if r.K == tdb.KindTime && l.K == tdb.KindString {
		if c, ok := coerceTime(l); ok {
			l = c
		}
	}
	c, err := l.Compare(r)
	if err != nil {
		return tdb.Value{}, err
	}
	switch op {
	case "=":
		return tdb.Bool(c == 0), nil
	case "<>":
		return tdb.Bool(c != 0), nil
	case "<":
		return tdb.Bool(c < 0), nil
	case "<=":
		return tdb.Bool(c <= 0), nil
	case ">":
		return tdb.Bool(c > 0), nil
	case ">=":
		return tdb.Bool(c >= 0), nil
	}
	return tdb.Value{}, fmt.Errorf("minisql: unknown comparison %q", op)
}

func evalInList(ev *env, in *InList) (tdb.Value, error) {
	needle, err := eval(ev, in.E)
	if err != nil {
		return tdb.Value{}, err
	}
	if needle.IsNull() {
		return tdb.Null(), nil
	}
	sawNull := false
	for _, le := range in.List {
		v, err := eval(ev, le)
		if err != nil {
			return tdb.Value{}, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		eq, err := compare("=", needle, v)
		if err != nil {
			return tdb.Value{}, err
		}
		if eq.K == tdb.KindBool && eq.AsBool() {
			return tdb.Bool(!in.Negate), nil
		}
	}
	if sawNull {
		return tdb.Null(), nil
	}
	return tdb.Bool(in.Negate), nil
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
// Matching is case-sensitive, like Oracle's.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			p = strings.TrimLeft(p, "%")
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if s == "" || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return s == ""
}

// truthy interprets a WHERE result: true only for boolean TRUE; NULL
// and FALSE filter the row out.
func truthy(v tdb.Value) (bool, error) {
	if v.IsNull() {
		return false, nil
	}
	if v.K != tdb.KindBool {
		return false, fmt.Errorf("minisql: WHERE condition is %v, not boolean", v.K)
	}
	return v.AsBool(), nil
}
