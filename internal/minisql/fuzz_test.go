package minisql

import (
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
)

// FuzzParse checks the SQL parser never panics, and that statements it
// accepts execute without panicking against a small database (errors
// are fine; crashes are not).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM sales WHERE amount > 5 ORDER BY amount DESC LIMIT 3`,
		`SELECT product, COUNT(*) AS n FROM sales GROUP BY product HAVING COUNT(*) > 1`,
		`SELECT MONTH(at), SUM(qty) FROM sales GROUP BY MONTH(at)`,
		`INSERT INTO sales VALUES (9, 1.5, 'x', 1, '2024-01-01')`,
		`UPDATE sales SET qty = qty + 1 WHERE product LIKE 'b%'`,
		`DELETE FROM sales WHERE amount IS NULL`,
		`CREATE TABLE t (a int, b string)`,
		`SHOW TABLES`,
		`DESCRIBE sales`,
		`SELECT 'unterminated`,
		`SELECT (1 + ) FROM sales`,
		`SELECT -- comment`,
		`SELECT COALESCE(amount, 0), ROUND(1.5, 1) FROM sales`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db := tdb.NewMemDB()
		schema, _ := tdb.NewSchema(
			tdb.Column{Name: "id", Kind: tdb.KindInt},
			tdb.Column{Name: "amount", Kind: tdb.KindFloat},
			tdb.Column{Name: "product", Kind: tdb.KindString},
			tdb.Column{Name: "qty", Kind: tdb.KindInt},
			tdb.Column{Name: "at", Kind: tdb.KindTime},
		)
		tbl, _ := db.CreateTable("sales", schema)
		tbl.Insert(tdb.Row{tdb.Int(1), tdb.Float(2), tdb.Str("bread"), tdb.Int(3), tdb.Time(time.Unix(0, 0))})
		tx, _ := db.CreateTxTable("baskets")
		tx.Append(time.Unix(0, 0), itemset.New(0, 1))

		eng := NewEngine(db)
		res, err := eng.Exec(input)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatalf("nil result without error for %q", input)
		}
	})
}
