package minisql

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/tarm-project/tarm/internal/tdb"
)

// Result is the output of a statement: a header and zero or more rows.
// Non-query statements produce a one-line informational result.
type Result struct {
	Cols []string
	Rows []tdb.Row
}

// Engine executes SQL statements against a tdb database. Transaction
// tables are queryable through a virtual (tid, at, item) view with one
// row per basket item, mirroring how the paper's prototype stored
// baskets relationally in Oracle.
type Engine struct {
	db *tdb.DB
}

// NewEngine wraps a database.
func NewEngine(db *tdb.DB) *Engine { return &Engine{db: db} }

// Exec parses and runs one statement.
func (e *Engine) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(stmt)
}

// ExecStmt runs an already parsed statement.
func (e *Engine) ExecStmt(stmt Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return e.execSelect(s)
	case *InsertStmt:
		return e.execInsert(s)
	case *CreateTableStmt:
		schema, err := tdb.NewSchema(s.Cols...)
		if err != nil {
			return nil, err
		}
		if _, err := e.db.CreateTable(s.Table, schema); err != nil {
			return nil, err
		}
		return message("table %s created", s.Table), nil
	case *DropTableStmt:
		dropped, err := e.db.Drop(s.Table)
		if err != nil {
			return nil, err
		}
		if !dropped {
			return nil, fmt.Errorf("minisql: no table named %q", s.Table)
		}
		return message("table %s dropped", s.Table), nil
	case *DeleteStmt:
		return e.execDelete(s)
	case *UpdateStmt:
		return e.execUpdate(s)
	case *ShowTablesStmt:
		res := &Result{Cols: []string{"table"}}
		for _, n := range e.db.Names() {
			res.Rows = append(res.Rows, tdb.Row{tdb.Str(n)})
		}
		return res, nil
	case *DescribeStmt:
		return e.execDescribe(s)
	default:
		return nil, fmt.Errorf("minisql: unsupported statement %T", stmt)
	}
}

func message(format string, args ...any) *Result {
	return &Result{Cols: []string{"result"}, Rows: []tdb.Row{{tdb.Str(fmt.Sprintf(format, args...))}}}
}

// scanTarget resolves FROM: a relational table directly, or a virtual
// item-level view of a transaction table.
func (e *Engine) scanTarget(name string) (tdb.Schema, func(fn func(row tdb.Row) bool), error) {
	if t, ok := e.db.Table(name); ok {
		return t.Schema(), t.Scan, nil
	}
	if t, ok := e.db.TxTable(name); ok {
		schema, err := tdb.NewSchema(
			tdb.Column{Name: "tid", Kind: tdb.KindInt},
			tdb.Column{Name: "at", Kind: tdb.KindTime},
			tdb.Column{Name: "item", Kind: tdb.KindString},
		)
		if err != nil {
			return tdb.Schema{}, nil, err
		}
		dict := e.db.Dict()
		scan := func(fn func(row tdb.Row) bool) {
			t.Each(func(tx tdb.Tx) bool {
				for _, it := range tx.Items {
					name := fmt.Sprintf("#%d", it)
					if n, err := dict.Name(it); err == nil {
						name = n
					}
					if !fn(tdb.Row{tdb.Int(tx.ID), tdb.Time(tx.At), tdb.Str(name)}) {
						return false
					}
				}
				return true
			})
		}
		return schema, scan, nil
	}
	return tdb.Schema{}, nil, fmt.Errorf("minisql: no table named %q", name)
}

func (e *Engine) execDescribe(s *DescribeStmt) (*Result, error) {
	schema, _, err := e.scanTarget(s.Table)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []string{"column", "type"}}
	for _, c := range schema.Cols {
		res.Rows = append(res.Rows, tdb.Row{tdb.Str(c.Name), tdb.Str(c.Kind.String())})
	}
	return res, nil
}

func (e *Engine) execInsert(s *InsertStmt) (*Result, error) {
	t, ok := e.db.Table(s.Table)
	if !ok {
		if e.db.IsTxTable(s.Table) {
			return nil, fmt.Errorf("minisql: %q is a transaction table; load it with the data tools, not INSERT", s.Table)
		}
		return nil, fmt.Errorf("minisql: no table named %q", s.Table)
	}
	emptyEnv := &env{}
	for _, rowExprs := range s.Rows {
		row := make(tdb.Row, len(rowExprs))
		for i, ex := range rowExprs {
			v, err := eval(emptyEnv, ex)
			if err != nil {
				return nil, err
			}
			// Strings inserted into time columns coerce, like in
			// comparisons.
			if i < len(t.Schema().Cols) && t.Schema().Cols[i].Kind == tdb.KindTime {
				if c, ok := coerceTime(v); ok {
					v = c
				}
			}
			row[i] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return message("%d row(s) inserted into %s", len(s.Rows), s.Table), nil
}

// mutableTable resolves a statement target that must be a relational
// table (transaction tables are append-only through the data tools).
func (e *Engine) mutableTable(name string) (*tdb.Table, error) {
	if t, ok := e.db.Table(name); ok {
		return t, nil
	}
	if e.db.IsTxTable(name) {
		return nil, fmt.Errorf("minisql: %q is a transaction table; it is append-only", name)
	}
	return nil, fmt.Errorf("minisql: no table named %q", name)
}

// whereMatcher compiles an optional WHERE into a row predicate.
func whereMatcher(schema tdb.Schema, where Expr) func(row tdb.Row) (bool, error) {
	return func(row tdb.Row) (bool, error) {
		if where == nil {
			return true, nil
		}
		v, err := eval(&env{schema: schema, row: row}, where)
		if err != nil {
			return false, err
		}
		return truthy(v)
	}
}

func (e *Engine) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := e.mutableTable(s.Table)
	if err != nil {
		return nil, err
	}
	n, err := t.Delete(whereMatcher(t.Schema(), s.Where))
	if err != nil {
		return nil, err
	}
	return message("%d row(s) deleted from %s", n, s.Table), nil
}

func (e *Engine) execUpdate(s *UpdateStmt) (*Result, error) {
	t, err := e.mutableTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	cols := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		idx := schema.ColIndex(set.Col)
		if idx < 0 {
			return nil, fmt.Errorf("minisql: unknown column %q", set.Col)
		}
		cols[i] = idx
	}
	n, err := t.Update(whereMatcher(schema, s.Where), func(row tdb.Row) (tdb.Row, error) {
		out := make(tdb.Row, len(row))
		copy(out, row)
		// All SET expressions see the row's old values, per SQL.
		ev := &env{schema: schema, row: row}
		for i, set := range s.Sets {
			v, err := eval(ev, set.Expr)
			if err != nil {
				return nil, err
			}
			if schema.Cols[cols[i]].Kind == tdb.KindTime {
				if c, ok := coerceTime(v); ok {
					v = c
				}
			}
			out[cols[i]] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return message("%d row(s) updated in %s", n, s.Table), nil
}

// aggSpec tracks one aggregate accumulation.
type aggSpec struct {
	node *Agg
	// accumulation state
	count    int64
	sum      float64
	sumIsInt bool
	intSum   int64
	min, max tdb.Value
	distinct map[string]bool
}

func collectAggs(exprs []Expr) []*aggSpec {
	var out []*aggSpec
	seen := map[*Agg]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Agg:
			if !seen[v] {
				seen[v] = true
				out = append(out, &aggSpec{node: v, sumIsInt: true})
			}
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Unary:
			walk(v.E)
		case *IsNull:
			walk(v.E)
		case *InList:
			walk(v.E)
			for _, x := range v.List {
				walk(x)
			}
		}
	}
	for _, e := range exprs {
		if e != nil {
			walk(e)
		}
	}
	return out
}

func (a *aggSpec) add(ev *env) error {
	if a.node.E == nil { // COUNT(*)
		a.count++
		return nil
	}
	v, err := eval(ev, a.node.E)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if a.node.Distinct {
		if a.distinct == nil {
			a.distinct = make(map[string]bool)
		}
		key := fmt.Sprintf("%d|%v", v.K, v.Display())
		if a.distinct[key] {
			return nil
		}
		a.distinct[key] = true
	}
	a.count++
	switch a.node.Fn {
	case "sum", "avg":
		if !v.Numeric() {
			return fmt.Errorf("minisql: %s wants numbers, got %v", strings.ToUpper(a.node.Fn), v.K)
		}
		if v.K == tdb.KindInt {
			a.intSum += v.AsInt()
		} else {
			a.sumIsInt = false
		}
		a.sum += v.AsFloat()
	case "min":
		if a.min.IsNull() {
			a.min = v
		} else if c, err := v.Compare(a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
	case "max":
		if a.max.IsNull() {
			a.max = v
		} else if c, err := v.Compare(a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *aggSpec) value() tdb.Value {
	switch a.node.Fn {
	case "count":
		return tdb.Int(a.count)
	case "sum":
		if a.count == 0 {
			return tdb.Null()
		}
		if a.sumIsInt {
			return tdb.Int(a.intSum)
		}
		return tdb.Float(a.sum)
	case "avg":
		if a.count == 0 {
			return tdb.Null()
		}
		return tdb.Float(a.sum / float64(a.count))
	case "min":
		return a.min
	case "max":
		return a.max
	default:
		return tdb.Null()
	}
}

func (e *Engine) execSelect(s *SelectStmt) (*Result, error) {
	schema, scan, err := e.scanTarget(s.From)
	if err != nil {
		return nil, err
	}

	// Expand * and name the output columns.
	var outExprs []Expr
	var cols []string
	for _, se := range s.Exprs {
		if se.Star {
			for _, c := range schema.Cols {
				outExprs = append(outExprs, &ColRef{Name: c.Name})
				cols = append(cols, c.Name)
			}
			continue
		}
		outExprs = append(outExprs, se.Expr)
		name := se.Alias
		if name == "" {
			name = se.Expr.String()
		}
		cols = append(cols, name)
	}

	// ORDER BY may reference select-list aliases; the alias takes
	// precedence over a source column of the same name, as in standard
	// SQL.
	aliases := make(map[string]Expr)
	for i, se := range s.Exprs {
		if !se.Star && se.Alias != "" {
			aliases[strings.ToLower(se.Alias)] = s.Exprs[i].Expr
		}
	}
	orderBy := make([]OrderKey, len(s.OrderBy))
	copy(orderBy, s.OrderBy)
	for i, k := range orderBy {
		if ref, ok := k.Expr.(*ColRef); ok {
			if sub, ok := aliases[strings.ToLower(ref.Name)]; ok {
				orderBy[i].Expr = sub
			}
		}
	}
	s = &SelectStmt{Exprs: s.Exprs, From: s.From, Where: s.Where, GroupBy: s.GroupBy, Having: s.Having, OrderBy: orderBy, Limit: s.Limit}

	grouped := len(s.GroupBy) > 0 || s.Having != nil
	for _, ex := range outExprs {
		if hasAgg(ex) {
			grouped = true
		}
	}
	for _, k := range s.OrderBy {
		if hasAgg(k.Expr) {
			grouped = true
		}
	}

	// Collect filtered rows.
	var rows []tdb.Row
	var scanErr error
	scan(func(row tdb.Row) bool {
		if s.Where != nil {
			v, err := eval(&env{schema: schema, row: row}, s.Where)
			if err != nil {
				scanErr = err
				return false
			}
			ok, err := truthy(v)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		r := make(tdb.Row, len(row))
		copy(r, row)
		rows = append(rows, r)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	res := &Result{Cols: cols}
	if !grouped {
		for _, row := range rows {
			ev := &env{schema: schema, row: row}
			out := make(tdb.Row, len(outExprs))
			for i, ex := range outExprs {
				v, err := eval(ev, ex)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			res.Rows = append(res.Rows, out)
		}
		if err := orderAndLimitPlain(res, s, schema, rows); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Grouped path. Key rows by the GROUP BY expressions (empty GROUP
	// BY means one global group). Non-aggregate expressions in the
	// projection evaluate against the group's first row.
	type group struct {
		first tdb.Row
		aggs  []*aggSpec
		key   string
	}
	allExprs := make([]Expr, 0, len(outExprs)+len(s.OrderBy)+1)
	allExprs = append(allExprs, outExprs...)
	for _, k := range s.OrderBy {
		allExprs = append(allExprs, k.Expr)
	}
	if s.Having != nil {
		allExprs = append(allExprs, s.Having)
	}

	groups := make(map[string]*group)
	var orderKeys []string
	for _, row := range rows {
		ev := &env{schema: schema, row: row}
		var keyParts []string
		for _, ge := range s.GroupBy {
			v, err := eval(ev, ge)
			if err != nil {
				return nil, err
			}
			keyParts = append(keyParts, fmt.Sprintf("%d|%v", v.K, v.Display()))
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			g = &group{first: row, key: key, aggs: collectAggs(allExprs)}
			groups[key] = g
			orderKeys = append(orderKeys, key)
		}
		for _, a := range g.aggs {
			if err := a.add(ev); err != nil {
				return nil, err
			}
		}
	}
	// An aggregate query with no GROUP BY over zero rows still yields
	// one row (COUNT(*) = 0).
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		g := &group{first: make(tdb.Row, len(schema.Cols)), key: "", aggs: collectAggs(allExprs)}
		groups[""] = g
		orderKeys = append(orderKeys, "")
	}

	type outRow struct {
		cells tdb.Row
		keys  tdb.Row
	}
	var out []outRow
	for _, key := range orderKeys {
		g := groups[key]
		aggVals := make(map[*Agg]tdb.Value, len(g.aggs))
		for _, a := range g.aggs {
			aggVals[a.node] = a.value()
		}
		ev := &env{schema: schema, row: g.first, aggs: aggVals}
		if s.Having != nil {
			hv, err := eval(ev, s.Having)
			if err != nil {
				return nil, err
			}
			keep, err := truthy(hv)
			if err != nil {
				return nil, fmt.Errorf("minisql: HAVING: %w", err)
			}
			if !keep {
				continue
			}
		}
		cells := make(tdb.Row, len(outExprs))
		for i, ex := range outExprs {
			v, err := eval(ev, ex)
			if err != nil {
				return nil, err
			}
			cells[i] = v
		}
		keys := make(tdb.Row, len(s.OrderBy))
		for i, k := range s.OrderBy {
			v, err := eval(ev, k.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		out = append(out, outRow{cells: cells, keys: keys})
	}
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			for k := range s.OrderBy {
				c, err := out[i].keys[k].Compare(out[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if s.OrderBy[k].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	for _, r := range out {
		res.Rows = append(res.Rows, r.cells)
	}
	applyLimit(res, s.Limit)
	return res, nil
}

// orderAndLimitPlain sorts a non-grouped result. ORDER BY keys are
// evaluated against the source rows, which line up 1:1 with result
// rows.
func orderAndLimitPlain(res *Result, s *SelectStmt, schema tdb.Schema, rows []tdb.Row) error {
	if len(s.OrderBy) > 0 {
		keys := make([]tdb.Row, len(rows))
		for i, row := range rows {
			ev := &env{schema: schema, row: row}
			kr := make(tdb.Row, len(s.OrderBy))
			for k, ok := range s.OrderBy {
				v, err := eval(ev, ok.Expr)
				if err != nil {
					return err
				}
				kr[k] = v
			}
			keys[i] = kr
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			for k := range s.OrderBy {
				c, err := keys[idx[a]][k].Compare(keys[idx[b]][k])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if s.OrderBy[k].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
		sorted := make([]tdb.Row, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	applyLimit(res, s.Limit)
	return nil
}

func applyLimit(res *Result, limit int) {
	if limit >= 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
}

// Format renders a result as an aligned text table, REPL style.
func Format(w io.Writer, res *Result) {
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.Display()
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sep strings.Builder
	for _, wd := range widths {
		sep.WriteString("+")
		sep.WriteString(strings.Repeat("-", wd+2))
	}
	sep.WriteString("+\n")
	fmt.Fprint(w, sep.String())
	for i, c := range res.Cols {
		fmt.Fprintf(w, "| %-*s ", widths[i], c)
	}
	fmt.Fprint(w, "|\n")
	fmt.Fprint(w, sep.String())
	for _, row := range cells {
		for c, s := range row {
			fmt.Fprintf(w, "| %-*s ", widths[c], s)
		}
		fmt.Fprint(w, "|\n")
	}
	fmt.Fprint(w, sep.String())
	fmt.Fprintf(w, "%d row(s)\n", len(res.Rows))
}
