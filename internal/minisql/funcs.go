package minisql

import (
	"fmt"
	"math"
	"strings"

	"github.com/tarm-project/tarm/internal/tdb"
)

// scalarFns names the supported scalar functions; the parser rejects
// calls to anything else at parse time.
var scalarFns = map[string]struct{ minArgs, maxArgs int }{
	"year":     {1, 1},
	"month":    {1, 1},
	"day":      {1, 1},
	"weekday":  {1, 1}, // ISO: 1=Monday … 7=Sunday
	"hour":     {1, 1},
	"date":     {1, 1}, // parse a string into a time
	"length":   {1, 1},
	"lower":    {1, 1},
	"upper":    {1, 1},
	"abs":      {1, 1},
	"round":    {1, 2},
	"coalesce": {1, -1},
}

// evalFunc applies a scalar function. Functions are NULL-propagating
// except COALESCE.
func evalFunc(ev *env, fc *FuncCall) (tdb.Value, error) {
	spec, ok := scalarFns[fc.Name]
	if !ok {
		return tdb.Value{}, fmt.Errorf("minisql: unknown function %q", fc.Name)
	}
	if len(fc.Args) < spec.minArgs || (spec.maxArgs >= 0 && len(fc.Args) > spec.maxArgs) {
		return tdb.Value{}, fmt.Errorf("minisql: %s takes %d..%d arguments, got %d",
			strings.ToUpper(fc.Name), spec.minArgs, spec.maxArgs, len(fc.Args))
	}
	args := make([]tdb.Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := eval(ev, a)
		if err != nil {
			return tdb.Value{}, err
		}
		args[i] = v
	}

	if fc.Name == "coalesce" {
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return tdb.Null(), nil
	}
	if args[0].IsNull() {
		return tdb.Null(), nil
	}

	switch fc.Name {
	case "year", "month", "day", "weekday", "hour":
		v := args[0]
		// A string argument coerces like in comparisons, so
		// MONTH('1998-06-01') works.
		if v.K == tdb.KindString {
			if c, ok := coerceTime(v); ok {
				v = c
			}
		}
		if v.K != tdb.KindTime {
			return tdb.Value{}, fmt.Errorf("minisql: %s wants a time, got %v", strings.ToUpper(fc.Name), v.K)
		}
		t := v.AsTime()
		switch fc.Name {
		case "year":
			return tdb.Int(int64(t.Year())), nil
		case "month":
			return tdb.Int(int64(t.Month())), nil
		case "day":
			return tdb.Int(int64(t.Day())), nil
		case "weekday":
			wd := int64(t.Weekday())
			if wd == 0 {
				wd = 7
			}
			return tdb.Int(wd), nil
		default: // hour
			return tdb.Int(int64(t.Hour())), nil
		}
	case "date":
		if args[0].K == tdb.KindTime {
			return args[0], nil
		}
		if args[0].K != tdb.KindString {
			return tdb.Value{}, fmt.Errorf("minisql: DATE wants a string, got %v", args[0].K)
		}
		c, ok := coerceTime(args[0])
		if !ok {
			return tdb.Value{}, fmt.Errorf("minisql: DATE cannot parse %q", args[0].AsString())
		}
		return c, nil
	case "length":
		if args[0].K != tdb.KindString {
			return tdb.Value{}, fmt.Errorf("minisql: LENGTH wants a string, got %v", args[0].K)
		}
		return tdb.Int(int64(len(args[0].AsString()))), nil
	case "lower":
		if args[0].K != tdb.KindString {
			return tdb.Value{}, fmt.Errorf("minisql: LOWER wants a string, got %v", args[0].K)
		}
		return tdb.Str(strings.ToLower(args[0].AsString())), nil
	case "upper":
		if args[0].K != tdb.KindString {
			return tdb.Value{}, fmt.Errorf("minisql: UPPER wants a string, got %v", args[0].K)
		}
		return tdb.Str(strings.ToUpper(args[0].AsString())), nil
	case "abs":
		switch args[0].K {
		case tdb.KindInt:
			v := args[0].AsInt()
			if v < 0 {
				v = -v
			}
			return tdb.Int(v), nil
		case tdb.KindFloat:
			return tdb.Float(math.Abs(args[0].AsFloat())), nil
		default:
			return tdb.Value{}, fmt.Errorf("minisql: ABS wants a number, got %v", args[0].K)
		}
	case "round":
		if !args[0].Numeric() {
			return tdb.Value{}, fmt.Errorf("minisql: ROUND wants a number, got %v", args[0].K)
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].K != tdb.KindInt {
				return tdb.Value{}, fmt.Errorf("minisql: ROUND digits wants an integer")
			}
			digits = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return tdb.Float(math.Round(args[0].AsFloat()*scale) / scale), nil
	default:
		return tdb.Value{}, fmt.Errorf("minisql: unimplemented function %q", fc.Name)
	}
}
