// Package minisql implements the SQL subset that backs the query half
// of the integrated query-and-mining system (IQMS). The paper's
// prototype issued Oracle SQL for data understanding before designing a
// mining task; this package plays that role over tdb tables.
//
// Supported statements:
//
//	SELECT expr [AS name], ... FROM table [WHERE cond]
//	       [GROUP BY expr, ...] [ORDER BY expr [ASC|DESC], ...]
//	       [LIMIT n]
//	INSERT INTO table VALUES (v, ...), (v, ...)
//	CREATE TABLE name (col type, ...)
//	DROP TABLE name
//	SHOW TABLES
//	DESCRIBE table
//
// Aggregates: COUNT(*), COUNT(e), SUM(e), AVG(e), MIN(e), MAX(e).
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp
)

type token struct {
	kind tokKind
	text string // keywords lowercased; idents keep original case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<end of statement>"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognised by the lexer. Identifiers matching these are
// tagged tokKeyword with lowercase text.
var sqlKeywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true, "having": true,
	"order": true, "limit": true, "asc": true, "desc": true, "as": true,
	"and": true, "or": true, "not": true, "insert": true, "into": true,
	"values": true, "create": true, "table": true, "drop": true,
	"delete": true, "update": true, "set": true,
	"show": true, "tables": true, "describe": true, "null": true,
	"true": true, "false": true, "count": true, "sum": true, "avg": true,
	"min": true, "max": true, "distinct": true, "between": true, "in": true,
	"like": true, "is": true,
}

func isASCIILetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

// lexSQL tokenises one statement. Identifiers are ASCII; string
// literals may carry arbitrary bytes. Strings use single quotes with ”
// escaping; -- comments run to end of line.
func lexSQL(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '-' && i+1 < len(s) && s[i+1] == '-':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '\'':
			var sb strings.Builder
			j := i + 1
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("minisql: unterminated string at %d", i)
				}
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i
			seenDot := false
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || (s[j] == '.' && !seenDot)) {
				if s[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		case isASCIILetter(c) || c == '_':
			j := i
			for j < len(s) && (isASCIILetter(s[j]) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			word := s[i:j]
			if sqlKeywords[strings.ToLower(word)] {
				toks = append(toks, token{tokKeyword, strings.ToLower(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(s) {
				two = s[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokOp, two, i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';', '.', '%':
				toks = append(toks, token{tokOp, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(s)})
	return toks, nil
}
