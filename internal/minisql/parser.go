package minisql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tarm-project/tarm/internal/tdb"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Stmt, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("minisql: unexpected %v after statement", p.peek())
	}
	return stmt, nil
}

type sqlParser struct {
	toks []token
	i    int
}

func (p *sqlParser) peek() token { return p.toks[p.i] }

func (p *sqlParser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// accept consumes the next token when its text matches (keywords and
// operators only).
func (p *sqlParser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokKeyword || t.kind == tokOp) && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return fmt.Errorf("minisql: expected %q, found %v", text, p.peek())
}

// ident consumes an identifier (or a non-reserved keyword used as a
// name) and returns its text.
func (p *sqlParser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", fmt.Errorf("minisql: expected %s, found %v", what, t)
}

func (p *sqlParser) parseStmt() (Stmt, error) {
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "select":
		return p.parseSelect()
	case t.kind == tokKeyword && t.text == "insert":
		return p.parseInsert()
	case t.kind == tokKeyword && t.text == "create":
		return p.parseCreate()
	case t.kind == tokKeyword && t.text == "drop":
		return p.parseDrop()
	case t.kind == tokKeyword && t.text == "delete":
		return p.parseDelete()
	case t.kind == tokKeyword && t.text == "update":
		return p.parseUpdate()
	case t.kind == tokKeyword && t.text == "show":
		p.next()
		if err := p.expect("tables"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case t.kind == tokKeyword && t.text == "describe":
		p.next()
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name}, nil
	default:
		return nil, fmt.Errorf("minisql: expected a statement, found %v", t)
	}
}

func (p *sqlParser) parseSelect() (Stmt, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	for {
		if p.accept("*") {
			sel.Exprs = append(sel.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.accept("as") {
				alias, err := p.ident("alias")
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.peek().kind == tokIdent {
				se.Alias = p.next().text
			}
			sel.Exprs = append(sel.Exprs, se)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	sel.From = name

	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept("group") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept("order") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept("desc") {
				key.Desc = true
			} else {
				p.accept("asc")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("minisql: LIMIT wants a number, found %v", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("minisql: bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	if err := p.expect("insert"); err != nil {
		return nil, err
	}
	if err := p.expect("into"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expect("values"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return ins, nil
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	if err := p.expect("create"); err != nil {
		return nil, err
	}
	if err := p.expect("table"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Table: name}
	for {
		colName, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return nil, fmt.Errorf("minisql: expected a type for column %q, found %v", colName, t)
		}
		kind, err := tdb.ParseKind(t.text)
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, tdb.Column{Name: colName, Kind: kind})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *sqlParser) parseDrop() (Stmt, error) {
	if err := p.expect("drop"); err != nil {
		return nil, err
	}
	if err := p.expect("table"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	if err := p.expect("delete"); err != nil {
		return nil, err
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	if err := p.expect("update"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expect("set"); err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: name}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Sets = append(upd.Sets, SetClause{Col: col, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.accept("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

// ---------------------------------------------------------------------
// Expressions, precedence climbing:
//   or < and < not < comparison/in/like/is < additive < multiplicative
//   < unary minus < primary

func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.accept("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept("is") {
		neg := p.accept("not")
		if err := p.expect("null"); err != nil {
			return nil, err
		}
		return &IsNull{E: left, Negate: neg}, nil
	}
	// [NOT] IN (...) / [NOT] LIKE / [NOT] BETWEEN
	neg := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "not" {
		// lookahead: "not in", "not like", "not between"
		if p.i+1 < len(p.toks) {
			nt := p.toks[p.i+1]
			if nt.kind == tokKeyword && (nt.text == "in" || nt.text == "like" || nt.text == "between") {
				p.i++
				neg = true
			}
		}
	}
	switch {
	case p.accept("in"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &InList{E: left, List: list, Negate: neg}, nil
	case p.accept("like"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&Binary{Op: "like", L: left, R: right})
		if neg {
			e = &Unary{Op: "not", E: e}
		}
		return e, nil
	case p.accept("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&Binary{Op: "and",
			L: &Binary{Op: ">=", L: left, R: lo},
			R: &Binary{Op: "<=", L: left, R: hi},
		})
		if neg {
			e = &Unary{Op: "not", E: e}
		}
		return e, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "+", L: left, R: right}
		case p.accept("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "-", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "*", L: left, R: right}
		case p.accept("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "/", L: left, R: right}
		case p.accept("%"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "%", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.accept("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("minisql: bad number %q", t.text)
			}
			return &Lit{V: tdb.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("minisql: bad number %q", t.text)
		}
		return &Lit{V: tdb.Int(n)}, nil
	case t.kind == tokString:
		p.next()
		return &Lit{V: tdb.Str(t.text)}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.next()
		return &Lit{V: tdb.Null()}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.next()
		return &Lit{V: tdb.Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.next()
		return &Lit{V: tdb.Bool(false)}, nil
	case t.kind == tokKeyword && aggFns[t.text]:
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		agg := &Agg{Fn: t.text}
		if p.accept("*") {
			if t.text != "count" {
				return nil, fmt.Errorf("minisql: %s(*) is not valid; only COUNT(*)", strings.ToUpper(t.text))
			}
		} else {
			agg.Distinct = p.accept("distinct")
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.E = e
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return agg, nil
	case t.kind == tokIdent:
		p.next()
		// An identifier followed by '(' is a scalar function call.
		if p.peek().kind == tokOp && p.peek().text == "(" {
			name := strings.ToLower(t.text)
			if _, ok := scalarFns[name]; !ok {
				return nil, fmt.Errorf("minisql: unknown function %q", t.text)
			}
			p.next() // consume '('
			fc := &FuncCall{Name: name}
			if !p.accept(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		return &ColRef{Name: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("minisql: expected an expression, found %v", t)
	}
}
