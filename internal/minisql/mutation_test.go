package minisql

import (
	"testing"
)

func TestDelete(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `DELETE FROM sales WHERE product = 'milk'`)
	if res.Rows[0][0].AsString() != "2 row(s) deleted from sales" {
		t.Errorf("message = %v", res.Rows[0][0])
	}
	res = mustExec(t, eng, `SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].AsInt() != 3 {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
	// WHERE over NULL filters out (three-valued logic): the NULL-amount
	// row survives an amount comparison.
	mustExec(t, eng, `DELETE FROM sales WHERE amount > 0`)
	res = mustExec(t, eng, `SELECT product FROM sales`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "jam" {
		t.Errorf("survivors = %v", res.Rows)
	}
	// Unconditional delete empties the table.
	mustExec(t, eng, `DELETE FROM sales`)
	res = mustExec(t, eng, `SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Errorf("after full delete = %v", res.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `UPDATE sales SET amount = amount * 2, qty = qty + 1 WHERE product = 'milk'`)
	if res.Rows[0][0].AsString() != "2 row(s) updated in sales" {
		t.Errorf("message = %v", res.Rows[0][0])
	}
	res = mustExec(t, eng, `SELECT amount, qty FROM sales WHERE product = 'milk' ORDER BY id`)
	if res.Rows[0][0].AsFloat() != 16.0 || res.Rows[0][1].AsInt() != 2 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].AsFloat() != 7.0 || res.Rows[1][1].AsInt() != 5 {
		t.Errorf("row 1 = %v", res.Rows[1])
	}
	// SET sees old values: swapping via two assignments works.
	mustExec(t, eng, `UPDATE sales SET amount = qty, qty = id WHERE id = 1`)
	res = mustExec(t, eng, `SELECT amount, qty FROM sales WHERE id = 1`)
	if res.Rows[0][0].AsFloat() != 2.0 || res.Rows[0][1].AsInt() != 1 {
		t.Errorf("swap = %v", res.Rows[0])
	}
	// Time coercion in SET.
	mustExec(t, eng, `UPDATE sales SET at = '2025-06-01' WHERE id = 1`)
	res = mustExec(t, eng, `SELECT YEAR(at) FROM sales WHERE id = 1`)
	if res.Rows[0][0].AsInt() != 2025 {
		t.Errorf("time set = %v", res.Rows[0][0])
	}
}

func TestMutationErrors(t *testing.T) {
	db, eng := fixture(t)
	_ = db
	bad := []string{
		`DELETE FROM nosuch`,
		`DELETE FROM baskets`, // tx table is append-only
		`DELETE FROM sales WHERE nocol = 1`,
		`UPDATE nosuch SET x = 1`,
		`UPDATE baskets SET item = 'x'`,
		`UPDATE sales SET nocol = 1`,
		`UPDATE sales SET product = 1`,   // type mismatch
		`UPDATE sales SET qty = qty / 0`, // runtime error aborts cleanly
		`UPDATE sales SET`,
		`UPDATE sales SET qty 1`,
		`DELETE sales`,
	}
	for _, sql := range bad {
		if _, err := eng.Exec(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
	// After the failed updates the data is unchanged.
	res := mustExec(t, eng, `SELECT COUNT(*), SUM(qty) FROM sales`)
	if res.Rows[0][0].AsInt() != 5 || res.Rows[0][1].AsInt() != 9 {
		t.Errorf("table mutated by failed statement: %v", res.Rows[0])
	}
}
