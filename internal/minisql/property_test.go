package minisql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"reflect"

	"github.com/tarm-project/tarm/internal/tdb"
)

// randomSalesTable builds a small random table and a parallel Go-side
// model for reference computations.
type modelRow struct {
	id     int64
	amount float64 // NaN means NULL
	qty    int64
	region string
}

func randomSales(r *rand.Rand) (*tdb.DB, []modelRow) {
	db := tdb.NewMemDB()
	schema, _ := tdb.NewSchema(
		tdb.Column{Name: "id", Kind: tdb.KindInt},
		tdb.Column{Name: "amount", Kind: tdb.KindFloat},
		tdb.Column{Name: "qty", Kind: tdb.KindInt},
		tdb.Column{Name: "region", Kind: tdb.KindString},
	)
	tbl, _ := db.CreateTable("sales", schema)
	regions := []string{"north", "south", "east", "west"}
	n := 5 + r.Intn(40)
	model := make([]modelRow, 0, n)
	for i := 0; i < n; i++ {
		m := modelRow{
			id:     int64(i),
			qty:    int64(r.Intn(10)),
			region: regions[r.Intn(len(regions))],
		}
		var amount tdb.Value
		if r.Intn(5) == 0 {
			amount = tdb.Null()
			m.amount = -1 // sentinel: NULL
		} else {
			m.amount = float64(r.Intn(1000)) / 10
			amount = tdb.Float(m.amount)
		}
		tbl.Insert(tdb.Row{tdb.Int(m.id), amount, tdb.Int(m.qty), tdb.Str(m.region)})
		model = append(model, m)
	}
	return db, model
}

// TestQuickWhereOrderLimit checks SELECT id FROM sales WHERE qty >= K
// ORDER BY qty DESC, id LIMIT L against the reference model.
func TestQuickWhereOrderLimit(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, model := randomSales(r)
		eng := NewEngine(db)
		k := r.Intn(10)
		limit := 1 + r.Intn(10)
		sql := fmt.Sprintf(`SELECT id FROM sales WHERE qty >= %d ORDER BY qty DESC, id LIMIT %d`, k, limit)
		res, err := eng.Exec(sql)
		if err != nil {
			return false
		}
		// Reference.
		var kept []modelRow
		for _, m := range model {
			if m.qty >= int64(k) {
				kept = append(kept, m)
			}
		}
		sort.SliceStable(kept, func(i, j int) bool {
			if kept[i].qty != kept[j].qty {
				return kept[i].qty > kept[j].qty
			}
			return kept[i].id < kept[j].id
		})
		if len(kept) > limit {
			kept = kept[:limit]
		}
		if len(res.Rows) != len(kept) {
			return false
		}
		for i := range kept {
			if res.Rows[i][0].AsInt() != kept[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupByAggregates checks per-region COUNT/SUM/AVG against
// the reference model, including NULL-skipping semantics.
func TestQuickGroupByAggregates(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, model := randomSales(r)
		eng := NewEngine(db)
		res, err := eng.Exec(`SELECT region, COUNT(*), COUNT(amount), SUM(qty), AVG(amount) FROM sales GROUP BY region ORDER BY region`)
		if err != nil {
			return false
		}
		type agg struct {
			n, nAmount, sumQty int64
			sumAmount          float64
		}
		ref := map[string]*agg{}
		for _, m := range model {
			a := ref[m.region]
			if a == nil {
				a = &agg{}
				ref[m.region] = a
			}
			a.n++
			a.sumQty += m.qty
			if m.amount >= 0 {
				a.nAmount++
				a.sumAmount += m.amount
			}
		}
		if len(res.Rows) != len(ref) {
			return false
		}
		for _, row := range res.Rows {
			a := ref[row[0].AsString()]
			if a == nil {
				return false
			}
			if row[1].AsInt() != a.n || row[2].AsInt() != a.nAmount || row[3].AsInt() != a.sumQty {
				return false
			}
			if a.nAmount == 0 {
				if !row[4].IsNull() {
					return false
				}
			} else {
				want := a.sumAmount / float64(a.nAmount)
				got := row[4].AsFloat()
				if got-want > 1e-9 || want-got > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}
