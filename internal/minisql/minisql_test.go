package minisql

import (
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
)

// fixture builds a database with a sales table and a basket
// transaction table.
func fixture(t *testing.T) (*tdb.DB, *Engine) {
	t.Helper()
	db := tdb.NewMemDB()
	eng := NewEngine(db)
	mustExec(t, eng, `CREATE TABLE sales (id int, amount float, product string, qty int, at time)`)
	rows := []string{
		`INSERT INTO sales VALUES (1, 12.5, 'bread', 2, '2024-01-01')`,
		`INSERT INTO sales VALUES (2, 8.0, 'milk', 1, '2024-01-01'), (3, 3.5, 'milk', 4, '2024-01-02')`,
		`INSERT INTO sales VALUES (4, 20.0, 'butter', 1, '2024-02-01')`,
		`INSERT INTO sales VALUES (5, NULL, 'jam', 1, '2024-02-02')`,
	}
	for _, r := range rows {
		mustExec(t, eng, r)
	}
	tx, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	bread := db.Dict().Intern("bread")
	milk := db.Dict().Intern("milk")
	tx.Append(time.Date(2024, 1, 1, 9, 0, 0, 0, time.UTC), itemset.New(bread, milk))
	tx.Append(time.Date(2024, 1, 2, 9, 0, 0, 0, time.UTC), itemset.New(bread))
	return db, eng
}

func mustExec(t *testing.T, eng *Engine, sql string) *Result {
	t.Helper()
	res, err := eng.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectStarWhereOrder(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT * FROM sales WHERE amount > 5 ORDER BY amount DESC`)
	if len(res.Cols) != 5 || len(res.Rows) != 3 {
		t.Fatalf("cols=%v rows=%d", res.Cols, len(res.Rows))
	}
	if res.Rows[0][2].AsString() != "butter" || res.Rows[2][2].AsString() != "milk" {
		t.Errorf("order wrong: %v / %v", res.Rows[0][2], res.Rows[2][2])
	}
}

func TestSelectProjectionAliasArithmetic(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT product, amount * qty AS total FROM sales WHERE amount IS NOT NULL ORDER BY total DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Cols[1] != "total" {
		t.Errorf("alias = %q", res.Cols[1])
	}
	if res.Rows[0][0].AsString() != "bread" || res.Rows[0][1].AsFloat() != 25.0 {
		t.Errorf("top row = %v", res.Rows[0])
	}
}

func TestSelectTimeCoercion(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT id FROM sales WHERE at >= '2024-02-01'`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE at BETWEEN '2024-01-01' AND '2024-01-31'`)
	if len(res.Rows) != 3 {
		t.Fatalf("between rows = %d, want 3", len(res.Rows))
	}
}

func TestAggregatesGlobal(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT COUNT(*), COUNT(amount), SUM(qty), AVG(amount), MIN(amount), MAX(amount) FROM sales`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].AsInt() != 5 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].AsInt() != 4 { // NULL amount skipped
		t.Errorf("COUNT(amount) = %v", row[1])
	}
	if row[2].AsInt() != 9 {
		t.Errorf("SUM(qty) = %v", row[2])
	}
	if avg := row[3].AsFloat(); avg < 10.99 || avg > 11.01 { // (12.5+8+3.5+20)/4
		t.Errorf("AVG(amount) = %v", row[3])
	}
	if row[4].AsFloat() != 3.5 || row[5].AsFloat() != 20.0 {
		t.Errorf("MIN/MAX = %v/%v", row[4], row[5])
	}
}

func TestGroupBy(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT product, COUNT(*) AS n, SUM(qty) AS q FROM sales GROUP BY product ORDER BY n DESC, product`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "milk" || res.Rows[0][1].AsInt() != 2 || res.Rows[0][2].AsInt() != 5 {
		t.Errorf("milk group = %v", res.Rows[0])
	}
}

func TestCountDistinct(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT COUNT(DISTINCT product) FROM sales`)
	if res.Rows[0][0].AsInt() != 4 {
		t.Errorf("COUNT(DISTINCT product) = %v", res.Rows[0][0])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT COUNT(*), SUM(qty) FROM sales WHERE id > 100`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", res.Rows)
	}
	res = mustExec(t, eng, `SELECT product, COUNT(*) FROM sales WHERE id > 100 GROUP BY product`)
	if len(res.Rows) != 0 {
		t.Errorf("empty GROUP BY produced %v", res.Rows)
	}
}

func TestInLikeNot(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT id FROM sales WHERE product IN ('milk', 'jam') ORDER BY id`)
	if len(res.Rows) != 3 {
		t.Fatalf("IN rows = %d", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE product NOT IN ('milk', 'jam') ORDER BY id`)
	if len(res.Rows) != 2 {
		t.Fatalf("NOT IN rows = %d", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE product LIKE 'b%'`)
	if len(res.Rows) != 2 {
		t.Fatalf("LIKE rows = %d", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE product LIKE '_ilk'`)
	if len(res.Rows) != 2 {
		t.Fatalf("underscore LIKE rows = %d", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE NOT (product = 'milk') AND amount IS NOT NULL`)
	if len(res.Rows) != 2 {
		t.Fatalf("NOT rows = %d", len(res.Rows))
	}
}

func TestNullSemantics(t *testing.T) {
	_, eng := fixture(t)
	// NULL comparisons are UNKNOWN and filter out.
	res := mustExec(t, eng, `SELECT id FROM sales WHERE amount > 0 OR amount <= 0`)
	if len(res.Rows) != 4 {
		t.Errorf("three-valued logic rows = %d, want 4", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT id FROM sales WHERE amount IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5 {
		t.Errorf("IS NULL rows = %v", res.Rows)
	}
}

func TestTxTableVirtualView(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].AsString() != "bread" || res.Rows[0][1].AsInt() != 2 {
		t.Errorf("bread row = %v", res.Rows[0])
	}
	res = mustExec(t, eng, `DESCRIBE baskets`)
	if len(res.Rows) != 3 {
		t.Errorf("describe rows = %v", res.Rows)
	}
	if _, err := eng.Exec(`INSERT INTO baskets VALUES (1, '2024-01-01', 'x')`); err == nil {
		t.Error("INSERT into tx table accepted")
	}
}

func TestShowCreateDrop(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SHOW TABLES`)
	if len(res.Rows) != 2 {
		t.Fatalf("SHOW TABLES = %v", res.Rows)
	}
	mustExec(t, eng, `CREATE TABLE extra (x int)`)
	res = mustExec(t, eng, `SHOW TABLES`)
	if len(res.Rows) != 3 {
		t.Fatalf("after create = %v", res.Rows)
	}
	mustExec(t, eng, `DROP TABLE extra`)
	res = mustExec(t, eng, `SHOW TABLES`)
	if len(res.Rows) != 2 {
		t.Fatalf("after drop = %v", res.Rows)
	}
	if _, err := eng.Exec(`DROP TABLE nope`); err == nil {
		t.Error("drop of missing table accepted")
	}
}

func TestParseErrors(t *testing.T) {
	_, eng := fixture(t)
	bad := []string{
		``,
		`SELEC 1`,
		`SELECT FROM sales`,
		`SELECT * FROM`,
		`SELECT * FROM sales WHERE`,
		`SELECT * FROM sales LIMIT -1`,
		`SELECT * FROM sales LIMIT x`,
		`SELECT * FROM sales GROUP`,
		`SELECT * FROM nosuch`,
		`INSERT INTO sales VALUES`,
		`INSERT INTO sales VALUES (1,2`,
		`CREATE TABLE t`,
		`CREATE TABLE t (x blob)`,
		`SELECT SUM(*) FROM sales`,
		`SELECT 'unterminated FROM sales`,
		`SELECT * FROM sales; SELECT 1`,
		`SELECT a ~ b FROM sales`,
	}
	for _, sql := range bad {
		if _, err := eng.Exec(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	_, eng := fixture(t)
	bad := []string{
		`SELECT nocol FROM sales`,
		`SELECT id / 0 FROM sales`,
		`SELECT id % 0 FROM sales`,
		`SELECT -product FROM sales`,
		`SELECT product + id FROM sales`,
		`SELECT * FROM sales WHERE product`,
		`SELECT SUM(product) FROM sales`,
		`SELECT * FROM sales WHERE product > id`,
	}
	for _, sql := range bad {
		if _, err := eng.Exec(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestIntArithmeticAndConcat(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT 7 / 2, 7.0 / 2, 7 % 3, 'a' + 'b' FROM sales LIMIT 1`)
	row := res.Rows[0]
	if row[0].AsInt() != 3 {
		t.Errorf("int div = %v", row[0])
	}
	if row[1].AsFloat() != 3.5 {
		t.Errorf("float div = %v", row[1])
	}
	if row[2].AsInt() != 1 {
		t.Errorf("mod = %v", row[2])
	}
	if row[3].AsString() != "ab" {
		t.Errorf("concat = %v", row[3])
	}
}

func TestFormat(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT product, qty FROM sales ORDER BY id LIMIT 2`)
	var sb strings.Builder
	Format(&sb, res)
	out := sb.String()
	for _, want := range []string{"product", "bread", "milk", "2 row(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a%b%c", "axxbyyc", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.pat, c.s, got)
		}
	}
}

func TestSelectImplicitAlias(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT product p FROM sales LIMIT 1`)
	if res.Cols[0] != "p" {
		t.Errorf("implicit alias = %q", res.Cols[0])
	}
}

func TestOrderByExpressionNonGrouped(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT id FROM sales WHERE qty > 0 ORDER BY qty * -1`)
	// qty: 2,1,4,1,1 → ordered by -qty: 4 first (id 3), then 2 (id 1).
	if res.Rows[0][0].AsInt() != 3 || res.Rows[1][0].AsInt() != 1 {
		t.Errorf("order by expression rows = %v", res.Rows)
	}
}
