package minisql

import (
	"testing"
)

func TestScalarTimeFunctions(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT YEAR(at), MONTH(at), DAY(at), WEEKDAY(at), HOUR(at) FROM sales WHERE id = 1`)
	row := res.Rows[0]
	// 2024-01-01 is a Monday.
	want := []int64{2024, 1, 1, 1, 0}
	for i, w := range want {
		if row[i].AsInt() != w {
			t.Errorf("col %d = %v, want %d", i, row[i], w)
		}
	}
}

func TestGroupByMonth(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT MONTH(at) AS m, COUNT(*) AS n FROM sales GROUP BY MONTH(at) ORDER BY m`)
	if len(res.Rows) != 2 {
		t.Fatalf("months = %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 3 {
		t.Errorf("January row = %v", res.Rows[0])
	}
	if res.Rows[1][0].AsInt() != 2 || res.Rows[1][1].AsInt() != 2 {
		t.Errorf("February row = %v", res.Rows[1])
	}
}

func TestHaving(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT product, COUNT(*) AS n FROM sales GROUP BY product HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "milk" {
		t.Errorf("HAVING result = %v", res.Rows)
	}
	// HAVING without GROUP BY filters the single global group.
	res = mustExec(t, eng, `SELECT COUNT(*) FROM sales HAVING COUNT(*) > 100`)
	if len(res.Rows) != 0 {
		t.Errorf("global HAVING kept %v", res.Rows)
	}
	res = mustExec(t, eng, `SELECT COUNT(*) FROM sales HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 {
		t.Errorf("global HAVING dropped the row")
	}
}

func TestStringAndMathFunctions(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT UPPER(product), LOWER('ABC'), LENGTH(product), ABS(-3), ABS(-2.5), ROUND(2.567, 1) FROM sales WHERE id = 1`)
	row := res.Rows[0]
	if row[0].AsString() != "BREAD" || row[1].AsString() != "abc" {
		t.Errorf("case functions = %v %v", row[0], row[1])
	}
	if row[2].AsInt() != 5 {
		t.Errorf("LENGTH = %v", row[2])
	}
	if row[3].AsInt() != 3 || row[4].AsFloat() != 2.5 {
		t.Errorf("ABS = %v %v", row[3], row[4])
	}
	if row[5].AsFloat() != 2.6 {
		t.Errorf("ROUND = %v", row[5])
	}
}

func TestDateAndCoalesce(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT id FROM sales WHERE at >= DATE('2024-02-01')`)
	if len(res.Rows) != 2 {
		t.Errorf("DATE comparison rows = %d", len(res.Rows))
	}
	res = mustExec(t, eng, `SELECT COALESCE(amount, 0) AS a FROM sales WHERE id = 5`)
	if res.Rows[0][0].AsFloat() != 0 {
		t.Errorf("COALESCE = %v", res.Rows[0][0])
	}
	res = mustExec(t, eng, `SELECT MONTH('1998-06-15') FROM sales LIMIT 1`)
	if res.Rows[0][0].AsInt() != 6 {
		t.Errorf("MONTH(string) = %v", res.Rows[0][0])
	}
}

func TestFunctionNullPropagation(t *testing.T) {
	_, eng := fixture(t)
	res := mustExec(t, eng, `SELECT ABS(amount) FROM sales WHERE id = 5`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("ABS(NULL) = %v", res.Rows[0][0])
	}
}

func TestFunctionErrors(t *testing.T) {
	_, eng := fixture(t)
	bad := []string{
		`SELECT NOSUCH(1) FROM sales`,
		`SELECT YEAR(product) FROM sales`,
		`SELECT LENGTH(id) FROM sales`,
		`SELECT ABS(product) FROM sales`,
		`SELECT DATE('not a date') FROM sales`,
		`SELECT YEAR() FROM sales`,
		`SELECT YEAR(at, at) FROM sales`,
		`SELECT ROUND(1.5, 'x') FROM sales`,
		`SELECT * FROM sales HAVING product`,
	}
	for _, sql := range bad {
		if _, err := eng.Exec(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestWeekdayFunctionSunday(t *testing.T) {
	_, eng := fixture(t)
	// 2024-02-04 is a Sunday → ISO weekday 7.
	mustExec(t, eng, `INSERT INTO sales VALUES (9, 1.0, 'tea', 1, '2024-02-04')`)
	res := mustExec(t, eng, `SELECT WEEKDAY(at) FROM sales WHERE id = 9`)
	if res.Rows[0][0].AsInt() != 7 {
		t.Errorf("Sunday WEEKDAY = %v", res.Rows[0][0])
	}
}
