package minisql

import (
	"fmt"
	"strings"

	"github.com/tarm-project/tarm/internal/tdb"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Exprs   []SelectExpr
	From    string
	Where   Expr // nil when absent
	GroupBy []Expr
	Having  Expr // nil when absent; may contain aggregates
	OrderBy []OrderKey
	Limit   int // -1 when absent
}

// SelectExpr is one output column: an expression with an optional
// alias, or the star.
type SelectExpr struct {
	Expr  Expr // nil for *
	Alias string
	Star  bool
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Table string
	Cols  []tdb.Column
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Table string }

// DeleteStmt is DELETE FROM t [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr // nil deletes everything
}

// SetClause is one "col = expr" of an UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE t SET col = e, ... [WHERE cond].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr // nil updates everything
}

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

// DescribeStmt is DESCRIBE t.
type DescribeStmt struct{ Table string }

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*ShowTablesStmt) stmt()  {}
func (*DescribeStmt) stmt()    {}

// Expr is a SQL expression tree node.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColRef names a column.
type ColRef struct{ Name string }

// Lit is a literal value.
type Lit struct{ V tdb.Value }

// Binary applies an operator: arithmetic (+ - * / %), comparison
// (= <> < <= > >=), logic (and or), or like.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary applies - or not.
type Unary struct {
	Op string
	E  Expr
}

// Agg is an aggregate call. Expr is nil for COUNT(*).
type Agg struct {
	Fn       string // count, sum, avg, min, max
	E        Expr
	Distinct bool
}

// FuncCall is a scalar function application such as MONTH(at) or
// LOWER(product).
type FuncCall struct {
	Name string // lowercase
	Args []Expr
}

// IsNull tests nullness (IS NULL / IS NOT NULL).
type IsNull struct {
	E      Expr
	Negate bool
}

// InList is "e IN (a, b, c)".
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

func (*ColRef) expr()   {}
func (*Lit) expr()      {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*Agg) expr()      {}
func (*FuncCall) expr() {}
func (*IsNull) expr()   {}
func (*InList) expr()   {}

func (e *FuncCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(e.Name) + "(" + strings.Join(parts, ", ") + ")"
}

func (e *ColRef) String() string { return e.Name }
func (e *Lit) String() string    { return e.V.String() }
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e *Unary) String() string { return "(" + e.Op + " " + e.E.String() + ")" }
func (e *Agg) String() string {
	inner := "*"
	if e.E != nil {
		inner = e.E.String()
	}
	if e.Distinct {
		inner = "distinct " + inner
	}
	return strings.ToUpper(e.Fn) + "(" + inner + ")"
}
func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}
func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := " IN ("
	if e.Negate {
		op = " NOT IN ("
	}
	return "(" + e.E.String() + op + strings.Join(parts, ", ") + "))"
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e Expr) bool {
	switch v := e.(type) {
	case *Agg:
		return true
	case *Binary:
		return hasAgg(v.L) || hasAgg(v.R)
	case *Unary:
		return hasAgg(v.E)
	case *FuncCall:
		for _, a := range v.Args {
			if hasAgg(a) {
				return true
			}
		}
	case *IsNull:
		return hasAgg(v.E)
	case *InList:
		if hasAgg(v.E) {
			return true
		}
		for _, x := range v.List {
			if hasAgg(x) {
				return true
			}
		}
	}
	return false
}
