// Package gen generates the synthetic workloads the experiments run
// on. The base generator re-implements the IBM Quest scheme of Agrawal
// & Srikant (VLDB'94) — the datasets named T10.I4.D100K in the
// association-mining literature — and the temporal layer plants rules
// with controlled temporal features (valid periods, cycles, calendar
// patterns) so recovery experiments can be scored against ground truth.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tarm-project/tarm/internal/itemset"
)

// QuestConfig parametrises the base (time-agnostic) generator. The
// conventional name T⟨AvgTxLen⟩.I⟨AvgPatLen⟩.D⟨n⟩ describes a draw of n
// transactions from it.
type QuestConfig struct {
	// NItems is the size of the item universe (paper default 1000).
	NItems int
	// NPatterns is the number of potentially frequent itemsets seeded
	// into the generator (paper default 2000; smaller here for laptop
	// scale).
	NPatterns int
	// AvgTxLen is the mean transaction size |T| (Poisson).
	AvgTxLen float64
	// AvgPatLen is the mean pattern size |I| (Poisson, min 1).
	AvgPatLen float64
	// Corr is the correlation between consecutive patterns: the
	// fraction of a pattern's items drawn from the previous pattern
	// (paper default 0.5).
	Corr float64
	// Corrupt is the mean corruption level: the probability that items
	// of a chosen pattern are dropped from a transaction (paper default
	// 0.5).
	Corrupt float64
}

// normalise fills defaults and validates.
func (c QuestConfig) normalise() (QuestConfig, error) {
	if c.NItems == 0 {
		c.NItems = 1000
	}
	if c.NPatterns == 0 {
		c.NPatterns = 200
	}
	if c.AvgTxLen == 0 {
		c.AvgTxLen = 10
	}
	if c.AvgPatLen == 0 {
		c.AvgPatLen = 4
	}
	if c.Corr == 0 {
		c.Corr = 0.5
	}
	if c.Corrupt == 0 {
		c.Corrupt = 0.5
	}
	switch {
	case c.NItems < 2:
		return c, fmt.Errorf("gen: NItems %d too small", c.NItems)
	case c.NPatterns < 1:
		return c, fmt.Errorf("gen: NPatterns %d too small", c.NPatterns)
	case c.AvgTxLen < 1:
		return c, fmt.Errorf("gen: AvgTxLen %v too small", c.AvgTxLen)
	case c.AvgPatLen < 1:
		return c, fmt.Errorf("gen: AvgPatLen %v too small", c.AvgPatLen)
	case c.Corr < 0 || c.Corr > 1:
		return c, fmt.Errorf("gen: Corr %v outside [0,1]", c.Corr)
	case c.Corrupt < 0 || c.Corrupt >= 1:
		return c, fmt.Errorf("gen: Corrupt %v outside [0,1)", c.Corrupt)
	}
	return c, nil
}

// Quest is an instantiated generator: a fixed pattern table plus a
// random stream of transactions drawn from it.
type Quest struct {
	cfg      QuestConfig
	patterns [][]itemset.Item
	weights  []float64 // cumulative, normalised
	corrupt  []float64 // per-pattern corruption level
	r        *rand.Rand
}

// NewQuest builds the pattern table deterministically from the seed.
func NewQuest(cfg QuestConfig, seed int64) (*Quest, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	q := &Quest{cfg: cfg, r: rand.New(rand.NewSource(seed))}

	q.patterns = make([][]itemset.Item, cfg.NPatterns)
	q.corrupt = make([]float64, cfg.NPatterns)
	raw := make([]float64, cfg.NPatterns)
	var prev []itemset.Item
	for i := range q.patterns {
		size := q.poisson(cfg.AvgPatLen - 1)
		if size < 1 {
			size = 1
		}
		seen := make(map[itemset.Item]bool, size)
		var items []itemset.Item
		// A fraction Corr of items comes from the previous pattern,
		// modelling that frequent itemsets share items.
		for len(items) < size {
			var it itemset.Item
			if len(prev) > 0 && q.r.Float64() < cfg.Corr {
				it = prev[q.r.Intn(len(prev))]
			} else {
				it = itemset.Item(q.r.Intn(cfg.NItems))
			}
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		q.patterns[i] = items
		prev = items
		raw[i] = q.r.ExpFloat64() // exponential pattern weights
		// Corruption level per pattern: clipped normal(mean, 0.1).
		cl := cfg.Corrupt + q.r.NormFloat64()*0.1
		if cl < 0 {
			cl = 0
		}
		if cl > 0.9 {
			cl = 0.9
		}
		q.corrupt[i] = cl
	}
	// Cumulative weights for pattern selection.
	q.weights = make([]float64, cfg.NPatterns)
	sum := 0.0
	for _, w := range raw {
		sum += w
	}
	acc := 0.0
	for i, w := range raw {
		acc += w / sum
		q.weights[i] = acc
	}
	q.weights[cfg.NPatterns-1] = 1
	return q, nil
}

// poisson draws from Poisson(mean) by Knuth's method; fine for the
// small means used here.
func (q *Quest) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= q.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// pickPattern selects a pattern index by weight.
func (q *Quest) pickPattern() int {
	x := q.r.Float64()
	lo, hi := 0, len(q.weights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if q.weights[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Transaction draws one transaction: patterns are packed in until the
// target size is met, each pattern dropping items according to its
// corruption level; half-fitting final patterns are included with
// probability proportional to the fit, per the original scheme.
func (q *Quest) Transaction() itemset.Set {
	target := q.poisson(q.cfg.AvgTxLen - 1)
	if target < 1 {
		target = 1
	}
	seen := make(map[itemset.Item]bool, target+4)
	var items []itemset.Item
	for len(items) < target {
		pi := q.pickPattern()
		var kept []itemset.Item
		for _, it := range q.patterns[pi] {
			if q.r.Float64() >= q.corrupt[pi] {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			continue
		}
		if overflow := len(items) + len(kept) - target; overflow > 0 {
			// Keep the oversized pattern only half the time, as in the
			// original generator; otherwise retry.
			if q.r.Float64() < 0.5 {
				break
			}
		}
		for _, it := range kept {
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
	}
	if len(items) == 0 {
		items = []itemset.Item{itemset.Item(q.r.Intn(q.cfg.NItems))}
	}
	return itemset.New(items...)
}

// Transactions draws n transactions.
func (q *Quest) Transactions(n int) []itemset.Set {
	out := make([]itemset.Set, n)
	for i := range out {
		out[i] = q.Transaction()
	}
	return out
}

// Name returns the conventional dataset name, e.g. "T10.I4.D100K".
func Name(cfg QuestConfig, d int) string {
	c, _ := cfg.normalise()
	ds := fmt.Sprintf("%d", d)
	if d >= 1000 && d%1000 == 0 {
		ds = fmt.Sprintf("%dK", d/1000)
	}
	return fmt.Sprintf("T%.0f.I%.0f.D%s", c.AvgTxLen, c.AvgPatLen, ds)
}
