package gen

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// PlantedRule describes a temporal rule embedded into a generated
// dataset: when a transaction's granule matches Pattern, the rule's
// itemset is injected with probability PInside; elsewhere with
// probability POutside. With PInside high and POutside at background
// level, the temporal miners should recover both the itemset and the
// temporal feature — the ground truth the recovery experiments score
// against.
type PlantedRule struct {
	// Name labels the rule in reports.
	Name string
	// Items is the injected itemset (at least 2 items, so a rule
	// Items\{last} ⇒ {last} exists).
	Items itemset.Set
	// Pattern is the temporal feature the rule follows.
	Pattern timegran.Pattern
	// PInside / POutside are the injection probabilities on matching /
	// non-matching granules.
	PInside, POutside float64
}

// TemporalConfig parametrises GenerateTemporal.
type TemporalConfig struct {
	// Quest configures the background basket distribution.
	Quest QuestConfig
	// Start is the timestamp of the first granule.
	Start time.Time
	// Granularity of the time axis.
	Granularity timegran.Granularity
	// NGranules is the number of granules to generate.
	NGranules int
	// TxPerGranule is the mean number of transactions per granule
	// (Poisson; minimum 1 per granule so every granule is active).
	TxPerGranule int
	// Rules are the planted temporal rules.
	Rules []PlantedRule
}

func (c TemporalConfig) normalise() (TemporalConfig, error) {
	if c.Start.IsZero() {
		c.Start = time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if !c.Granularity.Valid() {
		return c, fmt.Errorf("gen: invalid granularity %d", int(c.Granularity))
	}
	if c.NGranules < 1 {
		return c, fmt.Errorf("gen: NGranules %d too small", c.NGranules)
	}
	if c.TxPerGranule < 1 {
		return c, fmt.Errorf("gen: TxPerGranule %d too small", c.TxPerGranule)
	}
	for i, r := range c.Rules {
		if r.Items.Len() < 2 {
			return c, fmt.Errorf("gen: planted rule %d (%s) needs ≥ 2 items", i, r.Name)
		}
		if r.Pattern == nil {
			return c, fmt.Errorf("gen: planted rule %d (%s) has no pattern", i, r.Name)
		}
		if r.PInside < 0 || r.PInside > 1 || r.POutside < 0 || r.POutside > 1 {
			return c, fmt.Errorf("gen: planted rule %d (%s) has probabilities outside [0,1]", i, r.Name)
		}
	}
	return c, nil
}

// GenerateTemporal draws a timestamped transaction table: background
// baskets from the Quest generator, with planted rule itemsets injected
// according to their temporal patterns. Transactions are spread
// uniformly inside each granule.
func GenerateTemporal(cfg TemporalConfig, seed int64) (*tdb.TxTable, error) {
	cfg, err := cfg.normalise()
	if err != nil {
		return nil, err
	}
	q, err := NewQuest(cfg.Quest, seed)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed ^ 0x7a2d))
	tbl, err := tdb.NewTxTable("synthetic")
	if err != nil {
		return nil, err
	}
	g0 := timegran.GranuleOf(cfg.Start, cfg.Granularity)
	for gi := 0; gi < cfg.NGranules; gi++ {
		g := g0 + int64(gi)
		start := timegran.Start(g, cfg.Granularity)
		width := timegran.End(g, cfg.Granularity).Sub(start)
		nTx := q.poisson(float64(cfg.TxPerGranule))
		if nTx < 1 {
			nTx = 1
		}
		for i := 0; i < nTx; i++ {
			items := q.Transaction()
			for _, pr := range cfg.Rules {
				p := pr.POutside
				if pr.Pattern.Matches(cfg.Granularity, g) {
					p = pr.PInside
				}
				if r.Float64() < p {
					items = items.Union(pr.Items)
				}
			}
			at := start.Add(time.Duration(r.Int63n(int64(width))))
			tbl.Append(at, items)
		}
	}
	return tbl, nil
}

// RuleAnteCons splits a planted itemset into the conventional
// antecedent/consequent pair (all but the last item ⇒ last item).
func RuleAnteCons(items itemset.Set) (ante, cons itemset.Set) {
	last := items[items.Len()-1]
	return items.WithoutItem(last), itemset.Set{last}
}
