package gen

import (
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestQuestConfigValidation(t *testing.T) {
	bad := []QuestConfig{
		{NItems: 1},
		{NPatterns: -1},
		{AvgTxLen: 0.5},
		{AvgPatLen: 0.5},
		{Corr: 1.5},
		{Corrupt: 1},
	}
	for i, cfg := range bad {
		if _, err := NewQuest(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewQuest(QuestConfig{}, 1); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestQuestDeterministicAndCanonical(t *testing.T) {
	cfg := QuestConfig{NItems: 100, NPatterns: 30, AvgTxLen: 8, AvgPatLen: 3}
	a, _ := NewQuest(cfg, 42)
	b, _ := NewQuest(cfg, 42)
	for i := 0; i < 200; i++ {
		ta, tb := a.Transaction(), b.Transaction()
		if !ta.Equal(tb) {
			t.Fatalf("same seed diverged at transaction %d: %v vs %v", i, ta, tb)
		}
		if !ta.Valid() || ta.Len() == 0 {
			t.Fatalf("invalid transaction %v", ta)
		}
		for _, it := range ta {
			if int(it) >= cfg.NItems {
				t.Fatalf("item %d outside universe", it)
			}
		}
	}
}

func TestQuestAverageLength(t *testing.T) {
	cfg := QuestConfig{NItems: 500, NPatterns: 100, AvgTxLen: 10, AvgPatLen: 4}
	q, _ := NewQuest(cfg, 7)
	total := 0
	const n = 4000
	for i := 0; i < n; i++ {
		total += q.Transaction().Len()
	}
	avg := float64(total) / n
	// The generator's clipping makes the realised mean drift below the
	// nominal |T|; it must still land in a sane band.
	if avg < 5 || avg > 14 {
		t.Errorf("average transaction length = %v, want near 10", avg)
	}
}

func TestQuestTransactionsAndName(t *testing.T) {
	q, _ := NewQuest(QuestConfig{NItems: 50, NPatterns: 10}, 3)
	txs := q.Transactions(25)
	if len(txs) != 25 {
		t.Fatalf("Transactions(25) = %d", len(txs))
	}
	if got := Name(QuestConfig{AvgTxLen: 10, AvgPatLen: 4}, 100000); got != "T10.I4.D100K" {
		t.Errorf("Name = %q", got)
	}
	if got := Name(QuestConfig{AvgTxLen: 5, AvgPatLen: 2}, 1234); got != "T5.I2.D1234" {
		t.Errorf("Name = %q", got)
	}
}

func TestGenerateTemporalValidation(t *testing.T) {
	cal, _ := timegran.NewCalendar(timegran.FieldMonth, timegran.FieldRange{Lo: 6, Hi: 8})
	good := TemporalConfig{
		Granularity:  timegran.Day,
		NGranules:    10,
		TxPerGranule: 5,
		Rules: []PlantedRule{{
			Name: "r", Items: itemset.New(1, 2), Pattern: cal, PInside: 0.9, POutside: 0.01,
		}},
	}
	if _, err := GenerateTemporal(good, 1); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []TemporalConfig{
		{Granularity: timegran.Granularity(99), NGranules: 10, TxPerGranule: 5},
		{Granularity: timegran.Day, NGranules: 0, TxPerGranule: 5},
		{Granularity: timegran.Day, NGranules: 10, TxPerGranule: 0},
		{Granularity: timegran.Day, NGranules: 10, TxPerGranule: 5,
			Rules: []PlantedRule{{Items: itemset.New(1), Pattern: cal}}},
		{Granularity: timegran.Day, NGranules: 10, TxPerGranule: 5,
			Rules: []PlantedRule{{Items: itemset.New(1, 2)}}},
		{Granularity: timegran.Day, NGranules: 10, TxPerGranule: 5,
			Rules: []PlantedRule{{Items: itemset.New(1, 2), Pattern: cal, PInside: 2}}},
	}
	for i, cfg := range bad {
		if _, err := GenerateTemporal(cfg, 1); err == nil {
			t.Errorf("bad temporal config %d accepted", i)
		}
	}
}

func TestGenerateTemporalPlantsStructure(t *testing.T) {
	// Plant a cycle (7, offset of the first granule + 2) over 70 days
	// and check the injected pair is frequent on matching days and rare
	// elsewhere.
	start := time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)
	g0 := timegran.GranuleOf(start, timegran.Day)
	cyc, _ := timegran.NewCycle(7, g0+2)
	pair := itemset.New(900, 901) // outside the 500-item universe: background-free
	cfg := TemporalConfig{
		Quest:        QuestConfig{NItems: 500, NPatterns: 50, AvgTxLen: 6, AvgPatLen: 3},
		Start:        start,
		Granularity:  timegran.Day,
		NGranules:    70,
		TxPerGranule: 30,
		Rules: []PlantedRule{{
			Name: "weekly", Items: pair, Pattern: cyc, PInside: 0.8, POutside: 0.02,
		}},
	}
	tbl, err := GenerateTemporal(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	span, ok := tbl.Span(timegran.Day)
	if !ok || span.Len() != 70 {
		t.Fatalf("span = %v, %v", span, ok)
	}
	insideRate, outsideRate := 0.0, 0.0
	nIn, nOut := 0, 0
	for g := span.Lo; g <= span.Hi; g++ {
		src := tbl.GranuleSource(timegran.Day, g)
		if src.Len() == 0 {
			continue
		}
		cnt := 0
		src.ForEach(func(tx itemset.Set) {
			if tx.ContainsAll(pair) {
				cnt++
			}
		})
		rate := float64(cnt) / float64(src.Len())
		if cyc.Matches(timegran.Day, g) {
			insideRate += rate
			nIn++
		} else {
			outsideRate += rate
			nOut++
		}
	}
	insideRate /= float64(nIn)
	outsideRate /= float64(nOut)
	if insideRate < 0.6 {
		t.Errorf("inside injection rate %v, want ≥ 0.6", insideRate)
	}
	if outsideRate > 0.1 {
		t.Errorf("outside injection rate %v, want ≤ 0.1", outsideRate)
	}
}

func TestRuleAnteCons(t *testing.T) {
	a, c := RuleAnteCons(itemset.New(3, 1, 2))
	if !a.Equal(itemset.New(1, 2)) || !c.Equal(itemset.New(3)) {
		t.Errorf("RuleAnteCons = %v, %v", a, c)
	}
}

func TestGenerateTemporalDeterministic(t *testing.T) {
	cal, _ := timegran.NewCalendar(timegran.FieldWeekday, timegran.FieldRange{Lo: 6, Hi: 7})
	cfg := TemporalConfig{
		Quest:        QuestConfig{NItems: 100, NPatterns: 20},
		Granularity:  timegran.Day,
		NGranules:    14,
		TxPerGranule: 10,
		Rules: []PlantedRule{{
			Name: "wk", Items: itemset.New(300, 301), Pattern: cal, PInside: 0.7, POutside: 0.01,
		}},
	}
	a, err := GenerateTemporal(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateTemporal(cfg, 5)
	if a.Len() != b.Len() {
		t.Fatalf("same seed produced %d vs %d transactions", a.Len(), b.Len())
	}
	c, _ := GenerateTemporal(cfg, 6)
	if a.Len() == c.Len() {
		// Same length can happen by chance, so compare contents too.
		same := true
		ai, ci := collect(a), collect(c)
		for i := range ai {
			if !ai[i].Equal(ci[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func collect(tbl *tdb.TxTable) []itemset.Set {
	var out []itemset.Set
	tbl.Each(func(tx tdb.Tx) bool {
		out = append(out, tx.Items)
		return true
	})
	return out
}
