package timegran

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// ParsePattern parses the textual calendar-algebra syntax used by the
// TML DURING clause and the command-line tools:
//
//	expr    := term { "or" term }
//	term    := factor { "and" factor }
//	factor  := "not" factor | "(" expr ")" | atom
//	atom    := FIELD "in" "(" list ")"
//	         | "every" INT [ "offset" INT ]
//	         | "between" DATE "and" DATE
//	         | "always"
//	FIELD   := year | month | weekday | day | hour
//	list    := range { "," range }
//	range   := VALUE [ ".." VALUE ]
//	VALUE   := INT | month name (jan..dec) | weekday name (mon..sun)
//	DATE    := 'YYYY-MM-DD' | 'YYYY-MM-DD HH:MM' (quotes optional)
//
// Examples:
//
//	month in (jun..aug)
//	weekday in (sat, sun) and hour in (18..20)
//	every 7 offset 5
//	between 1998-01-01 and 1998-07-01
func ParsePattern(input string) (Pattern, error) {
	toks, err := lexPattern(input)
	if err != nil {
		return nil, err
	}
	p := &patternParser{toks: toks}
	pat, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("timegran: unexpected %q after pattern", p.peek().text)
	}
	return pat, nil
}

type patTok struct {
	text string
	pos  int
}

func lexPattern(s string) ([]patTok, error) {
	var toks []patTok
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, patTok{string(c), i})
			i++
		case c == '.':
			if i+1 < len(s) && s[i+1] == '.' {
				toks = append(toks, patTok{"..", i})
				i += 2
			} else {
				return nil, fmt.Errorf("timegran: stray '.' at %d", i)
			}
		case c == '\'' || c == '"':
			j := i + 1
			for j < len(s) && rune(s[j]) != c {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("timegran: unterminated quote at %d", i)
			}
			toks = append(toks, patTok{s[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '-' || s[j] == ':') {
				j++
			}
			// Dates may contain a time part separated by one space:
			// "1998-01-01 09:00". Lookahead joins it when it looks like
			// a clock time.
			tok := s[i:j]
			if strings.Count(tok, "-") == 2 && j < len(s) && s[j] == ' ' {
				k := j + 1
				for k < len(s) && (unicode.IsDigit(rune(s[k])) || s[k] == ':') {
					k++
				}
				if strings.Contains(s[j+1:k], ":") {
					tok = s[i:k]
					j = k
				}
			}
			toks = append(toks, patTok{tok, i})
			i = j
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(s) && (s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			toks = append(toks, patTok{strings.ToLower(s[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("timegran: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

type patternParser struct {
	toks []patTok
	i    int
}

func (p *patternParser) atEnd() bool { return p.i >= len(p.toks) }

func (p *patternParser) peek() patTok {
	if p.atEnd() {
		return patTok{text: "<end>", pos: -1}
	}
	return p.toks[p.i]
}

func (p *patternParser) next() patTok {
	t := p.peek()
	if !p.atEnd() {
		p.i++
	}
	return t
}

func (p *patternParser) accept(text string) bool {
	if !p.atEnd() && p.toks[p.i].text == text {
		p.i++
		return true
	}
	return false
}

func (p *patternParser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return fmt.Errorf("timegran: expected %q, found %q", text, p.peek().text)
}

func (p *patternParser) parseExpr() (Pattern, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	terms := []Pattern{left}
	for p.accept("or") {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Or(terms), nil
}

func (p *patternParser) parseTerm() (Pattern, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	factors := []Pattern{left}
	for p.accept("and") {
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
	}
	if len(factors) == 1 {
		return factors[0], nil
	}
	return And(factors), nil
}

func (p *patternParser) parseFactor() (Pattern, error) {
	switch {
	case p.accept("not"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	case p.accept("("):
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseAtom()
	}
}

func (p *patternParser) parseAtom() (Pattern, error) {
	tok := p.next()
	switch tok.text {
	case "always":
		return Always{}, nil
	case "every":
		return p.parseCycle()
	case "between":
		return p.parseWindow()
	case "year", "month", "weekday", "day", "hour":
		field, err := parseField(tok.text)
		if err != nil {
			return nil, err
		}
		return p.parseCalendar(field)
	case "<end>":
		return nil, fmt.Errorf("timegran: pattern ended where an atom was expected")
	default:
		return nil, fmt.Errorf("timegran: unexpected %q at %d", tok.text, tok.pos)
	}
}

func parseField(name string) (CalField, error) {
	for i, n := range fieldNames {
		if name == n {
			return CalField(i), nil
		}
	}
	return 0, fmt.Errorf("timegran: unknown field %q", name)
}

func (p *patternParser) parseCycle() (Pattern, error) {
	lenTok := p.next()
	length, err := strconv.ParseInt(lenTok.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("timegran: cycle length %q is not an integer", lenTok.text)
	}
	var offset int64
	if p.accept("offset") {
		offTok := p.next()
		offset, err = strconv.ParseInt(offTok.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("timegran: cycle offset %q is not an integer", offTok.text)
		}
	}
	return NewCycle(length, offset)
}

// dateLayouts accepted by "between … and …".
var dateLayouts = []string{"2006-01-02 15:04", "2006-01-02"}

func parseDate(s string) (time.Time, error) {
	for _, layout := range dateLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("timegran: cannot parse date %q (want YYYY-MM-DD or YYYY-MM-DD HH:MM)", s)
}

func (p *patternParser) parseWindow() (Pattern, error) {
	from, err := parseDate(p.next().text)
	if err != nil {
		return nil, err
	}
	if err := p.expect("and"); err != nil {
		return nil, err
	}
	to, err := parseDate(p.next().text)
	if err != nil {
		return nil, err
	}
	return NewWindow(from, to)
}

func (p *patternParser) parseCalendar(field CalField) (Pattern, error) {
	if err := p.expect("in"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var ranges []FieldRange
	for {
		lo, err := p.parseFieldValue(field)
		if err != nil {
			return nil, err
		}
		hi := lo
		if p.accept("..") {
			hi, err = p.parseFieldValue(field)
			if err != nil {
				return nil, err
			}
		}
		ranges = append(ranges, FieldRange{Lo: lo, Hi: hi})
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return NewCalendar(field, ranges...)
}

var monthNames = map[string]int{
	"jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
	"jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}

var weekdayNames = map[string]int{
	"mon": 1, "tue": 2, "wed": 3, "thu": 4, "fri": 5, "sat": 6, "sun": 7,
}

func (p *patternParser) parseFieldValue(field CalField) (int, error) {
	tok := p.next()
	if n, err := strconv.Atoi(tok.text); err == nil {
		return n, nil
	}
	name := tok.text
	if len(name) > 3 {
		name = name[:3]
	}
	switch field {
	case FieldMonth:
		if n, ok := monthNames[name]; ok {
			return n, nil
		}
	case FieldWeekday:
		if n, ok := weekdayNames[name]; ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("timegran: %q is not a valid %v value", tok.text, field)
}
