package timegran

import "time"

// Granule-close arithmetic for continuous mining.
//
// A standing statement must only re-emit results when a granule can no
// longer change, and the system has no authoritative wall clock for the
// data: timestamps come from the append stream itself. The *stream
// clock* is the maximum transaction timestamp seen so far, and a
// granule n is **closed** once the stream clock reaches End(n, g) — the
// first instant of granule n+1. Every transaction at or after that
// instant belongs to a later granule, so under in-order appends granule
// n's contents are final. (Out-of-order appends into a closed granule
// are still legal; they surface through the change log as dirty closed
// granules and force a re-emission.)

// ClosedThrough returns the last granule closed under stream clock
// `clock` at granularity g, i.e. the granule immediately before the one
// containing clock. A clock sitting exactly on a granule boundary —
// clock == End(n, g) == Start(n+1, g) — closes granule n: granules
// cover the half-open interval [Start, End), so the boundary instant is
// the first moment of n+1.
//
// Every granule ≤ ClosedThrough is closed; the granule containing
// clock (ClosedThrough+1) is still open.
func ClosedThrough(clock time.Time, g Granularity) Granule {
	return GranuleOf(clock, g) - 1
}

// Closed reports whether granule n is closed under stream clock clock.
func Closed(n Granule, g Granularity, clock time.Time) bool {
	return n <= ClosedThrough(clock, g)
}

// NextClose returns the instant at which the next granule close happens
// under stream clock clock: the end of the granule containing clock.
// A clock exactly on a boundary has just closed a granule, so the next
// close is one full granule later.
func NextClose(clock time.Time, g Granularity) time.Time {
	return End(GranuleOf(clock, g), g)
}

// ClosedOf splits the granule span of a dataset by the stream clock:
// it returns the closed prefix of span under clock. The returned
// interval is empty (ok=false) when not even span.Lo is closed. span.Hi
// is typically GranuleOf(clock, g) — the open granule the newest
// transaction landed in — so the closed prefix usually ends at
// span.Hi-1; a span whose data stops short of the clock is closed in
// its entirety.
func ClosedOf(span Interval, g Granularity, clock time.Time) (Interval, bool) {
	ct := ClosedThrough(clock, g)
	if ct < span.Lo {
		return Interval{}, false
	}
	if ct > span.Hi {
		ct = span.Hi
	}
	return Interval{Lo: span.Lo, Hi: ct}, true
}
