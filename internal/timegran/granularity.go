// Package timegran implements the time model of the temporal mining
// system: granularities, granules, intervals of granules, and the
// calendar algebra used to express temporal features (periodicities and
// specific calendars).
//
// The time axis is discretised at a chosen *granularity* (hour, day,
// week, month, …). A *granule* is one unit of that granularity,
// identified by its index relative to the Unix epoch in UTC — granule 0
// at Day granularity is 1970-01-01, granule 1 is 1970-01-02, and
// negative indices address times before the epoch. All of the temporal
// miners reason over granule indices; conversion to and from wall-clock
// time happens only at the edges.
package timegran

import (
	"fmt"
	"strings"
	"time"
)

// Granularity is a calendar unit used to discretise the time axis.
type Granularity int

// The supported granularities, coarsest last.
const (
	Second Granularity = iota
	Minute
	Hour
	Day
	Week
	Month
	Quarter
	Year
)

var granNames = [...]string{"second", "minute", "hour", "day", "week", "month", "quarter", "year"}

// String returns the lowercase name, e.g. "day".
func (g Granularity) String() string {
	if g < Second || g > Year {
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
	return granNames[g]
}

// Valid reports whether g is one of the defined granularities.
func (g Granularity) Valid() bool { return g >= Second && g <= Year }

// ParseGranularity parses a granularity name (case-insensitive; an
// optional trailing "s" is accepted, so "days" works).
func ParseGranularity(s string) (Granularity, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	n = strings.TrimSuffix(n, "s")
	for i, name := range granNames {
		if n == name {
			return Granularity(i), nil
		}
	}
	return 0, fmt.Errorf("timegran: unknown granularity %q", s)
}

// floorDiv is integer division rounding toward negative infinity, so
// that granule indices are monotone across the epoch.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Granule is the index of one unit of a granularity since the Unix
// epoch (UTC). It is a plain int64 so interval arithmetic stays cheap.
type Granule = int64

// GranuleOf returns the granule containing t at granularity g.
// The computation is in UTC: the mining system, like the paper's
// prototype, assumes timestamps are stored normalised.
func GranuleOf(t time.Time, g Granularity) Granule {
	u := t.UTC()
	switch g {
	case Second:
		return u.Unix()
	case Minute:
		return floorDiv(u.Unix(), 60)
	case Hour:
		return floorDiv(u.Unix(), 3600)
	case Day:
		return floorDiv(u.Unix(), 86400)
	case Week:
		// Weeks start on Monday. 1970-01-01 was a Thursday, so shifting
		// the day index by 3 aligns week boundaries with Mondays.
		return floorDiv(floorDiv(u.Unix(), 86400)+3, 7)
	case Month:
		return int64(u.Year()-1970)*12 + int64(u.Month()-1)
	case Quarter:
		return int64(u.Year()-1970)*4 + int64(u.Month()-1)/3
	case Year:
		return int64(u.Year() - 1970)
	default:
		panic(fmt.Sprintf("timegran: GranuleOf with invalid granularity %d", int(g)))
	}
}

// Start returns the first instant of granule n at granularity g (UTC).
func Start(n Granule, g Granularity) time.Time {
	switch g {
	case Second:
		return time.Unix(n, 0).UTC()
	case Minute:
		return time.Unix(n*60, 0).UTC()
	case Hour:
		return time.Unix(n*3600, 0).UTC()
	case Day:
		return time.Unix(n*86400, 0).UTC()
	case Week:
		return time.Unix((n*7-3)*86400, 0).UTC()
	case Month:
		y := 1970 + int(floorDiv(n, 12))
		m := time.Month(n-int64(y-1970)*12) + 1
		return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
	case Quarter:
		y := 1970 + int(floorDiv(n, 4))
		q := n - int64(y-1970)*4
		return time.Date(y, time.Month(q*3+1), 1, 0, 0, 0, 0, time.UTC)
	case Year:
		return time.Date(1970+int(n), 1, 1, 0, 0, 0, 0, time.UTC)
	default:
		panic(fmt.Sprintf("timegran: Start with invalid granularity %d", int(g)))
	}
}

// End returns the first instant *after* granule n at granularity g,
// i.e. the start of granule n+1. The granule covers [Start, End).
func End(n Granule, g Granularity) time.Time { return Start(n+1, g) }

// Convert maps a granule to the granularity that contains its start
// instant: Convert(week, Week, Day) is the week's Monday as a day
// granule; Convert(day, Day, Month) is the containing month. Coarse →
// fine conversions use the start instant, so information is never
// invented.
func Convert(n Granule, from, to Granularity) Granule {
	if from == to {
		return n
	}
	return GranuleOf(Start(n, from), to)
}

// FormatGranule renders a granule for humans, adapting the layout to
// the granularity ("2024-06-03", "2024-06", "2024-W23", …).
func FormatGranule(n Granule, g Granularity) string {
	t := Start(n, g)
	switch g {
	case Second:
		return t.Format("2006-01-02 15:04:05")
	case Minute:
		return t.Format("2006-01-02 15:04")
	case Hour:
		return t.Format("2006-01-02 15h")
	case Day:
		return t.Format("2006-01-02")
	case Week:
		y, w := t.ISOWeek()
		return fmt.Sprintf("%04d-W%02d", y, w)
	case Month:
		return t.Format("2006-01")
	case Quarter:
		return fmt.Sprintf("%04d-Q%d", t.Year(), (int(t.Month())-1)/3+1)
	case Year:
		return t.Format("2006")
	default:
		return fmt.Sprintf("g%d", n)
	}
}
