package timegran

import (
	"testing"
	"time"
)

func ts(s string) time.Time {
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

// TestClosedThroughBoundaries pins the half-open granule convention at
// the close boundary: a stream clock exactly on End(n, g) closes n, one
// nanosecond earlier leaves n open.
func TestClosedThroughBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		g     Granularity
		clock time.Time
		want  Granule
	}{
		// A granule ending exactly on the clock tick: clock == End(n)
		// closes n. 2024-01-02T00:00:00Z is End of day 2024-01-01.
		{"day/exact-end-closes", Day, ts("2024-01-02T00:00:00Z"), GranuleOf(ts("2024-01-01T00:00:00Z"), Day)},
		// One nanosecond before the boundary the granule is still open.
		{"day/just-before-end-open", Day, ts("2024-01-02T00:00:00Z").Add(-time.Nanosecond), GranuleOf(ts("2024-01-01T00:00:00Z"), Day) - 1},
		// One nanosecond after: still just n closed (n+1 barely started).
		{"day/just-after-end", Day, ts("2024-01-02T00:00:00Z").Add(time.Nanosecond), GranuleOf(ts("2024-01-01T00:00:00Z"), Day)},
		// Mid-granule clock: previous granule closed.
		{"day/mid-granule", Day, ts("2024-01-02T13:45:00Z"), GranuleOf(ts("2024-01-01T00:00:00Z"), Day)},
		// Hour granularity at an exact hour boundary.
		{"hour/exact-end-closes", Hour, ts("2024-03-10T15:00:00Z"), GranuleOf(ts("2024-03-10T14:00:00Z"), Hour)},
		// Week boundary: weeks start Monday; 2024-06-03 is a Monday, so
		// that instant closes the week of 2024-05-27.
		{"week/monday-boundary", Week, ts("2024-06-03T00:00:00Z"), GranuleOf(ts("2024-05-27T12:00:00Z"), Week)},
		// Month with uneven lengths: Feb 2024 has 29 days (leap year);
		// clock on Mar 1 closes February.
		{"month/leap-feb-closes", Month, ts("2024-03-01T00:00:00Z"), GranuleOf(ts("2024-02-15T00:00:00Z"), Month)},
		// Feb 29 of a leap year leaves February open.
		{"month/leap-feb-open", Month, ts("2024-02-29T23:59:59Z"), GranuleOf(ts("2024-01-31T00:00:00Z"), Month)},
		// Non-leap February closes on Mar 1 despite 28 days.
		{"month/nonleap-feb-closes", Month, ts("2023-03-01T00:00:00Z"), GranuleOf(ts("2023-02-01T00:00:00Z"), Month)},
		// 31-day month still open on its last day.
		{"month/31-day-open", Month, ts("2024-01-31T23:00:00Z"), GranuleOf(ts("2023-12-01T00:00:00Z"), Month)},
		// Year granularity: leap year 2024 closes at 2025-01-01 exactly.
		{"year/leap-year-closes", Year, ts("2025-01-01T00:00:00Z"), GranuleOf(ts("2024-06-01T00:00:00Z"), Year)},
		{"year/leap-year-open", Year, ts("2024-12-31T23:59:59Z"), GranuleOf(ts("2023-06-01T00:00:00Z"), Year)},
		// Quarter with uneven month lengths: Q1 (Jan..Mar) closes Apr 1.
		{"quarter/q1-closes", Quarter, ts("2024-04-01T00:00:00Z"), GranuleOf(ts("2024-02-01T00:00:00Z"), Quarter)},
		// Pre-epoch clocks: granule indices are negative but the
		// boundary convention is unchanged.
		{"day/pre-epoch", Day, ts("1969-12-31T00:00:00Z"), GranuleOf(ts("1969-12-30T00:00:00Z"), Day)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ClosedThrough(tc.clock, tc.g)
			if got != tc.want {
				t.Fatalf("ClosedThrough(%v, %v) = %d, want %d", tc.clock, tc.g, got, tc.want)
			}
			if !Closed(tc.want, tc.g, tc.clock) {
				t.Fatalf("Closed(%d) = false, want true", tc.want)
			}
			if Closed(tc.want+1, tc.g, tc.clock) {
				t.Fatalf("Closed(%d) = true, want false (open granule)", tc.want+1)
			}
		})
	}
}

// TestClosedThroughConsistency cross-checks the arithmetic against the
// definitional predicate clock >= End(n, g) over a window of granules
// around varied clocks, for every granularity.
func TestClosedThroughConsistency(t *testing.T) {
	clocks := []time.Time{
		ts("2024-02-29T12:34:56Z"),
		ts("2024-03-01T00:00:00Z"),
		ts("2023-12-31T23:59:59Z"),
		ts("1970-01-01T00:00:00Z"),
		ts("1969-07-20T20:17:40Z"),
	}
	for g := Second; g <= Year; g++ {
		for _, clock := range clocks {
			ct := ClosedThrough(clock, g)
			for n := ct - 2; n <= ct+2; n++ {
				defClosed := !clock.Before(End(n, g))
				if got := Closed(n, g, clock); got != defClosed {
					t.Fatalf("g=%v clock=%v granule=%d: Closed=%v, definition=%v", g, clock, n, got, defClosed)
				}
			}
			// NextClose is the first instant that closes another granule.
			nc := NextClose(clock, g)
			if ClosedThrough(nc, g) != ct+1 {
				t.Fatalf("g=%v clock=%v: NextClose=%v closes through %d, want %d", g, clock, nc, ClosedThrough(nc, g), ct+1)
			}
			if ClosedThrough(nc.Add(-time.Second), g) > ct {
				t.Fatalf("g=%v clock=%v: instant before NextClose already closed a new granule", g, clock)
			}
		}
	}
}

// TestClosedOfSpans covers the span-splitting helper: the final granule
// of a span, spans entirely closed, and zero-width (single-granule)
// spans.
func TestClosedOfSpans(t *testing.T) {
	day := func(s string) Granule { return GranuleOf(ts(s), Day) }
	cases := []struct {
		name   string
		span   Interval
		clock  time.Time
		want   Interval
		wantOK bool
	}{
		// Typical streaming shape: newest data lives in the open
		// granule span.Hi, so the closed prefix stops one short.
		{
			"final-granule-open",
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			ts("2024-01-10T09:00:00Z"),
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-09T00:00:00Z")},
			true,
		},
		// Clock exactly at the end of the final granule: the whole span
		// is closed, including its final granule.
		{
			"final-granule-closes-on-tick",
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			ts("2024-01-11T00:00:00Z"),
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			true,
		},
		// Clock far past the span: clamped to the span's end.
		{
			"clock-past-span",
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			ts("2025-06-01T00:00:00Z"),
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			true,
		},
		// Zero-width span (a single granule), still open.
		{
			"zero-width-open",
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-01T00:00:00Z")},
			ts("2024-01-01T23:59:59Z"),
			Interval{},
			false,
		},
		// Zero-width span whose lone granule has closed.
		{
			"zero-width-closed",
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-01T00:00:00Z")},
			ts("2024-01-02T00:00:00Z"),
			Interval{Lo: day("2024-01-01T00:00:00Z"), Hi: day("2024-01-01T00:00:00Z")},
			true,
		},
		// Clock before the span entirely: nothing closed.
		{
			"clock-before-span",
			Interval{Lo: day("2024-01-05T00:00:00Z"), Hi: day("2024-01-10T00:00:00Z")},
			ts("2024-01-03T00:00:00Z"),
			Interval{},
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ClosedOf(tc.span, Day, tc.clock)
			if ok != tc.wantOK || got != tc.want {
				t.Fatalf("ClosedOf(%v, Day, %v) = %v, %v; want %v, %v", tc.span, tc.clock, got, ok, tc.want, tc.wantOK)
			}
		})
	}
}
