package timegran

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestGranuleOfKnownValues(t *testing.T) {
	epoch := date(1970, time.January, 1)
	cases := []struct {
		t    time.Time
		g    Granularity
		want Granule
	}{
		{epoch, Second, 0},
		{epoch, Day, 0},
		{epoch, Month, 0},
		{epoch, Year, 0},
		{date(1970, time.January, 2), Day, 1},
		{date(1969, time.December, 31), Day, -1},
		{date(1970, time.February, 1), Month, 1},
		{date(1969, time.December, 1), Month, -1},
		{date(2000, time.January, 1), Year, 30},
		{date(1970, time.April, 1), Quarter, 1},
		{date(1969, time.October, 1), Quarter, -1},
		// 1970-01-01 was a Thursday; the Monday-aligned week containing
		// it spans 1969-12-29..1970-01-04 and has index 0.
		{epoch, Week, 0},
		{date(1970, time.January, 4), Week, 0},
		{date(1970, time.January, 5), Week, 1},
		{date(1969, time.December, 29), Week, 0},
		{date(1969, time.December, 28), Week, -1},
		{time.Date(1970, time.January, 1, 1, 30, 0, 0, time.UTC), Hour, 1},
		{time.Date(1970, time.January, 1, 0, 1, 5, 0, time.UTC), Minute, 1},
	}
	for _, c := range cases {
		if got := GranuleOf(c.t, c.g); got != c.want {
			t.Errorf("GranuleOf(%v, %v) = %d, want %d", c.t, c.g, got, c.want)
		}
	}
}

func TestStartInvertsGranuleOf(t *testing.T) {
	grans := []Granularity{Second, Minute, Hour, Day, Week, Month, Quarter, Year}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		// Random instants between 1960 and 2040.
		sec := r.Int63n(int64(80*365*24*3600)) - int64(10*365*24*3600)
		at := time.Unix(sec, 0).UTC()
		for _, g := range grans {
			n := GranuleOf(at, g)
			s, e := Start(n, g), End(n, g)
			if at.Before(s) || !at.Before(e) {
				t.Fatalf("%v: %v not in [%v, %v) (granule %d)", g, at, s, e, n)
			}
			if GranuleOf(s, g) != n {
				t.Fatalf("%v: GranuleOf(Start(%d)) = %d", g, n, GranuleOf(s, g))
			}
		}
	}
}

func TestWeekStartsMonday(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		n := Granule(r.Int63n(5000) - 1000)
		if wd := Start(n, Week).Weekday(); wd != time.Monday {
			t.Fatalf("week %d starts on %v", n, wd)
		}
	}
}

func TestGranularityStringParse(t *testing.T) {
	for g := Second; g <= Year; g++ {
		parsed, err := ParseGranularity(g.String())
		if err != nil || parsed != g {
			t.Errorf("round trip of %v: %v, %v", g, parsed, err)
		}
	}
	if g, err := ParseGranularity("Days"); err != nil || g != Day {
		t.Errorf("ParseGranularity(Days) = %v, %v", g, err)
	}
	if _, err := ParseGranularity("fortnight"); err == nil {
		t.Error("unknown granularity accepted")
	}
	if Granularity(99).String() == "" {
		t.Error("invalid granularity has empty String")
	}
	if Granularity(99).Valid() {
		t.Error("Granularity(99) claims to be valid")
	}
}

func TestFormatGranule(t *testing.T) {
	cases := []struct {
		g    Granularity
		n    Granule
		want string
	}{
		{Day, 0, "1970-01-01"},
		{Month, 5, "1970-06"},
		{Year, 54, "2024"},
		{Quarter, 2, "1970-Q3"},
		{Hour, 25, "1970-01-02 01h"},
	}
	for _, c := range cases {
		if got := FormatGranule(c.n, c.g); got != c.want {
			t.Errorf("FormatGranule(%d, %v) = %q, want %q", c.n, c.g, got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-8, 2, -4}, {0, 5, 0}, {-1, 86400, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickGranulesAreMonotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63n(4e9) - 2e9)
			vals[1] = reflect.ValueOf(r.Int63n(4e9) - 2e9)
			vals[2] = reflect.ValueOf(Granularity(r.Intn(int(Year) + 1)))
		},
	}
	law := func(a, b int64, g Granularity) bool {
		ta, tb := time.Unix(a, 0).UTC(), time.Unix(b, 0).UTC()
		if a > b {
			ta, tb = tb, ta
		}
		return GranuleOf(ta, g) <= GranuleOf(tb, g)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func unixUTC(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func TestConvert(t *testing.T) {
	// The week containing 2024-06-05 (a Wednesday) starts Monday
	// 2024-06-03.
	day := GranuleOf(date(2024, time.June, 5), Day)
	week := Convert(day, Day, Week)
	if got := Start(week, Week); !got.Equal(date(2024, time.June, 3)) {
		t.Errorf("week start = %v", got)
	}
	if Convert(week, Week, Day) != GranuleOf(date(2024, time.June, 3), Day) {
		t.Errorf("week→day = %d", Convert(week, Week, Day))
	}
	if Convert(day, Day, Month) != GranuleOf(date(2024, time.June, 1), Month) {
		t.Error("day→month wrong")
	}
	if Convert(day, Day, Day) != day {
		t.Error("identity conversion changed the granule")
	}
	// Quarter of October is Q4.
	oct := GranuleOf(date(2024, time.October, 20), Day)
	q := Convert(oct, Day, Quarter)
	if got := Start(q, Quarter); !got.Equal(date(2024, time.October, 1)) {
		t.Errorf("quarter start = %v", got)
	}
}
