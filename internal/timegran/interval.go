package timegran

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive range [Lo, Hi] of granule indices. The zero
// value is the single granule 0; use MakeInterval for validation.
type Interval struct {
	Lo, Hi Granule
}

// MakeInterval returns [lo, hi], or an error when lo > hi.
func MakeInterval(lo, hi Granule) (Interval, error) {
	if lo > hi {
		return Interval{}, fmt.Errorf("timegran: interval [%d,%d] has lo > hi", lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// Len returns the number of granules covered.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo + 1 }

// Contains reports whether g lies inside the interval.
func (iv Interval) Contains(g Granule) bool { return g >= iv.Lo && g <= iv.Hi }

// Overlaps reports whether the two intervals share any granule.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Intersect returns the common part and whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// String renders "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Format renders the interval using calendar labels at granularity g,
// e.g. "2024-06-01..2024-08-31".
func (iv Interval) Format(g Granularity) string {
	return FormatGranule(iv.Lo, g) + ".." + FormatGranule(iv.Hi, g)
}

// IntervalSet is a normalised set of granules: sorted, pairwise
// disjoint, non-adjacent intervals. The zero value is the empty set.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a set from arbitrary intervals, normalising
// overlaps and adjacency.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	var s IntervalSet
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// Intervals returns the normalised intervals in ascending order. The
// slice is shared; callers must not modify it.
func (s IntervalSet) Intervals() []Interval { return s.ivs }

// Empty reports whether the set covers no granule.
func (s IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Count returns the total number of granules covered.
func (s IntervalSet) Count() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Contains reports whether g is covered, by binary search.
func (s IntervalSet) Contains(g Granule) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= g })
	return i < len(s.ivs) && s.ivs[i].Lo <= g
}

// Add returns a new set that also covers iv.
func (s IntervalSet) Add(iv Interval) IntervalSet {
	if iv.Lo > iv.Hi {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, cur := range s.ivs {
		switch {
		case cur.Hi+1 < iv.Lo: // strictly before, not adjacent
			out = append(out, cur)
		case iv.Hi+1 < cur.Lo: // strictly after
			if !inserted {
				out = append(out, iv)
				inserted = true
			}
			out = append(out, cur)
		default: // overlap or adjacency: merge into iv
			if cur.Lo < iv.Lo {
				iv.Lo = cur.Lo
			}
			if cur.Hi > iv.Hi {
				iv.Hi = cur.Hi
			}
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return IntervalSet{ivs: out}
}

// Union returns s ∪ o.
func (s IntervalSet) Union(o IntervalSet) IntervalSet {
	out := s
	for _, iv := range o.ivs {
		out = out.Add(iv)
	}
	return out
}

// Intersect returns s ∩ o by merging the two sorted interval lists.
func (s IntervalSet) Intersect(o IntervalSet) IntervalSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		if common, ok := s.ivs[i].Intersect(o.ivs[j]); ok {
			out = append(out, common)
		}
		if s.ivs[i].Hi < o.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return IntervalSet{ivs: out}
}

// Complement returns the granules of span not covered by s.
func (s IntervalSet) Complement(span Interval) IntervalSet {
	var out []Interval
	next := span.Lo
	for _, iv := range s.ivs {
		if iv.Hi < span.Lo {
			continue
		}
		if iv.Lo > span.Hi {
			break
		}
		if iv.Lo > next {
			out = append(out, Interval{Lo: next, Hi: iv.Lo - 1})
		}
		if iv.Hi+1 > next {
			next = iv.Hi + 1
		}
		if next > span.Hi {
			break
		}
	}
	if next <= span.Hi {
		out = append(out, Interval{Lo: next, Hi: span.Hi})
	}
	return IntervalSet{ivs: out}
}

// Clip returns the part of s inside span.
func (s IntervalSet) Clip(span Interval) IntervalSet {
	return s.Intersect(IntervalSet{ivs: []Interval{span}})
}

// Each calls fn for every covered granule in ascending order, stopping
// early if fn returns false.
func (s IntervalSet) Each(fn func(g Granule) bool) {
	for _, iv := range s.ivs {
		for g := iv.Lo; g <= iv.Hi; g++ {
			if !fn(g) {
				return
			}
		}
	}
}

// String renders "{[1,3] [7,7]}".
func (s IntervalSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

// FromPredicate collects the granules of span where pred holds.
func FromPredicate(span Interval, pred func(g Granule) bool) IntervalSet {
	var out []Interval
	inRun := false
	var runStart Granule
	for g := span.Lo; g <= span.Hi; g++ {
		if pred(g) {
			if !inRun {
				inRun = true
				runStart = g
			}
			continue
		}
		if inRun {
			out = append(out, Interval{Lo: runStart, Hi: g - 1})
			inRun = false
		}
	}
	if inRun {
		out = append(out, Interval{Lo: runStart, Hi: span.Hi})
	}
	return IntervalSet{ivs: out}
}
