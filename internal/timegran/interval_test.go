package timegran

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func iv(lo, hi Granule) Interval { return Interval{Lo: lo, Hi: hi} }

func TestMakeInterval(t *testing.T) {
	if _, err := MakeInterval(3, 2); err == nil {
		t.Error("reversed interval accepted")
	}
	got, err := MakeInterval(2, 2)
	if err != nil || got.Len() != 1 {
		t.Errorf("MakeInterval(2,2) = %v, %v", got, err)
	}
}

func TestIntervalBasics(t *testing.T) {
	a := iv(2, 5)
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
	if !a.Contains(2) || !a.Contains(5) || a.Contains(1) || a.Contains(6) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !a.Overlaps(iv(5, 9)) || a.Overlaps(iv(6, 9)) {
		t.Error("Overlaps boundary behaviour wrong")
	}
	if common, ok := a.Intersect(iv(4, 9)); !ok || common != iv(4, 5) {
		t.Errorf("Intersect = %v, %v", common, ok)
	}
	if _, ok := a.Intersect(iv(6, 9)); ok {
		t.Error("disjoint intervals intersected")
	}
	if a.String() != "[2,5]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestIntervalSetAddNormalises(t *testing.T) {
	s := NewIntervalSet(iv(1, 3), iv(7, 9), iv(4, 4))
	// [1,3] and [4,4] are adjacent and must merge.
	want := []Interval{iv(1, 4), iv(7, 9)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("Intervals = %v, want %v", s.Intervals(), want)
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d, want 7", s.Count())
	}
	s = s.Add(iv(3, 8))
	if got := s.Intervals(); len(got) != 1 || got[0] != iv(1, 9) {
		t.Errorf("bridge add produced %v", got)
	}
	// Adding an inverted interval is a no-op.
	if got := s.Add(Interval{Lo: 5, Hi: 4}); got.Count() != s.Count() {
		t.Error("inverted interval changed the set")
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := NewIntervalSet(iv(1, 3), iv(7, 9))
	for _, g := range []Granule{1, 2, 3, 7, 9} {
		if !s.Contains(g) {
			t.Errorf("Contains(%d) = false", g)
		}
	}
	for _, g := range []Granule{0, 4, 6, 10} {
		if s.Contains(g) {
			t.Errorf("Contains(%d) = true", g)
		}
	}
	if (IntervalSet{}).Contains(0) {
		t.Error("empty set contains 0")
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := NewIntervalSet(iv(1, 5), iv(10, 15))
	b := NewIntervalSet(iv(4, 11), iv(14, 20))
	inter := a.Intersect(b)
	if want := []Interval{iv(4, 5), iv(10, 11), iv(14, 15)}; !reflect.DeepEqual(inter.Intervals(), want) {
		t.Errorf("Intersect = %v, want %v", inter.Intervals(), want)
	}
	uni := a.Union(b)
	if want := []Interval{iv(1, 20)}; !reflect.DeepEqual(uni.Intervals(), want) {
		t.Errorf("Union = %v, want %v", uni.Intervals(), want)
	}
	comp := a.Complement(iv(0, 20))
	if want := []Interval{iv(0, 0), iv(6, 9), iv(16, 20)}; !reflect.DeepEqual(comp.Intervals(), want) {
		t.Errorf("Complement = %v, want %v", comp.Intervals(), want)
	}
	clip := a.Clip(iv(3, 12))
	if want := []Interval{iv(3, 5), iv(10, 12)}; !reflect.DeepEqual(clip.Intervals(), want) {
		t.Errorf("Clip = %v, want %v", clip.Intervals(), want)
	}
}

func TestIntervalSetEach(t *testing.T) {
	s := NewIntervalSet(iv(1, 2), iv(5, 5))
	var got []Granule
	s.Each(func(g Granule) bool { got = append(got, g); return true })
	if want := []Granule{1, 2, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Each visited %v, want %v", got, want)
	}
	n := 0
	s.Each(func(Granule) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestFromPredicate(t *testing.T) {
	s := FromPredicate(iv(0, 10), func(g Granule) bool { return g%3 == 0 })
	if want := []Interval{iv(0, 0), iv(3, 3), iv(6, 6), iv(9, 9)}; !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("FromPredicate = %v, want %v", s.Intervals(), want)
	}
	all := FromPredicate(iv(2, 6), func(Granule) bool { return true })
	if want := []Interval{iv(2, 6)}; !reflect.DeepEqual(all.Intervals(), want) {
		t.Errorf("all-true = %v", all.Intervals())
	}
	none := FromPredicate(iv(2, 6), func(Granule) bool { return false })
	if !none.Empty() {
		t.Errorf("all-false = %v", none.Intervals())
	}
}

// randomIntervalSet builds a membership bitmap alongside the set so
// laws can be checked against the reference.
func randomIntervalSet(r *rand.Rand, span int) (IntervalSet, []bool) {
	ref := make([]bool, span)
	s := IntervalSet{}
	for k := 0; k < 1+r.Intn(5); k++ {
		lo := r.Intn(span)
		hi := lo + r.Intn(span-lo)
		s = s.Add(iv(int64(lo), int64(hi)))
		for g := lo; g <= hi; g++ {
			ref[g] = true
		}
	}
	return s, ref
}

func TestQuickIntervalSetLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	const span = 60
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, refA := randomIntervalSet(r, span)
		b, refB := randomIntervalSet(r, span)
		uni, inter := a.Union(b), a.Intersect(b)
		comp := a.Complement(iv(0, span-1))
		// Normalisation invariants.
		for _, s := range []IntervalSet{a, b, uni, inter, comp} {
			ivs := s.Intervals()
			for i := range ivs {
				if ivs[i].Lo > ivs[i].Hi {
					return false
				}
				if i > 0 && ivs[i].Lo <= ivs[i-1].Hi+1 {
					return false // overlapping or adjacent: not normalised
				}
			}
		}
		// Pointwise agreement with the reference bitmap.
		for g := 0; g < span; g++ {
			gg := int64(g)
			if a.Contains(gg) != refA[g] || b.Contains(gg) != refB[g] {
				return false
			}
			if uni.Contains(gg) != (refA[g] || refB[g]) {
				return false
			}
			if inter.Contains(gg) != (refA[g] && refB[g]) {
				return false
			}
			if comp.Contains(gg) != !refA[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}
