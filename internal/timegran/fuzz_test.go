package timegran

import (
	"testing"
)

// FuzzParsePattern checks the pattern parser never panics and that
// anything it accepts round-trips through String.
func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"month in (jun..aug)",
		"weekday in (sat, sun) and hour in (18..20)",
		"every 7 offset 5",
		"between 1998-01-01 and 1998-07-01",
		"not (month in (6..8)) or every 2 offset 1",
		"always",
		"month in (6§8)",
		"((((",
		"every 99999999999999999999",
		"between 1998-01-01 09:00 and 1998-01-01 12:00",
		"'quoted thing'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePattern(input)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := ParsePattern(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", input, printed, err)
		}
		// Spot-check agreement on a few granules.
		for _, g := range []Granule{0, 1, 100, 10000, -5} {
			if p.Matches(Day, g) != p2.Matches(Day, g) {
				t.Fatalf("%q and its reprint disagree at %d", input, g)
			}
		}
	})
}

// FuzzGranuleRoundTrip checks Start/GranuleOf stay inverse across the
// whole time axis and all granularities.
func FuzzGranuleRoundTrip(f *testing.F) {
	f.Add(int64(0), uint8(3))
	f.Add(int64(-86400), uint8(4))
	f.Add(int64(1<<35), uint8(7))
	f.Fuzz(func(t *testing.T, sec int64, g uint8) {
		gran := Granularity(g % 8)
		// Clamp to a few hundred millennia to avoid time.Time overflow.
		if sec > 1<<43 {
			sec = 1 << 43
		}
		if sec < -(1 << 43) {
			sec = -(1 << 43)
		}
		at := unixUTC(sec)
		n := GranuleOf(at, gran)
		s, e := Start(n, gran), End(n, gran)
		if at.Before(s) || !at.Before(e) {
			t.Fatalf("%v: %v outside [%v, %v)", gran, at, s, e)
		}
		if GranuleOf(s, gran) != n {
			t.Fatalf("%v: granule %d not stable under Start", gran, n)
		}
	})
}
