package timegran

import (
	"strings"
	"testing"
	"time"
)

func TestCycle(t *testing.T) {
	c, err := NewCycle(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Offset != 2 {
		t.Errorf("offset not normalised: %d", c.Offset)
	}
	for g := int64(-20); g <= 20; g++ {
		want := ((g%7)+7)%7 == 2
		if got := c.Matches(Day, g); got != want {
			t.Errorf("cycle(7,2).Matches(%d) = %v", g, got)
		}
	}
	if _, err := NewCycle(0, 1); err == nil {
		t.Error("zero-length cycle accepted")
	}
	if c.String() != "every 7 offset 2" {
		t.Errorf("String = %q", c.String())
	}
}

func TestCalendarMonth(t *testing.T) {
	summer, err := NewCalendar(FieldMonth, FieldRange{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	jun := GranuleOf(date(2024, time.June, 15), Day)
	dec := GranuleOf(date(2024, time.December, 15), Day)
	if !summer.Matches(Day, jun) {
		t.Error("June day not matched by month in (6..8)")
	}
	if summer.Matches(Day, dec) {
		t.Error("December day matched by month in (6..8)")
	}
	// Month granularity works too.
	if !summer.Matches(Month, GranuleOf(date(2024, time.July, 1), Month)) {
		t.Error("July month granule not matched")
	}
}

func TestCalendarWeekday(t *testing.T) {
	weekend, err := NewCalendar(FieldWeekday, FieldRange{6, 7})
	if err != nil {
		t.Fatal(err)
	}
	sat := GranuleOf(date(2024, time.June, 1), Day) // a Saturday
	mon := GranuleOf(date(2024, time.June, 3), Day)
	sun := GranuleOf(date(2024, time.June, 2), Day)
	if !weekend.Matches(Day, sat) || !weekend.Matches(Day, sun) {
		t.Error("weekend days not matched")
	}
	if weekend.Matches(Day, mon) {
		t.Error("Monday matched as weekend")
	}
}

func TestCalendarHourAndDomainChecks(t *testing.T) {
	evening, err := NewCalendar(FieldHour, FieldRange{18, 20})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2024, time.June, 1, 19, 0, 0, 0, time.UTC)
	if !evening.Matches(Hour, GranuleOf(at, Hour)) {
		t.Error("19:00 hour granule not matched by hour in (18..20)")
	}
	if evening.Matches(Hour, GranuleOf(at.Add(3*time.Hour), Hour)) {
		t.Error("22:00 matched")
	}
	if _, err := NewCalendar(FieldMonth, FieldRange{0, 3}); err == nil {
		t.Error("month 0 accepted")
	}
	if _, err := NewCalendar(FieldMonth, FieldRange{5, 3}); err == nil {
		t.Error("reversed range accepted")
	}
	if _, err := NewCalendar(FieldMonth); err == nil {
		t.Error("empty range list accepted")
	}
}

func TestWindow(t *testing.T) {
	w, err := NewWindow(date(1998, time.January, 1), date(1998, time.February, 1))
	if err != nil {
		t.Fatal(err)
	}
	in := GranuleOf(date(1998, time.January, 15), Day)
	boundary := GranuleOf(date(1998, time.February, 1), Day)
	if !w.Matches(Day, in) {
		t.Error("mid-January not matched")
	}
	if w.Matches(Day, boundary) {
		t.Error("exclusive upper bound matched")
	}
	if _, err := NewWindow(date(1998, time.February, 1), date(1998, time.January, 1)); err == nil {
		t.Error("reversed window accepted")
	}
}

func TestCombinators(t *testing.T) {
	summer, _ := NewCalendar(FieldMonth, FieldRange{6, 8})
	weekend, _ := NewCalendar(FieldWeekday, FieldRange{6, 7})
	jul6 := GranuleOf(date(2024, time.July, 6), Day) // Saturday in July
	jul8 := GranuleOf(date(2024, time.July, 8), Day) // Monday in July
	jan6 := GranuleOf(date(2024, time.January, 6), Day)

	and := And{summer, weekend}
	if !and.Matches(Day, jul6) || and.Matches(Day, jul8) || and.Matches(Day, jan6) {
		t.Error("And semantics wrong")
	}
	or := Or{summer, weekend}
	if !or.Matches(Day, jul8) || !or.Matches(Day, jan6) || or.Matches(Day, GranuleOf(date(2024, time.January, 8), Day)) {
		t.Error("Or semantics wrong")
	}
	not := Not{P: summer}
	if not.Matches(Day, jul6) || !not.Matches(Day, jan6) {
		t.Error("Not semantics wrong")
	}
	if !(Always{}).Matches(Day, 123456) {
		t.Error("Always does not match")
	}
	if (And{}).Matches(Day, 0) != true || (Or{}).Matches(Day, 0) != false {
		t.Error("empty combinator identities wrong")
	}
}

func TestGranulesAndCoverage(t *testing.T) {
	c, _ := NewCycle(3, 1)
	span := iv(0, 8)
	got := Granules(c, Day, span)
	if want := int64(3); got.Count() != want { // granules 1, 4, 7
		t.Errorf("Granules count = %d, want %d", got.Count(), want)
	}
	cov := Coverage(c, Day, span)
	if cov < 0.33 || cov > 0.34 {
		t.Errorf("Coverage = %v", cov)
	}
}

func TestParsePattern(t *testing.T) {
	cases := []struct {
		in      string
		matches Granule // a Day granule that must match
		misses  Granule
	}{
		{"month in (jun..aug)", GranuleOf(date(2024, time.July, 1), Day), GranuleOf(date(2024, time.March, 1), Day)},
		{"month in (6..8)", GranuleOf(date(2024, time.July, 1), Day), GranuleOf(date(2024, time.March, 1), Day)},
		{"weekday in (sat, sun)", GranuleOf(date(2024, time.June, 1), Day), GranuleOf(date(2024, time.June, 3), Day)},
		{"every 7 offset 0", 0, 1},
		{"every 7", 7, 8},
		{"between 1998-01-01 and 1998-02-01", GranuleOf(date(1998, time.January, 10), Day), GranuleOf(date(1998, time.March, 1), Day)},
		{"between 1998-01-01 09:00 and 1998-01-01 12:00", GranuleOf(time.Date(1998, 1, 1, 10, 0, 0, 0, time.UTC), Day) /* day starts 00:00 so this misses */, GranuleOf(date(1999, time.January, 1), Day)},
		{"month in (12) or month in (1..2)", GranuleOf(date(2024, time.January, 5), Day), GranuleOf(date(2024, time.May, 5), Day)},
		{"not (month in (6..8))", GranuleOf(date(2024, time.March, 1), Day), GranuleOf(date(2024, time.July, 1), Day)},
		{"month in (jun..aug) and weekday in (sat,sun)", GranuleOf(date(2024, time.July, 6), Day), GranuleOf(date(2024, time.July, 8), Day)},
	}
	for _, c := range cases {
		p, err := ParsePattern(c.in)
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", c.in, err)
			continue
		}
		if c.in == "between 1998-01-01 09:00 and 1998-01-01 12:00" {
			// Day granules start at midnight, outside the window; the
			// window is meaningful at Hour granularity instead.
			h := GranuleOf(time.Date(1998, 1, 1, 10, 0, 0, 0, time.UTC), Hour)
			if !p.Matches(Hour, h) {
				t.Errorf("%q: hour granule not matched", c.in)
			}
			continue
		}
		if !p.Matches(Day, c.matches) {
			t.Errorf("%q does not match granule %d", c.in, c.matches)
		}
		if p.Matches(Day, c.misses) {
			t.Errorf("%q matches granule %d", c.in, c.misses)
		}
	}
}

func TestParsePatternAlwaysNotMiss(t *testing.T) {
	p, err := ParsePattern("always")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(Day, -1<<60) {
		t.Error("always failed to match")
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"",
		"month in ()",
		"month in (13)",
		"month in (jun",
		"weekday in (noday)",
		"every x",
		"every 7 offset x",
		"between 1998-01-01",
		"between 1998-01-01 and nonsense",
		"month in (6..8) extra",
		"month (6..8)",
		"(month in (6..8)",
		"and",
		"not",
		"month in (6..8) and",
		"every 0",
		"hour in (25)",
		"fortnight in (1)",
		"between 1998-02-01 and 1998-01-01",
		"month in (aug..jun)",
		"...",
		"month in (6§8)",
	}
	for _, in := range bad {
		if p, err := ParsePattern(in); err == nil {
			t.Errorf("ParsePattern(%q) accepted: %v", in, p)
		}
	}
}

func TestParsePatternStringRoundTrip(t *testing.T) {
	inputs := []string{
		"month in (jun..aug)",
		"weekday in (sat, sun) and hour in (18..20)",
		"every 7 offset 5",
		"between 1998-01-01 and 1998-07-01",
		"not (month in (6..8)) or every 2 offset 1",
		"always",
	}
	span := iv(9000, 11000) // mid-1994 through mid-2000 in days
	for _, in := range inputs {
		p1, err := ParsePattern(in)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", in, err)
		}
		p2, err := ParsePattern(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", in, p1.String(), err)
		}
		for g := span.Lo; g <= span.Hi; g++ {
			if p1.Matches(Day, g) != p2.Matches(Day, g) {
				t.Fatalf("%q and its reparse disagree at granule %d", in, g)
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	summer, _ := NewCalendar(FieldMonth, FieldRange{6, 8}, FieldRange{12, 12})
	if got := summer.String(); got != "month in (6..8, 12)" {
		t.Errorf("Calendar String = %q", got)
	}
	w, _ := NewWindow(date(1998, time.January, 1), date(1998, time.July, 1))
	if !strings.HasPrefix(w.String(), "between 1998-01-01") {
		t.Errorf("Window String = %q", w.String())
	}
	if got := (And{summer, Always{}}).String(); !strings.Contains(got, " and ") {
		t.Errorf("And String = %q", got)
	}
	if got := (Or{}).String(); got != "never" {
		t.Errorf("empty Or String = %q", got)
	}
	if got := (And{}).String(); got != "always" {
		t.Errorf("empty And String = %q", got)
	}
}
