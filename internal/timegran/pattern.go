package timegran

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Pattern is a temporal feature in the calendar algebra: a predicate
// over granules. Patterns express the TF part of a temporal association
// rule — periodicities ("every 7 days offset 5"), calendar classes
// ("month in (6..8)", "weekday in (sat,sun)") and absolute windows
// ("between 1998-01-01 and 1998-06-30") — and compose with and/or/not.
//
// Matches receives the base granularity so a single pattern value can
// be evaluated against axes of different granularities.
type Pattern interface {
	Matches(base Granularity, g Granule) bool
	String() string
}

// Granules materialises the granules of span matching p as an
// IntervalSet.
func Granules(p Pattern, base Granularity, span Interval) IntervalSet {
	return FromPredicate(span, func(g Granule) bool { return p.Matches(base, g) })
}

// Coverage returns the fraction of span's granules matching p.
func Coverage(p Pattern, base Granularity, span Interval) float64 {
	if span.Len() == 0 {
		return 0
	}
	return float64(Granules(p, base, span).Count()) / float64(span.Len())
}

// ---------------------------------------------------------------------
// Cycle: arithmetic periodicity over the granule axis.

// Cycle matches granules g with g ≡ Offset (mod Length). It is the
// temporal feature produced by Task II's cyclic miner: "every Length
// granules, starting at phase Offset".
type Cycle struct {
	Length Granule // > 0
	Offset Granule // normalised into [0, Length)
}

// NewCycle normalises offset into [0, length).
func NewCycle(length, offset Granule) (Cycle, error) {
	if length <= 0 {
		return Cycle{}, fmt.Errorf("timegran: cycle length %d must be positive", length)
	}
	o := offset % length
	if o < 0 {
		o += length
	}
	return Cycle{Length: length, Offset: o}, nil
}

// Matches implements Pattern.
func (c Cycle) Matches(_ Granularity, g Granule) bool {
	m := g % c.Length
	if m < 0 {
		m += c.Length
	}
	return m == c.Offset
}

// String renders "every 7 offset 5".
func (c Cycle) String() string { return fmt.Sprintf("every %d offset %d", c.Length, c.Offset) }

// ---------------------------------------------------------------------
// Calendar: constraints on the calendar fields of a granule.

// CalField names a calendar component a Calendar pattern can constrain.
type CalField int

// The constrainable fields. Weekday uses 1=Monday … 7=Sunday (ISO),
// Month uses 1..12, MonthDay 1..31, Hour 0..23, Year is the full year.
const (
	FieldYear CalField = iota
	FieldMonth
	FieldWeekday
	FieldMonthDay
	FieldHour
)

var fieldNames = [...]string{"year", "month", "weekday", "day", "hour"}

// String returns the TML spelling of the field.
func (f CalField) String() string {
	if f < FieldYear || f > FieldHour {
		return fmt.Sprintf("CalField(%d)", int(f))
	}
	return fieldNames[f]
}

// Calendar matches granules whose start instant has Field value inside
// one of the allowed ranges. An empty Ranges list matches nothing.
type Calendar struct {
	Field  CalField
	Ranges []FieldRange
}

// FieldRange is an inclusive range of field values; a single value v is
// the range [v, v].
type FieldRange struct{ Lo, Hi int }

// NewCalendar validates the ranges against the field's domain.
func NewCalendar(field CalField, ranges ...FieldRange) (Calendar, error) {
	lo, hi := fieldDomain(field)
	if len(ranges) == 0 {
		return Calendar{}, fmt.Errorf("timegran: calendar pattern on %v needs at least one range", field)
	}
	for _, r := range ranges {
		if r.Lo > r.Hi {
			return Calendar{}, fmt.Errorf("timegran: %v range %d..%d reversed", field, r.Lo, r.Hi)
		}
		if r.Lo < lo || r.Hi > hi {
			return Calendar{}, fmt.Errorf("timegran: %v range %d..%d outside domain %d..%d", field, r.Lo, r.Hi, lo, hi)
		}
	}
	rs := make([]FieldRange, len(ranges))
	copy(rs, ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	return Calendar{Field: field, Ranges: rs}, nil
}

func fieldDomain(f CalField) (lo, hi int) {
	switch f {
	case FieldYear:
		return 1, 9999
	case FieldMonth:
		return 1, 12
	case FieldWeekday:
		return 1, 7
	case FieldMonthDay:
		return 1, 31
	case FieldHour:
		return 0, 23
	default:
		return 0, -1
	}
}

// fieldValue extracts the field from an instant.
func fieldValue(f CalField, t time.Time) int {
	switch f {
	case FieldYear:
		return t.Year()
	case FieldMonth:
		return int(t.Month())
	case FieldWeekday:
		wd := int(t.Weekday()) // Sunday=0
		if wd == 0 {
			return 7
		}
		return wd
	case FieldMonthDay:
		return t.Day()
	case FieldHour:
		return t.Hour()
	default:
		panic(fmt.Sprintf("timegran: fieldValue on invalid field %d", int(f)))
	}
}

// FieldValueAt returns the calendar field value of granule g at base
// granularity, e.g. FieldValueAt(FieldWeekday, Day, g) is the ISO
// weekday (1=Monday) of day-granule g. The periodicity miner folds
// granules onto calendar classes with it.
func FieldValueAt(f CalField, base Granularity, g Granule) int {
	return fieldValue(f, Start(g, base))
}

// FieldDomain returns the inclusive value domain of a calendar field.
func FieldDomain(f CalField) (lo, hi int) { return fieldDomain(f) }

// Matches implements Pattern: the granule's start instant must fall in
// one of the ranges.
func (c Calendar) Matches(base Granularity, g Granule) bool {
	v := fieldValue(c.Field, Start(g, base))
	for _, r := range c.Ranges {
		if v >= r.Lo && v <= r.Hi {
			return true
		}
	}
	return false
}

// String renders "month in (6..8, 12)".
func (c Calendar) String() string {
	var parts []string
	for _, r := range c.Ranges {
		if r.Lo == r.Hi {
			parts = append(parts, fmt.Sprintf("%d", r.Lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d..%d", r.Lo, r.Hi))
		}
	}
	return fmt.Sprintf("%v in (%s)", c.Field, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------
// Window: an absolute time range.

// Window matches granules whose start instant lies in [From, To).
type Window struct {
	From, To time.Time
}

// NewWindow validates the ordering.
func NewWindow(from, to time.Time) (Window, error) {
	if !from.Before(to) {
		return Window{}, fmt.Errorf("timegran: window %v..%v is empty or reversed", from, to)
	}
	return Window{From: from.UTC(), To: to.UTC()}, nil
}

// Matches implements Pattern.
func (w Window) Matches(base Granularity, g Granule) bool {
	s := Start(g, base)
	return !s.Before(w.From) && s.Before(w.To)
}

// String renders "between 1998-01-01 00:00 and 1998-06-30 00:00" in the
// syntax ParsePattern accepts, so patterns round-trip through text.
func (w Window) String() string {
	const layout = "2006-01-02 15:04"
	return fmt.Sprintf("between %s and %s", w.From.Format(layout), w.To.Format(layout))
}

// ---------------------------------------------------------------------
// Combinators.

// And matches when every child matches. An empty And matches always.
type And []Pattern

// Matches implements Pattern.
func (a And) Matches(base Granularity, g Granule) bool {
	for _, p := range a {
		if !p.Matches(base, g) {
			return false
		}
	}
	return true
}

// String renders "(p and q)".
func (a And) String() string { return combString(a, "and") }

// Or matches when any child matches. An empty Or matches never.
type Or []Pattern

// Matches implements Pattern.
func (o Or) Matches(base Granularity, g Granule) bool {
	for _, p := range o {
		if p.Matches(base, g) {
			return true
		}
	}
	return false
}

// String renders "(p or q)".
func (o Or) String() string { return combString(o, "or") }

// Not inverts a pattern.
type Not struct{ P Pattern }

// Matches implements Pattern.
func (n Not) Matches(base Granularity, g Granule) bool { return !n.P.Matches(base, g) }

// String renders "not (p)".
func (n Not) String() string { return "not (" + n.P.String() + ")" }

// Always matches every granule; it is the temporal feature of an
// ordinary, non-temporal rule.
type Always struct{}

// Matches implements Pattern.
func (Always) Matches(Granularity, Granule) bool { return true }

// String renders "always".
func (Always) String() string { return "always" }

func combString(ps []Pattern, op string) string {
	if len(ps) == 0 {
		if op == "and" {
			return "always"
		}
		return "never"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}
