package bench

import (
	"fmt"
	"time"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Cfg returns the default per-granule thresholds used across the
// experiments. MinFreq 0.8 tolerates the per-granule sampling noise of
// the generator (a planted rule holds in a granule only with high
// probability, not certainty); MaxK 3 bounds the level-wise search the
// way the companion papers bound rule size, keeping low-support sweeps
// from blowing up on degenerate candidates.
func Cfg() core.Config {
	return core.Config{
		Granularity:   timegran.Day,
		MinSupport:    0.15,
		MinConfidence: 0.6,
		MinFreq:       0.8,
		MaxK:          3,
		Backend:       Backend,
		Workers:       Workers,
		Tracer:        Tracer,
	}
}

func timed(fn func() error) (time.Duration, error) {
	t0 := time.Now()
	err := fn()
	return time.Since(t0), err
}

// E1MissedRules reproduces the paper's headline claim: temporal mining
// discovers rules that traditional (time-agnostic) mining misses. One
// standard dataset, five miners, and for each the number of planted
// rules recovered.
func E1MissedRules(sc StandardConfig) (Table, error) {
	tbl, truth, err := StandardDataset(sc)
	if err != nil {
		return Table{}, err
	}
	cfg := Cfg()
	t := Table{
		ID:     "E1",
		Title:  "temporal vs traditional mining, " + describe(sc),
		Header: []string{"miner", "rules found", "planted recovered", "which"},
	}

	recoveredNames := func(match func(g GroundTruth) bool) (int, string) {
		n, names := 0, ""
		for _, g := range truth {
			if match(g) {
				n++
				if names != "" {
					names += ","
				}
				names += g.Name
			}
		}
		if names == "" {
			names = "-"
		}
		return n, names
	}

	// Traditional Apriori over the whole year.
	trad, err := core.MineTraditional(tbl, cfg.MinSupport, cfg.MinConfidence, 0)
	if err != nil {
		return t, err
	}
	n, which := recoveredNames(func(g GroundTruth) bool {
		for _, r := range trad {
			if g.MatchesRule(r.Antecedent, r.Consequent) {
				return true
			}
		}
		return false
	})
	t.AddRow("traditional Apriori", fmt.Sprint(len(trad)), fmt.Sprintf("%d/4", n), which)

	// Task I: valid periods.
	periods, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7})
	if err != nil {
		return t, err
	}
	n, which = recoveredNames(func(g GroundTruth) bool {
		if g.Kind == "cycle" {
			return false // a weekly cycle is not an interval feature
		}
		for _, r := range periods {
			if g.MatchesRule(r.Rule.Antecedent, r.Rule.Consequent) {
				return true
			}
		}
		return false
	})
	t.AddRow("Task I (valid periods)", fmt.Sprint(len(periods)), fmt.Sprintf("%d/2", n), which)

	// Task II: cycles.
	cycles, err := core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: 10, MinReps: 4})
	if err != nil {
		return t, err
	}
	n, which = recoveredNames(func(g GroundTruth) bool {
		if g.Kind == "interval" || g.Name == "summer" {
			return false
		}
		for _, r := range cycles {
			if g.MatchesRule(r.Rule.Antecedent, r.Rule.Consequent) {
				return true
			}
		}
		return false
	})
	t.AddRow("Task II (cycles)", fmt.Sprint(len(cycles)), fmt.Sprintf("%d/2", n), which)

	// Task II: calendar periodicities.
	cals, err := core.MineCalendarPeriodicities(tbl, cfg, core.CycleConfig{MinReps: 4})
	if err != nil {
		return t, err
	}
	n, which = recoveredNames(func(g GroundTruth) bool {
		if g.Kind != "calendar" {
			return false
		}
		for _, r := range cals {
			if g.MatchesRule(r.Rule.Antecedent, r.Rule.Consequent) {
				return true
			}
		}
		return false
	})
	t.AddRow("Task II (calendars)", fmt.Sprint(len(cals)), fmt.Sprintf("%d/2", n), which)

	// Task III: mining during the summer feature.
	during, err := core.MineDuringExpr(tbl, cfg, "month in (jun..aug)")
	if err != nil {
		return t, err
	}
	n, which = recoveredNames(func(g GroundTruth) bool {
		if g.Name != "summer" {
			return false
		}
		for _, r := range during {
			if g.MatchesRule(r.Rule.Antecedent, r.Rule.Consequent) {
				return true
			}
		}
		return false
	})
	t.AddRow("Task III (during summer)", fmt.Sprint(len(during)), fmt.Sprintf("%d/1", n), which)

	t.Notes = append(t.Notes,
		"planted rules: summer (jun-aug), weekend (sat-sun), weekly (7-day cycle), promo (1998-03-01..1998-04-15)",
		"per-granule thresholds: support 0.15, confidence 0.6",
	)
	return t, nil
}

// E2SupportSweep measures each task's runtime as minimum support
// falls — the classic Apriori cost curve, reproduced per task.
func E2SupportSweep(sc StandardConfig, supports []float64) (Table, error) {
	tbl, _, err := StandardDataset(sc)
	if err != nil {
		return Table{}, err
	}
	if len(supports) == 0 {
		supports = []float64{0.25, 0.20, 0.15, 0.10, 0.05}
	}
	t := Table{
		ID:     "E2",
		Title:  "runtime vs minimum support, " + describe(sc),
		Header: []string{"minsup", "taskI ms", "taskII ms", "taskIII ms", "traditional ms"},
	}
	for _, s := range supports {
		cfg := Cfg()
		cfg.MinSupport = s
		d1, err := timed(func() error {
			_, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7})
			return err
		})
		if err != nil {
			return t, err
		}
		d2, err := timed(func() error {
			_, err := core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: 10, MinReps: 4})
			return err
		})
		if err != nil {
			return t, err
		}
		// Weekends exist in any span, so the Task III timing does not
		// depend on the dataset covering a particular season.
		d3, err := timed(func() error {
			_, err := core.MineDuringExpr(tbl, cfg, "weekday in (sat, sun)")
			return err
		})
		if err != nil {
			return t, err
		}
		d4, err := timed(func() error {
			_, err := core.MineTraditional(tbl, s, cfg.MinConfidence, 0)
			return err
		})
		if err != nil {
			return t, err
		}
		t.AddRow(f(s), ms(d1.Seconds()*1000), ms(d2.Seconds()*1000), ms(d3.Seconds()*1000), ms(d4.Seconds()*1000))
	}
	return t, nil
}

// E3ScaleUp measures runtime as the number of transactions grows by
// lengthening the history at fixed daily volume — the linear scale-up
// figure. (Scaling tx/day instead would also scale the absolute
// per-granule support threshold and change the candidate population,
// confounding the size axis.)
func E3ScaleUp(days []int, seed int64) (Table, error) {
	if len(days) == 0 {
		days = []int{91, 182, 364, 728}
	}
	t := Table{
		ID:     "E3",
		Title:  "runtime vs database size (100 tx/day, varying history length)",
		Header: []string{"days", "transactions", "taskI ms", "traditional ms"},
	}
	for _, d := range days {
		tbl, _, err := StandardDataset(StandardConfig{TxPerDay: 100, Days: d, Seed: seed})
		if err != nil {
			return t, err
		}
		cfg := Cfg()
		d1, err := timed(func() error {
			_, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7})
			return err
		})
		if err != nil {
			return t, err
		}
		d2, err := timed(func() error {
			_, err := core.MineTraditional(tbl, cfg.MinSupport, cfg.MinConfidence, 0)
			return err
		})
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprint(d), fmt.Sprint(tbl.Len()), ms(d1.Seconds()*1000), ms(d2.Seconds()*1000))
	}
	return t, nil
}

// E4TransactionSize measures runtime as the mean basket size |T| grows.
func E4TransactionSize(sizes []float64, seed int64) (Table, error) {
	if len(sizes) == 0 {
		sizes = []float64{5, 10, 15, 20}
	}
	t := Table{
		ID:     "E4",
		Title:  "runtime vs mean transaction size (364 days × 50 tx/day)",
		Header: []string{"|T|", "taskI ms"},
	}
	for _, sz := range sizes {
		tbl, _, err := StandardDataset(StandardConfig{TxPerDay: 50, AvgTxLen: sz, Seed: seed})
		if err != nil {
			return t, err
		}
		d, err := timed(func() error {
			_, err := core.MineValidPeriods(tbl, Cfg(), core.PeriodConfig{MinLen: 7})
			return err
		})
		if err != nil {
			return t, err
		}
		t.AddRow(f(sz), ms(d.Seconds()*1000))
	}
	return t, nil
}
