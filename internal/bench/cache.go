package bench

import (
	"fmt"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

// e12Statements is the replayed IQMS session: four temporal tasks swept
// across support thresholds the way an analyst narrows in — the initial
// look (0.15), two tightening rounds (0.18, 0.22), one loosening round
// (0.12, the only statement the warm cache cannot derive) and a return
// to 0.2 served off the broadened entry. 20 statements, one hold-table
// build per distinct "not yet covered" support.
func e12Statements() []string {
	tasks := []string{
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT %g CONFIDENCE 0.6 FREQUENCY 0.9 MIN LENGTH 7`,
		`MINE CYCLES FROM baskets THRESHOLD SUPPORT %g CONFIDENCE 0.6 MAX LENGTH 10 MIN REPS 4`,
		`MINE CALENDARS FROM baskets THRESHOLD SUPPORT %g CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 4`,
		`MINE RULES FROM baskets DURING 'month in (jun..aug)' THRESHOLD SUPPORT %g CONFIDENCE 0.6 FREQUENCY 0.8`,
	}
	var out []string
	for _, sup := range []float64{0.15, 0.18, 0.22, 0.12, 0.2} {
		for _, tmpl := range tasks {
			out = append(out, fmt.Sprintf(tmpl, sup))
		}
	}
	return out
}

// e12Session loads the standard dataset into a fresh IQMS session.
func e12Session(sc StandardConfig) (*tml.Session, error) {
	txt, _, err := StandardDataset(sc)
	if err != nil {
		return nil, err
	}
	db := tdb.NewMemDB()
	dst, err := db.CreateTxTable("baskets")
	if err != nil {
		return nil, err
	}
	txt.Each(func(tx tdb.Tx) bool {
		dst.Append(tx.At, tx.Items)
		return true
	})
	return tml.NewSession(db), nil
}

// cacheOutcome names what the warm executor's cache did for one
// statement, from the counter deltas around it.
func cacheOutcome(before, after core.CacheStats) string {
	switch {
	case after.Deltas > before.Deltas:
		return "delta"
	case after.Misses > before.Misses:
		return "miss"
	case after.Rethresholds > before.Rethresholds:
		return "rethreshold"
	case after.Hits > before.Hits:
		return "hit"
	default:
		return "-"
	}
}

// E12InteractiveReplay replays the same 20-statement TML session
// through two executors — cold (hold-table cache disabled, the
// pre-cache behaviour: every statement rebuilds) and warm (the default
// cache) — and reports per-statement latency side by side with what
// the cache did. The aggregate row is the headline: an interactive
// session pays the counting scan once per uncovered support level
// instead of once per statement.
func E12InteractiveReplay(sc StandardConfig) (Table, error) {
	coldSession, err := e12Session(sc)
	if err != nil {
		return Table{}, err
	}
	coldSession.TML.Backend = Backend
	coldSession.TML.Workers = Workers
	coldSession.TML.Cache = nil
	warmSession, err := e12Session(sc)
	if err != nil {
		return Table{}, err
	}
	warmSession.TML.Backend = Backend
	warmSession.TML.Workers = Workers

	t := Table{
		ID:     "E12",
		Title:  "interactive session replay, cold vs warm hold-table cache, " + describe(sc),
		Header: []string{"#", "statement", "cold ms", "warm ms", "speedup", "cache"},
	}
	var coldTotal, warmTotal float64
	for i, stmt := range e12Statements() {
		var coldRows, warmRows int
		coldD, err := timed(func() error {
			res, err := coldSession.Exec(stmt)
			if err == nil {
				coldRows = len(res.Rows)
			}
			return err
		})
		if err != nil {
			return t, fmt.Errorf("cold %s: %w", stmt, err)
		}
		before := warmSession.TML.Cache.Stats()
		warmD, err := timed(func() error {
			res, err := warmSession.Exec(stmt)
			if err == nil {
				warmRows = len(res.Rows)
			}
			return err
		})
		if err != nil {
			return t, fmt.Errorf("warm %s: %w", stmt, err)
		}
		if coldRows != warmRows {
			return t, fmt.Errorf("%s: cold returned %d rows, warm %d", stmt, coldRows, warmRows)
		}
		coldMS, warmMS := coldD.Seconds()*1000, warmD.Seconds()*1000
		coldTotal += coldMS
		warmTotal += warmMS
		label := stmt
		if len(label) > 56 {
			label = label[:53] + "..."
		}
		speedup := "-"
		if warmMS > 0 {
			speedup = fmt.Sprintf("%.1fx", coldMS/warmMS)
		}
		t.AddRow(fmt.Sprint(i+1), label, ms(coldMS), ms(warmMS), speedup,
			cacheOutcome(before, warmSession.TML.Cache.Stats()))
	}
	st := warmSession.TML.Cache.Stats()
	t.AddRow("", "TOTAL (20 statements)", ms(coldTotal), ms(warmTotal),
		fmt.Sprintf("%.1fx", coldTotal/warmTotal),
		fmt.Sprintf("%dm/%dr/%dh", st.Misses, st.Rethresholds, st.Hits))
	return t, nil
}
