package bench

import (
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/obs"
)

// E14DensitySweep is the compressed-bitmap ablation: the same flat
// Apriori workload swept across item density, timing the hash tree,
// the uncompressed vertical bitmap and the roaring-container backend
// side by side. For every run it also reports what the cost model
// predicted (in abstract word-ops) next to the observed counting time,
// and which backend the model would have picked — so the table shows
// both where compression pays and whether the auto resolver agrees.
func E14DensitySweep(seed int64) (Table, error) {
	type shape struct {
		label  string
		items  int
		txLen  float64
		d      int
		minsup float64
	}
	// AvgTxLen fixed at 10: density falls as the item universe grows.
	shapes := []shape{
		{label: "dense ~1/10", items: 100, txLen: 10, d: 8_000, minsup: 0.05},
		{label: "medium ~1/100", items: 1_000, txLen: 10, d: 10_000, minsup: 0.01},
		{label: "sparse ~1/500", items: 5_000, txLen: 10, d: 20_000, minsup: 0.002},
		{label: "very sparse ~1/2000", items: 20_000, txLen: 10, d: 20_000, minsup: 0.001},
	}
	backends := []apriori.Backend{apriori.BackendHashTree, apriori.BackendBitmap, apriori.BackendRoaring, apriori.BackendAuto}

	t := Table{
		ID:     "E14",
		Title:  "counting cost vs item density (hash tree vs bitmap vs roaring vs auto)",
		Header: []string{"data", "minsup", "backend", "time ms", "predicted", "counting ms", "resolved", "itemsets"},
	}
	for _, sh := range shapes {
		q, err := gen.NewQuest(gen.QuestConfig{NItems: sh.items, AvgTxLen: sh.txLen}, seed)
		if err != nil {
			return t, err
		}
		src := apriori.Transactions(q.Transactions(sh.d))
		label := fmt.Sprintf("%s D%d", sh.label, sh.d)
		var wantSets int
		for bi, b := range backends {
			collect := obs.NewCollectTracer()
			var f *apriori.Frequent
			d, err := timed(func() error {
				var err error
				f, err = apriori.Mine(src, apriori.Config{
					MinSupport: sh.minsup, MaxK: 3, Backend: b, Tracer: collect,
				})
				return err
			})
			if err != nil {
				return t, fmt.Errorf("%s backend=%v: %w", label, b, err)
			}
			if bi == 0 {
				wantSets = f.TotalItemsets()
			} else if f.TotalItemsets() != wantSets {
				return t, fmt.Errorf("%s backend=%v: %d itemsets, want %d (backends disagree)",
					label, b, f.TotalItemsets(), wantSets)
			}
			st := collect.Stats()
			predicted := "-"
			if v, ok := st.Gauges[obs.MetricCountingPredictedCost]; ok {
				predicted = fmt.Sprintf("%.3g", v)
			}
			counting := "-"
			if v, ok := st.Gauges[obs.MetricCountingObservedNS]; ok {
				counting = ms(v / 1e6)
			}
			resolved := "-"
			if b == apriori.BackendAuto && st.Backend != "" {
				resolved = st.Backend
			}
			t.AddRow(label, fmt.Sprintf("%g", sh.minsup), b.String(),
				ms(d.Seconds()*1000), predicted, counting, resolved, fmt.Sprint(f.TotalItemsets()))
		}
	}
	t.Notes = append(t.Notes,
		"predicted = cost model estimate in word-ops for the backend that ran; counting ms = time inside the counting passes only",
		"resolved = the backend the cost model picked for the auto run (over the frequent items); itemsets must agree across backends")
	return t, nil
}
