package bench

import (
	"testing"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/tdb"
)

// BenchmarkHoldCache guards the acceptance bar of the hold-table
// cache: a warm exact-threshold hit must be at least an order of
// magnitude faster than a cold build (it is a map probe plus a shallow
// copy), and a monotone re-threshold — deriving a higher-support table
// from the stored count vectors without rescanning — must sit well
// under the cold build it replaces. Workload: the standard 364-day
// dataset at the default thresholds.
//
//	go test ./internal/bench/ -bench HoldCache -benchtime 10x
func BenchmarkHoldCache(b *testing.B) {
	txt, _, err := StandardDataset(StandardConfig{TxPerDay: 50})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Cfg()
	check := func(b *testing.B, h *core.HoldTable, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if h.TotalItemsets() == 0 {
			b.Fatal("workload degenerate: empty hold table")
		}
	}
	b.Run("cold-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := core.BuildHoldTable(txt, cfg)
			check(b, h, err)
		}
	})
	b.Run("warm-hit", func(b *testing.B) {
		c := core.NewHoldCache(core.DefaultCacheBytes)
		if _, err := c.Get(txt, cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := c.Get(txt, cfg)
			check(b, h, err)
		}
		if st := c.Stats(); st.Hits != int64(b.N) {
			b.Fatalf("expected every iteration to hit: %+v", st)
		}
	})
	b.Run("rethreshold", func(b *testing.B) {
		c := core.NewHoldCache(core.DefaultCacheBytes)
		if _, err := c.Get(txt, cfg); err != nil {
			b.Fatal(err)
		}
		qcfg := cfg
		qcfg.MinSupport = cfg.MinSupport * 4 / 3
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := c.Get(txt, qcfg)
			check(b, h, err)
		}
		if st := c.Stats(); st.Rethresholds != int64(b.N) {
			b.Fatalf("expected every iteration to re-threshold: %+v", st)
		}
	})
	b.Run("stale-epoch-rebuild", func(b *testing.B) {
		c := core.NewHoldCache(core.DefaultCacheBytes)
		var last tdb.Tx
		txt.Each(func(tx tdb.Tx) bool { last = tx; return true })
		for i := 0; i < b.N; i++ {
			txt.Append(last.At, last.Items)
			h, err := c.Get(txt, cfg)
			check(b, h, err)
		}
		if st := c.Stats(); st.Misses != int64(b.N) {
			b.Fatalf("expected every iteration to rebuild: %+v", st)
		}
	})
}
