// Package bench is the experiment harness: it builds the synthetic
// workloads, runs every experiment of EXPERIMENTS.md (E1–E10) and
// renders the tables/series the paper-style evaluation reports. The
// root-level benchmarks and cmd/tarmine both drive this package, so
// the numbers in documentation and the numbers a user reproduces come
// from the same code.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment result: a titled grid rendered as aligned
// text.
type Table struct {
	ID     string // e.g. "E1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// ms formats a duration in milliseconds.
func ms(d float64) string { return fmt.Sprintf("%.1f", d) }
