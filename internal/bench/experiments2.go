package bench

import (
	"fmt"
	"math/rand"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
	"github.com/tarm-project/tarm/internal/tml"
)

// intervalDataset plants k interval rules with random spans for E5.
func intervalDataset(k, txPerDay int, seed int64) (*tdb.TxTable, []gen.PlantedRule, error) {
	r := rand.New(rand.NewSource(seed))
	days := 364
	var rules []gen.PlantedRule
	for i := 0; i < k; i++ {
		length := 14 + r.Intn(47) // 14..60 days
		start := r.Intn(days - length)
		w, err := timegran.NewWindow(
			year0.AddDate(0, 0, start),
			year0.AddDate(0, 0, start+length),
		)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, gen.PlantedRule{
			Name:    fmt.Sprintf("iv%d", i),
			Items:   itemset.New(plantedBase+itemset.Item(2*i), plantedBase+itemset.Item(2*i+1)),
			Pattern: w,
			PInside: 0.35, POutside: 0.004,
		})
	}
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 1000, NPatterns: 200, AvgTxLen: 10, AvgPatLen: 4},
		Start:        year0,
		Granularity:  timegran.Day,
		NGranules:    days,
		TxPerGranule: txPerDay,
		Rules:        rules,
	}
	tbl, err := gen.GenerateTemporal(cfg, seed)
	return tbl, rules, err
}

// E5ValidPeriodRecovery plants interval rules and scores how well Task
// I recovers the planted intervals (Jaccard overlap of the best
// recovered period against the planted window).
func E5ValidPeriodRecovery(txPerDay int, seed int64) (Table, error) {
	if txPerDay == 0 {
		txPerDay = 100
	}
	tbl, planted, err := intervalDataset(6, txPerDay, seed)
	if err != nil {
		return Table{}, err
	}
	cfg := Cfg()
	found, err := core.MineValidPeriods(tbl, cfg, core.PeriodConfig{MinLen: 7})
	if err != nil {
		return Table{}, err
	}
	span, _ := tbl.Span(timegran.Day)
	t := Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Task I recovery of 6 planted intervals (364 days × %d tx/day)", txPerDay),
		Header: []string{"rule", "planted", "recovered", "jaccard", "hit(≥0.8)"},
	}
	hits := 0
	for _, p := range planted {
		truthSet := timegran.Granules(p.Pattern, timegran.Day, span)
		best := 0.0
		bestIv := "-"
		for _, r := range found {
			if !r.Rule.Antecedent.Union(r.Rule.Consequent).Equal(p.Items) {
				continue
			}
			got := timegran.NewIntervalSet(r.Interval)
			inter := truthSet.Intersect(got).Count()
			union := truthSet.Union(got).Count()
			if union == 0 {
				continue
			}
			j := float64(inter) / float64(union)
			if j > best {
				best = j
				bestIv = r.Interval.Format(timegran.Day)
			}
		}
		hit := "no"
		if best >= 0.8 {
			hit = "yes"
			hits++
		}
		plantedStr := "-"
		if ivs := truthSet.Intervals(); len(ivs) > 0 {
			plantedStr = ivs[0].Format(timegran.Day)
		}
		t.AddRow(p.Name, plantedStr, bestIv, f(best), hit)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("recall at Jaccard ≥ 0.8: %d/%d", hits, len(planted)))
	return t, nil
}

// cycleDataset plants cycles of the given lengths for E6/E7/E10.
func cycleDataset(lengths []int, pInside float64, txPerDay, days int, seed int64) (*tdb.TxTable, []gen.PlantedRule, error) {
	r := rand.New(rand.NewSource(seed))
	g0 := timegran.GranuleOf(year0, timegran.Day)
	var rules []gen.PlantedRule
	for i, l := range lengths {
		c, err := timegran.NewCycle(int64(l), g0+int64(r.Intn(l)))
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, gen.PlantedRule{
			Name:    fmt.Sprintf("cyc%d", l),
			Items:   itemset.New(plantedBase+itemset.Item(2*i), plantedBase+itemset.Item(2*i+1)),
			Pattern: c,
			PInside: pInside, POutside: 0.004,
		})
	}
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 1000, NPatterns: 200, AvgTxLen: 10, AvgPatLen: 4},
		Start:        year0,
		Granularity:  timegran.Day,
		NGranules:    days,
		TxPerGranule: txPerDay,
		Rules:        rules,
	}
	tbl, err := gen.GenerateTemporal(cfg, seed)
	return tbl, rules, err
}

// E6CycleRecovery plants cycles of several lengths and checks Task II
// recovers each exactly, across a MaxLen sweep.
func E6CycleRecovery(txPerDay int, seed int64) (Table, error) {
	if txPerDay == 0 {
		txPerDay = 100
	}
	lengths := []int{3, 7, 14, 28}
	tbl, planted, err := cycleDataset(lengths, 0.35, txPerDay, 364, seed)
	if err != nil {
		return Table{}, err
	}
	cfg := Cfg()
	cfg.MinFreq = 0.9 // exact cycles are unrecoverable under sampling noise
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Task II recovery of planted cycles (364 days × %d tx/day)", txPerDay),
		Header: []string{"maxlen", "cyclic rules", "planted recovered", "ms"},
	}
	for _, maxLen := range []int{7, 14, 31} {
		var rules []core.CyclicRule
		d, err := timed(func() error {
			var err error
			rules, err = core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: maxLen, MinReps: 4})
			return err
		})
		if err != nil {
			return t, err
		}
		recovered := 0
		for _, p := range planted {
			truthCycle := p.Pattern.(timegran.Cycle)
			if truthCycle.Length > int64(maxLen) {
				continue
			}
			for _, r := range rules {
				if r.Rule.Antecedent.Union(r.Rule.Consequent).Equal(p.Items) &&
					r.Cycle.Length == truthCycle.Length && r.Cycle.Offset == truthCycle.Offset {
					recovered++
					break
				}
			}
		}
		inRange := 0
		for _, p := range planted {
			if p.Pattern.(timegran.Cycle).Length <= int64(maxLen) {
				inRange++
			}
		}
		t.AddRow(fmt.Sprint(maxLen), fmt.Sprint(len(rules)),
			fmt.Sprintf("%d/%d", recovered, inRange), ms(d.Seconds()*1000))
	}
	t.Notes = append(t.Notes, "planted cycle lengths: 3, 7, 14, 28 days; recovery requires the exact (length, offset)")
	return t, nil
}

// E7CycleAblation compares the sequential and interleaved itemset-cycle
// miners: identical results, different counting work.
func E7CycleAblation(txPerDay int, seed int64, supports []float64) (Table, error) {
	if txPerDay == 0 {
		txPerDay = 60
	}
	if len(supports) == 0 {
		supports = []float64{0.25, 0.20, 0.15, 0.10}
	}
	tbl, _, err := cycleDataset([]int{7, 14}, 0.35, txPerDay, 364, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("sequential vs interleaved cyclic mining (364 days × %d tx/day)", txPerDay),
		Header: []string{"minsup", "seq pairs", "inter pairs", "work saved", "seq ms", "inter ms", "results equal"},
	}
	for _, s := range supports {
		cfg := Cfg()
		cfg.MinSupport = s
		cfg.MinFreq = 1
		ccfg := core.CycleConfig{MaxLen: 14, MinReps: 4}
		var seq, inter []core.ItemsetCycles
		var seqStats, interStats core.CycleMinerStats
		dSeq, err := timed(func() error {
			var err error
			seq, seqStats, err = core.MineItemsetCyclesSequential(tbl, cfg, ccfg)
			return err
		})
		if err != nil {
			return t, err
		}
		dInter, err := timed(func() error {
			var err error
			inter, interStats, err = core.MineItemsetCyclesInterleaved(tbl, cfg, ccfg)
			return err
		})
		if err != nil {
			return t, err
		}
		equal := len(seq) == len(inter)
		if equal {
			for i := range seq {
				if !seq[i].Set.Equal(inter[i].Set) || len(seq[i].Cycles) != len(inter[i].Cycles) {
					equal = false
					break
				}
			}
		}
		savedStr := "-"
		if seqStats.CandidateGranulePairs > 0 {
			saved := 1 - float64(interStats.CandidateGranulePairs)/float64(seqStats.CandidateGranulePairs)
			savedStr = fmt.Sprintf("%.0f%%", saved*100)
		}
		t.AddRow(f(s),
			fmt.Sprint(seqStats.CandidateGranulePairs),
			fmt.Sprint(interStats.CandidateGranulePairs),
			savedStr,
			ms(dSeq.Seconds()*1000), ms(dInter.Seconds()*1000),
			fmt.Sprint(equal))
	}
	t.Notes = append(t.Notes, "pairs = (candidate, granule) support counts at levels k ≥ 2 (level 1 is one identical full pass in both miners)")
	return t, nil
}

// E8CalendarSelectivity measures Task III cost and yield as the
// temporal feature narrows.
func E8CalendarSelectivity(sc StandardConfig) (Table, error) {
	tbl, _, err := StandardDataset(sc)
	if err != nil {
		return Table{}, err
	}
	features := []string{
		"always",
		"month in (1..6)",
		"month in (1..3)",
		"weekday in (sat, sun)",
		"month in (1)",
	}
	t := Table{
		ID:     "E8",
		Title:  "Task III cost vs feature selectivity, " + describe(sc),
		Header: []string{"feature", "granules", "rules", "ms"},
	}
	cfg := Cfg()
	cfg.MinFreq = 0.8
	span, _ := tbl.Span(timegran.Day)
	for _, expr := range features {
		p, err := timegran.ParsePattern(expr)
		if err != nil {
			return t, err
		}
		covered := timegran.Granules(p, timegran.Day, span).Count()
		var rules []core.TemporalRule
		d, err := timed(func() error {
			var err error
			rules, err = core.MineDuring(tbl, cfg, p)
			return err
		})
		if err != nil {
			return t, err
		}
		t.AddRow(expr, fmt.Sprint(covered), fmt.Sprint(len(rules)), ms(d.Seconds()*1000))
	}
	return t, nil
}

// E9TML measures the end-to-end cost of each TML statement form through
// the IQMS session (parse + plan + mine + render), plus a SQL statement
// for the query half of the loop.
func E9TML(sc StandardConfig) (Table, error) {
	txt, _, err := StandardDataset(sc)
	if err != nil {
		return Table{}, err
	}
	db := tdb.NewMemDB()
	dst, err := db.CreateTxTable("baskets")
	if err != nil {
		return Table{}, err
	}
	txt.Each(func(tx tdb.Tx) bool {
		dst.Append(tx.At, tx.Items)
		return true
	})
	session := tml.NewSession(db)
	stmts := []string{
		`SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC LIMIT 5`,
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6`,
		`MINE RULES FROM baskets DURING 'month in (jun..aug)' THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8`,
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.9 MIN LENGTH 7`,
		`MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 MAX LENGTH 10 MIN REPS 4`,
		`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 4`,
	}
	t := Table{
		ID:     "E9",
		Title:  "IQMS end-to-end statement cost, " + describe(sc),
		Header: []string{"statement", "rows", "ms"},
	}
	for _, stmt := range stmts {
		var rows int
		d, err := timed(func() error {
			res, err := session.Exec(stmt)
			if err != nil {
				return err
			}
			rows = len(res.Rows)
			return nil
		})
		if err != nil {
			return t, fmt.Errorf("%s: %w", stmt, err)
		}
		label := stmt
		if len(label) > 60 {
			label = label[:57] + "..."
		}
		t.AddRow(label, fmt.Sprint(rows), ms(d.Seconds()*1000))
	}
	return t, nil
}

// E10FrequencySweep plants a noisy weekly cycle and sweeps the
// frequency threshold: strict matching misses it, tolerant matching
// recovers it, too-tolerant matching drowns it in spurious features.
func E10FrequencySweep(txPerDay int, seed int64) (Table, error) {
	if txPerDay == 0 {
		txPerDay = 80
	}
	// pInside 0.22 with per-granule support threshold 0.15 means an
	// occurrence day clears the bar only most of the time: the hold
	// sequence is noisy by construction.
	tbl, planted, err := cycleDataset([]int{7}, 0.22, txPerDay, 364, seed)
	if err != nil {
		return Table{}, err
	}
	truthCycle := planted[0].Pattern.(timegran.Cycle)
	t := Table{
		ID:     "E10",
		Title:  fmt.Sprintf("cyclic rules vs frequency threshold (364 days × %d tx/day, noisy weekly plant)", txPerDay),
		Header: []string{"minfreq", "cyclic rules", "weekly plant recovered", "ms"},
	}
	for _, mf := range []float64{1.0, 0.9, 0.8, 0.7, 0.5} {
		cfg := Cfg()
		cfg.MinFreq = mf
		var rules []core.CyclicRule
		d, err := timed(func() error {
			var err error
			rules, err = core.MineCycles(tbl, cfg, core.CycleConfig{MaxLen: 10, MinReps: 4})
			return err
		})
		if err != nil {
			return t, err
		}
		rec := "no"
		for _, r := range rules {
			if r.Rule.Antecedent.Union(r.Rule.Consequent).Equal(planted[0].Items) &&
				r.Cycle.Length == truthCycle.Length && r.Cycle.Offset == truthCycle.Offset {
				rec = "yes"
				break
			}
		}
		t.AddRow(f(mf), fmt.Sprint(len(rules)), rec, ms(d.Seconds()*1000))
	}
	return t, nil
}

// Experiments lists every experiment with a default-parameter runner,
// keyed by lowercase id. cmd/tarmine uses it.
var Experiments = map[string]func() (Table, error){
	"e1":  func() (Table, error) { return E1MissedRules(StandardConfig{}) },
	"e2":  func() (Table, error) { return E2SupportSweep(StandardConfig{}, nil) },
	"e3":  func() (Table, error) { return E3ScaleUp(nil, 1998) },
	"e4":  func() (Table, error) { return E4TransactionSize(nil, 1998) },
	"e5":  func() (Table, error) { return E5ValidPeriodRecovery(0, 1998) },
	"e6":  func() (Table, error) { return E6CycleRecovery(0, 1998) },
	"e7":  func() (Table, error) { return E7CycleAblation(0, 1998, nil) },
	"e8":  func() (Table, error) { return E8CalendarSelectivity(StandardConfig{}) },
	"e9":  func() (Table, error) { return E9TML(StandardConfig{TxPerDay: 50}) },
	"e10": func() (Table, error) { return E10FrequencySweep(0, 1998) },
	"e11": func() (Table, error) { return E11CountingBackends(1998) },
	"e12": func() (Table, error) { return E12InteractiveReplay(StandardConfig{TxPerDay: 50}) },
	"e13": func() (Table, error) { return E13ConcurrentSessions(StandardConfig{TxPerDay: 50}) },
	"e14": func() (Table, error) { return E14DensitySweep(1998) },
	"e15": func() (Table, error) { return E15AppendDelta(StandardConfig{TxPerDay: 50}) },
	"e16": func() (Table, error) { return E16Durability(StandardConfig{}) },
	"e17": func() (Table, error) { return E17ContinuousLatency(1998) },
}

// ExperimentIDs returns the ids in run order.
func ExperimentIDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17"}
}
