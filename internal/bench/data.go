package bench

import (
	"fmt"
	"time"

	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Planted item identifiers live above the Quest universe so background
// noise cannot touch them and ground-truth scoring is unambiguous.
const plantedBase itemset.Item = 10_000

// start of the standard synthetic year.
var year0 = time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)

// GroundTruth describes one planted temporal rule for scoring.
type GroundTruth struct {
	Name    string
	Items   itemset.Set
	Pattern timegran.Pattern
	Kind    string // "interval", "cycle", "calendar"
}

// StandardConfig parametrises the shared experiment dataset: one year
// of daily data with four planted temporal rules — a summer rule, a
// weekend rule, a weekly cycle and a promotion interval — on top of a
// Quest background.
type StandardConfig struct {
	// TxPerDay is the mean number of transactions per day; 100 gives
	// the ~36K-transaction dataset most experiments use.
	TxPerDay int
	// AvgTxLen is the Quest |T| parameter (default 10).
	AvgTxLen float64
	// Days is the span length (default 364, i.e. 52 whole weeks).
	Days int
	// Seed fixes the draw.
	Seed int64
}

func (c StandardConfig) normalise() StandardConfig {
	if c.TxPerDay == 0 {
		c.TxPerDay = 100
	}
	if c.AvgTxLen == 0 {
		c.AvgTxLen = 10
	}
	if c.Days == 0 {
		c.Days = 364
	}
	if c.Seed == 0 {
		c.Seed = 1998
	}
	return c
}

// StandardDataset builds the dataset and returns it with its ground
// truth.
func StandardDataset(c StandardConfig) (*tdb.TxTable, []GroundTruth, error) {
	c = c.normalise()
	summer, err := timegran.NewCalendar(timegran.FieldMonth, timegran.FieldRange{Lo: 6, Hi: 8})
	if err != nil {
		return nil, nil, err
	}
	weekend, err := timegran.NewCalendar(timegran.FieldWeekday, timegran.FieldRange{Lo: 6, Hi: 7})
	if err != nil {
		return nil, nil, err
	}
	g0 := timegran.GranuleOf(year0, timegran.Day)
	weekly, err := timegran.NewCycle(7, g0+3)
	if err != nil {
		return nil, nil, err
	}
	promo, err := timegran.NewWindow(
		time.Date(1998, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1998, 4, 15, 0, 0, 0, 0, time.UTC),
	)
	if err != nil {
		return nil, nil, err
	}
	truth := []GroundTruth{
		{Name: "summer", Items: itemset.New(plantedBase, plantedBase+1), Pattern: summer, Kind: "calendar"},
		{Name: "weekend", Items: itemset.New(plantedBase+2, plantedBase+3), Pattern: weekend, Kind: "calendar"},
		{Name: "weekly", Items: itemset.New(plantedBase+4, plantedBase+5), Pattern: weekly, Kind: "cycle"},
		{Name: "promo", Items: itemset.New(plantedBase+6, plantedBase+7), Pattern: promo, Kind: "interval"},
	}
	cfg := gen.TemporalConfig{
		Quest:        gen.QuestConfig{NItems: 1000, NPatterns: 200, AvgTxLen: c.AvgTxLen, AvgPatLen: 4},
		Start:        year0,
		Granularity:  timegran.Day,
		NGranules:    c.Days,
		TxPerGranule: c.TxPerDay,
		Rules: []gen.PlantedRule{
			{Name: "summer", Items: truth[0].Items, Pattern: summer, PInside: 0.25, POutside: 0.005},
			{Name: "weekend", Items: truth[1].Items, Pattern: weekend, PInside: 0.30, POutside: 0.005},
			{Name: "weekly", Items: truth[2].Items, Pattern: weekly, PInside: 0.35, POutside: 0.005},
			{Name: "promo", Items: truth[3].Items, Pattern: promo, PInside: 0.40, POutside: 0.005},
		},
	}
	tbl, err := gen.GenerateTemporal(cfg, c.Seed)
	if err != nil {
		return nil, nil, err
	}
	return tbl, truth, nil
}

// TruthRule returns the conventional antecedent/consequent split of a
// planted itemset.
func (g GroundTruth) TruthRule() (ante, cons itemset.Set) { return gen.RuleAnteCons(g.Items) }

// MatchesRule reports whether a mined (ante, cons) pair is the planted
// rule in either direction (a planted pair {a,b} may surface as a⇒b or
// b⇒a).
func (g GroundTruth) MatchesRule(ante, cons itemset.Set) bool {
	return ante.Union(cons).Equal(g.Items)
}

// describe renders a dataset label like "T10.D36400".
func describe(c StandardConfig) string {
	c = c.normalise()
	return fmt.Sprintf("T%.0f.D%d (%d days × %d tx/day)", c.AvgTxLen, c.TxPerDay*c.Days, c.Days, c.TxPerDay)
}
