package bench

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/server"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

// e15Statement is the warm statement under write traffic: the first
// statement of the E12 mix.
const e15Statement = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.9 MIN LENGTH 7`

// e15Batch draws one append batch: per granule, txPer small baskets
// mixing a planted pair with Quest background items, so the appends
// move real support counts in the dirtied days.
func e15Batch(r *rand.Rand, days []int, txPer int) []tdb.Tx {
	var out []tdb.Tx
	for _, d := range days {
		at := year0.AddDate(0, 0, d).Add(6 * time.Hour)
		for i := 0; i < txPer; i++ {
			items := []itemset.Item{plantedBase, plantedBase + 1,
				itemset.Item(r.Intn(1000)), itemset.Item(r.Intn(1000))}
			out = append(out, tdb.Tx{
				At:    at.Add(time.Duration(i) * time.Second),
				Items: itemset.New(items...),
			})
		}
	}
	return out
}

// E15AppendDelta measures the warm-statement cost of write traffic
// under the two maintenance policies. Both sessions hold the same data
// and a warm cache entry for the same statement; each round appends an
// identical batch touching a growing number of granules, then re-runs
// the statement. The delta arm re-counts only the dirtied granule
// blocks and splices them into the cached entry; the invalidation arm
// (the pre-delta policy, DisableDelta) drops the entry and rebuilds the
// hold table from scratch.
func E15AppendDelta(sc StandardConfig) (Table, error) {
	deltaSession, err := e12Session(sc)
	if err != nil {
		return Table{}, err
	}
	invalSession, err := e12Session(sc)
	if err != nil {
		return Table{}, err
	}
	for _, s := range []*tml.Session{deltaSession, invalSession} {
		s.TML.Backend = Backend
		s.TML.Workers = Workers
		if _, err := s.Exec(e15Statement); err != nil {
			return Table{}, err
		}
	}
	invalSession.TML.Cache.DisableDelta()
	deltaTbl, _ := deltaSession.DB.TxTable("baskets")
	invalTbl, _ := invalSession.DB.TxTable("baskets")

	scn := sc.normalise()
	t := Table{
		ID:     "E15",
		Title:  "warm MINE under append traffic: delta maintenance vs full invalidation, " + describe(sc),
		Header: []string{"dirty granules", "appended tx", "delta ms", "invalidate ms", "speedup", "cache"},
	}
	r := rand.New(rand.NewSource(scn.Seed))
	const txPerGranule = 20

	// One unmeasured warm-up round: the first delta maintain and the
	// first rebuild both pay one-off allocation costs that would skew
	// the first measured row.
	warmup := e15Batch(r, []int{r.Intn(scn.Days)}, txPerGranule)
	deltaTbl.AppendBatch(warmup)
	invalTbl.AppendBatch(warmup)
	for _, s := range []*tml.Session{deltaSession, invalSession} {
		if _, err := s.Exec(e15Statement); err != nil {
			return t, err
		}
	}

	// Each row averages over a few append→exec cycles: a single warm
	// statement runs in single-digit milliseconds, so one exec per row
	// would be scheduler noise.
	const reps = 3
	for _, dirty := range []int{1, 2, 4, 8, 16, 32} {
		var deltaMS, invalMS float64
		var appended int
		outcome := ""
		for rep := 0; rep < reps; rep++ {
			days := make([]int, dirty)
			for i := range days {
				days[i] = r.Intn(scn.Days)
			}
			batch := e15Batch(r, days, txPerGranule)
			appended += len(batch)
			deltaTbl.AppendBatch(batch)
			invalTbl.AppendBatch(batch)

			before := deltaSession.TML.Cache.Stats()
			var deltaRows, invalRows int
			deltaD, err := timed(func() error {
				res, err := deltaSession.Exec(e15Statement)
				if err == nil {
					deltaRows = len(res.Rows)
				}
				return err
			})
			if err != nil {
				return t, fmt.Errorf("delta arm: %w", err)
			}
			invalD, err := timed(func() error {
				res, err := invalSession.Exec(e15Statement)
				if err == nil {
					invalRows = len(res.Rows)
				}
				return err
			})
			if err != nil {
				return t, fmt.Errorf("invalidation arm: %w", err)
			}
			if deltaRows != invalRows {
				return t, fmt.Errorf("%d dirty granules: delta returned %d rows, invalidation %d", dirty, deltaRows, invalRows)
			}
			deltaMS += deltaD.Seconds() * 1000
			invalMS += invalD.Seconds() * 1000
			outcome = cacheOutcome(before, deltaSession.TML.Cache.Stats())
		}
		deltaMS /= reps
		invalMS /= reps
		speedup := "-"
		if deltaMS > 0 {
			speedup = fmt.Sprintf("%.1fx", invalMS/deltaMS)
		}
		t.AddRow(fmt.Sprint(dirty), fmt.Sprint(appended/reps), ms(deltaMS), ms(invalMS), speedup, outcome)
	}

	// Hit-rate phase: replay the statement 20 times per arm with an
	// append landing before every k-th statement, and report what the
	// warm cache did across the replay.
	for _, every := range []int{1, 2, 4} {
		line, err := e15Replay(sc, every)
		if err != nil {
			return t, err
		}
		t.Notes = append(t.Notes, line)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("each round appends %d tx per dirtied granule; both arms receive identical batches and must return identical rows", txPerGranule))
	return t, nil
}

// e15Replay runs the fixed-rate phase of E15: 20 warm statements with
// an append before every k-th one, on a delta arm and an invalidation
// arm, returning one summary line.
func e15Replay(sc StandardConfig, every int) (string, error) {
	const statements = 20
	type arm struct {
		label   string
		disable bool
		total   float64
		outcome map[string]int
	}
	arms := []*arm{
		{label: "delta", outcome: map[string]int{}},
		{label: "invalidate", disable: true, outcome: map[string]int{}},
	}
	scn := sc.normalise()
	for _, a := range arms {
		session, err := e12Session(sc)
		if err != nil {
			return "", err
		}
		session.TML.Backend = Backend
		session.TML.Workers = Workers
		if _, err := session.Exec(e15Statement); err != nil {
			return "", err
		}
		if a.disable {
			session.TML.Cache.DisableDelta()
		}
		tbl, _ := session.DB.TxTable("baskets")
		r := rand.New(rand.NewSource(scn.Seed + int64(every)))
		for i := 0; i < statements; i++ {
			if i%every == 0 {
				tbl.AppendBatch(e15Batch(r, []int{r.Intn(scn.Days)}, 20))
			}
			before := session.TML.Cache.Stats()
			d, err := timed(func() error {
				_, err := session.Exec(e15Statement)
				return err
			})
			if err != nil {
				return "", fmt.Errorf("%s arm: %w", a.label, err)
			}
			a.total += d.Seconds() * 1000
			a.outcome[cacheOutcome(before, session.TML.Cache.Stats())]++
		}
	}
	render := func(a *arm) string {
		var parts []string
		for _, k := range []string{"delta", "miss", "rethreshold", "hit", "-"} {
			if n := a.outcome[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", n, k))
			}
		}
		return fmt.Sprintf("%s %s ms (%s)", a.label, ms(a.total), strings.Join(parts, ", "))
	}
	return fmt.Sprintf("append before every %d. of %d warm statements: %s vs %s",
		every, statements, render(arms[0]), render(arms[1])), nil
}

// E13ConcurrentSessions measures tarmd statement throughput as client
// sessions are added: N clients each replay the 20-statement E12 mix
// against one server (shared executor, shared hold-table cache), and
// the table reports wall time, aggregate statement throughput and
// latency quantiles per session count.
func E13ConcurrentSessions(sc StandardConfig) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "tarmd throughput vs concurrent sessions (E12 statement mix), " + describe(sc),
		Header: []string{"clients", "statements", "wall s", "stmt/s", "p50 ms", "p95 ms", "cache m/r/h/de"},
	}
	stmts := e12Statements()
	for _, clients := range []int{1, 2, 4, 8, 16} {
		session, err := e12Session(sc)
		if err != nil {
			return t, err
		}
		srv := server.New(session.DB, server.Config{
			Pool:    clients,
			Queue:   clients * len(stmts),
			Backend: Backend,
			Workers: Workers,
		})
		ts := httptest.NewServer(srv)

		latencies := make([][]float64, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := ts.Client()
				for _, stmt := range stmts {
					s0 := time.Now()
					resp, err := client.Post(ts.URL+"/v1/statements", "text/plain", strings.NewReader(stmt))
					if err != nil {
						errs[c] = err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs[c] = fmt.Errorf("status %d for %s", resp.StatusCode, stmt)
						return
					}
					latencies[c] = append(latencies[c], time.Since(s0).Seconds()*1000)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(t0)
		ts.Close()
		for _, err := range errs {
			if err != nil {
				return t, err
			}
		}
		var all []float64
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Float64s(all)
		q := func(p float64) float64 { return all[min(len(all)-1, int(p*float64(len(all))))] }
		cs := srv.Executor().Cache.Stats()
		t.AddRow(fmt.Sprint(clients), fmt.Sprint(len(all)),
			fmt.Sprintf("%.2f", wall.Seconds()),
			fmt.Sprintf("%.1f", float64(len(all))/wall.Seconds()),
			ms(q(0.50)), ms(q(0.95)),
			fmt.Sprintf("%d/%d/%d/%d", cs.Misses, cs.Rethresholds, cs.Hits, cs.Deltas))
	}
	t.Notes = append(t.Notes, "one shared tarmd per row (pool = clients); each client replays the full mix, so work scales with the client count while builds are shared through the cache")
	return t, nil
}
