package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"github.com/tarm-project/tarm/internal/server"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
	"github.com/tarm-project/tarm/internal/tml"
)

// e17Statement is the standing statement under measurement.
const e17Statement = `SUBSCRIBE MINE PERIODS FROM stream AT GRANULARITY day THRESHOLD SUPPORT 0.45 CONFIDENCE 0.6 FREQUENCY 0.9`

// e17Items draws one streamed basket: a staple pair, a weekend pair
// and a mid-stream arrival, so the standing statement keeps emitting
// adds, removes and support changes as days close.
func e17Items(r *rand.Rand, day, i int) []string {
	items := []string{"bread"}
	if r.Float64() < 0.8 {
		items = append(items, "milk")
	}
	if (day%7 == 5 || day%7 == 6) && r.Float64() < 0.9 {
		items = append(items, "choc", "wine")
	}
	if day >= 6 && r.Float64() < 0.6 {
		items = append(items, "tea")
	}
	items = append(items, fmt.Sprintf("bg%d", r.Intn(50)))
	return items
}

// e17Append posts one day's batch to /v1/append and returns when the
// server has acknowledged it (WAL-durable ack semantics, in-memory
// here).
func e17Append(client *http.Client, url string, r *rand.Rand, day, txPer int) error {
	type tx struct {
		At    time.Time `json:"at"`
		Items []string  `json:"items"`
	}
	txs := make([]tx, txPer)
	for i := range txs {
		txs[i] = tx{
			At:    year0.AddDate(0, 0, day).Add(time.Duration(10+i) * time.Minute),
			Items: e17Items(r, day, i),
		}
	}
	body, err := json.Marshal(map[string]any{"table": "stream", "transactions": txs})
	if err != nil {
		return err
	}
	resp, err := client.Post(url+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("append day %d: status %d: %s", day, resp.StatusCode, b)
	}
	return nil
}

// e17Event is the slice of the events payload the experiment reads.
type e17Event struct {
	Seq int64 `json:"seq"`
	tml.SubUpdate
}

// E17ContinuousLatency measures continuous mining's delta-emission
// latency end to end over HTTP: a standing statement on tarmd, a
// client appending one day per round, and the clock from the append's
// 200 (the granule-closing write is durable) to the rule-delta event
// for that close arriving on the subscriber's long-poll. The latency
// is the refresh (cache pre-maintenance + warm re-mine) plus queue and
// transport — what a dashboard watching the stream actually waits.
func E17ContinuousLatency(seed int64) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "continuous mining: granule-close to rule-delta emission over HTTP (PERIODS, day granularity)",
		Header: []string{"tx/day", "closes", "events", "deltas", "p50 ms", "p95 ms", "max ms"},
	}
	for _, txPer := range []int{20, 50, 100} {
		srv := server.New(mustStreamDB(), server.Config{
			Backend:  Backend,
			Workers:  Workers,
			SubQueue: 256,
		})
		ts := httptest.NewServer(srv)
		client := ts.Client()

		resp, err := client.Post(ts.URL+"/v1/subscriptions", "text/plain",
			bytes.NewReader([]byte(e17Statement)))
		if err != nil {
			ts.Close()
			return t, err
		}
		var sub struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated {
			ts.Close()
			return t, fmt.Errorf("subscribe: status %d err %v", resp.StatusCode, err)
		}

		r := rand.New(rand.NewSource(seed))
		const warmDays, measured = 2, 10
		var after int64 = -1
		var lat []float64
		var events, deltas int
		for day := 0; day < warmDays+measured; day++ {
			if err := e17Append(client, ts.URL, r, day, txPer); err != nil {
				ts.Close()
				return t, err
			}
			if day < warmDays {
				// Drain warm-up events (registration snapshot, first close)
				// outside the measurement.
				after = e17Drain(client, ts.URL, sub.ID, after, nil, nil)
				continue
			}
			// The append above closed day-1: wait for its delta event.
			t0 := time.Now()
			want := timegran.GranuleOf(year0.AddDate(0, 0, day-1), timegran.Day)
			deadline := time.Now().Add(10 * time.Second)
			seen := false
			for !seen {
				if time.Now().After(deadline) {
					ts.Close()
					return t, fmt.Errorf("tx/day %d: no event for granule %d within 10s", txPer, want)
				}
				after = e17Drain(client, ts.URL, sub.ID, after, func(ev e17Event) {
					events++
					deltas += len(ev.Deltas)
					if ev.ClosedThrough >= want {
						seen = true
					}
				}, &seen)
			}
			lat = append(lat, time.Since(t0).Seconds()*1000)
		}
		ts.Close()

		sort.Float64s(lat)
		q := func(p float64) float64 { return lat[min(len(lat)-1, int(p*float64(len(lat))))] }
		t.AddRow(fmt.Sprint(txPer), fmt.Sprint(measured), fmt.Sprint(events),
			fmt.Sprint(deltas), ms(q(0.50)), ms(q(0.95)), ms(lat[len(lat)-1]))
	}
	t.Notes = append(t.Notes,
		"latency clock: append 200 (the granule-closing batch is applied) -> the close's delta event read from the long-poll",
		"includes the standing statement's cache pre-maintenance and warm re-mine, the event queue and HTTP transport")
	return t, nil
}

// e17Drain long-polls the event stream once and feeds each event to fn,
// returning the advanced cursor.
func e17Drain(client *http.Client, url, id string, after int64, fn func(e17Event), stop *bool) int64 {
	u := fmt.Sprintf("%s/v1/subscriptions/%s/events?after=%d&wait_ms=1000", url, id, after)
	resp, err := client.Get(u)
	if err != nil {
		return after
	}
	defer resp.Body.Close()
	var out struct {
		Events    []e17Event `json:"events"`
		NextAfter int64      `json:"next_after"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return after
	}
	for _, ev := range out.Events {
		if fn != nil {
			fn(ev)
		}
	}
	return out.NextAfter
}

// mustStreamDB builds the empty streaming table E17 appends into.
func mustStreamDB() *tdb.DB {
	db := tdb.NewMemDB()
	if _, err := db.CreateTxTable("stream"); err != nil {
		panic(err)
	}
	return db
}
