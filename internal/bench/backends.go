package bench

import (
	"fmt"
	"runtime"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/obs"
)

// Backend, Workers and Tracer are folded by Cfg into every experiment's
// mining config; cmd/tarmine sets them from its -backend, -workers and
// telemetry flags so the whole experiment suite can be re-run on any
// counting backend, with or without tracing.
var (
	Backend apriori.Backend
	Workers int
	Tracer  obs.Tracer
)

// E11CountingBackends is the counting-backend ablation: flat Apriori
// over Quest-class data across transaction length (T), pattern length
// (I), database size (D) and minimum support, timing the classic hash
// tree against the vertical TID-bitmap backend and its compressed
// roaring variant, reporting heap allocations. The itemsets column is
// the cross-check: all backends must find exactly as many frequent
// itemsets.
func E11CountingBackends(seed int64) (Table, error) {
	type shape struct {
		t, i float64
		d    int
	}
	shapes := []shape{
		{t: 5, i: 2, d: 5_000},
		{t: 10, i: 4, d: 10_000},
		{t: 15, i: 6, d: 10_000},
	}
	supports := []float64{0.02, 0.01, 0.005}
	backends := []apriori.Backend{apriori.BackendHashTree, apriori.BackendBitmap, apriori.BackendRoaring}

	t := Table{
		ID:     "E11",
		Title:  "counting backend ablation (flat Apriori over Quest data)",
		Header: []string{"data", "minsup", "backend", "time ms", "allocs", "itemsets"},
	}
	for _, sh := range shapes {
		q, err := gen.NewQuest(gen.QuestConfig{AvgTxLen: sh.t, AvgPatLen: sh.i}, seed)
		if err != nil {
			return t, err
		}
		src := apriori.Transactions(q.Transactions(sh.d))
		label := fmt.Sprintf("T%.0f.I%.0f.D%d", sh.t, sh.i, sh.d)
		for _, s := range supports {
			for _, b := range backends {
				var f *apriori.Frequent
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				d, err := timed(func() error {
					var err error
					f, err = apriori.Mine(src, apriori.Config{MinSupport: s, MaxK: 3, Backend: b})
					return err
				})
				runtime.ReadMemStats(&m1)
				if err != nil {
					return t, fmt.Errorf("%s minsup=%g backend=%v: %w", label, s, b, err)
				}
				t.AddRow(label, fmt.Sprintf("%g", s), b.String(), ms(d.Seconds()*1000),
					fmt.Sprint(m1.Mallocs-m0.Mallocs), fmt.Sprint(f.TotalItemsets()))
			}
		}
	}
	return t, nil
}
