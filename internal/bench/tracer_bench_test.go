package bench

import (
	"testing"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
	"github.com/tarm-project/tarm/internal/obs"
)

// BenchmarkTracerOverhead guards the acceptance bar of the telemetry
// layer: mining with a nil tracer must cost the same as mining with the
// explicit NopTracer (the Enabled() gate skips all stat assembly), and
// the difference between untraced and a live CollectTracer must stay in
// the noise — tracing happens at pass granularity, a handful of events
// per run. Workload: the E11 midpoint, Quest T10.I4.D10k at minsup 1%.
//
//	go test ./internal/bench/ -bench TracerOverhead -benchtime 3x
func BenchmarkTracerOverhead(b *testing.B) {
	q, err := gen.NewQuest(gen.QuestConfig{AvgTxLen: 10, AvgPatLen: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	src := apriori.Transactions(q.Transactions(10_000))
	mine := func(b *testing.B, tr obs.Tracer) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			f, err := apriori.Mine(src, apriori.Config{
				MinSupport: 0.01, MaxK: 3, Tracer: tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if f.TotalItemsets() == 0 {
				b.Fatal("workload degenerate: no frequent itemsets")
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { mine(b, nil) })
	b.Run("nop", func(b *testing.B) { mine(b, obs.Nop) })
	b.Run("collect", func(b *testing.B) { mine(b, obs.NewCollectTracer()) })
}
