package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/tarm-project/tarm/internal/tdb"
)

// E16Durability measures what the WAL costs and what it buys. Every arm
// appends the same precomputed batches; "none" is the non-durable
// baseline, the other three are the engine's fsync policies. Each row
// then kills the database (no checkpoint, no clean close), times the
// reopen — recovery is a full replay of the run — and finally times the
// checkpoint that truncates the log.
func E16Durability(sc StandardConfig) (Table, error) {
	scn := sc.normalise()
	// Batch sizes mirror a bulk-ish ingest client (tgen -stream posts
	// day-sized batches): big enough that the per-batch WAL commit
	// amortises, numerous enough that each arm runs long enough to
	// measure.
	const nBatches = 1200
	const txPer = 100
	r := rand.New(rand.NewSource(scn.Seed))
	batches := make([][]tdb.Tx, nBatches)
	for i := range batches {
		batches[i] = e15Batch(r, []int{r.Intn(scn.Days)}, txPer)
	}

	t := Table{
		ID:    "E16",
		Title: "durable storage engine: ingest throughput, WAL volume and recovery, " + describe(sc),
		Header: []string{"fsync", "append tx/s", "vs none", "wal MB",
			"recover ms", "replayed tx", "checkpoint ms"},
	}

	arms := []struct {
		name string
		cfg  *tdb.Durability
	}{
		{"none", nil},
		{"off", &tdb.Durability{Fsync: tdb.FsyncOff}},
		{"interval", &tdb.Durability{Fsync: tdb.FsyncInterval, SyncInterval: 50 * time.Millisecond}},
		{"always", &tdb.Durability{Fsync: tdb.FsyncAlways}},
	}

	// Each arm's ingest phase is short enough that one background stall
	// skews it, and the stalls drift over the run's lifetime — so the
	// repetitions are interleaved round-robin (every arm samples the
	// same noise windows) and each arm keeps its best repetition, the
	// one with the least unrelated interference. The last repetition's
	// database carries on into the recovery and checkpoint phases.
	const reps = 5
	type armState struct {
		open  func() (*tdb.DB, error)
		db    *tdb.DB
		txps  float64
		total int
	}
	states := make([]*armState, len(arms))
	for i := range states {
		states[i] = &armState{}
	}
	for rep := 0; rep < reps; rep++ {
		for i, a := range arms {
			st := states[i]
			dir, err := os.MkdirTemp("", "tarm-e16-")
			if err != nil {
				return t, err
			}
			defer os.RemoveAll(dir)
			cfg := a.cfg
			st.open = func() (*tdb.DB, error) {
				if cfg == nil {
					return tdb.Open(dir)
				}
				return tdb.OpenDurable(dir, *cfg)
			}
			if st.db != nil {
				if st.db.Durable() {
					st.db.Kill()
				}
				st.db = nil
			}
			st.db, err = st.open()
			if err != nil {
				return t, err
			}
			tbl, err := st.db.CreateTxTable("baskets")
			if err != nil {
				return t, err
			}
			st.total = 0
			d, err := timed(func() error {
				for _, b := range batches {
					if _, _, err := tbl.AppendBatchDurable(b); err != nil {
						return err
					}
					st.total += len(b)
				}
				return nil
			})
			if err != nil {
				return t, err
			}
			if v := float64(st.total) / d.Seconds(); v > st.txps {
				st.txps = v
			}
		}
	}

	baseline := states[0].txps
	for i, a := range arms {
		st := states[i]
		db := st.db
		walMB := float64(db.WALSize()) / (1 << 20)

		// Die and come back. The durable arms kill mid-flight and replay
		// the whole run from the log; the baseline has nothing to replay
		// and must flush first — a kill here would lose everything, which
		// is exactly the gap the WAL closes.
		if a.cfg == nil {
			if err := db.Flush(); err != nil {
				return t, err
			}
		} else {
			// Pin the kill to just after a flush: the interval policy
			// buffers in user space and may legally lose its flush
			// window, but this experiment wants recovery to replay the
			// whole run.
			if err := db.SyncWAL(); err != nil {
				return t, err
			}
			db.Kill()
		}
		var db2 *tdb.DB
		rd, err := timed(func() error {
			var oerr error
			db2, oerr = st.open()
			return oerr
		})
		if err != nil {
			return t, err
		}
		replayed := db2.Recovery().AppendedTx
		if tbl2, ok := db2.TxTable("baskets"); !ok || tbl2.Len() != st.total {
			return t, fmt.Errorf("e16 %s: recovered %v tx, appended %d", a.name, tbl2, st.total)
		}

		cd, err := timed(func() error {
			_, cerr := db2.Checkpoint()
			return cerr
		})
		if err != nil {
			return t, err
		}
		if db2.Durable() {
			db2.Kill()
		}

		t.AddRow(a.name, f(st.txps), fmt.Sprintf("%.2f", st.txps/baseline),
			fmt.Sprintf("%.2f", walMB), ms(rd.Seconds()*1000),
			fmt.Sprint(replayed), ms(cd.Seconds()*1000))
	}
	return t, nil
}
