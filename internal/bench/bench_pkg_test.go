package bench

import (
	"strconv"
	"strings"
	"testing"
)

// smallCfg keeps tests fast: a quarter-year at 30 tx/day.
func smallCfg() StandardConfig {
	return StandardConfig{TxPerDay: 30, Days: 168, Seed: 77}
}

func TestStandardDataset(t *testing.T) {
	tbl, truth, err := StandardDataset(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() < 168*15 {
		t.Errorf("dataset suspiciously small: %d transactions", tbl.Len())
	}
	if len(truth) != 4 {
		t.Fatalf("ground truth = %d rules", len(truth))
	}
	for _, g := range truth {
		ante, cons := g.TruthRule()
		if !g.MatchesRule(ante, cons) || !g.MatchesRule(cons, ante) {
			t.Errorf("MatchesRule fails on its own truth %s", g.Name)
		}
		if g.MatchesRule(ante, ante) {
			t.Errorf("MatchesRule matches a wrong pair for %s", g.Name)
		}
	}
}

func TestE1RecoversPlantedRules(t *testing.T) {
	table, err := E1MissedRules(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("E1 rows = %d", len(table.Rows))
	}
	// Traditional mining must miss all planted rules; every temporal
	// task must recover its own.
	byMiner := map[string][]string{}
	for _, row := range table.Rows {
		byMiner[row[0]] = row
	}
	if got := byMiner["traditional Apriori"][2]; got != "0/4" {
		t.Errorf("traditional recovered %s, want 0/4", got)
	}
	if got := byMiner["Task I (valid periods)"][2]; got != "2/2" {
		t.Errorf("Task I recovered %s, want 2/2 (summer, promo)", got)
	}
	if got := byMiner["Task II (cycles)"][2]; got != "2/2" {
		t.Errorf("Task II cycles recovered %s, want 2/2 (weekend, weekly)", got)
	}
	if got := byMiner["Task II (calendars)"][2]; got != "2/2" {
		t.Errorf("Task II calendars recovered %s, want 2/2", got)
	}
	if got := byMiner["Task III (during summer)"][2]; got != "1/1" {
		t.Errorf("Task III recovered %s, want 1/1", got)
	}
	out := table.String()
	if !strings.Contains(out, "E1") || !strings.Contains(out, "miner") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestE5RecoveryScoresHigh(t *testing.T) {
	table, err := E5ValidPeriodRecovery(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, row := range table.Rows {
		if row[4] == "yes" {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("interval recovery hits = %d/6, want ≥ 5\n%s", hits, table)
	}
}

func TestE6RecoversAllCyclesAtFullRange(t *testing.T) {
	table, err := E6CycleRecovery(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := table.Rows[len(table.Rows)-1]
	if last[2] != "4/4" {
		t.Errorf("maxlen 31 recovery = %s, want 4/4\n%s", last[2], table)
	}
	first := table.Rows[0]
	if first[2] != "2/2" {
		t.Errorf("maxlen 7 recovery = %s, want 2/2\n%s", first[2], table)
	}
}

func TestE7AblationSavesWorkAndAgrees(t *testing.T) {
	table, err := E7CycleAblation(30, 7, []float64{0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[6] != "true" {
			t.Errorf("miners disagree at minsup %s\n%s", row[0], table)
		}
		if !strings.HasSuffix(row[3], "%") {
			t.Errorf("work saved cell = %q", row[3])
		}
	}
}

func TestE8E9E10Run(t *testing.T) {
	sc := smallCfg()
	if _, err := E8CalendarSelectivity(sc); err != nil {
		t.Errorf("E8: %v", err)
	}
	if _, err := E9TML(StandardConfig{TxPerDay: 30, Days: 168, Seed: 3}); err != nil {
		t.Errorf("E9: %v", err)
	}
	table, err := E10FrequencySweep(40, 7)
	if err != nil {
		t.Fatalf("E10: %v", err)
	}
	// The sweep must be monotone: lowering the threshold can only add
	// cyclic rules.
	prev := -1
	for _, row := range table.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad count cell %q", row[1])
		}
		if prev >= 0 && n < prev {
			t.Errorf("rule count decreased as threshold fell:\n%s", table)
		}
		prev = n
	}
}

func TestE2E3E4SmokeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps skipped in -short mode")
	}
	sc := StandardConfig{TxPerDay: 30, Days: 84, Seed: 3}
	if _, err := E2SupportSweep(sc, []float64{0.25, 0.15}); err != nil {
		t.Errorf("E2: %v", err)
	}
	if _, err := E3ScaleUp([]int{28, 56}, 3); err != nil {
		t.Errorf("E3: %v", err)
	}
	if _, err := E4TransactionSize([]float64{5, 10}, 3); err != nil {
		t.Errorf("E4: %v", err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if Experiments[id] == nil {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}
