package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	cases := []struct {
		in   []Item
		want Set
	}{
		{nil, nil},
		{[]Item{3}, Set{3}},
		{[]Item{3, 1, 2}, Set{1, 2, 3}},
		{[]Item{5, 5, 5}, Set{5}},
		{[]Item{9, 1, 9, 1, 4}, Set{1, 4, 9}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.Valid() {
			t.Errorf("New(%v) produced invalid set %v", c.in, got)
		}
	}
}

func TestFromSortedPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted accepted a non-increasing slice")
		}
	}()
	FromSorted([]Item{1, 1})
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, x := range []Item{2, 4, 6, 8} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{0, 1, 3, 5, 7, 9} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	if Set(nil).Contains(1) {
		t.Error("empty set contains 1")
	}
}

func TestContainsAll(t *testing.T) {
	s := New(1, 3, 5, 7, 9)
	if !s.ContainsAll(nil) {
		t.Error("every set contains the empty set")
	}
	if !s.ContainsAll(New(3, 9)) {
		t.Error("ContainsAll({3,9}) = false")
	}
	if s.ContainsAll(New(3, 4)) {
		t.Error("ContainsAll({3,4}) = true")
	}
	if s.ContainsAll(New(1, 3, 5, 7, 9, 11)) {
		t.Error("subset longer than set accepted")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(3, 4, 5, 6)
	if got, want := a.Union(b), New(1, 2, 3, 4, 5, 6); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New(3, 4); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Without(b), New(1, 2); !got.Equal(want) {
		t.Errorf("Without = %v, want %v", got, want)
	}
	if got, want := a.WithoutItem(2), New(1, 3, 4); !got.Equal(want) {
		t.Errorf("WithoutItem(2) = %v, want %v", got, want)
	}
	if got := a.WithoutItem(99); !got.Equal(a) {
		t.Errorf("WithoutItem(absent) = %v, want %v", got, a)
	}
}

func TestCompareOrdersByLengthThenLex(t *testing.T) {
	ordered := []Set{nil, New(1), New(2), New(1, 2), New(1, 3), New(2, 3), New(1, 2, 3)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestJoinPrefix(t *testing.T) {
	s, ok := New(1, 2, 3).JoinPrefix(New(1, 2, 5))
	if !ok || !s.Equal(New(1, 2, 3, 5)) {
		t.Errorf("JoinPrefix = %v,%v; want {1,2,3,5},true", s, ok)
	}
	if _, ok := New(1, 2, 5).JoinPrefix(New(1, 2, 3)); ok {
		t.Error("JoinPrefix accepted reversed order")
	}
	if _, ok := New(1, 2, 3).JoinPrefix(New(1, 4, 5)); ok {
		t.Error("JoinPrefix accepted mismatched prefix")
	}
	if _, ok := New(1).JoinPrefix(New(2)); !ok {
		t.Error("JoinPrefix rejected valid 1-itemset join")
	}
	if _, ok := Set(nil).JoinPrefix(nil); ok {
		t.Error("JoinPrefix accepted empty sets")
	}
}

func TestEachSubsetK1(t *testing.T) {
	s := New(1, 2, 3)
	var subs []Set
	s.EachSubsetK1(func(sub Set) bool {
		subs = append(subs, sub.Clone())
		return true
	})
	want := []Set{New(2, 3), New(1, 3), New(1, 2)}
	if !reflect.DeepEqual(subs, want) {
		t.Errorf("EachSubsetK1 = %v, want %v", subs, want)
	}

	// Early stop after the first subset.
	n := 0
	s.EachSubsetK1(func(Set) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d subsets, want 1", n)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Set{nil, New(0), New(1, 2, 3), New(0, 1<<31-1)}
	for _, s := range sets {
		got, err := ParseKey(s.Key())
		if err != nil {
			t.Fatalf("ParseKey(Key(%v)): %v", s, err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip of %v = %v", s, got)
		}
	}
	if _, err := ParseKey("abc"); err == nil {
		t.Error("ParseKey accepted a length not divisible by 4")
	}
	// {2, 1} encoded directly is non-canonical and must be rejected.
	bad := Set{2, 1}
	raw := make([]byte, 8)
	raw[0] = 2
	raw[4] = 1
	_ = bad
	if _, err := ParseKey(string(raw)); err == nil {
		t.Error("ParseKey accepted a non-canonical encoding")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1).String(); got != "{1, 3}" {
		t.Errorf("String = %q, want %q", got, "{1, 3}")
	}
	if got := Set(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSortSets(t *testing.T) {
	sets := []Set{New(2, 3), New(1), New(1, 2, 3), New(1, 2), nil}
	SortSets(sets)
	want := []Set{nil, New(1), New(1, 2), New(1, 3).Without(New(3)).Union(New(2)), New(1, 2, 3)}
	// want[3] is just {1,2} ∪ {2} = {1,2}; rebuild expectation simply:
	want = []Set{nil, New(1), New(1, 2), New(2, 3), New(1, 2, 3)}
	for i := range sets {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("SortSets[%d] = %v, want %v", i, sets[i], want[i])
		}
	}
}

// randomSet produces small random sets for property tests.
func randomSet(r *rand.Rand, maxLen, universe int) Set {
	n := r.Intn(maxLen + 1)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(universe))
	}
	return New(items...)
}

func TestQuickUnionIntersectLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomSet(r, 12, 30))
			vals[1] = reflect.ValueOf(randomSet(r, 12, 30))
		},
	}
	law := func(a, b Set) bool {
		u := a.Union(b)
		i := a.Intersect(b)
		if !u.Valid() || !i.Valid() {
			return false
		}
		// |A ∪ B| + |A ∩ B| = |A| + |B|
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		// Commutativity and containment.
		if !u.Equal(b.Union(a)) || !i.Equal(b.Intersect(a)) {
			return false
		}
		if !u.ContainsAll(a) || !u.ContainsAll(b) {
			return false
		}
		return a.ContainsAll(i) && b.ContainsAll(i)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickWithoutPartition(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomSet(r, 12, 30))
			vals[1] = reflect.ValueOf(randomSet(r, 12, 30))
		},
	}
	law := func(a, b Set) bool {
		// (A \ B) ∪ (A ∩ B) == A, and the two parts are disjoint.
		diff := a.Without(b)
		inter := a.Intersect(b)
		if diff.Intersect(inter).Len() != 0 {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomSet(r, 10, 40))
			vals[1] = reflect.ValueOf(randomSet(r, 10, 40))
		},
	}
	law := func(a, b Set) bool {
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinPrefixProducesValidCandidate(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			// Build two sets sharing a k-1 prefix half of the time.
			base := randomSet(r, 6, 20)
			vals[0] = reflect.ValueOf(base)
			if len(base) > 0 && r.Intn(2) == 0 {
				alt := base.Clone()
				alt[len(alt)-1] = alt[len(alt)-1] + Item(1+r.Intn(5))
				vals[1] = reflect.ValueOf(alt)
			} else {
				vals[1] = reflect.ValueOf(randomSet(r, 6, 20))
			}
		},
	}
	law := func(a, b Set) bool {
		c, ok := a.JoinPrefix(b)
		if !ok {
			return true
		}
		return c.Valid() && c.Len() == a.Len()+1 && c.ContainsAll(a) && c.ContainsAll(b)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	bread := d.Intern("bread")
	milk := d.Intern("milk")
	if again := d.Intern("bread"); again != bread {
		t.Errorf("re-interning changed id: %d vs %d", again, bread)
	}
	if bread == milk {
		t.Error("distinct names share an id")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if id, ok := d.Lookup("milk"); !ok || id != milk {
		t.Errorf("Lookup(milk) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("butter"); ok {
		t.Error("Lookup found an uninterned name")
	}
	if n := d.MustName(bread); n != "bread" {
		t.Errorf("MustName = %q", n)
	}
	if _, err := d.Name(Item(99)); err == nil {
		t.Error("Name accepted an unknown id")
	}
	s := d.InternAll("milk", "butter", "bread")
	if s.Len() != 3 {
		t.Errorf("InternAll produced %v", s)
	}
	if got := d.Names(s); got == "" || got[0] != '{' {
		t.Errorf("Names = %q", got)
	}
	names := d.SortedNames(true)
	if len(names) != 3 || names[0] != "bread" {
		t.Errorf("SortedNames(alpha) = %v", names)
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	done := make(chan Item)
	for g := 0; g < 8; g++ {
		go func() {
			var last Item
			for i := 0; i < 200; i++ {
				last = d.Intern(string(rune('a' + i%26)))
			}
			done <- last
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 26 {
		t.Errorf("concurrent interning produced %d ids, want 26", d.Len())
	}
}

func TestHashStability(t *testing.T) {
	a := New(1, 2, 3)
	if a.Hash() != New(3, 2, 1).Hash() {
		t.Error("hash depends on construction order")
	}
	if a.Hash() == New(1, 2, 4).Hash() {
		t.Error("trivial hash collision between {1,2,3} and {1,2,4}")
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	sets := []Set{nil, New(0), New(7), New(1, 2, 3), New(1<<24 + 5, 1<<30)}
	var buf [64]byte
	for _, s := range sets {
		if got := string(s.AppendKey(buf[:0])); got != s.Key() {
			t.Errorf("AppendKey(%v) = %q, want %q", s, got, s.Key())
		}
	}
	// Appending extends dst rather than overwriting it.
	pre := []byte("x")
	out := New(1, 2).AppendKey(pre)
	if string(out[:1]) != "x" || string(out[1:]) != New(1, 2).Key() {
		t.Errorf("AppendKey did not extend dst: %q", out)
	}
	// Distinct sets produce distinct keys.
	if New(1, 2).Key() == New(1, 3).Key() {
		t.Error("distinct sets share a key")
	}
}
