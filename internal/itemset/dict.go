package itemset

import (
	"fmt"
	"sort"
	"sync"
)

// Dict is a bidirectional mapping between external item names (SKUs,
// page URLs, …) and the dense Item identifiers used by the miners.
// Identifiers are assigned in first-seen order starting at 0.
//
// Dict is safe for concurrent use; lookups take a read lock, interning
// takes a write lock only when the name is new.
type Dict struct {
	mu    sync.RWMutex
	byID  []string
	byKey map[string]Item
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]Item)}
}

// Intern returns the identifier for name, assigning a fresh one if the
// name has not been seen before.
func (d *Dict) Intern(name string) Item {
	d.mu.RLock()
	id, ok := d.byKey[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[name]; ok {
		return id
	}
	id = Item(len(d.byID))
	d.byID = append(d.byID, name)
	d.byKey[name] = id
	return id
}

// InternAll interns every name and returns the resulting Set.
func (d *Dict) InternAll(names ...string) Set {
	items := make([]Item, len(names))
	for i, n := range names {
		items[i] = d.Intern(n)
	}
	return New(items...)
}

// Lookup returns the identifier for name without interning.
func (d *Dict) Lookup(name string) (Item, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[name]
	return id, ok
}

// Name returns the external name for id, or an error if id was never
// assigned.
func (d *Dict) Name(id Item) (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.byID) {
		return "", fmt.Errorf("itemset: unknown item id %d (dict has %d items)", id, len(d.byID))
	}
	return d.byID[id], nil
}

// MustName is Name for ids known to be valid; it panics otherwise.
func (d *Dict) MustName(id Item) string {
	n, err := d.Name(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Len returns the number of interned items.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Names renders a set using the dictionary, e.g. "{bread, milk}".
// Unknown identifiers render as "#<id>".
func (d *Dict) Names(s Set) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := "{"
	for i, x := range s {
		if i > 0 {
			out += ", "
		}
		if int(x) < len(d.byID) {
			out += d.byID[x]
		} else {
			out += fmt.Sprintf("#%d", x)
		}
	}
	return out + "}"
}

// SortedNames returns all interned names in identifier order (useful
// for deterministic catalog dumps) or alphabetically when alpha is set.
func (d *Dict) SortedNames(alpha bool) []string {
	d.mu.RLock()
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	d.mu.RUnlock()
	if alpha {
		sort.Strings(out)
	}
	return out
}
