// Package itemset provides the canonical itemset representation shared
// by every miner in the repository.
//
// An itemset is a strictly increasing slice of item identifiers. Keeping
// the representation sorted and duplicate-free makes subset tests,
// prefix joins (the heart of Apriori candidate generation) and map keys
// cheap, which is where association-rule miners spend almost all of
// their time.
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Item identifies a single item. Identifiers are dense small integers
// assigned by a Dict; 32 bits is the conventional size used by the
// Quest benchmark generators and keeps per-candidate memory small.
type Item uint32

// Set is a sorted, duplicate-free slice of items. The zero value is the
// empty itemset and is ready to use. Sets are treated as immutable by
// every function in this package: operations return fresh slices and
// never alias their inputs unless documented otherwise.
type Set []Item

// New builds a Set from items in any order, dropping duplicates.
func New(items ...Item) Set {
	if len(items) == 0 {
		return nil
	}
	s := make(Set, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Compact duplicates in place.
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// FromSorted wraps a slice that is already strictly increasing. It
// panics if the invariant does not hold; callers use it on slices they
// constructed in order, where a silent repair would hide a bug.
func FromSorted(items []Item) Set {
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			panic(fmt.Sprintf("itemset: FromSorted input not strictly increasing at %d: %v", i, items))
		}
	}
	return Set(items)
}

// Valid reports whether s satisfies the sorted, duplicate-free
// invariant. It is used by property tests and by code that accepts
// itemsets from untrusted encodings.
func (s Set) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Len returns the number of items; a k-itemset has Len k.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no items.
func (s Set) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Contains reports whether x is a member of s, by binary search.
func (s Set) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// ContainsAll reports whether sub ⊆ s. Both sides are sorted, so a
// single merge pass suffices; this is the hot path of naive support
// counting and of rule post-processing.
func (s Set) ContainsAll(sub Set) bool {
	if len(sub) > len(s) {
		return false
	}
	i := 0
	for _, x := range sub {
		for i < len(s) && s[i] < x {
			i++
		}
		if i >= len(s) || s[i] != x {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets first by length, then lexicographically.
// This is the canonical output order used by the miners so that results
// are deterministic and diffable.
func (s Set) Compare(t Set) int {
	if len(s) != len(t) {
		if len(s) < len(t) {
			return -1
		}
		return 1
	}
	for i := range s {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Union returns s ∪ t as a new Set.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t as a new Set.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Without returns s \ t as a new Set.
func (s Set) Without(t Set) Set {
	var out Set
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// WithoutItem returns s \ {x} as a new Set.
func (s Set) WithoutItem(x Item) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i >= len(s) || s[i] != x {
		return s.Clone()
	}
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// JoinPrefix implements the Apriori candidate join: if s and t are
// k-itemsets sharing their first k-1 items and s[k-1] < t[k-1], it
// returns the (k+1)-itemset s ∪ t and true; otherwise nil and false.
func (s Set) JoinPrefix(t Set) (Set, bool) {
	k := len(s)
	if k == 0 || len(t) != k {
		return nil, false
	}
	for i := 0; i < k-1; i++ {
		if s[i] != t[i] {
			return nil, false
		}
	}
	if s[k-1] >= t[k-1] {
		return nil, false
	}
	out := make(Set, k+1)
	copy(out, s)
	out[k] = t[k-1]
	return out, true
}

// EachSubsetK1 calls fn for each (k-1)-subset of the k-itemset s,
// reusing a single scratch buffer. fn must not retain the slice. It is
// the prune step of candidate generation and the antecedent enumerator
// of rule generation for single-item consequents.
func (s Set) EachSubsetK1(fn func(sub Set) bool) {
	if len(s) == 0 {
		return
	}
	scratch := make(Set, len(s)-1)
	for drop := range s {
		copy(scratch, s[:drop])
		copy(scratch[drop:], s[drop+1:])
		if !fn(scratch) {
			return
		}
	}
}

// Key returns a compact string key usable in maps. Items are encoded
// little-endian in 4 bytes each; the encoding is injective, so two sets
// share a key iff they are equal.
func (s Set) Key() string {
	return string(s.AppendKey(make([]byte, 0, 4*len(s))))
}

// AppendKey appends the Key encoding of s to dst and returns the
// extended slice. Hot paths that only *look up* a set in a
// string-keyed map use it with a reused (or stack) buffer —
// m[string(s.AppendKey(buf[:0]))] — which the compiler compiles to an
// allocation-free map access, unlike m[s.Key()] which allocates the
// key string on every call.
func (s Set) AppendKey(dst []byte) []byte {
	for _, x := range s {
		dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return dst
}

// ParseKey inverts Key. It returns an error if the bytes are not a
// valid encoding of a sorted set.
func ParseKey(key string) (Set, error) {
	if len(key)%4 != 0 {
		return nil, fmt.Errorf("itemset: key length %d not a multiple of 4", len(key))
	}
	s := make(Set, len(key)/4)
	for i := range s {
		b := key[4*i : 4*i+4]
		s[i] = Item(b[0]) | Item(b[1])<<8 | Item(b[2])<<16 | Item(b[3])<<24
	}
	if !s.Valid() {
		return nil, fmt.Errorf("itemset: key decodes to non-canonical set %v", s)
	}
	return s, nil
}

// Hash returns a 64-bit FNV-1a hash of the set, suitable for bucketing.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range s {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(x >> shift))
			h *= prime64
		}
	}
	return h
}

// String renders the set as "{1, 5, 9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// SortSets orders a slice of sets by (length, lexicographic), the
// canonical result order.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) < 0 })
}
