package apriori_test

// Cross-backend telemetry equivalence: the MineStats a CollectTracer
// gathers must satisfy the pass invariants on every backend and worker
// count, and the per-level numbers must be identical across backends —
// the counting strategy may change how supports are computed, never
// how many candidates exist or survive.

import (
	"fmt"
	"testing"

	. "github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
)

// checkStatsInvariants asserts the structural invariants of one run's
// collected stats against its mining result.
func checkStatsInvariants(t *testing.T, label string, st *obs.MineStats, res *Frequent) {
	t.Helper()
	if len(st.Levels) == 0 {
		t.Fatalf("%s: no passes collected", label)
	}
	for _, l := range st.Levels {
		if l.Pruned+l.Counted != l.Generated {
			t.Errorf("%s: L%d pruned %d + counted %d != generated %d",
				label, l.Level, l.Pruned, l.Counted, l.Generated)
		}
		if l.Frequent > l.Counted {
			t.Errorf("%s: L%d frequent %d > counted %d", label, l.Level, l.Frequent, l.Counted)
		}
		if l.Level < len(res.ByK) && l.Frequent != len(res.ByK[l.Level]) {
			t.Errorf("%s: L%d stats say %d frequent, result has %d",
				label, l.Level, l.Frequent, len(res.ByK[l.Level]))
		}
		if l.Counted > 0 && l.Rows != int64(res.N) {
			t.Errorf("%s: L%d rows = %d, want %d", label, l.Level, l.Rows, res.N)
		}
	}
	if st.Counters[obs.MetricItemsetsFrequent] != int64(res.TotalItemsets()) {
		t.Errorf("%s: itemsets_frequent counter = %d, result has %d",
			label, st.Counters[obs.MetricItemsetsFrequent], res.TotalItemsets())
	}
}

func TestMineStatsInvariantsAcrossBackends(t *testing.T) {
	src := questSource(t, 1500, 3)
	type run struct {
		label string
		stats *obs.MineStats
	}
	var runs []run
	for _, backend := range []Backend{BackendHashTree, BackendBitmap, BackendRoaring} {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("%v/workers=%d", backend, workers)
			collect := obs.NewCollectTracer()
			res, err := Mine(src, Config{
				MinSupport: 0.01, MaxK: 3,
				Backend: backend, Workers: workers, Tracer: collect,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			st := collect.Stats()
			checkStatsInvariants(t, label, st, res)
			if st.Backend != backend.String() {
				t.Errorf("%s: stats backend = %q", label, st.Backend)
			}
			runs = append(runs, run{label: label, stats: st})
		}
	}
	// Candidate/prune/frequent counts are backend-independent.
	want := runs[0].stats
	for _, r := range runs[1:] {
		if len(r.stats.Levels) != len(want.Levels) {
			t.Fatalf("%s: %d passes, want %d", r.label, len(r.stats.Levels), len(want.Levels))
		}
		for i, l := range r.stats.Levels {
			w := want.Levels[i]
			if l.Level != w.Level || l.Generated != w.Generated ||
				l.Pruned != w.Pruned || l.Counted != w.Counted || l.Frequent != w.Frequent {
				t.Errorf("%s: L%d = {gen %d pruned %d counted %d freq %d}, want {gen %d pruned %d counted %d freq %d}",
					r.label, l.Level, l.Generated, l.Pruned, l.Counted, l.Frequent,
					w.Generated, w.Pruned, w.Counted, w.Frequent)
			}
		}
	}
}
