package apriori

import (
	"context"
	"fmt"
	"sort"

	"github.com/tarm-project/tarm/internal/itemset"
)

// Rule is an association rule X ⇒ Y with its measures over the mined
// transaction set.
type Rule struct {
	Antecedent itemset.Set // X
	Consequent itemset.Set // Y, disjoint from X
	Count      int         // absolute support count of X ∪ Y
	Support    float64     // Count / N
	Confidence float64     // supp(X ∪ Y) / supp(X)
	Lift       float64     // Confidence / supp(Y); >1 means positive correlation
}

// String renders the rule with item identifiers, e.g.
// "{1, 2} => {5} (supp 0.050, conf 0.90)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (supp %.3f, conf %.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Key returns an injective map key for the rule (antecedent and
// consequent item encodings separated by a marker that cannot begin an
// item encoding mid-sequence because lengths are fixed).
func (r Rule) Key() string {
	return r.Antecedent.Key() + "=>" + r.Consequent.Key()
}

// Compare orders rules canonically: by antecedent, then consequent.
func (r Rule) Compare(o Rule) int {
	if c := r.Antecedent.Compare(o.Antecedent); c != 0 {
		return c
	}
	return r.Consequent.Compare(o.Consequent)
}

// RuleConfig tunes rule generation.
type RuleConfig struct {
	// MinConfidence in [0,1]; rules below it are dropped.
	MinConfidence float64
	// MaxConsequent bounds |Y|; 0 means single-item consequents only,
	// matching the presentation convention of the paper's companion
	// work; use a negative value for unbounded consequents.
	MaxConsequent int
}

// GenerateRules derives all rules meeting cfg from the frequent
// itemsets. For every frequent itemset f with |f| ≥ 2 it emits the
// splits f = X ∪ Y whose confidence passes the threshold. Results are
// in canonical order.
func GenerateRules(f *Frequent, cfg RuleConfig) ([]Rule, error) {
	if cfg.MinConfidence < 0 || cfg.MinConfidence > 1 {
		return nil, fmt.Errorf("apriori: MinConfidence %v outside [0,1]", cfg.MinConfidence)
	}
	maxCons := cfg.MaxConsequent
	if maxCons == 0 {
		maxCons = 1
	}
	var rules []Rule
	for k := 2; k < len(f.ByK); k++ {
		for _, ic := range f.ByK[k] {
			rules = appendRulesFor(rules, f, ic, maxCons, cfg.MinConfidence)
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Compare(rules[j]) < 0 })
	return rules, nil
}

// appendRulesFor enumerates consequents of ic.Set up to size maxCons
// (negative: up to |f|-1). It uses the ap-genrules observation to cut
// the lattice walk: if consequent Y fails the confidence test then
// every superset Y' ⊃ Y fails too, because f\Y' ⊆ f\Y implies
// supp(f\Y') ≥ supp(f\Y) and hence conf(f\Y' ⇒ Y') ≤ conf(f\Y ⇒ Y).
func appendRulesFor(rules []Rule, f *Frequent, ic ItemsetCount, maxCons int, minConf float64) []Rule {
	full := ic.Set
	limit := maxCons
	if limit < 0 || limit > full.Len()-1 {
		limit = full.Len() - 1
	}

	// Level-wise over consequent size, seeded with single items.
	var current []itemset.Set
	for _, x := range full {
		current = append(current, itemset.Set{x})
	}
	for size := 1; size <= limit && len(current) > 0; size++ {
		var surviving []itemset.Set
		for _, cons := range current {
			ante := full.Without(cons)
			anteCount := f.Support(ante)
			if anteCount == 0 {
				continue // cannot happen for frequent f, defensive
			}
			conf := float64(ic.Count) / float64(anteCount)
			if conf+1e-12 < minConf {
				continue
			}
			surviving = append(surviving, cons)
			consFrac := f.SupportFrac(cons)
			lift := 0.0
			if consFrac > 0 {
				lift = conf / consFrac
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: cons,
				Count:      ic.Count,
				Support:    float64(ic.Count) / float64(f.N),
				Confidence: conf,
				Lift:       lift,
			})
		}
		if size == limit {
			break
		}
		// Join surviving consequents to the next size, Apriori-style.
		next := joinConsequents(surviving)
		current = next
	}
	return rules
}

// joinConsequents performs the prefix join over surviving consequents.
func joinConsequents(level []itemset.Set) []itemset.Set {
	itemset.SortSets(level)
	var out []itemset.Set
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			c, ok := level[i].JoinPrefix(level[j])
			if !ok {
				break
			}
			out = append(out, c)
		}
	}
	return out
}

// MineRules is the one-call convenience: frequent itemsets plus rules.
func MineRules(src Source, cfg Config, rcfg RuleConfig) (*Frequent, []Rule, error) {
	return MineRulesContext(context.Background(), src, cfg, rcfg)
}

// MineRulesContext is MineRules under a context: the level-wise mining
// passes observe cancellation, and rule generation (cheap relative to
// counting) is entered only if the context is still live.
func MineRulesContext(ctx context.Context, src Source, cfg Config, rcfg RuleConfig) (*Frequent, []Rule, error) {
	f, err := MineContext(ctx, src, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rules, err := GenerateRules(f, rcfg)
	if err != nil {
		return nil, nil, err
	}
	return f, rules, nil
}
