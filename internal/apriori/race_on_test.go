//go:build race

package apriori

// raceEnabled reports whether the race detector is active. The
// zero-alloc assertions skip under it: the race runtime instruments
// allocations and sync.Pool intentionally drops Puts at random to
// surface misuse, so steady-state alloc counts are nondeterministic.
const raceEnabled = true
