package apriori_test

// The cross-backend equivalence property test lives in an external
// test package: it draws its workloads from internal/gen, which
// depends on apriori through the transaction database.

import (
	"fmt"
	"testing"

	. "github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/gen"
)

// questSource draws a deterministic Quest workload for property tests.
func questSource(t testing.TB, n int, seed int64) Transactions {
	t.Helper()
	q, err := gen.NewQuest(gen.QuestConfig{NItems: 200, NPatterns: 50}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Transactions(q.Transactions(n))
}

// sameFrequent asserts two mining results agree exactly: same levels,
// same sets, same counts.
func sameFrequent(t *testing.T, label string, want, got *Frequent) {
	t.Helper()
	if got.N != want.N || got.MinCount != want.MinCount {
		t.Fatalf("%s: N/MinCount = %d/%d, want %d/%d", label, got.N, got.MinCount, want.N, want.MinCount)
	}
	if len(got.ByK) != len(want.ByK) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.ByK)-1, len(want.ByK)-1)
	}
	for k := 1; k < len(want.ByK); k++ {
		if len(got.ByK[k]) != len(want.ByK[k]) {
			t.Fatalf("%s: level %d has %d itemsets, want %d", label, k, len(got.ByK[k]), len(want.ByK[k]))
		}
		for i, w := range want.ByK[k] {
			g := got.ByK[k][i]
			if !g.Set.Equal(w.Set) || g.Count != w.Count {
				t.Fatalf("%s: level %d item %d = %v(%d), want %v(%d)", label, k, i, g.Set, g.Count, w.Set, w.Count)
			}
		}
	}
}

// TestBackendEquivalence is the cross-backend property test: on random
// generated data every backend must produce the identical Frequent
// result across a grid of supports and MaxK, including the bitmap
// backend under a parallel worker pool.
func TestBackendEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		src := questSource(t, 1200, seed)
		for _, minsup := range []float64{0.05, 0.02, 0.01} {
			for _, maxK := range []int{0, 2, 3} {
				base := Config{MinSupport: minsup, MaxK: maxK}
				cfgN := base
				cfgN.Backend = BackendNaive
				want, err := Mine(src, cfgN)
				if err != nil {
					t.Fatal(err)
				}
				variants := []Config{}
				for _, b := range []Backend{BackendAuto, BackendHashTree, BackendBitmap, BackendRoaring} {
					c := base
					c.Backend = b
					variants = append(variants, c)
				}
				for _, b := range []Backend{BackendBitmap, BackendRoaring} {
					par := base
					par.Backend = b
					par.Workers = 4
					variants = append(variants, par)
				}
				for _, cfg := range variants {
					got, err := Mine(src, cfg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("seed=%d minsup=%g maxK=%d backend=%v workers=%d",
						seed, minsup, maxK, cfg.Backend, cfg.Workers)
					sameFrequent(t, label, want, got)
				}
			}
		}
	}
}
