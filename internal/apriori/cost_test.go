package apriori

// Cost-model tests: the model's job is ranking, not absolute accuracy,
// so the assertions pin the picks on archetypal table shapes and the
// structural invariants (bucketing, monotonicity, guard rails) rather
// than exact word-op figures.

import "testing"

func TestDensityBucket(t *testing.T) {
	cases := []struct {
		count, n, want int
	}{
		{100, 100, 0},  // density 1 → bucket 0
		{60, 100, 0},   // > 1/2
		{50, 100, 1},   // exactly 1/2 is the top of (1/4, 1/2]
		{26, 100, 1},   // (1/4, 1/2]
		{13, 100, 2},   // (1/8, 1/4]
		{1, 1 << 20, densityBuckets - 1}, // clamped to last bucket
		{0, 100, densityBuckets - 1},     // degenerate
		{5, 0, densityBuckets - 1},       // degenerate
		{200, 100, 0},                    // count clamped to n
	}
	for _, c := range cases {
		if got := densityBucket(c.count, c.n); got != c.want {
			t.Errorf("densityBucket(%d, %d) = %d, want %d", c.count, c.n, got, c.want)
		}
	}
}

func TestCountStatsAddItem(t *testing.T) {
	s := CountStats{N: 1000}
	s.AddItem(600) // bucket 0
	s.AddItem(300) // bucket 1
	s.AddItem(2)   // deep bucket
	if s.Items != 3 || s.Occurrences != 902 {
		t.Fatalf("Items=%d Occurrences=%d, want 3, 902", s.Items, s.Occurrences)
	}
	if s.DensityHist[0] != 1 || s.DensityHist[1] != 1 {
		t.Fatalf("histogram = %v, want one item in each of buckets 0 and 1", s.DensityHist)
	}
	sum := 0
	for _, c := range s.DensityHist {
		sum += c
	}
	if sum != s.Items {
		t.Fatalf("histogram sums to %d, want Items=%d", sum, s.Items)
	}
}

// denseStats and sparseStats build archetypal shapes: many transactions
// with items either near density 1/4 (dense) or near 1/4096 (sparse).
func denseStats(n, items int) CountStats {
	s := CountStats{N: n, Granules: 1}
	for i := 0; i < items; i++ {
		s.AddItem(n / 4)
	}
	return s
}

func sparseStats(n, items int) CountStats {
	s := CountStats{N: n, Granules: 1}
	for i := 0; i < items; i++ {
		s.AddItem(n / 4096)
	}
	return s
}

func TestChooseBackendDense(t *testing.T) {
	got, costs := ChooseBackend(denseStats(1<<17, 64))
	if got != BackendBitmap {
		t.Errorf("dense table chose %v, want bitmap (costs %v)", got, costs)
	}
}

func TestChooseBackendSparse(t *testing.T) {
	got, costs := ChooseBackend(sparseStats(1<<20, 256))
	if got != BackendRoaring {
		t.Errorf("sparse table chose %v, want roaring (costs %v)", got, costs)
	}
}

func TestChooseBackendGuards(t *testing.T) {
	// Tiny inputs and empty item sets short-circuit to the hash tree.
	if got, _ := ChooseBackend(CountStats{N: 10}); got != BackendHashTree {
		t.Errorf("tiny table chose %v, want hashtree", got)
	}
	if got, _ := ChooseBackend(CountStats{N: 1 << 20}); got != BackendHashTree {
		t.Errorf("empty item set chose %v, want hashtree", got)
	}
	// naive is never an auto pick, whatever the shape.
	for _, s := range []CountStats{denseStats(1<<16, 8), sparseStats(1<<16, 8)} {
		if got, _ := ChooseBackend(s); got == BackendNaive {
			t.Errorf("auto picked naive for %+v", s)
		}
	}
}

func TestPredictCostsCoverAllBackends(t *testing.T) {
	pred := Predict(denseStats(1<<16, 32))
	seen := map[Backend]bool{}
	for _, c := range pred.Costs {
		if c.Cost < 0 {
			t.Errorf("negative cost for %v: %g", c.Backend, c.Cost)
		}
		seen[c.Backend] = true
	}
	for _, b := range []Backend{BackendNaive, BackendHashTree, BackendBitmap, BackendRoaring} {
		if !seen[b] {
			t.Errorf("no predicted cost for %v", b)
		}
		if b != BackendAuto && pred.Cost(b) <= 0 {
			t.Errorf("Prediction.Cost(%v) = %g, want > 0", b, pred.Cost(b))
		}
	}
	if pred.Cost(BackendAuto) != 0 {
		t.Errorf("Prediction.Cost(auto) = %g, want 0 (not costed)", pred.Cost(BackendAuto))
	}
}

func TestRoaringTracksDensity(t *testing.T) {
	// The roaring prediction must fall as the same table gets sparser;
	// the uncompressed bitmap's per-candidate term must not.
	n := 1 << 18
	var prev float64
	for i, count := range []int{n / 4, n / 64, n / 1024, n / 16384} {
		s := CountStats{N: n, Granules: 1}
		for j := 0; j < 64; j++ {
			s.AddItem(count)
		}
		p := Predict(s)
		r := p.Cost(BackendRoaring)
		if i > 0 && r >= prev {
			t.Errorf("roaring cost did not fall with density: count=%d cost=%g prev=%g", count, r, prev)
		}
		prev = r
	}
}

func TestBitmapCostCapacityGuard(t *testing.T) {
	// A universe whose bitmap index would exceed maxBitmapBytes must
	// price bitmap out of contention entirely.
	s := CountStats{N: 1 << 28, Granules: 1}
	for i := 0; i < 2000; i++ {
		s.AddItem(1 << 20)
	}
	p := Predict(s)
	if p.Choice == BackendBitmap {
		t.Errorf("oversized bitmap index still chosen (cost %g)", p.Cost(BackendBitmap))
	}
	if p.Cost(BackendBitmap) < 1e300 {
		t.Errorf("oversized bitmap cost = %g, want ~inf", p.Cost(BackendBitmap))
	}
}

func TestChooseAutoLegacy(t *testing.T) {
	// The aggregate-only entry point still resolves both regimes.
	if got := ChooseAuto(1<<17, 64, int64(1<<17)*64/4); got != BackendBitmap {
		t.Errorf("legacy dense pick = %v, want bitmap", got)
	}
	if got := ChooseAuto(32, 5, 96); got != BackendHashTree {
		t.Errorf("legacy tiny pick = %v, want hashtree", got)
	}
}
