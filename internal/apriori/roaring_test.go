package apriori

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/tarm-project/tarm/internal/itemset"
)

// containerFromVals builds a container of the requested kind holding
// exactly vals (sorted, deduplicated low-bits).
func containerFromVals(vals []uint16, kind containerKind) *container {
	c := &container{kind: kind, card: len(vals)}
	switch kind {
	case kindArray:
		c.arr = append([]uint16(nil), vals...)
	case kindWords:
		c.words = make([]uint64, containerWords)
		for _, v := range vals {
			c.words[v>>6] |= 1 << uint(v&63)
		}
	case kindRuns:
		c.runs = arrayToRuns(vals, nil)
	}
	return c
}

// genVals draws a sorted deduplicated value set with the given shape:
// "sparse" scatters few values, "dense" many, "runs" clusters values
// into bursts, "edges" hugs container boundaries.
func genVals(rng *rand.Rand, shape string) []uint16 {
	set := make(map[uint16]bool)
	switch shape {
	case "empty":
	case "sparse":
		for i := 0; i < 1+rng.Intn(50); i++ {
			set[uint16(rng.Intn(containerBits))] = true
		}
	case "dense":
		n := containerBits/4 + rng.Intn(containerBits/4)
		for i := 0; i < n; i++ {
			set[uint16(rng.Intn(containerBits))] = true
		}
	case "runs":
		for b := 0; b < 1+rng.Intn(8); b++ {
			start := rng.Intn(containerBits - 300)
			length := 1 + rng.Intn(300)
			for v := start; v < start+length; v++ {
				set[uint16(v)] = true
			}
		}
	case "edges":
		for _, v := range []int{0, 1, 62, 63, 64, 65, 127, 128, containerBits - 2, containerBits - 1} {
			if rng.Intn(2) == 0 {
				set[uint16(v)] = true
			}
		}
	}
	vals := make([]uint16, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func intersectValsNaive(a, b []uint16) []uint16 {
	in := make(map[uint16]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out []uint16
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// accValues extracts the sorted values of an accSlot's result.
func accValues(t *testing.T, s *accSlot) []uint16 {
	t.Helper()
	var out []uint16
	c := &s.c
	switch c.kind {
	case kindArray:
		out = append(out, c.arr...)
	case kindWords:
		for v := 0; v < containerBits; v++ {
			if c.words[v>>6]&(1<<uint(v&63)) != 0 {
				out = append(out, uint16(v))
			}
		}
	case kindRuns:
		for _, r := range c.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				out = append(out, uint16(v))
			}
		}
	}
	if len(out) != c.card {
		t.Fatalf("container card %d but %d materialised values", c.card, len(out))
	}
	return out
}

func equalU16(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestContainerKernels checks every (kind × kind) intersection kernel,
// count-only and materialising, against a naive reference over many
// value-set shapes.
func TestContainerKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []string{"empty", "sparse", "dense", "runs", "edges"}
	kinds := []containerKind{kindArray, kindWords, kindRuns}
	for trial := 0; trial < 40; trial++ {
		va := genVals(rng, shapes[trial%len(shapes)])
		vb := genVals(rng, shapes[(trial/len(shapes))%len(shapes)])
		want := intersectValsNaive(va, vb)
		for _, ka := range kinds {
			for _, kb := range kinds {
				if (ka == kindArray && len(va) > arrayMaxCard) ||
					(kb == kindArray && len(vb) > arrayMaxCard) {
					continue
				}
				ca := containerFromVals(va, ka)
				cb := containerFromVals(vb, kb)
				if ca.card == 0 || cb.card == 0 {
					continue // kernels are never called on empty containers
				}
				if got := intersectCard(ca, cb); got != len(want) {
					t.Fatalf("trial %d %v∧%v: intersectCard=%d want %d", trial, ka, kb, got, len(want))
				}
				var slot accSlot
				intersectInto(&slot, ca, cb)
				if got := accValues(t, &slot); !equalU16(got, want) {
					t.Fatalf("trial %d %v∧%v: intersectInto %d values, want %d", trial, ka, kb, len(got), len(want))
				}
				// Reuse the same slot: results must not depend on stale state.
				intersectInto(&slot, cb, ca)
				if got := accValues(t, &slot); !equalU16(got, want) {
					t.Fatalf("trial %d %v∧%v (swapped, reused slot): wrong result", trial, ka, kb)
				}
			}
		}
	}
}

// TestContainerRangeCount checks per-kind rangeCount against counting
// the naive value list.
func TestContainerRangeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []string{"sparse", "dense", "runs", "edges"} {
		vals := genVals(rng, shape)
		if len(vals) == 0 {
			continue
		}
		for _, kind := range []containerKind{kindArray, kindWords, kindRuns} {
			if kind == kindArray && len(vals) > arrayMaxCard {
				continue
			}
			c := containerFromVals(vals, kind)
			for trial := 0; trial < 50; trial++ {
				lo := rng.Intn(containerBits)
				hi := lo + rng.Intn(containerBits-lo) + 1
				want := 0
				for _, v := range vals {
					if int(v) >= lo && int(v) < hi {
						want++
					}
				}
				if got := c.rangeCount(lo, hi); got != want {
					t.Fatalf("%s/%v rangeCount(%d,%d)=%d want %d", shape, kind, lo, hi, got, want)
				}
			}
		}
	}
}

// TestRoaringBuilder checks the ascending-TID builder and finalize's
// representation choices across container shapes.
func TestRoaringBuilder(t *testing.T) {
	n := 3 * containerBits / 2
	r := &Roaring{n: n, cs: make([]*container, 2)}
	var tids []int
	// container 0: a long run (should finalize to runs)
	for v := 100; v < 9000; v++ {
		tids = append(tids, v)
	}
	// container 1: scattered sparse values (should stay array)
	for v := 0; v < 200; v++ {
		tids = append(tids, containerBits+37*v)
	}
	for _, tid := range tids {
		r.add(tid)
	}
	r.finalize()
	if r.Card() != len(tids) {
		t.Fatalf("Card=%d want %d", r.Card(), len(tids))
	}
	if got := r.cs[0].kind; got != kindRuns {
		t.Errorf("container 0 kind %v, want runs", got)
	}
	if got := r.cs[1].kind; got != kindArray {
		t.Errorf("container 1 kind %v, want array", got)
	}
	// dense random container converts array→words during add
	r2 := &Roaring{n: containerBits, cs: make([]*container, 1)}
	rng := rand.New(rand.NewSource(3))
	prev := -1
	var count int
	for v := 0; v < containerBits; v++ {
		if rng.Intn(3) == 0 {
			r2.add(v)
			count++
			prev = v
		}
	}
	_ = prev
	r2.finalize()
	if r2.Card() != count {
		t.Fatalf("dense Card=%d want %d", r2.Card(), count)
	}
	if got := r2.cs[0].kind; got != kindWords {
		t.Errorf("dense container kind %v, want words", got)
	}
	// RangeCount across the container boundary
	if got, want := r.RangeCount(0, n), len(tids); got != want {
		t.Errorf("RangeCount(full)=%d want %d", got, want)
	}
	if got := r.RangeCount(8999, containerBits+38); got != 1+2 {
		// tids 8999 (last of the run) and containerBits+0, containerBits+37
		t.Errorf("RangeCount(boundary)=%d want 3", got)
	}
}

func TestGallopSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		vals := genVals(rng, "sparse")
		if trial%3 == 0 {
			vals = genVals(rng, "runs")
		}
		v := uint16(rng.Intn(containerBits))
		lo := 0
		if len(vals) > 0 {
			lo = rng.Intn(len(vals) + 1)
		}
		want := lo
		for want < len(vals) && vals[want] < v {
			want++
		}
		if got := gallopSearch(vals, lo, v); got != want {
			t.Fatalf("gallopSearch(%v, lo=%d, v=%d)=%d want %d", vals, lo, v, got, want)
		}
	}
}

// randomSource generates a reproducible transaction list where item
// densities span several octaves, including ultra-sparse tail items.
func randomSource(seed int64, n, items int) Transactions {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]itemset.Set, n)
	for i := range txs {
		var s []itemset.Item
		for x := 0; x < items; x++ {
			// item x appears with density ~ 1/(x+2)
			if rng.Intn(x+2) == 0 {
				s = append(s, itemset.Item(x))
			}
		}
		txs[i] = itemset.New(s...)
	}
	return Transactions(txs)
}

// TestRoaringIndexMatchesBitmap cross-checks the compressed index
// against the flat bitmap index over every counting entry point.
func TestRoaringIndexMatchesBitmap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		src := randomSource(seed, 2000, 24)
		bix := NewBitmapIndex(src, nil)
		rix := NewRoaringIndex(src, nil)
		if bix.N() != rix.N() {
			t.Fatalf("N mismatch: %d vs %d", bix.N(), rix.N())
		}
		// all 1-, 2- and 3-item candidates over a subset of items
		var lvl1, lvl2, lvl3 []itemset.Set
		for a := 0; a < 24; a++ {
			lvl1 = append(lvl1, itemset.New(itemset.Item(a)))
			for b := a + 1; b < 24; b++ {
				lvl2 = append(lvl2, itemset.New(itemset.Item(a), itemset.Item(b)))
				for c := b + 1; c < 24 && c < b+4; c++ {
					lvl3 = append(lvl3, itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c)))
				}
			}
		}
		for li, cands := range [][]itemset.Set{lvl1, lvl2, lvl3} {
			itemset.SortSets(cands)
			want := bix.CountSets(cands)
			got := rix.CountSets(cands)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d level %d cand %v: roaring=%d bitmap=%d", seed, li+1, cands[i], got[i], want[i])
				}
			}
			for _, workers := range []int{2, 4, 7} {
				gotP := rix.CountSetsParallel(cands, workers)
				for i := range want {
					if gotP[i] != want[i] {
						t.Fatalf("seed %d level %d workers %d cand %v: parallel=%d want %d", seed, li+1, workers, cands[i], gotP[i], want[i])
					}
				}
			}
		}
		// EachIntersection: Card and RangeCount against PopcountRange
		itemset.SortSets(lvl2)
		bWords := make([][]uint64, len(lvl2))
		bix.EachIntersection(lvl2, func(i int, words []uint64) {
			bWords[i] = append([]uint64(nil), words...)
		})
		rng := rand.New(rand.NewSource(seed))
		rix.EachIntersection(lvl2, func(i int, acc *RoaringAcc) {
			if got, want := acc.Card(), popcount(bWords[i]); got != want {
				t.Fatalf("seed %d cand %v: acc.Card=%d want %d", seed, lvl2[i], got, want)
			}
			for trial := 0; trial < 5; trial++ {
				lo := rng.Intn(rix.N())
				hi := lo + rng.Intn(rix.N()-lo) + 1
				if got, want := acc.RangeCount(lo, hi), PopcountRange(bWords[i], lo, hi); got != want {
					t.Fatalf("seed %d cand %v RangeCount(%d,%d)=%d want %d", seed, lvl2[i], lo, hi, got, want)
				}
			}
		})
	}
}

// TestRoaringIndexLargeUniverse covers multi-container indexes (n >
// 2^16) so cross-container iteration and range counting are exercised.
func TestRoaringIndexLargeUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("large universe test")
	}
	n := containerBits + containerBits/2
	rng := rand.New(rand.NewSource(5))
	txs := make([]itemset.Set, n)
	for i := range txs {
		var s []itemset.Item
		for x := 0; x < 6; x++ {
			if rng.Intn(1<<uint(x)) == 0 {
				s = append(s, itemset.Item(x))
			}
		}
		txs[i] = itemset.New(s...)
	}
	src := Transactions(txs)
	bix := NewBitmapIndex(src, nil)
	rix := NewRoaringIndex(src, nil)
	var cands []itemset.Set
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b)))
		}
	}
	itemset.SortSets(cands)
	want := bix.CountSets(cands)
	got := rix.CountSets(cands)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cand %v: roaring=%d bitmap=%d", cands[i], got[i], want[i])
		}
	}
	for _, x := range []int{0, 3, 5} {
		r := rix.ItemBits(itemset.Item(x))
		w := bix.itemBits(itemset.Item(x))
		for trial := 0; trial < 40; trial++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			if gotC, wantC := r.RangeCount(lo, hi), PopcountRange(w, lo, hi); gotC != wantC {
				t.Fatalf("item %d RangeCount(%d,%d)=%d want %d", x, lo, hi, gotC, wantC)
			}
		}
	}
}

// TestPrefixRunChunks checks the chunking properties: full coverage in
// order, no chunk boundary inside a (k-1)-prefix run, and plain even
// splitting for k ≤ 1.
func TestPrefixRunChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var cands []itemset.Set
		nRuns := 1 + rng.Intn(20)
		for r := 0; r < nRuns; r++ {
			runLen := 1 + rng.Intn(6)
			a, b := itemset.Item(r), itemset.Item(100+rng.Intn(50))
			for j := 0; j < runLen; j++ {
				cands = append(cands, itemset.New(a, b, itemset.Item(200+r*10+j)))
			}
		}
		itemset.SortSets(cands)
		workers := 1 + rng.Intn(8)
		chunks := PrefixRunChunks(cands, workers)
		pos := 0
		for _, ch := range chunks {
			if ch[0] != pos {
				t.Fatalf("trial %d: chunk starts at %d, want %d", trial, ch[0], pos)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("trial %d: empty chunk %v", trial, ch)
			}
			pos = ch[1]
			if ch[1] < len(cands) && samePrefixK1(cands[ch[1]-1], cands[ch[1]]) {
				t.Fatalf("trial %d: boundary %d splits a prefix run", trial, ch[1])
			}
		}
		if pos != len(cands) {
			t.Fatalf("trial %d: chunks cover %d of %d", trial, pos, len(cands))
		}
	}
	// k == 1: no prefixes; must still split evenly and cover.
	var ones []itemset.Set
	for i := 0; i < 10; i++ {
		ones = append(ones, itemset.New(itemset.Item(i)))
	}
	chunks := PrefixRunChunks(ones, 3)
	if len(chunks) != 3 {
		t.Fatalf("k=1: got %d chunks, want 3", len(chunks))
	}
	if chunks[2][1] != 10 {
		t.Fatalf("k=1: chunks do not cover the list: %v", chunks)
	}
}

// TestBitmapEachIntersectionZeroAlloc asserts the pooled accumulator
// keeps steady-state EachIntersection calls allocation-free.
func TestBitmapEachIntersectionZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector")
	}
	src := randomSource(1, 1000, 12)
	ix := NewBitmapIndex(src, nil)
	var cands []itemset.Set
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b)))
		}
	}
	itemset.SortSets(cands)
	sink := 0
	// warm the pool
	ix.EachIntersection(cands, func(i int, words []uint64) { sink += popcount(words) })
	avg := testing.AllocsPerRun(20, func() {
		ix.EachIntersection(cands, func(i int, words []uint64) { sink += popcount(words) })
	})
	// < 1 tolerates a rare pool refill after a GC between runs.
	if avg >= 1 {
		t.Errorf("EachIntersection allocates %.1f per call in steady state, want 0", avg)
	}
	_ = sink
}

// TestRoaringCountSetsZeroAlloc asserts the same for the compressed
// index's batched counting path (output slice aside).
func TestRoaringCountSetsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector")
	}
	src := randomSource(2, 1000, 12)
	ix := NewRoaringIndex(src, nil)
	var cands []itemset.Set
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			for c := b + 1; c < 12; c++ {
				cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c)))
			}
		}
	}
	itemset.SortSets(cands)
	counts := make([]int, len(cands))
	ix.countInto(cands, counts) // warm the pool
	avg := testing.AllocsPerRun(20, func() {
		ix.countInto(cands, counts)
	})
	if avg >= 1 {
		t.Errorf("countInto allocates %.1f per call in steady state, want 0", avg)
	}
}
