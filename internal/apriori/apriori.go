package apriori

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
)

// Config tunes a mining run. The zero value is not usable: MinSupport
// (or MinCount) must be set.
type Config struct {
	// MinSupport is the minimum support as a fraction of transactions
	// in [0,1]. A candidate is frequent when its count is at least
	// ceil(MinSupport * N). Ignored when MinCount > 0.
	MinSupport float64
	// MinCount is an absolute support threshold; when positive it
	// overrides MinSupport.
	MinCount int
	// MaxK bounds the size of itemsets mined; 0 means unbounded.
	MaxK int
	// Fanout and LeafSize tune the hash tree; 0 selects the defaults.
	Fanout, LeafSize int
	// Backend selects the support-counting strategy; the zero value
	// (BackendAuto) picks hash tree or bitmap from the data shape.
	Backend Backend
	// Workers parallelises the bitmap backend's candidate counting
	// across a worker pool; 0 or 1 counts sequentially. Counts are
	// identical at any worker count.
	Workers int
	// NaiveCounting replaces the hash tree with the direct per-candidate
	// subset test. Deprecated: set Backend to BackendNaive instead; the
	// flag is honoured only while Backend is BackendAuto.
	NaiveCounting bool
	// Tracer receives per-pass telemetry (candidates generated, pruned,
	// counted, frequent survivors, backend, wall time). Nil disables
	// tracing at no measurable cost; see internal/obs.
	Tracer obs.Tracer
}

// minCount resolves the absolute threshold for n transactions.
func (c Config) minCount(n int) (int, error) {
	if c.MinCount > 0 {
		return c.MinCount, nil
	}
	if c.MinSupport <= 0 || c.MinSupport > 1 {
		return 0, fmt.Errorf("apriori: MinSupport %v outside (0,1] and no MinCount given", c.MinSupport)
	}
	return CeilCount(c.MinSupport, n), nil
}

// CeilCount is ceil(frac·n), at least 1, computed with a relative
// epsilon so that products the caller means to be integral do not round
// up a whole count: 0.15·20 evaluates to 3.0000000000000004 in float64,
// and a naive ceiling would demand 4 of 20 transactions instead of 3.
// Exact-integer products stay exact: CeilCount(0.25, 8) == 2 and
// CeilCount(1, n) == n.
//
// The ≥1 clamp defines the degenerate corners: frac == 0 and n == 0
// both yield 1, so a threshold over an empty population (or a zero
// support) still demands at least one supporting transaction — nothing
// becomes "frequent" vacuously.
func CeilCount(frac float64, n int) int {
	v := frac * float64(n)
	// The epsilon is relative so ulp-scale product noise is absorbed at
	// any magnitude, but capped below one whole count: past ~5e8 a
	// relative 1e-9 exceeds 1.0 and would swallow a legitimate unit
	// (CeilCount(1, 1<<30) must be 1<<30, not one less).
	eps := 1e-9 * math.Max(1, v)
	if eps > 0.5 {
		eps = 0.5
	}
	c := int(math.Ceil(v - eps))
	if c < 1 {
		c = 1
	}
	return c
}

// ItemsetCount pairs a frequent itemset with its absolute support
// count.
type ItemsetCount struct {
	Set   itemset.Set
	Count int
}

// Frequent is the result of a mining run: all frequent itemsets,
// grouped by size, plus enough bookkeeping to look supports up during
// rule generation.
type Frequent struct {
	// N is the number of transactions scanned.
	N int
	// MinCount is the absolute threshold that was applied.
	MinCount int
	// ByK[k] holds the frequent k-itemsets (ByK[0] is unused and nil).
	// Each level is sorted in canonical itemset order.
	ByK [][]ItemsetCount

	counts map[string]int
}

// Support returns the absolute count of s, or 0 if s is not frequent.
func (f *Frequent) Support(s itemset.Set) int { return f.counts[s.Key()] }

// SupportFrac returns the support of s as a fraction of N.
func (f *Frequent) SupportFrac(s itemset.Set) float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.counts[s.Key()]) / float64(f.N)
}

// Contains reports whether s was found frequent.
func (f *Frequent) Contains(s itemset.Set) bool {
	_, ok := f.counts[s.Key()]
	return ok
}

// TotalItemsets returns the number of frequent itemsets of all sizes.
func (f *Frequent) TotalItemsets() int {
	n := 0
	for _, level := range f.ByK {
		n += len(level)
	}
	return n
}

// All returns every frequent itemset in canonical order.
func (f *Frequent) All() []ItemsetCount {
	out := make([]ItemsetCount, 0, f.TotalItemsets())
	for _, level := range f.ByK {
		out = append(out, level...)
	}
	return out
}

// ErrEmptySource is returned when the source has no transactions.
var ErrEmptySource = errors.New("apriori: source has no transactions")

// Mine runs the level-wise algorithm over src and returns all frequent
// itemsets under cfg.
func Mine(src Source, cfg Config) (*Frequent, error) {
	return MineContext(context.Background(), src, cfg)
}

// MineContext is Mine under a context. Cancellation is observed at
// pass boundaries — a pass that has started runs to completion, so the
// latency of a cancel is one counting pass, never one transaction.
func MineContext(ctx context.Context, src Source, cfg Config) (*Frequent, error) {
	n := src.Len()
	if n == 0 {
		return nil, ErrEmptySource
	}
	minCount, err := cfg.minCount(n)
	if err != nil {
		return nil, err
	}
	res := &Frequent{
		N:        n,
		MinCount: minCount,
		ByK:      [][]ItemsetCount{nil},
	}
	tr := obs.OrNop(cfg.Tracer)
	trace := tr.Enabled()
	if trace {
		tr.StartTask("apriori.Mine")
		defer tr.EndTask()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Level 1: one pass with a plain counter map.
	var t0 time.Time
	if trace {
		tr.StartPass(1)
		t0 = time.Now()
	}
	c1 := make(map[itemset.Item]int)
	src.ForEach(func(tx itemset.Set) {
		for _, x := range tx {
			c1[x]++
		}
	})
	var l1 []ItemsetCount
	for x, cnt := range c1 {
		if cnt >= minCount {
			l1 = append(l1, ItemsetCount{Set: itemset.Set{x}, Count: cnt})
		}
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i].Set.Compare(l1[j].Set) < 0 })
	res.ByK = append(res.ByK, l1)
	if trace {
		tr.EndPass(obs.PassStats{
			Level: 1, Generated: len(c1), Counted: len(c1), Frequent: len(l1),
			Rows: int64(n), Backend: "scan", Duration: time.Since(t0),
		})
	}
	// Pre-size the lookup map from the L1 level: most frequent itemsets
	// are pairs of frequent items, so 2·|L1| is a cheap lower-variance
	// guess that avoids the early growth rehashes.
	res.counts = make(map[string]int, 2*len(l1))
	for _, ic := range l1 {
		res.counts[ic.Set.Key()] = ic.Count
	}

	counter, backend, pred, err := cfg.newCounter(src, l1)
	if err != nil {
		return nil, err
	}
	if trace {
		tr.Gauge(obs.MetricCountingPredictedCost, pred.Cost(backend))
	}
	var countingNS int64
	prev := l1
	for k := 2; len(prev) > 0 && (cfg.MaxK == 0 || k <= cfg.MaxK); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if trace {
			tr.StartPass(k)
			t0 = time.Now()
		}
		cands, nGen, nPruned := generateCandidates(prev)
		if len(cands) == 0 {
			if trace {
				tr.EndPass(obs.PassStats{
					Level: k, Generated: nGen, Pruned: nPruned,
					Backend: backend.String(), Duration: time.Since(t0),
				})
			}
			break
		}
		tc0 := time.Now()
		counts, err := counter.CountLevel(cands, k)
		if err != nil {
			return nil, err
		}
		countingNS += time.Since(tc0).Nanoseconds()
		var level []ItemsetCount
		for i, c := range cands {
			if counts[i] >= minCount {
				level = append(level, ItemsetCount{Set: c, Count: counts[i]})
				res.counts[c.Key()] = counts[i]
			}
		}
		res.ByK = append(res.ByK, level)
		prev = level
		if trace {
			tr.EndPass(obs.PassStats{
				Level: k, Generated: nGen, Pruned: nPruned, Counted: len(cands),
				Frequent: len(level), Rows: int64(n),
				Backend: backend.String(), Duration: time.Since(t0),
			})
		}
	}
	if trace {
		tr.Counter(obs.MetricItemsetsFrequent, int64(res.TotalItemsets()))
		tr.Gauge(obs.MetricCountingObservedNS, float64(countingNS))
	}
	return res, nil
}

// GenerateCandidates produces the (k+1)-candidates from the sorted
// frequent k-level: prefix join followed by the Apriori prune (every
// k-subset of a candidate must itself be frequent). The input must be
// in canonical order, as produced by Mine.
func GenerateCandidates(level []ItemsetCount) []itemset.Set {
	out, _, _ := generateCandidates(level)
	return out
}

// GenerateCandidatesCounted is GenerateCandidates with pass telemetry:
// it also reports how many candidates the join produced (generated) and
// how many the subset prune removed (pruned); len(out) equals
// generated-pruned. The hold-table build uses it for its pass stats.
func GenerateCandidatesCounted(level []ItemsetCount) (out []itemset.Set, generated, pruned int) {
	return generateCandidates(level)
}

// generateCandidates is GenerateCandidates with pass telemetry: it also
// reports how many candidates the join produced (generated) and how
// many the subset prune removed (pruned); len(out) == generated-pruned.
func generateCandidates(level []ItemsetCount) (out []itemset.Set, generated, pruned int) {
	if len(level) < 2 {
		return nil, 0, 0
	}
	freq := make(map[string]bool, len(level))
	for _, ic := range level {
		freq[ic.Set.Key()] = true
	}
	// One key buffer for every subset probe of the pass: the prune
	// loop's map lookups must not allocate a key string per subset.
	keyBuf := make([]byte, 0, 4*(len(level[0].Set)+1))
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			cand, ok := level[i].Set.JoinPrefix(level[j].Set)
			if !ok {
				// The level is sorted, so once the prefix diverges no
				// later j can share it either.
				break
			}
			generated++
			if aprioriPruned(cand, freq, keyBuf) {
				pruned++
				continue
			}
			out = append(out, cand)
		}
	}
	return out, generated, pruned
}

// aprioriPruned reports whether cand has a (k-1)-subset that is not
// frequent. The two subsets obtained by dropping one of the last two
// items are the join parents and are frequent by construction, but
// checking them costs little and keeps the function self-contained.
func aprioriPruned(cand itemset.Set, freq map[string]bool, keyBuf []byte) bool {
	pruned := false
	cand.EachSubsetK1(func(sub itemset.Set) bool {
		if !freq[string(sub.AppendKey(keyBuf[:0]))] {
			pruned = true
			return false
		}
		return true
	})
	return pruned
}
