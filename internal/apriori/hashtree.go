package apriori

import (
	"fmt"
	"math"

	"github.com/tarm-project/tarm/internal/itemset"
)

// HashTree counts the support of a fixed collection of k-itemset
// candidates in one pass per transaction, visiting only the candidates
// that can possibly be subsets. It is the classic structure from the
// Apriori paper: interior nodes hash an item to a child, leaves hold
// small buckets of candidates and split when they overflow (unless the
// tree is already k levels deep, where buckets may grow unboundedly).
type HashTree struct {
	k       int
	fanout  int
	maxLeaf int
	root    *htNode
	cands   []itemset.Set
	counts  []int
	// seq and mark deduplicate within a transaction: several descent
	// paths can land in the same leaf (hashing is lossy), and a
	// candidate must be counted at most once per transaction.
	seq  int64
	mark []int64
}

type htNode struct {
	// children is nil for a leaf. Interior nodes route item x to
	// children[x % fanout].
	children []*htNode
	// bucket holds candidate indices at a leaf.
	bucket []int32
}

// DefaultLeafSize is the bucket size used when a Config leaves it
// zero. The default fanout is adaptive: the tree has at most k levels,
// so to keep leaves near DefaultLeafSize the fanout must scale like
// the k-th root of the candidate count — a fixed small fanout degrades
// to linear bucket scans on large candidate sets.
const DefaultLeafSize = 16

// defaultFanout picks a fanout for n candidates of length k: the k-th
// root of n/DefaultLeafSize, clamped to [8, 2048].
func defaultFanout(n, k int) int {
	target := float64(n) / DefaultLeafSize
	if target < 1 {
		target = 1
	}
	f := int(math.Ceil(math.Pow(target, 1/float64(k))))
	if f < 8 {
		f = 8
	}
	if f > 2048 {
		f = 2048
	}
	return f
}

// NewHashTree builds a tree over candidates, which must all have
// length k ≥ 1. fanout and maxLeaf fall back to the defaults when ≤ 0.
func NewHashTree(candidates []itemset.Set, k, fanout, maxLeaf int) (*HashTree, error) {
	if k < 1 {
		return nil, fmt.Errorf("apriori: hash tree needs k >= 1, got %d", k)
	}
	if fanout <= 0 {
		fanout = defaultFanout(len(candidates), k)
	}
	if maxLeaf <= 0 {
		maxLeaf = DefaultLeafSize
	}
	t := &HashTree{
		k:       k,
		fanout:  fanout,
		maxLeaf: maxLeaf,
		root:    &htNode{},
		cands:   candidates,
		counts:  make([]int, len(candidates)),
		mark:    make([]int64, len(candidates)),
	}
	for i, c := range candidates {
		if len(c) != k {
			return nil, fmt.Errorf("apriori: candidate %v has length %d, want %d", c, len(c), k)
		}
		t.insert(int32(i))
	}
	return t, nil
}

func (t *HashTree) hash(x itemset.Item) int { return int(x) % t.fanout }

func (t *HashTree) insert(idx int32) { t.insertAt(t.root, 0, idx) }

// insertAt places candidate idx in the subtree rooted at n, where depth
// items of the candidate have already been consumed by hashing. An
// overflowing leaf splits unless the tree is already k levels deep —
// beyond that every candidate in the bucket hashes identically and
// splitting cannot help.
func (t *HashTree) insertAt(n *htNode, depth int, idx int32) {
	for n.children != nil {
		h := t.hash(t.cands[idx][depth])
		if n.children[h] == nil {
			n.children[h] = &htNode{}
		}
		n = n.children[h]
		depth++
	}
	n.bucket = append(n.bucket, idx)
	if len(n.bucket) > t.maxLeaf && depth < t.k {
		bucket := n.bucket
		n.bucket = nil
		n.children = make([]*htNode, t.fanout)
		for _, b := range bucket {
			h := t.hash(t.cands[b][depth])
			if n.children[h] == nil {
				n.children[h] = &htNode{}
			}
			t.insertAt(n.children[h], depth+1, b)
		}
	}
}

// Add counts one transaction. tx must be a canonical itemset.
func (t *HashTree) Add(tx itemset.Set) {
	if len(tx) < t.k {
		return
	}
	t.seq++
	t.visit(t.root, tx, 0, 0)
}

// visit walks the subtree rooted at n. depth items of every candidate
// below n are already matched against transaction items before
// position start.
func (t *HashTree) visit(n *htNode, tx itemset.Set, start, depth int) {
	if n.children == nil {
		for _, idx := range n.bucket {
			c := t.cands[idx]
			// The first `depth` items of c were hashed on the way down,
			// but hashing is lossy, so verify full containment against
			// the whole transaction, and count once per transaction.
			if t.mark[idx] != t.seq && tx.ContainsAll(c) {
				t.mark[idx] = t.seq
				t.counts[idx]++
			}
		}
		return
	}
	// Interior: each remaining transaction item may begin a match.
	// Prune when too few items remain to complete a k-candidate.
	for i := start; i <= len(tx)-(t.k-depth); i++ {
		child := n.children[t.hash(tx[i])]
		if child != nil {
			t.visit(child, tx, i+1, depth+1)
		}
	}
}

// Counts returns the support counters, indexed like the candidate
// slice passed to NewHashTree. The slice aliases internal state; the
// caller must copy it before reusing the tree.
func (t *HashTree) Counts() []int { return t.counts }

// Reset zeroes all counters so the tree can be reused for another
// partition (the temporal miners count the same candidates once per
// granule).
func (t *HashTree) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
}

// CountSets counts the support of candidates (all length k) in src
// using a hash tree, returning one count per candidate. It is the
// convenience entry point used by the temporal miners and tests.
func CountSets(src Source, candidates []itemset.Set, k int) ([]int, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	tree, err := NewHashTree(candidates, k, 0, 0)
	if err != nil {
		return nil, err
	}
	src.ForEach(tree.Add)
	out := make([]int, len(tree.counts))
	copy(out, tree.counts)
	return out, nil
}

// CountSetsNaive is the reference counter: a direct subset test of
// every candidate against every transaction. It exists for property
// tests (hash tree must agree with it exactly) and for tiny inputs.
func CountSetsNaive(src Source, candidates []itemset.Set) []int {
	counts := make([]int, len(candidates))
	src.ForEach(func(tx itemset.Set) {
		for i, c := range candidates {
			if tx.ContainsAll(c) {
				counts[i]++
			}
		}
	})
	return counts
}
