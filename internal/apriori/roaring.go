package apriori

import (
	"math/bits"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
)

// Roaring-style compressed TID bitmaps. A transaction universe [0, n)
// is split into 2^16-bit containers; each container stores its slice of
// an item's TID set in whichever of three representations is smallest:
//
//   - array: sorted uint16 low-bits, for sparse containers (≤ 4096 TIDs)
//   - words: a packed 1024×uint64 bitmap, for dense containers
//   - runs:  sorted inclusive [start, last] spans, for clustered TIDs
//
// Intersection dispatches per container pair — array∧array is a
// galloping merge, array∧words a bit probe, words∧words AND+POPCNT,
// runs variants walk spans — and empty containers are skipped outright,
// so a sparse item stops paying the full-universe O(n/64) word scan the
// flat BitmapIndex charges every candidate.
const (
	containerBits  = 1 << 16
	containerWords = containerBits / 64 // 1024
	// arrayMaxCard is the array→words conversion threshold: above it a
	// packed bitmap (8 KiB) is smaller than 2 bytes per TID.
	arrayMaxCard = 4096
)

type containerKind uint8

const (
	kindArray containerKind = iota
	kindWords
	kindRuns
)

// runSpan is one run of consecutive TIDs, inclusive on both ends.
type runSpan struct{ start, last uint16 }

// container holds one 2^16-TID block of an item bitmap. Exactly one of
// arr/words/runs is populated, per kind; card is the number of set
// bits. A container with card == 0 is treated as empty everywhere.
type container struct {
	kind  containerKind
	card  int
	arr   []uint16
	words []uint64
	runs  []runSpan
}

// rangeCount counts the container's set bits in local positions
// [lo, hi), 0 ≤ lo < hi ≤ containerBits.
func (c *container) rangeCount(lo, hi int) int {
	if c.card == 0 || lo >= hi {
		return 0
	}
	switch c.kind {
	case kindArray:
		i := searchU16(c.arr, uint16(lo))
		j := len(c.arr)
		if hi < containerBits {
			j = searchU16(c.arr, uint16(hi))
		}
		return j - i
	case kindWords:
		return PopcountRange(c.words, lo, hi)
	default:
		n := 0
		for _, r := range c.runs {
			s, e := int(r.start), int(r.last)+1
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				n += e - s
			}
		}
		return n
	}
}

// searchU16 returns the first index i with arr[i] >= v, or len(arr).
func searchU16(arr []uint16, v uint16) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Roaring is one item's compressed TID bitmap: a dense directory of
// containers indexed by TID>>16, nil for an all-zero block. It is
// immutable after finalize, so any number of goroutines may intersect
// against it concurrently.
type Roaring struct {
	n    int
	card int
	cs   []*container
}

// add sets TID tid. TIDs must arrive in strictly ascending order (the
// index builder scans transactions in row order and each transaction is
// a canonical deduplicated set, so this holds by construction).
func (r *Roaring) add(tid int) {
	ci := tid >> 16
	lo := uint16(tid & (containerBits - 1))
	c := r.cs[ci]
	if c == nil {
		c = &container{kind: kindArray}
		r.cs[ci] = c
	}
	if c.kind == kindArray {
		if c.card < arrayMaxCard {
			c.arr = append(c.arr, lo)
			c.card++
			r.card++
			return
		}
		w := make([]uint64, containerWords)
		for _, v := range c.arr {
			w[v>>6] |= 1 << uint(v&63)
		}
		c.kind = kindWords
		c.words = w
		c.arr = nil
	}
	c.words[lo>>6] |= 1 << uint(lo&63)
	c.card++
	r.card++
}

// finalize converts containers to the run representation where runs are
// the smallest encoding (4 bytes per run vs 2 per array value vs a
// fixed 8 KiB of words).
func (r *Roaring) finalize() {
	for _, c := range r.cs {
		if c != nil {
			c.maybeRuns()
		}
	}
}

func (c *container) maybeRuns() {
	var nr int
	switch c.kind {
	case kindArray:
		nr = arrayNumRuns(c.arr)
	case kindWords:
		nr = wordsNumRuns(c.words)
	default:
		return
	}
	limit := 2 * c.card
	if limit > 2*arrayMaxCard {
		limit = 2 * arrayMaxCard
	}
	if 4*nr >= limit {
		return
	}
	runs := make([]runSpan, 0, nr)
	if c.kind == kindArray {
		runs = arrayToRuns(c.arr, runs)
	} else {
		runs = wordsToRuns(c.words, runs)
	}
	c.kind = kindRuns
	c.runs = runs
	c.arr = nil
	c.words = nil
}

func arrayNumRuns(arr []uint16) int {
	nr := 0
	for i, v := range arr {
		if i == 0 || v != arr[i-1]+1 {
			nr++
		}
	}
	return nr
}

// wordsNumRuns counts runs with the start-bit trick: a bit starts a run
// iff it is set and its predecessor (carrying across words) is clear.
func wordsNumRuns(words []uint64) int {
	nr := 0
	carry := uint64(0)
	for _, w := range words {
		nr += bits.OnesCount64(w &^ ((w << 1) | carry))
		carry = w >> 63
	}
	return nr
}

func arrayToRuns(arr []uint16, runs []runSpan) []runSpan {
	for i := 0; i < len(arr); {
		j := i + 1
		for j < len(arr) && arr[j] == arr[j-1]+1 {
			j++
		}
		runs = append(runs, runSpan{start: arr[i], last: arr[j-1]})
		i = j
	}
	return runs
}

func wordsToRuns(words []uint64, runs []runSpan) []runSpan {
	pos := nextSet(words, 0)
	for pos < containerBits {
		end := nextClear(words, pos)
		runs = append(runs, runSpan{start: uint16(pos), last: uint16(end - 1)})
		pos = nextSet(words, end)
	}
	return runs
}

// nextSet returns the first set bit position ≥ pos, or containerBits.
func nextSet(words []uint64, pos int) int {
	w := pos >> 6
	if w >= len(words) {
		return containerBits
	}
	if cur := words[w] >> uint(pos&63); cur != 0 {
		return pos + bits.TrailingZeros64(cur)
	}
	for w++; w < len(words); w++ {
		if words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(words[w])
		}
	}
	return containerBits
}

// nextClear returns the first clear bit position ≥ pos, or containerBits.
func nextClear(words []uint64, pos int) int {
	w := pos >> 6
	if w >= len(words) {
		return containerBits
	}
	if cur := ^words[w] >> uint(pos&63); cur != 0 {
		return pos + bits.TrailingZeros64(cur)
	}
	for w++; w < len(words); w++ {
		if inv := ^words[w]; inv != 0 {
			return w<<6 + bits.TrailingZeros64(inv)
		}
	}
	return containerBits
}

// Card returns the number of TIDs in the bitmap.
func (r *Roaring) Card() int { return r.card }

// RangeCount counts the set bits in TID positions [lo, hi). The
// temporal miners use it to slice one intersection into per-granule
// counts, exactly like PopcountRange on flat bitmaps.
func (r *Roaring) RangeCount(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > r.n {
		hi = r.n
	}
	if lo >= hi || r.card == 0 {
		return 0
	}
	total := 0
	for ci := lo >> 16; ci <= (hi-1)>>16; ci++ {
		c := r.cs[ci]
		if c == nil || c.card == 0 {
			continue
		}
		base := ci << 16
		l, h := lo-base, hi-base
		if l < 0 {
			l = 0
		}
		if h > containerBits {
			h = containerBits
		}
		if l == 0 && h == containerBits {
			total += c.card
			continue
		}
		total += c.rangeCount(l, h)
	}
	return total
}

// --- count-only intersection kernels -------------------------------

// gallopFactor is the length skew at which the array∧array kernel
// switches from a linear merge to galloping probes of the longer side.
const gallopFactor = 32

// splatRunLen is the candidate-run length at which the batched counting
// path splats the shared prefix container into a word buffer (two
// passes over the prefix) rather than merging it per candidate.
const splatRunLen = 4

// intersectCard returns |a ∧ b| without materialising the result.
func intersectCard(a, b *container) int {
	if a.kind > b.kind {
		a, b = b, a
	}
	switch a.kind {
	case kindArray:
		switch b.kind {
		case kindArray:
			return cardArrays(a.arr, b.arr)
		case kindWords:
			return cardArrayWords(a.arr, b.words)
		default:
			return cardArrayRuns(a.arr, b.runs)
		}
	case kindWords:
		if b.kind == kindWords {
			return cardWords(a.words, b.words)
		}
		return cardWordsRuns(a.words, b.runs)
	default:
		return cardRuns(a.runs, b.runs)
	}
}

// gallopSearch returns the first index i ≥ lo with b[i] >= v, or
// len(b), by exponential probing followed by binary search. Callers
// walk b left to right, so lo advances monotonically and the probe
// starts where the previous value left off.
func gallopSearch(b []uint16, lo int, v uint16) int {
	if lo >= len(b) || b[lo] >= v {
		return lo
	}
	// invariant below: b[lo] < v and (hi == len(b) or b[hi] >= v)
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(b) {
		hi = len(b)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

func cardArrays(a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	if len(b) >= gallopFactor*len(a)+16 {
		pos := 0
		for _, v := range a {
			pos = gallopSearch(b, pos, v)
			if pos >= len(b) {
				break
			}
			if b[pos] == v {
				n++
				pos++
			}
		}
		return n
	}
	// Branchless merge: on random data the three-way comparison is an
	// unpredictable branch costing a pipeline flush per element; the
	// SETcc form advances both cursors data-independently.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		eq, le, ge := 0, 0, 0
		if va == vb {
			eq = 1
		}
		if va <= vb {
			le = 1
		}
		if vb <= va {
			ge = 1
		}
		n += eq
		i += le
		j += ge
	}
	return n
}

func cardArrayWords(arr []uint16, words []uint64) int {
	n := 0
	for _, v := range arr {
		n += int(words[v>>6] >> uint(v&63) & 1)
	}
	return n
}

func cardArrayRuns(arr []uint16, runs []runSpan) int {
	n, ri := 0, 0
	for _, v := range arr {
		for ri < len(runs) && runs[ri].last < v {
			ri++
		}
		if ri == len(runs) {
			break
		}
		if v >= runs[ri].start {
			n++
		}
	}
	return n
}

func cardWords(a, b []uint64) int {
	n := 0
	_ = b[len(a)-1]
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w])
	}
	return n
}

func cardWordsRuns(words []uint64, runs []runSpan) int {
	n := 0
	for _, r := range runs {
		n += PopcountRange(words, int(r.start), int(r.last)+1)
	}
	return n
}

// splatContainer sets c's bits in the all-zero word buffer w; the
// caller must undo it with unsplatContainer before reusing w. The
// batched counting path uses it to turn a shared prefix container into
// a bitset once per run, so every candidate probe is branchless instead
// of a merge with data-dependent branches.
func splatContainer(w []uint64, c *container) {
	switch c.kind {
	case kindArray:
		for _, v := range c.arr {
			w[v>>6] |= 1 << uint(v&63)
		}
	case kindWords:
		copy(w, c.words)
	default:
		for _, r := range c.runs {
			fillRange(w, int(r.start), int(r.last)+1)
		}
	}
}

// unsplatContainer zeroes exactly the words splatContainer touched.
func unsplatContainer(w []uint64, c *container) {
	switch c.kind {
	case kindArray:
		for _, v := range c.arr {
			w[v>>6] = 0
		}
	case kindWords:
		clear(w)
	default:
		for _, r := range c.runs {
			for wi := int(r.start) >> 6; wi <= int(r.last)>>6; wi++ {
				w[wi] = 0
			}
		}
	}
}

// fillRange sets bits [lo, hi) of w.
func fillRange(w []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	first, last := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if first == last {
		w[first] |= loMask & hiMask
		return
	}
	w[first] |= loMask
	for wi := first + 1; wi < last; wi++ {
		w[wi] = ^uint64(0)
	}
	w[last] |= hiMask
}

// cardWithWords counts |c ∧ w| where w is a splatted word view.
func cardWithWords(c *container, w []uint64) int {
	switch c.kind {
	case kindArray:
		return cardArrayWords(c.arr, w)
	case kindWords:
		return cardWords(c.words, w)
	default:
		return cardWordsRuns(w, c.runs)
	}
}

func cardRuns(a, b []runSpan) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := int(a[i].start), int(a[i].last)
		if s := int(b[j].start); s > lo {
			lo = s
		}
		if e := int(b[j].last); e < hi {
			hi = e
		}
		if hi >= lo {
			n += hi - lo + 1
		}
		if a[i].last < b[j].last {
			i++
		} else if a[i].last > b[j].last {
			j++
		} else {
			i++
			j++
		}
	}
	return n
}

// --- materialising intersection kernels ----------------------------

// accSlot is one container-sized accumulator cell: the current result
// container plus reusable backing buffers so chained intersections
// never allocate in steady state. The result of any kernel writing an
// array is bounded by the shorter array input, itself ≤ arrayMaxCard,
// so ownArr's fixed capacity always suffices; ownRuns grows on demand.
type accSlot struct {
	c        container
	ownArr   []uint16
	ownWords []uint64
	ownRuns  []runSpan
}

func (s *accSlot) clear() { s.c = container{} }

func (s *accSlot) arrBuf() []uint16 {
	if s.ownArr == nil {
		s.ownArr = make([]uint16, 0, arrayMaxCard)
	}
	return s.ownArr[:0]
}

func (s *accSlot) wordsBuf() []uint64 {
	if s.ownWords == nil {
		s.ownWords = make([]uint64, containerWords)
	}
	return s.ownWords
}

// intersectInto sets dst.c = a ∧ b using dst's own buffers. dst must
// not be (or share buffers with) a or b.
func intersectInto(dst *accSlot, a, b *container) {
	if a.kind > b.kind {
		a, b = b, a
	}
	switch a.kind {
	case kindArray:
		var out []uint16
		switch b.kind {
		case kindArray:
			out = intoArrays(dst.arrBuf(), a.arr, b.arr)
		case kindWords:
			out = intoArrayWords(dst.arrBuf(), a.arr, b.words)
		default:
			out = intoArrayRuns(dst.arrBuf(), a.arr, b.runs)
		}
		dst.c = container{kind: kindArray, card: len(out), arr: out}
	case kindWords:
		w := dst.wordsBuf()
		var card int
		if b.kind == kindWords {
			card = intoWords(w, a.words, b.words)
		} else {
			card = intoWordsRuns(w, a.words, b.runs)
		}
		dst.c = container{kind: kindWords, card: card, words: w}
	default:
		out, card := intoRuns(dst.ownRuns[:0], a.runs, b.runs)
		dst.ownRuns = out
		dst.c = container{kind: kindRuns, card: card, runs: out}
	}
}

func intoArrays(out, a, b []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return out
	}
	if len(b) >= gallopFactor*len(a)+16 {
		pos := 0
		for _, v := range a {
			pos = gallopSearch(b, pos, v)
			if pos >= len(b) {
				break
			}
			if b[pos] == v {
				out = append(out, v)
				pos++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intoArrayWords(out, arr []uint16, words []uint64) []uint16 {
	for _, v := range arr {
		if words[v>>6]>>uint(v&63)&1 != 0 {
			out = append(out, v)
		}
	}
	return out
}

func intoArrayRuns(out, arr []uint16, runs []runSpan) []uint16 {
	ri := 0
	for _, v := range arr {
		for ri < len(runs) && runs[ri].last < v {
			ri++
		}
		if ri == len(runs) {
			break
		}
		if v >= runs[ri].start {
			out = append(out, v)
		}
	}
	return out
}

func intoWords(dst, a, b []uint64) int {
	card := 0
	_ = dst[containerWords-1]
	_ = a[containerWords-1]
	_ = b[containerWords-1]
	for w := 0; w < containerWords; w++ {
		x := a[w] & b[w]
		dst[w] = x
		card += bits.OnesCount64(x)
	}
	return card
}

// intoWordsRuns masks words down to the run spans: dst is zeroed, then
// each run copies its covered words (runs are disjoint and
// non-adjacent, so interior words belong to exactly one run).
func intoWordsRuns(dst, words []uint64, runs []runSpan) int {
	for w := range dst {
		dst[w] = 0
	}
	card := 0
	for _, r := range runs {
		lo, hi := int(r.start), int(r.last)
		loW, hiW := lo>>6, hi>>6
		loMask := ^uint64(0) << uint(lo&63)
		hiMask := ^uint64(0) >> uint(63-(hi&63))
		if loW == hiW {
			x := words[loW] & loMask & hiMask
			dst[loW] |= x
			card += bits.OnesCount64(x)
			continue
		}
		x := words[loW] & loMask
		dst[loW] |= x
		card += bits.OnesCount64(x)
		for w := loW + 1; w < hiW; w++ {
			dst[w] = words[w]
			card += bits.OnesCount64(words[w])
		}
		x = words[hiW] & hiMask
		dst[hiW] |= x
		card += bits.OnesCount64(x)
	}
	return card
}

func intoRuns(out, a, b []runSpan) ([]runSpan, int) {
	card, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := int(a[i].start), int(a[i].last)
		if s := int(b[j].start); s > lo {
			lo = s
		}
		if e := int(b[j].last); e < hi {
			hi = e
		}
		if hi >= lo {
			out = append(out, runSpan{start: uint16(lo), last: uint16(hi)})
			card += hi - lo + 1
		}
		if a[i].last < b[j].last {
			i++
		} else if a[i].last > b[j].last {
			j++
		} else {
			i++
			j++
		}
	}
	return out, card
}

// --- accumulators ---------------------------------------------------

// RoaringAcc is a reusable intersection accumulator: one accSlot per
// container of the TID universe. The result of an EachIntersection
// visit; valid only during the callback.
type RoaringAcc struct {
	n     int
	slots []accSlot
}

// Card returns the number of TIDs in the accumulated intersection.
func (a *RoaringAcc) Card() int {
	t := 0
	for i := range a.slots {
		t += a.slots[i].c.card
	}
	return t
}

// RangeCount counts intersection TIDs in [lo, hi), mirroring
// Roaring.RangeCount so per-granule slicing works on accumulators.
func (a *RoaringAcc) RangeCount(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > a.n {
		hi = a.n
	}
	if lo >= hi {
		return 0
	}
	total := 0
	for ci := lo >> 16; ci <= (hi-1)>>16 && ci < len(a.slots); ci++ {
		c := &a.slots[ci].c
		if c.card == 0 {
			continue
		}
		base := ci << 16
		l, h := lo-base, hi-base
		if l < 0 {
			l = 0
		}
		if h > containerBits {
			h = containerBits
		}
		if l == 0 && h == containerBits {
			total += c.card
			continue
		}
		total += c.rangeCount(l, h)
	}
	return total
}

// setItemView makes the accumulator a borrowed read-only view of one
// item's containers (the k == 1 case). Slot buffers are untouched.
func (a *RoaringAcc) setItemView(r *Roaring) {
	for ci := range a.slots {
		if c := r.cs[ci]; c != nil {
			a.slots[ci].c = *c
		} else {
			a.slots[ci].clear()
		}
	}
}

// intersectItems sets dst = a ∧ b for two item bitmaps.
func (dst *RoaringAcc) intersectItems(a, b *Roaring) {
	for ci := range dst.slots {
		s := &dst.slots[ci]
		ca, cb := a.cs[ci], b.cs[ci]
		if ca == nil || cb == nil || ca.card == 0 || cb.card == 0 {
			s.clear()
			continue
		}
		intersectInto(s, ca, cb)
	}
}

// intersectAccItem sets dst = src ∧ r. dst and src must be distinct.
func (dst *RoaringAcc) intersectAccItem(src *RoaringAcc, r *Roaring) {
	for ci := range dst.slots {
		s := &dst.slots[ci]
		ca := &src.slots[ci].c
		cb := r.cs[ci]
		if ca.card == 0 || cb == nil || cb.card == 0 {
			s.clear()
			continue
		}
		intersectInto(s, ca, cb)
	}
}

// --- the index ------------------------------------------------------

// RoaringIndex is the compressed counterpart of BitmapIndex: one
// Roaring bitmap per item, the same prefix-reuse intersection chain,
// plus a batched container-major counting path. Immutable after
// construction; scratch accumulators are pooled per goroutine.
type RoaringIndex struct {
	n       int
	nc      int // containers per bitmap
	bits    map[itemset.Item]*Roaring
	empty   *Roaring // shared all-zero bitmap for absent items
	setBits int64
	scratch sync.Pool // *roaringScratch
}

// NewRoaringIndex ingests src once, assigning transaction IDs in scan
// order; keep filters indexed items exactly like NewBitmapIndex.
func NewRoaringIndex(src Source, keep map[itemset.Item]bool) *RoaringIndex {
	n := src.Len()
	nc := (n + containerBits - 1) / containerBits
	ix := &RoaringIndex{
		n:     n,
		nc:    nc,
		bits:  make(map[itemset.Item]*Roaring),
		empty: &Roaring{n: n, cs: make([]*container, nc)},
	}
	row := 0
	src.ForEach(func(tx itemset.Set) {
		if row >= n {
			return // defensive: source delivered more rows than Len()
		}
		for _, x := range tx {
			if keep != nil && !keep[x] {
				continue
			}
			r := ix.bits[x]
			if r == nil {
				r = &Roaring{n: n, cs: make([]*container, nc)}
				ix.bits[x] = r
			}
			r.add(row)
			ix.setBits++
		}
		row++
	})
	for _, r := range ix.bits {
		r.finalize()
	}
	return ix
}

// N returns the number of transactions indexed.
func (ix *RoaringIndex) N() int { return ix.n }

// Items returns the number of distinct items indexed.
func (ix *RoaringIndex) Items() int { return len(ix.bits) }

// ItemBits returns x's compressed bitmap, or a shared empty bitmap when
// x never occurred (or was filtered at ingest).
func (ix *RoaringIndex) ItemBits(x itemset.Item) *Roaring { return ix.itemBits(x) }

func (ix *RoaringIndex) itemBits(x itemset.Item) *Roaring {
	if r := ix.bits[x]; r != nil {
		return r
	}
	return ix.empty
}

// roaringScratch is the pooled per-goroutine working set: one
// accumulator per intersection-chain level, the per-run last-item
// directory used by the batched counting path, and a container-sized
// word buffer the batched path splats shared prefix containers into
// (see countInto). The buffer is all-zero between uses.
type roaringScratch struct {
	accs  []*RoaringAcc
	last  []*Roaring
	words []uint64
}

func (sc *roaringScratch) wordBuf() []uint64 {
	if sc.words == nil {
		sc.words = make([]uint64, containerWords)
	}
	return sc.words
}

func (ix *RoaringIndex) getScratch(levels int) *roaringScratch {
	sc, _ := ix.scratch.Get().(*roaringScratch)
	if sc == nil {
		sc = &roaringScratch{}
	}
	for len(sc.accs) < levels {
		sc.accs = append(sc.accs, &RoaringAcc{n: ix.n, slots: make([]accSlot, ix.nc)})
	}
	return sc
}

// EachIntersection visits the compressed intersection of every
// candidate, in order, with the same contract as
// BitmapIndex.EachIntersection: one shared length k ≥ 1, canonical
// sorted order, prefix intersections reused across a same-prefix run.
// The accumulator passed to fn is scratch, valid only during the call.
func (ix *RoaringIndex) EachIntersection(cands []itemset.Set, fn func(i int, acc *RoaringAcc)) {
	if len(cands) == 0 {
		return
	}
	k := len(cands[0])
	levels := k - 1
	if levels < 1 {
		levels = 1
	}
	sc := ix.getScratch(levels)
	defer ix.scratch.Put(sc)
	if k == 1 {
		view := sc.accs[0]
		for i, c := range cands {
			view.setItemView(ix.itemBits(c[0]))
			fn(i, view)
		}
		return
	}
	accs := sc.accs
	var prev itemset.Set
	for i, c := range cands {
		shared := 0
		for shared < len(prev) && c[shared] == prev[shared] {
			shared++
		}
		// accs[j-1] involves items [0..j]: valid while j+1 ≤ shared.
		j := shared
		if j < 1 {
			j = 1
		}
		for ; j < k; j++ {
			if j == 1 {
				accs[0].intersectItems(ix.itemBits(c[0]), ix.itemBits(c[1]))
			} else {
				accs[j-1].intersectAccItem(accs[j-2], ix.itemBits(c[j]))
			}
		}
		fn(i, accs[k-2])
		prev = c
	}
}

// CountSets returns the support count of every candidate. Candidates
// must share one length and be sorted (see EachIntersection). Counting
// is container-major: each maximal same-(k-1)-prefix run builds its
// prefix intersection once, then walks containers outer and candidates
// inner, so one prefix container stays hot while every candidate's
// last item intersects against it.
func (ix *RoaringIndex) CountSets(cands []itemset.Set) []int {
	counts := make([]int, len(cands))
	ix.countInto(cands, counts)
	return counts
}

func (ix *RoaringIndex) countInto(cands []itemset.Set, counts []int) {
	if len(cands) == 0 {
		return
	}
	k := len(cands[0])
	if k == 1 {
		for i, c := range cands {
			counts[i] = ix.itemBits(c[0]).card
		}
		return
	}
	levels := k - 2 // prefix chain only; the last item never materialises
	if levels < 1 {
		levels = 1
	}
	sc := ix.getScratch(levels)
	defer ix.scratch.Put(sc)
	var prevPrefix itemset.Set
	lo := 0
	for lo < len(cands) {
		hi := lo + 1
		for hi < len(cands) && samePrefixK1(cands[lo], cands[hi]) {
			hi++
		}
		run := cands[lo:hi]
		last := sc.last[:0]
		for _, c := range run {
			last = append(last, ix.itemBits(c[k-1]))
		}
		sc.last = last
		prefix := run[0][:k-1]
		if k >= 3 {
			shared := 0
			for shared < len(prevPrefix) && prefix[shared] == prevPrefix[shared] {
				shared++
			}
			j := shared
			if j < 1 {
				j = 1
			}
			for ; j < k-1; j++ {
				if j == 1 {
					sc.accs[0].intersectItems(ix.itemBits(prefix[0]), ix.itemBits(prefix[1]))
				} else {
					sc.accs[j-1].intersectAccItem(sc.accs[j-2], ix.itemBits(prefix[j]))
				}
			}
		}
		prevPrefix = prefix
		var p0 *Roaring
		if k == 2 {
			p0 = ix.itemBits(prefix[0])
		}
		out := counts[lo:hi]
		for ci := 0; ci < ix.nc; ci++ {
			var pc *container
			if k == 2 {
				pc = p0.cs[ci]
				if pc == nil || pc.card == 0 {
					continue
				}
			} else {
				s := &sc.accs[k-3].slots[ci]
				if s.c.card == 0 {
					continue
				}
				pc = &s.c
			}
			// A long enough run amortises splatting the shared prefix
			// container into a word buffer, making every candidate probe
			// a branchless bit test instead of a data-dependent merge.
			if len(run) >= splatRunLen && pc.kind != kindWords {
				w := sc.wordBuf()
				splatContainer(w, pc)
				for i := range run {
					if cb := last[i].cs[ci]; cb != nil && cb.card > 0 {
						out[i] += cardWithWords(cb, w)
					}
				}
				unsplatContainer(w, pc)
				continue
			}
			for i := range run {
				if cb := last[i].cs[ci]; cb != nil && cb.card > 0 {
					out[i] += intersectCard(pc, cb)
				}
			}
		}
		lo = hi
	}
}

// CountSetsParallel is CountSets fanned out over a worker pool, with
// chunks aligned to prefix-run boundaries so no run pays its prefix
// intersection twice. Workers write disjoint output ranges, so the
// result is identical to the sequential count.
func (ix *RoaringIndex) CountSetsParallel(cands []itemset.Set, workers int) []int {
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return ix.CountSets(cands)
	}
	counts := make([]int, len(cands))
	chunks := PrefixRunChunks(cands, workers)
	if len(chunks) <= 1 {
		ix.countInto(cands, counts)
		return counts
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ix.countInto(cands[lo:hi], counts[lo:hi])
		}(ch[0], ch[1])
	}
	wg.Wait()
	return counts
}
