package apriori

import (
	"fmt"
	"strings"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
)

// Backend selects the support-counting strategy of the level-wise
// miner. The zero value is BackendAuto.
type Backend int

const (
	// BackendAuto picks hash tree or bitmap per run from the data
	// shape (see ChooseAuto).
	BackendAuto Backend = iota
	// BackendNaive tests every candidate against every transaction; it
	// is the reference the others are property-tested against.
	BackendNaive
	// BackendHashTree is the classic Apriori hash tree: one pass per
	// level over the transactions, visiting only plausible candidates.
	BackendHashTree
	// BackendBitmap is the vertical representation: per-item TID
	// bitmaps intersected with word-parallel AND + popcount.
	BackendBitmap
	// BackendRoaring is the compressed vertical representation:
	// per-item roaring bitmaps (array / bitmap / run containers)
	// intersected per container pair, with batched container-major
	// counting over same-prefix candidate runs.
	BackendRoaring
)

// Valid reports whether b names a known backend.
func (b Backend) Valid() bool { return b >= BackendAuto && b <= BackendRoaring }

// String returns the flag-friendly name.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendNaive:
		return "naive"
	case BackendHashTree:
		return "hashtree"
	case BackendBitmap:
		return "bitmap"
	case BackendRoaring:
		return "roaring"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a backend name as used by the -backend CLI flag.
// The empty string means auto.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return BackendAuto, nil
	case "naive":
		return BackendNaive, nil
	case "hashtree", "tree":
		return BackendHashTree, nil
	case "bitmap", "vertical", "eclat":
		return BackendBitmap, nil
	case "roaring", "compressed":
		return BackendRoaring, nil
	}
	return 0, fmt.Errorf("apriori: unknown counting backend %q (want auto, naive, hashtree, bitmap or roaring)", s)
}

// maxBitmapBytes caps the memory the cost model will spend on a flat
// bitmap index before ruling that backend out.
const maxBitmapBytes = 512 << 20

// Counter counts the support of one level of equal-length candidates
// against a fixed transaction source. Mine builds one Counter per run
// and calls CountLevel once per level, so a backend can amortise work
// across levels — the bitmap backend ingests the source into its index
// on first use and never rescans.
type Counter interface {
	// CountLevel returns one support count per candidate. All
	// candidates have length k and arrive in canonical sorted order.
	CountLevel(cands []itemset.Set, k int) ([]int, error)
}

type naiveCounter struct{ src Source }

func (c naiveCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	return CountSetsNaive(c.src, cands), nil
}

type hashTreeCounter struct {
	src          Source
	fanout, leaf int
}

func (c hashTreeCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	tree, err := NewHashTree(cands, k, c.fanout, c.leaf)
	if err != nil {
		return nil, err
	}
	c.src.ForEach(tree.Add)
	out := make([]int, len(tree.counts))
	copy(out, tree.counts)
	return out, nil
}

type bitmapCounter struct {
	src     Source
	keep    map[itemset.Item]bool
	workers int

	once sync.Once
	ix   *BitmapIndex
}

func (c *bitmapCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	c.once.Do(func() { c.ix = NewBitmapIndex(c.src, c.keep) })
	return c.ix.CountSetsParallel(cands, c.workers), nil
}

type roaringCounter struct {
	src     Source
	keep    map[itemset.Item]bool
	workers int

	once sync.Once
	ix   *RoaringIndex
}

func (c *roaringCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	c.once.Do(func() { c.ix = NewRoaringIndex(c.src, c.keep) })
	return c.ix.CountSetsParallel(cands, c.workers), nil
}

// resolvedBackend maps the configured backend through the legacy
// NaiveCounting flag.
func (c Config) resolvedBackend() Backend {
	if c.Backend != BackendAuto {
		return c.Backend
	}
	if c.NaiveCounting {
		return BackendNaive
	}
	return BackendAuto
}

// newCounter builds the counter for src given the level-1 result: l1
// carries the frequent 1-itemsets with their counts, from which the
// vertical backends index only items that can appear in a candidate
// and the cost model builds its exact density histogram. The resolved
// backend and the full cost prediction are returned alongside so the
// caller can report both what ran and what the model expected.
func (c Config) newCounter(src Source, l1 []ItemsetCount) (Counter, Backend, *Prediction, error) {
	b := c.resolvedBackend()
	if !b.Valid() {
		return nil, b, nil, fmt.Errorf("apriori: invalid counting backend %d", int(b))
	}
	stats := CountStats{N: src.Len(), Granules: 1}
	for _, ic := range l1 {
		stats.AddItem(ic.Count)
	}
	pred := Predict(stats)
	if b == BackendAuto {
		b = pred.Choice
	} else {
		pred.Choice = b
	}
	switch b {
	case BackendNaive:
		return naiveCounter{src: src}, b, &pred, nil
	case BackendBitmap:
		return &bitmapCounter{src: src, keep: keepItems(l1), workers: c.Workers}, b, &pred, nil
	case BackendRoaring:
		return &roaringCounter{src: src, keep: keepItems(l1), workers: c.Workers}, b, &pred, nil
	default:
		return hashTreeCounter{src: src, fanout: c.Fanout, leaf: c.LeafSize}, b, &pred, nil
	}
}

// keepItems collects the frequent items of a level-1 result, the
// ingest filter of the vertical index builders.
func keepItems(l1 []ItemsetCount) map[itemset.Item]bool {
	keep := make(map[itemset.Item]bool, len(l1))
	for _, ic := range l1 {
		keep[ic.Set[0]] = true
	}
	return keep
}

// NewCounter resolves cfg's backend for src and returns a ready
// counter. Unlike the internal path used by Mine, an auto backend here
// decides from one statistics scan of the source, since no level-1
// result is available yet.
func NewCounter(src Source, cfg Config) (Counter, error) {
	b := cfg.resolvedBackend()
	if !b.Valid() {
		return nil, fmt.Errorf("apriori: invalid counting backend %d", int(b))
	}
	if b == BackendAuto {
		items := make(map[itemset.Item]int)
		src.ForEach(func(tx itemset.Set) {
			for _, x := range tx {
				items[x]++
			}
		})
		stats := CountStats{N: src.Len(), Granules: 1}
		for _, count := range items {
			stats.AddItem(count)
		}
		b, _ = ChooseBackend(stats)
	}
	switch b {
	case BackendNaive:
		return naiveCounter{src: src}, nil
	case BackendBitmap:
		return &bitmapCounter{src: src, workers: cfg.Workers}, nil
	case BackendRoaring:
		return &roaringCounter{src: src, workers: cfg.Workers}, nil
	default:
		return hashTreeCounter{src: src, fanout: cfg.Fanout, leaf: cfg.LeafSize}, nil
	}
}
