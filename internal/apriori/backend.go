package apriori

import (
	"fmt"
	"strings"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
)

// Backend selects the support-counting strategy of the level-wise
// miner. The zero value is BackendAuto.
type Backend int

const (
	// BackendAuto picks hash tree or bitmap per run from the data
	// shape (see ChooseAuto).
	BackendAuto Backend = iota
	// BackendNaive tests every candidate against every transaction; it
	// is the reference the others are property-tested against.
	BackendNaive
	// BackendHashTree is the classic Apriori hash tree: one pass per
	// level over the transactions, visiting only plausible candidates.
	BackendHashTree
	// BackendBitmap is the vertical representation: per-item TID
	// bitmaps intersected with word-parallel AND + popcount.
	BackendBitmap
)

// Valid reports whether b names a known backend.
func (b Backend) Valid() bool { return b >= BackendAuto && b <= BackendBitmap }

// String returns the flag-friendly name.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendNaive:
		return "naive"
	case BackendHashTree:
		return "hashtree"
	case BackendBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a backend name as used by the -backend CLI flag.
// The empty string means auto.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return BackendAuto, nil
	case "naive":
		return BackendNaive, nil
	case "hashtree", "tree":
		return BackendHashTree, nil
	case "bitmap", "vertical", "eclat":
		return BackendBitmap, nil
	}
	return 0, fmt.Errorf("apriori: unknown counting backend %q (want auto, naive, hashtree or bitmap)", s)
}

// maxBitmapBytes caps the memory the auto heuristic will spend on an
// index before falling back to the hash tree.
const maxBitmapBytes = 512 << 20

// ChooseAuto resolves BackendAuto from the shape of the data: n
// transactions holding occurrences total occurrences of nItems distinct
// (frequent) items. A bitmap AND costs O(n/64) per candidate no matter
// how rare its items are, while hash-tree work scales with occurrences;
// bitmaps therefore win unless the data is ultra-sparse (items present
// in fewer than ~1/512 of the transactions on average) or the index
// would not fit comfortably in memory.
func ChooseAuto(n, nItems int, occurrences int64) Backend {
	if n < 64 || nItems == 0 {
		return BackendHashTree
	}
	words := int64((n + 63) / 64)
	if int64(nItems)*words*8 > maxBitmapBytes {
		return BackendHashTree
	}
	density := float64(occurrences) / (float64(nItems) * float64(n))
	if density < 1.0/512 {
		return BackendHashTree
	}
	return BackendBitmap
}

// Counter counts the support of one level of equal-length candidates
// against a fixed transaction source. Mine builds one Counter per run
// and calls CountLevel once per level, so a backend can amortise work
// across levels — the bitmap backend ingests the source into its index
// on first use and never rescans.
type Counter interface {
	// CountLevel returns one support count per candidate. All
	// candidates have length k and arrive in canonical sorted order.
	CountLevel(cands []itemset.Set, k int) ([]int, error)
}

type naiveCounter struct{ src Source }

func (c naiveCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	return CountSetsNaive(c.src, cands), nil
}

type hashTreeCounter struct {
	src          Source
	fanout, leaf int
}

func (c hashTreeCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	tree, err := NewHashTree(cands, k, c.fanout, c.leaf)
	if err != nil {
		return nil, err
	}
	c.src.ForEach(tree.Add)
	out := make([]int, len(tree.counts))
	copy(out, tree.counts)
	return out, nil
}

type bitmapCounter struct {
	src     Source
	keep    map[itemset.Item]bool
	workers int

	once sync.Once
	ix   *BitmapIndex
}

func (c *bitmapCounter) CountLevel(cands []itemset.Set, k int) ([]int, error) {
	c.once.Do(func() { c.ix = NewBitmapIndex(c.src, c.keep) })
	return c.ix.CountSetsParallel(cands, c.workers), nil
}

// resolvedBackend maps the configured backend through the legacy
// NaiveCounting flag.
func (c Config) resolvedBackend() Backend {
	if c.Backend != BackendAuto {
		return c.Backend
	}
	if c.NaiveCounting {
		return BackendNaive
	}
	return BackendAuto
}

// newCounter builds the counter for src given the level-1 result: l1
// carries the frequent 1-itemsets with their counts, which the bitmap
// backend uses to index only items that can appear in a candidate and
// the auto heuristic reads for density. The resolved backend is
// returned alongside so the caller can report which one actually ran.
func (c Config) newCounter(src Source, l1 []ItemsetCount) (Counter, Backend, error) {
	b := c.resolvedBackend()
	if !b.Valid() {
		return nil, b, fmt.Errorf("apriori: invalid counting backend %d", int(b))
	}
	if b == BackendAuto {
		var occ int64
		for _, ic := range l1 {
			occ += int64(ic.Count)
		}
		b = ChooseAuto(src.Len(), len(l1), occ)
	}
	switch b {
	case BackendNaive:
		return naiveCounter{src: src}, b, nil
	case BackendBitmap:
		keep := make(map[itemset.Item]bool, len(l1))
		for _, ic := range l1 {
			keep[ic.Set[0]] = true
		}
		return &bitmapCounter{src: src, keep: keep, workers: c.Workers}, b, nil
	default:
		return hashTreeCounter{src: src, fanout: c.Fanout, leaf: c.LeafSize}, b, nil
	}
}

// NewCounter resolves cfg's backend for src and returns a ready
// counter. Unlike the internal path used by Mine, an auto backend here
// decides from one statistics scan of the source, since no level-1
// result is available yet.
func NewCounter(src Source, cfg Config) (Counter, error) {
	b := cfg.resolvedBackend()
	if !b.Valid() {
		return nil, fmt.Errorf("apriori: invalid counting backend %d", int(b))
	}
	if b == BackendAuto {
		items := make(map[itemset.Item]bool)
		var occ int64
		src.ForEach(func(tx itemset.Set) {
			for _, x := range tx {
				items[x] = true
			}
			occ += int64(len(tx))
		})
		b = ChooseAuto(src.Len(), len(items), occ)
	}
	switch b {
	case BackendNaive:
		return naiveCounter{src: src}, nil
	case BackendBitmap:
		return &bitmapCounter{src: src, workers: cfg.Workers}, nil
	default:
		return hashTreeCounter{src: src, fanout: cfg.Fanout, leaf: cfg.LeafSize}, nil
	}
}
