package apriori

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/tarm-project/tarm/internal/itemset"
)

// groceries is the textbook example: bread(0), butter(1), milk(2),
// beer(3), diapers(4).
func groceries() Transactions {
	return Transactions{
		itemset.New(0, 1, 2),
		itemset.New(0, 1, 2),
		itemset.New(0, 1),
		itemset.New(0, 1, 2, 3),
		itemset.New(3, 4),
		itemset.New(3, 4),
		itemset.New(2, 3, 4),
		itemset.New(0, 2),
		itemset.New(1, 2),
		itemset.New(0, 1, 2),
	}
}

func TestMineGroceries(t *testing.T) {
	f, err := Mine(groceries(), Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 10 || f.MinCount != 3 {
		t.Fatalf("N=%d MinCount=%d, want 10,3", f.N, f.MinCount)
	}
	// Hand-computed supports.
	want := map[string]int{
		itemset.New(0).Key():       6,
		itemset.New(1).Key():       6,
		itemset.New(2).Key():       7,
		itemset.New(3).Key():       4,
		itemset.New(4).Key():       3,
		itemset.New(0, 1).Key():    5,
		itemset.New(0, 2).Key():    5,
		itemset.New(1, 2).Key():    5,
		itemset.New(0, 1, 2).Key(): 4,
		itemset.New(3, 4).Key():    3,
	}
	got := make(map[string]int)
	for _, ic := range f.All() {
		got[ic.Set.Key()] = ic.Count
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("frequent itemsets mismatch:\n got %d sets\nwant %d sets", len(got), len(want))
		for _, ic := range f.All() {
			t.Logf("  got %v count %d", ic.Set, ic.Count)
		}
	}
	if f.Support(itemset.New(0, 1, 2)) != 4 {
		t.Errorf("Support({0,1,2}) = %d, want 4", f.Support(itemset.New(0, 1, 2)))
	}
	if f.Support(itemset.New(2, 3)) != 0 {
		t.Errorf("infrequent set reported support %d", f.Support(itemset.New(2, 3)))
	}
	if f.SupportFrac(itemset.New(2)) != 0.7 {
		t.Errorf("SupportFrac({2}) = %v, want 0.7", f.SupportFrac(itemset.New(2)))
	}
}

func TestMineMinCountOverride(t *testing.T) {
	f, err := Mine(groceries(), Config{MinSupport: 0.01, MinCount: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.MinCount != 7 {
		t.Fatalf("MinCount = %d, want 7", f.MinCount)
	}
	if f.TotalItemsets() != 1 || !f.Contains(itemset.New(2)) {
		t.Errorf("only {2} has count >= 7; got %v", f.All())
	}
}

func TestMineMaxK(t *testing.T) {
	f, err := Mine(groceries(), Config{MinSupport: 0.3, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ByK) != 2 {
		t.Fatalf("MaxK=1 produced %d levels", len(f.ByK)-1)
	}
}

func TestMineErrors(t *testing.T) {
	if _, err := Mine(Transactions{}, Config{MinSupport: 0.1}); err != ErrEmptySource {
		t.Errorf("empty source: err = %v, want ErrEmptySource", err)
	}
	if _, err := Mine(groceries(), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Mine(groceries(), Config{MinSupport: 1.5}); err == nil {
		t.Error("MinSupport > 1 accepted")
	}
}

func TestMineNaiveMatchesHashTree(t *testing.T) {
	src := randomTransactions(rand.New(rand.NewSource(7)), 400, 40, 12)
	for _, ms := range []float64{0.01, 0.05, 0.1} {
		a, err := Mine(src, Config{MinSupport: ms})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Mine(src, Config{MinSupport: ms, NaiveCounting: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameFrequent(a, b) {
			t.Errorf("minsup %v: hash tree and naive counting disagree", ms)
		}
	}
}

func sameFrequent(a, b *Frequent) bool {
	if a.TotalItemsets() != b.TotalItemsets() {
		return false
	}
	for _, ic := range a.All() {
		if b.Support(ic.Set) != ic.Count {
			return false
		}
	}
	return true
}

func randomTransactions(r *rand.Rand, n, universe, maxLen int) Transactions {
	txs := make(Transactions, n)
	for i := range txs {
		ln := 1 + r.Intn(maxLen)
		items := make([]itemset.Item, ln)
		for j := range items {
			items[j] = itemset.Item(r.Intn(universe))
		}
		txs[i] = itemset.New(items...)
	}
	return txs
}

func TestHashTreeMatchesNaiveQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		src := randomTransactions(r, 80, 25, 10)
		// Random distinct k-candidates.
		seen := map[string]bool{}
		var cands []itemset.Set
		for len(cands) < 40 {
			items := make([]itemset.Item, k)
			for j := range items {
				items[j] = itemset.Item(r.Intn(25))
			}
			s := itemset.New(items...)
			if s.Len() != k || seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			cands = append(cands, s)
		}
		// Tiny leaves force deep splits; exercise the split paths.
		tree, err := NewHashTree(cands, k, 4, 2)
		if err != nil {
			return false
		}
		src.ForEach(tree.Add)
		naive := CountSetsNaive(src, cands)
		return reflect.DeepEqual(tree.Counts(), naive)
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashTreeReset(t *testing.T) {
	cands := []itemset.Set{itemset.New(0, 1), itemset.New(1, 2)}
	tree, err := NewHashTree(cands, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree.Add(itemset.New(0, 1, 2))
	if tree.Counts()[0] != 1 || tree.Counts()[1] != 1 {
		t.Fatalf("counts = %v", tree.Counts())
	}
	tree.Reset()
	if tree.Counts()[0] != 0 || tree.Counts()[1] != 0 {
		t.Fatalf("Reset left counts %v", tree.Counts())
	}
}

func TestHashTreeRejectsBadCandidates(t *testing.T) {
	if _, err := NewHashTree([]itemset.Set{itemset.New(1)}, 2, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewHashTree(nil, 0, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCountSets(t *testing.T) {
	src := groceries()
	cands := []itemset.Set{itemset.New(0, 1), itemset.New(3, 4), itemset.New(0, 4)}
	counts, err := CountSets(src, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{5, 3, 0}; !reflect.DeepEqual(counts, want) {
		t.Errorf("CountSets = %v, want %v", counts, want)
	}
	empty, err := CountSets(src, nil, 2)
	if err != nil || empty != nil {
		t.Errorf("CountSets(nil candidates) = %v, %v", empty, err)
	}
}

func TestGenerateCandidatesPrune(t *testing.T) {
	// Frequent 2-level: {0,1},{0,2},{1,2},{1,3}. Join gives {0,1,2}
	// (kept: all subsets frequent) and {1,2,3} (pruned: {2,3} missing).
	level := []ItemsetCount{
		{Set: itemset.New(0, 1)},
		{Set: itemset.New(0, 2)},
		{Set: itemset.New(1, 2)},
		{Set: itemset.New(1, 3)},
	}
	got := GenerateCandidates(level)
	if len(got) != 1 || !got[0].Equal(itemset.New(0, 1, 2)) {
		t.Errorf("GenerateCandidates = %v, want [{0,1,2}]", got)
	}
	if GenerateCandidates(level[:1]) != nil {
		t.Error("single itemset produced candidates")
	}
}

func TestGenerateRulesGroceries(t *testing.T) {
	f, err := Mine(groceries(), Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(f, RuleConfig{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Expected single-consequent rules with conf >= 0.8:
	//  {0}=>{1} 5/6, {1}=>{0} 5/6, {1}=>{2} 5/6 are 0.833...
	//  {0,1}=>{2} 4/5 = 0.8, {0,2}=>{1} 4/5, {1,2}=>{0} 4/5
	//  {3}=>{4}? supp({3,4})=3, supp({3})=4 → 0.75 no. {4}=>{3} 3/3 = 1
	//  ({4} has count 3 which meets the ceil(0.3*10)=3 threshold).
	//  {0}=>{2} 5/6, {2}=>{0} 5/7 no, {2}=>{1} 5/7 no.
	wantKeys := map[string]float64{
		ruleKey(itemset.New(4), itemset.New(3)):    1.0,
		ruleKey(itemset.New(0), itemset.New(1)):    5.0 / 6,
		ruleKey(itemset.New(0), itemset.New(2)):    5.0 / 6,
		ruleKey(itemset.New(1), itemset.New(0)):    5.0 / 6,
		ruleKey(itemset.New(1), itemset.New(2)):    5.0 / 6,
		ruleKey(itemset.New(0, 1), itemset.New(2)): 4.0 / 5,
		ruleKey(itemset.New(0, 2), itemset.New(1)): 4.0 / 5,
		ruleKey(itemset.New(1, 2), itemset.New(0)): 4.0 / 5,
	}
	if len(rules) != len(wantKeys) {
		t.Errorf("got %d rules, want %d", len(rules), len(wantKeys))
		for _, r := range rules {
			t.Logf("  %v", r)
		}
	}
	for _, r := range rules {
		conf, ok := wantKeys[r.Key()]
		if !ok {
			t.Errorf("unexpected rule %v", r)
			continue
		}
		if diff := r.Confidence - conf; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rule %v confidence %v, want %v", r, r.Confidence, conf)
		}
		if r.Lift <= 0 {
			t.Errorf("rule %v has non-positive lift", r)
		}
	}
}

func ruleKey(a, c itemset.Set) string { return Rule{Antecedent: a, Consequent: c}.Key() }

func TestGenerateRulesMultiConsequent(t *testing.T) {
	f, err := Mine(groceries(), Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(f, RuleConfig{MinConfidence: 0.5, MaxConsequent: -1})
	if err != nil {
		t.Fatal(err)
	}
	// {0}=>{1,2} has conf 4/6 = 0.667 and must appear with |Y| = 2.
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(itemset.New(0)) && r.Consequent.Equal(itemset.New(1, 2)) {
			found = true
			if r.Confidence < 0.66 || r.Confidence > 0.67 {
				t.Errorf("{0}=>{1,2} confidence %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Error("multi-item consequent rule {0}=>{1,2} not generated")
	}
}

func TestGenerateRulesErrors(t *testing.T) {
	f, _ := Mine(groceries(), Config{MinSupport: 0.3})
	if _, err := GenerateRules(f, RuleConfig{MinConfidence: 1.5}); err == nil {
		t.Error("MinConfidence > 1 accepted")
	}
}

func TestRulesQuickConfidenceBounds(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomTransactions(r, 120, 15, 8)
		f, err := Mine(src, Config{MinSupport: 0.05})
		if err != nil {
			return false
		}
		rules, err := GenerateRules(f, RuleConfig{MinConfidence: 0.4, MaxConsequent: -1})
		if err != nil {
			return false
		}
		for _, rule := range rules {
			if rule.Confidence < 0.4-1e-9 || rule.Confidence > 1+1e-9 {
				return false
			}
			if rule.Support <= 0 || rule.Support > 1 {
				return false
			}
			if rule.Antecedent.Intersect(rule.Consequent).Len() != 0 {
				return false
			}
			// Verify confidence against brute-force counting.
			union := rule.Antecedent.Union(rule.Consequent)
			nu, na := 0, 0
			src.ForEach(func(tx itemset.Set) {
				if tx.ContainsAll(union) {
					nu++
				}
				if tx.ContainsAll(rule.Antecedent) {
					na++
				}
			})
			if nu != rule.Count {
				return false
			}
			if got := float64(nu) / float64(na); got-rule.Confidence > 1e-9 || rule.Confidence-got > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestFuncSource(t *testing.T) {
	txs := groceries()
	fs := FuncSource{N: txs.Len(), Scan: func(fn func(itemset.Set)) {
		for _, tx := range txs {
			fn(tx)
		}
	}}
	f1, err := Mine(fs, Config{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := Mine(txs, Config{MinSupport: 0.3})
	if !sameFrequent(f1, f2) {
		t.Error("FuncSource and Transactions disagree")
	}
}

func TestDefaultFanoutScales(t *testing.T) {
	cases := []struct {
		n, k     int
		min, max int
	}{
		{0, 2, 8, 8},
		{100, 2, 8, 8},
		{30000, 2, 40, 50},       // ~sqrt(30000/16) ≈ 43
		{30000, 3, 8, 14},        // cube root ≈ 12.3
		{1 << 30, 1, 2048, 2048}, // clamped
	}
	for _, c := range cases {
		got := defaultFanout(c.n, c.k)
		if got < c.min || got > c.max {
			t.Errorf("defaultFanout(%d,%d) = %d, want in [%d,%d]", c.n, c.k, got, c.min, c.max)
		}
	}
}

func TestHashTreeLargeCandidateSetMatchesNaive(t *testing.T) {
	// A large candidate set exercises the adaptive fanout path.
	r := rand.New(rand.NewSource(99))
	src := randomTransactions(r, 150, 200, 12)
	seen := map[string]bool{}
	var cands []itemset.Set
	for len(cands) < 3000 {
		a, b := itemset.Item(r.Intn(200)), itemset.Item(r.Intn(200))
		if a == b {
			continue
		}
		s := itemset.New(a, b)
		if seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		cands = append(cands, s)
	}
	got, err := CountSets(src, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := CountSetsNaive(src, cands)
	if !reflect.DeepEqual(got, want) {
		t.Error("adaptive-fanout tree disagrees with naive counting")
	}
}
