// Package apriori implements the classic level-wise association-rule
// miner of Agrawal & Srikant (VLDB'94): candidate generation by prefix
// join with subset pruning, support counting with a hash tree, and
// confidence-based rule generation.
//
// In this repository Apriori plays two roles: it is the *traditional*,
// time-agnostic baseline the paper compares against, and its counting
// machinery is the kernel the temporal miners in internal/core run once
// per time granule.
package apriori

import "github.com/tarm-project/tarm/internal/itemset"

// Source is a scannable collection of transactions. A miner may scan a
// source several times (once per level), so ForEach must be repeatable
// and deliver transactions in a stable order.
type Source interface {
	// Len returns the number of transactions.
	Len() int
	// ForEach calls fn once per transaction. Implementations must pass
	// canonical itemsets (sorted, duplicate-free); fn must not retain
	// the slice beyond the call.
	ForEach(fn func(tx itemset.Set))
}

// Transactions is an in-memory Source.
type Transactions []itemset.Set

// Len implements Source.
func (t Transactions) Len() int { return len(t) }

// ForEach implements Source.
func (t Transactions) ForEach(fn func(tx itemset.Set)) {
	for _, tx := range t {
		fn(tx)
	}
}

// FuncSource adapts a scan function into a Source; used by the
// temporal database to expose granule-restricted views without copying.
type FuncSource struct {
	N    int
	Scan func(fn func(tx itemset.Set))
}

// Len implements Source.
func (f FuncSource) Len() int { return f.N }

// ForEach implements Source.
func (f FuncSource) ForEach(fn func(tx itemset.Set)) { f.Scan(fn) }
