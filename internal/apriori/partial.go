package apriori

import "github.com/tarm-project/tarm/internal/itemset"

// LevelCounter counts one fixed candidate level over a sequence of
// sub-sources. It is the partial-rebuild entry point: incremental
// hold-table maintenance recounts a handful of dirty granules (and,
// for newly frequent itemsets, the clean remainder) instead of the
// whole span, and wants the hash tree built once per level rather than
// once per granule. Count may be called any number of times; the tree
// is reset between sources.
type LevelCounter struct {
	tree *HashTree
	n    int
}

// NewLevelCounter builds the hash tree for one candidate level of
// k-itemsets. The candidate order is preserved: Count returns counts
// indexed like cands.
func NewLevelCounter(cands []itemset.Set, k int) (*LevelCounter, error) {
	tree, err := NewHashTree(cands, k, 0, 0)
	if err != nil {
		return nil, err
	}
	return &LevelCounter{tree: tree, n: len(cands)}, nil
}

// Count scans src once and returns each candidate's support count in
// it, then resets the tree for the next source. The returned slice is
// owned by the caller.
func (c *LevelCounter) Count(src Source) []int {
	src.ForEach(c.tree.Add)
	out := make([]int, c.n)
	copy(out, c.tree.Counts())
	c.tree.Reset()
	return out
}

// MapCounter counts one candidate level by enumerating each
// transaction's k-subsets against a candidate hash map. Construction is
// one map insert per candidate — no tree nodes — which makes it the
// right counter when the source is a few dirty granules: the hash
// tree's build cost would dwarf the scan.
type MapCounter struct {
	idx map[string]int
	k   int
	n   int
}

// NewMapCounter indexes one candidate level of k-itemsets. Candidate
// order is preserved: Count returns counts indexed like cands.
func NewMapCounter(cands []itemset.Set, k int) *MapCounter {
	idx := make(map[string]int, len(cands))
	for i, c := range cands {
		idx[c.Key()] = i
	}
	return &MapCounter{idx: idx, k: k, n: len(cands)}
}

// Count scans src once and returns each candidate's support count. The
// cost is C(|tx|, k) per transaction, so callers should prefer the
// hash tree for large sources or deep levels.
func (c *MapCounter) Count(src Source) []int {
	counts := make([]int, c.n)
	chosen := make(itemset.Set, c.k)
	buf := make([]byte, 0, 4*c.k)
	var rec func(tx itemset.Set, start, depth int)
	rec = func(tx itemset.Set, start, depth int) {
		if depth == c.k {
			buf = chosen.AppendKey(buf[:0])
			if i, ok := c.idx[string(buf)]; ok {
				counts[i]++
			}
			return
		}
		for i := start; i <= len(tx)-(c.k-depth); i++ {
			chosen[depth] = tx[i]
			rec(tx, i+1, depth+1)
		}
	}
	src.ForEach(func(tx itemset.Set) {
		if len(tx) >= c.k {
			rec(tx, 0, 0)
		}
	})
	return counts
}
