package apriori

import "math/bits"

// The counting cost model. BackendAuto used to be a single hard-coded
// density cutoff (items present in < 1/512 of transactions → hash
// tree, else bitmap); with four backends that one number cannot rank
// them. Instead the resolver summarises the table into CountStats —
// n, item cardinality, a per-item density histogram and the granule
// count — predicts an abstract per-run cost for every backend in
// "word-op" units (one uint64 AND+POPCNT ≈ 1), and picks the argmin.
// The prediction and the observed counting time both surface in
// EXPLAIN and as counting_* metrics, so a wrong pick is visible, not
// silent.

// densityBuckets is the number of octave buckets in the density
// histogram: bucket b holds items with density in (2^-(b+1), 2^-b],
// the last bucket everything sparser than 2^-densityBuckets.
const densityBuckets = 16

// CountStats summarises the shape of a transaction table for the cost
// model. Populate N (and Granules, if temporal) first, then AddItem
// once per distinct item.
type CountStats struct {
	// N is the number of transactions.
	N int
	// Items is the number of distinct (candidate-eligible) items.
	Items int
	// Occurrences is the total number of item occurrences retained.
	Occurrences int64
	// Granules is the number of time granules the counts are sliced
	// into; 1 (or 0) for non-temporal mining.
	Granules int
	// DensityHist counts items per density octave (see densityBuckets).
	DensityHist [densityBuckets]int
}

// AddItem records one distinct item occurring count times, updating
// Items, Occurrences and the density histogram. N must be set first.
func (s *CountStats) AddItem(count int) {
	s.Items++
	s.Occurrences += int64(count)
	s.DensityHist[densityBucket(count, s.N)]++
}

// densityBucket maps an item count to its octave bucket: 0 for density
// > 1/2, b for density in (2^-(b+1), 2^-b], clamped to the last bucket.
func densityBucket(count, n int) int {
	if count <= 0 || n <= 0 {
		return densityBuckets - 1
	}
	if count > n {
		count = n
	}
	b := bits.Len(uint(n/count)) - 1
	if b >= densityBuckets {
		b = densityBuckets - 1
	}
	return b
}

// CountCost is one backend's predicted cost in word-op units.
type CountCost struct {
	Backend Backend
	Cost    float64
}

// Prediction is the cost model's output for one mining run: the stats
// it read, the backend it picked, and every backend's predicted cost.
type Prediction struct {
	Stats  CountStats
	Choice Backend
	Costs  []CountCost
}

// Cost returns b's predicted cost, or 0 if b was not costed.
func (p *Prediction) Cost(b Backend) float64 {
	if p == nil {
		return 0
	}
	for _, c := range p.Costs {
		if c.Backend == b {
			return c.Cost
		}
	}
	return 0
}

// nominalCandidateLoad estimates the total candidates a run will count
// across levels. The true count is unknowable before mining; since it
// multiplies every backend's per-candidate term identically, ranking
// only needs a common plausible scale. Twice the frequent-item count
// approximates the post-prune level-2 load that dominates most runs.
func nominalCandidateLoad(items int) float64 {
	c := 2 * items
	if c < 1 {
		c = 1
	}
	return float64(c)
}

// PredictCosts predicts each backend's cost for a run over a table
// shaped like s. Units are abstract word-ops; only ratios matter.
func PredictCosts(s CountStats) []CountCost {
	n := float64(s.N)
	if n < 1 {
		n = 1
	}
	words := float64((s.N + 63) / 64)
	meanLen := float64(s.Occurrences) / n
	if meanLen < 1 {
		meanLen = 1
	}
	granules := float64(s.Granules)
	if granules < 1 {
		granules = 1
	}
	cands := nominalCandidateLoad(s.Items)

	// naive: every candidate × every transaction, a subset probe
	// costing ~mean transaction length each.
	naive := cands * n * meanLen

	// hashtree: one pass per level over the transactions; each
	// transaction of length t hashes ~t²/2 item pairs down the tree at
	// the dominant level 2, plus leaf probes ~t per visited leaf.
	hashtree := n * meanLen * (meanLen/2 + 4)

	// bitmap: flat AND+POPCNT over the full universe per candidate —
	// density-blind — plus the index build (one pass to set bits, one
	// allocation-and-clear per item bitmap). Slicing per-granule counts
	// reads the intersection a second time.
	sliceFactor := 1.0
	if s.Granules > 1 {
		sliceFactor = 2.0
	}
	bitmap := cands*words*sliceFactor + float64(s.Occurrences) + float64(s.Items)*words
	if float64(s.Items)*words*8 > maxBitmapBytes {
		bitmap = inf()
	}

	// roaring: per-candidate cost follows the sparser operand of each
	// container pair — ~3 ops per element of the smaller side for
	// array kernels, capped by the word-AND cost for dense pairs. The
	// expectation is taken over the density histogram (an item pair
	// drawn per the per-item distribution), plus ~1 op per granule for
	// count slicing and a build of ~2 ops per occurrence.
	roaring := cands*(expectedPairCost(&s, n, words)+granules) +
		2*float64(s.Occurrences)

	return []CountCost{
		{BackendNaive, naive},
		{BackendHashTree, hashtree},
		{BackendBitmap, bitmap},
		{BackendRoaring, roaring},
	}
}

func inf() float64 { return 1e308 }

// expectedPairCost is the density-histogram expectation of one
// candidate intersection's cost under the roaring kernels.
func expectedPairCost(s *CountStats, n, words float64) float64 {
	if s.Items == 0 {
		return words
	}
	total := float64(s.Items)
	cost := 0.0
	for b1, c1 := range s.DensityHist {
		if c1 == 0 {
			continue
		}
		d1 := bucketDensity(b1)
		for b2, c2 := range s.DensityHist {
			if c2 == 0 {
				continue
			}
			d2 := bucketDensity(b2)
			dmin := d1
			if d2 < dmin {
				dmin = d2
			}
			pair := 3 * dmin * n
			if pair > words {
				pair = words
			}
			w := (float64(c1) / total) * (float64(c2) / total)
			cost += w * pair
		}
	}
	return cost
}

// bucketDensity is the representative density of octave bucket b: the
// geometric midpoint of (2^-(b+1), 2^-b].
func bucketDensity(b int) float64 {
	d := 1.0
	for i := 0; i <= b; i++ {
		d /= 2
	}
	return d * 1.414
}

// ChooseBackend picks the cheapest backend for a table shaped like s
// and returns every backend's predicted cost alongside. Tiny inputs
// (n < 64) and empty item sets short-circuit to the hash tree — at
// that scale the model's constants dominate and the tree is never a
// bad pick.
func ChooseBackend(s CountStats) (Backend, []CountCost) {
	costs := PredictCosts(s)
	if s.N < 64 || s.Items == 0 {
		return BackendHashTree, costs
	}
	best := costs[0]
	for _, c := range costs[1:] {
		// naive is the property-test reference, never an auto pick.
		if c.Backend == BackendNaive {
			continue
		}
		if c.Cost < best.Cost || best.Backend == BackendNaive {
			best = c
		}
	}
	return best.Backend, costs
}

// Predict runs the cost model and packages the full prediction.
func Predict(s CountStats) Prediction {
	choice, costs := ChooseBackend(s)
	return Prediction{Stats: s, Choice: choice, Costs: costs}
}

// statsFromMean builds a CountStats whose histogram puts every item at
// the mean density — what legacy callers with only aggregate counts
// can provide.
func statsFromMean(n, nItems int, occurrences int64, granules int) CountStats {
	s := CountStats{N: n, Granules: granules}
	if nItems > 0 {
		mean := int(occurrences / int64(nItems))
		for i := 0; i < nItems; i++ {
			s.AddItem(mean)
		}
	}
	return s
}

// ChooseAuto resolves BackendAuto from aggregate shape alone: n
// transactions holding occurrences total occurrences of nItems
// distinct (frequent) items. It is the legacy entry point, retained
// for callers without per-item counts: the cost model runs on a
// flat histogram at the mean density.
func ChooseAuto(n, nItems int, occurrences int64) Backend {
	b, _ := ChooseBackend(statsFromMean(n, nItems, occurrences, 1))
	return b
}
