package apriori

import (
	"math/bits"
	"sync"

	"github.com/tarm-project/tarm/internal/itemset"
)

// BitmapIndex is the vertical (Eclat-style) transaction representation:
// one TID bitmap per item, one bit per transaction, packed into uint64
// words. A candidate k-itemset is counted by intersecting its items'
// bitmaps and popcounting the result, which turns support counting into
// word-parallel AND + POPCNT instead of a per-transaction subset walk.
//
// The index is built once per mining run (one scan of the source) and
// then serves every level; it is immutable after construction, so any
// number of goroutines may count against it concurrently.
type BitmapIndex struct {
	n     int
	words int
	bits  map[itemset.Item][]uint64
	zero  []uint64 // shared all-zero bitmap for items absent from the index
	// setBits is the total number of set bits across all item bitmaps
	// (= retained item occurrences); used by density diagnostics.
	setBits int64
	// scratch pools per-goroutine accumulator rows so EachIntersection
	// allocates nothing in steady state.
	scratch sync.Pool // *bitmapScratch
}

// bitmapScratch is the pooled accumulator of one intersection chain:
// row d holds the intersection of a candidate's items [0..d+1].
type bitmapScratch struct{ acc [][]uint64 }

func (ix *BitmapIndex) getScratch(levels int) *bitmapScratch {
	sc, _ := ix.scratch.Get().(*bitmapScratch)
	if sc == nil {
		sc = &bitmapScratch{}
	}
	for len(sc.acc) < levels {
		sc.acc = append(sc.acc, make([]uint64, ix.words))
	}
	return sc
}

// NewBitmapIndex ingests src once, assigning transaction IDs in scan
// order. keep == nil indexes every item; otherwise only items with
// keep[x] get a bitmap — the level-wise miner passes its frequent
// 1-itemsets, since an infrequent item can never appear in a candidate.
func NewBitmapIndex(src Source, keep map[itemset.Item]bool) *BitmapIndex {
	n := src.Len()
	words := (n + 63) / 64
	ix := &BitmapIndex{
		n:     n,
		words: words,
		bits:  make(map[itemset.Item][]uint64),
		zero:  make([]uint64, words),
	}
	row := 0
	src.ForEach(func(tx itemset.Set) {
		if row >= n {
			return // defensive: source delivered more rows than Len()
		}
		for _, x := range tx {
			if keep != nil && !keep[x] {
				continue
			}
			b := ix.bits[x]
			if b == nil {
				b = make([]uint64, words)
				ix.bits[x] = b
			}
			b[row>>6] |= 1 << uint(row&63)
			ix.setBits++
		}
		row++
	})
	return ix
}

// N returns the number of transactions indexed.
func (ix *BitmapIndex) N() int { return ix.n }

// Words returns the number of uint64 words per item bitmap.
func (ix *BitmapIndex) Words() int { return ix.words }

// Items returns the number of distinct items indexed.
func (ix *BitmapIndex) Items() int { return len(ix.bits) }

// itemBits returns x's bitmap, or the shared zero bitmap when x never
// occurred (or was filtered at ingest).
func (ix *BitmapIndex) itemBits(x itemset.Item) []uint64 {
	if b := ix.bits[x]; b != nil {
		return b
	}
	return ix.zero
}

// andInto sets dst = a & b, word by word.
func andInto(dst, a, b []uint64) {
	_ = dst[len(a)-1] // eliminate bounds checks in the loop
	for w := range a {
		dst[w] = a[w] & b[w]
	}
}

// popcount counts the set bits of a whole bitmap.
func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// PopcountRange counts the set bits of words in bit positions [lo, hi).
// The temporal miners use it to slice one intersection into per-granule
// counts: granules cover contiguous transaction-ID ranges, so a single
// AND pass serves every granule.
func PopcountRange(words []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-((hi-1)&63))
	if loW == hiW {
		return bits.OnesCount64(words[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(words[loW] & loMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(words[w])
	}
	return n + bits.OnesCount64(words[hiW]&hiMask)
}

// EachIntersection visits the TID-bitmap intersection of every
// candidate, in order. All candidates must share one length k ≥ 1 and
// arrive sorted in canonical order: sorting maximises prefix reuse —
// the (k-1)-prefix intersection computed for one candidate is kept and
// reused for every following candidate that shares the prefix, so a run
// of same-prefix candidates costs a single AND + popcount each. The
// slice passed to fn is scratch, valid only during the call.
func (ix *BitmapIndex) EachIntersection(cands []itemset.Set, fn func(i int, words []uint64)) {
	if len(cands) == 0 {
		return
	}
	k := len(cands[0])
	if k == 1 {
		for i, c := range cands {
			fn(i, ix.itemBits(c[0]))
		}
		return
	}
	// acc[j-1] holds the intersection of the current candidate's items
	// [0..j]; it stays valid while the next candidate shares those
	// first j+1 items. The rows come from a pool, so steady-state calls
	// allocate nothing.
	sc := ix.getScratch(k - 1)
	defer ix.scratch.Put(sc)
	acc := sc.acc
	var prev itemset.Set
	for i, c := range cands {
		shared := 0
		for shared < len(prev) && c[shared] == prev[shared] {
			shared++
		}
		// acc[j-1] involves items [0..j]: valid while j+1 ≤ shared.
		j := shared
		if j < 1 {
			j = 1
		}
		for ; j < k; j++ {
			left := ix.itemBits(c[0])
			if j > 1 {
				left = acc[j-2]
			}
			andInto(acc[j-1], left, ix.itemBits(c[j]))
		}
		fn(i, acc[k-2])
		prev = c
	}
}

// CountSets returns the support count of every candidate. Candidates
// must share one length and be sorted (see EachIntersection).
func (ix *BitmapIndex) CountSets(cands []itemset.Set) []int {
	counts := make([]int, len(cands))
	ix.EachIntersection(cands, func(i int, words []uint64) {
		counts[i] = popcount(words)
	})
	return counts
}

// CountSetsParallel is CountSets fanned out over a worker pool. The
// sorted candidate list is split into contiguous chunks aligned to
// (k-1)-prefix run boundaries — prefix reuse keeps working inside each
// chunk and no run pays its shared prefix intersection twice — and
// workers write disjoint ranges of the output, so the result is
// identical to the sequential count.
func (ix *BitmapIndex) CountSetsParallel(cands []itemset.Set, workers int) []int {
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return ix.CountSets(cands)
	}
	counts := make([]int, len(cands))
	chunks := PrefixRunChunks(cands, workers)
	if len(chunks) <= 1 {
		return ix.CountSets(cands)
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ix.EachIntersection(cands[lo:hi], func(i int, words []uint64) {
				counts[lo+i] = popcount(words)
			})
		}(ch[0], ch[1])
	}
	wg.Wait()
	return counts
}

// samePrefixK1 reports whether a and b share their first len(a)-1
// items — i.e. belong to one (k-1)-prefix run of a sorted same-length
// candidate list.
func samePrefixK1(a, b itemset.Set) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrefixRunChunks splits a sorted same-length candidate list into at
// most workers contiguous [lo, hi) chunks whose boundaries fall on
// (k-1)-prefix run boundaries where possible: a tentative even split
// point advances past any candidates sharing the previous one's
// prefix. A split inside a run would make both workers recompute the
// run's shared prefix intersection. k ≤ 1 candidates have no prefix to
// preserve and split evenly. Runs longer than an even chunk reduce the
// chunk count rather than split.
func PrefixRunChunks(cands []itemset.Set, workers int) [][2]int {
	if len(cands) == 0 {
		return nil
	}
	if workers <= 1 || len(cands[0]) <= 1 {
		chunks := make([][2]int, 0, workers)
		if workers < 1 {
			workers = 1
		}
		chunk := (len(cands) + workers - 1) / workers
		for lo := 0; lo < len(cands); lo += chunk {
			hi := lo + chunk
			if hi > len(cands) {
				hi = len(cands)
			}
			chunks = append(chunks, [2]int{lo, hi})
		}
		return chunks
	}
	chunk := (len(cands) + workers - 1) / workers
	chunks := make([][2]int, 0, workers)
	lo := 0
	for lo < len(cands) {
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		for hi < len(cands) && samePrefixK1(cands[hi-1], cands[hi]) {
			hi++
		}
		chunks = append(chunks, [2]int{lo, hi})
		lo = hi
	}
	return chunks
}
