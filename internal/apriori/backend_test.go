package apriori

import (
	"math/rand"
	"testing"

	"github.com/tarm-project/tarm/internal/itemset"
)

func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"":           BackendAuto,
		"auto":       BackendAuto,
		"naive":      BackendNaive,
		"hashtree":   BackendHashTree,
		"Tree":       BackendHashTree,
		"bitmap":     BackendBitmap,
		"ECLAT":      BackendBitmap,
		"vertical":   BackendBitmap,
		"roaring":    BackendRoaring,
		"ROARING":    BackendRoaring,
		"compressed": BackendRoaring,
	}
	for in, want := range cases {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
	for b := BackendAuto; b <= BackendRoaring; b++ {
		rt, err := ParseBackend(b.String())
		if err != nil || rt != b {
			t.Errorf("round trip of %v failed: %v, %v", b, rt, err)
		}
	}
}

// TestCeilCountBoundaries pins the float-ceiling fix: supports whose
// product with n is integral must not round up one extra transaction.
func TestCeilCountBoundaries(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.15, 20, 3},  // 0.15*20 = 3.0000000000000004 in float64
		{0.07, 100, 7}, // 7.000000000000001
		{0.1, 30, 3},   // 2.9999999999999996
		{0.29, 100, 29},
		{0.3, 10, 3},
		{0.5, 7, 4},
		{0.001, 10, 1}, // floor of 1
		{1, 5, 5},
		{0.333, 3, 1},
	}
	for _, c := range cases {
		if got := CeilCount(c.frac, c.n); got != c.want {
			t.Errorf("CeilCount(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
		cfg := Config{MinSupport: c.frac}
		mc, err := cfg.minCount(c.n)
		if err != nil || mc != c.want {
			t.Errorf("minCount(%v, %d) = %d, %v; want %d", c.frac, c.n, mc, err, c.want)
		}
	}
}

// TestCeilCountEdges pins the contract at the degenerate corners: the
// ≥1 clamp (frac = 0, n = 0), the identity at frac = 1, and
// exact-integer fractions that must not round up.
func TestCeilCountEdges(t *testing.T) {
	cases := []struct {
		name string
		frac float64
		n    int
		want int
	}{
		{"empty population", 0.5, 0, 1},
		{"zero fraction", 0, 100, 1},
		{"zero fraction, empty", 0, 0, 1},
		{"full support small", 1, 1, 1},
		{"full support", 1, 1000, 1000},
		{"full support large", 1, 1 << 30, 1 << 30},
		{"exact quarter", 0.25, 8, 2},
		{"exact half", 0.5, 2, 1},
		{"exact tenth", 0.1, 50, 5},
		{"exact eighth", 0.125, 64, 8},
		{"just above integral", 0.25000001, 8, 3},
		{"just below one item", 0.0001, 5, 1},
	}
	for _, c := range cases {
		if got := CeilCount(c.frac, c.n); got != c.want {
			t.Errorf("%s: CeilCount(%v, %d) = %d, want %d", c.name, c.frac, c.n, got, c.want)
		}
	}
	// minCount rejects out-of-range supports rather than clamping them.
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := (Config{MinSupport: frac}).minCount(10); err == nil {
			t.Errorf("minCount accepted MinSupport %v", frac)
		}
	}
}

func TestBitmapIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var txs Transactions
	for i := 0; i < 300; i++ {
		var items []itemset.Item
		for x := 0; x < 20; x++ {
			if rng.Intn(4) == 0 {
				items = append(items, itemset.Item(x))
			}
		}
		txs = append(txs, itemset.New(items...))
	}
	var cands []itemset.Set
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			for c := b + 1; c < 20; c++ {
				cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c)))
			}
		}
	}
	itemset.SortSets(cands)
	want := CountSetsNaive(txs, cands)
	ix := NewBitmapIndex(txs, nil)
	for _, workers := range []int{1, 4} {
		got := ix.CountSetsParallel(cands, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cand %v: bitmap count %d, naive %d", workers, cands[i], got[i], want[i])
			}
		}
	}
}

func TestPopcountRange(t *testing.T) {
	words := make([]uint64, 4) // 256 bits
	set := map[int]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		b := rng.Intn(256)
		set[b] = true
		words[b>>6] |= 1 << uint(b&63)
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(257)
		hi := rng.Intn(257)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for b := lo; b < hi; b++ {
			if set[b] {
				want++
			}
		}
		if got := PopcountRange(words, lo, hi); got != want {
			t.Fatalf("PopcountRange(%d, %d) = %d, want %d", lo, hi, got, want)
		}
	}
}
