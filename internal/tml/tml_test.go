package tml

import (
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestParseMinimal(t *testing.T) {
	stmt, err := Parse(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Target != TargetRules || stmt.Table != "baskets" {
		t.Errorf("target=%v table=%q", stmt.Target, stmt.Table)
	}
	if stmt.Support != 0.05 || stmt.Confidence != 0.6 {
		t.Errorf("thresholds %v/%v", stmt.Support, stmt.Confidence)
	}
	if stmt.Granularity != timegran.Day || stmt.Limit != -1 || stmt.During != nil {
		t.Errorf("defaults wrong: %+v", stmt)
	}
}

func TestParseFull(t *testing.T) {
	stmt, err := Parse(`
		MINE RULES FROM baskets
		DURING 'month in (jun..aug) and weekday in (sat, sun)'
		AT GRANULARITY day
		THRESHOLD SUPPORT 0.1 CONFIDENCE 0.7 FREQUENCY 0.8
		MAX SIZE 3
		LIMIT 25
	`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.During == nil || stmt.DuringSrc == "" {
		t.Fatal("DURING not parsed")
	}
	if stmt.Frequency != 0.8 || stmt.MaxSize != 3 || stmt.Limit != 25 {
		t.Errorf("options wrong: %+v", stmt)
	}
	// The pattern actually works.
	jul6 := timegran.GranuleOf(time.Date(2024, 7, 6, 0, 0, 0, 0, time.UTC), timegran.Day)
	if !stmt.During.Matches(timegran.Day, jul6) {
		t.Error("parsed DURING pattern does not match a July Saturday")
	}
}

func TestParsePeriodsCyclesCalendars(t *testing.T) {
	p, err := Parse(`MINE PERIODS FROM b AT GRANULARITY week THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN LENGTH 3`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target != TargetPeriods || p.MinLength != 3 || p.Granularity != timegran.Week {
		t.Errorf("%+v", p)
	}
	if p.defaultFrequency() != 0.9 {
		t.Errorf("PERIODS default frequency = %v", p.defaultFrequency())
	}

	c, err := Parse(`MINE CYCLES FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MAX LENGTH 14 MIN REPS 3`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != TargetCycles || c.MaxLength != 14 || c.MinReps != 3 {
		t.Errorf("%+v", c)
	}
	if c.defaultFrequency() != 1 {
		t.Errorf("CYCLES default frequency = %v", c.defaultFrequency())
	}

	cal, err := Parse(`MINE CALENDARS FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN REPS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Target != TargetCalendars || cal.MinReps != 2 {
		t.Errorf("%+v", cal)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT * FROM t`,
		`MINE`,
		`MINE THINGS FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
		`MINE RULES FROM`,
		`MINE RULES FROM b`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1`,
		`MINE RULES FROM b THRESHOLD CONFIDENCE 0.5`,
		`MINE RULES FROM b THRESHOLD SUPPORT 2 CONFIDENCE 0.5`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 LIMIT 2.5`,
		`MINE PERIODS FROM b DURING 'always' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
		`MINE RULES FROM b DURING 'bogus ((' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
		`MINE RULES FROM b DURING always THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
		`MINE RULES FROM b AT GRANULARITY fortnight THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 MIN BANANAS 2`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 MAX BANANAS 2`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 EXTRA`,
		`MINE RULES FROM b THRESHOLD SUPPORT x CONFIDENCE 0.5`,
		`MINE RULES FROM b 'str' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`,
	}
	for _, in := range bad {
		if stmt, err := Parse(in); err == nil {
			t.Errorf("accepted %q as %+v", in, stmt)
		}
	}
}

func TestIsMineStatement(t *testing.T) {
	if !IsMineStatement("  MINE RULES FROM x THRESHOLD SUPPORT .1 CONFIDENCE .5") {
		t.Error("MINE not detected")
	}
	if IsMineStatement("SELECT * FROM mine") {
		t.Error("SELECT misrouted")
	}
	if IsMineStatement("") {
		t.Error("empty input detected as MINE")
	}
}

// fixtureDB builds the 28-day core fixture inside a database with
// named items.
func fixtureDB(t *testing.T) *tdb.DB {
	t.Helper()
	db := tdb.NewMemDB()
	names := []string{"bread", "milk", "bbq", "charcoal", "choc", "wine"}
	ids := make(map[string]uint32, len(names))
	for _, n := range names {
		ids[n] = uint32(db.Dict().Intern(n))
	}
	tbl, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC) // a Monday
	for d := 0; d < 28; d++ {
		at := start.AddDate(0, 0, d)
		weekend := d%7 == 5 || d%7 == 6
		seasonal := d >= 7 && d <= 13
		for i := 0; i < 10; i++ {
			basket := []string{"bread"}
			if i < 8 {
				basket = append(basket, "milk")
			}
			if seasonal {
				basket = append(basket, "bbq", "charcoal")
			}
			if weekend && i < 9 {
				basket = append(basket, "choc", "wine")
			}
			tbl.Append(at.Add(time.Duration(i)*time.Minute), db.Dict().InternAll(basket...))
		}
	}
	return db
}

func TestExecTraditionalRules(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.Exec(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 4 {
		t.Fatalf("cols = %v", res.Cols)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "{bread}" && row[1].AsString() == "{milk}" {
			found = true
			if c := row[3].AsFloat(); c < 0.79 || c > 0.81 {
				t.Errorf("confidence = %v", c)
			}
		}
		if strings.Contains(row[0].AsString(), "bbq") {
			t.Errorf("traditional mining surfaced the seasonal rule: %v", row)
		}
	}
	if !found {
		t.Error("{bread}=>{milk} not found")
	}
}

func TestExecPeriods(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.Exec(`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 MIN LENGTH 2`)
	if err != nil {
		t.Fatal(err)
	}
	foundSeasonal := false
	for _, row := range res.Rows {
		if row[0].AsString() == "{bbq}" && row[1].AsString() == "{charcoal}" {
			foundSeasonal = true
			if row[4].AsString() != "2024-01-08" || row[5].AsString() != "2024-01-14" {
				t.Errorf("seasonal period = %v..%v", row[4], row[5])
			}
		}
	}
	if !foundSeasonal {
		t.Error("seasonal valid period not reported")
	}
}

func TestExecCyclesAndCalendars(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.Exec(`MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 MAX LENGTH 10 MIN REPS 2`)
	if err != nil {
		t.Fatal(err)
	}
	weekendCycles := 0
	for _, row := range res.Rows {
		if row[0].AsString() == "{choc}" && row[1].AsString() == "{wine}" && strings.HasPrefix(row[4].AsString(), "every 7") {
			weekendCycles++
		}
	}
	if weekendCycles != 2 {
		t.Errorf("weekend cycles for {choc}=>{wine} = %d, want 2 (sat, sun)", weekendCycles)
	}

	res, err = ex.Exec(`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 MIN REPS 2`)
	if err != nil {
		t.Fatal(err)
	}
	foundWeekend := false
	for _, row := range res.Rows {
		if row[0].AsString() == "{choc}" && row[4].AsString() == "weekday in (6..7)" {
			foundWeekend = true
		}
	}
	if !foundWeekend {
		t.Error("weekend calendar not reported")
	}
}

func TestExecDuring(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.Exec(`MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "{choc}" && row[1].AsString() == "{wine}" {
			found = true
			if row[5].AsString() != "weekday in (sat, sun)" {
				t.Errorf("during column = %v", row[5])
			}
		}
	}
	if !found {
		t.Error("weekend rule not found during weekends")
	}
}

func TestExecLimit(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.Exec(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.1 CONFIDENCE 0.1 LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("LIMIT 2 returned %d rows", len(res.Rows))
	}
}

func TestExecErrors(t *testing.T) {
	db := fixtureDB(t)
	schema, _ := tdb.NewSchema(tdb.Column{Name: "x", Kind: tdb.KindInt})
	if _, err := db.CreateTable("rel", schema); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(db)
	if _, err := ex.Exec(`MINE RULES FROM nosuch THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := ex.Exec(`MINE RULES FROM rel THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5`); err == nil {
		t.Error("relational table accepted for mining")
	}
	if _, err := ex.Exec(`garbage`); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSessionRoutesBothLanguages(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)

	// SQL side: data understanding over the virtual item view.
	res, err := s.Exec(`SELECT item, COUNT(*) AS n FROM baskets GROUP BY item ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].AsString() != "bread" {
		t.Errorf("SQL result = %v", res.Rows)
	}

	// TML side: ad-hoc mining in the same session.
	res, err = s.Exec(`MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 MAX LENGTH 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("TML result empty")
	}
}
