package tml

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/obs"
)

// TestExplainAndJournalDelta: after an append to a table with a warm
// cache entry, EXPLAIN annotates the hold operator cache=delta and the
// journal records the delta outcome; the statement's rows match a
// cache-disabled (cold) run exactly.
func TestExplainAndJournalDelta(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	ex.Journal = obs.NewJournal(obs.JournalConfig{})
	const input = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0`

	if _, err := ex.Exec(input); err != nil {
		t.Fatal(err)
	}
	// One new day of data lands.
	tbl, _ := db.TxTable("baskets")
	bread := itemset.Item(db.Dict().Intern("bread"))
	milk := itemset.Item(db.Dict().Intern("milk"))
	at := time.Date(2024, 1, 29, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		tbl.Append(at.Add(time.Duration(i)*time.Minute), itemset.New(bread, milk))
	}

	warm := strings.Join(planLines(t, ex, input), "\n")
	if !strings.Contains(warm, "cached-hold (cache=delta") {
		t.Errorf("plan after append does not show the delta path:\n%s", warm)
	}

	stmt, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.ContextWithTrace(context.Background(), obs.NewTrace("delta-1"))
	res, err := ex.ExecStmtContext(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := ex.Journal.Get("delta-1")
	if rec == nil {
		t.Fatal("no journal record")
	}
	if rec.Cache != "delta" {
		t.Errorf("journal cache outcome = %q, want delta", rec.Cache)
	}

	// Bit-identical rows to a cold executor over the same data.
	cold := NewExecutor(db)
	cold.Cache = nil
	want, err := cold.Exec(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("delta rows = %d, cold rows = %d", len(res.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if res.Rows[i][j].AsString() != want.Rows[i][j].AsString() {
				t.Fatalf("row %d col %d: delta %q != cold %q", i, j,
					res.Rows[i][j].AsString(), want.Rows[i][j].AsString())
			}
		}
	}
}
