package tml

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Continuous mining: a SUBSCRIBE MINE statement registers a *standing*
// statement that re-runs when granules close and emits only what
// changed. This file is the transport-free half — the Standing type
// that owns one statement's lifecycle (close detection, cache
// pre-maintenance, re-execution, diffing) and the delta/fold algebra a
// consumer needs to reconstruct the full result from the stream. The
// tarmd server wraps Standings with queues and HTTP; iqms drives them
// inline after each statement.

// Delta kinds. "changed" covers support/confidence/frequency movement
// of a rule whose identity is unchanged.
const (
	DeltaAdded   = "added"
	DeltaRemoved = "removed"
	DeltaChanged = "changed"
)

// RuleDelta is one change to a standing statement's result set.
type RuleDelta struct {
	Kind string `json:"kind"`
	// Key is the row's identity: every display cell except the measure
	// columns (support, confidence, frequency), joined by "\x1f". Two
	// refreshes talk about the same rule iff their keys match.
	Key string `json:"key"`
	// Row is the current display row (added and changed kinds).
	Row []string `json:"row,omitempty"`
	// Prev is the previous display row (removed and changed kinds).
	Prev []string `json:"prev,omitempty"`
}

// measureCol reports whether a result column carries a measure rather
// than identity: measures may move without the rule becoming a
// different rule.
func measureCol(name string) bool {
	switch name {
	case "support", "confidence", "frequency":
		return true
	}
	return false
}

// identityKey joins a row's non-measure cells. The display rendering is
// canonical (it is what clients see), so key equality is cell equality.
func identityKey(cols, row []string) string {
	parts := make([]string, 0, len(row))
	for i, c := range cols {
		if i < len(row) && !measureCol(c) {
			parts = append(parts, row[i])
		}
	}
	return strings.Join(parts, "\x1f")
}

// rowsByKey indexes display rows by identity. Identity collisions
// (impossible for the current renderers, whose non-measure columns are
// unique per row) are disambiguated deterministically so a fold can
// never silently lose a row.
func rowsByKey(cols []string, rows [][]string) map[string][]string {
	m := make(map[string][]string, len(rows))
	for _, r := range rows {
		k := identityKey(cols, r)
		for i := 2; ; i++ {
			if _, dup := m[k]; !dup {
				break
			}
			k = fmt.Sprintf("%s\x1f#%d", identityKey(cols, r), i)
		}
		m[k] = r
	}
	return m
}

// equalRows compares two display rows cell for cell.
func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffRows computes the delta from prev to cur (both keyed by
// identityKey). Emission order is deterministic — removed, then
// changed, then added, each sorted by key — so equal states always
// produce byte-identical streams.
func DiffRows(prev, cur map[string][]string) []RuleDelta {
	var removed, changed, added []RuleDelta
	for k, p := range prev {
		if c, ok := cur[k]; !ok {
			removed = append(removed, RuleDelta{Kind: DeltaRemoved, Key: k, Prev: p})
		} else if !equalRows(p, c) {
			changed = append(changed, RuleDelta{Kind: DeltaChanged, Key: k, Row: c, Prev: p})
		}
	}
	for k, c := range cur {
		if _, ok := prev[k]; !ok {
			added = append(added, RuleDelta{Kind: DeltaAdded, Key: k, Row: c})
		}
	}
	byKey := func(ds []RuleDelta) {
		sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
	}
	byKey(removed)
	byKey(changed)
	byKey(added)
	out := make([]RuleDelta, 0, len(removed)+len(changed)+len(added))
	out = append(out, removed...)
	out = append(out, changed...)
	return append(out, added...)
}

// RuleSet is a folded view of a delta stream: apply every SubUpdate's
// deltas in order, starting from the empty set, and Rows is exactly the
// standing statement's current result. The streaming differential
// oracle compares it against a from-scratch MINE.
type RuleSet struct {
	Cols []string
	Rows map[string][]string
}

// Apply folds one batch of deltas into the set. It is strict: removing
// or changing an unknown key, or adding a present one, means the stream
// was corrupted (or events were dropped) and errors rather than
// papering over it.
func (s *RuleSet) Apply(deltas []RuleDelta) error {
	if s.Rows == nil {
		s.Rows = make(map[string][]string)
	}
	for _, d := range deltas {
		_, present := s.Rows[d.Key]
		switch d.Kind {
		case DeltaAdded:
			if present {
				return fmt.Errorf("tml: delta adds existing key %q", d.Key)
			}
			s.Rows[d.Key] = d.Row
		case DeltaRemoved:
			if !present {
				return fmt.Errorf("tml: delta removes unknown key %q", d.Key)
			}
			delete(s.Rows, d.Key)
		case DeltaChanged:
			if !present {
				return fmt.Errorf("tml: delta changes unknown key %q", d.Key)
			}
			s.Rows[d.Key] = d.Row
		default:
			return fmt.Errorf("tml: unknown delta kind %q", d.Kind)
		}
	}
	return nil
}

// Sorted returns the folded rows ordered by identity key, the canonical
// form both sides of the oracle compare.
func (s *RuleSet) Sorted() [][]string {
	keys := make([]string, 0, len(s.Rows))
	for k := range s.Rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, len(keys))
	for i, k := range keys {
		out[i] = s.Rows[k]
	}
	return out
}

// SubUpdate is one emission of a standing statement: the deltas since
// the previous emission plus the state they advance to.
type SubUpdate struct {
	// ClosedThrough is the last closed granule at emission time (under
	// the stream clock), with its human label.
	ClosedThrough timegran.Granule `json:"closed_through"`
	ClosedLabel   string           `json:"closed_label"`
	// Epoch is the table epoch this refresh is current through: every
	// append up to it is reflected. Consumers compare it with the
	// table's epoch to detect a settled stream.
	Epoch int64 `json:"epoch"`
	// Initial marks the registration snapshot (every rule arrives as
	// "added").
	Initial bool `json:"initial,omitempty"`
	// Rules is the size of the result set after this update.
	Rules  int         `json:"rules"`
	Cols   []string    `json:"cols"`
	Deltas []RuleDelta `json:"deltas"`
}

// Standing is one registered SUBSCRIBE MINE statement. Step — called
// whenever the table may have advanced — detects granule closes via a
// core.CloseTracker over the append stream's clock, pre-maintains the
// hold-table cache from the change log's dirty granules, re-runs the
// statement through the shared executor (plan pipeline, journal and
// metrics included) and returns the delta update, or nil when nothing
// warranted a refresh. Safe for concurrent Step calls (they serialise).
type Standing struct {
	exec *Executor
	stmt *MineStmt
	tbl  *tdb.TxTable

	mu      sync.Mutex
	tracker *core.CloseTracker
	cur     map[string][]string
	cols    []string
	epoch   int64 // table epoch the last refresh was current through
	started bool
}

// NewStanding validates and registers stmt (which must be a SUBSCRIBE
// form) against e's database.
func NewStanding(e *Executor, stmt *MineStmt) (*Standing, error) {
	if !stmt.Subscribe {
		return nil, fmt.Errorf("tml: statement is not a SUBSCRIBE form")
	}
	if stmt.Target == TargetHistory {
		return nil, fmt.Errorf("tml: SUBSCRIBE applies to the discovery targets, not MINE HISTORY")
	}
	tbl, ok := e.db.TxTable(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("tml: no transaction table named %q", stmt.Table)
	}
	return &Standing{
		exec:    e,
		stmt:    stmt,
		tbl:     tbl,
		tracker: core.NewCloseTracker(stmt.Granularity),
	}, nil
}

// Stmt returns the standing statement.
func (s *Standing) Stmt() *MineStmt { return s.stmt }

// Table returns the transaction table the statement mines.
func (s *Standing) Table() *tdb.TxTable { return s.tbl }

// Epoch returns the table epoch the last emitted update was current
// through (0 before the first).
func (s *Standing) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Step advances the subscription. A refresh runs when (a) this is the
// first Step (the registration snapshot), (b) the stream clock closed
// one or more granules since the last Step, or (c) out-of-order appends
// dirtied an already-closed granule. Appends confined to the open
// granule do not refresh: their granule's rules are not final and will
// be mined when it closes. Returns nil (no update) when no refresh ran.
func (s *Standing) Step(ctx context.Context) (*SubUpdate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	clock, ok := s.tbl.MaxAt()
	if !ok {
		return nil, nil // empty table: nothing to mine yet
	}
	_, closedAny := s.tracker.Advance(clock)
	refresh := !s.started || closedAny
	if !refresh {
		ct, _ := s.tracker.ClosedThrough()
		dirty, _, logOK := s.tbl.DirtySince(s.stmt.Granularity, s.epoch)
		if !logOK {
			// Change log trimmed past our window: we can no longer tell
			// what moved, so refresh.
			refresh = true
		} else {
			for _, g := range dirty {
				if g <= ct {
					refresh = true
					break
				}
			}
		}
	}
	if !refresh {
		return nil, nil
	}
	// Read the epoch before mining: an append racing the scan may or may
	// not be in this result, but it stays dirty relative to this epoch
	// and triggers a follow-up refresh, so the stream always converges
	// to the table's settled state.
	epoch := s.tbl.Epoch()
	if _, err := s.exec.Cache.Premaintain(ctx, s.tbl, s.exec.Tracer); err != nil {
		return nil, err
	}
	res, err := s.exec.ExecStmtContext(ctx, s.stmt)
	if err != nil {
		return nil, err
	}
	cur := rowsByKey(res.Cols, displayCells(res))
	upd := &SubUpdate{
		Epoch:   epoch,
		Initial: !s.started,
		Rules:   len(cur),
		Cols:    res.Cols,
		Deltas:  DiffRows(s.cur, cur),
	}
	if ct, ok := s.tracker.ClosedThrough(); ok {
		upd.ClosedThrough = ct
		upd.ClosedLabel = timegran.FormatGranule(ct, s.stmt.Granularity)
	}
	s.cur, s.cols, s.epoch, s.started = cur, res.Cols, epoch, true
	return upd, nil
}

// displayCells renders a result's rows exactly as the CLI and the
// server's JSON rows render them, the canonical cell form deltas and
// folds are defined over.
func displayCells(res *minisql.Result) [][]string {
	rows := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Display()
		}
		rows[i] = cells
	}
	return rows
}

// DisplayCells is displayCells for external consumers (the server's
// differential oracle renders its reference MINE through it so both
// sides of the comparison share one rendering).
func DisplayCells(res *minisql.Result) [][]string { return displayCells(res) }

// KeyRows indexes display rows by identity key, the form RuleSet folds
// compare against; exported for the oracle.
func KeyRows(cols []string, rows [][]string) map[string][]string { return rowsByKey(cols, rows) }
