package tml

import "testing"

// FuzzParse checks the TML parser never panics and that accepted
// statements survive a String round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6`,
		`MINE RULES FROM b DURING 'month in (jun..aug)' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.7 FREQUENCY 0.8`,
		`MINE PERIODS FROM b AT GRANULARITY week THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN LENGTH 3`,
		`MINE CYCLES FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MAX LENGTH 14 MIN REPS 3`,
		`MINE CALENDARS FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5`,
		`MINE HISTORY FROM b RULE 'a => c' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 PRUNE LIFT 1.2 PVALUE 0.01 LIMIT 5`,
		`MINE RULES FROM`,
		`mine rules from b threshold support .5 confidence .5`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", input, printed, err)
		}
		if stmt2.Target != stmt.Target || stmt2.Table != stmt.Table {
			t.Fatalf("round trip changed statement: %q -> %q", input, printed)
		}
	})
}
