package tml

import "testing"

// FuzzParse checks the TML parser never panics and that every accepted
// statement survives a full canonical round trip: Parse → String →
// Parse → String must reach a fixed point, so the canonical form is
// itself valid TML and parsing it is lossless.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The examples of docs/TML.md, clause by clause.
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6`,
		`MINE RULES FROM baskets DURING 'month in (jun..aug) and weekday in (sat, sun)' THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 PRUNE LIFT 1.2 LIMIT 20;`,
		`MINE RULES FROM b DURING 'month in (jun..aug)' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.7 FREQUENCY 0.8`,
		`MINE PERIODS FROM b AT GRANULARITY week THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN LENGTH 3`,
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.9 MIN LENGTH 7;`,
		`MINE CYCLES FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MAX LENGTH 14 MIN REPS 3`,
		`MINE CYCLES    FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 MAX LENGTH 31 MIN REPS 4;`,
		`MINE CALENDARS FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5`,
		`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 4;`,
		`MINE HISTORY FROM b RULE 'a => c' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
		`MINE HISTORY FROM baskets RULE 'easter_egg => gift_wrap' THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6;`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 PRUNE LIFT 1.2 PVALUE 0.01 LIMIT 5`,
		`MINE RULES FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 PRUNE IMPROVEMENT 0.05`,
		`MINE RULES FROM b AT GRANULARITY hour THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 MAX SIZE 3 LIMIT 0`,
		// The continuous form: SUBSCRIBE MINE registers a standing
		// statement; the grammar is the MINE grammar with one prefix word.
		`SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6`,
		`SUBSCRIBE MINE PERIODS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.15 CONFIDENCE 0.6 FREQUENCY 0.9 LIMIT 10;`,
		`subscribe mine cycles from b threshold support .1 confidence .5 max length 14 min reps 2`,
		`SUBSCRIBE MINE CALENDARS FROM b THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 MIN REPS 2`,
		`SUBSCRIBE MINE RULES FROM b DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 PRUNE LIFT 1.1`,
		`EXPLAIN SUBSCRIBE MINE RULES FROM b THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`,
		`SUBSCRIBE MINE HISTORY FROM b RULE 'a => c' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`, // HISTORY cannot subscribe
		`SUBSCRIBE SUBSCRIBE MINE RULES FROM b THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`,       // one prefix only
		`SUBSCRIBE RULES FROM b THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`,                      // SUBSCRIBE without MINE
		// Malformed shapes the lexer and clause loop must reject calmly.
		`MINE RULES FROM`,
		`mine rules from b threshold support .5 confidence .5`,
		`MINE HISTORY FROM b THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`, // HISTORY without RULE
		`MINE RULES FROM b DURING 'unterminated THRESHOLD SUPPORT 0.5`,
		`MINE RULES FROM b THRESHOLD SUPPORT 1.5 CONFIDENCE 0.5`,
		`EXPLAIN MINE RULES FROM b THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5`,
		"MINE RULES FROM b \x00 THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5",
		`;;;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", input, printed, err)
		}
		// The canonical form must be a fixed point: printing the
		// re-parse reproduces it byte for byte, which catches any
		// clause that parses but prints differently (lost values,
		// reordered clauses, bad quoting).
		if again := stmt2.String(); again != printed {
			t.Fatalf("canonical form not a fixed point:\n input %q\n first %q\n again %q", input, printed, again)
		}
		if stmt2.Target != stmt.Target || stmt2.Table != stmt.Table {
			t.Fatalf("round trip changed statement: %q -> %q", input, printed)
		}
	})
}
