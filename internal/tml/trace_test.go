package tml

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
)

// execTraced runs stmt under a fresh request-scoped trace and returns
// the executor, the trace and the parsed statement.
func execTraced(t *testing.T, db *tdb.DB, input string) (*Executor, *obs.Trace, *MineStmt) {
	t.Helper()
	ex := NewExecutor(db)
	stmt, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace("")
	ctx := obs.ContextWithTrace(context.Background(), trace)
	if _, err := ex.ExecStmtContext(ctx, stmt); err != nil {
		t.Fatalf("%s: %v", input, err)
	}
	return ex, trace, stmt
}

// TestTraceSpanTreeShape: a traced statement leaves a statement root
// whose children are the plan operators in execution order, with the
// hold-table build and its counting passes nested inside the hold
// operator — the end-to-end claim of the tracing layer.
func TestTraceSpanTreeShape(t *testing.T) {
	db := fixtureDB(t)
	_, trace, _ := execTraced(t, db,
		"MINE CYCLES FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MAX LENGTH 14 MIN REPS 2")

	forest := trace.Tree()
	if len(forest) != 1 {
		t.Fatalf("%d roots, want 1 statement root", len(forest))
	}
	root := forest[0]
	if root.Name != obs.SpanStatement {
		t.Fatalf("root = %q, want %q", root.Name, obs.SpanStatement)
	}
	for k, want := range map[string]string{"task": "cycles", "table": "baskets"} {
		if got := root.Attrs[k]; got != want {
			t.Errorf("root attr %s = %q, want %q", k, got, want)
		}
	}
	var ops []string
	for _, c := range root.Children {
		ops = append(ops, c.Name)
	}
	want := []string{"op:scan", "op:build-hold", "op:mine:cycles", "op:render"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("operator spans = %v, want %v", ops, want)
	}
	hold := root.Children[1]
	if hold.Attrs["cache"] != "cold" {
		t.Errorf("hold attrs = %v, want cache=cold from plan detail enrichment", hold.Attrs)
	}
	build := obs.Find([]*obs.SpanNode{hold}, "core.BuildHoldTable")
	if build == nil {
		t.Fatal("no core.BuildHoldTable span under op:build-hold")
	}
	if obs.Find(build.Children, "pass:L1") == nil || obs.Find(build.Children, "pass:L2") == nil {
		t.Fatalf("build children = %+v, want pass:L1 and pass:L2", build.Children)
	}
	mine := root.Children[2]
	if obs.Find([]*obs.SpanNode{mine}, "task:cycles") == nil {
		t.Fatal("no task:cycles span under op:mine:cycles")
	}
}

// TestTraceMatchesExplainObserved is the acceptance criterion: the
// operator spans of the trace must carry exactly the wall times the
// EXPLAIN observed section reports for the same statement — both are
// the plan executor's single caller-timed measurement, rendered with
// the same %.1fms format.
func TestTraceMatchesExplainObserved(t *testing.T) {
	db := fixtureDB(t)
	ex, trace, stmt := execTraced(t, db,
		"MINE PERIODS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MIN LENGTH 3")

	res, err := ex.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	observed := map[string]string{} // "op:scan" -> "0.0ms"
	for _, row := range res.Rows {
		k, v := row[0].Display(), row[1].Display()
		if strings.HasPrefix(k, "observed: op:") {
			observed[strings.TrimPrefix(k, "observed: ")] = v
		}
	}
	if len(observed) == 0 {
		t.Fatal("EXPLAIN reported no observed operator rows")
	}
	forest := trace.Tree()
	for op, wantMS := range observed {
		span := obs.Find(forest, op)
		if span == nil {
			t.Errorf("operator %s in EXPLAIN but not in trace", op)
			continue
		}
		if got := fmt.Sprintf("%.1fms", span.WallMS); got != wantMS {
			t.Errorf("%s: trace %s, EXPLAIN %s — must match exactly", op, got, wantMS)
		}
	}
	// And the other direction: every op span of the trace is observed.
	root := forest[0]
	for _, c := range root.Children {
		if strings.HasPrefix(c.Name, "op:") {
			if _, ok := observed[c.Name]; !ok {
				t.Errorf("trace span %s missing from EXPLAIN observed section", c.Name)
			}
		}
	}
}

// TestExecutorJournal: with a journal installed, a statement leaves a
// complete record — cache outcome transitions cold → hit on repeat,
// backends, operator wall times, row and rule counts, span tree.
func TestExecutorJournal(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	ex.Journal = obs.NewJournal(obs.JournalConfig{})
	input := "MINE CYCLES FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MAX LENGTH 14 MIN REPS 2"
	stmt, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	run := func(id string) *obs.QueryRecord {
		ctx := obs.ContextWithTrace(context.Background(), obs.NewTrace(id))
		res, err := ex.ExecStmtContext(ctx, stmt)
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := ex.Journal.Get(id)
		if rec == nil {
			t.Fatalf("no journal record for %s", id)
		}
		if rec.Rows != len(res.Rows) {
			t.Errorf("record rows = %d, result rows = %d", rec.Rows, len(res.Rows))
		}
		return rec
	}

	cold := run("run-cold")
	if cold.Cache != "cold" {
		t.Errorf("first run cache = %q, want cold", cold.Cache)
	}
	if cold.Task != "cycles" || !strings.Contains(cold.Statement, "MINE CYCLES") {
		t.Errorf("record statement/task = %q/%q", cold.Statement, cold.Task)
	}
	if cold.Backend == "" || cold.PredictedBackend == "" {
		t.Errorf("backends = %q predicted %q, want both set", cold.Backend, cold.PredictedBackend)
	}
	if cold.PredictedCost <= 0 {
		t.Errorf("predicted cost = %v, want > 0", cold.PredictedCost)
	}
	if cold.Itemsets <= 0 {
		t.Errorf("itemsets = %d, want > 0", cold.Itemsets)
	}
	var opNames []string
	for _, o := range cold.Ops {
		opNames = append(opNames, o.Op)
	}
	if want := "[op:scan op:build-hold op:mine:cycles op:render]"; fmt.Sprint(opNames) != want {
		t.Errorf("ops = %v, want %s", opNames, want)
	}
	if len(cold.Spans) == 0 {
		t.Error("record has no span tree")
	}

	warm := run("run-warm")
	if warm.Cache != "hit" {
		t.Errorf("second run cache = %q, want hit", warm.Cache)
	}
	if warm.CountingMS != 0 {
		t.Errorf("cache-served counting = %v ms, want 0", warm.CountingMS)
	}

	// A parse-level failure still completes the journal entry.
	bad := &MineStmt{Target: TargetHistory, Table: "baskets", RuleSpec: "nope", Support: 0.3, Confidence: 0.6, Granularity: stmt.Granularity, Limit: NoLimit}
	ctx := obs.ContextWithTrace(context.Background(), obs.NewTrace("run-bad"))
	if _, err := ex.ExecStmtContext(ctx, bad); err == nil {
		t.Fatal("bad rule spec succeeded")
	}
	rec, _ := ex.Journal.Get("run-bad")
	if rec == nil || rec.Error == "" {
		t.Fatalf("failed statement record = %+v, want an error entry", rec)
	}
	if len(ex.Journal.InFlight()) != 0 {
		t.Fatal("statements left in flight")
	}
}

// TestUntracedStatementUnchanged: without a trace in the context and
// without a journal, execution takes the legacy path — no statement
// root in the collector beyond the statement span, no journal records,
// results identical.
func TestUntracedStatementUnchanged(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	stmt, err := Parse("MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.ExecStmtContext(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rules")
	}
	if st := ex.Last("baskets"); st == nil || st.Counters[obs.MetricStatements] != 1 {
		t.Fatalf("Last stats = %+v", st)
	}
}
