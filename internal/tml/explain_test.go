package tml

import (
	"strings"
	"testing"
)

func TestMineStmtStringRoundTrip(t *testing.T) {
	inputs := []string{
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6`,
		`MINE RULES FROM baskets DURING 'month in (jun..aug) and weekday in (sat, sun)' THRESHOLD SUPPORT 0.1 CONFIDENCE 0.7 FREQUENCY 0.8 MAX SIZE 3 LIMIT 10`,
		`MINE PERIODS FROM b AT GRANULARITY week THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN LENGTH 3`,
		`MINE CYCLES FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MAX LENGTH 14 MIN REPS 3`,
		`MINE CALENDARS FROM b THRESHOLD SUPPORT 0.05 CONFIDENCE 0.5 MIN REPS 2`,
		`MINE RULES FROM b DURING 'between 1998-03-01 and 1998-04-15' THRESHOLD SUPPORT 0.2 CONFIDENCE 0.6`,
		`MINE RULES FROM b DURING 'every 7 offset 2' THRESHOLD SUPPORT 0.2 CONFIDENCE 0.6`,
		`MINE RULES FROM b DURING 'not (month in (6..8)) or always' THRESHOLD SUPPORT 0.2 CONFIDENCE 0.6`,
	}
	for _, in := range inputs {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", in, printed, err)
		}
		// Compare field by field; During patterns compare via String.
		if s1.Target != s2.Target || s1.Table != s2.Table ||
			s1.Granularity != s2.Granularity ||
			s1.Support != s2.Support || s1.Confidence != s2.Confidence ||
			s1.Frequency != s2.Frequency ||
			s1.MinLength != s2.MinLength || s1.MaxLength != s2.MaxLength ||
			s1.MinReps != s2.MinReps || s1.MaxSize != s2.MaxSize || s1.Limit != s2.Limit {
			t.Errorf("round trip of %q changed fields:\n%+v\n%+v", in, s1, s2)
		}
		d1, d2 := "", ""
		if s1.During != nil {
			d1 = s1.During.String()
		}
		if s2.During != nil {
			d2 = s2.During.String()
		}
		if d1 != d2 {
			t.Errorf("round trip of %q changed DURING: %q vs %q", in, d1, d2)
		}
	}
}

func TestExplain(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)
	res, err := s.Exec(`EXPLAIN MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 MIN LENGTH 2`)
	if err != nil {
		t.Fatal(err)
	}
	props := map[string]string{}
	for _, row := range res.Rows {
		props[row[0].AsString()] = row[1].AsString()
	}
	if props["task"] != "Task I: valid period discovery" {
		t.Errorf("task = %q", props["task"])
	}
	if props["transactions"] != "280" {
		t.Errorf("transactions = %q", props["transactions"])
	}
	if props["granules"] != "28" || props["active granules"] != "28" {
		t.Errorf("granules = %q / %q", props["granules"], props["active granules"])
	}
	if !strings.Contains(props["span"], "2024-01-01") {
		t.Errorf("span = %q", props["span"])
	}
	if props["min frequency"] != "0.9" {
		t.Errorf("default frequency = %q", props["min frequency"])
	}

	// During feature coverage is reported.
	res, err = s.Exec(`EXPLAIN MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	props = map[string]string{}
	for _, row := range res.Rows {
		props[row[0].AsString()] = row[1].AsString()
	}
	if props["feature granules"] != "8" {
		t.Errorf("feature granules = %q", props["feature granules"])
	}
	if !strings.Contains(props["task"], "Task III") {
		t.Errorf("task = %q", props["task"])
	}

	// Errors.
	if _, err := s.Exec(`EXPLAIN MINE RULES FROM nosuch THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`); err == nil {
		t.Error("explain of missing table accepted")
	}
	if _, err := s.Exec(`EXPLAIN MINE garbage`); err == nil {
		t.Error("explain of garbage accepted")
	}
	// EXPLAIN SELECT is not TML; it routes to SQL and fails there.
	if _, err := s.Exec(`EXPLAIN SELECT 1 FROM baskets`); err == nil {
		t.Error("EXPLAIN SELECT accepted")
	}
}

func TestExplainEmptyTable(t *testing.T) {
	db := fixtureDB(t)
	if _, err := db.CreateTxTable("empty"); err != nil {
		t.Fatal(err)
	}
	s := NewSession(db)
	res, err := s.Exec(`EXPLAIN MINE CYCLES FROM empty THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "span" && row[1].AsString() == "(empty table)" {
			found = true
		}
	}
	if !found {
		t.Error("empty-table span not reported")
	}
}

func TestMineHistory(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)
	res, err := s.Exec(`MINE HISTORY FROM baskets RULE 'bbq => charcoal' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 28 {
		t.Fatalf("history rows = %d, want 28", len(res.Rows))
	}
	holds := 0
	for i, row := range res.Rows {
		if row[5].AsBool() {
			holds++
			if i < 7 || i > 13 {
				t.Errorf("rule holds on day %d (%s), outside the planted week", i, row[0].AsString())
			}
		}
	}
	if holds != 7 {
		t.Errorf("rule holds on %d days, want 7", holds)
	}

	// Multi-item antecedent and LIMIT.
	res, err = s.Exec(`MINE HISTORY FROM baskets RULE 'bread, milk => choc' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("limited history rows = %d", len(res.Rows))
	}

	bad := []string{
		`MINE HISTORY FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,                       // no RULE
		`MINE HISTORY FROM baskets RULE 'bbq charcoal' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,   // no =>
		`MINE HISTORY FROM baskets RULE 'bbq => nosuch' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,  // unknown item
		`MINE HISTORY FROM baskets RULE 'bbq => bbq' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,     // overlap
		`MINE HISTORY FROM baskets RULE ' => bbq' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,        // empty side
		`MINE RULES FROM baskets RULE 'a => b' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,           // RULE on wrong target
		`MINE HISTORY FROM baskets RULE 'wine => bread' THRESHOLD SUPPORT 0.99 CONFIDENCE 0.7`, // never frequent
	}
	for _, in := range bad {
		if _, err := s.Exec(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestHistoryStringRoundTrip(t *testing.T) {
	in := `MINE HISTORY FROM baskets RULE 'bbq => charcoal' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`
	s1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s1.String(), err)
	}
	if s2.RuleSpec != s1.RuleSpec || s2.Target != TargetHistory {
		t.Errorf("round trip: %+v vs %+v", s1, s2)
	}
}

func TestPruneClause(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)

	// Unpruned traditional mining at loose thresholds returns many
	// rules; lift pruning must cut rules at or below lift 1.
	loose := `MINE RULES FROM baskets THRESHOLD SUPPORT 0.1 CONFIDENCE 0.1`
	res, err := s.Exec(loose)
	if err != nil {
		t.Fatal(err)
	}
	all := len(res.Rows)
	res, err = s.Exec(loose + ` PRUNE LIFT 1.05`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) >= all {
		t.Errorf("lift pruning kept %d of %d rules", len(res.Rows), all)
	}
	if len(res.Rows) == 0 {
		t.Error("lift pruning dropped everything")
	}

	// Significance pruning runs end to end.
	if _, err := s.Exec(loose + ` PRUNE PVALUE 0.01`); err != nil {
		t.Fatal(err)
	}
	// Combined with DURING.
	if _, err := s.Exec(`MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 0.9 PRUNE LIFT 1.01 IMPROVEMENT 0.01 PVALUE 0.05`); err != nil {
		t.Fatal(err)
	}

	// Grammar errors.
	bad := []string{
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 PRUNE`,
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 PRUNE BANANAS 2`,
		`MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 PRUNE LIFT 1.1`,
		`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 PRUNE LIFT x`,
	}
	for _, in := range bad {
		if _, err := s.Exec(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestPruneStringRoundTrip(t *testing.T) {
	in := `MINE RULES FROM baskets THRESHOLD SUPPORT 0.1 CONFIDENCE 0.5 PRUNE LIFT 1.2 IMPROVEMENT 0.05 PVALUE 0.01`
	s1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s1.String(), err)
	}
	if s2.PruneLift != 1.2 || s2.PruneImprovement != 0.05 || s2.PrunePValue != 0.01 {
		t.Errorf("round trip lost prune options: %+v", s2)
	}
}
