package tml

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/tarm-project/tarm/internal/timegran"
)

// tmlTok is a lexer token: a word (lowercased), a number, a quoted
// string, or punctuation.
type tmlTok struct {
	kind tmlTokKind
	text string
	pos  int
}

type tmlTokKind int

const (
	tkEOF tmlTokKind = iota
	tkWord
	tkNumber
	tkString
)

func (t tmlTok) String() string {
	if t.kind == tkEOF {
		return "<end of statement>"
	}
	return fmt.Sprintf("%q", t.text)
}

func isASCIILetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

func lexTML(s string) ([]tmlTok, error) {
	var toks []tmlTok
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)) || c == ';':
			i++
		case c == '\'' || c == '"':
			quote := c
			var sb strings.Builder
			j := i + 1
			for j < len(s) && s[j] != quote {
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("tml: unterminated string at %d", i)
			}
			toks = append(toks, tmlTok{tkString, sb.String(), i})
			i = j + 1
		case unicode.IsDigit(rune(c)) || c == '.':
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			toks = append(toks, tmlTok{tkNumber, s[i:j], i})
			i = j
		case isASCIILetter(c) || c == '_':
			j := i
			for j < len(s) && (isASCIILetter(s[j]) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, tmlTok{tkWord, strings.ToLower(s[i:j]), i})
			i = j
		default:
			// Identifiers are ASCII; anything else (including non-UTF-8
			// bytes) is rejected rather than silently mangled.
			return nil, fmt.Errorf("tml: unexpected character %q at %d", c, i)
		}
	}
	return append(toks, tmlTok{kind: tkEOF, pos: len(s)}), nil
}

// IsMineStatement reports whether the input looks like TML (its first
// word is MINE, or SUBSCRIBE MINE); the IQMS session uses it to route
// statements between the TML executor and the SQL engine.
func IsMineStatement(input string) bool {
	fields := strings.Fields(strings.ToLower(input))
	if len(fields) == 0 {
		return false
	}
	if fields[0] == "subscribe" {
		return len(fields) > 1 && fields[1] == "mine"
	}
	return fields[0] == "mine"
}

// IsSubscribeStatement reports whether the input is the continuous form
// (SUBSCRIBE MINE ...). Front ends use it to route standing statements
// to a subscription manager instead of one-shot execution.
func IsSubscribeStatement(input string) bool {
	fields := strings.Fields(strings.ToLower(input))
	return len(fields) > 1 && fields[0] == "subscribe" && fields[1] == "mine"
}

// Parse parses one MINE statement.
func Parse(input string) (*MineStmt, error) {
	toks, err := lexTML(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseMine()
}

type parser struct {
	toks []tmlTok
	i    int
}

func (p *parser) peek() tmlTok { return p.toks[p.i] }

func (p *parser) next() tmlTok {
	t := p.toks[p.i]
	if t.kind != tkEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptWord(w string) bool {
	if t := p.peek(); t.kind == tkWord && t.text == w {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectWord(w string) error {
	if p.acceptWord(w) {
		return nil
	}
	return fmt.Errorf("tml: expected %q, found %v", strings.ToUpper(w), p.peek())
}

func (p *parser) number(what string) (float64, error) {
	t := p.next()
	if t.kind != tkNumber {
		return 0, fmt.Errorf("tml: %s wants a number, found %v", what, t)
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("tml: bad number %q for %s", t.text, what)
	}
	return f, nil
}

func (p *parser) integer(what string) (int, error) {
	f, err := p.number(what)
	if err != nil {
		return 0, err
	}
	n := int(f)
	if float64(n) != f {
		return 0, fmt.Errorf("tml: %s wants an integer, got %v", what, f)
	}
	return n, nil
}

func (p *parser) parseMine() (*MineStmt, error) {
	subscribe := p.acceptWord("subscribe")
	if err := p.expectWord("mine"); err != nil {
		return nil, err
	}
	stmt := &MineStmt{Subscribe: subscribe, Granularity: timegran.Day, Limit: NoLimit}
	switch t := p.next(); t.text {
	case "rules":
		stmt.Target = TargetRules
	case "periods":
		stmt.Target = TargetPeriods
	case "cycles":
		stmt.Target = TargetCycles
	case "calendars":
		stmt.Target = TargetCalendars
	case "history":
		stmt.Target = TargetHistory
	default:
		return nil, fmt.Errorf("tml: expected RULES, PERIODS, CYCLES or CALENDARS, found %v", t)
	}
	if err := p.expectWord("from"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tkWord {
		return nil, fmt.Errorf("tml: expected a table name, found %v", tbl)
	}
	stmt.Table = tbl.text

	seenThreshold := false
	for {
		t := p.peek()
		if t.kind == tkEOF {
			break
		}
		if t.kind != tkWord {
			return nil, fmt.Errorf("tml: unexpected %v", t)
		}
		p.i++
		switch t.text {
		case "rule":
			if stmt.Target != TargetHistory {
				return nil, fmt.Errorf("tml: RULE applies only to MINE HISTORY")
			}
			s := p.next()
			if s.kind != tkString {
				return nil, fmt.Errorf("tml: RULE wants a quoted 'ante => cons', found %v", s)
			}
			stmt.RuleSpec = s.text
		case "during":
			if stmt.Target != TargetRules {
				return nil, fmt.Errorf("tml: DURING applies only to MINE RULES")
			}
			s := p.next()
			if s.kind != tkString {
				return nil, fmt.Errorf("tml: DURING wants a quoted pattern, found %v", s)
			}
			pat, err := timegran.ParsePattern(s.text)
			if err != nil {
				return nil, err
			}
			stmt.During = pat
			stmt.DuringSrc = s.text
		case "at":
			if err := p.expectWord("granularity"); err != nil {
				return nil, err
			}
			g := p.next()
			if g.kind != tkWord {
				return nil, fmt.Errorf("tml: expected a granularity name, found %v", g)
			}
			gran, err := timegran.ParseGranularity(g.text)
			if err != nil {
				return nil, err
			}
			stmt.Granularity = gran
		case "threshold":
			seenThreshold = true
			for more := true; more; {
				switch {
				case p.acceptWord("support"):
					v, err := p.number("SUPPORT")
					if err != nil {
						return nil, err
					}
					stmt.Support = v
				case p.acceptWord("confidence"):
					v, err := p.number("CONFIDENCE")
					if err != nil {
						return nil, err
					}
					stmt.Confidence = v
				case p.acceptWord("frequency"):
					v, err := p.number("FREQUENCY")
					if err != nil {
						return nil, err
					}
					stmt.Frequency = v
				default:
					more = false
				}
			}
		case "min":
			switch {
			case p.acceptWord("length"):
				n, err := p.integer("MIN LENGTH")
				if err != nil {
					return nil, err
				}
				stmt.MinLength = n
			case p.acceptWord("reps"):
				n, err := p.integer("MIN REPS")
				if err != nil {
					return nil, err
				}
				stmt.MinReps = n
			default:
				return nil, fmt.Errorf("tml: MIN wants LENGTH or REPS, found %v", p.peek())
			}
		case "max":
			switch {
			case p.acceptWord("length"):
				n, err := p.integer("MAX LENGTH")
				if err != nil {
					return nil, err
				}
				stmt.MaxLength = n
			case p.acceptWord("size"):
				n, err := p.integer("MAX SIZE")
				if err != nil {
					return nil, err
				}
				stmt.MaxSize = n
			default:
				return nil, fmt.Errorf("tml: MAX wants LENGTH or SIZE, found %v", p.peek())
			}
		case "prune":
			if stmt.Target != TargetRules {
				return nil, fmt.Errorf("tml: PRUNE applies only to MINE RULES")
			}
			saw := false
			for more := true; more; {
				switch {
				case p.acceptWord("lift"):
					v, err := p.number("PRUNE LIFT")
					if err != nil {
						return nil, err
					}
					stmt.PruneLift = v
					saw = true
				case p.acceptWord("improvement"):
					v, err := p.number("PRUNE IMPROVEMENT")
					if err != nil {
						return nil, err
					}
					stmt.PruneImprovement = v
					saw = true
				case p.acceptWord("pvalue"):
					v, err := p.number("PRUNE PVALUE")
					if err != nil {
						return nil, err
					}
					stmt.PrunePValue = v
					saw = true
				default:
					more = false
				}
			}
			if !saw {
				return nil, fmt.Errorf("tml: PRUNE wants LIFT, IMPROVEMENT or PVALUE")
			}
		case "limit":
			n, err := p.integer("LIMIT")
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("tml: LIMIT must be non-negative")
			}
			stmt.Limit = n
		default:
			return nil, fmt.Errorf("tml: unexpected clause %q", strings.ToUpper(t.text))
		}
	}
	if !seenThreshold || stmt.Support <= 0 || stmt.Confidence <= 0 {
		return nil, fmt.Errorf("tml: THRESHOLD SUPPORT and CONFIDENCE are required and must be positive")
	}
	if stmt.Target == TargetHistory && stmt.RuleSpec == "" {
		return nil, fmt.Errorf("tml: MINE HISTORY requires a RULE 'ante => cons' clause")
	}
	if stmt.Subscribe && stmt.Target == TargetHistory {
		return nil, fmt.Errorf("tml: SUBSCRIBE applies to the discovery targets, not MINE HISTORY")
	}
	if stmt.Support > 1 || stmt.Confidence > 1 || stmt.Frequency > 1 {
		return nil, fmt.Errorf("tml: thresholds are fractions in (0,1]")
	}
	return stmt, nil
}
