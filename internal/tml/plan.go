package tml

import (
	"context"
	"fmt"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/plan"
	"github.com/tarm-project/tarm/internal/prune"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// taskKey maps a statement to its obs task vocabulary key — the single
// name shared by the mining operator ("mine:<key>"), the task tracer
// span ("task:<key>") and telemetry labels. The empty string means an
// unknown target.
func taskKey(stmt *MineStmt) string {
	switch stmt.Target {
	case TargetRules:
		if stmt.During == nil {
			return obs.TaskTraditional
		}
		return obs.TaskDuring
	case TargetPeriods:
		return obs.TaskPeriods
	case TargetCycles:
		return obs.TaskCycles
	case TargetCalendars:
		return obs.TaskCalendars
	case TargetHistory:
		return obs.TaskHistory
	default:
		return ""
	}
}

// TaskKey returns the obs task-vocabulary key of a parsed statement
// ("traditional", "during", "periods", "cycles", "calendars",
// "history"), the label multi-session front ends (tarmd) use for
// per-task latency metrics. Empty for an unknown target.
func TaskKey(stmt *MineStmt) string { return taskKey(stmt) }

// taskTitles spells the task keys out for EXPLAIN's "task" row.
var taskTitles = map[string]string{
	obs.TaskTraditional: "traditional association rules (baseline)",
	obs.TaskDuring:      "Task III: rules during a temporal feature",
	obs.TaskPeriods:     "Task I: valid period discovery",
	obs.TaskCycles:      "Task II: cyclic periodicity discovery",
	obs.TaskCalendars:   "Task II: calendar periodicity discovery",
}

// taskTitle is the human task name of a statement.
func taskTitle(stmt *MineStmt) string {
	if t, ok := taskTitles[taskKey(stmt)]; ok {
		return t
	}
	return stmt.Target.String()
}

// buildPlan compiles a MINE statement into its operator chain:
//
//	scan → [cached-hold | build-hold] → mine:<task> → [prune] → render → [limit]
//
// The same plan object serves ExecStmtContext (via plan.Execute) and
// Explain (via plan.Explain), so the rendered tree is the execution by
// construction. Building a plan runs nothing and is cheap: the only
// work is a read-only cache probe and the table's span lookup. The
// traditional task has no hold acquisition (Apriori mines the flat
// transaction set); HISTORY resolves its rule spec here, so a bad rule
// fails at plan time.
func (e *Executor) buildPlan(tbl *tdb.TxTable, stmt *MineStmt, cfg core.Config) (*plan.Node, error) {
	key := taskKey(stmt)
	if key == "" {
		return nil, fmt.Errorf("tml: unknown target %v", stmt.Target)
	}

	scan := &plan.Node{
		Op:  plan.OpScan,
		Run: func(ctx context.Context, _ any) (any, error) { return tbl, nil },
	}
	scan.With("table", stmt.Table).
		With("transactions", fmt.Sprint(tbl.Len())).
		With("granularity", stmt.Granularity.String())
	if span, ok := tbl.Span(stmt.Granularity); ok {
		scan.With("span", timegran.FormatGranule(span.Lo, stmt.Granularity)+".."+
			timegran.FormatGranule(span.Hi, stmt.Granularity))
	}

	var root *plan.Node
	switch key {
	case obs.TaskTraditional:
		mine := &plan.Node{Op: plan.MineOp(key), Input: scan, Run: func(ctx context.Context, in any) (any, error) {
			return core.MineTraditionalContext(ctx, in.(*tdb.TxTable),
				stmt.Support, stmt.Confidence, stmt.MaxSize, e.Backend, e.Workers, cfg.Tracer)
		}}
		mine.With("support", fmt.Sprintf("%g", stmt.Support)).
			With("confidence", fmt.Sprintf("%g", stmt.Confidence)).
			With("backend", e.Backend.String()).
			With("workers", fmt.Sprint(e.Workers))
		addPrediction(mine, tbl, 1, e.Backend)
		if stmt.MaxSize > 0 {
			mine.With("max_size", fmt.Sprint(stmt.MaxSize))
		}
		root = mine
		if opt, ok := pruneOptions(stmt, tbl.Len()); ok {
			root = pruneDetails(stmt, &plan.Node{Op: plan.OpPrune, Input: root, Run: func(ctx context.Context, in any) (any, error) {
				rules, _, err := prune.Filter(in.([]apriori.Rule), opt)
				return rules, err
			}})
		}
		root = e.renderNode(root, "antecedent, consequent, support, confidence", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"antecedent", "consequent", "support", "confidence"}}
			for _, r := range in.([]apriori.Rule) {
				res.Rows = append(res.Rows, ruleCells(e, r))
			}
			return res
		})

	case obs.TaskDuring:
		hold := e.holdNode(tbl, cfg, scan)
		mine := &plan.Node{Op: plan.MineOp(key), Input: hold, Run: func(ctx context.Context, in any) (any, error) {
			return core.MineDuringFromTableContext(ctx, in.(*core.HoldTable), stmt.During)
		}}
		mine.With("during", stmt.DuringSrc).
			With("frequency", fmt.Sprintf("%g", stmt.defaultFrequency()))
		root = mine
		if opt, ok := pruneOptions(stmt, 0); ok {
			root = pruneDetails(stmt, &plan.Node{Op: plan.OpPrune, Input: root, Run: func(ctx context.Context, in any) (any, error) {
				return pruneTemporal(in.([]core.TemporalRule), opt)
			}})
		}
		root = e.renderNode(root, "antecedent, consequent, support, confidence, frequency, during", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"antecedent", "consequent", "support", "confidence", "frequency", "during"}}
			for _, r := range in.([]core.TemporalRule) {
				row := ruleCells(e, r.Rule)
				row = append(row, tdb.Float(r.Freq), tdb.Str(stmt.DuringSrc))
				res.Rows = append(res.Rows, row)
			}
			return res
		})

	case obs.TaskPeriods:
		hold := e.holdNode(tbl, cfg, scan)
		mine := &plan.Node{Op: plan.MineOp(key), Input: hold, Run: func(ctx context.Context, in any) (any, error) {
			return core.MineValidPeriodsFromTableContext(ctx, in.(*core.HoldTable), core.PeriodConfig{MinLen: stmt.MinLength})
		}}
		if stmt.MinLength > 0 {
			mine.With("min_length", fmt.Sprint(stmt.MinLength))
		}
		mine.With("frequency", fmt.Sprintf("%g", stmt.defaultFrequency()))
		root = e.renderNode(mine, "antecedent, consequent, support, confidence, from, to, frequency", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"antecedent", "consequent", "support", "confidence", "from", "to", "frequency"}}
			for _, r := range in.([]core.PeriodRule) {
				row := ruleCells(e, r.Rule)
				row = append(row,
					tdb.Str(timegran.FormatGranule(r.Interval.Lo, r.Granularity)),
					tdb.Str(timegran.FormatGranule(r.Interval.Hi, r.Granularity)),
					tdb.Float(r.Freq),
				)
				res.Rows = append(res.Rows, row)
			}
			return res
		})

	case obs.TaskCycles:
		hold := e.holdNode(tbl, cfg, scan)
		ccfg := core.CycleConfig{MaxLen: stmt.MaxLength, MinReps: stmt.MinReps}
		mine := &plan.Node{Op: plan.MineOp(key), Input: hold, Run: func(ctx context.Context, in any) (any, error) {
			return core.MineCyclesFromTableContext(ctx, in.(*core.HoldTable), ccfg)
		}}
		if stmt.MaxLength > 0 {
			mine.With("max_length", fmt.Sprint(stmt.MaxLength))
		}
		if stmt.MinReps > 0 {
			mine.With("min_reps", fmt.Sprint(stmt.MinReps))
		}
		mine.With("frequency", fmt.Sprintf("%g", stmt.defaultFrequency()))
		root = e.renderNode(mine, "antecedent, consequent, support, confidence, cycle, frequency", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"antecedent", "consequent", "support", "confidence", "cycle", "frequency"}}
			for _, r := range in.([]core.CyclicRule) {
				row := ruleCells(e, r.Rule)
				row = append(row, tdb.Str(r.Cycle.String()), tdb.Float(r.Freq))
				res.Rows = append(res.Rows, row)
			}
			return res
		})

	case obs.TaskCalendars:
		hold := e.holdNode(tbl, cfg, scan)
		ccfg := core.CycleConfig{MinReps: stmt.MinReps}
		mine := &plan.Node{Op: plan.MineOp(key), Input: hold, Run: func(ctx context.Context, in any) (any, error) {
			return core.MineCalendarPeriodicitiesFromTableContext(ctx, in.(*core.HoldTable), ccfg)
		}}
		if stmt.MinReps > 0 {
			mine.With("min_reps", fmt.Sprint(stmt.MinReps))
		}
		mine.With("frequency", fmt.Sprintf("%g", stmt.defaultFrequency()))
		root = e.renderNode(mine, "antecedent, consequent, support, confidence, calendar, frequency", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"antecedent", "consequent", "support", "confidence", "calendar", "frequency"}}
			for _, r := range in.([]core.CalendarRule) {
				row := ruleCells(e, r.Rule)
				row = append(row, tdb.Str(r.Feature.String()), tdb.Float(r.Freq))
				res.Rows = append(res.Rows, row)
			}
			return res
		})

	case obs.TaskHistory:
		ante, cons, err := e.parseRuleSpec(stmt.RuleSpec)
		if err != nil {
			return nil, err
		}
		// Count exactly as deep as the rule needs; a cached table built
		// deeper (or unbounded) still serves this via the coverage check.
		cfg.MaxK = ante.Union(cons).Len()
		hold := e.holdNode(tbl, cfg, scan)
		mine := &plan.Node{Op: plan.MineOp(key), Input: hold, Run: func(ctx context.Context, in any) (any, error) {
			return core.RuleHistoryFromTableContext(ctx, in.(*core.HoldTable), ante, cons)
		}}
		mine.With("rule", stmt.RuleSpec)
		root = e.renderNode(mine, "granule, transactions, count, support, confidence, holds", func(in any) *minisql.Result {
			res := &minisql.Result{Cols: []string{"granule", "transactions", "count", "support", "confidence", "holds"}}
			for _, s := range in.([]core.GranuleStat) {
				res.Rows = append(res.Rows, []tdb.Value{
					tdb.Str(timegran.FormatGranule(s.Granule, stmt.Granularity)),
					tdb.Int(int64(s.TxCount)),
					tdb.Int(int64(s.Count)),
					tdb.Float(s.Support),
					tdb.Float(s.Confidence),
					tdb.Bool(s.Holds),
				})
			}
			return res
		})
	}

	if stmt.Limit != NoLimit {
		limit := &plan.Node{Op: plan.OpLimit, Input: root, Run: func(ctx context.Context, in any) (any, error) {
			return limitRows(in.(*minisql.Result), stmt.Limit), nil
		}}
		limit.With("n", fmt.Sprint(stmt.Limit))
		root = limit
	}
	return root, nil
}

// holdNode builds the hold-acquisition operator: a cache probe decides
// whether the plan reads "cached-hold" (hit, rethreshold, or delta —
// a stale entry refreshed by recounting only its dirty granules) or
// "build-hold" (cold build — also the nil-cache path), and the Run
// closure goes through HoldCache.GetContext either way, so the
// annotation is advisory while the execution is always coherent with
// concurrent statements.
func (e *Executor) holdNode(tbl *tdb.TxTable, cfg core.Config, input *plan.Node) *plan.Node {
	mode := e.Cache.Probe(tbl, cfg)
	op := plan.OpCachedHold
	if mode == "build" {
		op = plan.OpBuildHold
		mode = "cold"
	}
	granules := 1
	if span, ok := tbl.Span(cfg.Granularity); ok {
		granules = int(span.Len())
	}
	n := &plan.Node{Op: op, Input: input}
	n.With("cache", mode).
		With("support", fmt.Sprintf("%g", cfg.MinSupport)).
		With("backend", cfg.Backend.String()).
		With("workers", fmt.Sprint(cfg.Workers))
	if cfg.MaxK > 0 {
		n.With("max_size", fmt.Sprint(cfg.MaxK))
	}
	predCost := addPrediction(n, tbl, granules, cfg.Backend)
	n.Run = func(ctx context.Context, in any) (any, error) {
		// Seed the plan-time prediction so a cache-served statement still
		// reports one; a cold build overwrites it with the exact
		// frequent-items prediction.
		if tr := cfg.Tracer; tr != nil && tr.Enabled() {
			tr.Gauge(obs.MetricCountingPredictedCost, predCost)
		}
		return e.Cache.GetContext(ctx, in.(*tdb.TxTable), cfg)
	}
	return n
}

// addPrediction annotates a counting operator with the cost model's
// view of the table: the backend it would pick and the predicted cost
// (abstract word-op units) of the backend that will actually run. The
// plan-time stats cover all items — the in-run decision re-predicts
// over the frequent items only — so the annotation is advisory; the
// observed cost lands in the statement stats for comparison. Returns
// the predicted cost of the effective backend.
func addPrediction(n *plan.Node, tbl *tdb.TxTable, granules int, configured apriori.Backend) float64 {
	stats := tbl.CountStats()
	stats.Granules = granules
	pred := apriori.Predict(stats)
	effective := configured
	if effective == apriori.BackendAuto {
		effective = pred.Choice
	}
	cost := pred.Cost(effective)
	n.With("predicted_backend", pred.Choice.String()).
		With("predicted_cost", fmt.Sprintf("%.3g", cost))
	return cost
}

// renderNode wraps a row-building function as the render operator.
func (e *Executor) renderNode(input *plan.Node, cols string, build func(in any) *minisql.Result) *plan.Node {
	n := &plan.Node{Op: plan.OpRender, Input: input, Run: func(ctx context.Context, in any) (any, error) {
		return build(in), nil
	}}
	return n.With("cols", cols)
}

// pruneDetails annotates a prune node with the statement's thresholds.
func pruneDetails(stmt *MineStmt, n *plan.Node) *plan.Node {
	if stmt.PruneLift > 0 {
		n.With("lift", fmt.Sprintf("%g", stmt.PruneLift))
	}
	if stmt.PruneImprovement > 0 {
		n.With("improvement", fmt.Sprintf("%g", stmt.PruneImprovement))
	}
	if stmt.PrunePValue > 0 {
		n.With("pvalue", fmt.Sprintf("%g", stmt.PrunePValue))
	}
	return n
}

// pruneTemporal applies the interestingness filters to Task III rules.
// The population is the feature's sub-database; each rule carries its
// count and support, which reconstruct it per rule. Improvement needs
// the whole rule set, so it runs as a second pass over the survivors.
func pruneTemporal(rules []core.TemporalRule, opt prune.Options) ([]core.TemporalRule, error) {
	var kept []core.TemporalRule
	for _, r := range rules {
		n := 0
		if r.Rule.Support > 0 {
			n = int(float64(r.Rule.Count)/r.Rule.Support + 0.5)
		}
		o := opt
		o.N = n
		o.MinImprovement = 0 // needs the whole set; applied below
		out, _, err := prune.Filter([]apriori.Rule{r.Rule}, o)
		if err != nil {
			return nil, err
		}
		if len(out) == 1 {
			kept = append(kept, r)
		}
	}
	if opt.MinImprovement > 0 {
		flat := make([]apriori.Rule, len(kept))
		for i, r := range kept {
			flat[i] = r.Rule
		}
		surv, _, err := prune.Filter(flat, prune.Options{MinImprovement: opt.MinImprovement})
		if err != nil {
			return nil, err
		}
		keep := make(map[string]bool, len(surv))
		for _, r := range surv {
			keep[r.Key()] = true
		}
		var out []core.TemporalRule
		for _, r := range kept {
			if keep[r.Rule.Key()] {
				out = append(out, r)
			}
		}
		kept = out
	}
	return kept, nil
}
