package tml

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/itemset"
	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/plan"
	"github.com/tarm-project/tarm/internal/prune"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

// Executor runs MINE statements against a database. Results are
// rendered as minisql.Result tables so the IQMS front end treats query
// and mining output uniformly.
//
// A statement executes in two steps: buildPlan compiles it into an
// operator chain (internal/plan), and plan.Execute runs the chain
// under the caller's context. EXPLAIN renders the same plan object.
type Executor struct {
	db *tdb.DB

	// Backend and Workers are applied to the mining config of every
	// statement; the CLI front ends set them from their -backend and
	// -workers flags. Zero values mean auto selection and sequential
	// counting.
	Backend apriori.Backend
	Workers int
	// Tracer, when set, receives the telemetry of every statement in
	// addition to the executor's own per-statement collector (whose
	// stats EXPLAIN and Last surface). The CLI front ends install a
	// RegistryTracer or ProgressTracer here.
	Tracer obs.Tracer
	// Cache holds the HoldTables of recent statements; the four
	// temporal task drivers (periods, cycles, calendars, during) and
	// rule history share it, so an interactive session pays the
	// counting scan once per (table, granularity) and serves follow-up
	// statements at equal-or-higher support from memory. Nil disables
	// caching (every statement rebuilds). NewExecutor installs a
	// default-sized cache; front ends resize it from their -cache flag.
	Cache *core.HoldCache
	// Journal, when set, records every statement: in-flight while it
	// runs, then as a completed record (cache outcome, backends, costs,
	// per-operator wall times, counts, error) in the bounded ring. The
	// tarmd server installs one; nil disables journalling.
	Journal *obs.Journal

	mu        sync.Mutex
	lastStats map[string]*obs.MineStats // per table, most recent run
}

// NewExecutor wraps a database. The hold-table cache starts at the
// default budget; set Cache (possibly to nil) to resize or disable.
func NewExecutor(db *tdb.DB) *Executor {
	return &Executor{db: db, Cache: core.NewHoldCache(core.DefaultCacheBytes)}
}

// Exec parses and runs one TML statement.
func (e *Executor) Exec(input string) (*minisql.Result, error) {
	return e.ExecContext(context.Background(), input)
}

// ExecContext parses and runs one TML statement under a context.
func (e *Executor) ExecContext(ctx context.Context, input string) (*minisql.Result, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return e.ExecStmtContext(ctx, stmt)
}

// ExecStmt runs a parsed MINE statement.
func (e *Executor) ExecStmt(stmt *MineStmt) (*minisql.Result, error) {
	return e.ExecStmtContext(context.Background(), stmt)
}

// ExecStmtContext runs a parsed MINE statement under a context. The
// context reaches every layer — the hold-table build (including the
// parallel sharded and bitmap paths), cache singleflight waits and the
// task drivers — which observe it at granule-block and pass
// boundaries, so a cancelled statement returns ctx.Err() promptly
// without per-transaction overhead.
func (e *Executor) ExecStmtContext(ctx context.Context, stmt *MineStmt) (*minisql.Result, error) {
	tbl, ok := e.db.TxTable(stmt.Table)
	if !ok {
		if _, isRel := e.db.Table(stmt.Table); isRel {
			return nil, fmt.Errorf("tml: %q is a relational table; MINE needs a transaction table", stmt.Table)
		}
		return nil, fmt.Errorf("tml: no transaction table named %q", stmt.Table)
	}
	// Every statement is collected so EXPLAIN can show observed stats;
	// the request-scoped trace (when the context carries one) and the
	// configured Tracer (metrics, progress) ride along on the same
	// event stream, so the span tree is built with zero extra plumbing
	// through the miners.
	trace := obs.TraceFromContext(ctx)
	fl := e.Journal.Begin(trace, stmt.String(), taskKey(stmt))
	collect := obs.NewCollectTracer()
	tr := obs.Multi(collect, trace, e.Tracer)
	tr.StartTask(obs.SpanStatement)
	trace.SetAttr("statement", stmt.String())
	trace.SetAttr("task", taskKey(stmt))
	trace.SetAttr("table", stmt.Table)
	tr.Counter(obs.MetricStatements, 1)
	cfg := core.Config{
		Granularity:   stmt.Granularity,
		MinSupport:    stmt.Support,
		MinConfidence: stmt.Confidence,
		MinFreq:       stmt.defaultFrequency(),
		MaxK:          stmt.MaxSize,
		Backend:       e.Backend,
		Workers:       e.Workers,
		Tracer:        tr,
	}
	root, err := e.buildPlan(tbl, stmt, cfg)
	if err != nil {
		tr.EndTask()
		fl.End(obs.QueryOutcome{Err: err})
		return nil, err
	}
	out, ops, err := plan.Execute(ctx, root, tr)
	tr.EndTask()
	if err != nil {
		fl.End(queryOutcome(root, collect.Stats(), ops, nil, err))
		return nil, err
	}
	res := out.(*minisql.Result)
	st := collect.Stats()
	st.Statement = stmt.String()
	if _, ok := st.Gauges[obs.MetricCountingObservedNS]; !ok {
		// A cache-served hold table runs no counting; report that
		// explicitly so EXPLAIN always carries the observed-cost line.
		if st.Gauges == nil {
			st.Gauges = make(map[string]float64)
		}
		st.Gauges[obs.MetricCountingObservedNS] = 0
	}
	e.mu.Lock()
	if e.lastStats == nil {
		e.lastStats = make(map[string]*obs.MineStats)
	}
	e.lastStats[stmt.Table] = st
	e.mu.Unlock()
	fl.End(queryOutcome(root, st, ops, res, nil))
	return res, nil
}

// queryOutcome folds a finished statement's telemetry into the shape
// the journal records: the executor is the one place that holds the
// plan, the collected stats and the per-operator timings together.
func queryOutcome(root *plan.Node, st *obs.MineStats, ops []plan.OpStat, res *minisql.Result, err error) obs.QueryOutcome {
	out := obs.QueryOutcome{Err: err}
	if st != nil {
		out.Backend = st.Backend
		out.Rules = st.Counters[obs.MetricRulesEmitted]
		out.Itemsets = st.Counters[obs.MetricItemsetsFrequent]
		out.PredictedCost = st.Gauges[obs.MetricCountingPredictedCost]
		if v, ok := st.Gauges[obs.MetricCountingObservedNS]; ok {
			out.CountingMS = v / 1e6
		}
		out.Cache = cacheOutcome(st, root)
	}
	for _, s := range ops {
		out.Ops = append(out.Ops, obs.OpWall{Op: obs.OpSpan(s.Op), WallMS: float64(s.Duration) / 1e6})
	}
	if res != nil {
		out.Rows = len(res.Rows)
	}
	for _, n := range plan.Chain(root) {
		for _, kv := range n.Detail {
			if kv.Key == "predicted_backend" {
				out.PredictedBackend = kv.Val
			}
		}
	}
	return out
}

// cacheOutcome derives how the statement's hold table was served from
// the per-statement cache counters: "cold" (a build ran — also the
// cache-disabled path), "delta" (a stale entry was refreshed by delta
// maintenance instead of a rebuild), "dedup" (waited on a concurrent
// identical build), "rethreshold" or "hit". Statements without a hold
// operator (the traditional task) report "".
func cacheOutcome(st *obs.MineStats, root *plan.Node) string {
	hasHold := false
	for _, n := range plan.Chain(root) {
		if n.Op == plan.OpBuildHold || n.Op == plan.OpCachedHold {
			hasHold = true
		}
	}
	if !hasHold {
		return ""
	}
	switch c := st.Counters; {
	case c[obs.MetricCacheDeltas] > 0:
		return "delta"
	case c[obs.MetricCacheMisses] > 0:
		return "cold"
	case c[obs.MetricCacheDedups] > 0:
		return "dedup"
	case c[obs.MetricCacheRethresholds] > 0:
		return "rethreshold"
	case c[obs.MetricCacheHits] > 0:
		return "hit"
	default:
		return "cold"
	}
}

// Last returns the stats collected for the most recent successful
// statement over table, or nil if none has run.
func (e *Executor) Last(table string) *obs.MineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastStats[table]
}

// parseRuleSpec resolves "a, b => c" against the dictionary.
func (e *Executor) parseRuleSpec(spec string) (ante, cons itemset.Set, err error) {
	parts := strings.Split(spec, "=>")
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("tml: rule %q must have exactly one '=>'", spec)
	}
	side := func(s string) (itemset.Set, error) {
		var items []itemset.Item
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			id, ok := e.db.Dict().Lookup(name)
			if !ok {
				return nil, fmt.Errorf("tml: unknown item %q", name)
			}
			items = append(items, id)
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("tml: rule side %q has no items", s)
		}
		return itemset.New(items...), nil
	}
	if ante, err = side(parts[0]); err != nil {
		return nil, nil, err
	}
	if cons, err = side(parts[1]); err != nil {
		return nil, nil, err
	}
	if ante.Intersect(cons).Len() != 0 {
		return nil, nil, fmt.Errorf("tml: rule %q has overlapping sides", spec)
	}
	return ante, cons, nil
}

// names renders an itemset through the shared dictionary.
func (e *Executor) names(s itemset.Set) string { return e.db.Dict().Names(s) }

// limitRows truncates res to the statement's LIMIT. NoLimit passes
// everything through; LIMIT 0 is a legal contract returning zero rows;
// any other negative limit (possible only on a hand-built MineStmt —
// the parser rejects them) clamps to zero rather than panicking on a
// negative slice bound.
func limitRows(res *minisql.Result, limit int) *minisql.Result {
	if limit == NoLimit {
		return res
	}
	if limit < 0 {
		limit = 0
	}
	if len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	return res
}

func ruleCells(e *Executor, r apriori.Rule) []tdb.Value {
	return []tdb.Value{
		tdb.Str(e.names(r.Antecedent)),
		tdb.Str(e.names(r.Consequent)),
		tdb.Float(r.Support),
		tdb.Float(r.Confidence),
	}
}

// pruneOptions builds the filter options of a statement; n is the
// transaction population behind the rules' support fractions.
func pruneOptions(stmt *MineStmt, n int) (prune.Options, bool) {
	if stmt.PruneLift == 0 && stmt.PruneImprovement == 0 && stmt.PrunePValue == 0 {
		return prune.Options{}, false
	}
	return prune.Options{
		MinLift:        stmt.PruneLift,
		MinImprovement: stmt.PruneImprovement,
		MaxPValue:      stmt.PrunePValue,
		N:              n,
	}, true
}

// Explain describes what a MINE statement would do without running it:
// the canonical statement, the data span it would scan, the effective
// thresholds, and the operator plan the statement compiles to — built
// by the same buildPlan that ExecStmtContext executes, so the "plan"
// rows are the execution, including whether the hold table would come
// from cache ("cached-hold", hit or rethreshold) or a cold build
// ("build-hold"). The IQMS session surfaces it as EXPLAIN MINE.
func (e *Executor) Explain(stmt *MineStmt) (*minisql.Result, error) {
	tbl, ok := e.db.TxTable(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("tml: no transaction table named %q", stmt.Table)
	}
	res := &minisql.Result{Cols: []string{"property", "value"}}
	add := func(k, v string) {
		res.Rows = append(res.Rows, []tdb.Value{tdb.Str(k), tdb.Str(v)})
	}
	add("statement", stmt.String())
	add("task", taskTitle(stmt))
	if stmt.Subscribe {
		add("continuous", "standing statement; re-runs at each granule close emitting rule deltas")
	}
	add("table", stmt.Table)
	add("transactions", fmt.Sprint(tbl.Len()))
	add("granularity", stmt.Granularity.String())
	if span, ok := tbl.Span(stmt.Granularity); ok {
		add("span", timegran.FormatGranule(span.Lo, stmt.Granularity)+".."+timegran.FormatGranule(span.Hi, stmt.Granularity))
		add("granules", fmt.Sprint(span.Len()))
		active := 0
		for _, c := range tbl.GranuleCounts(stmt.Granularity, span) {
			if c >= 1 {
				active++
			}
		}
		add("active granules", fmt.Sprint(active))
		if stmt.During != nil {
			covered := timegran.Granules(stmt.During, stmt.Granularity, span).Count()
			add("feature granules", fmt.Sprint(covered))
		}
	} else {
		add("span", "(empty table)")
	}
	add("min support (per granule)", fmt.Sprintf("%g", stmt.Support))
	add("min confidence", fmt.Sprintf("%g", stmt.Confidence))
	add("min frequency", fmt.Sprintf("%g", stmt.defaultFrequency()))
	cfg := core.Config{
		Granularity:   stmt.Granularity,
		MinSupport:    stmt.Support,
		MinConfidence: stmt.Confidence,
		MinFreq:       stmt.defaultFrequency(),
		MaxK:          stmt.MaxSize,
		Backend:       e.Backend,
		Workers:       e.Workers,
	}
	if root, err := e.buildPlan(tbl, stmt, cfg); err != nil {
		add("plan", "(unavailable: "+err.Error()+")")
	} else {
		for _, line := range plan.Explain(root) {
			add("plan", line)
		}
	}
	// When a statement has already run over this table, append what that
	// run actually did: per-pass counts, resolved backend, rules, time.
	if st := e.Last(stmt.Table); st != nil {
		add("observed: statement", st.Statement)
		if st.Backend != "" {
			add("observed: backend", st.Backend)
		}
		for _, l := range st.Levels {
			add(fmt.Sprintf("observed: pass L%d", l.Level),
				fmt.Sprintf("%d candidates (%d pruned, %d counted) → %d frequent",
					l.Generated, l.Pruned, l.Counted, l.Frequent))
		}
		for _, t := range st.Tasks {
			if strings.HasPrefix(t.Name, "op:") {
				add("observed: "+t.Name, fmt.Sprintf("%.1fms", float64(t.WallNS)/1e6))
			}
		}
		if v, ok := st.Gauges[obs.MetricCountingPredictedCost]; ok {
			add("observed: counting cost (predicted)", fmt.Sprintf("%.3g word-ops", v))
		}
		if v, ok := st.Gauges[obs.MetricCountingObservedNS]; ok {
			add("observed: counting cost (observed)", fmt.Sprintf("%.1fms", v/1e6))
		}
		if n, ok := st.Counters[obs.MetricRulesEmitted]; ok {
			add("observed: rules emitted", fmt.Sprint(n))
		}
		add("observed: wall time", fmt.Sprintf("%.1fms", float64(st.WallNS)/1e6))
	}
	return res, nil
}

// Session is the IQMS front end: one entry point that routes MINE
// statements to the TML executor and everything else to the SQL
// engine, over one shared database — the query-then-mine loop of the
// paper's Figure 1.
type Session struct {
	DB  *tdb.DB
	SQL *minisql.Engine
	TML *Executor
}

// NewSession builds a session over db.
func NewSession(db *tdb.DB) *Session {
	return &Session{DB: db, SQL: minisql.NewEngine(db), TML: NewExecutor(db)}
}

// Exec runs one statement of either language. EXPLAIN MINE ... shows
// the mining plan without executing it.
func (s *Session) Exec(input string) (*minisql.Result, error) {
	return s.ExecContext(context.Background(), input)
}

// ExecContext is Exec under a context. MINE statements observe
// cancellation throughout; SQL statements and EXPLAIN are effectively
// instantaneous and run to completion.
func (s *Session) ExecContext(ctx context.Context, input string) (*minisql.Result, error) {
	if rest, ok := stripExplain(input); ok {
		stmt, err := Parse(rest)
		if err != nil {
			return nil, err
		}
		return s.TML.Explain(stmt)
	}
	if IsSubscribeStatement(input) {
		return nil, fmt.Errorf("tml: SUBSCRIBE registers a standing statement; use \\subscribe in iqms or POST /v1/subscriptions on tarmd")
	}
	if IsMineStatement(input) {
		return s.TML.ExecContext(ctx, input)
	}
	return s.SQL.Exec(input)
}

// SplitExplain detects "EXPLAIN MINE ..." and returns the MINE part;
// front ends that route EXPLAIN themselves (the tarmd server) share
// the session's spelling through it.
func SplitExplain(input string) (string, bool) { return stripExplain(input) }

// stripExplain detects "EXPLAIN MINE ..." (and the continuous form
// "EXPLAIN SUBSCRIBE MINE ...") and returns the statement part.
func stripExplain(input string) (string, bool) {
	fields := strings.Fields(input)
	if len(fields) < 2 || !strings.EqualFold(fields[0], "explain") {
		return "", false
	}
	ok := strings.EqualFold(fields[1], "mine") ||
		(len(fields) >= 3 && strings.EqualFold(fields[1], "subscribe") && strings.EqualFold(fields[2], "mine"))
	if !ok {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(input), fields[0])), true
}
