package tml

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/apriori"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/timegran"
)

func TestParseSubscribe(t *testing.T) {
	stmt, err := Parse(`SUBSCRIBE MINE PERIODS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.4 CONFIDENCE 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Subscribe || stmt.Target != TargetPeriods {
		t.Fatalf("parsed %+v", stmt)
	}
	// Canonical rendering keeps the prefix and round-trips.
	s1 := stmt.String()
	if want := "SUBSCRIBE MINE PERIODS FROM baskets"; len(s1) < len(want) || s1[:len(want)] != want {
		t.Fatalf("String() = %q", s1)
	}
	stmt2, err := Parse(s1)
	if err != nil {
		t.Fatal(err)
	}
	if s2 := stmt2.String(); s2 != s1 {
		t.Fatalf("round trip %q != %q", s2, s1)
	}
	// HISTORY cannot subscribe.
	if _, err := Parse(`SUBSCRIBE MINE HISTORY FROM b RULE 'a => c' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`); err == nil {
		t.Fatal("SUBSCRIBE MINE HISTORY accepted")
	}
	// Routing predicates.
	if !IsMineStatement("SUBSCRIBE MINE RULES FROM b THRESHOLD SUPPORT .1 CONFIDENCE .5") {
		t.Error("SUBSCRIBE MINE not detected as TML")
	}
	if !IsSubscribeStatement("  subscribe   mine rules from b threshold support .1 confidence .5") {
		t.Error("IsSubscribeStatement false on a subscribe form")
	}
	if IsSubscribeStatement("MINE RULES FROM b THRESHOLD SUPPORT .1 CONFIDENCE .5") {
		t.Error("IsSubscribeStatement true on a plain MINE")
	}
	if IsMineStatement("SUBSCRIBE weather_updates") {
		t.Error("SUBSCRIBE without MINE routed to TML")
	}
}

func TestSessionRejectsSubscribe(t *testing.T) {
	db := fixtureDB(t)
	sess := NewSession(db)
	if _, err := sess.Exec(`SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`); err == nil {
		t.Fatal("session executed a SUBSCRIBE statement one-shot")
	}
	// EXPLAIN of the continuous form works and marks it.
	res, err := sess.Exec(`EXPLAIN SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsString() == "continuous" {
			found = true
		}
	}
	if !found {
		t.Fatal("EXPLAIN SUBSCRIBE lacks the continuous property row")
	}
}

func TestDiffFold(t *testing.T) {
	cols := []string{"antecedent", "consequent", "support", "confidence"}
	row := func(a, c, s, cf string) []string { return []string{a, c, s, cf} }
	prev := KeyRows(cols, [][]string{
		row("{a}", "{b}", "0.5", "0.8"),
		row("{c}", "{d}", "0.4", "0.7"),
		row("{e}", "{f}", "0.3", "0.6"),
	})
	cur := KeyRows(cols, [][]string{
		row("{a}", "{b}", "0.6", "0.9"), // measures moved: changed
		row("{e}", "{f}", "0.3", "0.6"), // unchanged: no delta
		row("{g}", "{h}", "0.2", "0.5"), // new: added
	})
	ds := DiffRows(prev, cur)
	kinds := make([]string, len(ds))
	for i, d := range ds {
		kinds[i] = d.Kind
	}
	// Deterministic order: removed, changed, added.
	if !reflect.DeepEqual(kinds, []string{DeltaRemoved, DeltaChanged, DeltaAdded}) {
		t.Fatalf("delta kinds = %v", kinds)
	}
	// Folding prev through the deltas reproduces cur exactly.
	fold := &RuleSet{Cols: cols, Rows: map[string][]string{}}
	for k, v := range prev {
		fold.Rows[k] = v
	}
	if err := fold.Apply(ds); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fold.Rows, cur) {
		t.Fatalf("fold = %v, want %v", fold.Rows, cur)
	}
	// Equal states diff to nothing.
	if ds := DiffRows(cur, cur); len(ds) != 0 {
		t.Fatalf("self-diff = %v", ds)
	}
	// Strict folding: a gap in the stream is an error, not silence.
	bad := &RuleSet{}
	if err := bad.Apply([]RuleDelta{{Kind: DeltaRemoved, Key: "nope"}}); err == nil {
		t.Fatal("Apply removed an unknown key without error")
	}
	if err := bad.Apply([]RuleDelta{{Kind: DeltaChanged, Key: "nope"}}); err == nil {
		t.Fatal("Apply changed an unknown key without error")
	}
}

// streamFixture is an incrementally grown variant of the 28-day
// fixture: streamDay appends one day's baskets, shifting the item mix
// across days so rule sets genuinely change (appear, disappear, move
// support) as granules close.
func streamFixture(t *testing.T) (*tdb.DB, *tdb.TxTable, func(day int)) {
	t.Helper()
	db := tdb.NewMemDB()
	tbl, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC) // a Monday
	appendDay := func(day int) {
		at := start.AddDate(0, 0, day)
		weekend := day%7 == 5 || day%7 == 6
		seasonal := day >= 2 && day <= 4
		for i := 0; i < 10; i++ {
			basket := []string{"bread"}
			if i < 8 {
				basket = append(basket, "milk")
			}
			if seasonal && i < 7 {
				basket = append(basket, "bbq", "charcoal")
			}
			if weekend && i < 9 {
				basket = append(basket, "choc", "wine")
			}
			if day >= 5 && i < 6 {
				basket = append(basket, "tea")
			}
			tbl.Append(at.Add(time.Duration(10+i)*time.Minute), db.Dict().InternAll(basket...))
		}
	}
	return db, tbl, appendDay
}

// TestStandingStep: the refresh triggers, one by one. Registration
// emits the full snapshot; open-granule appends emit nothing; a close
// refreshes; late data into a closed granule refreshes.
func TestStandingStep(t *testing.T) {
	db, tbl, appendDay := streamFixture(t)
	for d := 0; d < 3; d++ {
		appendDay(d)
	}
	ex := NewExecutor(db)
	stmt, err := Parse(`SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStanding(ex, stmt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	upd, err := st.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if upd == nil || !upd.Initial || upd.Rules == 0 || len(upd.Deltas) != upd.Rules {
		t.Fatalf("registration snapshot = %+v", upd)
	}
	for _, d := range upd.Deltas {
		if d.Kind != DeltaAdded {
			t.Fatalf("snapshot delta kind %q", d.Kind)
		}
	}
	// Nothing changed: no update.
	if upd, err := st.Step(ctx); err != nil || upd != nil {
		t.Fatalf("idle Step = %+v, %v", upd, err)
	}
	// Append more rows into the newest (open) granule: still no update.
	appendDay(2)
	if upd, err := st.Step(ctx); err != nil || upd != nil {
		t.Fatalf("open-granule Step = %+v, %v", upd, err)
	}
	// A new day's data closes day 2: refresh fires and reports it.
	appendDay(3)
	upd, err = st.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if upd == nil || upd.Initial {
		t.Fatalf("close Step = %+v", upd)
	}
	wantClosed := timegran.GranuleOf(time.Date(2024, 1, 3, 0, 0, 0, 0, time.UTC), timegran.Day)
	if upd.ClosedThrough != wantClosed {
		t.Fatalf("ClosedThrough = %d, want %d", upd.ClosedThrough, wantClosed)
	}
	// Late data into a closed granule (no new close) still refreshes.
	tbl.Append(time.Date(2024, 1, 1, 8, 0, 0, 0, time.UTC), db.Dict().InternAll("bread", "milk"))
	upd, err = st.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if upd == nil {
		t.Fatal("late closed-granule append did not refresh")
	}
}

// TestStandingOracle is the in-process streaming differential oracle:
// an appending workload closes granules round by round while concurrent
// writers race the refreshes; at every close point the folded delta
// stream must equal a from-scratch MINE of the same statement on a
// cold executor, bit for bit, on every counting backend.
func TestStandingOracle(t *testing.T) {
	backends := []apriori.Backend{apriori.BackendNaive, apriori.BackendHashTree, apriori.BackendBitmap, apriori.BackendRoaring}
	for _, be := range backends {
		be := be
		t.Run(be.String(), func(t *testing.T) {
			t.Parallel()
			runStandingOracle(t, be)
		})
	}
}

func runStandingOracle(t *testing.T, be apriori.Backend) {
	db, tbl, appendDay := streamFixture(t)
	appendDay(0)
	ex := NewExecutor(db)
	ex.Backend = be
	src := `SUBSCRIBE MINE PERIODS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.45 CONFIDENCE 0.6 FREQUENCY 0.9`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStanding(ex, stmt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fold := &RuleSet{}
	apply := func(upd *SubUpdate) {
		if upd == nil {
			return
		}
		fold.Cols = upd.Cols
		if err := fold.Apply(upd.Deltas); err != nil {
			t.Errorf("fold: %v", err)
		}
	}
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for day := 1; day <= 8; day++ {
		// Concurrent writers: several goroutines blast appends into the
		// open granule (and one out-of-order writer into a closed one)
		// while a stepper goroutine races refreshes against them.
		stop := make(chan struct{})
		var stepper sync.WaitGroup
		stepper.Add(1)
		go func() {
			defer stepper.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				upd, err := st.Step(ctx)
				if err != nil {
					t.Errorf("racing Step: %v", err)
					return
				}
				apply(upd)
			}
		}()
		var writers sync.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			writers.Add(1)
			go func() {
				defer writers.Done()
				at := start.AddDate(0, 0, day-1).Add(time.Duration(120+w) * time.Minute)
				items := db.Dict().InternAll("bread", "milk")
				if w == 2 && day > 2 {
					// Out-of-order: late data into a closed granule.
					at = start.AddDate(0, 0, day-2).Add(90 * time.Minute)
					items = db.Dict().InternAll("bread", "tea")
				}
				for i := 0; i < 5; i++ {
					tbl.Append(at.Add(time.Duration(i)*time.Second), items)
				}
			}()
		}
		writers.Wait()
		close(stop)
		stepper.Wait()
		// Advance the stream clock into the next day: the previous day
		// closes. The quiesced Step refreshes at the settled epoch.
		appendDay(day)
		upd, err := st.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		apply(upd)
		if upd == nil {
			t.Fatalf("day %d: close did not refresh", day)
		}
		// Oracle: fold(emitted deltas) == cold MINE on a fresh executor.
		cold := NewExecutor(db)
		cold.Backend = be
		coldStmt := *stmt
		coldStmt.Subscribe = false
		res, err := cold.ExecStmt(&coldStmt)
		if err != nil {
			t.Fatal(err)
		}
		want := (&RuleSet{Cols: res.Cols, Rows: KeyRows(res.Cols, DisplayCells(res))}).Sorted()
		got := fold.Sorted()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("day %d: folded stream differs from cold mine\nfolded: %v\ncold:   %v", day, got, want)
		}
	}
}

// TestStandingOracleAcrossStatements folds three different standing
// statements (rules, cycles, calendars) over the same growing table.
func TestStandingOracleAcrossStatements(t *testing.T) {
	srcs := []string{
		`SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6`,
		`SUBSCRIBE MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6 MAX LENGTH 7 MIN REPS 2`,
		`SUBSCRIBE MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6 MIN REPS 2`,
	}
	db, _, appendDay := streamFixture(t)
	appendDay(0)
	ex := NewExecutor(db)
	ctx := context.Background()
	type sub struct {
		st   *Standing
		fold *RuleSet
		stmt *MineStmt
	}
	var subs []sub
	for _, src := range srcs {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStanding(ex, stmt)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{st: st, fold: &RuleSet{}, stmt: stmt})
	}
	for day := 1; day <= 9; day++ {
		appendDay(day)
		for i, s := range subs {
			upd, err := s.st.Step(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if upd != nil {
				if err := s.fold.Apply(upd.Deltas); err != nil {
					t.Fatalf("sub %d fold: %v", i, err)
				}
			}
			cold := NewExecutor(db)
			coldStmt := *s.stmt
			coldStmt.Subscribe = false
			res, err := cold.ExecStmt(&coldStmt)
			if err != nil {
				t.Fatal(err)
			}
			want := (&RuleSet{Rows: KeyRows(res.Cols, DisplayCells(res))}).Sorted()
			if got := s.fold.Sorted(); !reflect.DeepEqual(got, want) {
				t.Fatalf("day %d sub %d (%s): fold differs from cold mine\nfolded: %v\ncold:   %v",
					day, i, s.stmt.Target, got, want)
			}
		}
	}
}

// TestStandingJournal: refreshes run through the shared executor, so
// they land in the journal as SUBSCRIBE-spelled statements.
func TestStandingJournal(t *testing.T) {
	db, _, appendDay := streamFixture(t)
	appendDay(0)
	ex := NewExecutor(db)
	ex.Journal = obs.NewJournal(obs.JournalConfig{})
	stmt, err := Parse(`SUBSCRIBE MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStanding(ex, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := ex.Journal.Recent(10)
	if len(recs) == 0 {
		t.Fatal("refresh left no journal record")
	}
	found := false
	for _, r := range recs {
		if r.Statement == stmt.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no journal record for %q: %+v", stmt.String(), recs)
	}
}
