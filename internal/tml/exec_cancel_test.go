package tml

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/tarm-project/tarm/internal/obs"
)

// cancelTracer fires a context cancel after the build's n-th counting
// pass, cancelling a statement deterministically mid-build.
type cancelTracer struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (t *cancelTracer) Enabled() bool         { return true }
func (t *cancelTracer) StartTask(string)      {}
func (t *cancelTracer) EndTask()              {}
func (t *cancelTracer) StartPass(int)         {}
func (t *cancelTracer) Counter(string, int64) {}
func (t *cancelTracer) Gauge(string, float64) {}
func (t *cancelTracer) EndPass(obs.PassStats) {
	t.seen++
	if t.seen == t.after {
		t.cancel()
	}
}

// The five MINE statement forms, one per mining task.
var cancelStmts = map[string]string{
	"rules":     `MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
	"during":    `MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
	"periods":   `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0`,
	"cycles":    `MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
	"calendars": `MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
	"history":   `MINE HISTORY FROM baskets RULE 'bread => milk' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
}

// TestExecCancelledStatements: an already-cancelled context makes every
// statement form return context.Canceled without a result.
func TestExecCancelledStatements(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, stmt := range cancelStmts {
		res, err := ex.ExecContext(ctx, stmt)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: got a result from a cancelled statement", name)
		}
	}
}

// TestExecCancelMidBuild: a statement cancelled while its hold table is
// building (after the first counting pass) returns context.Canceled
// from every task driver.
func TestExecCancelMidBuild(t *testing.T) {
	for name, stmt := range cancelStmts {
		t.Run(name, func(t *testing.T) {
			db := fixtureDB(t)
			ex := NewExecutor(db)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ex.Tracer = &cancelTracer{cancel: cancel, after: 1}
			_, err := ex.ExecContext(ctx, stmt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestSessionExecContextCancelled: cancellation reaches MINE statements
// through the session router too.
func TestSessionExecContextCancelled(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecContext(ctx, cancelStmts["periods"]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// SQL statements are instantaneous and uncancellable by design.
	if _, err := s.Exec(`SELECT COUNT(*) FROM baskets`); err != nil {
		t.Fatalf("session SQL after cancelled MINE: %v", err)
	}
}

// TestLimitZero: LIMIT 0 parses and returns an empty, well-formed
// result — the columns survive, the rows don't.
func TestLimitZero(t *testing.T) {
	stmt, err := Parse(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Limit != 0 {
		t.Fatalf("Limit = %d, want 0", stmt.Limit)
	}
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
	if len(res.Cols) != 4 {
		t.Fatalf("LIMIT 0 lost the columns: %v", res.Cols)
	}
}

// TestLimitNegativeClamps: a hand-built statement with a negative
// non-sentinel limit (the parser rejects these, but ExecStmt accepts
// arbitrary MineStmt values) clamps to zero instead of panicking.
func TestLimitNegativeClamps(t *testing.T) {
	stmt, err := Parse(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	stmt.Limit = -5
	db := fixtureDB(t)
	ex := NewExecutor(db)
	res, err := ex.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("negative limit returned %d rows, want 0", len(res.Rows))
	}
}

func TestParseRejectsNegativeLimit(t *testing.T) {
	if _, err := Parse(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 LIMIT -1`); err == nil {
		t.Fatal("parser accepted a negative LIMIT")
	}
}

// planLines extracts the "plan" rows of an EXPLAIN result in order.
func planLines(t *testing.T, ex *Executor, stmtSrc string) []string {
	t.Helper()
	stmt, err := Parse(stmtSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, row := range res.Rows {
		if row[0].AsString() == "plan" {
			lines = append(lines, row[1].AsString())
		}
	}
	return lines
}

// TestExplainPlanColdThenCached: on a fresh executor EXPLAIN shows a
// cold build-hold; after the statement runs once, the same EXPLAIN
// shows the hold table coming from cache.
func TestExplainPlanColdThenCached(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	const stmt = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 LIMIT 10`

	cold := planLines(t, ex, stmt)
	joined := strings.Join(cold, "\n")
	for _, want := range []string{"limit (n=10)", "render (", "mine:periods", "build-hold (cache=cold", "scan (table=baskets"} {
		if !strings.Contains(joined, want) {
			t.Errorf("cold plan missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "cached-hold") {
		t.Errorf("cold plan claims a cache hit:\n%s", joined)
	}

	if _, err := ex.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	warm := strings.Join(planLines(t, ex, stmt), "\n")
	if !strings.Contains(warm, "cached-hold (cache=hit") {
		t.Errorf("warm plan not served from cache:\n%s", warm)
	}
	if strings.Contains(warm, "build-hold") {
		t.Errorf("warm plan still cold:\n%s", warm)
	}
}

// TestExplainPlanRethreshold: a statement at higher support than the
// resident build is served by monotone re-thresholding, and the plan
// says so.
func TestExplainPlanRethreshold(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	if _, err := ex.Exec(`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0`); err != nil {
		t.Fatal(err)
	}
	warm := strings.Join(planLines(t, ex,
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.6 CONFIDENCE 0.7 FREQUENCY 1.0`), "\n")
	if !strings.Contains(warm, "cached-hold (cache=rethreshold") {
		t.Errorf("plan does not show the re-threshold path:\n%s", warm)
	}
}

// TestExplainPlanTraditional: traditional rules mine the table
// directly — no hold operator in the plan.
func TestExplainPlanTraditional(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	lines := planLines(t, ex, `MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"mine:traditional", "scan (table=baskets"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "hold") {
		t.Errorf("traditional plan should not build a hold table:\n%s", joined)
	}
}

// TestExplainPlanDuringPrune: PRUNE adds a prune operator between the
// mine and render stages.
func TestExplainPlanDuringPrune(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	lines := planLines(t, ex,
		`MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 PRUNE LIFT 1.1`)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"mine:during", "prune (", "lift=1.1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
}

// TestExecMatchesExplainPlan: the op spans observed during execution
// are exactly the operators the plan printed — EXPLAIN and execution
// come from one plan object.
func TestExecMatchesExplainPlan(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	const stmt = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 LIMIT 10`
	// Capture the plan before running: executing warms the cache, which
	// would legitimately change the hold operator of a later EXPLAIN.
	lines := planLines(t, ex, stmt)
	if _, err := ex.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	st := ex.Last("baskets")
	if st == nil {
		t.Fatal("no stats collected")
	}
	var ops []string
	for _, task := range st.Tasks {
		if name, ok := strings.CutPrefix(task.Name, "op:"); ok {
			ops = append(ops, name)
		}
	}
	if len(ops) != len(lines) {
		t.Fatalf("executed %d operators %v but the plan has %d lines:\n%s",
			len(ops), ops, len(lines), strings.Join(lines, "\n"))
	}
	// The plan prints root first; execution runs leaf first.
	for i, line := range lines {
		op := ops[len(ops)-1-i]
		if !strings.Contains(line, op) {
			t.Errorf("plan line %q does not match executed operator %q", line, op)
		}
	}
}

// explainRows re-parses an EXPLAIN result into key → value lines.
func explainRows(t *testing.T, ex *Executor, stmtSrc string) map[string][]string {
	t.Helper()
	stmt, err := Parse(stmtSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Explain(stmt)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]string{}
	for _, row := range res.Rows {
		k := row[0].AsString()
		out[k] = append(out[k], row[1].AsString())
	}
	return out
}

// TestExplainCountingCost: every MINE plan carries the cost model's
// predicted backend and predicted cost, and once the statement has
// run EXPLAIN also reports the observed counting cost — including the
// explicit zero of a cache-served run.
func TestExplainCountingCost(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	const stmt = `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 LIMIT 10`

	plan := strings.Join(planLines(t, ex, stmt), "\n")
	for _, want := range []string{"predicted_backend=", "predicted_cost="} {
		if !strings.Contains(plan, want) {
			t.Errorf("cold plan missing %q:\n%s", want, plan)
		}
	}

	if _, err := ex.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	rows := explainRows(t, ex, stmt)
	if v := rows["observed: counting cost (predicted)"]; len(v) != 1 || !strings.Contains(v[0], "word-ops") {
		t.Errorf("predicted counting cost line = %q", v)
	}
	if v := rows["observed: counting cost (observed)"]; len(v) != 1 || !strings.HasSuffix(v[0], "ms") {
		t.Errorf("observed counting cost line = %q", v)
	}

	// A second run is served from the hold-table cache and does no
	// counting; the observed line must still appear, reporting 0.
	if _, err := ex.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	rows = explainRows(t, ex, stmt)
	if v := rows["observed: counting cost (observed)"]; len(v) != 1 || v[0] != "0.0ms" {
		t.Errorf("cache-served observed counting cost = %q, want 0.0ms", v)
	}
}
