package tml

import (
	"strings"
	"testing"

	"github.com/tarm-project/tarm/internal/obs"
)

// TestExecutorStats pins the executor's statement telemetry: every MINE
// run is collected, Last exposes it, a configured Tracer sees it too,
// and EXPLAIN appends an observed section once a run exists.
func TestExecutorStats(t *testing.T) {
	db := fixtureDB(t)
	s := NewSession(db)
	external := obs.NewCollectTracer()
	s.TML.Tracer = external

	if st := s.TML.Last("baskets"); st != nil {
		t.Fatalf("stats before any run: %+v", st)
	}

	stmt := `MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 MIN LENGTH 2`
	if _, err := s.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	st := s.TML.Last("baskets")
	if st == nil {
		t.Fatal("no stats after a MINE run")
	}
	if !strings.Contains(st.Statement, "MINE PERIODS") {
		t.Errorf("statement = %q", st.Statement)
	}
	if len(st.Levels) == 0 {
		t.Error("no passes collected")
	}
	for _, l := range st.Levels {
		if l.Pruned+l.Counted != l.Generated {
			t.Errorf("L%d pruned %d + counted %d != generated %d", l.Level, l.Pruned, l.Counted, l.Generated)
		}
	}
	if st.Counters[obs.MetricStatements] != 1 {
		t.Errorf("statements counter = %d", st.Counters[obs.MetricStatements])
	}
	if _, ok := st.Counters[obs.MetricRulesEmitted]; !ok {
		t.Error("rules_emitted counter missing")
	}

	// The external tracer saw the same run.
	ext := external.Stats()
	if ext.Counters[obs.MetricStatements] != 1 || len(ext.Levels) != len(st.Levels) {
		t.Errorf("external tracer: statements=%d levels=%d, want 1/%d",
			ext.Counters[obs.MetricStatements], len(ext.Levels), len(st.Levels))
	}

	// EXPLAIN now carries the observed section.
	res, err := s.Exec(`EXPLAIN ` + stmt)
	if err != nil {
		t.Fatal(err)
	}
	props := map[string]string{}
	for _, row := range res.Rows {
		props[row[0].AsString()] = row[1].AsString()
	}
	if !strings.Contains(props["observed: statement"], "MINE PERIODS") {
		t.Errorf("observed statement = %q", props["observed: statement"])
	}
	if _, ok := props["observed: pass L1"]; !ok {
		t.Error("observed pass rows missing")
	}
	if _, ok := props["observed: rules emitted"]; !ok {
		t.Error("observed rules emitted missing")
	}

	// Traditional mining is traced too, including the resolved backend.
	if _, err := s.Exec(`MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`); err != nil {
		t.Fatal(err)
	}
	st = s.TML.Last("baskets")
	if !strings.Contains(st.Statement, "MINE RULES") {
		t.Errorf("statement not replaced: %q", st.Statement)
	}
	if st.Backend == "" {
		t.Error("traditional run reported no backend")
	}
	// External tracer accumulated both statements.
	if got := external.Stats().Counters[obs.MetricStatements]; got != 2 {
		t.Errorf("external statements counter = %d, want 2", got)
	}
}
