// Package tml implements the Temporal Mining Language, the kernel of
// the integrated query-and-mining system (IQMS). The paper's prototype
// integrated TML with Oracle SQL so a data miner could alternate
// between querying (data understanding) and ad-hoc mining (task
// execution) in one session; here TML statements run next to minisql
// statements over the same tdb database.
//
// Statement forms, one per mining task:
//
//	MINE RULES FROM baskets
//	     [DURING 'month in (jun..aug)']
//	     [AT GRANULARITY day]
//	     THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6 [FREQUENCY 0.9]
//	     [MAX SIZE 4] [LIMIT 20]
//
//	MINE PERIODS FROM baskets
//	     [AT GRANULARITY day]
//	     THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6 [FREQUENCY 0.9]
//	     [MIN LENGTH 3] [MAX SIZE 4] [LIMIT 20]
//
//	MINE CYCLES FROM baskets
//	     [AT GRANULARITY day]
//	     THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6 [FREQUENCY 1.0]
//	     [MAX LENGTH 31] [MIN REPS 2] [MAX SIZE 4] [LIMIT 20]
//
//	MINE CALENDARS FROM baskets
//	     [AT GRANULARITY day]
//	     THRESHOLD SUPPORT 0.05 CONFIDENCE 0.6 [FREQUENCY 1.0]
//	     [MIN REPS 2] [MAX SIZE 4] [LIMIT 20]
//
// MINE RULES without DURING is the traditional, time-agnostic Apriori
// run; with DURING it is Task III over the quoted calendar-algebra
// pattern. PERIODS is Task I; CYCLES and CALENDARS are the two halves
// of Task II.
package tml

import (
	"fmt"
	"strings"

	"github.com/tarm-project/tarm/internal/timegran"
)

// Target selects the mining task of a MINE statement.
type Target int

// The statement targets. TargetHistory is the result-analysis form:
// MINE HISTORY FROM t RULE 'a, b => c' prints the rule's per-granule
// support series instead of discovering anything.
const (
	TargetRules Target = iota
	TargetPeriods
	TargetCycles
	TargetCalendars
	TargetHistory
)

var targetNames = [...]string{"RULES", "PERIODS", "CYCLES", "CALENDARS", "HISTORY"}

// NoLimit is the MineStmt.Limit sentinel meaning "no LIMIT clause".
// LIMIT 0 is distinct and legal: it returns zero rows.
const NoLimit = -1

// String returns the TML spelling.
func (t Target) String() string {
	if t < TargetRules || t > TargetHistory {
		return fmt.Sprintf("Target(%d)", int(t))
	}
	return targetNames[t]
}

// MineStmt is a parsed MINE statement.
type MineStmt struct {
	Target Target
	Table  string
	// Subscribe marks the continuous form (SUBSCRIBE MINE ...): the
	// statement registers as a standing query that re-runs when granules
	// close and emits rule deltas, instead of executing once. HISTORY
	// cannot be subscribed (the parser rejects it).
	Subscribe bool
	// During is the parsed DURING pattern (nil when absent); DuringSrc
	// keeps the original text for reporting.
	During    timegran.Pattern
	DuringSrc string
	// Granularity of the time axis; defaults to Day.
	Granularity timegran.Granularity
	// Thresholds. Support and Confidence are required; Frequency
	// defaults to 1 for CYCLES/CALENDARS and 0.9 for PERIODS and
	// DURING-rules.
	Support, Confidence float64
	Frequency           float64 // 0 = defaulted by target
	// Task options (0 = defaults of the core package).
	MinLength int // PERIODS: minimum period length
	MaxLength int // CYCLES: maximum cycle length
	MinReps   int // CYCLES/CALENDARS: minimum occurrences
	MaxSize   int // bound on itemset size (MaxK)
	Limit     int // NoLimit (-1) = no limit; 0 = LIMIT 0 (empty result)
	// RuleSpec is the HISTORY target's rule, e.g. "coffee => croissant"
	// (item names resolved against the database dictionary at execution).
	RuleSpec string
	// PruneLift / PruneImprovement / PrunePValue enable interestingness
	// filters on MINE RULES output (0 = filter off).
	PruneLift, PruneImprovement, PrunePValue float64
}

// String renders the statement back in TML syntax; Parse(s.String())
// yields an equivalent statement (defaults are printed explicitly).
func (m *MineStmt) String() string {
	var b strings.Builder
	if m.Subscribe {
		b.WriteString("SUBSCRIBE ")
	}
	fmt.Fprintf(&b, "MINE %s FROM %s", m.Target, m.Table)
	if m.RuleSpec != "" {
		fmt.Fprintf(&b, " RULE '%s'", m.RuleSpec)
	}
	if m.During != nil {
		fmt.Fprintf(&b, " DURING '%s'", m.During.String())
	}
	fmt.Fprintf(&b, " AT GRANULARITY %s", m.Granularity)
	fmt.Fprintf(&b, " THRESHOLD SUPPORT %g CONFIDENCE %g", m.Support, m.Confidence)
	if m.Frequency > 0 {
		fmt.Fprintf(&b, " FREQUENCY %g", m.Frequency)
	}
	if m.MinLength > 0 {
		fmt.Fprintf(&b, " MIN LENGTH %d", m.MinLength)
	}
	if m.MaxLength > 0 {
		fmt.Fprintf(&b, " MAX LENGTH %d", m.MaxLength)
	}
	if m.MinReps > 0 {
		fmt.Fprintf(&b, " MIN REPS %d", m.MinReps)
	}
	if m.MaxSize > 0 {
		fmt.Fprintf(&b, " MAX SIZE %d", m.MaxSize)
	}
	if m.PruneLift > 0 || m.PruneImprovement > 0 || m.PrunePValue > 0 {
		b.WriteString(" PRUNE")
		if m.PruneLift > 0 {
			fmt.Fprintf(&b, " LIFT %g", m.PruneLift)
		}
		if m.PruneImprovement > 0 {
			fmt.Fprintf(&b, " IMPROVEMENT %g", m.PruneImprovement)
		}
		if m.PrunePValue > 0 {
			fmt.Fprintf(&b, " PVALUE %g", m.PrunePValue)
		}
	}
	if m.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", m.Limit)
	}
	return b.String()
}

// defaultFrequency resolves the target-dependent frequency default.
func (m *MineStmt) defaultFrequency() float64 {
	if m.Frequency > 0 {
		return m.Frequency
	}
	switch m.Target {
	case TargetCycles, TargetCalendars:
		return 1
	default:
		return 0.9
	}
}
