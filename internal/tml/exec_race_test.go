package tml

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/minisql"
)

// sameResult compares two result tables cell by cell.
func sameResult(t *testing.T, label string, want, got *minisql.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i, wr := range want.Rows {
		for j := range wr {
			if got.Rows[i][j] != wr[j] {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, got.Rows[i][j], wr[j])
			}
		}
	}
}

// TestExecutorConcurrentStatements runs a mixed TML workload from many
// goroutines against one executor — the shape of parallel IQMS
// sessions sharing a server — and checks every statement's result
// equals its serial run. Run with -race: it exercises the hold-table
// cache's locking, singleflight and LRU paths concurrently.
func TestExecutorConcurrentStatements(t *testing.T) {
	db := fixtureDB(t)
	ex := NewExecutor(db)
	statements := []string{
		`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 MIN LENGTH 2`,
		`MINE CYCLES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 0.9 MAX LENGTH 10`,
		`MINE CALENDARS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 0.9`,
		`MINE RULES FROM baskets DURING 'weekday in (sat, sun)' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 0.8`,
		`MINE HISTORY FROM baskets RULE 'bbq => charcoal' THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7`,
	}
	// Serial reference results.
	want := make([]*minisql.Result, len(statements))
	for i, s := range statements {
		res, err := ex.Exec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		want[i] = res
	}
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(statements)
				res, err := ex.Exec(statements[i])
				if err != nil {
					t.Errorf("goroutine %d: %s: %v", g, statements[i], err)
					return
				}
				sameResult(t, fmt.Sprintf("goroutine %d stmt %d", g, i), want[i], res)
			}
		}(g)
	}
	wg.Wait()
	st := ex.Cache.Stats()
	if st.Hits+st.Rethresholds == 0 {
		t.Errorf("concurrent workload never hit the cache: %+v", st)
	}
}

// TestExecutorConcurrentAppends mines while a writer appends: every
// statement must still succeed (rebuilding when its cached table went
// stale), and the cache must end up consistent with the final epoch.
func TestExecutorConcurrentAppends(t *testing.T) {
	db := fixtureDB(t)
	tbl, _ := db.TxTable("baskets")
	ex := NewExecutor(db)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := time.Date(2024, 2, 1, 12, 0, 0, 0, time.UTC)
		for i := 0; i < 200; i++ {
			tbl.Append(at.AddDate(0, 0, i%10), db.Dict().InternAll("bread", "milk"))
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ex.Exec(`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 MIN LENGTH 2`); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// The table is quiescent now: one more statement must reconcile the
	// cache with the final epoch, and a second must hit.
	if _, err := ex.Exec(`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 MIN LENGTH 2`); err != nil {
		t.Fatal(err)
	}
	before := ex.Cache.Stats()
	if _, err := ex.Exec(`MINE PERIODS FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.7 FREQUENCY 1.0 MIN LENGTH 2`); err != nil {
		t.Fatal(err)
	}
	after := ex.Cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("quiescent re-run did not hit the cache: before %+v, after %+v", before, after)
	}
}
