package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/minisql"
	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
	"github.com/tarm-project/tarm/internal/tml"
)

// fixtureDB is the 28-day basket fixture shared with the tml tests: a
// weekday staple (bread+milk), a seasonal week (bbq+charcoal in days
// 7..13) and a weekend treat (choc+wine), 10 transactions per day.
func fixtureDB(t *testing.T) *tdb.DB {
	t.Helper()
	db := tdb.NewMemDB()
	tbl, err := db.CreateTxTable("baskets")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC) // a Monday
	for d := 0; d < 28; d++ {
		at := start.AddDate(0, 0, d)
		weekend := d%7 == 5 || d%7 == 6
		seasonal := d >= 7 && d <= 13
		for i := 0; i < 10; i++ {
			basket := []string{"bread"}
			if i < 8 {
				basket = append(basket, "milk")
			}
			if seasonal {
				basket = append(basket, "bbq", "charcoal")
			}
			if weekend && i < 9 {
				basket = append(basket, "choc", "wine")
			}
			tbl.Append(at.Add(time.Duration(i)*time.Minute), db.Dict().InternAll(basket...))
		}
	}
	return db
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(fixtureDB(t), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postStatement sends one statement as a raw text body and returns the
// status code, body and Retry-After header.
func postStatement(t *testing.T, url, stmt, format string) (int, string, string) {
	t.Helper()
	u := url + "/v1/statements"
	if format != "" {
		u += "?format=" + format
	}
	resp, err := http.Post(u, "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
}

// The statements of the five mining tasks plus EXPLAIN, used by the
// identity and concurrency tests.
var testStatements = []string{
	"MINE RULES FROM baskets THRESHOLD SUPPORT 0.5 CONFIDENCE 0.6;",
	"MINE PERIODS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MIN LENGTH 3;",
	"MINE CYCLES FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MAX LENGTH 14 MIN REPS 2;",
	"MINE CALENDARS FROM baskets AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8 MIN REPS 2;",
	"MINE RULES FROM baskets DURING 'weekday in (6..7)' AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6 FREQUENCY 0.8;",
	"MINE HISTORY FROM baskets RULE 'bread => milk' AT GRANULARITY day THRESHOLD SUPPORT 0.3 CONFIDENCE 0.6;",
}

// TestTextFormatMatchesTarmine is the byte-identity acceptance check:
// for every task, ?format=text must return exactly the bytes tarmine
// prints for the same statement, because both ends render through
// minisql.Format.
func TestTextFormatMatchesTarmine(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The reference: a plain session over an identical database, the
	// same path `tarmine -e` takes.
	session := tml.NewSession(fixtureDB(t))
	for _, stmt := range testStatements {
		res, err := session.ExecContext(context.Background(), stmt)
		if err != nil {
			t.Fatalf("%s: reference execution: %v", stmt, err)
		}
		var want strings.Builder
		minisql.Format(&want, res)

		code, got, _ := postStatement(t, ts.URL, stmt, "text")
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", stmt, code, got)
		}
		if got != want.String() {
			t.Errorf("%s:\nserver:\n%s\ntarmine:\n%s", stmt, got, want.String())
		}
	}
}

// TestJSONResponse checks the default JSON shape: display-rendered
// cells, a row count, and the statement echoed back.
func TestJSONResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stmt := testStatements[0]
	resp, err := http.Post(ts.URL+"/v1/statements", "application/json",
		strings.NewReader(fmt.Sprintf(`{"statement": %q}`, stmt)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Statement string     `json:"statement"`
		Cols      []string   `json:"cols"`
		Rows      [][]string `json:"rows"`
		RowCount  int        `json:"row_count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Statement != stmt || len(out.Cols) == 0 || out.RowCount != len(out.Rows) || out.RowCount == 0 {
		t.Errorf("bad response: %+v", out)
	}
}

// TestConcurrentIdenticalStatementsSingleBuild is the shared-cache
// acceptance check: N concurrent identical statements must trigger
// exactly one cold hold-table build — everyone else joins the flight
// or reads the resident entry — observable both in the cache's own
// stats and in the server's metrics registry.
func TestConcurrentIdenticalStatementsSingleBuild(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{Pool: n, Queue: n})
	stmt := testStatements[2] // cycles: a real multi-pass build

	var wg sync.WaitGroup
	type reply struct {
		code int
		body string
	}
	replies := make([]reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := postStatement(t, ts.URL, stmt, "text")
			replies[i] = reply{code, body}
		}(i)
	}
	wg.Wait()

	for i, r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
		if r.body != replies[0].body {
			t.Errorf("request %d: body differs from request 0", i)
		}
	}

	cs := s.Executor().Cache.Stats()
	if cs.Misses != 1 {
		t.Errorf("cold builds = %d, want exactly 1 (stats %+v)", cs.Misses, cs)
	}
	if warm := cs.Hits + cs.Rethresholds + cs.Dedups; warm != n-1 {
		t.Errorf("warm statements = %d, want %d (stats %+v)", warm, n-1, cs)
	}
	if got := s.Registry().Counter("tarm_holdcache_misses_total").Value(); got != 1 {
		t.Errorf("registry misses = %d, want 1", got)
	}
	if got := s.Registry().Counter(MetricOK).Value(); got != n {
		t.Errorf("ok counter = %d, want %d", got, n)
	}
	// Occupancy gauges must settle back to zero once every statement
	// has finished (the slot-release and admission defers each
	// republish, and the admission one runs last).
	if got := s.Registry().Gauge(MetricInflight).Value(); got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
	if got := s.Registry().Gauge(MetricQueueDepth).Value(); got != 0 {
		t.Errorf("queue depth gauge = %v after drain, want 0", got)
	}
}

// TestDeadlineExceeded504 checks the per-statement deadline path: a
// server timeout far below any real mining run must surface as 504
// via the context plumbing, and bump the timeout counter.
func TestDeadlineExceeded504(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	code, body, _ := postStatement(t, ts.URL, testStatements[2], "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Errorf("body %q does not mention the deadline", body)
	}
	if got := s.Registry().Counter(MetricTimeouts).Value(); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
}

// TestRequestTimeoutTightensDeadline checks that a request's
// timeout_ms lowers the server deadline for that request only.
func TestRequestTimeoutTightensDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: time.Hour})
	resp, err := http.Post(ts.URL+"/v1/statements", "application/json",
		strings.NewReader(fmt.Sprintf(`{"statement": %q, "timeout_ms": 1}`, testStatements[2])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// 1ms may or may not expire before the first cancellation point;
	// accept 504 (expired) but never a hang — and a second, untimed
	// request must still succeed under the 1h server deadline.
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 or 504", resp.StatusCode)
	}
	code, body, _ := postStatement(t, ts.URL, testStatements[0], "")
	if code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", code, body)
	}
}

// blockTracer wedges the first counting pass open until release is
// closed, holding its statement in the pool so the tests can observe a
// full queue and a drain deterministically.
type blockTracer struct {
	entered chan struct{} // closed when a pass has started
	release chan struct{} // close to let the statement finish
	once    sync.Once
}

func newBlockTracer() *blockTracer {
	return &blockTracer{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockTracer) Enabled() bool        { return true }
func (b *blockTracer) StartTask(string)     {}
func (b *blockTracer) EndTask()             {}
func (b *blockTracer) EndPass(obs.PassStats) {}
func (b *blockTracer) Counter(string, int64) {}
func (b *blockTracer) Gauge(string, float64) {}
func (b *blockTracer) StartPass(int) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
}

// waitHealthz polls /healthz until pred holds or the test deadline.
func waitHealthz(t *testing.T, url string, pred func(h map[string]any) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h map[string]any
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pred(h) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("healthz never reached the expected state")
}

// TestQueueFull429 fills the pool (1) and the queue (1) with blocked
// statements and checks the next request is rejected with 429 and a
// Retry-After hint, then that the blocked work still completes.
func TestQueueFull429(t *testing.T) {
	bt := newBlockTracer()
	s, ts := newTestServer(t, Config{Pool: 1, Queue: 1, RetryAfter: 7 * time.Second, Tracer: bt})

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := postStatement(t, ts.URL, testStatements[2], "")
			results <- code
		}()
	}
	// Wait until one statement is executing (wedged in its first pass)
	// and the other is queued; then the server is exactly full.
	<-bt.entered
	waitHealthz(t, ts.URL, func(h map[string]any) bool {
		return h["inflight"].(float64) == 1 && h["queued"].(float64) == 1
	})

	code, body, retry := postStatement(t, ts.URL, testStatements[2], "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if retry != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", retry)
	}
	if got := s.Registry().Counter(MetricQueueFull).Value(); got != 1 {
		t.Errorf("queue-full counter = %d, want 1", got)
	}

	close(bt.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("blocked request finished with %d, want 200", code)
		}
	}
}

// TestGracefulDrain wedges a statement in flight, starts a drain,
// checks new statements get 503 while the drain waits, then releases
// the statement and checks the drain completes and the in-flight
// statement got its full 200 answer.
func TestGracefulDrain(t *testing.T) {
	bt := newBlockTracer()
	s, ts := newTestServer(t, Config{Pool: 2, Tracer: bt})

	result := make(chan int, 1)
	go func() {
		code, _, _ := postStatement(t, ts.URL, testStatements[2], "")
		result <- code
	}()
	<-bt.entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitHealthz(t, ts.URL, func(h map[string]any) bool { return h["status"] == "draining" })

	code, body, retry := postStatement(t, ts.URL, testStatements[0], "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status during drain %d, want 503: %s", code, body)
	}
	if retry == "" {
		t.Error("503 without Retry-After")
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a statement still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(bt.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-result; code != http.StatusOK {
		t.Errorf("in-flight statement finished with %d, want 200", code)
	}

	// A drain pushed past its context deadline reports the interrupt.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain of an idle server with cancelled ctx: %v", err)
	}
}

// TestDrainDeadline checks Drain gives up when its context expires
// while a statement is wedged.
func TestDrainDeadline(t *testing.T) {
	bt := newBlockTracer()
	s, ts := newTestServer(t, Config{Pool: 1, Tracer: bt})
	done := make(chan int, 1)
	go func() {
		code, _, _ := postStatement(t, ts.URL, testStatements[2], "")
		done <- code
	}()
	<-bt.entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("drain returned nil with a wedged statement")
	}
	close(bt.release)
	<-done
}

// TestBadStatements checks the 400 family: SQL (not served here),
// parse errors, empty bodies, bad JSON.
func TestBadStatements(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body, ctype string
	}{
		{"sql", "SELECT item FROM baskets;", "text/plain"},
		{"parse error", "MINE RULES FROM baskets;", "text/plain"}, // missing THRESHOLD
		{"unknown table", "MINE RULES FROM nope THRESHOLD SUPPORT 0.5 CONFIDENCE 0.5;", "text/plain"},
		{"empty", "", "text/plain"},
		{"bad json", "{", "application/json"},
		{"empty json", "{}", "application/json"},
	} {
		resp, err := http.Post(ts.URL+"/v1/statements", tc.ctype, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestExplain checks EXPLAIN MINE routes to the planner and returns
// the plan rows.
func TestExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postStatement(t, ts.URL, "EXPLAIN "+testStatements[2], "text")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, "mine:cycles") || !strings.Contains(body, "scan") {
		t.Errorf("plan output missing operators:\n%s", body)
	}
}

// TestTables checks the catalog endpoint.
func TestTables(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
		Rows int    `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "baskets" || infos[0].Kind != "transactions" || infos[0].Rows != 280 {
		t.Errorf("tables: %+v", infos)
	}
}

// TestMetricsEndpoint checks the observability mux rides along on the
// server's port and carries both server and engine metrics.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := postStatement(t, ts.URL, testStatements[0], ""); code != http.StatusOK {
		t.Fatalf("statement failed with %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{MetricRequests, MetricOK, MetricLatency, "tarm_passes_total"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}
