// Batched ingest: POST /v1/append accepts a batch of timestamped
// transactions for one table, admission-controlled through the same
// pool as statements so a write burst backpressures instead of starving
// the miners. Appends feed the table's change log, so a warm hold-table
// cache entry is delta-maintained on the next MINE rather than
// invalidated.

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
)

// Append metric names, next to the tarmd_* statement metrics.
const (
	MetricAppends       = "tarmd_appends_total"    // append batches admitted (counter)
	MetricAppendTx      = "tarmd_append_tx_total"  // transactions appended (counter)
	MetricAppendErrors  = "tarmd_append_err_total" // append batches failed (counter)
	MetricAppendLatency = "tarmd_append_seconds"   // end-to-end append latency (histogram)
)

// maxAppendBody bounds append bodies: batches are bigger than
// statements, but an ingest endpoint is not a bulk loader.
const maxAppendBody = 8 << 20

// appendRequest is the POST /v1/append JSON body.
type appendRequest struct {
	Table        string     `json:"table"`
	Transactions []appendTx `json:"transactions"`
}

// appendTx is one transaction of an append batch. Items are names,
// interned into the database dictionary on arrival.
type appendTx struct {
	At    time.Time `json:"at"`
	Items []string  `json:"items"`
}

// appendResponse reports what landed: the count, the table's write
// epoch after the batch (which the next MINE's delta maintenance will
// catch up to) and timing.
type appendResponse struct {
	Table     string  `json:"table"`
	RequestID string  `json:"request_id,omitempty"`
	Appended  int     `json:"appended"`
	Epoch     int64   `json:"epoch"`
	Durable   bool    `json:"durable"` // acked after WAL commit
	WallMS    float64 `json:"wall_ms"`
}

// handleAppend admits and applies one append batch.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	req, err := readAppend(r)
	if err != nil {
		s.reg.Counter(MetricAppendErrors).Add(1)
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}
	tbl, ok := s.db.TxTable(req.Table)
	if !ok {
		s.reg.Counter(MetricAppendErrors).Add(1)
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no transaction table %q", req.Table))
		return
	}

	// Admission control, identical to statements: drain refuses, the
	// pool bounds concurrency, the queue bounds waiting.
	release, ok := s.admitOp(w, r, MetricAppendErrors)
	if !ok {
		return
	}
	defer release()
	s.reg.Counter(MetricAppends).Add(1)

	// Journal the batch like a statement, under the request's trace ID,
	// so the query history interleaves reads and writes.
	stmtText := fmt.Sprintf("APPEND %d tx INTO %s", len(req.Transactions), req.Table)
	inflight := s.journal.Begin(obs.TraceFromContext(r.Context()), stmtText, "append")

	start := time.Now()
	batch := make([]tdb.Tx, len(req.Transactions))
	for i, tx := range req.Transactions {
		batch[i] = tdb.Tx{At: tx.At, Items: s.db.Dict().InternAll(tx.Items...)}
	}
	// On a durable database the 200 is the durability contract: the
	// batch's WAL record is committed under the configured fsync policy
	// before this returns, and a commit failure is a 500, never an ack.
	_, epoch, err := tbl.AppendBatchDurable(batch)
	wall := time.Since(start)
	if err != nil {
		s.reg.Counter(MetricAppendErrors).Add(1)
		inflight.End(obs.QueryOutcome{Err: err})
		s.reject(w, http.StatusInternalServerError, fmt.Sprintf("tarmd: append not durable: %v", err))
		return
	}

	s.reg.Histogram(MetricAppendLatency).Observe(wall.Seconds())
	s.reg.Counter(MetricAppendTx).Add(int64(len(batch)))
	inflight.End(obs.QueryOutcome{Rows: len(batch)})

	// Wake the standing statements on this table: each decides for
	// itself whether the batch closed a granule (or dirtied a closed
	// one) and warrants a refresh. Coalesced, never blocking.
	s.subs.observe(req.Table)

	writeJSON(w, http.StatusOK, appendResponse{
		Table:     req.Table,
		RequestID: w.Header().Get("X-Request-ID"),
		Appended:  len(batch),
		Epoch:     epoch,
		Durable:   s.db.Durable(),
		WallMS:    float64(wall) / float64(time.Millisecond),
	})
}

// readAppend decodes and validates the append body.
func readAppend(r *http.Request) (appendRequest, error) {
	var req appendRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxAppendBody))
	if err != nil {
		return req, fmt.Errorf("tarmd: reading body: %w", err)
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("tarmd: bad JSON body: %w", err)
	}
	if req.Table == "" {
		return req, fmt.Errorf("tarmd: append without a table")
	}
	if len(req.Transactions) == 0 {
		return req, fmt.Errorf("tarmd: append with no transactions")
	}
	for i, tx := range req.Transactions {
		if tx.At.IsZero() {
			return req, fmt.Errorf("tarmd: transaction %d has no timestamp", i)
		}
		if len(tx.Items) == 0 {
			return req, fmt.Errorf("tarmd: transaction %d has no items", i)
		}
	}
	return req, nil
}
