package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postAppend sends one append batch and returns the status code and
// decoded response (nil unless 200).
func postAppend(t *testing.T, url, body string) (int, *appendResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/append", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, string(raw)
	}
	var out appendResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad append response %s: %v", raw, err)
	}
	return resp.StatusCode, &out, string(raw)
}

// appendBody builds an append request body with n transactions of the
// given items, one minute apart starting at day 29 of the fixture.
func appendBody(n int, items ...string) string {
	type tx struct {
		At    time.Time `json:"at"`
		Items []string  `json:"items"`
	}
	at := time.Date(2024, 1, 29, 12, 0, 0, 0, time.UTC)
	txs := make([]tx, n)
	for i := range txs {
		txs[i] = tx{At: at.Add(time.Duration(i) * time.Minute), Items: items}
	}
	buf, _ := json.Marshal(map[string]any{"table": "baskets", "transactions": txs})
	return string(buf)
}

// TestAppendBasic checks the happy path: the batch lands, the response
// reports the new epoch, and the journal and metrics record the write.
func TestAppendBasic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, out, raw := postAppend(t, ts.URL, appendBody(5, "bread", "milk"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if out.Table != "baskets" || out.Appended != 5 {
		t.Errorf("response %+v", out)
	}
	// The fixture is 280 appends; the batch moves the epoch to 285.
	if out.Epoch != 285 {
		t.Errorf("epoch = %d, want 285", out.Epoch)
	}
	tbl, _ := s.db.TxTable("baskets")
	if tbl.Len() != 285 {
		t.Errorf("table rows = %d, want 285", tbl.Len())
	}
	rec := s.Journal().Recent(1)
	if len(rec) != 1 || rec[0].Task != "append" || rec[0].Rows != 5 {
		t.Errorf("journal record: %+v", rec)
	}
	if got := s.Registry().Counter(MetricAppends).Value(); got != 1 {
		t.Errorf("append counter = %d, want 1", got)
	}
	if got := s.Registry().Counter(MetricAppendTx).Value(); got != 5 {
		t.Errorf("append tx counter = %d, want 5", got)
	}
}

// TestAppendThenWarmMineDelta is the end-to-end write-path acceptance
// check: a MINE warms the cache, an HTTP append dirties one granule,
// and the next identical MINE is served through delta maintenance —
// with the same rows a cold server mining the post-append data returns.
func TestAppendThenWarmMineDelta(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	stmt := testStatements[1] // periods at day granularity

	if code, body, _ := postStatement(t, ts.URL, stmt, "text"); code != http.StatusOK {
		t.Fatalf("warmup status %d: %s", code, body)
	}
	if code, _, raw := postAppend(t, ts.URL, appendBody(10, "bread", "milk")); code != http.StatusOK {
		t.Fatalf("append status %d: %s", code, raw)
	}
	code, got, _ := postStatement(t, ts.URL, stmt, "text")
	if code != http.StatusOK {
		t.Fatalf("warm status %d: %s", code, got)
	}

	cs := s.Executor().Cache.Stats()
	if cs.Deltas != 1 || cs.Invalidations != 0 {
		t.Errorf("cache stats after append+mine: %+v, want 1 delta, 0 invalidations", cs)
	}
	rec := s.Journal().Recent(1)
	if len(rec) != 1 || rec[0].Cache != "delta" {
		t.Errorf("journal cache outcome = %+v, want delta", rec)
	}

	// Reference: a fresh server whose fixture receives the same append
	// before its first (cold) mine.
	_, ts2 := newTestServer(t, Config{})
	if code, _, raw := postAppend(t, ts2.URL, appendBody(10, "bread", "milk")); code != http.StatusOK {
		t.Fatalf("reference append status %d: %s", code, raw)
	}
	code, want, _ := postStatement(t, ts2.URL, stmt, "text")
	if code != http.StatusOK {
		t.Fatalf("reference status %d: %s", code, want)
	}
	if got != want {
		t.Errorf("delta-maintained answer differs from cold answer:\ndelta:\n%s\ncold:\n%s", got, want)
	}
}

// TestAppendBadRequests checks the 4xx family for the ingest endpoint.
func TestAppendBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		code       int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no table", `{"transactions": [{"at": "2024-01-29T12:00:00Z", "items": ["a"]}]}`, http.StatusBadRequest},
		{"unknown table", `{"table": "nope", "transactions": [{"at": "2024-01-29T12:00:00Z", "items": ["a"]}]}`, http.StatusNotFound},
		{"no transactions", `{"table": "baskets", "transactions": []}`, http.StatusBadRequest},
		{"no timestamp", `{"table": "baskets", "transactions": [{"items": ["a"]}]}`, http.StatusBadRequest},
		{"no items", `{"table": "baskets", "transactions": [{"at": "2024-01-29T12:00:00Z"}]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/append", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	if got := s.Registry().Counter(MetricAppendErrors).Value(); got != 6 {
		t.Errorf("append error counter = %d, want 6", got)
	}
	tbl, _ := s.db.TxTable("baskets")
	if tbl.Len() != 280 {
		t.Errorf("table rows = %d after rejected appends, want 280", tbl.Len())
	}
}

// TestAppendDraining503 checks a draining server refuses writes the
// same way it refuses statements.
func TestAppendDraining503(t *testing.T) {
	bt := newBlockTracer()
	s, ts := newTestServer(t, Config{Pool: 2, RetryAfter: 3 * time.Second, Tracer: bt})

	result := make(chan int, 1)
	go func() {
		code, _, _ := postStatement(t, ts.URL, testStatements[2], "")
		result <- code
	}()
	<-bt.entered
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitHealthz(t, ts.URL, func(h map[string]any) bool { return h["status"] == "draining" })

	resp, err := http.Post(ts.URL+"/v1/append", "application/json",
		strings.NewReader(appendBody(1, "bread")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("append during drain: status %d, want 503", resp.StatusCode)
	}
	if retry := resp.Header.Get("Retry-After"); retry != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", retry)
	}

	close(bt.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-result
}

// TestConcurrentAppendMine hammers a shared server with interleaved
// writes and warm mines: every request must succeed, the final row
// count must account for every appended transaction, and the shared
// cache must never serve a stale epoch (each mine's rows match a cold
// run at whatever epoch it observed — enforced here indirectly by the
// race detector plus the epoch consistency checks inside the cache).
func TestConcurrentAppendMine(t *testing.T) {
	const (
		writers = 4
		miners  = 4
		rounds  = 8
	)
	s, ts := newTestServer(t, Config{Pool: writers + miners, Queue: writers + miners})
	stmt := testStatements[1]

	var wg sync.WaitGroup
	errs := make(chan string, (writers+miners)*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if code, _, raw := postAppend(t, ts.URL, appendBody(3, "bread", "milk")); code != http.StatusOK {
					errs <- fmt.Sprintf("append: status %d: %s", code, raw)
				}
			}
		}()
	}
	for m := 0; m < miners; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if code, body, _ := postStatement(t, ts.URL, stmt, ""); code != http.StatusOK {
					errs <- fmt.Sprintf("mine: status %d: %s", code, body)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	tbl, _ := s.db.TxTable("baskets")
	if want := 280 + writers*rounds*3; tbl.Len() != want {
		t.Errorf("table rows = %d, want %d", tbl.Len(), want)
	}
	if got := s.Registry().Counter(MetricAppendTx).Value(); got != int64(writers*rounds*3) {
		t.Errorf("append tx counter = %d, want %d", got, writers*rounds*3)
	}
	// One final warm statement against the settled table must agree with
	// a cold rebuild of the same data.
	code, got, _ := postStatement(t, ts.URL, stmt, "text")
	if code != http.StatusOK {
		t.Fatalf("settled mine: status %d", code)
	}
	cold := httptest.NewServer(New(s.db, Config{}))
	defer cold.Close()
	codeCold, want, _ := postStatement(t, cold.URL, stmt, "text")
	if codeCold != http.StatusOK {
		t.Fatalf("cold mine: status %d", codeCold)
	}
	if got != want {
		t.Errorf("warm answer diverged from cold rebuild:\nwarm:\n%s\ncold:\n%s", got, want)
	}
}
