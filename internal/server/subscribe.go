// Continuous mining: POST /v1/subscriptions registers a standing
// SUBSCRIBE MINE statement; a per-subscription worker re-runs it when
// the append stream closes a granule (or dirties a closed one) and
// emits rule deltas — added / removed / changed — into a bounded
// per-subscriber event ring served by GET /v1/subscriptions/{id}/events
// as long-poll JSON or SSE. A wedged or disconnected subscriber costs
// the server nothing but its ring: pushes never block, overflow drops
// the oldest event (counted, surfaced, detectable by the seq gap), and
// refreshes stay bounded by a small semaphore so a storm of
// subscriptions cannot starve interactive statements out of the shared
// executor.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tml"
)

// Subscription metric names, next to the tarmd_* statement metrics.
const (
	MetricSubs           = "tarmd_subs_total"             // subscriptions registered (counter)
	MetricSubsActive     = "tarmd_subs_active"            // subscriptions currently registered (gauge)
	MetricSubRejected    = "tarmd_sub_rejected_total"     // registrations refused: limit reached (counter)
	MetricSubRefreshes   = "tarmd_sub_refreshes_total"    // standing-statement re-runs (counter)
	MetricSubRefreshErrs = "tarmd_sub_refresh_err_total"  // re-runs that failed (counter)
	MetricSubEvents      = "tarmd_sub_events_total"       // delta events emitted (counter)
	MetricSubDeltas      = "tarmd_sub_deltas_total"       // rule deltas across all events (counter)
	MetricSubDropped     = "tarmd_sub_dropped_total"      // events dropped from full subscriber rings (counter)
	MetricSubRefreshSecs = "tarmd_sub_refresh_seconds"    // re-run latency (histogram)
)

// subEvent is one emission: a sequence number over the subscription's
// lifetime, the emission wall time, and the standing statement's
// update (closed granule, epoch, deltas).
type subEvent struct {
	Seq int64     `json:"seq"`
	At  time.Time `json:"at"`
	tml.SubUpdate
}

// subscription is one registered standing statement plus its bounded
// event ring and long-poll wakeup.
type subscription struct {
	id       string
	table    string
	task     string
	standing *tml.Standing
	created  time.Time

	notify chan struct{} // coalesced "table advanced" signal, cap 1
	stop   chan struct{} // closed on deregistration
	done   chan struct{} // worker exited

	mu        sync.Mutex
	events    []subEvent // ring, newest last; bounded by manager queue cap
	nextSeq   int64
	dropped   int64
	refreshes int64
	errs      int64
	lastErr   string
	wake      chan struct{} // closed on every push; long-pollers wait on it
}

// push appends an event to the ring, dropping the oldest when full, and
// wakes every long-poller. Never blocks.
func (sub *subscription) push(ev subEvent, cap_ int) (dropped bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	ev.Seq = sub.nextSeq
	sub.nextSeq++
	if len(sub.events) >= cap_ {
		n := copy(sub.events, sub.events[1:])
		sub.events = sub.events[:n]
		sub.dropped++
		dropped = true
	}
	sub.events = append(sub.events, ev)
	close(sub.wake)
	sub.wake = make(chan struct{})
	return dropped
}

// eventsAfter snapshots the retained events with Seq > after.
func (sub *subscription) eventsAfter(after int64) (evs []subEvent, next int64, wake <-chan struct{}) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	next = after
	for _, ev := range sub.events {
		if ev.Seq > after {
			evs = append(evs, ev)
			next = ev.Seq
		}
	}
	return evs, next, sub.wake
}

// subManager owns the subscriptions: registration limits, the observe
// fan-out from appends, and the worker lifecycle. All refreshes share
// one small semaphore so standing statements are admission-controlled
// against the executor like any other load.
type subManager struct {
	s          *Server
	ctx        context.Context
	cancel     context.CancelFunc
	refreshSem chan struct{}

	mu      sync.Mutex
	subs    map[string]*subscription
	byTable map[string][]*subscription
	nextID  int64
	closed  bool
}

func newSubManager(s *Server) *subManager {
	ctx, cancel := context.WithCancel(context.Background())
	workers := s.cfg.Pool / 2
	if workers < 1 {
		workers = 1
	}
	return &subManager{
		s:          s,
		ctx:        ctx,
		cancel:     cancel,
		refreshSem: make(chan struct{}, workers),
		subs:       make(map[string]*subscription),
		byTable:    make(map[string][]*subscription),
	}
}

// register creates a subscription for stmt, or reports why not.
func (m *subManager) register(stmt *tml.MineStmt) (*subscription, error) {
	standing, err := tml.NewStanding(m.s.exec, stmt)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errDraining
	}
	if len(m.subs) >= m.s.cfg.MaxSubs {
		m.mu.Unlock()
		return nil, errSubsFull
	}
	m.nextID++
	sub := &subscription{
		id:       fmt.Sprintf("sub-%d", m.nextID),
		table:    stmt.Table,
		task:     tml.TaskKey(stmt),
		standing: standing,
		created:  time.Now(),
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		wake:     make(chan struct{}),
	}
	m.subs[sub.id] = sub
	m.byTable[sub.table] = append(m.byTable[sub.table], sub)
	active := len(m.subs)
	m.mu.Unlock()

	m.s.reg.Counter(MetricSubs).Add(1)
	m.s.reg.Gauge(MetricSubsActive).Set(float64(active))
	// Prime the worker: the first run emits the registration snapshot.
	sub.notify <- struct{}{}
	go m.worker(sub)
	return sub, nil
}

var (
	errSubsFull = fmt.Errorf("subscription limit reached")
	errDraining = fmt.Errorf("server is draining")
)

// get returns a subscription by id.
func (m *subManager) get(id string) *subscription {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.subs[id]
}

// remove deregisters and stops a subscription; reports whether it
// existed.
func (m *subManager) remove(id string) bool {
	m.mu.Lock()
	sub := m.subs[id]
	if sub == nil {
		m.mu.Unlock()
		return false
	}
	delete(m.subs, id)
	byTable := m.byTable[sub.table][:0]
	for _, s := range m.byTable[sub.table] {
		if s != sub {
			byTable = append(byTable, s)
		}
	}
	m.byTable[sub.table] = byTable
	active := len(m.subs)
	m.mu.Unlock()
	m.s.reg.Gauge(MetricSubsActive).Set(float64(active))
	// Stop the worker via the stop channel; the notify channel is never
	// closed, so a racing observe can still send into it harmlessly.
	close(sub.stop)
	<-sub.done
	return true
}

// list snapshots the registered subscriptions, oldest first (ids are
// sub-N, so numeric order is creation order).
func (m *subManager) list() []*subscription {
	m.mu.Lock()
	out := make([]*subscription, 0, len(m.subs))
	for _, sub := range m.subs {
		out = append(out, sub)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return subNum(out[i].id) < subNum(out[j].id) })
	return out
}

func subNum(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "sub-"), 10, 64)
	return n
}

// observe tells every subscription on table that it advanced. Called
// after each successful append; never blocks (the notify channel
// coalesces).
func (m *subManager) observe(table string) {
	m.mu.Lock()
	subs := append([]*subscription(nil), m.byTable[table]...)
	m.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// shutdown stops every worker and refuses new registrations. Called by
// Drain before waiting on in-flight statements.
func (m *subManager) shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	subs := make([]*subscription, 0, len(m.subs))
	for _, sub := range m.subs {
		subs = append(subs, sub)
	}
	m.mu.Unlock()
	m.cancel()
	for _, sub := range subs {
		<-sub.done
	}
}

// worker is one subscription's refresh loop: wait for an append signal
// (or the registration prime), step the standing statement under the
// shared refresh semaphore, emit the update.
func (m *subManager) worker(sub *subscription) {
	defer close(sub.done)
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-sub.stop:
			return
		case <-sub.notify:
		}
		m.refresh(sub)
	}
}

// refresh runs one Step and pushes its update, if any.
func (m *subManager) refresh(sub *subscription) {
	select {
	case m.refreshSem <- struct{}{}:
	case <-m.ctx.Done():
		return
	}
	defer func() { <-m.refreshSem }()

	start := time.Now()
	upd, err := sub.standing.Step(m.ctx)
	if err != nil {
		if m.ctx.Err() != nil {
			return
		}
		m.s.reg.Counter(MetricSubRefreshErrs).Add(1)
		sub.mu.Lock()
		sub.errs++
		sub.lastErr = err.Error()
		sub.mu.Unlock()
		return
	}
	if upd == nil {
		return // nothing closed, nothing dirty: not a refresh
	}
	m.s.reg.Counter(MetricSubRefreshes).Add(1)
	m.s.reg.Histogram(MetricSubRefreshSecs).Observe(time.Since(start).Seconds())
	sub.mu.Lock()
	sub.refreshes++
	sub.mu.Unlock()
	if sub.push(subEvent{At: time.Now(), SubUpdate: *upd}, m.s.cfg.SubQueue) {
		m.s.reg.Counter(MetricSubDropped).Add(1)
	}
	m.s.reg.Counter(MetricSubEvents).Add(1)
	m.s.reg.Counter(MetricSubDeltas).Add(int64(len(upd.Deltas)))
}

// subView is the JSON shape of one subscription: identity, the standing
// statement, and live progress counters. Epoch vs TableEpoch lets a
// client detect a settled stream (every append reflected in an emitted
// event).
type subView struct {
	ID            string    `json:"id"`
	RequestID     string    `json:"request_id,omitempty"`
	Statement     string    `json:"statement"`
	Table         string    `json:"table"`
	Task          string    `json:"task"`
	Created       time.Time `json:"created"`
	ClosedThrough string    `json:"closed_through,omitempty"`
	Epoch         int64     `json:"epoch"`
	TableEpoch    int64     `json:"table_epoch"`
	Rules         int       `json:"rules"`
	NextSeq       int64     `json:"next_seq"`
	Refreshes     int64     `json:"refreshes"`
	Dropped       int64     `json:"dropped"`
	Errors        int64     `json:"errors"`
	LastError     string    `json:"last_error,omitempty"`
}

func (s *Server) subView(sub *subscription, rid string) subView {
	v := subView{
		ID:         sub.id,
		RequestID:  rid,
		Statement:  sub.standing.Stmt().String(),
		Table:      sub.table,
		Task:       sub.task,
		Created:    sub.created,
		Epoch:      sub.standing.Epoch(),
		TableEpoch: sub.standing.Table().Epoch(),
	}
	sub.mu.Lock()
	v.NextSeq = sub.nextSeq
	v.Refreshes = sub.refreshes
	v.Dropped = sub.dropped
	v.Errors = sub.errs
	v.LastError = sub.lastErr
	if n := len(sub.events); n > 0 {
		last := sub.events[n-1]
		v.Rules = last.Rules
		v.ClosedThrough = last.ClosedLabel
	}
	sub.mu.Unlock()
	return v
}

// handleSubscribe registers a standing statement: 400 for anything but
// a well-formed SUBSCRIBE MINE, 404 for an unknown table, 429 at the
// subscription limit, 503 while draining.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	req, err := readStatement(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.reg.Counter(MetricDraining).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !tml.IsSubscribeStatement(req.Statement) {
		s.reject(w, http.StatusBadRequest, "tarmd: subscriptions want a SUBSCRIBE MINE statement")
		return
	}
	stmt, err := tml.Parse(req.Statement)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, ok := s.db.TxTable(stmt.Table); !ok {
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no transaction table %q", stmt.Table))
		return
	}
	sub, err := s.subs.register(stmt)
	switch {
	case err == errSubsFull:
		s.reg.Counter(MetricSubRejected).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusTooManyRequests,
			fmt.Sprintf("tarmd: subscription limit reached (%d active)", s.cfg.MaxSubs))
		return
	case err == errDraining:
		s.reg.Counter(MetricDraining).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		s.reject(w, http.StatusBadRequest, err.Error())
		return
	}
	// Journal the registration like a statement, so the query history
	// shows when each standing statement entered the system; the
	// refreshes it triggers journal themselves through the executor.
	fl := s.journal.Begin(obs.TraceFromContext(r.Context()), stmt.String(), obs.TaskSubscribe)
	fl.End(obs.QueryOutcome{})
	writeJSON(w, http.StatusCreated, s.subView(sub, w.Header().Get("X-Request-ID")))
}

func (s *Server) handleSubList(w http.ResponseWriter, r *http.Request) {
	subs := s.subs.list()
	views := make([]subView, 0, len(subs))
	for _, sub := range subs {
		views = append(views, s.subView(sub, ""))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleSubGet(w http.ResponseWriter, r *http.Request) {
	sub := s.subs.get(r.PathValue("id"))
	if sub == nil {
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no subscription %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.subView(sub, w.Header().Get("X-Request-ID")))
}

func (s *Server) handleSubDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.subs.remove(id) {
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no subscription %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "removed"})
}

// subEventsResponse is the long-poll GET .../events answer. NextAfter
// is the cursor for the next poll; Dropped is the lifetime count of
// events lost to ring overflow (a jump in Seq numbers tells a client
// *where*).
type subEventsResponse struct {
	ID        string     `json:"id"`
	RequestID string     `json:"request_id,omitempty"`
	Events    []subEvent `json:"events"`
	NextAfter int64      `json:"next_after"`
	Dropped   int64      `json:"dropped"`
}

// maxEventWait caps ?wait_ms long-polls.
const maxEventWait = 30 * time.Second

// handleSubEvents serves a subscription's event stream: plain JSON with
// optional long-poll (?after=N&wait_ms=M), or SSE when the client asks
// for text/event-stream (or ?stream=sse).
func (s *Server) handleSubEvents(w http.ResponseWriter, r *http.Request) {
	sub := s.subs.get(r.PathValue("id"))
	if sub == nil {
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no subscription %q", r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	after := int64(-1)
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.reject(w, http.StatusBadRequest, "tarmd: bad after cursor")
			return
		}
		after = n
	}
	if q.Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.serveSSE(w, r, sub, after)
		return
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			s.reject(w, http.StatusBadRequest, "tarmd: bad wait_ms")
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > maxEventWait {
			wait = maxEventWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		evs, next, wake := sub.eventsAfter(after)
		if len(evs) > 0 || time.Now().After(deadline) {
			sub.mu.Lock()
			dropped := sub.dropped
			sub.mu.Unlock()
			if evs == nil {
				evs = []subEvent{}
			}
			writeJSON(w, http.StatusOK, subEventsResponse{
				ID:        sub.id,
				RequestID: w.Header().Get("X-Request-ID"),
				Events:    evs,
				NextAfter: next,
				Dropped:   dropped,
			})
			return
		}
		remain := time.Until(deadline)
		timer := time.NewTimer(remain)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// serveSSE streams events as Server-Sent Events until the client goes
// away (or the server drains). Each event is one `data:` line of the
// same JSON the long-poll returns.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, sub *subscription, after int64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.reject(w, http.StatusBadRequest, "tarmd: streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, next, wake := sub.eventsAfter(after)
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
		}
		if len(evs) > 0 {
			fl.Flush()
			after = next
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.subs.ctx.Done():
			return
		}
	}
}
