package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tarm-project/tarm/internal/core"
	"github.com/tarm-project/tarm/internal/obs"
)

// postWithID sends one statement with an explicit X-Request-ID header
// and returns the status, response headers and body.
func postWithID(t *testing.T, url, stmt, rid string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/statements", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v in %q", url, err, body)
		}
	}
	return resp.StatusCode, resp.Header
}

// decodeError parses the uniform error body.
func decodeError(t *testing.T, body string) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body is not JSON: %v in %q", err, body)
	}
	return e
}

// queriesJSON mirrors the GET /v1/queries answer.
type queriesJSON struct {
	Inflight []obs.InflightInfo `json:"inflight"`
	Recent   []*obs.QueryRecord `json:"recent"`
	Total    int64              `json:"total"`
}

// TestErrorBodyBadStatement400: a statement the server will not run
// comes back as 400 with the uniform JSON error contract — message
// plus the request ID echoed in header and body.
func TestErrorBodyBadStatement400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, hdr, body := postWithID(t, ts.URL, "SELECT * FROM baskets", "err-400")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, body)
	}
	e := decodeError(t, body)
	if e.Error == "" || !strings.Contains(e.Error, "MINE") {
		t.Errorf("error = %q, want a MINE-only message", e.Error)
	}
	if e.RequestID != "err-400" || hdr.Get("X-Request-ID") != "err-400" {
		t.Errorf("request id body=%q header=%q, want err-400 on both", e.RequestID, hdr.Get("X-Request-ID"))
	}
	if e.RetryAfterMS != 0 {
		t.Errorf("retry_after_ms = %d on a 400, want 0", e.RetryAfterMS)
	}
}

// TestErrorBodyQueueFull429: backpressure rejections carry the
// Retry-After hint in the JSON body (milliseconds) as well as the
// header, plus the request ID.
func TestErrorBodyQueueFull429(t *testing.T) {
	bt := newBlockTracer()
	_, ts := newTestServer(t, Config{Pool: 1, Queue: 1, RetryAfter: 2 * time.Second, Tracer: bt})
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := postStatement(t, ts.URL, testStatements[2], "")
			results <- code
		}()
	}
	<-bt.entered
	waitHealthz(t, ts.URL, func(h map[string]any) bool {
		return h["inflight"].(float64) == 1 && h["queued"].(float64) == 1
	})

	code, hdr, body := postWithID(t, ts.URL, testStatements[2], "err-429")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	e := decodeError(t, body)
	if e.RetryAfterMS != 2000 {
		t.Errorf("retry_after_ms = %d, want 2000 (header %q)", e.RetryAfterMS, hdr.Get("Retry-After"))
	}
	if e.RequestID != "err-429" {
		t.Errorf("request_id = %q, want err-429", e.RequestID)
	}
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("error = %q, want a queue-full message", e.Error)
	}

	close(bt.release)
	for i := 0; i < 2; i++ {
		if c := <-results; c != http.StatusOK {
			t.Errorf("blocked request finished with %d, want 200", c)
		}
	}
}

// TestErrorBodyDraining503: a draining server rejects with the same
// JSON contract, retry hint included.
func TestErrorBodyDraining503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, _, body := postWithID(t, ts.URL, testStatements[0], "err-503")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	e := decodeError(t, body)
	if !strings.Contains(e.Error, "draining") || e.RequestID != "err-503" {
		t.Errorf("body = %+v, want draining message with request id", e)
	}
	if e.RetryAfterMS != 1000 { // default RetryAfter is 1s
		t.Errorf("retry_after_ms = %d, want 1000", e.RetryAfterMS)
	}
}

// TestErrorBodyTimeout504: deadline exhaustion keeps the contract too.
func TestErrorBodyTimeout504(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	code, _, body := postWithID(t, ts.URL, testStatements[2], "err-504")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
	e := decodeError(t, body)
	if !strings.Contains(e.Error, "deadline") || e.RequestID != "err-504" {
		t.Errorf("body = %+v, want deadline message with request id err-504", e)
	}
}

// TestRequestIDPropagation: the server echoes a well-formed
// client-supplied X-Request-ID on success responses (header and JSON
// body), generates one when absent, and discards malformed IDs rather
// than reflecting them.
func TestRequestIDPropagation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	code, hdr, body := postWithID(t, ts.URL, testStatements[0], "client-id-1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := hdr.Get("X-Request-ID"); got != "client-id-1" {
		t.Errorf("header echo = %q, want client-id-1", got)
	}
	var resp struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "client-id-1" {
		t.Errorf("body request_id = %q, want client-id-1", resp.RequestID)
	}
	// The journal keys the statement by the same ID.
	if rec, _ := s.Journal().Get("client-id-1"); rec == nil {
		t.Error("journal has no record under the client-supplied request ID")
	}

	// No header: a generated 16-hex-char trace ID.
	code, hdr, _ = postWithID(t, ts.URL, testStatements[0], "")
	if code != http.StatusOK {
		t.Fatal("second statement failed")
	}
	if got := hdr.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", got)
	}

	// A malformed ID (spaces, punctuation) must not be reflected.
	code, hdr, _ = postWithID(t, ts.URL, testStatements[0], "bad id<script>")
	if code != http.StatusOK {
		t.Fatal("third statement failed")
	}
	if got := hdr.Get("X-Request-ID"); got == "bad id<script>" || len(got) != 16 {
		t.Errorf("malformed id came back as %q, want a fresh generated id", got)
	}
}

// TestQueriesInFlight wedges a statement mid-pass and checks the live
// introspection path end to end: /v1/queries lists it in flight with
// its current span, /v1/queries/{id} serves the partial span tree, and
// after release the same ID resolves to a completed record.
func TestQueriesInFlight(t *testing.T) {
	bt := newBlockTracer()
	_, ts := newTestServer(t, Config{Pool: 2, Tracer: bt})

	result := make(chan int, 1)
	go func() {
		code, _, _ := postWithID(t, ts.URL, testStatements[2], "wedge-1")
		result <- code
	}()
	<-bt.entered

	var qv queriesJSON
	if code, _ := getJSON(t, ts.URL+"/v1/queries", &qv); code != http.StatusOK {
		t.Fatalf("GET /v1/queries status %d", code)
	}
	if len(qv.Inflight) != 1 {
		t.Fatalf("inflight = %+v, want exactly the wedged statement", qv.Inflight)
	}
	inf := qv.Inflight[0]
	if inf.TraceID != "wedge-1" || !strings.Contains(inf.Statement, "MINE CYCLES") {
		t.Errorf("inflight = %+v, want wedge-1 / MINE CYCLES", inf)
	}
	if inf.Task != "cycles" {
		t.Errorf("task = %q, want cycles", inf.Task)
	}
	// The statement is wedged inside its first counting pass; the trace
	// opened the pass span before the blocking tracer parked it.
	if inf.Current != "pass:L1" {
		t.Errorf("current span = %q, want pass:L1", inf.Current)
	}

	// The by-ID view serves the partial tree, open spans marked.
	var live struct {
		obs.InflightInfo
		Spans []*obs.SpanNode `json:"spans"`
	}
	if code, _ := getJSON(t, ts.URL+"/v1/queries/wedge-1", &live); code != http.StatusOK {
		t.Fatalf("GET /v1/queries/wedge-1 status %d", code)
	}
	if len(live.Spans) != 1 || live.Spans[0].Name != obs.SpanStatement || !live.Spans[0].Open {
		t.Fatalf("live spans = %+v, want one open statement root", live.Spans)
	}
	if pass := obs.Find(live.Spans, "pass:L1"); pass == nil || !pass.Open {
		t.Fatalf("live tree has no open pass:L1 span")
	}

	close(bt.release)
	if code := <-result; code != http.StatusOK {
		t.Fatalf("wedged statement finished with %d", code)
	}

	if code, _ := getJSON(t, ts.URL+"/v1/queries", &qv); code != http.StatusOK {
		t.Fatal("second /v1/queries failed")
	}
	if len(qv.Inflight) != 0 || qv.Total != 1 || len(qv.Recent) != 1 {
		t.Fatalf("after release: inflight=%d total=%d recent=%d, want 0/1/1",
			len(qv.Inflight), qv.Total, len(qv.Recent))
	}
	rec := qv.Recent[0]
	if rec.TraceID != "wedge-1" || rec.Error != "" || rec.Rows == 0 {
		t.Errorf("completed record = %+v", rec)
	}
	if rec.Spans != nil {
		t.Error("list view carries span trees; they must be stripped")
	}
}

// TestQueryByIDSpanTreeMatchesExplain is the HTTP-level acceptance
// check: the span tree served for a statement's request ID must carry
// exactly the per-operator wall times the EXPLAIN observed section
// reports for that statement — same measurement, same rendering.
func TestQueryByIDSpanTreeMatchesExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stmt := testStatements[1] // periods
	code, _, body := postWithID(t, ts.URL, stmt, "acc-trace-1")
	if code != http.StatusOK {
		t.Fatalf("statement status %d: %s", code, body)
	}

	var rec obs.QueryRecord
	if code, _ := getJSON(t, ts.URL+"/v1/queries/acc-trace-1", &rec); code != http.StatusOK {
		t.Fatalf("GET /v1/queries/acc-trace-1 status %d", code)
	}
	if rec.TraceID != "acc-trace-1" || len(rec.Spans) == 0 {
		t.Fatalf("record = %+v, want spans under acc-trace-1", rec)
	}

	// The EXPLAIN observed section for the same statement, from the
	// same server (the executor keeps the last run's measurements).
	var explain struct {
		Rows [][]string `json:"rows"`
	}
	ecode, _, ebody := postWithID(t, ts.URL, "EXPLAIN "+stmt, "")
	if ecode != http.StatusOK {
		t.Fatalf("EXPLAIN status %d: %s", ecode, ebody)
	}
	if err := json.Unmarshal([]byte(ebody), &explain); err != nil {
		t.Fatal(err)
	}
	observed := map[string]string{}
	for _, row := range explain.Rows {
		if len(row) >= 2 && strings.HasPrefix(row[0], "observed: op:") {
			observed[strings.TrimPrefix(row[0], "observed: ")] = row[1]
		}
	}
	if len(observed) == 0 {
		t.Fatal("EXPLAIN reported no observed operator rows")
	}
	for op, wantMS := range observed {
		span := obs.Find(rec.Spans, op)
		if span == nil {
			t.Errorf("operator %s observed by EXPLAIN but absent from the trace", op)
			continue
		}
		if got := fmt.Sprintf("%.1fms", span.WallMS); got != wantMS {
			t.Errorf("%s: trace %s, EXPLAIN %s — must match exactly", op, got, wantMS)
		}
	}
	for _, c := range rec.Spans[0].Children {
		if strings.HasPrefix(c.Name, "op:") {
			if _, ok := observed[c.Name]; !ok {
				t.Errorf("trace span %s missing from EXPLAIN observed section", c.Name)
			}
		}
	}
}

// TestCacheEndpoint: after one cold build the cache view shows the
// counters and the resident entry for the fixture table.
func TestCacheEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, body := postWithID(t, ts.URL, testStatements[2], ""); code != http.StatusOK {
		t.Fatalf("statement status %d: %s", code, body)
	}
	var view struct {
		Stats   core.CacheStats  `json:"stats"`
		Entries []core.EntryInfo `json:"entries"`
	}
	if code, _ := getJSON(t, ts.URL+"/v1/cache", &view); code != http.StatusOK {
		t.Fatalf("GET /v1/cache status %d", code)
	}
	if view.Stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 cold build", view.Stats.Misses)
	}
	if len(view.Entries) != 1 {
		t.Fatalf("entries = %+v, want the one resident hold table", view.Entries)
	}
	e := view.Entries[0]
	if e.Table != "baskets" || e.Granularity != "day" {
		t.Errorf("entry = %+v, want baskets@day", e)
	}
	if e.Bytes <= 0 || e.Itemsets <= 0 || e.Granules != 28 {
		t.Errorf("entry sizes = %+v, want bytes/itemsets > 0 and 28 granules", e)
	}
}

// TestQueryByIDNotFound: an unknown ID is a JSON 404, not a bare one.
func TestQueryByIDNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/queries/no-such-query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, body)
	}
	e := decodeError(t, string(body))
	if !strings.Contains(e.Error, "no-such-query") || e.RequestID == "" {
		t.Errorf("404 body = %+v, want the id in the message and a request id", e)
	}
}

// TestJournalDisabled: JournalSize < 0 turns the journal off; the
// introspection endpoints keep answering with empty views and
// statements still execute.
func TestJournalDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{JournalSize: -1})
	if s.Journal() != nil {
		t.Fatal("journal built despite JournalSize < 0")
	}
	if code, _, body := postWithID(t, ts.URL, testStatements[0], "off-1"); code != http.StatusOK {
		t.Fatalf("statement status %d: %s", code, body)
	}
	var qv queriesJSON
	if code, _ := getJSON(t, ts.URL+"/v1/queries", &qv); code != http.StatusOK {
		t.Fatal("GET /v1/queries failed with the journal off")
	}
	if len(qv.Inflight) != 0 || len(qv.Recent) != 0 || qv.Total != 0 {
		t.Fatalf("disabled journal view = %+v, want empty", qv)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/queries/off-1", nil); code != http.StatusNotFound {
		t.Fatalf("by-ID with journal off: status %d, want 404", code)
	}
}

// TestConcurrentSessionsIntrospection hammers the journal through the
// full HTTP stack: many sessions posting statements while readers poll
// every introspection endpoint. Runs under the CI race detector.
func TestConcurrentSessionsIntrospection(t *testing.T) {
	const writers = 6
	const perWriter = 3
	_, ts := newTestServer(t, Config{Pool: 4, Queue: writers * perWriter})

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var qv queriesJSON
				getJSON(t, ts.URL+"/v1/queries?n=5", &qv)
				for _, inf := range qv.Inflight {
					getJSON(t, ts.URL+"/v1/queries/"+inf.TraceID, nil)
				}
				getJSON(t, ts.URL+"/v1/cache", nil)
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				stmt := testStatements[(w+i)%3]
				rid := fmt.Sprintf("race-w%d-i%d", w, i)
				if code, _, body := postWithID(t, ts.URL, stmt, rid); code != http.StatusOK {
					t.Errorf("%s: status %d: %s", rid, code, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	var qv queriesJSON
	getJSON(t, ts.URL+"/v1/queries", &qv)
	if qv.Total != writers*perWriter {
		t.Errorf("total = %d, want %d", qv.Total, writers*perWriter)
	}
	if len(qv.Inflight) != 0 {
		t.Errorf("inflight = %+v after all sessions finished", qv.Inflight)
	}
}
