package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tarm-project/tarm/internal/tdb"
)

// newDurableTestServer serves a WAL-backed database from dir; reopen it
// after Kill to inspect what survived.
func newDurableTestServer(t *testing.T, dir string, pol tdb.FsyncPolicy) (*Server, *tdb.DB, *httptest.Server) {
	t.Helper()
	db, err := tdb.OpenDurable(dir, tdb.Durability{Fsync: pol})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTxTable("baskets"); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, db, ts
}

const importCSV = "timestamp,items\n" +
	"2024-01-01 12:00:00,bread;milk\n" +
	"2024-01-01 12:05:00,bread;wine\n" +
	"2024-01-02 09:00:00,milk\n"

// A 200 from /v1/append on a durable server is a durability promise:
// the batch must survive an immediate kill with no checkpoint.
func TestAppendDurableAckSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	_, db, ts := newDurableTestServer(t, dir, tdb.FsyncAlways)
	code, out, raw := postAppend(t, ts.URL, appendBody(3, "bread", "milk"))
	if code != http.StatusOK {
		t.Fatalf("append status %d: %s", code, raw)
	}
	if !out.Durable {
		t.Fatalf("durable server acked with durable=false: %+v", out)
	}
	db.Kill()

	db2, err := tdb.OpenDurable(dir, tdb.Durability{Fsync: tdb.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Kill()
	tbl, ok := db2.TxTable("baskets")
	if !ok || tbl.Len() != 3 {
		t.Fatalf("acked batch lost: table ok=%v len=%d, want 3", ok, tbl.Len())
	}
}

func TestFlushEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, db, ts := newDurableTestServer(t, dir, tdb.FsyncOff)
	postAppend(t, ts.URL, appendBody(5, "bread"))

	resp, err := http.Post(ts.URL+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d: %s", resp.StatusCode, raw)
	}
	var out flushResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad flush response %s: %v", raw, err)
	}
	if !out.Durable || out.Tables != 1 || out.SegmentsWritten == 0 || out.WALTruncated == 0 {
		t.Errorf("flush response %+v: want durable, 1 table, segments written, WAL truncated", out)
	}
	if rec := s.Journal().Recent(1); len(rec) != 1 || rec[0].Task != "flush" {
		t.Errorf("journal after flush: %+v", rec)
	}
	db.Kill()

	// Everything was checkpointed: reopening replays nothing.
	db2, err := tdb.OpenDurable(dir, tdb.Durability{Fsync: tdb.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Kill()
	if rec := db2.Recovery(); rec.Records != 0 {
		t.Errorf("post-flush reopen replayed %+v", rec)
	}
}

func TestFlushMemoryOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("flush on memory-only db: status %d, want 400", resp.StatusCode)
	}
}

func TestImportExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, db, ts := newDurableTestServer(t, dir, tdb.FsyncOff)

	// Import into a table that does not exist yet: created on the fly.
	resp, err := http.Post(ts.URL+"/v1/import?table=loaded", "text/csv", strings.NewReader(importCSV))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d: %s", resp.StatusCode, raw)
	}
	var imp importResponse
	if err := json.Unmarshal(raw, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Imported != 3 || !imp.Created || !imp.Durable {
		t.Errorf("import response %+v, want 3 imported into a created table, durable", imp)
	}
	if rec := s.Journal().Recent(1); len(rec) != 1 || rec[0].Task != "import" || rec[0].Rows != 3 {
		t.Errorf("journal after import: %+v", rec)
	}

	// Export must round-trip the import byte-for-byte.
	resp, err = http.Get(ts.URL + "/v1/export?table=loaded")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("export Content-Type = %q", ct)
	}
	if string(got) != importCSV {
		t.Errorf("export is not the import round-tripped:\ngot:\n%swant:\n%s", got, importCSV)
	}

	// The imported table survives a kill: import is WAL-logged (create
	// record + one append batch).
	db.Kill()
	db2, err := tdb.OpenDurable(dir, tdb.Durability{Fsync: tdb.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Kill()
	tbl, ok := db2.TxTable("loaded")
	if !ok || tbl.Len() != 3 {
		t.Fatalf("imported table after kill: ok=%v len=%d, want 3", ok, tbl.Len())
	}
}

// A malformed body must reject atomically: no partial rows applied.
func TestImportAtomicOnParseError(t *testing.T) {
	_, db, ts := newDurableTestServer(t, t.TempDir(), tdb.FsyncOff)
	bad := "timestamp,items\n2024-01-01 12:00:00,bread\nnot-a-time,milk\n"
	resp, err := http.Post(ts.URL+"/v1/import?table=baskets", "text/csv", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad import status %d: %s", resp.StatusCode, raw)
	}
	tbl, _ := db.TxTable("baskets")
	if tbl.Len() != 0 {
		t.Fatalf("failed import leaked %d rows into the table", tbl.Len())
	}
	db.Kill()
}

func TestImportExportValidation(t *testing.T) {
	_, _, ts := newDurableTestServer(t, t.TempDir(), tdb.FsyncOff)
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"POST", "/v1/import", http.StatusBadRequest},                // no table
		{"GET", "/v1/export", http.StatusBadRequest},                 // no table
		{"GET", "/v1/export?table=nosuch", http.StatusNotFound},      // unknown table
		{"POST", "/v1/import?table=bad.name", http.StatusBadRequest}, // invalid name
	} {
		var resp *http.Response
		var err error
		if tc.method == "POST" {
			resp, err = http.Post(ts.URL+tc.path, "text/csv", strings.NewReader(importCSV))
		} else {
			resp, err = http.Get(ts.URL + tc.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
