// Storage-surface endpoints: checkpointing and bulk CSV ingest/egress.
//
//	POST /v1/flush            checkpoint the database; on a durable
//	                          database this truncates the WAL
//	POST /v1/import?table=T   basket CSV body → transactions in T
//	                          (T is created when absent)
//	GET  /v1/export?table=T   T as basket CSV
//
// All three run through the same admission control as statements and
// appends (drain refusal, pool slot, bounded queue) and land in the
// query journal, so a bulk import shows up in /v1/queries next to the
// MINE statements it races.

package server

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"github.com/tarm-project/tarm/internal/obs"
	"github.com/tarm-project/tarm/internal/tdb"
)

// Storage metric names.
const (
	MetricFlushes      = "tarmd_flushes_total"     // checkpoints served (counter)
	MetricFlushErrors  = "tarmd_flush_err_total"   // failed checkpoints (counter)
	MetricImports      = "tarmd_imports_total"     // imports served (counter)
	MetricImportTx     = "tarmd_import_tx_total"   // transactions imported (counter)
	MetricImportErrors = "tarmd_import_err_total"  // failed imports (counter)
	MetricExports      = "tarmd_exports_total"     // exports served (counter)
	MetricExportErrors = "tarmd_export_err_total"  // failed exports (counter)
)

// maxImportBody bounds import bodies; bigger loads should arrive as
// multiple requests (each an atomic, WAL-committed batch).
const maxImportBody = 64 << 20

// admitOp is the shared admission sequence of the write/storage
// endpoints (append, flush, import, export): a draining server refuses,
// the admitted count bounds the queue, and the operation takes a pool
// slot like a statement so bulk work backpressures instead of starving
// the miners. On success the caller must defer release.
func (s *Server) admitOp(w http.ResponseWriter, r *http.Request, errCounter string) (release func(), ok bool) {
	if s.draining.Load() {
		s.reg.Counter(MetricDraining).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	if n := s.admitted.Add(1); n > int64(s.cfg.Pool+s.cfg.Queue) {
		s.admitted.Add(-1)
		s.reg.Counter(MetricQueueFull).Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusTooManyRequests,
			fmt.Sprintf("statement queue full (%d executing + %d waiting)", s.cfg.Pool, s.cfg.Queue))
		return nil, false
	}
	s.wg.Add(1)
	s.gauges()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.reg.Counter(errCounter).Add(1)
		s.admitted.Add(-1)
		s.wg.Done()
		s.gauges()
		s.reject(w, http.StatusBadRequest, r.Context().Err().Error())
		return nil, false
	}
	s.inflight.Add(1)
	s.gauges()
	return func() {
		<-s.sem
		s.inflight.Add(-1)
		s.admitted.Add(-1)
		s.wg.Done()
		s.gauges()
	}, true
}

// flushResponse reports what the checkpoint wrote.
type flushResponse struct {
	RequestID       string  `json:"request_id,omitempty"`
	Durable         bool    `json:"durable"`
	Tables          int     `json:"tables"`
	SegmentsWritten int     `json:"segments_written"`
	SegmentsSkipped int     `json:"segments_skipped"`
	WALTruncated    int64   `json:"wal_truncated_bytes"`
	WallMS          float64 `json:"wall_ms"`
}

// handleFlush checkpoints the database on demand: segment files, dict
// and manifest rewritten, WAL truncated. Operators call it before a
// backup or to bound recovery time; the SIGTERM drain path does the
// same thing via DB.Close.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.db.Dir() == "" {
		s.reject(w, http.StatusBadRequest, "tarmd: flush on a memory-only database")
		return
	}
	release, ok := s.admitOp(w, r, MetricFlushErrors)
	if !ok {
		return
	}
	defer release()

	inflight := s.journal.Begin(obs.TraceFromContext(r.Context()), "FLUSH", "flush")
	start := time.Now()
	st, err := s.db.Checkpoint()
	wall := time.Since(start)
	if err != nil {
		s.reg.Counter(MetricFlushErrors).Add(1)
		inflight.End(obs.QueryOutcome{Err: err})
		s.reject(w, http.StatusInternalServerError, fmt.Sprintf("tarmd: flush: %v", err))
		return
	}
	s.reg.Counter(MetricFlushes).Add(1)
	inflight.End(obs.QueryOutcome{Rows: st.Tables})
	writeJSON(w, http.StatusOK, flushResponse{
		RequestID:       w.Header().Get("X-Request-ID"),
		Durable:         s.db.Durable(),
		Tables:          st.Tables,
		SegmentsWritten: st.SegmentsWritten,
		SegmentsSkipped: st.SegmentsSkipped,
		WALTruncated:    st.WALTruncated,
		WallMS:          float64(wall) / float64(time.Millisecond),
	})
}

// importResponse reports what landed, mirroring appendResponse.
type importResponse struct {
	Table     string  `json:"table"`
	RequestID string  `json:"request_id,omitempty"`
	Imported  int     `json:"imported"`
	Epoch     int64   `json:"epoch"`
	Durable   bool    `json:"durable"`
	Created   bool    `json:"created,omitempty"` // table did not exist before
	WallMS    float64 `json:"wall_ms"`
}

// handleImport bulk-loads basket CSV (timestamp,item;item;...) into
// ?table=, creating the table when absent. The rows are parsed into a
// staging table first and appended as one batch, so the import is
// atomic with respect to concurrent scans and costs one WAL commit
// regardless of size; a parse error rejects the whole body with
// nothing applied.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		s.reg.Counter(MetricImportErrors).Add(1)
		s.reject(w, http.StatusBadRequest, "tarmd: import without ?table=")
		return
	}
	release, ok := s.admitOp(w, r, MetricImportErrors)
	if !ok {
		return
	}
	defer release()

	inflight := s.journal.Begin(obs.TraceFromContext(r.Context()),
		fmt.Sprintf("IMPORT CSV INTO %s", name), "import")
	start := time.Now()

	fail := func(code int, err error) {
		s.reg.Counter(MetricImportErrors).Add(1)
		inflight.End(obs.QueryOutcome{Err: err})
		s.reject(w, code, err.Error())
	}

	// Parse into a staging table: names are interned through the shared
	// dictionary (interning is additive, so this is safe even when the
	// batch is later rejected), but no rows touch the target until the
	// whole body has parsed.
	staging, err := tdb.NewTxTable("import_staging")
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	n, err := tdb.ImportBaskets(http.MaxBytesReader(w, r.Body, maxImportBody), staging, s.db.Dict())
	if err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("tarmd: import: %w", err))
		return
	}
	if n == 0 {
		fail(http.StatusBadRequest, fmt.Errorf("tarmd: import: empty CSV body"))
		return
	}

	tbl, ok := s.db.TxTable(name)
	created := false
	if !ok {
		if tbl, err = s.db.CreateTxTable(name); err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		created = true
	}
	batch := make([]tdb.Tx, 0, n)
	staging.Each(func(tx tdb.Tx) bool {
		batch = append(batch, tdb.Tx{At: tx.At, Items: tx.Items})
		return true
	})
	_, epoch, err := tbl.AppendBatchDurable(batch)
	wall := time.Since(start)
	if err != nil {
		fail(http.StatusInternalServerError, fmt.Errorf("tarmd: import not durable: %w", err))
		return
	}

	s.reg.Counter(MetricImports).Add(1)
	s.reg.Counter(MetricImportTx).Add(int64(n))
	inflight.End(obs.QueryOutcome{Rows: n})
	s.subs.observe(name)
	writeJSON(w, http.StatusOK, importResponse{
		Table:     name,
		RequestID: w.Header().Get("X-Request-ID"),
		Imported:  n,
		Epoch:     epoch,
		Durable:   s.db.Durable(),
		Created:   created,
		WallMS:    float64(wall) / float64(time.Millisecond),
	})
}

// handleExport dumps ?table= as basket CSV — the byte-for-byte inverse
// of handleImport, so export → import round-trips a table.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		s.reg.Counter(MetricExportErrors).Add(1)
		s.reject(w, http.StatusBadRequest, "tarmd: export without ?table=")
		return
	}
	tbl, ok := s.db.TxTable(name)
	if !ok {
		s.reg.Counter(MetricExportErrors).Add(1)
		s.reject(w, http.StatusNotFound, fmt.Sprintf("tarmd: no transaction table %q", name))
		return
	}
	release, admitted := s.admitOp(w, r, MetricExportErrors)
	if !admitted {
		return
	}
	defer release()

	inflight := s.journal.Begin(obs.TraceFromContext(r.Context()),
		fmt.Sprintf("EXPORT %s TO CSV", name), "export")

	// Render to a buffer first so an export error can still become a
	// clean 500 instead of a torn 200 body.
	var buf bytes.Buffer
	if err := tdb.ExportBaskets(&buf, tbl, s.db.Dict()); err != nil {
		s.reg.Counter(MetricExportErrors).Add(1)
		inflight.End(obs.QueryOutcome{Err: err})
		s.reject(w, http.StatusInternalServerError, fmt.Sprintf("tarmd: export: %v", err))
		return
	}
	s.reg.Counter(MetricExports).Add(1)
	inflight.End(obs.QueryOutcome{Rows: tbl.Len()})
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name+".csv"))
	_, _ = w.Write(buf.Bytes())
}
